// Ablation A4: the resilience/rule-count trade-off of kappa. More backup
// paths cost proportionally more rules and slightly longer bootstraps, and
// buy data-plane survival of more simultaneous link failures.
#include "bench_common.hpp"
#include "flows/resilient_paths.hpp"

namespace {

using namespace ren;

/// Fraction of (controller, switch) pairs still connected by the frozen
/// rules when a random link fails (averaged over every single failure).
double single_failure_survival(sim::Experiment& exp) {
  auto& c = exp.controller(0);
  c.set_frozen(true);
  std::map<NodeId, switchd::AbstractSwitch*> by_id;
  for (auto* s : exp.switches()) by_id[s->id()] = s;
  auto next_hop = [&](NodeId at, NodeId src,
                      NodeId dst) -> std::optional<NodeId> {
    auto it = by_id.find(at);
    if (it == by_id.end()) return std::nullopt;
    for (const auto& cand : it->second->rule_table().candidates(src, dst)) {
      if (exp.sim().network().link_operational(at, cand.fwd)) return cand.fwd;
    }
    if (exp.sim().network().link_operational(at, dst)) return dst;
    return std::nullopt;
  };
  auto link_up = [&](NodeId a, NodeId b) {
    return exp.sim().network().link_operational(a, b);
  };
  int total = 0, ok = 0;
  auto& net = exp.sim().network();
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    auto& link = net.link(static_cast<int>(li));
    link.set_state(net::LinkState::TransientDown);
    for (auto* s : exp.switches()) {
      std::vector<NodeId> first;
      if (net.link_operational(c.id(), s->id())) {
        first = {s->id()};
      } else if (const auto f = c.current_flows()) {
        auto it = f->first_hops.find(s->id());
        if (it != f->first_hops.end()) first = it->second;
      }
      ++total;
      ok += flows::rule_walk(c.id(), s->id(), first, next_hop, link_up, 128)
                    .delivered
                ? 1
                : 0;
    }
    link.set_state(net::LinkState::Up);
  }
  c.set_frozen(false);
  return total == 0 ? 0.0 : static_cast<double>(ok) / total;
}

}  // namespace

int main() {
  using namespace ren;
  bench::print_header("Ablation — kappa sweep (resilience vs rule count)",
                      "B4, one controller, kappa in {0,1,2,3}");
  std::printf("%-6s %14s %12s %22s\n", "kappa", "rules/sw(avg)", "boot(s)",
              "1-failure survival(%)");
  for (int kappa : {0, 1, 2, 3}) {
    auto cfg = bench::paper_config("B4", 1, 1);
    cfg.kappa = kappa;
    sim::Experiment exp(cfg);
    const auto res = exp.run_until_legitimate(sec(120));
    if (!res.converged) {
      std::printf("%-6d (did not converge)\n", kappa);
      continue;
    }
    double rules = 0;
    for (auto* s : exp.switches()) {
      rules += static_cast<double>(s->rule_table().total_rules());
    }
    const double survival = single_failure_survival(exp);
    std::printf("%-6d %14.1f %12.2f %22.1f\n", kappa,
                rules / static_cast<double>(exp.switches().size()),
                res.seconds, 100.0 * survival);
  }
  return 0;
}

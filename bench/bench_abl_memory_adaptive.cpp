// Ablation A1 (paper Sections 2/8.1): the memory-adaptive algorithm vs the
// non-adaptive Theta(D) variant. After controllers fail, the adaptive
// algorithm actively deletes their state — per-switch memory tracks the
// actual controller count n_C; the non-adaptive variant retains dead
// controllers' rules (up to N_C/n_C higher memory) but never risks
// C-resets or illegitimate deletions.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Ablation — memory adaptiveness (Section 8.1 variant)",
                      "state retained after 3 of 5 controllers fail");
  std::printf("%-14s %18s %18s %12s\n", "variant", "rules/switch(avg)",
              "owners/switch(max)", "deletions");
  for (bool adaptive : {true, false}) {
    auto cfg = bench::paper_config("B4", 5, 1);
    cfg.memory_adaptive = adaptive;
    sim::Experiment exp(cfg);
    // The non-adaptive variant cannot reach our strict Definition-1 state
    // (it never purges stale owners); run both time-bounded instead.
    exp.sim().run_until(sec(30));
    auto cp = exp.control_plane();
    faults::kill_random_controllers(cp, exp.fault_rng(), 3);
    exp.sim().run_until(exp.sim().now() + sec(30));

    double total_rules = 0;
    std::size_t max_owners = 0;
    for (auto* s : exp.switches()) {
      total_rules += static_cast<double>(s->rule_table().total_rules());
      max_owners = std::max(max_owners, s->rule_table().owners().size());
    }
    std::uint64_t deletions = 0;
    for (std::size_t k = 0; k < exp.controller_count(); ++k) {
      deletions += exp.controller(k).stats().deletions_sent;
    }
    std::printf("%-14s %18.1f %18zu %12llu\n",
                adaptive ? "adaptive" : "non-adaptive",
                total_rules / static_cast<double>(exp.switches().size()),
                max_owners, static_cast<unsigned long long>(deletions));
  }
  return 0;
}

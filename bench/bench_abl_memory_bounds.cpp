// Ablation A3 (paper Lemmas 1-3): measured memory/message sizes against
// the analytical bounds, per network.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Ablation — memory & message bounds (Lemmas 1-3)",
                      "measured peaks vs analytical bounds after bootstrap");
  std::printf("%-10s %14s %14s %12s %12s %14s\n", "Network", "rules/sw(max)",
              "Lemma1 bound", "replyDB(max)", "2(Nc+Ns)", "maxMsg(bytes)");
  for (const auto& t : topo::paper_topologies()) {
    const int nc = 3;
    sim::Experiment exp(bench::paper_config(t.name, nc, 1));
    const auto res = exp.run_until_legitimate(sec(300));
    if (!res.converged) continue;
    exp.sim().run_until(exp.sim().now() + sec(3));
    std::size_t max_rules = 0;
    for (auto* s : exp.switches()) {
      max_rules = std::max(max_rules, s->rule_table().total_rules());
    }
    std::size_t max_db = 0;
    for (std::size_t k = 0; k < exp.controller_count(); ++k) {
      max_db = std::max(max_db, exp.controller(k).reply_db().size());
    }
    const std::size_t n = static_cast<std::size_t>(t.switch_graph.n()) + nc;
    const std::size_t lemma1 =
        static_cast<std::size_t>(nc) * (n - 1) *
        static_cast<std::size_t>(exp.config().kappa + 2);
    std::printf("%-10s %14zu %14zu %12zu %12zu %14llu\n", t.name.c_str(),
                max_rules, lemma1, max_db, 2 * n,
                static_cast<unsigned long long>(
                    exp.sim().counters().max_control_message_bytes));
  }
  return 0;
}

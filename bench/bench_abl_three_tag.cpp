// Ablation A2 (paper Section 6.2): the two-tag base algorithm vs the
// three-tag evaluation variant. The extra retained round keeps the
// previous kappa-fault-resilient flows installed while new ones roll out,
// which shows up as a shallower throughput valley around reconfigurations.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Ablation — rule retention: 2 tags vs 3 tags",
                      "throughput valley depth around the failover");
  std::printf("%-10s %10s %12s %12s %12s\n", "variant", "steady", "valley",
              "recovered", "retx-max%");
  for (int retention : {2, 3}) {
    auto cfg = bench::paper_config("B4", 3, 1);
    cfg.with_hosts = true;
    cfg.rule_retention = retention;
    cfg.link_latency = 16'000 / (2 * (5 + 2));
    sim::Experiment exp(cfg);
    sim::Experiment::ThroughputRun run;
    run.duration = sec(30);
    run.fail_at = sec(10);
    run.tcp.rwnd = 1u << 20;
    const auto r = exp.run_throughput(run);
    if (!r.ok) {
      std::printf("%-10d (did not converge)\n", retention);
      continue;
    }
    const double steady = (r.mbits[6] + r.mbits[7] + r.mbits[8]) / 3;
    double valley = steady;
    for (int i = 9; i < 15; ++i)
      valley = std::min(valley, r.mbits[static_cast<std::size_t>(i)]);
    const double recovered = (r.mbits[26] + r.mbits[27] + r.mbits[28]) / 3;
    double retx = 0;
    for (double v : r.retx_pct) retx = std::max(retx, v);
    std::printf("%-10d %10.0f %12.0f %12.0f %12.1f\n", retention, steady,
                valley, recovered, retx);
  }
  return 0;
}

// Byzantine-adversary campaign: convergence, availability and blast-radius
// aggregates under the adversarial fault family (faults/adversary.hpp), plus
// the determinism gate the family must honor.
//
//   bench_byzantine [--quick] [--json FILE] [--trials N]
//
// For each fabric (ATT, fat_tree:k=8) and each adversary mode (lying,
// corrupting) the bench runs the same campaign — bootstrap, adversary window
// at t=5..20s, cure, re-stabilization checkpoint — once per simulation shard
// count in {1, 2, 4}, and gates on the three reports being byte-identical
// (the adversary draws from per-node RNG streams and the watchdog reads at
// barriers, so --sim-threads must stay a pure wall-clock knob). Reported per
// cell: re-stabilization convergence time, time below legitimacy
// (availability), illegitimate episodes, blast radius, and how many trials
// re-stabilized after the cure.
//
// --quick (CI) runs ATT x lying at shard counts {1, 4} with one trial.
// Writes BENCH_byzantine.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ren;

scenario::Scenario byzantine_scenario(const std::string& topology,
                                      const std::string& mode, int trials) {
  scenario::Scenario s;
  s.name = "byzantine_" + mode;
  s.description = "adversary window t=5..20s, mode " + mode;
  s.topologies = {topology};
  s.controllers = {3};
  s.trials = trials;
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.start_adversary(sec(5), mode);
  s.stop_adversary(sec(20));
  s.expect_converged(sec(20), "restabilize", sec(120));
  return s;
}

struct CellReport {
  std::string topology;
  std::string mode;
  bool identical = false;     ///< reports byte-identical across shard counts
  int trials = 0;
  int restabilized = 0;       ///< trials legitimate again after the cure
  double restab_p50_s = 0;    ///< median re-stabilization time
  double below_p50_s = 0;     ///< median time below legitimacy
  double episodes_p50 = 0;    ///< median illegitimate episodes
  double blast_p50 = 0;       ///< median blast radius (fraction of switches)
};

CellReport run_cell(const std::string& topology, const std::string& mode,
                    int trials, const std::vector<int>& shard_counts) {
  CellReport rep;
  rep.topology = topology;
  rep.mode = mode;
  std::string first_json;
  rep.identical = true;
  scenario::CampaignResult first;
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    scenario::RunnerOptions opt;
    opt.sim_threads = shard_counts[i];
    auto result =
        scenario::run_campaign(byzantine_scenario(topology, mode, trials), opt);
    const std::string rendered = result.to_json().pretty();
    if (i == 0) {
      first_json = rendered;
      first = std::move(result);
    } else if (rendered != first_json) {
      rep.identical = false;
    }
  }
  if (!first.cells.empty()) {
    const auto& c = first.cells.front();
    rep.trials = c.trials;
    rep.restabilized = c.wd_restabilized;
    rep.below_p50_s = c.wd_below_s.p50;
    rep.episodes_p50 = c.wd_episodes.p50;
    rep.blast_p50 = c.wd_blast_radius.p50;
    for (const auto& cp : c.checkpoints) {
      if (cp.label == "restabilize") rep.restab_p50_s = cp.seconds.p50;
    }
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_byzantine.json";
  int trials = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
      if (trials <= 0) {
        std::fprintf(stderr, "usage: %s [--quick] [--json FILE] [--trials N>0]\n",
                     argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE] [--trials N>0]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trials == 0) trials = quick ? 1 : 4;

  const std::vector<std::string> fabrics =
      quick ? std::vector<std::string>{"ATT"}
            : std::vector<std::string>{"ATT", "fat_tree:k=8"};
  const std::vector<std::string> modes =
      quick ? std::vector<std::string>{"lying"}
            : std::vector<std::string>{"lying", "corrupting"};
  const std::vector<int> shard_counts =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};

  bench::print_header(
      "Byzantine adversary campaign — damage, recovery, determinism",
      "Section 7 discussion: behavior outside the benign fault model");

  bool all_pass = true;
  scenario::Json jcells{scenario::JsonArray{}};
  std::printf("%-14s %-12s %8s %12s %10s %9s %7s %12s\n", "fabric", "mode",
              "trials", "restab (s)", "below (s)", "episodes", "blast",
              "restabilized");
  for (const auto& fabric : fabrics) {
    for (const auto& mode : modes) {
      const CellReport rep = run_cell(fabric, mode, trials, shard_counts);
      if (!rep.identical || rep.restabilized != rep.trials) all_pass = false;
      std::printf("%-14s %-12s %8d %12.2f %10.2f %9.1f %7.2f %9d/%d %s\n",
                  rep.topology.c_str(), rep.mode.c_str(), rep.trials,
                  rep.restab_p50_s, rep.below_p50_s, rep.episodes_p50,
                  rep.blast_p50, rep.restabilized, rep.trials,
                  rep.identical ? "" : "DIVERGED across --sim-threads");
      scenario::Json jc;
      jc.set("topology", rep.topology);
      jc.set("mode", rep.mode);
      jc.set("trials", rep.trials);
      jc.set("identical_across_sim_threads", rep.identical);
      jc.set("restabilize_p50_s", rep.restab_p50_s);
      jc.set("below_legitimacy_p50_s", rep.below_p50_s);
      jc.set("episodes_p50", rep.episodes_p50);
      jc.set("blast_radius_p50", rep.blast_p50);
      jc.set("restabilized", rep.restabilized);
      jcells.push_back(std::move(jc));
    }
  }

  scenario::Json doc;
  doc.set("bench", "byzantine");
  doc.set("mode", quick ? "quick" : "full");
  doc.set("trials", trials);
  doc.set("pass", all_pass);
  doc.set("cells", std::move(jcells));
  std::ofstream out(json_path);
  out << doc.pretty();
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  std::printf("%s\n",
              all_pass ? "PASS (byte-identical reports at --sim-threads 1/2/4; "
                         "every trial re-stabilized after the cure)"
                       : "FAIL (see rows above)");
  return all_pass ? 0 : 1;
}

// Shared infrastructure for the per-figure benchmark harnesses.
//
// Parameters mirror the paper's setup (Section 6.3): 500 ms task delay,
// Theta = 10 for the small networks (B4, Clos) and 30 for the Rocketfuel
// ones, kappa = 2, the three-tag evaluation variant, 1000 Mbit/s links,
// 20 repetitions with the two extrema dismissed. One deliberate deviation,
// recorded in EXPERIMENTS.md: the local discovery probes run every 100 ms
// (the paper's wall-clock recovery numbers imply sub-second failure
// detection, which Theta * 500 ms would not give).
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "renaissance.hpp"

namespace ren::bench {

inline constexpr int kRuns = 20;               // paper: 20 repetitions
inline constexpr std::uint64_t kBaseSeed = 1;  // seeds kBaseSeed..+runs-1

inline int theta_for(const std::string& topology) {
  return (topology == "B4" || topology == "Clos") ? 10 : 30;
}

inline sim::ExperimentConfig paper_config(const std::string& topology,
                                          int controllers,
                                          std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  cfg.topology = topology;
  cfg.controllers = controllers;
  cfg.kappa = 2;
  cfg.task_delay = msec(500);
  cfg.detect_interval = msec(100);
  cfg.theta = theta_for(topology);
  cfg.rule_retention = 3;  // the Section 6.2 evaluation variant
  cfg.seed = seed;
  return cfg;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

/// One violin row, after the paper's methodology (extrema dismissed).
inline void print_violin_row(const std::string& label, const Sample& raw,
                             const char* unit = "s") {
  const Sample s = raw.size() > 2 ? raw.drop_extrema() : raw;
  const auto v = s.violin();
  std::printf("%-14s %s [%s]\n", label.c_str(), format_violin(v, 2).c_str(),
              unit);
}

/// Print a per-second series like the paper's line plots.
inline void print_series(const std::string& label,
                         const std::vector<double>& series, int precision = 0) {
  std::printf("%-14s", label.c_str());
  for (double v : series) std::printf(" %.*f", precision, v);
  std::printf("\n");
}

// --- Scenario-engine ports ---------------------------------------------------
//
// Every figure harness is a declarative Scenario executed by the parallel
// campaign runner (scenario::run_campaign); the helpers below only build
// scenarios and render campaign reports. There are deliberately no serial
// sweep loops here anymore.

/// Trial count from argv[1] (default `def`); exits with a usage error on
/// anything that is not a positive integer. "--quick" (any position) is
/// reported via *quick for harnesses with a CI smoke mode and implies one
/// trial unless a count is also given.
inline int trials_from_argv(int argc, char** argv, int def = kRuns,
                            bool* quick = nullptr) {
  int trials = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" && quick != nullptr) {
      *quick = true;
      continue;
    }
    char* end = nullptr;
    const long v = std::strtol(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || v <= 0) {
      std::fprintf(stderr, "usage: %s [trials>0]%s\n", argv[0],
                   quick != nullptr ? " [--quick]" : "");
      std::exit(2);
    }
    trials = static_cast<int>(v);
  }
  if (trials > 0) return trials;
  if (quick != nullptr && *quick) return 1;
  return def;
}

/// The paper's evaluation axes for a figure-port scenario: all five Table 8
/// topologies, 3 controllers, seeded like the hand-rolled harnesses.
inline void paper_axes(scenario::Scenario& s, int trials) {
  s.topologies.clear();
  for (const auto& t : topo::paper_topologies()) s.topologies.push_back(t.name);
  s.controllers = {3};
  s.trials = trials;
  s.base_seed = kBaseSeed;
}

/// The Section 6.4.3 throughput campaign (Figs. 15-20): the built-in
/// `throughput_window` timeline over the five paper topologies. The
/// no-recovery variant (Fig. 16) freezes the controllers at the failure
/// instant, *before* the fail_path_link event (declaration order breaks the
/// timestamp tie), so only pre-installed backup paths carry traffic
/// afterwards.
inline scenario::Scenario throughput_scenario(bool with_recovery, int trials) {
  scenario::Scenario s = scenario::builtin("throughput_window");
  const std::uint64_t keep_seed = s.base_seed;
  paper_axes(s, trials);
  s.base_seed = keep_seed;
  if (!with_recovery) {
    s.name = "fig16_throughput_norecovery";
    for (std::size_t i = 0; i < s.events.size(); ++i) {
      if (s.events[i].kind != scenario::EventKind::FailPathLink) continue;
      scenario::Event freeze;
      freeze.at = s.events[i].at;
      freeze.kind = scenario::EventKind::Freeze;
      s.events.insert(s.events.begin() + static_cast<std::ptrdiff_t>(i),
                      freeze);
      break;
    }
  } else {
    s.name = "fig15_throughput";
  }
  return s;
}

/// The named traffic-window aggregate of a cell, nullptr when absent (e.g.
/// the trial errored before the window opened).
inline const scenario::CellResult::WindowAgg* find_window(
    const scenario::CellResult& cell, const std::string& label) {
  for (const auto& w : cell.windows) {
    if (w.label == label) return &w;
  }
  return nullptr;
}

/// Run a throughput campaign and print one per-second series per network,
/// selected by `pick` (Figs. 15/16/18/19/20 share this shape).
inline void print_throughput_series(
    const scenario::CampaignResult& result,
    const std::function<const std::vector<double>&(
        const scenario::CellResult::WindowAgg&)>& pick,
    int precision = 0) {
  for (const auto& cell : result.cells) {
    const auto* w = find_window(cell, "window");
    if (w == nullptr || w->trials == 0) {
      std::printf("%-14s (experiment did not converge)\n",
                  cell.topology.c_str());
      continue;
    }
    const int diameter = topo::by_name(cell.topology).expected_diameter;
    print_series(cell.topology + " (D=" + std::to_string(diameter) + ")",
                 pick(*w), precision);
  }
}

/// Per-trial seconds of the named checkpoint from a --raw cell. Trials
/// whose `require_converged` checkpoint did not converge are skipped —
/// the guard the old serial recovery loops applied (a recovery measured
/// on a never-legitimate network would skew the figure).
inline Sample checkpoint_sample(const scenario::CellResult& cell,
                                const std::string& label,
                                const char* require_converged = "bootstrap") {
  Sample s;
  for (const auto& [r, out] : cell.raw) {
    (void)r;
    bool eligible = require_converged == nullptr;
    if (!eligible) {
      for (const auto& cp : out.checkpoints) {
        if (cp.label == require_converged && cp.converged) eligible = true;
      }
    }
    if (!eligible) continue;
    for (const auto& cp : out.checkpoints) {
      if (cp.label == label) s.add(cp.seconds);
    }
  }
  return s;
}

/// One row per topology for the named checkpoint of a campaign result.
inline void print_checkpoint_rows(const scenario::CampaignResult& result,
                                  const std::string& label) {
  for (const auto& cell : result.cells) {
    for (const auto& cp : cell.checkpoints) {
      if (cp.label != label) continue;
      const auto& p = cp.seconds;
      std::printf("%-14s med=%.2f [p90=%.2f] (min=%.2f max=%.2f) n=%zu "
                  "converged=%d/%d [s]\n",
                  cell.topology.c_str(), p.p50, p.p90, p.min, p.max, p.n,
                  cp.converged, cp.trials);
    }
  }
}

}  // namespace ren::bench

// Shared infrastructure for the per-figure benchmark harnesses.
//
// Parameters mirror the paper's setup (Section 6.3): 500 ms task delay,
// Theta = 10 for the small networks (B4, Clos) and 30 for the Rocketfuel
// ones, kappa = 2, the three-tag evaluation variant, 1000 Mbit/s links,
// 20 repetitions with the two extrema dismissed. One deliberate deviation,
// recorded in EXPERIMENTS.md: the local discovery probes run every 100 ms
// (the paper's wall-clock recovery numbers imply sub-second failure
// detection, which Theta * 500 ms would not give).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "renaissance.hpp"

namespace ren::bench {

inline constexpr int kRuns = 20;               // paper: 20 repetitions
inline constexpr std::uint64_t kBaseSeed = 1;  // seeds kBaseSeed..+runs-1

inline int theta_for(const std::string& topology) {
  return (topology == "B4" || topology == "Clos") ? 10 : 30;
}

inline sim::ExperimentConfig paper_config(const std::string& topology,
                                          int controllers,
                                          std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  cfg.topology = topology;
  cfg.controllers = controllers;
  cfg.kappa = 2;
  cfg.task_delay = msec(500);
  cfg.detect_interval = msec(100);
  cfg.theta = theta_for(topology);
  cfg.rule_retention = 3;  // the Section 6.2 evaluation variant
  cfg.seed = seed;
  return cfg;
}

/// Bootstrap-time sample over `runs` seeded repetitions (seconds).
inline Sample bootstrap_sample(const std::string& topology, int controllers,
                               int runs = kRuns, Time limit = sec(300)) {
  Sample s;
  for (int r = 0; r < runs; ++r) {
    sim::Experiment exp(
        paper_config(topology, controllers, kBaseSeed + static_cast<std::uint64_t>(r)));
    const auto res = exp.run_until_legitimate(limit);
    s.add(res.converged ? res.seconds : to_seconds(limit));
  }
  return s;
}

/// Recovery-time sample: bootstrap, apply `inject`, measure re-legitimacy.
/// `inject` returns false to skip a run (e.g. no candidate fault).
inline Sample recovery_sample(
    const std::string& topology, int controllers,
    const std::function<bool(sim::Experiment&)>& inject, int runs = kRuns,
    Time limit = sec(300)) {
  Sample s;
  for (int r = 0; r < runs; ++r) {
    sim::Experiment exp(
        paper_config(topology, controllers, kBaseSeed + static_cast<std::uint64_t>(r)));
    const auto boot = exp.run_until_legitimate(limit);
    if (!boot.converged) continue;
    if (!inject(exp)) continue;
    const auto rec = exp.run_until_legitimate(limit);
    s.add(rec.converged ? rec.seconds : to_seconds(limit));
  }
  return s;
}

/// The Section 6.4.3 throughput experiment for one network. Link latency is
/// calibrated per network so the host-to-host RTT lands near 16 ms, which
/// with a 1 MiB receive window gives the paper's ~525 Mbit/s steady state
/// on 1000 Mbit/s links.
inline sim::Experiment::ThroughputResult throughput_run(
    const std::string& topology, bool with_recovery,
    std::uint64_t seed = kBaseSeed) {
  auto cfg = paper_config(topology, 3, seed);
  cfg.with_hosts = true;
  const int diameter = topo::by_name(topology).expected_diameter;
  cfg.link_latency = 16'000 / (2 * (diameter + 2));
  sim::Experiment exp(cfg);
  sim::Experiment::ThroughputRun run;
  run.duration = sec(30);
  run.fail_at = sec(10);
  run.with_recovery = with_recovery;
  run.tcp.rwnd = 1u << 20;
  return exp.run_throughput(run);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

/// One violin row, after the paper's methodology (extrema dismissed).
inline void print_violin_row(const std::string& label, const Sample& raw,
                             const char* unit = "s") {
  const Sample s = raw.size() > 2 ? raw.drop_extrema() : raw;
  const auto v = s.violin();
  std::printf("%-14s %s [%s]\n", label.c_str(), format_violin(v, 2).c_str(),
              unit);
}

/// Print a per-second series like the paper's line plots.
inline void print_series(const std::string& label,
                         const std::vector<double>& series, int precision = 0) {
  std::printf("%-14s", label.c_str());
  for (double v : series) std::printf(" %.*f", precision, v);
  std::printf("\n");
}

// --- Scenario-engine ports ---------------------------------------------------

/// Trial count from argv[1] (default `def`); exits with a usage error on
/// anything that is not a positive integer.
inline int trials_from_argv(int argc, char** argv, int def = kRuns) {
  if (argc <= 1) return def;
  char* end = nullptr;
  const long v = std::strtol(argv[1], &end, 10);
  if (end == argv[1] || *end != '\0' || v <= 0) {
    std::fprintf(stderr, "usage: %s [trials>0]\n", argv[0]);
    std::exit(2);
  }
  return static_cast<int>(v);
}

/// The paper's evaluation axes for a figure-port scenario: all five Table 8
/// topologies, 3 controllers, seeded like the hand-rolled harnesses.
inline void paper_axes(scenario::Scenario& s, int trials) {
  s.topologies.clear();
  for (const auto& t : topo::paper_topologies()) s.topologies.push_back(t.name);
  s.controllers = {3};
  s.trials = trials;
  s.base_seed = kBaseSeed;
}

/// One row per topology for the named checkpoint of a campaign result.
inline void print_checkpoint_rows(const scenario::CampaignResult& result,
                                  const std::string& label) {
  for (const auto& cell : result.cells) {
    for (const auto& cp : cell.checkpoints) {
      if (cp.label != label) continue;
      const auto& p = cp.seconds;
      std::printf("%-14s med=%.2f [p90=%.2f] (min=%.2f max=%.2f) n=%zu "
                  "converged=%d/%d [s]\n",
                  cell.topology.c_str(), p.p50, p.p90, p.min, p.max, p.n,
                  cp.converged, cp.trials);
    }
  }
}

}  // namespace ren::bench

// Line-19 fan-out hot path: planned shared-payload batches (PR 4) versus
// per-tick from-scratch CommandBatch rebuilds, on the large Rocketfuel
// networks where — after PR 3 made view construction cache-hit — the
// per-peer batch assembly and transport submit dominate the tick.
//
//   bench_fanout [--quick] [--json FILE] [samples]
//
// For ATT and EBONE: bootstrap once, settle, then sample the cost of the
// fan-out section of one scheduled Controller::run_iteration() — steady
// state and churn (link flaps every few ticks) — with the batch planner
// enabled and with it disabled (Config::plan_batches = false, which
// rebuilds every per-peer batch exactly like the seed did). Samples come
// from the in-situ fan-out probe, so the protocol under test is never
// perturbed. The harness also counts heap allocations per fan-out (global
// operator new hook).
//
// Acceptance: >= 3x median steady-state speedup on both networks (the
// --quick smoke run used by CI gates at a lenient 1.5x to stay robust on
// noisy shared runners; the full run enforces the real bar).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>

#include "bench_common.hpp"

// --- Allocation counting -----------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ren;
using Clock = std::chrono::steady_clock;

struct PhaseCost {
  double median_us = 0;
  double mean_allocs = 0;
};

sim::ExperimentConfig fanout_config(const std::string& topology,
                                    bool plan_batches) {
  // Fast timer profile: the per-fan-out cost under test is timer-rate
  // independent, while paper timers would burn minutes of wall clock just
  // simulating the bootstrap on these networks.
  sim::ExperimentConfig cfg;
  cfg.topology = topology;
  cfg.controllers = 3;
  cfg.kappa = 2;
  cfg.seed = bench::kBaseSeed;
  cfg.task_delay = msec(50);
  cfg.detect_interval = msec(10);
  cfg.monitor_interval = msec(25);
  cfg.link_latency = usec(100);
  cfg.theta = 10;
  cfg.rule_retention = 3;
  cfg.plan_batches = plan_batches;
  return cfg;
}

/// Sample the fan-out section of the *scheduled* do-forever iterations of
/// the first live controller via the fan-out probe. Churn mode additionally
/// flaps links between windows.
PhaseCost measure_phase(sim::Experiment& exp, int samples, bool churn,
                        Rng& churn_rng) {
  core::Controller* c = nullptr;
  for (auto* cand : exp.controllers()) {
    if (cand->alive()) {
      c = cand;
      break;
    }
  }
  if (c == nullptr) std::abort();
  auto cp = exp.control_plane();
  Sample us;
  double allocs = 0;
  std::uint64_t measured = 0;
  Clock::time_point t0;
  std::uint64_t a0 = 0;
  c->set_fanout_probe([&](bool begin) {
    if (begin) {
      a0 = g_allocations.load(std::memory_order_relaxed);
      t0 = Clock::now();
      return;
    }
    us.add(std::chrono::duration<double, std::micro>(Clock::now() - t0)
               .count());
    allocs += static_cast<double>(
        g_allocations.load(std::memory_order_relaxed) - a0);
    ++measured;
  });
  int window = 0;
  while (measured < static_cast<std::uint64_t>(samples)) {
    if (churn && window % 4 == 0) {
      if (window % 8 == 0) {
        faults::fail_random_links(cp, churn_rng, 1, /*keep_connected=*/true);
      } else {
        faults::restore_all_links(cp);
      }
    }
    exp.sim().run_until(exp.sim().now() + exp.config().task_delay);
    ++window;
  }
  c->set_fanout_probe(nullptr);
  return {us.median(), allocs / static_cast<double>(measured)};
}

struct NetworkRow {
  std::string name;
  PhaseCost steady_planned, steady_fresh, churn_planned, churn_fresh;
  [[nodiscard]] double steady_speedup() const {
    return steady_fresh.median_us / steady_planned.median_us;
  }
  [[nodiscard]] double churn_speedup() const {
    return churn_fresh.median_us / churn_planned.median_us;
  }
};

bool run_network(const std::string& topology, int samples, NetworkRow& row) {
  row.name = topology;
  for (const bool planned : {true, false}) {
    sim::Experiment exp(fanout_config(topology, planned));
    const auto boot = exp.run_until_legitimate(sec(600));
    if (!boot.converged) {
      std::printf("%-10s bootstrap failed (%s): %s\n", topology.c_str(),
                  planned ? "planned" : "fresh", boot.last_reason.c_str());
      return false;
    }
    // Settle onto the converged fixed point.
    for (int i = 0; i < 20; ++i) {
      exp.sim().run_until(exp.sim().now() + exp.config().task_delay);
    }
    // Same churn seed for both configurations: the planned and fresh runs
    // must flap the same links so the churn speedup compares like workloads.
    Rng churn_rng(0xfa0007);
    (planned ? row.steady_planned : row.steady_fresh) =
        measure_phase(exp, samples, /*churn=*/false, churn_rng);
    (planned ? row.churn_planned : row.churn_fresh) =
        measure_phase(exp, samples, /*churn=*/true, churn_rng);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  int samples = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      samples = 60;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      samples = std::atoi(argv[i]);
      if (samples <= 0) {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--json FILE] [samples>0]\n",
                     argv[0]);
        return 2;
      }
    }
  }
  const double bar = quick ? 1.5 : 3.0;

  bench::print_header(
      "Line-19 fan-out hot path — planned shared batches vs per-tick rebuild",
      "one batch build per state change; acceptance: >=3x steady median on "
      "ATT/EBONE");
  std::printf("%-8s %-8s %12s %12s %9s %13s %12s\n", "Network", "phase",
              "planned (us)", "fresh (us)", "speedup", "planned allocs",
              "fresh allocs");

  bool all_pass = true;
  scenario::Json rows{scenario::JsonArray{}};
  for (const std::string topology : {"ATT", "EBONE"}) {
    NetworkRow row;
    if (!run_network(topology, samples, row)) {
      all_pass = false;
      continue;
    }
    std::printf("%-8s %-8s %12.2f %12.2f %8.1fx %13.1f %12.1f\n",
                topology.c_str(), "steady", row.steady_planned.median_us,
                row.steady_fresh.median_us, row.steady_speedup(),
                row.steady_planned.mean_allocs, row.steady_fresh.mean_allocs);
    std::printf("%-8s %-8s %12.2f %12.2f %8.1fx %13.1f %12.1f\n",
                topology.c_str(), "churn", row.churn_planned.median_us,
                row.churn_fresh.median_us, row.churn_speedup(),
                row.churn_planned.mean_allocs, row.churn_fresh.mean_allocs);
    if (row.steady_speedup() < bar) all_pass = false;

    scenario::Json rj;
    rj.set("network", topology);
    rj.set("steady_planned_us", row.steady_planned.median_us);
    rj.set("steady_fresh_us", row.steady_fresh.median_us);
    rj.set("steady_speedup", row.steady_speedup());
    rj.set("steady_planned_allocs", row.steady_planned.mean_allocs);
    rj.set("steady_fresh_allocs", row.steady_fresh.mean_allocs);
    rj.set("churn_planned_us", row.churn_planned.median_us);
    rj.set("churn_fresh_us", row.churn_fresh.median_us);
    rj.set("churn_speedup", row.churn_speedup());
    rj.set("churn_planned_allocs", row.churn_planned.mean_allocs);
    rj.set("churn_fresh_allocs", row.churn_fresh.mean_allocs);
    rows.push_back(std::move(rj));
  }

  if (!json_path.empty()) {
    scenario::Json doc;
    doc.set("bench", "fanout");
    doc.set("mode", quick ? "quick" : "full");
    doc.set("samples", samples);
    doc.set("acceptance_speedup", bar);
    doc.set("pass", all_pass);
    doc.set("networks", std::move(rows));
    std::ofstream out(json_path);
    out << doc.pretty();
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  std::printf("%s\n", all_pass
                          ? (quick ? "PASS (quick gate >=1.5x; full bar 3x)"
                                   : "PASS (>=3x steady on all networks)")
                          : "FAIL (below the speedup bar, see above)");
  return all_pass ? 0 : 1;
}

// Fig. 5: bootstrap time for the five networks with 3 controllers.
// Paper shape: time grows with network size/diameter (B4 fastest, EBONE
// slowest; medians roughly 5..55 s on their testbed).
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 5 — bootstrap time, 3 controllers",
                      "violin per network; growth with diameter and size");
  for (const auto& t : topo::paper_topologies()) {
    const auto s = bench::bootstrap_sample(t.name, 3);
    bench::print_violin_row(t.name + " (D=" + std::to_string(t.expected_diameter) + ")",
                            s);
  }
  return 0;
}

// Fig. 5: bootstrap time for the five networks with 3 controllers.
// Paper shape: time grows with network size/diameter (B4 fastest, EBONE
// slowest; medians roughly 5..55 s on their testbed).
//
// Ported onto the scenario engine: one bootstrap checkpoint swept over the
// paper topologies by the parallel campaign runner, instead of the
// bench_common serial loop.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 5 — bootstrap time, 3 controllers",
                      "violin per network; growth with diameter and size");

  scenario::Scenario s;
  s.name = "fig05_bootstrap";
  s.description = "bootstrap to the first legitimate state, 3 controllers";
  bench::paper_axes(s, bench::trials_from_argv(argc, argv));
  s.expect_converged(sec(0), "bootstrap", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_checkpoint_rows(scenario::run_campaign(s, opt), "bootstrap");
  return 0;
}

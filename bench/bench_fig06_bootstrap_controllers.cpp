// Fig. 6: bootstrap time for Telstra (T), AT&T (A) and EBONE (E) with a
// growing number of controllers (paper: 1..7; more controllers => slightly
// longer bootstrap).
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 6 — bootstrap vs controller count",
                      "T1..T7, A2..A6, E1..E7 columns of the paper");
  const int runs = 10;  // reduced repetitions; shapes are stable
  struct Column {
    const char* net;
    char letter;
    std::vector<int> counts;
  };
  const Column columns[] = {
      {"Telstra", 'T', {1, 3, 5, 7}},
      {"ATT", 'A', {2, 4, 6}},
      {"EBONE", 'E', {1, 3, 5, 7}},
  };
  for (const auto& col : columns) {
    for (int nc : col.counts) {
      const auto s = bench::bootstrap_sample(col.net, nc, runs);
      bench::print_violin_row(std::string(1, col.letter) + std::to_string(nc),
                              s);
    }
  }
  return 0;
}

// Fig. 6: bootstrap time for Telstra (T), AT&T (A) and EBONE (E) with a
// growing number of controllers (paper: 1..7; more controllers => slightly
// longer bootstrap).
//
// Ported onto the scenario engine: each network column is one campaign with
// the controller-count axis of the paper, run by the parallel campaign
// runner instead of the bench_common serial loop.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 6 — bootstrap vs controller count",
                      "T1..T7, A2..A6, E1..E7 columns of the paper");
  const int trials = bench::trials_from_argv(argc, argv, /*def=*/10);

  struct Column {
    const char* net;
    char letter;
    std::vector<int> counts;
  };
  const Column columns[] = {
      {"Telstra", 'T', {1, 3, 5, 7}},
      {"ATT", 'A', {2, 4, 6}},
      {"EBONE", 'E', {1, 3, 5, 7}},
  };
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  for (const auto& col : columns) {
    scenario::Scenario s;
    s.name = "fig06_bootstrap_controllers";
    s.description = "bootstrap vs controller count";
    s.topologies = {col.net};
    s.controllers = col.counts;
    s.trials = trials;
    s.base_seed = bench::kBaseSeed;
    s.expect_converged(sec(0), "bootstrap", sec(300));
    const auto result = scenario::run_campaign(s, opt);
    for (const auto& cell : result.cells) {
      for (const auto& cp : cell.checkpoints) {
        if (cp.label != "bootstrap") continue;
        const auto& p = cp.seconds;
        std::printf("%-14s med=%.2f [p90=%.2f] (min=%.2f max=%.2f) n=%zu "
                    "converged=%d/%d [s]\n",
                    (std::string(1, col.letter) +
                     std::to_string(cell.controllers))
                        .c_str(),
                    p.p50, p.p90, p.min, p.max, p.n, cp.converged, cp.trials);
      }
    }
  }
  return 0;
}

// Fig. 7: bootstrap time as a function of the task delay (the pause before
// each do-forever repetition and each neighborhood-discovery interval),
// seven controllers. Paper shape: bootstrap time falls roughly linearly
// with the delay, until very small delays overwhelm the network (rightmost
// congestion peaks, rising earlier for the larger networks).
//
// Ported onto the scenario engine: the delay sweep is a generic
// `task_delay_ms` axis (which also rescales the discovery interval at the
// profile's 5:1 ratio) crossed with the topology grid by the parallel
// campaign runner. Simulation-cost note: at the smallest delays the
// non-converging runs generate enormous event counts, so the scenario
// carries an event budget (`max_events`); exhausting either budget reports
// the cap (that *is* the congestion peak the paper plots).
//
// `--quick` (CI smoke): B4 only, two delays, one trial.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bool quick = false;
  const int trials = bench::trials_from_argv(argc, argv, 2, &quick);
  bench::print_header("Fig. 7 — bootstrap vs task delay, 7 controllers",
                      "per-network average bootstrap over the delay sweep");
  const std::vector<double> delays_ms =
      quick ? std::vector<double>{500, 100}
            : std::vector<double>{1000, 700, 500, 300, 100, 60, 20, 5};

  scenario::Scenario s;
  s.name = "fig07_task_delay";
  s.description = "bootstrap time as a function of the task delay";
  bench::paper_axes(s, trials);
  if (quick) s.topologies = {"B4"};
  s.controllers = {7};
  s.axis("task_delay_ms", delays_ms);
  s.max_events = 8'000'000;
  s.expect_converged(sec(0), "bootstrap", sec(30));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  const auto result = scenario::run_campaign(s, opt);

  std::printf("%-14s", "delay(s)");
  for (double d : delays_ms) std::printf(" %7.3f", d / 1000.0);
  std::printf("\n");
  for (const auto& t : s.topologies) {
    std::printf("%-14s", t.c_str());
    for (double d : delays_ms) {
      for (const auto& cell : result.cells) {
        if (cell.topology != t ||
            cell.axes != scenario::AxisPoint{{"task_delay_ms", d}})
          continue;
        std::printf(" %7.2f", cell.checkpoints.empty()
                                  ? 0.0
                                  : cell.checkpoints.front().seconds.mean);
      }
    }
    std::printf("\n");
  }
  return 0;
}

// Fig. 7: bootstrap time as a function of the task delay (the pause before
// each do-forever repetition and each neighborhood-discovery interval),
// seven controllers. Paper shape: bootstrap time falls roughly linearly
// with the delay, until very small delays overwhelm the network (rightmost
// congestion peaks, rising earlier for the larger networks).
//
// Simulation-cost note: at the smallest delays the non-converging runs
// generate enormous event counts, so each run additionally carries an
// event budget; exhausting either budget reports the cap (that *is* the
// congestion peak the paper plots).
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 7 — bootstrap vs task delay, 7 controllers",
                      "per-network average bootstrap over the delay sweep");
  const double delays_s[] = {1.0, 0.7, 0.5, 0.3, 0.1, 0.06, 0.02, 0.005};
  const int runs = 2;
  const Time limit = sec(30);  // cap == reported congestion ceiling
  const std::uint64_t event_budget = 8'000'000;

  std::printf("%-14s", "delay(s)");
  for (double d : delays_s) std::printf(" %7.3f", d);
  std::printf("\n");
  for (const auto& t : topo::paper_topologies()) {
    std::printf("%-14s", t.name.c_str());
    for (double d : delays_s) {
      Sample s;
      for (int r = 0; r < runs; ++r) {
        auto cfg = bench::paper_config(
            t.name, 7, bench::kBaseSeed + static_cast<std::uint64_t>(r));
        cfg.task_delay = static_cast<Time>(d * 1e6);
        cfg.detect_interval = std::max<Time>(msec(5), cfg.task_delay / 5);
        sim::Experiment exp(cfg);
        bool converged = false;
        const Time t0 = exp.sim().now();
        while (exp.sim().now() - t0 < limit &&
               exp.sim().events_executed() < event_budget) {
          exp.sim().run_until(exp.sim().now() + cfg.monitor_interval);
          if (exp.monitor().check().legitimate) {
            converged = true;
            break;
          }
        }
        s.add(converged ? to_seconds(exp.sim().now() - t0) : to_seconds(limit));
      }
      std::printf(" %7.2f", s.mean());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

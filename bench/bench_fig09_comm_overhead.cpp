// Fig. 9: communication cost per node for the maximum-loaded controller to
// reach a stable network, normalized by the number of iterations it takes
// to converge. Paper shape: similar across networks once normalized,
// slightly higher for the two largest (values roughly 5..25).
//
// Ported onto the scenario engine: the bootstrap checkpoint records the
// max-loaded controller's commands / iterations / node-count
// (`cmd_per_node_iter`), so the figure is two campaigns — the paper runs
// the small networks with 3 controllers and the Rocketfuel ones with 7 —
// whose raw per-trial samples feed the violin rows.
#include "bench_common.hpp"

namespace {

using namespace ren;

void run_and_print(const std::vector<std::string>& topologies,
                   int controllers, int trials) {
  scenario::Scenario s;
  s.name = "fig09_comm_overhead";
  s.description = "normalized bootstrap communication cost per node";
  bench::paper_axes(s, trials);
  s.topologies = topologies;
  s.controllers = {controllers};
  s.expect_converged(sec(0), "bootstrap", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  opt.include_raw = true;
  for (const auto& cell : scenario::run_campaign(s, opt).cells) {
    Sample sample;
    for (const auto& [r, out] : cell.raw) {
      (void)r;
      for (const auto& cp : out.checkpoints) {
        if (cp.label == "bootstrap" && cp.converged)
          sample.add(cp.cmd_per_node_iter);
      }
    }
    bench::print_violin_row(
        cell.topology + " (nC=" + std::to_string(cell.controllers) + ")",
        sample, "msgs/node/iter");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ren;
  const int trials = bench::trials_from_argv(argc, argv);
  bench::print_header(
      "Fig. 9 — communication cost per node (max-loaded controller)",
      "commands / iterations / nodes during bootstrap");
  run_and_print({"B4", "Clos"}, 3, trials);
  run_and_print({"Telstra", "ATT", "EBONE"}, 7, trials);
  return 0;
}

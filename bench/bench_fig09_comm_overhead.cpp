// Fig. 9: communication cost per node for the maximum-loaded controller to
// reach a stable network, normalized by the number of iterations it takes
// to converge. Paper shape: similar across networks once normalized,
// slightly higher for the two largest (values roughly 5..25).
#include <algorithm>

#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header(
      "Fig. 9 — communication cost per node (max-loaded controller)",
      "commands / iterations / nodes during bootstrap");
  for (const auto& t : topo::paper_topologies()) {
    const int nc = (t.name == "B4" || t.name == "Clos") ? 3 : 7;
    Sample s;
    for (int r = 0; r < bench::kRuns; ++r) {
      sim::Experiment exp(bench::paper_config(
          t.name, nc, bench::kBaseSeed + static_cast<std::uint64_t>(r)));
      const auto res = exp.run_until_legitimate(sec(300));
      if (!res.converged) continue;
      // Max-loaded controller by commands sent; normalize by its completed
      // iterations and the node count.
      double best = 0;
      for (std::size_t k = 0; k < res.commands.size(); ++k) {
        if (res.iterations[k] == 0) continue;
        const double per_node =
            static_cast<double>(res.commands[k]) /
            static_cast<double>(res.iterations[k]) /
            static_cast<double>(t.switch_graph.n() + nc);
        best = std::max(best, per_node);
      }
      s.add(best);
    }
    bench::print_violin_row(t.name + " (nC=" + std::to_string(nc) + ")", s,
                            "msgs/node/iter");
  }
  return 0;
}

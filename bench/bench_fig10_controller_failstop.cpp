// Fig. 10: recovery time after the fail-stop of one (random) controller.
// Paper shape: O(D)-ish medians of a few seconds, growing mildly with
// network size.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 10 — recovery after one controller fail-stop",
                      "stale manager/rule cleanup drives the recovery");
  for (const auto& t : topo::paper_topologies()) {
    const auto s = bench::recovery_sample(
        t.name, 3, [](sim::Experiment& exp) {
          auto cp = exp.control_plane();
          return faults::kill_random_controller(cp, exp.fault_rng()) != kNoNode;
        });
    bench::print_violin_row(t.name, s);
  }
  return 0;
}

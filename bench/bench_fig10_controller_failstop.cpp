// Fig. 10: recovery time after the fail-stop of one (random) controller.
// Paper shape: O(D)-ish medians of a few seconds, growing mildly with
// network size.
//
// Ported onto the scenario engine: the figure is now a two-checkpoint
// scenario (bootstrap, kill, recovery) swept over the paper topologies by
// the parallel campaign runner, instead of a hand-rolled serial loop.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 10 — recovery after one controller fail-stop",
                      "stale manager/rule cleanup drives the recovery");

  scenario::Scenario s;
  s.name = "fig10_controller_failstop";
  s.description = "recovery after one random controller fail-stop";
  bench::paper_axes(s, bench::trials_from_argv(argc, argv));
  s.expect_converged(sec(0), "bootstrap", sec(300));
  s.kill_controller(sec(150));
  s.expect_converged(sec(150), "recovery", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_checkpoint_rows(scenario::run_campaign(s, opt), "recovery");
  return 0;
}

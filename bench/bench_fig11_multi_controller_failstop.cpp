// Fig. 11: recovery time after 1..6 simultaneous controller fail-stops on
// Telstra/AT&T/EBONE running 7 controllers. Paper observation: the number
// of failed controllers does not correlate with the recovery time.
//
// Runs as ONE campaign: the victim count is the "victims" scenario axis
// (the kill event declares count = kCountAxis), so the 3 networks x 6 kill
// counts x trials grid is a single parallel run instead of 18 sequential
// campaigns.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  const int trials = bench::trials_from_argv(argc, argv, 10);
  bench::print_header("Fig. 11 — recovery after k controller fail-stops",
                      "T1..T6, A1..A6, E1..E6 of the paper");
  scenario::Scenario s;
  s.name = "fig11_multi_controller_failstop";
  s.description = "recovery after simultaneous controller fail-stops";
  bench::paper_axes(s, trials);
  s.topologies = {"Telstra", "ATT", "EBONE"};
  s.controllers = {7};
  s.axis("victims", {1, 2, 3, 4, 5, 6});
  s.expect_converged(sec(0), "bootstrap", sec(300));
  s.kill_controller(sec(150), scenario::kCountAxis);
  s.expect_converged(sec(150), "recovery", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  opt.include_raw = true;
  const auto result = scenario::run_campaign(s, opt);
  for (const auto& cell : result.cells) {
    int kills = 0;
    for (const auto& [name, value] : cell.axes) {
      if (name == "victims") kills = static_cast<int>(value);
    }
    bench::print_violin_row(
        std::string(1, cell.topology[0]) + std::to_string(kills),
        bench::checkpoint_sample(cell, "recovery"));
  }
  return 0;
}

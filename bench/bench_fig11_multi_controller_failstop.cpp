// Fig. 11: recovery time after 1..6 simultaneous controller fail-stops on
// Telstra/AT&T/EBONE running 7 controllers. Paper observation: the number
// of failed controllers does not correlate with the recovery time.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 11 — recovery after k controller fail-stops",
                      "T1..T6, A1..A6, E1..E6 of the paper");
  const int runs = 10;
  for (const char* net : {"Telstra", "ATT", "EBONE"}) {
    for (int kills : {1, 2, 3, 4, 5, 6}) {
      const auto s = bench::recovery_sample(
          net, 7,
          [kills](sim::Experiment& exp) {
            auto cp = exp.control_plane();
            return static_cast<int>(
                       faults::kill_random_controllers(cp, exp.fault_rng(), kills)
                           .size()) == kills;
          },
          runs);
      bench::print_violin_row(std::string(1, net[0]) + std::to_string(kills), s);
    }
  }
  return 0;
}

// Fig. 11: recovery time after 1..6 simultaneous controller fail-stops on
// Telstra/AT&T/EBONE running 7 controllers. Paper observation: the number
// of failed controllers does not correlate with the recovery time.
//
// Ported onto the scenario engine: one two-checkpoint campaign per
// (network, kill count) — the victim count is an event parameter, not a
// config axis — with the trials run in parallel by the campaign runner.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  const int trials = bench::trials_from_argv(argc, argv, 10);
  bench::print_header("Fig. 11 — recovery after k controller fail-stops",
                      "T1..T6, A1..A6, E1..E6 of the paper");
  for (const char* net : {"Telstra", "ATT", "EBONE"}) {
    for (int kills : {1, 2, 3, 4, 5, 6}) {
      scenario::Scenario s;
      s.name = "fig11_multi_controller_failstop";
      s.description = "recovery after simultaneous controller fail-stops";
      bench::paper_axes(s, trials);
      s.topologies = {net};
      s.controllers = {7};
      s.expect_converged(sec(0), "bootstrap", sec(300));
      s.kill_controller(sec(150), kills);
      s.expect_converged(sec(150), "recovery", sec(300));

      scenario::RunnerOptions opt;
      opt.paper_timers = true;
      opt.include_raw = true;
      const auto result = scenario::run_campaign(s, opt);
      Sample sample;
      for (const auto& cell : result.cells) {
        const Sample cs = bench::checkpoint_sample(cell, "recovery");
        for (double v : cs.values()) sample.add(v);
      }
      bench::print_violin_row(std::string(1, net[0]) + std::to_string(kills),
                              sample);
    }
  }
  return 0;
}

// Fig. 12: recovery time after one permanent switch failure (chosen so the
// remaining network stays connected). Paper shape: O(D) medians with large
// variance (the victim is random).
//
// Ported onto the scenario engine: a two-checkpoint scenario (bootstrap,
// kill one switch, recovery) swept over the paper topologies by the
// parallel campaign runner.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 12 — recovery after a switch fail-stop",
                      "longest recoveries grow with the network diameter");

  scenario::Scenario s;
  s.name = "fig12_switch_failure";
  s.description = "recovery after one connectivity-preserving switch kill";
  bench::paper_axes(s, bench::trials_from_argv(argc, argv));
  s.expect_converged(sec(0), "bootstrap", sec(300));
  s.kill_switches(sec(150), 1);
  s.expect_converged(sec(150), "recovery", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  opt.include_raw = true;
  for (const auto& cell : scenario::run_campaign(s, opt).cells) {
    bench::print_violin_row(cell.topology,
                            bench::checkpoint_sample(cell, "recovery"));
  }
  return 0;
}

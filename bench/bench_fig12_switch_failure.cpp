// Fig. 12: recovery time after one permanent switch failure (chosen so the
// remaining network stays connected). Paper shape: O(D) medians with large
// variance (the victim is random).
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 12 — recovery after a switch fail-stop",
                      "longest recoveries grow with the network diameter");
  for (const auto& t : topo::paper_topologies()) {
    const auto s = bench::recovery_sample(
        t.name, 3, [](sim::Experiment& exp) {
          auto cp = exp.control_plane();
          return faults::kill_random_switch(cp, exp.fault_rng()) != kNoNode;
        });
    bench::print_violin_row(t.name, s);
  }
  return 0;
}

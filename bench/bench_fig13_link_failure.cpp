// Fig. 13: recovery time after one permanent link failure.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 13 — recovery after a permanent link failure",
                      "O(D) recovery via topology re-discovery + rule refresh");
  for (const auto& t : topo::paper_topologies()) {
    const auto s = bench::recovery_sample(
        t.name, 3, [](sim::Experiment& exp) {
          auto cp = exp.control_plane();
          return faults::fail_random_link(cp, exp.fault_rng()).first != kNoNode;
        });
    bench::print_violin_row(t.name, s);
  }
  return 0;
}

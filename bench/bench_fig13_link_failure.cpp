// Fig. 13: recovery time after one permanent link failure.
//
// Ported onto the scenario engine (see bench_fig10 for the pattern): one
// declarative timeline, parallel seeded trials per topology.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 13 — recovery after a permanent link failure",
                      "O(D) recovery via topology re-discovery + rule refresh");

  scenario::Scenario s;
  s.name = "fig13_link_failure";
  s.description = "recovery after one random permanent link failure";
  bench::paper_axes(s, bench::trials_from_argv(argc, argv));
  s.expect_converged(sec(0), "bootstrap", sec(300));
  s.fail_links(sec(150), 1);
  s.expect_converged(sec(150), "recovery", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_checkpoint_rows(scenario::run_campaign(s, opt), "recovery");
  return 0;
}

// Fig. 14: recovery time after 2/4/6 simultaneous permanent link failures.
// Paper observation: the number of simultaneous failures plays no
// significant role in the recovery time.
//
// Runs as ONE campaign: the failure count is the "victims" scenario axis
// (the fail event declares count = kCountAxis), so the 5 networks x 3
// failure counts x trials grid is a single parallel run instead of 15
// sequential campaigns.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  const int trials = bench::trials_from_argv(argc, argv, 10);
  bench::print_header("Fig. 14 — recovery after multiple link failures",
                      "B2..E6 columns of the paper");
  scenario::Scenario s;
  s.name = "fig14_multi_link_failures";
  s.description = "recovery after simultaneous permanent link failures";
  bench::paper_axes(s, trials);
  s.axis("victims", {2, 4, 6});
  s.expect_converged(sec(0), "bootstrap", sec(300));
  s.fail_links(sec(150), scenario::kCountAxis);
  s.expect_converged(sec(150), "recovery", sec(300));

  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  opt.include_raw = true;
  const auto result = scenario::run_campaign(s, opt);
  for (const auto& cell : result.cells) {
    int count = 0;
    for (const auto& [name, value] : cell.axes) {
      if (name == "victims") count = static_cast<int>(value);
    }
    bench::print_violin_row(
        std::string(1, cell.topology[0]) + std::to_string(count),
        bench::checkpoint_sample(cell, "recovery"));
  }
  return 0;
}

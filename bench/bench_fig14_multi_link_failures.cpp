// Fig. 14: recovery time after 2/4/6 simultaneous permanent link failures.
// Paper observation: the number of simultaneous failures plays no
// significant role in the recovery time.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 14 — recovery after multiple link failures",
                      "B2..E6 columns of the paper");
  const int runs = 10;
  for (const auto& t : topo::paper_topologies()) {
    for (int count : {2, 4, 6}) {
      const auto s = bench::recovery_sample(
          t.name, 3,
          [count](sim::Experiment& exp) {
            auto cp = exp.control_plane();
            return !faults::fail_random_links(cp, exp.fault_rng(), count)
                        .empty();
          },
          runs);
      bench::print_violin_row(std::string(1, t.name[0]) + std::to_string(count),
                              s);
    }
  }
  return 0;
}

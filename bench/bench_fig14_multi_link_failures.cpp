// Fig. 14: recovery time after 2/4/6 simultaneous permanent link failures.
// Paper observation: the number of simultaneous failures plays no
// significant role in the recovery time.
//
// Ported onto the scenario engine: one two-checkpoint campaign per failure
// count (the count is an event parameter), each swept over the paper
// topologies by the parallel campaign runner.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  const int trials = bench::trials_from_argv(argc, argv, 10);
  bench::print_header("Fig. 14 — recovery after multiple link failures",
                      "B2..E6 columns of the paper");
  for (const auto& t : topo::paper_topologies()) {
    for (int count : {2, 4, 6}) {
      scenario::Scenario s;
      s.name = "fig14_multi_link_failures";
      s.description = "recovery after simultaneous permanent link failures";
      bench::paper_axes(s, trials);
      s.topologies = {t.name};
      s.expect_converged(sec(0), "bootstrap", sec(300));
      s.fail_links(sec(150), count);
      s.expect_converged(sec(150), "recovery", sec(300));

      scenario::RunnerOptions opt;
      opt.paper_timers = true;
      opt.include_raw = true;
      const auto result = scenario::run_campaign(s, opt);
      Sample sample;
      for (const auto& cell : result.cells) {
        const Sample cs = bench::checkpoint_sample(cell, "recovery");
        for (double v : cs.values()) sample.add(v);
      }
      bench::print_violin_row(
          std::string(1, t.name[0]) + std::to_string(count), sample);
    }
  }
  return 0;
}

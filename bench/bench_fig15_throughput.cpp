// Fig. 15: TCP throughput over 30 s with a mid-path link failure at the
// 10th second, *with* recovery (consistent updates with tags). Paper
// shape: a steady plateau (~525 Mbit/s), one valley at the failure
// (~480-510 on their testbed), then a slightly lower post-failover plateau.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 15 — throughput with recovery (Mbit/s per second)",
                      "single link failure at t=10s; tag-based updates");
  for (const auto& t : topo::paper_topologies()) {
    const auto r = bench::throughput_run(t.name, /*with_recovery=*/true);
    if (!r.ok) {
      std::printf("%-14s (experiment did not converge)\n", t.name.c_str());
      continue;
    }
    bench::print_series(t.name + " (D=" + std::to_string(t.expected_diameter) + ")",
                        r.mbits);
  }
  return 0;
}

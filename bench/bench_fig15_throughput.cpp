// Fig. 15: TCP throughput over 30 s with a mid-path link failure at the
// 10th second, *with* recovery (consistent updates with tags). Paper
// shape: a steady plateau (~525 Mbit/s), one valley at the failure
// (~480-510 on their testbed), then a slightly lower post-failover plateau.
//
// Ported onto the scenario engine: the built-in `throughput_window`
// timeline (bracketed traffic window + fail_path_link + stop_traffic) run
// over the paper topologies by the campaign runner; the window's per-second
// goodput series comes straight out of the campaign report.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 15 — throughput with recovery (Mbit/s per second)",
                      "single link failure at t=10s; tag-based updates");
  const auto s = bench::throughput_scenario(
      /*with_recovery=*/true, bench::trials_from_argv(argc, argv, 1));
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_throughput_series(
      scenario::run_campaign(s, opt),
      [](const scenario::CellResult::WindowAgg& w)
          -> const std::vector<double>& { return w.mbits_series; });
  return 0;
}

// Fig. 16: TCP throughput with the same failure but *without* recovery —
// controllers are frozen at the failure instant, so only the pre-installed
// backup paths carry traffic afterwards. Paper observation: the series is
// nearly identical to Fig. 15 (correlation 0.92-0.96).
//
// Ported onto the scenario engine: the Fig. 15 timeline plus a freeze event
// right before the fail_path_link (timestamp ties keep declaration order).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header(
      "Fig. 16 — throughput without recovery (Mbit/s per second)",
      "backup paths only after the failure at t=10s");
  const auto s = bench::throughput_scenario(
      /*with_recovery=*/false, bench::trials_from_argv(argc, argv, 1));
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_throughput_series(
      scenario::run_campaign(s, opt),
      [](const scenario::CellResult::WindowAgg& w)
          -> const std::vector<double>& { return w.mbits_series; });
  return 0;
}

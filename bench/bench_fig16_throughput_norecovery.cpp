// Fig. 16: TCP throughput with the same failure but *without* recovery —
// controllers are frozen at the failure instant, so only the pre-installed
// backup paths carry traffic afterwards. Paper observation: the series is
// nearly identical to Fig. 15 (correlation 0.92-0.96).
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header(
      "Fig. 16 — throughput without recovery (Mbit/s per second)",
      "backup paths only after the failure at t=10s");
  for (const auto& t : topo::paper_topologies()) {
    const auto r = bench::throughput_run(t.name, /*with_recovery=*/false);
    if (!r.ok) {
      std::printf("%-14s (experiment did not converge)\n", t.name.c_str());
      continue;
    }
    bench::print_series(t.name + " (D=" + std::to_string(t.expected_diameter) + ")",
                        r.mbits);
  }
  return 0;
}

// Fig. 17: Pearson correlation between the with-recovery (Fig. 15) and
// no-recovery (Fig. 16) throughput series. Paper values: 0.92-0.96.
//
// Ported onto the scenario engine: both campaigns run through the runner
// (shared seeds — trial seeds depend only on the grid), then the cells'
// window series are correlated per network.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 17 — correlation of Fig. 15 vs Fig. 16 series",
                      "paper reports 0.92-0.96 per network");
  const int trials = bench::trials_from_argv(argc, argv, 1);
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  const auto with_rec =
      scenario::run_campaign(bench::throughput_scenario(true, trials), opt);
  const auto no_rec =
      scenario::run_campaign(bench::throughput_scenario(false, trials), opt);

  std::printf("%-10s %12s\n", "Network", "Correlation");
  for (std::size_t c = 0;
       c < with_rec.cells.size() && c < no_rec.cells.size(); ++c) {
    const auto& cell = with_rec.cells[c];
    const auto* a = bench::find_window(cell, "window");
    const auto* b = bench::find_window(no_rec.cells[c], "window");
    if (a == nullptr || b == nullptr ||
        a->mbits_series.size() != b->mbits_series.size() ||
        a->mbits_series.empty()) {
      std::printf("%-10s %12s\n", cell.topology.c_str(), "n/a");
      continue;
    }
    std::printf("%-10s %12.2f\n", cell.topology.c_str(),
                pearson(a->mbits_series, b->mbits_series));
  }
  return 0;
}

// Fig. 17: Pearson correlation between the with-recovery (Fig. 15) and
// no-recovery (Fig. 16) throughput series. Paper values: 0.92-0.96.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 17 — correlation of Fig. 15 vs Fig. 16 series",
                      "paper reports 0.92-0.96 per network");
  std::printf("%-10s %12s\n", "Network", "Correlation");
  for (const auto& t : topo::paper_topologies()) {
    const auto a = bench::throughput_run(t.name, true);
    const auto b = bench::throughput_run(t.name, false);
    if (!a.ok || !b.ok) {
      std::printf("%-10s %12s\n", t.name.c_str(), "n/a");
      continue;
    }
    std::printf("%-10s %12.2f\n", t.name.c_str(), pearson(a.mbits, b.mbits));
  }
  return 0;
}

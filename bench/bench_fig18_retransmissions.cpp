// Fig. 18: percentage of retransmitted packets per second around the link
// failure. Paper shape: near-zero everywhere, one spike right after the
// failure (10-15% on their testbed) that de-escalates within a second.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 18 — retransmission percentage per second",
                      "spike at the failure second, then back to ~0");
  for (const auto& t : topo::paper_topologies()) {
    const auto r = bench::throughput_run(t.name, true);
    if (!r.ok) continue;
    bench::print_series(t.name, r.retx_pct, 1);
  }
  return 0;
}

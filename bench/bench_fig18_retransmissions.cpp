// Fig. 18: percentage of retransmitted packets per second around the link
// failure. Paper shape: near-zero everywhere, one spike right after the
// failure (10-15% on their testbed) that de-escalates within a second.
//
// Ported onto the scenario engine: the Fig. 15 campaign's traffic window
// also records the retransmission series.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 18 — retransmission percentage per second",
                      "spike at the failure second, then back to ~0");
  const auto s = bench::throughput_scenario(
      /*with_recovery=*/true, bench::trials_from_argv(argc, argv, 1));
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_throughput_series(
      scenario::run_campaign(s, opt),
      [](const scenario::CellResult::WindowAgg& w)
          -> const std::vector<double>& { return w.retx_pct; },
      /*precision=*/1);
  return 0;
}

// Fig. 19: percentage of "BAD TCP" flags per second (retransmissions +
// duplicate acks + spurious retransmissions, Wireshark-style). Paper
// shape: one spike right after the failure, then back to near zero.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 19 — BAD TCP percentage per second",
                      "retx + dup-acks + spurious, spiking at the failure");
  for (const auto& t : topo::paper_topologies()) {
    const auto r = bench::throughput_run(t.name, true);
    if (!r.ok) continue;
    bench::print_series(t.name, r.bad_pct, 1);
  }
  return 0;
}

// Fig. 19: percentage of "BAD TCP" flags per second (retransmissions +
// duplicate acks + spurious retransmissions, Wireshark-style). Paper
// shape: one spike right after the failure, then back to near zero.
//
// Ported onto the scenario engine: the Fig. 15 campaign's traffic window
// also records the BAD-TCP series.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 19 — BAD TCP percentage per second",
                      "retx + dup-acks + spurious, spiking at the failure");
  const auto s = bench::throughput_scenario(
      /*with_recovery=*/true, bench::trials_from_argv(argc, argv, 1));
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_throughput_series(
      scenario::run_campaign(s, opt),
      [](const scenario::CellResult::WindowAgg& w)
          -> const std::vector<double>& { return w.bad_pct; },
      /*precision=*/1);
  return 0;
}

// Fig. 20: percentage of out-of-order packets per second. Paper shape: a
// small spike (<= ~3%) at the failure second as traffic shifts paths.
//
// Ported onto the scenario engine: the Fig. 15 campaign's traffic window
// also records the out-of-order series.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ren;
  bench::print_header("Fig. 20 — out-of-order percentage per second",
                      "small spike at the failure second");
  const auto s = bench::throughput_scenario(
      /*with_recovery=*/true, bench::trials_from_argv(argc, argv, 1));
  scenario::RunnerOptions opt;
  opt.paper_timers = true;
  bench::print_throughput_series(
      scenario::run_campaign(s, opt),
      [](const scenario::CellResult::WindowAgg& w)
          -> const std::vector<double>& { return w.ooo_pct; },
      /*precision=*/1);
  return 0;
}

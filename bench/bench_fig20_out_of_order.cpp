// Fig. 20: percentage of out-of-order packets per second. Paper shape: a
// small spike (<= ~3%) at the failure second as traffic shifts paths.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Fig. 20 — out-of-order percentage per second",
                      "small spike at the failure second");
  for (const auto& t : topo::paper_topologies()) {
    const auto r = bench::throughput_run(t.name, true);
    if (!r.ok) continue;
    bench::print_series(t.name, r.ooo_pct, 1);
  }
  return 0;
}

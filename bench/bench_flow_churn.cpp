// Million-flow data plane: heavy-tailed flow churn against capacity-limited
// rule tables, with the reproducibility gate across simulation shard counts.
//
//   bench_flow_churn [--quick] [--json FILE]
//
// Full mode boots fat_tree:k=16 (320 switches), then runs a 15-second
// Pareto/Zipf churn window at 80,000 flows/s against 512-entry tables —
// >= 1.2 million cumulative arrivals — and executes the identical trial at
// --sim-threads 1, 2 and 4. Gates:
//   - volume: cumulative arrivals >= 1,000,000 (full mode only);
//   - pressure: the capacity limit actually bit (evictions + overflow
//     rejections > 0) and the table report is present;
//   - identity: the TrialOutcome JSON rendering AND the Counters fingerprint
//     are byte-identical at every shard count (the epoch-lockstep kernel's
//     contract; harness-lane churn ticks must not break it).
// --quick (CI) runs fat_tree:k=8 at 5,000 flows/s for 5 seconds, shard
// counts 1 and 2, identity + pressure gates only. Writes
// BENCH_flow_churn.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ren;
using Clock = std::chrono::steady_clock;

constexpr double kArrivalsFloor = 1'000'000;  ///< full-mode volume gate

struct ChurnParams {
  std::string fabric;
  double rate = 0;          ///< flow arrivals per second
  Time mean_duration = 0;   ///< heavy-tailed lifetime mean
  int window_s = 0;         ///< churn window length (seconds)
  double table_capacity = 0;
  std::vector<int> shard_counts;
};

scenario::Scenario churn_scenario(const ChurnParams& p) {
  scenario::Scenario s;
  s.name = "bench_flow_churn";
  s.description = "heavy-tailed churn window against capacity-limited tables";
  s.topologies = {p.fabric};
  s.controllers = {3};
  s.trials = 1;
  s.base_seed = bench::kBaseSeed;
  s.expect_converged(sec(0), "bootstrap", sec(600));
  s.start_flow_churn(sec(1), p.rate, p.mean_duration);
  s.stop_flow_churn(sec(1 + p.window_s));
  return s;
}

struct ShardRow {
  int shards = 1;
  bool ok = false;
  double wall_s = 0;
  double arrivals = 0;
  double evictions = 0;
  double overflows = 0;
  double peak_rules = 0;
  double lookup_cost = 0;
  std::string outcome_json;       ///< canonical rendering (identity gate)
  std::uint64_t counters_fp = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_flow_churn.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  ChurnParams p;
  // Capacity sits just above the fabric's management-rule requirement (the
  // hottest switch holds ~636 protected rules on k=8, ~1234 on k=16 —
  // protected entries are unevictable, so a cap below that would thrash
  // bootstrap instead of pressuring flows).
  if (quick) {
    p.fabric = "fat_tree:k=8";
    p.rate = 5'000;
    p.mean_duration = msec(100);
    p.window_s = 5;
    p.table_capacity = 700;
    p.shard_counts = {1, 2};
  } else {
    p.fabric = "fat_tree:k=16";
    p.rate = 80'000;
    p.mean_duration = msec(150);
    p.window_s = 15;
    p.table_capacity = 1'500;
    p.shard_counts = {1, 2, 4};
  }

  bench::print_header(
      "Flow churn at scale — heavy-tailed workload vs capacity-limited "
      "tables",
      "data-plane pressure no paper figure covers (Section 6 fabrics)");
  std::printf("fabric=%s rate=%.0f/s window=%ds capacity=%.0f\n",
              p.fabric.c_str(), p.rate, p.window_s, p.table_capacity);

  const scenario::Scenario s = churn_scenario(p);
  const scenario::AxisPoint axes = {{"table_capacity", p.table_capacity}};

  std::vector<ShardRow> rows;
  for (int shards : p.shard_counts) {
    scenario::RunnerOptions opt;
    opt.threads = 1;
    opt.sim_threads = shards;
    ShardRow row;
    row.shards = shards;
    const auto t0 = Clock::now();
    const scenario::TrialOutcome out =
        scenario::run_trial(s, p.fabric, 3, axes, /*trial=*/0, opt);
    row.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    row.ok = out.ok && out.has_table;
    if (!out.ok) {
      std::printf("shards=%d trial FAILED: %s\n", shards, out.error.c_str());
    }
    row.arrivals = out.tbl_arrivals;
    row.evictions = out.tbl_evictions;
    row.overflows = out.tbl_overflows;
    row.peak_rules = out.tbl_peak_rules;
    row.lookup_cost = out.tbl_lookup_cost;
    row.outcome_json = scenario::trial_outcome_json(out).pretty();
    row.counters_fp = out.counters_fp;
    rows.push_back(std::move(row));
  }

  bool identical = !rows.empty() && rows.front().ok;
  for (const auto& row : rows) {
    if (!row.ok || row.outcome_json != rows.front().outcome_json ||
        row.counters_fp != rows.front().counters_fp) {
      identical = false;
    }
  }
  const ShardRow& first = rows.front();
  const bool volume_ok = quick || first.arrivals >= kArrivalsFloor;
  const bool pressure_ok =
      first.ok && first.evictions + first.overflows > 0 &&
      first.peak_rules <= p.table_capacity;
  const bool all_pass = identical && volume_ok && pressure_ok;

  std::printf("%6s %8s %12s %12s %10s %10s %18s\n", "shards", "wall(s)",
              "arrivals", "evictions", "overflows", "peak", "counters fp");
  for (const auto& row : rows) {
    std::printf("%6d %8.1f %12.0f %12.0f %10.0f %10.0f %#18llx\n", row.shards,
                row.wall_s, row.arrivals, row.evictions, row.overflows,
                row.peak_rules,
                static_cast<unsigned long long>(row.counters_fp));
  }
  std::printf("identity: %s\n", identical
                                    ? "byte-identical across shard counts"
                                    : "DIVERGED — churn broke the kernel "
                                      "contract");
  std::printf("volume:   %.0f arrivals (gate %s)\n", first.arrivals,
              quick ? "disarmed in --quick"
                    : (volume_ok ? ">= 1M, ok" : "FAILED (< 1M)"));
  std::printf("pressure: %.0f evictions + %.0f overflow rejections at "
              "peak %.0f/%.0f rules (%s)\n",
              first.evictions, first.overflows, first.peak_rules,
              p.table_capacity, pressure_ok ? "ok" : "FAILED");

  scenario::Json jrows{scenario::JsonArray{}};
  for (const auto& row : rows) {
    scenario::Json jr;
    jr.set("shards", row.shards);
    jr.set("ok", row.ok);
    jr.set("wall_s", row.wall_s);
    jr.set("arrivals", row.arrivals);
    jr.set("evictions", row.evictions);
    jr.set("overflows", row.overflows);
    jr.set("peak_rules", row.peak_rules);
    jr.set("lookup_cost", row.lookup_cost);
    jr.set("counters_fp_hex", [&] {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(row.counters_fp));
      return std::string(buf);
    }());
    jrows.push_back(std::move(jr));
  }
  scenario::Json doc;
  doc.set("bench", "flow_churn");
  doc.set("mode", quick ? "quick" : "full");
  doc.set("fabric", p.fabric);
  doc.set("rate_per_s", p.rate);
  doc.set("window_s", p.window_s);
  doc.set("table_capacity", p.table_capacity);
  doc.set("identical", identical);
  doc.set("volume_ok", volume_ok);
  doc.set("pressure_ok", pressure_ok);
  doc.set("pass", all_pass);
  doc.set("rows", std::move(jrows));
  std::ofstream outf(json_path);
  outf << doc.pretty();
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  std::printf("%s\n", all_pass ? "PASS" : "FAIL (see gates above)");
  return all_pass ? 0 : 1;
}

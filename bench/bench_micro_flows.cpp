// Microbenchmarks (google-benchmark): myRules() compilation cost and
// related graph machinery, per evaluation topology.
#include <benchmark/benchmark.h>

#include "flows/my_rules.hpp"
#include "topo/topologies.hpp"

namespace {

using namespace ren;

struct Prepared {
  flows::TopoView view;
  std::map<NodeId, bool> transit;
  NodeId owner;
};

Prepared prepare(const std::string& name) {
  Prepared p;
  const auto t = topo::by_name(name);
  p.owner = t.switch_graph.n();
  for (int u = 0; u < t.switch_graph.n(); ++u) {
    p.transit[u] = true;
    for (int v : t.switch_graph.neighbors(u)) p.view.add_sym_edge(u, v);
  }
  p.view.add_sym_edge(p.owner, 0);
  p.view.add_sym_edge(p.owner, t.switch_graph.n() / 2);
  p.view.add_sym_edge(p.owner, t.switch_graph.n() - 1);
  p.transit[p.owner] = false;
  return p;
}

void BM_CompileFlows(benchmark::State& state, const std::string& name) {
  const auto p = prepare(name);
  flows::RuleCompiler compiler({2});
  for (auto _ : state) {
    auto flows = compiler.compile(p.view, p.owner, p.transit);
    benchmark::DoNotOptimize(flows);
  }
}
BENCHMARK_CAPTURE(BM_CompileFlows, B4, std::string("B4"));
BENCHMARK_CAPTURE(BM_CompileFlows, Clos, std::string("Clos"));
BENCHMARK_CAPTURE(BM_CompileFlows, Telstra, std::string("Telstra"));
BENCHMARK_CAPTURE(BM_CompileFlows, ATT, std::string("ATT"));
BENCHMARK_CAPTURE(BM_CompileFlows, EBONE, std::string("EBONE"));

void BM_CompileCachedHit(benchmark::State& state) {
  const auto p = prepare("EBONE");
  flows::RuleCompiler compiler({2});
  (void)compiler.compile_cached(p.view, p.owner, p.transit);
  for (auto _ : state) {
    auto flows = compiler.compile_cached(p.view, p.owner, p.transit);
    benchmark::DoNotOptimize(flows);
  }
}
BENCHMARK(BM_CompileCachedHit);

void BM_ViewFingerprint(benchmark::State& state) {
  const auto p = prepare("EBONE");
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.view.fingerprint());
  }
}
BENCHMARK(BM_ViewFingerprint);

void BM_DisjointPaths(benchmark::State& state) {
  const auto p = prepare("EBONE");
  for (auto _ : state) {
    auto paths = flows::disjoint_view_paths(p.view, p.owner, 100, 3, p.transit);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_DisjointPaths);

}  // namespace

BENCHMARK_MAIN();

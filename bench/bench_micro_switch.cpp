// Microbenchmarks (google-benchmark): abstract-switch rule table
// operations — install, lookup (cold/warm), and the forwarding fast path.
#include <benchmark/benchmark.h>

#include "flows/my_rules.hpp"
#include "switchd/rule_table.hpp"
#include "topo/topologies.hpp"

namespace {

using namespace ren;

/// A realistic per-switch rule list: EBONE-sized compilation, switch 0.
proto::RuleListPtr realistic_rules(NodeId owner) {
  const auto t = topo::make_ebone();
  flows::TopoView view;
  std::map<NodeId, bool> transit;
  for (int u = 0; u < t.switch_graph.n(); ++u) {
    transit[u] = true;
    for (int v : t.switch_graph.neighbors(u)) view.add_sym_edge(u, v);
  }
  view.add_sym_edge(owner, 0);
  view.add_sym_edge(owner, 100);
  transit[owner] = false;
  flows::RuleCompiler compiler({2});
  const auto flows = compiler.compile(view, owner, transit);
  auto it = flows->per_switch.find(0);
  return it == flows->per_switch.end()
             ? std::make_shared<const proto::RuleList>()
             : it->second;
}

void BM_UpdateRules(benchmark::State& state) {
  const NodeId owner = 208;
  const auto rules = realistic_rules(owner);
  switchd::RuleTable table({1u << 20});
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    table.new_round(owner, proto::Tag{owner, ++epoch}, 3);
    table.update_rules(owner, rules, proto::Tag{owner, epoch});
  }
  state.counters["rules"] = static_cast<double>(rules->size());
}
BENCHMARK(BM_UpdateRules);

void BM_LookupCold(benchmark::State& state) {
  const NodeId owner = 208;
  const auto rules = realistic_rules(owner);
  switchd::RuleTable table({1u << 20});
  table.new_round(owner, proto::Tag{owner, 1}, 3);
  table.update_rules(owner, rules, proto::Tag{owner, 1});
  NodeId dst = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Invalidate the lookup cache by touching the table.
    table.new_round(owner, proto::Tag{owner, 1}, 3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.candidates(owner, dst));
    dst = (dst + 1) % 208;
  }
}
BENCHMARK(BM_LookupCold);

void BM_LookupWarm(benchmark::State& state) {
  const NodeId owner = 208;
  const auto rules = realistic_rules(owner);
  switchd::RuleTable table({1u << 20});
  table.new_round(owner, proto::Tag{owner, 1}, 3);
  table.update_rules(owner, rules, proto::Tag{owner, 1});
  (void)table.candidates(owner, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.candidates(owner, 42));
  }
}
BENCHMARK(BM_LookupWarm);

void BM_OwnersSummary(benchmark::State& state) {
  switchd::RuleTable table({1u << 20});
  for (NodeId c = 100; c < 107; ++c) {
    table.new_round(c, proto::Tag{c, 1}, 3);
    table.update_rules(c, realistic_rules(c), proto::Tag{c, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.owners_summary());
  }
}
BENCHMARK(BM_OwnersSummary);

}  // namespace

BENCHMARK_MAIN();

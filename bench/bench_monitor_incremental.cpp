// Legitimacy-monitor cost: steady-state incremental sample vs a fresh full
// evaluation of Definition 1, on the large Rocketfuel networks where the
// seed's O(network)-per-sample monitor dominated trial wall time.
//
//   bench_monitor_incremental [runs_per_mode]
//
// For each topology: bootstrap once, let the system settle, then time (a)
// incremental check() samples in the converged steady state (these
// short-circuit on the unchanged stack epoch) and (b) check_full() samples
// (truth rebuild + view compares + manager/rule validation + rule walks
// from scratch). Prints both costs and the speedup; the acceptance bar is
// >= 10x on ATT and EBONE.
#include <chrono>

#include "bench_common.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double time_per_call_us(const std::function<void()>& fn, int calls) {
  const auto t0 = Clock::now();
  for (int i = 0; i < calls; ++i) fn();
  const auto dt = std::chrono::duration<double, std::micro>(Clock::now() - t0);
  return dt.count() / calls;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ren;
  const int calls = argc > 1 ? std::atoi(argv[1]) : 200;

  bench::print_header(
      "Monitor cost — incremental vs full",
      "steady-state legitimacy sample; acceptance: >=10x on ATT/EBONE");
  std::printf("%-10s %14s %14s %10s\n", "Network", "incr (us)", "full (us)",
              "speedup");

  bool all_pass = true;
  for (const std::string topology : {"ATT", "EBONE"}) {
    // Fast timer profile: the monitor cost under test is per-sample and
    // timer-rate independent, while paper timers would spend minutes of
    // wall clock just simulating the bootstrap on these networks.
    sim::ExperimentConfig cfg;
    cfg.topology = topology;
    cfg.controllers = 3;
    cfg.kappa = 2;
    cfg.seed = bench::kBaseSeed;
    cfg.task_delay = msec(50);
    cfg.detect_interval = msec(10);
    cfg.monitor_interval = msec(25);
    cfg.link_latency = usec(100);
    cfg.theta = 10;
    cfg.rule_retention = 3;
    sim::Experiment exp(cfg);
    const auto boot = exp.run_until_legitimate(sec(600));
    if (!boot.converged) {
      std::printf("%-10s bootstrap failed: %s\n", topology.c_str(),
                  boot.last_reason.c_str());
      all_pass = false;
      continue;
    }
    // Settle: drain in-flight chatter until the stack epoch stops moving.
    std::uint64_t epoch = exp.monitor().stack_epoch();
    for (int i = 0; i < 50; ++i) {
      exp.sim().run_until(exp.sim().now() + exp.config().task_delay);
      const std::uint64_t e = exp.monitor().stack_epoch();
      if (e == epoch && exp.monitor().check().legitimate) break;
      epoch = e;
    }

    // Warm both paths once so neither pays first-call allocation noise.
    (void)exp.monitor().check();
    (void)exp.monitor().check_full();

    const double incr_us = time_per_call_us(
        [&] {
          if (!exp.monitor().check().legitimate) std::abort();
        },
        calls);
    const double full_us = time_per_call_us(
        [&] {
          if (!exp.monitor().check_full().legitimate) std::abort();
        },
        calls);
    const double speedup = full_us / incr_us;
    std::printf("%-10s %14.2f %14.2f %9.1fx\n", topology.c_str(), incr_us,
                full_us, speedup);
    if (speedup < 10.0) all_pass = false;
  }
  std::printf("%s\n", all_pass ? "PASS (>=10x on all networks)"
                               : "FAIL (<10x somewhere, see above)");
  return all_pass ? 0 : 1;
}

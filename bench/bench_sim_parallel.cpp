// Parallel-kernel speedup and reproducibility: time-to-legitimacy on large
// fabrics with the epoch-lockstep sharded simulator at 1/2/4/8 shards.
//
//   bench_sim_parallel [--quick] [--json FILE] [--trials N]
//
// Two gates per fabric:
//   - identity: the simulated boot time AND the Counters fingerprint must be
//     bit-identical at every shard count (the kernel's reproducibility
//     contract) — always enforced;
//   - speedup: on fat_tree:k=16 the 8-shard median wall time must be
//     >= 2.5x faster than serial. Wall-clock speedup needs real cores, so
//     this gate only arms when hardware_concurrency() >= 8; on smaller
//     machines the bench reports the measurement and warns instead of
//     failing (the determinism gate still applies).
//
// Full mode runs fat_tree:k=16 (320 switches) and a 1,024-node
// preferential-attachment WAN at 1/2/4/8 shards, median of 3 trials.
// --quick (CI) runs fat_tree:k=8 at 1/4 shards, one trial, identity only.
// Writes BENCH_sim_parallel.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ren;
using Clock = std::chrono::steady_clock;

constexpr double kSpeedupFloor = 2.5;  ///< gate: 8 shards vs serial, k=16

sim::ExperimentConfig scale_config(const std::string& spec, int sim_threads,
                                   std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  cfg.topology = spec;
  cfg.controllers = 3;
  cfg.kappa = spec.rfind("random_wan", 0) == 0 ? 1 : 2;  // WAN is 2-edge-conn
  cfg.seed = seed;
  cfg.task_delay = msec(50);
  cfg.detect_interval = msec(10);
  cfg.monitor_interval = msec(25);
  cfg.link_latency = usec(100);
  cfg.theta = 10;
  cfg.rule_retention = 3;
  cfg.sim_threads = sim_threads;
  return cfg;
}

struct ShardRow {
  int shards = 1;
  int effective_shards = 1;     ///< what the plan actually yielded
  bool converged = false;
  double boot_sim_s = 0;        ///< median simulated seconds to legitimacy
  double wall_s = 0;            ///< median wall seconds per trial
  double speedup = 0;           ///< serial median wall / this row's
  std::uint64_t counters_fp = 0;  ///< trial-0 Counters fingerprint
};

struct FabricResult {
  std::string spec;
  std::vector<ShardRow> rows;
  bool identical = false;  ///< boot time + fingerprint equal across rows
  bool speedup_ok = true;  ///< 2.5x gate (k=16 only, when armed)
};

FabricResult run_fabric(const std::string& spec,
                        const std::vector<int>& shard_counts, int trials,
                        bool gate_speedup) {
  FabricResult fr;
  fr.spec = spec;
  for (int shards : shard_counts) {
    ShardRow row;
    row.shards = shards;
    Sample sim_s, wall_s;
    bool ok = true;
    for (int trial = 0; trial < trials && ok; ++trial) {
      sim::Experiment exp(
          scale_config(spec, shards, bench::kBaseSeed + trial));
      row.effective_shards = exp.sim().shard_count();
      const auto t0 = Clock::now();
      const auto boot = exp.run_until_legitimate(sec(600));
      wall_s.add(std::chrono::duration<double>(Clock::now() - t0).count());
      if (!boot.converged) {
        std::printf("%-34s shards=%d trial %d did not converge: %s\n",
                    spec.c_str(), shards, trial, boot.last_reason.c_str());
        ok = false;
        break;
      }
      sim_s.add(boot.seconds);
      if (trial == 0) row.counters_fp = exp.sim().counters().fingerprint();
    }
    row.converged = ok;
    row.boot_sim_s = sim_s.size() > 0 ? sim_s.median() : 0;
    row.wall_s = wall_s.size() > 0 ? wall_s.median() : 0;
    fr.rows.push_back(row);
  }

  // Identity gate: every shard count reproduces the serial run exactly.
  fr.identical = !fr.rows.empty() && fr.rows.front().converged;
  const double serial_wall = fr.rows.empty() ? 0 : fr.rows.front().wall_s;
  for (auto& row : fr.rows) {
    row.speedup = row.wall_s > 0 ? serial_wall / row.wall_s : 0;
    if (!row.converged || row.boot_sim_s != fr.rows.front().boot_sim_s ||
        row.counters_fp != fr.rows.front().counters_fp) {
      fr.identical = false;
    }
  }

  if (gate_speedup) {
    for (const auto& row : fr.rows) {
      if (row.shards == 8 && row.speedup < kSpeedupFloor) {
        fr.speedup_ok = false;
      }
    }
  }
  return fr;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_sim_parallel.json";
  int trials = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
      if (trials <= 0) {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--json FILE] [--trials N>0]\n",
                     argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json FILE] [--trials N>0]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trials == 0) trials = quick ? 1 : 3;

  const unsigned cores = std::thread::hardware_concurrency();
  // The 2.5x gate measures parallel speedup; without >= 8 real cores the
  // measurement is of scheduler time-slicing, not the kernel.
  const bool arm_speedup = !quick && cores >= 8;

  const std::vector<std::string> fabrics =
      quick ? std::vector<std::string>{"fat_tree:k=8"}
            : std::vector<std::string>{"fat_tree:k=16",
                                       "random_wan:nodes=1024,m=2,seed=1"};
  const std::vector<int> shard_counts =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  bench::print_header(
      "Parallel simulation kernel — epoch-lockstep shard scaling",
      "bit-reproducible speedup on the Table-8-at-scale fabrics");
  std::printf("cores=%u  speedup gate: %s\n", cores,
              arm_speedup ? "armed (k=16, 8 shards >= 2.5x)"
                          : "disarmed (needs full mode and >= 8 cores); "
                            "identity gate still applies");

  bool all_pass = true;
  scenario::Json jfabrics{scenario::JsonArray{}};
  for (const auto& spec : fabrics) {
    const bool gate = arm_speedup && spec == "fat_tree:k=16";
    const FabricResult fr = run_fabric(spec, shard_counts, trials, gate);
    if (!fr.identical || !fr.speedup_ok) all_pass = false;

    std::printf("%-34s %6s %6s %10s %10s %8s %18s\n", fr.spec.c_str(),
                "shards", "eff", "boot (s)", "wall (s)", "speedup",
                "counters fp");
    for (const auto& row : fr.rows) {
      std::printf("%-34s %6d %6d %10.2f %10.2f %7.2fx %#18llx\n", "",
                  row.shards, row.effective_shards, row.boot_sim_s,
                  row.wall_s, row.speedup,
                  static_cast<unsigned long long>(row.counters_fp));
    }
    std::printf("%-34s identity: %s%s\n", "",
                fr.identical ? "bit-identical across shard counts"
                             : "DIVERGED — kernel bug",
                gate && !fr.speedup_ok ? "; speedup gate FAILED" : "");

    scenario::Json jf;
    jf.set("spec", fr.spec);
    jf.set("identical", fr.identical);
    jf.set("speedup_gate_armed", gate);
    jf.set("speedup_ok", fr.speedup_ok);
    scenario::Json jrows{scenario::JsonArray{}};
    for (const auto& row : fr.rows) {
      scenario::Json jr;
      jr.set("shards", row.shards);
      jr.set("effective_shards", row.effective_shards);
      jr.set("converged", row.converged);
      jr.set("boot_sim_s", row.boot_sim_s);
      jr.set("wall_s", row.wall_s);
      jr.set("speedup", row.speedup);
      jr.set("counters_fp_hex", [&] {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(row.counters_fp));
        return std::string(buf);
      }());
      jrows.push_back(std::move(jr));
    }
    jf.set("rows", std::move(jrows));
    jfabrics.push_back(std::move(jf));
  }

  scenario::Json doc;
  doc.set("bench", "sim_parallel");
  doc.set("mode", quick ? "quick" : "full");
  doc.set("trials", trials);
  doc.set("cores", static_cast<double>(cores));
  doc.set("speedup_gate_armed", arm_speedup);
  doc.set("pass", all_pass);
  doc.set("fabrics", std::move(jfabrics));
  std::ofstream out(json_path);
  out << doc.pretty();
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  std::printf("%s\n", all_pass ? "PASS (outcomes bit-identical at every "
                                 "shard count)"
                               : "FAIL (see rows above)");
  return all_pass ? 0 : 1;
}

// Table/Fig. 8: the evaluation networks — node counts and diameters.
#include "bench_common.hpp"

int main() {
  using namespace ren;
  bench::print_header("Table 8 — evaluation networks",
                      "paper Fig. 8: B4 12/5, Clos 20/4, Telstra 57/8, "
                      "AT&T 172/10, EBONE 208/11");
  std::printf("%-10s %8s %8s %8s %10s\n", "Network", "Nodes", "Links",
              "Diameter", "EdgeConn");
  for (const auto& t : topo::paper_topologies()) {
    std::printf("%-10s %8d %8zu %8d %10d\n", t.name.c_str(),
                t.switch_graph.n(), t.switch_graph.edge_count(),
                t.switch_graph.diameter(), t.switch_graph.edge_connectivity());
  }
  return 0;
}

// Table-8-at-scale: legitimacy convergence beyond the paper's 208-node
// ceiling. The paper's Table 8 stops at EBONE (208 switches); this bench
// bootstraps the control plane on datacenter Clos fabrics (fat-tree k=8 and
// k=16, 80/320 switches) and a 1,024-node preferential-attachment WAN, and
// reports time-to-legitimacy per fabric.
//
//   bench_table8_scale [--quick] [--json FILE] [--trials N]
//
// The connectivity path is also audited here: before each bootstrap the
// bench runs edge_connectivity() on the fabric under a global operator-new
// probe and fails if any single allocation reaches n*n bytes — the footprint
// of the dense residual matrix this PR removed. On the 1k-node WAN a dense
// residual would be a 2 MiB contiguous block; the sparse path peaks in the
// tens of kilobytes.
//
// Acceptance: every fabric (including fat-tree k=16 and the >= 1,000-node
// WAN) converges to a legitimate state, with no dense-sized allocation in
// the connectivity audit. --quick (CI) runs one trial per fabric; the full
// run takes the median of three seeds. Writes BENCH_table8_scale.json.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>

#include "bench_common.hpp"

// --- Allocation probe ----------------------------------------------------------
// Tracks the largest single allocation while enabled. A dense n x n residual
// cannot hide from this: it is one contiguous operator-new call.

namespace {
std::atomic<bool> g_probe{false};
std::atomic<std::uint64_t> g_probe_allocs{0};
std::atomic<std::uint64_t> g_probe_max_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_probe.load(std::memory_order_relaxed)) {
    g_probe_allocs.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = g_probe_max_bytes.load(std::memory_order_relaxed);
    while (size > cur &&
           !g_probe_max_bytes.compare_exchange_weak(
               cur, size, std::memory_order_relaxed)) {
    }
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ren;
using Clock = std::chrono::steady_clock;

/// The fabrics under test, smallest first so a scaling failure surfaces
/// after the cheap rows already printed. Clos is the paper's own datacenter
/// fabric — the anchor row connecting this table to Table 8.
const char* const kFabrics[] = {
    "Clos",
    "fat_tree:k=8",
    "fat_tree:k=16",
    "random_wan:nodes=1024,m=2,seed=1",
};

struct FabricRow {
  std::string spec;
  int nodes = 0;
  std::size_t links = 0;
  int diameter = 0;
  int lambda = 0;  ///< edge connectivity of the fabric
  int kappa = 0;   ///< resilience parameter used for the bootstrap
  std::uint64_t connectivity_allocs = 0;
  std::uint64_t connectivity_max_alloc = 0;  ///< largest single allocation
  std::uint64_t dense_residual_bytes = 0;    ///< n*n — the removed footprint
  bool alloc_ok = false;
  bool converged = false;
  double boot_sim_s = 0;   ///< median simulated seconds to legitimacy
  double boot_wall_s = 0;  ///< median wall seconds per trial
};

/// Fast-timer profile: time-to-legitimacy in *simulated* seconds is what the
/// table reports, and it is timer-rate independent down to the detection
/// granularity; paper timers would burn hours of wall clock simulating idle
/// waits on the 1k-node fabrics.
sim::ExperimentConfig scale_config(const std::string& spec, int kappa,
                                   std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  cfg.topology = spec;
  cfg.controllers = 3;
  cfg.kappa = kappa;
  cfg.seed = seed;
  cfg.task_delay = msec(50);
  cfg.detect_interval = msec(10);
  cfg.monitor_interval = msec(25);
  cfg.link_latency = usec(100);
  cfg.theta = 10;
  cfg.rule_retention = 3;
  return cfg;
}

/// edge_connectivity() under the allocation probe. Fails the row when any
/// single allocation is as large as the dense n x n residual would be.
void audit_connectivity(FabricRow& row, const flows::Graph& g) {
  g_probe_allocs.store(0, std::memory_order_relaxed);
  g_probe_max_bytes.store(0, std::memory_order_relaxed);
  g_probe.store(true, std::memory_order_relaxed);
  row.lambda = g.edge_connectivity();
  g_probe.store(false, std::memory_order_relaxed);
  row.connectivity_allocs = g_probe_allocs.load(std::memory_order_relaxed);
  row.connectivity_max_alloc =
      g_probe_max_bytes.load(std::memory_order_relaxed);
  const auto n = static_cast<std::uint64_t>(g.n());
  row.dense_residual_bytes = n * n;
  // The sparse path's own working set (CSR arrays, O(links)) can exceed
  // n*n on fabrics smaller than ~64 nodes, where the audit is vacuous
  // anyway — the 4 KiB floor keeps those rows from false-failing while the
  // at-scale rows (k=16: 100 KiB dense, WAN: 1 MiB dense) stay strict.
  row.alloc_ok = row.connectivity_max_alloc <
                 std::max<std::uint64_t>(row.dense_residual_bytes, 4096);
}

bool run_fabric(const std::string& spec, int trials, FabricRow& row) {
  row.spec = spec;
  const topo::Topology t = topo::resolve(spec);
  row.nodes = t.switch_graph.n();
  row.links = t.switch_graph.edge_count();
  row.diameter = t.expected_diameter;
  audit_connectivity(row, t.switch_graph);
  // The fabric caps the usable resilience: a kappa-fault-resilient flow
  // needs kappa+1 edge-disjoint paths, so kappa <= lambda - 1. The paper's
  // kappa = 2 is kept wherever the fabric supports it (the WAN is
  // 2-edge-connected by construction, so it bootstraps at kappa = 1).
  row.kappa = std::min(2, row.lambda - 1);
  if (row.kappa < 0) return false;  // disconnected fabric: report, don't run

  Sample sim_s, wall_s;
  for (int trial = 0; trial < trials; ++trial) {
    sim::Experiment exp(
        scale_config(spec, row.kappa, bench::kBaseSeed + trial));
    const auto t0 = Clock::now();
    const auto boot = exp.run_until_legitimate(sec(600));
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!boot.converged) {
      std::printf("%-34s trial %d did not converge: %s\n", spec.c_str(),
                  trial, boot.last_reason.c_str());
      return false;
    }
    // Exercise the monitor's connectivity oracle on the full control-plane
    // graph (fabric + controller attachment links): a fabric that just
    // converged at row.kappa must support it.
    if (exp.monitor().achievable_kappa() < row.kappa) {
      std::printf("%-34s oracle reports achievable kappa %d < %d used\n",
                  spec.c_str(), exp.monitor().achievable_kappa(), row.kappa);
      return false;
    }
    sim_s.add(boot.seconds);
    wall_s.add(wall);
  }
  row.converged = true;
  row.boot_sim_s = sim_s.median();
  row.boot_wall_s = wall_s.median();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_table8_scale.json";
  int trials = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
      if (trials <= 0) {
        std::fprintf(stderr, "usage: %s [--quick] [--json FILE] [--trials N>0]\n",
                     argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE] [--trials N>0]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trials == 0) trials = quick ? 1 : 3;

  bench::print_header(
      "Table 8 at scale — time to legitimacy on 80..1280-node fabrics",
      "Table 8 methodology on fat-tree k=8/16 and a 1k-node random WAN");
  std::printf("%-34s %6s %6s %4s %7s %6s %10s %10s %11s\n", "fabric", "nodes",
              "links", "diam", "lambda", "kappa", "boot (s)", "wall (s)",
              "max alloc");

  bool all_pass = true;
  scenario::Json rows{scenario::JsonArray{}};
  for (const char* spec : kFabrics) {
    FabricRow row;
    if (!run_fabric(spec, trials, row)) all_pass = false;
    if (!row.alloc_ok) all_pass = false;
    std::printf("%-34s %6d %6zu %4d %7d %6d %10.2f %10.2f %9" PRIu64 " B%s\n",
                row.spec.c_str(), row.nodes, row.links, row.diameter,
                row.lambda, row.kappa, row.boot_sim_s, row.boot_wall_s,
                row.connectivity_max_alloc,
                row.alloc_ok ? "" : "  << DENSE-SIZED ALLOCATION");

    scenario::Json rj;
    rj.set("spec", row.spec);
    rj.set("nodes", row.nodes);
    rj.set("links", static_cast<double>(row.links));
    rj.set("diameter", row.diameter);
    rj.set("lambda", row.lambda);
    rj.set("kappa", row.kappa);
    rj.set("converged", row.converged);
    rj.set("boot_sim_s", row.boot_sim_s);
    rj.set("boot_wall_s", row.boot_wall_s);
    rj.set("connectivity_allocs", static_cast<double>(row.connectivity_allocs));
    rj.set("connectivity_max_alloc_bytes",
           static_cast<double>(row.connectivity_max_alloc));
    rj.set("dense_residual_bytes",
           static_cast<double>(row.dense_residual_bytes));
    rj.set("alloc_ok", row.alloc_ok);
    rows.push_back(std::move(rj));
  }

  scenario::Json doc;
  doc.set("bench", "table8_scale");
  doc.set("mode", quick ? "quick" : "full");
  doc.set("trials", trials);
  doc.set("pass", all_pass);
  doc.set("fabrics", std::move(rows));
  std::ofstream out(json_path);
  out << doc.pretty();
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  std::printf("%s\n", all_pass
                          ? "PASS (all fabrics legitimate, sparse-sized "
                            "allocations only)"
                          : "FAIL (see rows above)");
  return all_pass ? 0 : 1;
}

// Failover demo: a TCP flow crosses the network while a mid-path link
// dies. Fast-failover rules absorb the hit in the data plane; the control
// plane then re-optimizes the path (the paper's Fig. 15 experiment).
//
//   $ ./examples/failover_throughput
#include <cstdio>

#include "renaissance.hpp"

int main() {
  using namespace ren;

  sim::ExperimentConfig cfg;
  cfg.topology = "B4";
  cfg.controllers = 3;
  cfg.kappa = 2;
  cfg.seed = 5;
  cfg.with_hosts = true;           // host pair at maximum distance
  cfg.link_latency = usec(1100);   // ~16ms RTT across the diameter
  sim::Experiment exp(cfg);

  sim::Experiment::ThroughputRun run;
  run.duration = sec(30);
  run.fail_at = sec(10);
  run.with_recovery = true;
  run.tcp.rwnd = 1u << 20;

  std::printf("running a 30s TCP flow, failing a mid-path link at t=10s...\n");
  const auto r = exp.run_throughput(run);
  if (!r.ok) {
    std::printf("experiment failed to converge\n");
    return 1;
  }

  std::printf("primary path:");
  for (NodeId n : r.primary_path) std::printf(" %d", n);
  std::printf("\nfailed link: %d-%d\n", r.failed_link.first,
              r.failed_link.second);

  std::printf("\n%6s %12s %8s %8s\n", "sec", "Mbit/s", "retx%", "ooo%");
  for (std::size_t i = 0; i < r.mbits.size(); ++i) {
    const bool failure_second = static_cast<Time>(i) == run.fail_at / sec(1);
    std::printf("%6zu %12.0f %8.1f %8.1f%s\n", i, r.mbits[i], r.retx_pct[i],
                r.ooo_pct[i], failure_second ? "   <-- link fails" : "");
  }

  const double steady = (r.mbits[5] + r.mbits[6] + r.mbits[7]) / 3;
  const double after = (r.mbits[25] + r.mbits[26] + r.mbits[27]) / 3;
  std::printf("\nsteady %.0f Mbit/s -> post-failover %.0f Mbit/s "
              "(longer path, re-optimized by the controllers)\n",
              steady, after);
  return 0;
}

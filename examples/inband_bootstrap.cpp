// In-band bootstrap, narrated: shows the ring-by-ring discovery that makes
// in-band control tricky — a controller can only talk to switches at
// distance k after installing rules on the switches at distance k-1.
//
//   $ ./examples/inband_bootstrap
#include <cstdio>

#include "renaissance.hpp"

int main() {
  using namespace ren;

  sim::ExperimentConfig cfg;
  cfg.topology = "Telstra";  // 57 switches, diameter 8
  cfg.controllers = 1;
  cfg.kappa = 1;
  cfg.seed = 7;
  sim::Experiment exp(cfg);

  auto& c = exp.controller(0);
  std::printf("single controller %d on Telstra (57 switches, diameter 8)\n",
              c.id());
  std::printf("%8s %10s %12s %10s %12s\n", "t(s)", "view", "replyDB",
              "rounds", "rules total");

  // Sample the controller's knowledge as it grows outward.
  std::size_t last_view = 0;
  for (int step = 0; step < 200; ++step) {
    exp.sim().run_until(exp.sim().now() + msec(250));
    const std::size_t view = c.fused_view().node_count();
    if (view != last_view || step % 8 == 0) {
      std::size_t rules = 0;
      for (auto* s : exp.switches()) rules += s->rule_table().total_rules();
      std::printf("%8.2f %10zu %12zu %10llu %12zu\n",
                  to_seconds(exp.sim().now()), view, c.reply_db().size(),
                  static_cast<unsigned long long>(c.stats().rounds_started),
                  rules);
      last_view = view;
    }
    const auto st = exp.monitor().check();
    if (st.legitimate) {
      std::printf("legitimate at t=%.2fs: the controller reaches every "
                  "switch in-band and every switch is managed\n",
                  to_seconds(exp.sim().now()));
      break;
    }
  }

  // Show a sample flow: the installed first hops + the path a packet takes.
  const auto flows = c.current_flows();
  NodeId far = 0;
  std::size_t best = 0;
  for (const auto& [dst, hops] : flows->first_hops) {
    (void)hops;
    if (static_cast<std::size_t>(dst) > best && dst < 57) {
      best = static_cast<std::size_t>(dst);
      far = dst;
    }
  }
  std::printf("first hops toward switch %d:", far);
  for (NodeId h : flows->first_hops.at(far)) std::printf(" %d", h);
  std::printf("  (primary path first, then kappa backups)\n");
  return 0;
}

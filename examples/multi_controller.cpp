// Multi-controller management: seven equal-role controllers share every
// switch; a majority of them fail simultaneously and the survivors purge
// the stale state (the paper's Fig. 11 scenario).
//
//   $ ./examples/multi_controller
#include <cstdio>

#include "renaissance.hpp"

int main() {
  using namespace ren;

  sim::ExperimentConfig cfg;
  cfg.topology = "Telstra";
  cfg.controllers = 7;
  cfg.kappa = 2;
  cfg.theta = 30;
  cfg.seed = 3;
  sim::Experiment exp(cfg);

  const auto boot = exp.run_until_legitimate(sec(180));
  if (!boot.converged) {
    std::printf("bootstrap failed: %s\n", boot.last_reason.c_str());
    return 1;
  }
  std::printf("7 controllers manage all 57 switches after %.2fs\n",
              boot.seconds);

  auto print_switch_state = [&](const char* when) {
    auto* sw = exp.switches()[0];
    std::printf("%s: switch 0 has %zu managers, rule owners:", when,
                sw->managers().size());
    for (NodeId o : sw->rule_table().owners()) std::printf(" %d", o);
    std::printf("\n");
  };
  print_switch_state("before");

  // Kill four controllers at once.
  auto cp = exp.control_plane();
  const auto victims = faults::kill_random_controllers(cp, exp.fault_rng(), 4);
  std::printf("killed controllers:");
  for (NodeId v : victims) std::printf(" %d", v);
  std::printf("\n");

  const auto rec = exp.run_until_legitimate(sec(120));
  std::printf("recovered in %.2fs — stale managers and rules purged\n",
              rec.seconds);
  print_switch_state("after");

  // The deletions were legitimate: no live controller lost state.
  std::uint64_t illegitimate = 0;
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    illegitimate += exp.controller(k).stats().illegitimate_deletions;
  }
  std::printf("illegitimate deletions during recovery: %llu\n",
              static_cast<unsigned long long>(illegitimate));
  return rec.converged ? 0 : 1;
}

// Quickstart: bring up a self-stabilizing in-band control plane on the B4
// WAN with three controllers, watch it converge, kill a controller, and
// watch it recover.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "renaissance.hpp"

int main() {
  using namespace ren;

  // 1. Describe the deployment. Everything else (switch fabric, controller
  //    attachment, timers, the legitimacy monitor) is derived from this.
  sim::ExperimentConfig cfg;
  cfg.topology = "B4";   // Google's 12-site WAN (see topo::paper_topologies)
  cfg.controllers = 3;   // each attaches to kappa+1 switches
  cfg.kappa = 2;         // flows survive up to 2 link failures
  cfg.seed = 42;

  sim::Experiment exp(cfg);
  std::printf("B4: %d switches, %zu controllers, diameter %d\n",
              exp.topology().switch_graph.n(), exp.controller_count(),
              exp.topology().expected_diameter);

  // 2. Bootstrap: starting from completely empty switch configurations,
  //    every controller discovers the network ring by ring and installs
  //    kappa-fault-resilient flows to every node — all in-band.
  const auto boot = exp.run_until_legitimate(sec(120));
  if (!boot.converged) {
    std::printf("bootstrap failed: %s\n", boot.last_reason.c_str());
    return 1;
  }
  std::printf("bootstrapped in %.2f simulated seconds\n", boot.seconds);
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    const auto& c = exp.controller(k);
    std::printf("  controller %d: %llu iterations, view of %zu nodes\n",
                c.id(),
                static_cast<unsigned long long>(c.stats().iterations),
                c.fused_view().node_count());
  }

  // 3. Every switch is now managed by every controller (Definition 1).
  std::printf("switch 0 managers:");
  for (NodeId m : exp.switches()[0]->managers()) std::printf(" %d", m);
  std::printf("  (rules installed: %zu)\n",
              exp.switches()[0]->rule_table().total_rules());

  // 4. Fail-stop a random controller; the survivors clean up its state.
  auto cp = exp.control_plane();
  const NodeId victim = faults::kill_random_controller(cp, exp.fault_rng());
  std::printf("killed controller %d...\n", victim);
  const auto rec = exp.run_until_legitimate(sec(60));
  std::printf("recovered in %.2f seconds; switch 0 managers now:", rec.seconds);
  for (NodeId m : exp.switches()[0]->managers()) std::printf(" %d", m);
  std::printf("\n");
  return rec.converged ? 0 : 1;
}

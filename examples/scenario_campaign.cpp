// Build a custom fault timeline with the C++ builder API and sweep it over
// a topology x controller grid with the parallel campaign runner.
//
//   ./example_scenario_campaign
//
// The same scenario expressed as a JSON spec (see docs/scenarios.md) can be
// run with `ren_scenarios --spec`; `--print-spec` on any built-in shows the
// format.
#include <cstdio>

#include "renaissance.hpp"

int main() {
  using namespace ren;

  scenario::Scenario s;
  s.name = "double_fault_demo";
  s.description = "controller loss while two links are down, then heal";
  s.topologies = {"B4", "Clos"};
  s.controllers = {3, 5};
  s.trials = 4;
  s.axis("kappa", {1, 2});  // generic config axis, crossed with the grid
  s.expect_converged(sec(0), "bootstrap")
      .fail_links(sec(5), 2)
      .kill_controller(sec(5))
      .expect_converged(sec(5), "degraded")
      .restore_links(sec(20))
      .restart_nodes(sec(20))
      .expect_converged(sec(20), "healed");

  const auto result = scenario::run_campaign(s, {});
  std::printf("%s\n", result.to_json().pretty().c_str());
  return 0;
}

// Self-stabilization in action: an adversary corrupts the entire system
// state — switch rules, manager sets, controller databases, tags,
// transport labels, failure detectors — and Renaissance converges back to
// a legitimate state (the paper's Theorem 2, which the authors' own
// evaluation could not exercise empirically; see Section 6.1).
//
//   $ ./examples/transient_recovery
#include <cstdio>

#include "renaissance.hpp"

int main() {
  using namespace ren;

  sim::ExperimentConfig cfg;
  cfg.topology = "Clos";
  cfg.controllers = 3;
  cfg.kappa = 1;
  cfg.seed = 2026;
  sim::Experiment exp(cfg);

  const auto boot = exp.run_until_legitimate(sec(120));
  std::printf("bootstrapped in %.2fs\n", boot.seconds);

  for (int round = 1; round <= 3; ++round) {
    // Corrupt EVERYTHING.
    auto cp = exp.control_plane();
    faults::corrupt_all_state(cp, exp.fault_rng());
    const auto st = exp.monitor().check();
    std::printf("round %d: corrupted all state -> monitor says: %s\n", round,
                st.legitimate ? "(still legitimate?!)" : st.reason.c_str());

    const auto rec = exp.run_until_legitimate(sec(120));
    if (!rec.converged) {
      std::printf("round %d: FAILED to recover: %s\n", round,
                  rec.last_reason.c_str());
      return 1;
    }
    std::uint64_t resets = 0, deletions = 0;
    for (std::size_t k = 0; k < exp.controller_count(); ++k) {
      resets += exp.controller(k).c_resets();
      deletions += exp.controller(k).stats().deletions_sent;
    }
    std::printf(
        "round %d: re-stabilized in %.2fs (C-resets so far: %llu, "
        "deletions sent so far: %llu)\n",
        round, rec.seconds, static_cast<unsigned long long>(resets),
        static_cast<unsigned long long>(deletions));
  }
  std::printf("every corruption round converged — self-stabilization holds\n");
  return 0;
}

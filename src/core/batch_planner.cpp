#include "core/batch_planner.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "net/simulator.hpp"
#include "util/log.hpp"

namespace ren::core {

namespace {

/// In-place message rotation requires exclusive ownership, and under a
/// multi-shard simulation use_count() == 1 is not a safe signal for it: the
/// last foreign reference may have been dropped by a peer shard with no
/// happens-before edge, and the count's value can depend on wall-clock
/// interleaving. Clone instead there — the clone path is behaviourally
/// identical (only the rotated/cloned stat split moves), so outcomes stay
/// bit-identical to the serial kernel.
bool uniquely_owned(const proto::MessagePtr& msg) {
  return msg.use_count() == 1 && !net::Simulator::concurrent_context();
}

/// Rotate a cached batch onto a new round: only the newRound/updateRule/
/// query tags change, the command structure (and the shared rule list) is
/// reused verbatim.
void retag(proto::Message& m, proto::Tag tag) {
  auto& b = std::get<proto::CommandBatch>(m);
  for (proto::Command& c : b.commands) {
    if (auto* nr = std::get_if<proto::NewRoundCmd>(&c)) {
      nr->tag = tag;
    } else if (auto* ur = std::get_if<proto::UpdateRuleCmd>(&c)) {
      ur->tag = tag;
    } else if (auto* q = std::get_if<proto::QueryCmd>(&c)) {
      q->tag = tag;
    }
  }
}

}  // namespace

BatchPlanner::BatchPlanner(NodeId self, Config config, Hooks hooks)
    : self_(self), config_(config), hooks_(std::move(hooks)) {}

void BatchPlanner::compute_victims(const proto::QueryReply& m, bool new_round,
                                   const ResView& res_prev,
                                   std::vector<NodeId>& victims) {
  victims.clear();
  if (!config_.memory_adaptive) return;

  // Owners that have rules (the per-controller meta rule counts, as in the
  // paper where it is installed by 'newRound' before any update).
  owners_scratch_.clear();
  for (const auto& s : m.rule_owners) owners_scratch_.push_back(s.cid);
  std::sort(owners_scratch_.begin(), owners_scratch_.end());
  owners_scratch_.erase(
      std::unique(owners_scratch_.begin(), owners_scratch_.end()),
      owners_scratch_.end());
  managers_scratch_.assign(m.managers.begin(), m.managers.end());
  std::sort(managers_scratch_.begin(), managers_scratch_.end());
  managers_scratch_.erase(
      std::unique(managers_scratch_.begin(), managers_scratch_.end()),
      managers_scratch_.end());

  auto contains = [](const std::vector<NodeId>& v, NodeId x) {
    return std::binary_search(v.begin(), v.end(), x);
  };
  // Line 15: M = managers with rules, reachable (on new rounds), plus self.
  auto in_M = [&](NodeId k) {
    if (k == self_) return true;
    if (!contains(managers_scratch_, k) || !contains(owners_scratch_, k)) {
      return false;
    }
    return !(new_round && !res_prev.reachable(k));
  };
  // Lines 16-17, with the seed's atomic eviction: victims = stale managers
  // plus foreign rule owners outside M, deduplicated and ascending (the
  // iteration order of the seed's std::set).
  for (NodeId k : managers_scratch_) {
    if (!in_M(k)) victims.push_back(k);
  }
  for (NodeId k : owners_scratch_) {
    if (k != self_ && !contains(managers_scratch_, k) && !in_M(k)) {
      victims.push_back(k);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (NodeId k : victims) {
    REN_LOG(Debug, "ctrl %d evicts %d @sw %d (newround=%d)", self_, k, m.id,
            (int)new_round);
    hooks_.note_deletion(k);
  }
}

std::shared_ptr<proto::Message> BatchPlanner::materialize(
    Entry& entry, proto::BatchKey&& key) {
  if (entry.msg != nullptr && entry.key == key) {
    ++stats_.reused;
    return entry.msg;
  }
  // Peer-class sharing: another peer already materialized this exact batch
  // this tick (all controllers share the query-only batch; switches with no
  // compiled rules yet share theirs). Per-switch rule lists are distinct
  // objects, so keys carrying a non-empty list are unique to their peer and
  // skip the intern list entirely.
  const bool shareable =
      key.query_only || key.rules == nullptr || key.rules->empty();
  if (shareable) {
    for (const auto& [ikey, imsg] : intern_) {
      if (*ikey == key) {
        ++stats_.shared;
        entry.key = std::move(key);
        entry.msg = imsg;
        return entry.msg;
      }
    }
  }
  if (entry.msg != nullptr && entry.key.same_except_tag(key)) {
    // Rotation: only the round tag flipped. Retag the cached message in
    // place when nothing else still references it (transport acked, frames
    // drained), else clone once — sharing makes the clone the class's new
    // shared object via the intern list.
    if (uniquely_owned(entry.msg)) {
      ++stats_.rotated;
    } else {
      ++stats_.cloned;
      entry.msg = std::make_shared<proto::Message>(*entry.msg);
    }
    retag(*entry.msg, key.tag);
  } else {
    ++stats_.rebuilt;
    entry.msg = std::make_shared<proto::Message>(proto::build_batch(self_, key));
  }
  entry.key = std::move(key);
  if (shareable) intern_.emplace_back(&entry.key, entry.msg);
  return entry.msg;
}

void BatchPlanner::rotate_fanout(proto::Tag tag) {
  const bool same_tag = tag == gate_.tag;
  rotate_remap_.clear();
  // Deletion accounting is observable per tick (Theorem 1 experiments):
  // replay last plan's victims — spilled switches first, then each planned
  // entry's — exactly what a re-derivation would have produced.
  for (NodeId v : spilled_victims_) hooks_.note_deletion(v);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Entry* e = planned_entries_[i];
    e->tick = tick_;
    for (NodeId v : e->key.victims) hooks_.note_deletion(v);
    if (same_tag) {
      // Not even the round tag moved: resubmit the identical payload; the
      // transport refreshes its supersede slot without a new label.
      ++stats_.reused;
    } else {
      e->key.tag = tag;
      bool remapped = false;
      for (const auto& [old_ptr, clone] : rotate_remap_) {
        if (old_ptr == e->msg.get()) {
          e->msg = clone;  // keep sharing the already-rotated clone
          ++stats_.shared;
          remapped = true;
          break;
        }
      }
      if (!remapped) {
        if (uniquely_owned(e->msg)) {
          ++stats_.rotated;
          retag(*e->msg, tag);
        } else {
          ++stats_.cloned;
          auto fresh = std::make_shared<proto::Message>(*e->msg);
          retag(*fresh, tag);
          rotate_remap_.emplace_back(e->msg.get(), fresh);
          e->msg = std::move(fresh);
        }
      }
    }
    ++stats_.planned;
    hooks_.send(peers_[i], e->msg, e->key.command_count());
  }
}

void BatchPlanner::plan_fanout(const ReplyDb& db, const ResView& refer,
                               const ResView& res_prev, const ResView& fusion,
                               proto::Tag curr_tag, bool new_round,
                               std::uint64_t flows_fingerprint,
                               std::uint64_t data_flow_revision) {
  ++tick_;
  // The fan-out gate: when every input a key derivation reads is unchanged
  // — the three views' content (build_ids travel with slot rotations), the
  // replyDB's management content, the rules provider — all keys are
  // unchanged up to the round tag, and the fan-out is a pure rotation.
  if (gate_.valid && gate_.refer_build == refer.build_id &&
      gate_.prev_build == res_prev.build_id &&
      gate_.fusion_build == fusion.build_id &&
      gate_.mgmt_revision == db.management_revision() &&
      gate_.flows_fingerprint == flows_fingerprint &&
      gate_.data_flow_revision == data_flow_revision &&
      gate_.new_round == new_round) {
    ++stats_.gate_rotations;
    last_was_rotation_ = true;
    rotate_fanout(curr_tag);
    gate_.tag = curr_tag;
    if (config_.paranoid) {
      check_paranoid(db, refer, res_prev, fusion, curr_tag, new_round);
    }
    return;
  }

  ++stats_.full_plans;
  last_was_rotation_ = false;
  intern_.clear();
  peers_.clear();
  planned_entries_.clear();
  spilled_victims_.clear();
  for (NodeId n : fusion.reach) {
    if (n != self_) peers_.push_back(n);
  }
  std::sort(peers_.begin(), peers_.end());

  // Spilled preparation: a replied switch that is not fusion-reachable this
  // tick still runs lines 15-17 (deletion accounting is observable) but its
  // batch is never sent — matching the seed, which built and dropped them.
  for (NodeId j : refer.reply_ids) {
    if (std::binary_search(peers_.begin(), peers_.end(), j)) continue;
    const proto::QueryReply* m = db.find(j);
    if (m == nullptr || m->from_controller) continue;
    compute_victims(*m, new_round, res_prev, victims_scratch_);
    spilled_victims_.insert(spilled_victims_.end(), victims_scratch_.begin(),
                            victims_scratch_.end());
  }

  for (NodeId peer : peers_) {
    proto::BatchKey key;
    key.tag = curr_tag;
    key.retention = config_.retention;
    const proto::QueryReply* m =
        refer.reply_ids.count(peer) != 0 ? db.find(peer) : nullptr;
    if (m != nullptr && !m->from_controller) {
      // Lines 14-18: eviction + rule refresh for a replied switch.
      compute_victims(*m, new_round, res_prev, victims_scratch_);
      key.victims = victims_scratch_;
      key.rules = hooks_.rules_for(peer);
    } else {
      auto t = fusion.transit.find(peer);
      if (t != fusion.transit.end() && !t->second) {
        key.query_only = true;  // controllers only answer the query
      } else {
        // Modify-by-neighbor (Section 2.1.1): a discovered switch that has
        // not replied yet still gets a manager entry and a flow back to
        // this controller, installed through its neighbors.
        key.rules = hooks_.rules_for(peer);
      }
    }
    Entry& entry = entries_[peer];
    const std::size_t commands = key.command_count();
    std::shared_ptr<proto::Message> msg = materialize(entry, std::move(key));
    entry.tick = tick_;
    planned_entries_.push_back(&entry);
    ++stats_.planned;
    hooks_.send(peer, msg, commands);
  }

  gate_.valid = true;
  gate_.refer_build = refer.build_id;
  gate_.prev_build = res_prev.build_id;
  gate_.fusion_build = fusion.build_id;
  gate_.mgmt_revision = db.management_revision();
  gate_.flows_fingerprint = flows_fingerprint;
  gate_.data_flow_revision = data_flow_revision;
  gate_.new_round = new_round;
  gate_.tag = curr_tag;

  if (config_.paranoid) {
    check_paranoid(db, refer, res_prev, fusion, curr_tag, new_round);
  }

  // Retire peers that left the fan-out (bounds the cache alongside the
  // transport's retain_only). planned_entries_ pointers stay valid: only
  // non-planned nodes are erased.
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.tick == tick_ ? std::next(it) : entries_.erase(it);
  }
  // Drop the intern references now rather than at the next full plan: a
  // lingering shared_ptr would keep single-sharer shareable batches at
  // use_count 2 through every gate rotation, forcing clone-instead-of-
  // retag (and its key pointers would dangle after the erase loop above).
  intern_.clear();
}

// --- Differential shadow -----------------------------------------------------
//
// A from-scratch reference written against the seed's original fan-out
// (std::set preparation, per-peer command maps, fresh CommandBatch per
// peer), deliberately independent of the key/rotation machinery under test.
// Every planned batch must encode byte-identically to its shadow.

void BatchPlanner::check_paranoid(const ReplyDb& db, const ResView& refer,
                                  const ResView& res_prev,
                                  const ResView& fusion, proto::Tag curr_tag,
                                  bool new_round) {
  std::map<NodeId, std::vector<proto::Command>> cmds;
  for (NodeId j : refer.reply_ids) {
    const proto::QueryReply* m = db.find(j);
    if (m == nullptr || m->from_controller) continue;
    auto& out = cmds[j];
    std::set<NodeId> owners;
    for (const auto& s : m->rule_owners) owners.insert(s.cid);
    std::set<NodeId> managers(m->managers.begin(), m->managers.end());
    std::set<NodeId> M;
    for (NodeId k : managers) {
      if (owners.count(k) == 0) continue;
      if (new_round && !res_prev.reachable(k)) continue;
      M.insert(k);
    }
    M.insert(self_);
    if (config_.memory_adaptive) {
      std::set<NodeId> victims;
      for (NodeId k : managers) {
        if (M.count(k) == 0) victims.insert(k);
      }
      for (NodeId k : owners) {
        if (M.count(k) == 0 && k != self_) victims.insert(k);
      }
      for (NodeId k : victims) {
        out.push_back(proto::DelMngrCmd{k});
        out.push_back(proto::DelAllRulesCmd{k});
      }
    }
    out.push_back(proto::AddMngrCmd{self_});
    out.push_back(proto::UpdateRuleCmd{hooks_.rules_for(j), curr_tag});
  }

  std::set<NodeId> peers;
  for (NodeId n : fusion.reach) {
    if (n != self_) peers.insert(n);
  }
  for (NodeId peer : peers) {
    if (cmds.count(peer) != 0) continue;
    auto t = fusion.transit.find(peer);
    if (t != fusion.transit.end() && !t->second) continue;  // controller
    auto& c = cmds[peer];
    c.push_back(proto::AddMngrCmd{self_});
    c.push_back(proto::UpdateRuleCmd{hooks_.rules_for(peer), curr_tag});
  }

  std::size_t checked = 0;
  for (NodeId peer : peers) {
    proto::CommandBatch batch;
    batch.from = self_;
    batch.commands.push_back(proto::NewRoundCmd{curr_tag, config_.retention});
    if (auto it = cmds.find(peer); it != cmds.end()) {
      for (const auto& c : it->second) batch.commands.push_back(c);
    }
    batch.commands.push_back(proto::QueryCmd{curr_tag});

    auto eit = entries_.find(peer);
    if (eit == entries_.end() || eit->second.tick != tick_ ||
        eit->second.msg == nullptr) {
      throw std::logic_error(
          "BatchPlanner paranoia: no planned batch for peer " +
          std::to_string(peer));
    }
    std::string want, got;
    proto::debug_encode(proto::Message{std::move(batch)}, want);
    proto::debug_encode(*eit->second.msg, got);
    if (want != got) {
      throw std::logic_error(
          "BatchPlanner paranoia: planned batch diverges from the "
          "from-scratch build for peer " +
          std::to_string(peer));
    }
    ++checked;
    ++stats_.paranoid_checks;
  }
  // The planner must not have sent to anyone the shadow would not.
  for (const auto& [peer, entry] : entries_) {
    if (entry.tick == tick_ && peers.count(peer) == 0) {
      throw std::logic_error(
          "BatchPlanner paranoia: batch planned for non-recipient peer " +
          std::to_string(peer));
    }
  }
  (void)checked;
}

}  // namespace ren::core

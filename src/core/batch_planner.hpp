// Per-peer command-batch planning for the Algorithm 2 line-19 fan-out.
//
// Every task_delay each controller sends one aggregated CommandBatch to
// every node reachable in G(fusion). The seed rebuilt each batch from
// scratch per tick — four std::sets per replied switch for the lines 14-17
// manager/rule eviction math, a fresh std::vector<Command>, and a by-value
// proto::Message copy into the transport — even when nothing had changed
// since the previous round. The paper only requires that the *newest state*
// supersede the in-flight message, not that it be rebuilt.
//
// The BatchPlanner assembles each per-peer batch at most once per
// input-state change:
//
//  * Every batch is summarized by a proto::BatchKey — round tag, retention,
//    per-owner eviction digest, and the *identity* of the (immutable,
//    shared) rule list — so "did this peer's batch change?" is an O(victims)
//    tag/pointer compare, never a deep command compare.
//  * Key unchanged: the cached proto::MessagePtr is resubmitted verbatim;
//    the transport recognizes the identical pointer and refreshes its
//    supersede slot without a new label or allocation.
//  * Only the round tag flipped (the steady-state norm — converged rounds
//    complete every tick): the cached message object is *rotated*, i.e.
//    retagged in place when uniquely owned, instead of rebuilt.
//  * Anything else: the batch is materialized from its key, once, and
//    interned for the tick so every peer in the same batch class shares one
//    message object (all controller peers share the query-only batch;
//    same-view switches with identical rules/victims share theirs).
//
// Config::paranoid mirrors the view-cache differential pattern: every
// planned batch is shadowed by a from-scratch build using the seed's
// std::set-based preparation, and any divergence in the canonical byte
// encoding (proto::debug_encode) throws std::logic_error.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/reply_db.hpp"
#include "core/view_cache.hpp"
#include "proto/messages.hpp"
#include "util/types.hpp"

namespace ren::core {

struct PlannerStats {
  std::uint64_t planned = 0;   ///< batches handed to the transport
  std::uint64_t reused = 0;    ///< identical key: same MessagePtr resubmitted
  std::uint64_t rotated = 0;   ///< only the tag flipped: retagged in place
  std::uint64_t cloned = 0;    ///< tag flip on a still-referenced message
  std::uint64_t rebuilt = 0;   ///< full command-list materializations
  std::uint64_t shared = 0;    ///< batches aliased to another peer's message
  std::uint64_t gate_rotations = 0;  ///< whole fan-outs served by the gate
  std::uint64_t full_plans = 0;      ///< fan-outs that re-derived every key
  std::uint64_t paranoid_checks = 0;  ///< differential shadows run
};

class BatchPlanner {
 public:
  struct Config {
    int retention = 2;
    bool memory_adaptive = true;
    /// Differential-test mode: shadow every planned batch with a
    /// from-scratch build and throw std::logic_error unless the canonical
    /// encodings are byte-equal (slow; tests/CI only).
    bool paranoid = false;
  };
  struct Hooks {
    /// myRules() for switch j under the current reference view.
    std::function<proto::RuleListPtr(NodeId)> rules_for;
    /// Deletion accounting (Theorem 1 experiments); called once per victim
    /// per prepared switch per tick, planned or spilled, exactly like the
    /// seed's prepare_switch_commands.
    std::function<void(NodeId victim)> note_deletion;
    /// Submit one planned batch. `commands` is the logical command count of
    /// the batch (the Fig. 9 accounting), identical whether the message was
    /// reused, rotated or rebuilt.
    std::function<void(NodeId peer, proto::MessagePtr message,
                       std::size_t commands)>
        send;
  };

  BatchPlanner(NodeId self, Config config, Hooks hooks);

  /// Algorithm 2 lines 14-19 for one tick: prepare the per-switch eviction
  /// and rule-refresh commands against `refer`, extend unknown fusion-
  /// reachable switches by-neighbor, and send one batch per reachable peer
  /// (query-only to controllers) — reusing every batch whose key did not
  /// change. Replied switches outside the fan-out still run the preparation
  /// (deletion accounting is observable) without sending, matching the
  /// seed's spill behavior.
  ///
  /// `flows_fingerprint` and `data_flow_revision` identify the output of
  /// the caller's rules_for hook (the compiled control flows plus any
  /// registered data flows): together with the three views' build_ids and
  /// the replyDB's management_revision they form the fan-out *gate* — when
  /// none of them moved since the previous tick, every per-peer key is
  /// unchanged up to the round tag, and the whole fan-out collapses to
  /// rotating the cached batches (or resubmitting them verbatim when the
  /// tag did not move either).
  void plan_fanout(const ReplyDb& db, const ResView& refer,
                   const ResView& res_prev, const ResView& fusion,
                   proto::Tag curr_tag, bool new_round,
                   std::uint64_t flows_fingerprint,
                   std::uint64_t data_flow_revision);

  /// The fan-out recipients of the last plan_fanout, sorted ascending (the
  /// controller's transport retain_only feed).
  [[nodiscard]] const std::vector<NodeId>& last_peers() const { return peers_; }

  /// True when the last plan_fanout was served entirely by the gate: same
  /// recipients, same session keep-set — the caller may skip its transport
  /// pruning for the tick.
  [[nodiscard]] bool last_was_rotation() const { return last_was_rotation_; }

  [[nodiscard]] const PlannerStats& stats() const { return stats_; }

  /// Drop every cached batch (e.g. after state corruption: the cached
  /// messages may describe tampered state their keys no longer witness).
  void invalidate() {
    entries_.clear();
    planned_entries_.clear();
    peers_.clear();
    intern_.clear();  // its key pointers aim into the cleared entries_
    gate_.valid = false;
  }

 private:
  struct Entry {
    proto::BatchKey key;
    /// Cached batch; non-const so a uniquely-owned message can be retagged
    /// in place on round flips. Handed out as proto::MessagePtr.
    std::shared_ptr<proto::Message> msg;
    std::uint64_t tick = 0;  ///< last plan_fanout that planned this peer
  };

  /// Everything a full plan read, beyond the round tag. Equality means the
  /// next tick's keys are key.same_except_tag-identical for every peer.
  struct Gate {
    bool valid = false;
    std::uint64_t refer_build = 0;
    std::uint64_t prev_build = 0;
    std::uint64_t fusion_build = 0;
    std::uint64_t mgmt_revision = 0;
    std::uint64_t flows_fingerprint = 0;
    std::uint64_t data_flow_revision = 0;
    bool new_round = false;
    proto::Tag tag;  ///< tag of the cached batches (not part of the gate)
  };

  /// Lines 15-17: the sorted eviction victims for one switch reply; calls
  /// note_deletion per victim.
  void compute_victims(const proto::QueryReply& m, bool new_round,
                       const ResView& res_prev, std::vector<NodeId>& victims);
  /// Resolve `key` to a message: intern-share, rotate, or rebuild.
  std::shared_ptr<proto::Message> materialize(Entry& entry,
                                              proto::BatchKey&& key);
  /// Gate hit: re-send every cached batch under `tag` without re-deriving a
  /// single key (retag in place / resubmit verbatim), replaying the
  /// deletion accounting.
  void rotate_fanout(proto::Tag tag);
  void check_paranoid(const ReplyDb& db, const ResView& refer,
                      const ResView& res_prev, const ResView& fusion,
                      proto::Tag curr_tag, bool new_round);

  NodeId self_;
  Config config_;
  Hooks hooks_;
  std::unordered_map<NodeId, Entry> entries_;
  std::uint64_t tick_ = 0;
  Gate gate_;
  bool last_was_rotation_ = false;
  PlannerStats stats_;

  // Per-tick scratch, cleared not shrunk.
  std::vector<NodeId> peers_;
  /// entries_ nodes in peers_ order from the last full plan (unordered_map
  /// node addresses are stable), so a gate rotation walks a flat array.
  std::vector<Entry*> planned_entries_;
  /// Victims of spilled (replied, not fusion-reachable) switches from the
  /// last full plan, replayed for deletion accounting on gate rotations.
  std::vector<NodeId> spilled_victims_;
  /// old-message -> rotated-clone remap within one gate rotation, so peers
  /// sharing a message keep sharing its clone.
  std::vector<std::pair<const proto::Message*, std::shared_ptr<proto::Message>>>
      rotate_remap_;
  std::vector<NodeId> owners_scratch_;
  std::vector<NodeId> managers_scratch_;
  std::vector<NodeId> victims_scratch_;
  /// This tick's materialized *shareable* batches for peer-class sharing.
  /// Only keys that can possibly repeat are interned — the query-only
  /// controller class and empty rule lists (per-switch compiled lists are
  /// never pointer-shared across peers) — so the list stays a handful of
  /// entries and per-peer planning never scans O(peers) state.
  std::vector<std::pair<const proto::BatchKey*, std::shared_ptr<proto::Message>>>
      intern_;
};

}  // namespace ren::core

#include "core/controller.hpp"

#include <algorithm>

#include "faults/adversary.hpp"
#include "util/log.hpp"

namespace ren::core {

Controller::Controller(NodeId id, Config config)
    : net::Node(id, NodeKind::Controller),
      config_(config),
      tags_(id),
      db_(ReplyDb::Config{config.max_replies, config.memory_adaptive}),
      detector_(id, detect::ThetaDetector::Config{config.theta}),
      endpoint_(
          id, transport::Config{},
          transport::Endpoint::Hooks{
              [this](NodeId peer, proto::PayloadPtr f, std::uint32_t bytes) {
                route_frame(peer, std::move(f), bytes);
              },
              [this](NodeId peer, proto::MessagePtr m) {
                if (const auto* reply = std::get_if<proto::QueryReply>(&*m)) {
                  on_reply(*reply);
                } else if (const auto* batch =
                               std::get_if<proto::CommandBatch>(&*m)) {
                  on_peer_batch(peer, *batch);
                }
              },
              [this](NodeId) {
                ++sim_->counters().ctrl_messages_sent[static_cast<std::size_t>(
                    this->id())];
              }}),
      compiler_(flows::RuleCompiler::Config{config.kappa}),
      views_(id),
      planner_(id,
               BatchPlanner::Config{config.rule_retention,
                                    config.memory_adaptive,
                                    config.paranoid_batches},
               BatchPlanner::Hooks{
                   [this](NodeId j) { return rules_for_switch(j); },
                   [this](NodeId victim) { note_deletion(victim); },
                   [this](NodeId peer, proto::MessagePtr msg,
                          std::size_t commands) {
                     sim_->counters().ctrl_commands_sent[static_cast<
                         std::size_t>(this->id())] += commands;
                     endpoint_.submit(peer, std::move(msg));
                   }}) {
  views_.set_enabled(config_.cache_views);
  views_.set_paranoid(config_.paranoid_views);
  curr_tag_ = tags_.next();
  prev_tag_ = proto::kNullTag;
}

void Controller::start() {
  const Time it_off = static_cast<Time>(sim_->node_rng(id()).next_below(
      static_cast<std::uint64_t>(config_.task_delay)));
  const Time det_off = static_cast<Time>(sim_->node_rng(id()).next_below(
      static_cast<std::uint64_t>(config_.detect_interval)));
  sim_->schedule_for(id(), it_off, [this] { iterate(); });
  sim_->schedule_for(id(), det_off, [this] { detect_tick(); });
}

void Controller::detect_tick() {
  std::vector<NodeId> ports;
  for (const auto& e : sim_->network().adjacency(id())) {
    ports.push_back(e.neighbor);
  }
  detector_.set_candidates(ports);
  detector_.tick([this](NodeId nbr, proto::Probe p) {
    sim_->send(id(), nbr, net::make_packet(id(), nbr, proto::Payload{p}));
  });
  sim_->schedule_for(id(), config_.detect_interval, [this] { detect_tick(); });
}

// --- View maintenance -------------------------------------------------------
//
// The res/fusion views are materialized by the ViewCache at most once per
// (replyDB revision, tags, liveness epoch) state; every consumer below calls
// refresh_views() first and reads the shared cached instances.

void Controller::refresh_views() {
  views_.refresh(db_, curr_tag_, prev_tag_, detector_);
}

void Controller::prune_transport_sessions(const std::vector<NodeId>& peers) {
  keep_scratch_.assign(peers.begin(), peers.end());
  for (const auto& e : sim_->network().adjacency(id())) {
    keep_scratch_.push_back(e.neighbor);
  }
  std::sort(keep_scratch_.begin(), keep_scratch_.end());
  keep_scratch_.erase(std::unique(keep_scratch_.begin(), keep_scratch_.end()),
                      keep_scratch_.end());
  endpoint_.retain_only(keep_scratch_);
}

void Controller::prune_reply_db() {
  // Line 8: drop replies that are unreachable in their tag's view (O(1)
  // membership against the precomputed reachability) or carry a stale tag.
  const ResView& res_curr = views_.res_curr();
  const ResView& res_prev = views_.res_prev();
  db_.erase_if([&](const proto::QueryReply& m) {
    if (m.id == id()) return true;  // self is synthesized, never stored
    if (m.tag_for_querier == curr_tag_) return !res_curr.reachable(m.id);
    if (m.tag_for_querier == prev_tag_) return !res_prev.reachable(m.id);
    return true;  // stale tag
  });
}

bool Controller::round_complete() const {
  // Line 10: every node reachable in G(res(currTag)) has replied with
  // currTag (the self record stands in for p_i's own reply).
  const ResView& res = views_.res_curr();
  for (NodeId n : res.reach) {
    if (n == id()) continue;
    if (res.reply_ids.count(n) == 0) return false;
  }
  return true;
}

// --- The do-forever body -----------------------------------------------------

void Controller::run_iteration() {
  if (!config_.cache_views) {
    run_iteration_legacy();
    return;
  }
  ++stats_.iterations;
  ++sim_->counters().iterations[static_cast<std::size_t>(id())];

  refresh_views();
  prune_reply_db();  // line 8 (may bump the replyDB revision)

  bool new_round = false;  // lines 9-12
  refresh_views();         // no-op unless pruning erased something
  if (round_complete()) {
    new_round = true;
    ++stats_.rounds_started;
    prev_tag_ = curr_tag_;
    curr_tag_ = tags_.next();
    db_.erase_if([this](const proto::QueryReply& m) {
      return m.tag_for_querier == curr_tag_;
    });
    refresh_views();  // clean flips rotate slots instead of rebuilding
  }

  // Line 13: reference tag selection.
  const ResView& res_prev = views_.res_prev();
  const ResView& fusion = views_.fusion();
  const bool topo_stable =
      views_.fusion_aliases_prev() || fusion.view == res_prev.view;
  const ResView& refer = topo_stable ? res_prev : views_.res_curr();
  if (!(fusion_view_ == fusion.view)) {
    fusion_view_ = fusion.view;
    ++change_epoch_;
  }

  // myRules() for the reference view; also drives the controller's own
  // first-hop routing.
  const flows::CompiledFlowsPtr prior_flows = current_flows_;
  current_flows_ = compiler_.compile_cached(refer.view, id(), refer.transit);
  if (current_flows_ != prior_flows) ++change_epoch_;
  rebuild_merged_rules(refer.view, refer.transit);

  if (fanout_probe_) fanout_probe_(true);
  if (config_.plan_batches) {
    // Lines 14-19 via the batch planner: each per-peer batch is assembled at
    // most once per input-state change; unchanged batches are resubmitted as
    // the identical shared payload, round flips rotate in place. The flows
    // fingerprint + data-flow revision identify rules_for_switch's output
    // (exactly the key rebuild_merged_rules caches on).
    planner_.plan_fanout(
        db_, refer, res_prev, fusion, curr_tag_, new_round,
        current_flows_ != nullptr ? current_flows_->view_fingerprint : ~0ULL,
        data_flow_revision_);
    if (!planner_.last_was_rotation()) {
      // The recipients changed: re-derive the transport keep-set. On gate
      // rotations the peer set (and thus the keep-set) is unchanged, so the
      // prune would be a no-op sweep.
      prune_transport_sessions(planner_.last_peers());
    }
    if (fanout_probe_) fanout_probe_(false);
    return;
  }

  // Line 19's recipients: every node reachable in G(fusion), sorted. The
  // peer list and the per-peer command vectors are allocation-light: flat
  // vectors reused across ticks instead of a std::set plus a
  // std::map<NodeId, std::vector<Command>> rebuilt every iteration.
  peers_scratch_.clear();
  for (NodeId n : fusion.reach) {
    if (n != id()) peers_scratch_.push_back(n);
  }
  std::sort(peers_scratch_.begin(), peers_scratch_.end());
  if (cmd_scratch_.size() < peers_scratch_.size()) {
    cmd_scratch_.resize(peers_scratch_.size());
  }
  for (auto& c : cmd_scratch_) c.clear();
  auto peer_slot = [&](NodeId j) -> std::vector<proto::Command>* {
    const auto it =
        std::lower_bound(peers_scratch_.begin(), peers_scratch_.end(), j);
    if (it == peers_scratch_.end() || *it != j) return nullptr;
    return &cmd_scratch_[static_cast<std::size_t>(it - peers_scratch_.begin())];
  };

  // Lines 14-18: per-switch command preparation. A replied switch that is
  // not fusion-reachable this tick still runs the preparation (deletion
  // accounting is observable) into a spill slot whose batch is never sent —
  // matching the seed, which built and then dropped such batches.
  for (NodeId j : refer.reply_ids) {
    const proto::QueryReply* m = db_.find(j);
    if (m == nullptr || m->from_controller) continue;
    std::vector<proto::Command>* out = peer_slot(j);
    if (out == nullptr) {
      cmd_spill_.clear();
      out = &cmd_spill_;
    }
    prepare_switch_commands(
        *m, new_round, [&](NodeId k) { return res_prev.reachable(k); }, *out);
  }

  // Modify-by-neighbor (Section 2.1.1): a discovered switch that has not
  // replied yet — or whose stale rules blackhole its replies — still gets
  // a manager entry and a flow back to this controller, installed through
  // its neighbors. Without this, a switch whose pre-change reverse rules
  // point into a failed region could never report in. Controllers ignore
  // these commands, so optimistically treating unknown nodes as switches
  // is safe.
  for (std::size_t i = 0; i < peers_scratch_.size(); ++i) {
    const NodeId peer = peers_scratch_[i];
    auto& c = cmd_scratch_[i];
    if (!c.empty()) continue;
    auto t = fusion.transit.find(peer);
    if (t != fusion.transit.end() && !t->second) continue;  // controller
    c.push_back(proto::AddMngrCmd{id()});
    c.push_back(proto::UpdateRuleCmd{rules_for_switch(peer), curr_tag_});
  }
  // Line 19: aggregated batch + query to every reachable node.
  for (std::size_t i = 0; i < peers_scratch_.size(); ++i) {
    const NodeId peer = peers_scratch_[i];
    proto::CommandBatch batch;
    batch.from = id();
    batch.commands.reserve(cmd_scratch_[i].size() + 2);
    batch.commands.push_back(
        proto::NewRoundCmd{curr_tag_, config_.rule_retention});
    for (auto& c : cmd_scratch_[i]) batch.commands.push_back(std::move(c));
    batch.commands.push_back(proto::QueryCmd{curr_tag_});
    sim_->counters().ctrl_commands_sent[static_cast<std::size_t>(id())] +=
        batch.commands.size();
    endpoint_.submit(peer, proto::Message{std::move(batch)});
  }
  // Keep transport state bounded: sessions only for current peers and
  // physically attached neighbors.
  prune_transport_sessions(peers_scratch_);
  if (fanout_probe_) fanout_probe_(false);
}

void Controller::iterate() {
  if (!frozen_) {
    if (iteration_probe_) iteration_probe_(true);
    run_iteration();
    if (iteration_probe_) iteration_probe_(false);
  }
  endpoint_.tick();  // retransmit unacknowledged frames
  sim_->schedule_for(id(), config_.task_delay, [this] { iterate(); });
}

// --- The pre-cache baseline ---------------------------------------------------
//
// The seed's do-forever body, preserved as Config::cache_views = false: the
// res/fusion views are rebuilt from the replyDB at every consumer (twice in
// the prune, once for round completion, three times for reference
// selection), reachability is a std::set-seeded BFS per use with linear
// membership scans, and the command fan-out rebuilds a std::set peer list
// plus a std::map of command vectors each tick. bench_controller_hotpath
// measures the cached pipeline against exactly this.

namespace {

struct LegacyRes {
  flows::TopoView view;
  std::map<NodeId, bool> transit;
  std::set<NodeId> reply_ids;
};

LegacyRes legacy_build_res(NodeId self, const ReplyDb& db, proto::Tag tag,
                           const detect::ThetaDetector& detector) {
  LegacyRes res;
  res.view.add_node(self);
  res.transit[self] = false;
  for (NodeId n : detector.live()) res.view.add_edge(self, n);
  for (const auto& [rid, m] : db.entries()) {
    if (!(m.tag_for_querier == tag)) continue;
    res.view.add_node(m.id);
    for (NodeId n : m.nc) res.view.add_edge(m.id, n);
    res.transit[m.id] = !m.from_controller;
    res.reply_ids.insert(m.id);
  }
  return res;
}

LegacyRes legacy_build_fusion(NodeId self, const ReplyDb& db, proto::Tag curr,
                              proto::Tag prev,
                              const detect::ThetaDetector& detector) {
  LegacyRes res;
  res.view.add_node(self);
  res.transit[self] = false;
  for (NodeId n : detector.live()) res.view.add_edge(self, n);
  for (const auto& [rid, m] : db.entries()) {
    const bool is_curr = m.tag_for_querier == curr;
    const bool is_prev = m.tag_for_querier == prev;
    if (!is_curr && !is_prev) continue;
    if (is_prev && !is_curr) {
      const proto::QueryReply* other = db.find(m.id);
      if (other != nullptr && other->tag_for_querier == curr) continue;
    }
    res.view.add_node(m.id);
    for (NodeId n : m.nc) res.view.add_edge(m.id, n);
    res.transit[m.id] = !m.from_controller;
    res.reply_ids.insert(m.id);
  }
  return res;
}

}  // namespace

void Controller::run_iteration_legacy() {
  ++stats_.iterations;
  ++sim_->counters().iterations[static_cast<std::size_t>(id())];

  {  // line 8: prune with full reachable sets and linear membership scans
    const LegacyRes res_curr = legacy_build_res(id(), db_, curr_tag_, detector_);
    const LegacyRes res_prev = legacy_build_res(id(), db_, prev_tag_, detector_);
    const auto curr_reach = res_curr.view.reachable_set(id());
    const auto prev_reach = res_prev.view.reachable_set(id());
    auto in = [](const std::vector<NodeId>& v, NodeId x) {
      return std::find(v.begin(), v.end(), x) != v.end();
    };
    db_.erase_if([&](const proto::QueryReply& m) {
      if (m.id == id()) return true;
      if (m.tag_for_querier == curr_tag_) return !in(curr_reach, m.id);
      if (m.tag_for_querier == prev_tag_) return !in(prev_reach, m.id);
      return true;
    });
  }

  bool new_round = false;  // lines 9-12
  {
    const LegacyRes res = legacy_build_res(id(), db_, curr_tag_, detector_);
    bool complete = true;
    for (NodeId n : res.view.reachable_set(id())) {
      if (n == id()) continue;
      if (res.reply_ids.count(n) == 0) {
        complete = false;
        break;
      }
    }
    if (complete) {
      new_round = true;
      ++stats_.rounds_started;
      prev_tag_ = curr_tag_;
      curr_tag_ = tags_.next();
      db_.erase_if([this](const proto::QueryReply& m) {
        return m.tag_for_querier == curr_tag_;
      });
    }
  }

  // Line 13: reference tag selection.
  LegacyRes res_prev = legacy_build_res(id(), db_, prev_tag_, detector_);
  LegacyRes res_curr = legacy_build_res(id(), db_, curr_tag_, detector_);
  LegacyRes fusion =
      legacy_build_fusion(id(), db_, curr_tag_, prev_tag_, detector_);
  const bool topo_stable = fusion.view == res_prev.view;
  const LegacyRes& refer = topo_stable ? res_prev : res_curr;
  if (!(fusion_view_ == fusion.view)) {
    fusion_view_ = fusion.view;
    ++change_epoch_;
  }

  const flows::CompiledFlowsPtr prior_flows = current_flows_;
  current_flows_ = compiler_.compile_cached(refer.view, id(), refer.transit);
  if (current_flows_ != prior_flows) ++change_epoch_;
  rebuild_merged_rules(refer.view, refer.transit);

  // Lines 14-18: per-switch command preparation (BFS per reachability ask).
  std::map<NodeId, std::vector<proto::Command>> cmds;
  for (NodeId j : refer.reply_ids) {
    const proto::QueryReply* m = db_.find(j);
    if (m == nullptr || m->from_controller) continue;
    prepare_switch_commands(
        *m, new_round,
        [&](NodeId k) { return res_prev.view.reachable(id(), k); }, cmds[j]);
  }

  // Line 19: aggregated batch + query to every reachable node.
  std::set<NodeId> peers;
  for (NodeId n : fusion.view.reachable_set(id())) {
    if (n != id()) peers.insert(n);
  }
  for (NodeId peer : peers) {
    if (cmds.count(peer) != 0) continue;
    auto t = fusion.transit.find(peer);
    if (t != fusion.transit.end() && !t->second) continue;  // controller
    auto& c = cmds[peer];
    c.push_back(proto::AddMngrCmd{id()});
    c.push_back(proto::UpdateRuleCmd{rules_for_switch(peer), curr_tag_});
  }
  for (NodeId peer : peers) {
    proto::CommandBatch batch;
    batch.from = id();
    batch.commands.push_back(
        proto::NewRoundCmd{curr_tag_, config_.rule_retention});
    if (auto it = cmds.find(peer); it != cmds.end()) {
      for (auto& c : it->second) batch.commands.push_back(std::move(c));
    }
    batch.commands.push_back(proto::QueryCmd{curr_tag_});
    sim_->counters().ctrl_commands_sent[static_cast<std::size_t>(id())] +=
        batch.commands.size();
    endpoint_.submit(peer, proto::Message{std::move(batch)});
  }
  std::set<NodeId> keep = peers;
  for (const auto& e : sim_->network().adjacency(id())) keep.insert(e.neighbor);
  const std::vector<NodeId> keep_sorted(keep.begin(), keep.end());
  endpoint_.retain_only(keep_sorted);
}

template <typename ReachFn>
void Controller::prepare_switch_commands(const proto::QueryReply& m,
                                         bool new_round,
                                         ReachFn&& prev_reachable,
                                         std::vector<proto::Command>& out) {
  // Owners that have rules (the per-controller meta rule counts, as in the
  // paper where it is installed by 'newRound' before any update).
  std::set<NodeId> owners;
  for (const auto& s : m.rule_owners) owners.insert(s.cid);

  // Line 15: M = managers with rules, reachable (on new rounds), plus self.
  std::set<NodeId> managers(m.managers.begin(), m.managers.end());
  std::set<NodeId> M;
  for (NodeId k : managers) {
    if (owners.count(k) == 0) continue;
    if (new_round && !prev_reachable(k)) continue;
    M.insert(k);
  }
  M.insert(id());

  // Lines 16-17: remove stale managers and stale rules. We evict a stale
  // controller *atomically* — both its manager entry and its rules in the
  // same batch, even when the snapshot showed only one half — so that the
  // switch never ends up with a half-deleted entry. (With the literal
  // one-half deletions of the pseudo-code, two controllers with fixed timer
  // phases can drive each other into a manager-without-rules /
  // rules-without-manager flip-flop forever; the commands are idempotent,
  // so the combined eviction is a faithful strengthening. See DESIGN.md.)
  if (config_.memory_adaptive) {
    std::set<NodeId> victims;
    for (NodeId k : managers) {
      if (M.count(k) == 0) victims.insert(k);
    }
    for (NodeId k : owners) {
      if (M.count(k) == 0 && k != id()) victims.insert(k);
    }
    for (NodeId k : victims) {
      REN_LOG(Debug,
              "t=%.3fs ctrl %d evicts %d @sw %d (mngr=%d owner=%d "
              "newround=%d reach=%d)",
              to_seconds(sim_->now()), id(), k, m.id, (int)managers.count(k),
              (int)owners.count(k), (int)new_round,
              (int)prev_reachable(k));
      out.push_back(proto::DelMngrCmd{k});
      out.push_back(proto::DelAllRulesCmd{k});
      note_deletion(k);
    }
  }
  out.push_back(proto::AddMngrCmd{id()});

  // Line 18: refresh own rules with the current round's tag.
  out.push_back(proto::UpdateRuleCmd{rules_for_switch(m.id), curr_tag_});
}

void Controller::note_deletion(NodeId victim) {
  ++stats_.deletions_sent;
  if (liveness_oracle_ && liveness_oracle_(victim)) {
    ++stats_.illegitimate_deletions;
  }
}

void Controller::rebuild_merged_rules(
    const flows::TopoView& refer_view,
    const std::map<NodeId, bool>& refer_transit) {
  if (current_flows_ == nullptr) return;
  const std::uint64_t fp = current_flows_->view_fingerprint;
  if (merged_fingerprint_ == fp && merged_revision_ == data_flow_revision_)
    return;
  merged_fingerprint_ = fp;
  merged_revision_ = data_flow_revision_;
  ++change_epoch_;
  merged_rules_.clear();
  if (data_flows_.empty()) return;  // rules_for_switch falls through

  // Compile each registered data flow against the same reference view and
  // merge per switch with the control rules.
  std::map<NodeId, proto::RuleList> merged;
  for (const auto& [sid, list] : current_flows_->per_switch) {
    merged[sid] = *list;
  }
  for (const auto& spec : data_flows_) {
    flows::DataFlow df = compiler_.compile_data_flow(
        refer_view, id(), spec.host_a, spec.attach_a, spec.host_b,
        spec.attach_b, refer_transit);
    for (const auto& [sid, list] : df.per_switch) {
      auto& dst = merged[sid];
      dst.insert(dst.end(), list->begin(), list->end());
    }
  }
  for (auto& [sid, list] : merged) {
    std::sort(list.begin(), list.end(), flows::rule_order);
    merged_rules_[sid] = std::make_shared<const proto::RuleList>(std::move(list));
  }
}

proto::RuleListPtr Controller::rules_for_switch(NodeId j) {
  if (!data_flows_.empty()) {
    auto it = merged_rules_.find(j);
    if (it != merged_rules_.end()) return it->second;
  }
  if (current_flows_ != nullptr) {
    auto it = current_flows_->per_switch.find(j);
    if (it != current_flows_->per_switch.end()) return it->second;
  }
  static const proto::RuleListPtr kEmpty =
      std::make_shared<const proto::RuleList>();
  return kEmpty;
}

void Controller::register_data_flow(const DataFlowSpec& spec) {
  data_flows_.push_back(spec);
  ++data_flow_revision_;
  ++change_epoch_;
}

// --- Message handling --------------------------------------------------------

void Controller::on_reply(proto::QueryReply reply) {
  // Lines 20-22: capacity check (C-reset) before the tag check.
  db_.make_room(reply.id);
  if (reply.tag_for_querier == curr_tag_) {
    ++stats_.replies_accepted;
    db_.store(std::move(reply));
  } else {
    ++stats_.replies_discarded_tag;
  }
}

void Controller::on_peer_batch(NodeId from, const proto::CommandBatch& batch) {
  // Line 23: controllers answer queries with their local neighborhood and
  // the echoed tag; all other commands are ignored.
  for (const auto& cmd : batch.commands) {
    if (const auto* q = std::get_if<proto::QueryCmd>(&cmd)) {
      proto::QueryReply reply;
      reply.id = id();
      reply.nc = detector_.live();
      reply.from_controller = true;
      reply.tag_for_querier = q->tag;
      // Byzantine interposition: a lying/equivocating controller forges the
      // advertised neighborhood or the per-querier round tag right here,
      // before the reply enters the transport.
      if (adversary_ != nullptr) adversary_->tamper_reply(from, reply);
      endpoint_.submit(from, proto::Message{std::move(reply)});
    }
  }
}

void Controller::route_frame(NodeId peer, proto::PayloadPtr frame,
                             std::uint32_t bytes) {
  // Byzantine interposition on the outbound frame path: a corrupting
  // adversary field-permutes the frame (deep copy; the shared original is
  // untouched), a babbler remembers it and may replay an older one first.
  if (adversary_ != nullptr) {
    if (proto::PayloadPtr forged = adversary_->corrupt_frame(*frame)) {
      frame = std::move(forged);
    }
    if (auto replay = adversary_->note_and_babble(peer, frame, bytes)) {
      emit_frame(replay->peer, std::move(replay->frame), replay->bytes);
    }
  }
  emit_frame(peer, std::move(frame), bytes);
}

void Controller::emit_frame(NodeId peer, proto::PayloadPtr frame,
                            std::uint32_t bytes) {
  net::Packet pkt = net::make_packet(id(), peer, std::move(frame), bytes);
  auto& counters = sim_->counters();
  counters.control_bytes_sent += pkt.bytes;
  counters.max_control_message_bytes =
      std::max<std::uint64_t>(counters.max_control_message_bytes, pkt.bytes);

  // 1. Adjacent peer: direct hand-over.
  if (sim_->network().link_operational(id(), peer)) {
    sim_->send(id(), peer, pkt);
    return;
  }
  // 2. First hops from the compiled flows (fast-failover order).
  if (current_flows_ != nullptr) {
    auto it = current_flows_->first_hops.find(peer);
    if (it != current_flows_->first_hops.end()) {
      for (NodeId h : it->second) {
        if (sim_->network().link_operational(id(), h)) {
          sim_->send(id(), h, pkt);
          return;
        }
      }
    }
  }
  // 3. Reverse-path hint.
  auto it = last_port_.find(peer);
  if (it != last_port_.end() &&
      sim_->network().link_operational(id(), it->second)) {
    sim_->send(id(), it->second, pkt);
    return;
  }
  ++sim_->counters().drops_no_rule;
}

void Controller::on_packet(NodeId from_neighbor, const net::Packet& packet) {
  if (packet.dst != id()) {
    // Controllers never relay traffic (paper: relay nodes are switches).
    ++sim_->counters().drops_no_rule;
    return;
  }
  if (const auto* frame = std::get_if<proto::Frame>(&*packet.payload)) {
    last_port_[packet.src] = from_neighbor;
    endpoint_.on_frame(packet.src, *frame);
  } else if (const auto* probe = std::get_if<proto::Probe>(&*packet.payload)) {
    sim_->send(id(), from_neighbor,
               net::make_packet(id(), from_neighbor,
                                proto::Payload{proto::ProbeReply{probe->round}}));
  } else if (std::get_if<proto::ProbeReply>(&*packet.payload) != nullptr) {
    detector_.on_probe_reply(from_neighbor);
  }
}

void Controller::corrupt_state(Rng& rng, NodeId node_space) {
  db_.corrupt(rng, node_space);
  if (rng.chance(0.5)) tags_.corrupt(rng);
  if (rng.chance(0.5)) {
    curr_tag_ = proto::Tag{
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(node_space))),
        static_cast<std::uint32_t>(rng.next_below(proto::kTagDomain))};
  }
  if (rng.chance(0.5)) {
    prev_tag_ = proto::Tag{
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(node_space))),
        static_cast<std::uint32_t>(rng.next_below(proto::kTagDomain))};
  }
  endpoint_.corrupt(rng);
  detector_.corrupt(rng);
  if (rng.chance(0.5)) current_flows_.reset();
  if (rng.chance(0.5)) last_port_.clear();
  merged_fingerprint_ = 0;
  merged_revision_ = ~0ULL;
  views_.invalidate();    // direct tampering bypasses the revision/epoch keys
  planner_.invalidate();  // cached batches may describe tampered state
  ++change_epoch_;        // corruption may have touched anything
}

}  // namespace ren::core

// The Renaissance controller: a direct implementation of the paper's
// Algorithm 2 (with the Section 6.2 three-tag evaluation variant and the
// Section 8.1 non-memory-adaptive variant selectable by configuration).
//
// Every task_delay the controller runs one do-forever iteration:
//   1. prune replyDB of unreachable/stale replies              (line 8)
//   2. detect round completion; start a new round/tag          (lines 9-12)
//   3. pick the reference tag                                  (line 13)
//   4. per discovered switch: manager cleanup, stale-rule
//      deletion, rule refresh via myRules()                    (lines 14-18)
//   5. send aggregated command batches + queries to every
//      reachable node                                          (line 19)
// Query replies are handled on arrival with the C-reset capacity rule
// (lines 20-22), and queries from other controllers are answered with the
// local neighborhood (line 23).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/batch_planner.hpp"
#include "core/reply_db.hpp"
#include "core/view_cache.hpp"
#include "detect/theta_detector.hpp"
#include "flows/graph.hpp"
#include "flows/my_rules.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "tags/tag_generator.hpp"
#include "transport/endpoint.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::faults {
class Adversary;
}

namespace ren::core {

struct ControllerStats {
  std::uint64_t iterations = 0;
  std::uint64_t rounds_started = 0;
  std::uint64_t deletions_sent = 0;  ///< delMngr + delAllRules commands
  std::uint64_t illegitimate_deletions = 0;  ///< deletions hitting live peers
  std::uint64_t replies_accepted = 0;
  std::uint64_t replies_discarded_tag = 0;
};

class Controller : public net::Node {
 public:
  struct Config {
    int kappa = 2;
    Time task_delay = msec(500);     ///< paper Section 6.3 default
    Time detect_interval = msec(100);
    int theta = 10;
    std::size_t max_replies = 1024;  ///< >= 2(N_C+N_S) per the paper
    bool memory_adaptive = true;     ///< false = Section 8.1 variant
    int rule_retention = 2;          ///< 3 = Section 6.2 variant
    /// One cached view construction per tick (false = rebuild the res/fusion
    /// views at every consumer, the pre-cache behavior; bench baseline).
    bool cache_views = true;
    /// Differential-test mode: shadow every cached view with a from-scratch
    /// build and throw std::logic_error on divergence (slow; tests/CI only).
    bool paranoid_views = false;
    /// Plan per-peer command batches once per input-state change and share
    /// the immutable payloads through the transport (false = rebuild every
    /// CommandBatch from scratch each tick, the seed behavior; bench
    /// baseline).
    bool plan_batches = true;
    /// Differential-test mode: shadow every planned batch with a
    /// from-scratch build and throw std::logic_error unless the wire
    /// encodings are byte-equal (slow; tests/CI only).
    bool paranoid_batches = false;
  };

  Controller(NodeId id, Config config);

  void start() override;
  void on_packet(NodeId from_neighbor, const net::Packet& packet) override;

  // --- Data-plane flow provisioning (Section 6.4.3 experiments) ----------
  struct DataFlowSpec {
    NodeId host_a = kNoNode, attach_a = kNoNode;
    NodeId host_b = kNoNode, attach_b = kNoNode;
  };
  /// Register a host<->host flow that this controller keeps installed (and
  /// re-routes after topology changes) alongside its control-plane rules.
  void register_data_flow(const DataFlowSpec& spec);

  [[nodiscard]] const std::vector<DataFlowSpec>& data_flows() const {
    return data_flows_;
  }

  /// Freeze/unfreeze the do-forever loop (used by the "no recovery"
  /// throughput experiment of Fig. 16).
  void set_frozen(bool frozen) { frozen_ = frozen; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  // --- Introspection (legitimacy monitor, tests, benches) -----------------
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t c_resets() const { return db_.c_resets(); }
  [[nodiscard]] proto::Tag curr_tag() const { return curr_tag_; }
  [[nodiscard]] proto::Tag prev_tag() const { return prev_tag_; }
  [[nodiscard]] const ReplyDb& reply_db() const { return db_; }
  /// The fused topology view G(fusion) as of the last iteration.
  [[nodiscard]] const flows::TopoView& fused_view() const {
    return fusion_view_;
  }
  /// The flows compiled in the last iteration (null before the first).
  [[nodiscard]] flows::CompiledFlowsPtr current_flows() const {
    return current_flows_;
  }
  [[nodiscard]] const detect::ThetaDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] const transport::Endpoint& endpoint() const { return endpoint_; }
  /// The per-tick view cache (hit/miss/rotation counters for tests/benches).
  [[nodiscard]] const ViewCache& view_cache() const { return views_; }
  /// The line-19 batch planner (reuse/rotation counters for tests/benches).
  [[nodiscard]] const BatchPlanner& batch_planner() const { return planner_; }

  /// One do-forever body (Algorithm 2, lines 8-19) without the timer
  /// rescheduling or the frozen gate (tests).
  void run_iteration();

  /// Bench hook: called with `true` right before and `false` right after
  /// every *scheduled* do-forever body. Lets bench_controller_hotpath time
  /// the real in-situ iterations instead of injecting extra ones (an extra
  /// body advances round tags and would perturb the protocol under test).
  void set_iteration_probe(std::function<void(bool begin)> probe) {
    iteration_probe_ = std::move(probe);
  }

  /// Bench hook bracketing the line-19 fan-out (batch assembly + transport
  /// submit + session pruning) inside a scheduled iteration; bench_fanout
  /// times the planned pipeline against Config::plan_batches = false.
  void set_fanout_probe(std::function<void(bool begin)> probe) {
    fanout_probe_ = std::move(probe);
  }

  /// Monitor-relevant change epoch: bumps when the fused view, the compiled
  /// flows, the merged rules or the registered data flows change. Steady
  /// iterations that re-derive identical state leave it untouched, which is
  /// what lets the legitimacy monitor skip re-validating this controller.
  [[nodiscard]] std::uint64_t change_epoch() const { return change_epoch_; }
  /// Bumped per register_data_flow (part of the monitor's reference key).
  [[nodiscard]] std::uint64_t data_flow_revision() const {
    return data_flow_revision_;
  }

  /// Install a truth oracle used only for *accounting* illegitimate
  /// deletions (Theorem 1 experiments); never feeds the algorithm.
  void set_liveness_oracle(std::function<bool(NodeId)> is_live_controller) {
    liveness_oracle_ = std::move(is_live_controller);
  }

  /// Transient-fault hook: corrupt replyDB, tags, transport, detector and
  /// compiled state (tests / self-stabilization experiments).
  void corrupt_state(Rng& rng, NodeId node_space);

  /// Attach/detach a Byzantine adversary (faults/adversary.hpp; not owned,
  /// nullptr = benign). Interposes on outbound query replies and frames.
  /// Harness/barrier context only.
  void set_adversary(faults::Adversary* a) { adversary_ = a; }
  [[nodiscard]] faults::Adversary* adversary() const { return adversary_; }

 private:
  void iterate();  // run_iteration() + endpoint tick + reschedule
  void detect_tick();
  /// The seed's do-forever body, preserved verbatim as the measured
  /// pre-cache baseline (Config::cache_views = false): every view rebuilt
  /// at every consumer, std::set-seeded BFS, linear membership scans.
  void run_iteration_legacy();

  /// Synchronize the view cache with the current (replyDB, tags, detector).
  void refresh_views();
  /// Bound the transport's session state to `peers` plus the physically
  /// attached neighbors (sorted/deduplicated into keep_scratch_).
  void prune_transport_sessions(const std::vector<NodeId>& peers);
  void prune_reply_db();
  [[nodiscard]] bool round_complete() const;

  /// Commands for switch `j` given its reply in the reference view
  /// (lines 14-18). Appends into `out`. `prev_reachable(k)` answers
  /// reachability of k from this controller in G(res(prevTag)) — O(1)
  /// against the cached view, a per-call BFS on the legacy baseline path.
  template <typename ReachFn>
  void prepare_switch_commands(const proto::QueryReply& m, bool new_round,
                               ReachFn&& prev_reachable,
                               std::vector<proto::Command>& out);
  [[nodiscard]] proto::RuleListPtr rules_for_switch(NodeId j);
  void rebuild_merged_rules(const flows::TopoView& refer_view,
                            const std::map<NodeId, bool>& refer_transit);
  void note_deletion(NodeId victim);

  void on_reply(proto::QueryReply reply);
  void on_peer_batch(NodeId from, const proto::CommandBatch& batch);
  /// Adversary interposition (corrupt/babble) ahead of emit_frame's routing.
  void route_frame(NodeId peer, proto::PayloadPtr frame, std::uint32_t bytes);
  void emit_frame(NodeId peer, proto::PayloadPtr frame, std::uint32_t bytes);

  Config config_;
  tags::TagGenerator tags_;
  proto::Tag curr_tag_;
  proto::Tag prev_tag_;
  ReplyDb db_;
  detect::ThetaDetector detector_;
  transport::Endpoint endpoint_;
  flows::RuleCompiler compiler_;
  ViewCache views_;
  BatchPlanner planner_;

  // Reusable command fan-out scratch (line 19): the sorted peer list and one
  // command vector per peer, plus a spill slot for replied switches that are
  // not fusion-reachable this tick. Cleared, never shrunk, between ticks.
  // (Only the plan_batches=false baseline builds commands here; the planned
  // path keeps its own scratch inside BatchPlanner.)
  std::vector<NodeId> peers_scratch_;
  std::vector<std::vector<proto::Command>> cmd_scratch_;
  std::vector<proto::Command> cmd_spill_;
  std::vector<NodeId> keep_scratch_;  ///< sorted retain_only feed

  flows::CompiledFlowsPtr current_flows_;    ///< last compiled control flows
  flows::TopoView fusion_view_;              ///< cached G(fusion)
  std::map<NodeId, NodeId> last_port_;       ///< peer -> most recent in-port

  std::vector<DataFlowSpec> data_flows_;
  std::uint64_t data_flow_revision_ = 0;
  // Merged (control + data) per-switch rules for the current view.
  std::map<NodeId, proto::RuleListPtr> merged_rules_;
  std::uint64_t merged_fingerprint_ = 0;
  std::uint64_t merged_revision_ = ~0ULL;

  bool frozen_ = false;
  faults::Adversary* adversary_ = nullptr;
  std::uint64_t change_epoch_ = 0;
  ControllerStats stats_;
  std::function<bool(NodeId)> liveness_oracle_;
  std::function<void(bool)> iteration_probe_;
  std::function<void(bool)> fanout_probe_;
};

}  // namespace ren::core

#include "core/legitimacy.hpp"

#include <algorithm>

#include "flows/resilient_paths.hpp"

namespace ren::core {

LegitimacyMonitor::LegitimacyMonitor(
    net::Simulator& sim, std::vector<Controller*> controllers,
    std::vector<switchd::AbstractSwitch*> switches, Config config)
    : sim_(sim),
      controllers_(std::move(controllers)),
      switches_(std::move(switches)),
      config_(config),
      compiler_(flows::RuleCompiler::Config{config.kappa}) {}

std::vector<Controller*> LegitimacyMonitor::live_controllers() const {
  std::vector<Controller*> out;
  for (Controller* c : controllers_) {
    if (c->alive()) out.push_back(c);
  }
  return out;
}

std::vector<switchd::AbstractSwitch*> LegitimacyMonitor::live_switches() const {
  std::vector<switchd::AbstractSwitch*> out;
  for (auto* s : switches_) {
    if (s->alive()) out.push_back(s);
  }
  return out;
}

flows::TopoView LegitimacyMonitor::true_view() const {
  flows::TopoView truth;
  std::vector<NodeId> nodes;
  for (const auto* c : controllers_) {
    if (c->alive()) nodes.push_back(c->id());
  }
  for (const auto* s : switches_) {
    if (s->alive()) nodes.push_back(s->id());
  }
  std::sort(nodes.begin(), nodes.end());
  for (NodeId n : nodes) truth.add_node(n);
  const net::Network& net = sim_.network();
  for (NodeId n : nodes) {
    for (const auto& e : net.adjacency(n)) {
      if (net.link(e.link).state() == net::LinkState::PermanentDown) continue;
      if (!std::binary_search(nodes.begin(), nodes.end(), e.neighbor)) continue;
      truth.add_edge(n, e.neighbor);
    }
  }
  return truth;
}

LegitimacyMonitor::Status LegitimacyMonitor::check() {
  const auto live = live_controllers();
  if (live.empty()) return {false, "no live controller"};
  const flows::TopoView truth = true_view();

  if (Status s = check_views(truth); !s.legitimate) return s;
  if (Status s = check_managers(); !s.legitimate) return s;
  if (config_.check_rule_content) {
    if (Status s = check_rules(truth); !s.legitimate) return s;
  }
  if (config_.check_rule_walk) {
    if (Status s = check_walks(truth); !s.legitimate) return s;
  }
  return {true, ""};
}

LegitimacyMonitor::Status LegitimacyMonitor::check_views(
    const flows::TopoView& truth) {
  for (Controller* c : live_controllers()) {
    if (!(c->fused_view() == truth)) {
      return {false,
              "controller " + std::to_string(c->id()) + " view != Gc"};
    }
  }
  return {true, ""};
}

LegitimacyMonitor::Status LegitimacyMonitor::check_managers() {
  std::vector<NodeId> expected;
  for (Controller* c : live_controllers()) expected.push_back(c->id());
  std::sort(expected.begin(), expected.end());
  for (auto* s : live_switches()) {
    std::vector<NodeId> got = s->managers();
    std::sort(got.begin(), got.end());
    if (got != expected) {
      return {false, "switch " + std::to_string(s->id()) +
                         " managers != live controllers"};
    }
  }
  return {true, ""};
}

LegitimacyMonitor::Status LegitimacyMonitor::check_rules(
    const flows::TopoView& truth) {
  // Reference compilation per live controller, merged with its data flows
  // exactly like Controller::rebuild_merged_rules does.
  std::map<NodeId, bool> transit;
  for (const auto* c : controllers_) {
    if (c->alive()) transit[c->id()] = false;
  }
  for (const auto* s : switches_) {
    if (s->alive()) transit[s->id()] = true;
  }

  std::vector<NodeId> live_ids;
  for (Controller* c : live_controllers()) live_ids.push_back(c->id());
  std::sort(live_ids.begin(), live_ids.end());

  for (Controller* c : live_controllers()) {
    const auto expected = compiler_.compile_cached(truth, c->id(), transit);
    // Merge registered data flows (if any).
    std::map<NodeId, proto::RuleListPtr> merged;
    if (!c->data_flows().empty()) {
      std::map<NodeId, proto::RuleList> building;
      for (const auto& [sid, list] : expected->per_switch) building[sid] = *list;
      for (const auto& spec : c->data_flows()) {
        flows::DataFlow df = compiler_.compile_data_flow(
            truth, c->id(), spec.host_a, spec.attach_a, spec.host_b,
            spec.attach_b, transit);
        for (const auto& [sid, list] : df.per_switch) {
          auto& dst = building[sid];
          dst.insert(dst.end(), list->begin(), list->end());
        }
      }
      for (auto& [sid, list] : building) {
        std::sort(list.begin(), list.end(), flows::rule_order);
        merged[sid] = std::make_shared<const proto::RuleList>(std::move(list));
      }
    }
    const auto& per_switch = c->data_flows().empty() ? expected->per_switch : merged;

    for (auto* s : live_switches()) {
      // Rule owners must be exactly the live controllers.
      std::vector<NodeId> owners = s->rule_table().owners();
      std::sort(owners.begin(), owners.end());
      if (owners != live_ids) {
        return {false, "switch " + std::to_string(s->id()) +
                           " rule owners != live controllers"};
      }
      const proto::RuleListPtr actual = s->rule_table().newest_rules_of(c->id());
      auto want_it = per_switch.find(s->id());
      const proto::RuleListPtr want =
          want_it == per_switch.end() ? nullptr : want_it->second;
      if (actual == nullptr || want == nullptr) {
        if ((actual == nullptr || actual->empty()) &&
            (want == nullptr || want->empty()))
          continue;
        return {false, "switch " + std::to_string(s->id()) + " missing rules of " +
                           std::to_string(c->id())};
      }
      const auto key = std::make_pair(s->id(), c->id());
      auto memo = verified_.find(key);
      if (memo != verified_.end() && memo->second == actual.get()) continue;
      if (*actual != *want) {
        return {false, "switch " + std::to_string(s->id()) +
                           " stale rules of " + std::to_string(c->id())};
      }
      verified_[key] = actual.get();
    }
  }
  return {true, ""};
}

namespace {

std::uint64_t link_state_hash(const net::Simulator& sim) {
  std::uint64_t h = 1469598103934665603ULL;
  const net::Network& net = sim.network();
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    h ^= static_cast<std::uint64_t>(net.link(static_cast<int>(i)).state()) + i;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

LegitimacyMonitor::Status LegitimacyMonitor::check_walks(
    const flows::TopoView& truth) {
  const std::uint64_t fp = truth.fingerprint();
  const std::uint64_t ls = link_state_hash(sim_);
  if (walk_ok_valid_ && walk_ok_fingerprint_ == fp && walk_ok_linkstate_ == ls) {
    return {true, ""};
  }

  std::map<NodeId, switchd::AbstractSwitch*> switch_by_id;
  for (auto* s : live_switches()) switch_by_id[s->id()] = s;

  auto next_hop = [&](NodeId at, NodeId src,
                      NodeId dst) -> std::optional<NodeId> {
    auto it = switch_by_id.find(at);
    if (it == switch_by_id.end()) return std::nullopt;  // controller/host relay
    for (const auto& cand : it->second->rule_table().candidates(src, dst)) {
      if (sim_.network().link_operational(at, cand.fwd)) return cand.fwd;
    }
    if (sim_.network().link_operational(at, dst)) return dst;  // adjacency
    return std::nullopt;
  };
  auto link_up = [&](NodeId a, NodeId b) {
    return sim_.network().link_operational(a, b);
  };
  const int ttl = 4 * static_cast<int>(truth.node_count()) + 8;

  for (Controller* c : live_controllers()) {
    const auto flows_ptr = c->current_flows();
    if (flows_ptr == nullptr) {
      return {false, "controller " + std::to_string(c->id()) + " has no flows"};
    }
    for (const auto& [node, _] : truth.adj()) {
      if (node == c->id()) continue;
      // Forward walk c -> node.
      std::vector<NodeId> first;
      if (sim_.network().link_operational(c->id(), node)) {
        first = {node};
      } else if (auto it = flows_ptr->first_hops.find(node);
                 it != flows_ptr->first_hops.end()) {
        first = it->second;
      }
      auto fwd = flows::rule_walk(c->id(), node, first, next_hop, link_up, ttl);
      if (!fwd.delivered) {
        return {false, "no path " + std::to_string(c->id()) + " -> " +
                           std::to_string(node)};
      }
      // Reverse walk node -> c.
      std::vector<NodeId> rfirst;
      if (sim_.network().link_operational(node, c->id())) {
        rfirst = {c->id()};
      } else if (switch_by_id.count(node) != 0) {
        if (auto nh = next_hop(node, node, c->id())) rfirst = {*nh};
      } else {
        // Another controller: use its own compiled first hops.
        for (Controller* o : live_controllers()) {
          if (o->id() != node) continue;
          const auto of = o->current_flows();
          if (of != nullptr) {
            if (auto it = of->first_hops.find(c->id());
                it != of->first_hops.end())
              rfirst = it->second;
          }
        }
      }
      auto rev = flows::rule_walk(node, c->id(), rfirst, next_hop, link_up, ttl);
      if (!rev.delivered) {
        return {false, "no path " + std::to_string(node) + " -> " +
                           std::to_string(c->id())};
      }
    }
  }
  walk_ok_valid_ = true;
  walk_ok_fingerprint_ = fp;
  walk_ok_linkstate_ = ls;
  return {true, ""};
}

}  // namespace ren::core

#include "core/legitimacy.hpp"

#include <algorithm>
#include <stdexcept>

#include "flows/resilient_paths.hpp"

namespace ren::core {

LegitimacyMonitor::LegitimacyMonitor(
    net::Simulator& sim, std::vector<Controller*> controllers,
    std::vector<switchd::AbstractSwitch*> switches, Config config)
    : sim_(sim),
      controllers_(std::move(controllers)),
      switches_(std::move(switches)),
      config_(config),
      compiler_(flows::RuleCompiler::Config{config.kappa}) {}

std::vector<Controller*> LegitimacyMonitor::live_controllers() const {
  std::vector<Controller*> out;
  for (Controller* c : controllers_) {
    if (c->alive()) out.push_back(c);
  }
  return out;
}

std::vector<switchd::AbstractSwitch*> LegitimacyMonitor::live_switches() const {
  std::vector<switchd::AbstractSwitch*> out;
  for (auto* s : switches_) {
    if (s->alive()) out.push_back(s);
  }
  return out;
}

flows::TopoView LegitimacyMonitor::build_truth() const {
  flows::TopoView truth;
  std::vector<NodeId> nodes;
  for (const auto* c : controllers_) {
    if (c->alive()) nodes.push_back(c->id());
  }
  for (const auto* s : switches_) {
    if (s->alive()) nodes.push_back(s->id());
  }
  std::sort(nodes.begin(), nodes.end());
  for (NodeId n : nodes) truth.add_node(n);
  const net::Network& net = sim_.network();
  for (NodeId n : nodes) {
    for (const auto& e : net.adjacency(n)) {
      if (net.link(e.link).state() == net::LinkState::PermanentDown) continue;
      if (!std::binary_search(nodes.begin(), nodes.end(), e.neighbor)) continue;
      truth.add_edge(n, e.neighbor);
    }
  }
  return truth;
}

const flows::TopoView& LegitimacyMonitor::true_view() const {
  const std::uint64_t topo = sim_.network().epoch();
  if (!truth_valid_ || truth_epoch_ != topo) {
    truth_ = build_truth();
    truth_epoch_ = topo;
    truth_valid_ = true;
    ++stats_.truth_rebuilds;
  }
  return truth_;
}

int LegitimacyMonitor::achievable_kappa() {
  const std::uint64_t topo = sim_.network().epoch();
  if (kappa_valid_ && kappa_epoch_ == topo) return achievable_kappa_;
  // Compact the true fabric into an index-dense Graph (node ids go sparse
  // once nodes die) and hand it to the oracle — whose fingerprint check
  // keeps all certificate state when e.g. only liveness flapped back.
  const flows::TopoView& truth = true_view();
  std::map<NodeId, int> index;  // std::map: sorted, deterministic indices
  for (const auto& [n, nbrs] : truth.adj()) {
    (void)nbrs;
    index.emplace(n, static_cast<int>(index.size()));
  }
  flows::Graph g(static_cast<int>(index.size()));
  for (const auto& [n, nbrs] : truth.adj()) {
    const int u = index.at(n);
    for (NodeId v : nbrs) g.add_edge(u, index.at(v));
  }
  oracle_.assign(g);
  achievable_kappa_ = std::max(0, oracle_.edge_connectivity() - 1);
  kappa_epoch_ = topo;
  kappa_valid_ = true;
  return achievable_kappa_;
}

std::uint64_t LegitimacyMonitor::stack_epoch() const {
  // Sum of monotonic counters: strictly increases whenever any one bumps.
  std::uint64_t e = sim_.network().epoch();
  for (const Controller* c : controllers_) e += c->change_epoch();
  for (const auto* s : switches_) e += s->change_epoch();
  return e;
}

std::uint64_t LegitimacyMonitor::walk_epoch() const {
  // Walks read topology, controller flows and rule content — but never the
  // manager sets, so manager churn must not invalidate the walk memo.
  std::uint64_t e = sim_.network().epoch();
  for (const Controller* c : controllers_) e += c->change_epoch();
  for (const auto* s : switches_) e += s->rule_table().epoch();
  return e;
}

std::uint64_t LegitimacyMonitor::live_signature() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Controller* c : controllers_) {
    if (!c->alive()) continue;
    h ^= static_cast<std::uint64_t>(c->id()) + 1;
    h *= 1099511628211ULL;
  }
  return h;
}

LegitimacyMonitor::Status LegitimacyMonitor::check() {
  ++stats_.checks;
  Status st;
  if (!config_.incremental) {
    ++stats_.full_evaluations;
    st = check_full();
  } else if (const std::uint64_t epoch = stack_epoch();
             verdict_valid_ && epoch == verdict_epoch_) {
    ++stats_.short_circuits;
    st = verdict_;
  } else {
    ++stats_.full_evaluations;
    st = evaluate(true_view(), /*fresh=*/false);
    verdict_ = st;
    verdict_epoch_ = epoch;
    verdict_valid_ = true;
  }
  if (config_.paranoid) {
    ++stats_.paranoid_shadows;
    const Status full = check_full();
    if (full.legitimate != st.legitimate) {
      throw std::logic_error(
          "legitimacy divergence: incremental says " +
          std::string(st.legitimate ? "legitimate" : ("\"" + st.reason + "\"")) +
          ", full check says " +
          std::string(full.legitimate ? "legitimate"
                                      : ("\"" + full.reason + "\"")));
    }
  }
  return st;
}

LegitimacyMonitor::Status LegitimacyMonitor::check_full() {
  const flows::TopoView truth = build_truth();
  ++stats_.truth_rebuilds;
  return evaluate(truth, /*fresh=*/true);
}

LegitimacyMonitor::Status LegitimacyMonitor::evaluate(
    const flows::TopoView& truth, bool fresh) {
  const auto live = live_controllers();
  if (live.empty()) return {false, "no live controller"};

  if (Status s = check_views(truth, fresh); !s.legitimate) return s;
  if (Status s = check_managers(fresh); !s.legitimate) return s;
  if (config_.check_rule_content) {
    if (Status s = check_rules(truth, fresh); !s.legitimate) return s;
  }
  if (config_.check_rule_walk) {
    if (Status s = check_walks(truth, fresh); !s.legitimate) return s;
  }
  return {true, ""};
}

LegitimacyMonitor::Status LegitimacyMonitor::check_views(
    const flows::TopoView& truth, bool fresh) {
  const std::uint64_t topo = sim_.network().epoch();
  for (Controller* c : live_controllers()) {
    if (!fresh) {
      const auto memo = views_ok_.find(c->id());
      if (memo != views_ok_.end() &&
          memo->second == std::make_pair(c->change_epoch(), topo))
        continue;
    }
    ++stats_.view_compares;
    if (!(c->fused_view() == truth)) {
      return {false, "controller " + std::to_string(c->id()) + " view != Gc"};
    }
    if (!fresh) views_ok_[c->id()] = {c->change_epoch(), topo};
  }
  return {true, ""};
}

LegitimacyMonitor::Status LegitimacyMonitor::check_managers(bool fresh) {
  std::vector<NodeId> expected;
  for (Controller* c : live_controllers()) expected.push_back(c->id());
  std::sort(expected.begin(), expected.end());
  const std::uint64_t live_sig = live_signature();
  for (auto* s : live_switches()) {
    if (!fresh) {
      const auto memo = managers_ok_.find(s->id());
      if (memo != managers_ok_.end() &&
          memo->second == std::make_pair(s->manager_epoch(), live_sig))
        continue;
    }
    ++stats_.manager_checks;
    std::vector<NodeId> got = s->managers();
    std::sort(got.begin(), got.end());
    if (got != expected) {
      return {false, "switch " + std::to_string(s->id()) +
                         " managers != live controllers"};
    }
    if (!fresh) managers_ok_[s->id()] = {s->manager_epoch(), live_sig};
  }
  return {true, ""};
}

const std::map<NodeId, proto::RuleListPtr>& LegitimacyMonitor::reference_rules(
    Controller* c, const flows::TopoView& truth,
    const std::map<NodeId, bool>& transit, bool fresh) {
  const std::uint64_t fp = truth.fingerprint();
  ReferenceCache& rc = reference_[c->id()];
  if (!fresh && rc.truth_fingerprint == fp &&
      rc.data_flow_revision == c->data_flow_revision() && !rc.per_switch.empty()) {
    return rc.per_switch;
  }
  ++stats_.reference_compiles;
  // Reference compilation, merged with the controller's data flows exactly
  // like Controller::rebuild_merged_rules does.
  const auto expected = compiler_.compile_cached(truth, c->id(), transit);
  std::map<NodeId, proto::RuleListPtr> out;
  if (c->data_flows().empty()) {
    out = expected->per_switch;
  } else {
    std::map<NodeId, proto::RuleList> building;
    for (const auto& [sid, list] : expected->per_switch) building[sid] = *list;
    for (const auto& spec : c->data_flows()) {
      flows::DataFlow df = compiler_.compile_data_flow(
          truth, c->id(), spec.host_a, spec.attach_a, spec.host_b,
          spec.attach_b, transit);
      for (const auto& [sid, list] : df.per_switch) {
        auto& dst = building[sid];
        dst.insert(dst.end(), list->begin(), list->end());
      }
    }
    for (auto& [sid, list] : building) {
      std::sort(list.begin(), list.end(), flows::rule_order);
      out[sid] = std::make_shared<const proto::RuleList>(std::move(list));
    }
  }
  rc.truth_fingerprint = fp;
  rc.data_flow_revision = c->data_flow_revision();
  rc.per_switch = std::move(out);
  return rc.per_switch;
}

LegitimacyMonitor::Status LegitimacyMonitor::check_rules(
    const flows::TopoView& truth, bool fresh) {
  std::map<NodeId, bool> transit;
  for (const auto* c : controllers_) {
    if (c->alive()) transit[c->id()] = false;
  }
  for (const auto* s : switches_) {
    if (s->alive()) transit[s->id()] = true;
  }

  std::vector<NodeId> live_ids;
  for (Controller* c : live_controllers()) live_ids.push_back(c->id());
  std::sort(live_ids.begin(), live_ids.end());
  const std::uint64_t live_sig = live_signature();

  // Rule owners must be exactly the live controllers, at every live switch.
  for (auto* s : live_switches()) {
    if (!fresh) {
      const auto memo = owners_ok_.find(s->id());
      if (memo != owners_ok_.end() &&
          memo->second == std::make_pair(s->rule_table().epoch(), live_sig))
        continue;
    }
    std::vector<NodeId> owners = s->rule_table().owners();
    std::sort(owners.begin(), owners.end());
    if (owners != live_ids) {
      return {false, "switch " + std::to_string(s->id()) +
                         " rule owners != live controllers"};
    }
    if (!fresh) owners_ok_[s->id()] = {s->rule_table().epoch(), live_sig};
  }

  for (Controller* c : live_controllers()) {
    const auto& per_switch = reference_rules(c, truth, transit, fresh);
    for (auto* s : live_switches()) {
      const proto::RuleListPtr actual = s->rule_table().newest_rules_of(c->id());
      auto want_it = per_switch.find(s->id());
      const proto::RuleListPtr want =
          want_it == per_switch.end() ? nullptr : want_it->second;
      if (actual == nullptr || want == nullptr) {
        if ((actual == nullptr || actual->empty()) &&
            (want == nullptr || want->empty()))
          continue;
        return {false, "switch " + std::to_string(s->id()) + " missing rules of " +
                           std::to_string(c->id())};
      }
      const auto key = std::make_pair(s->id(), c->id());
      if (!fresh) {
        const auto memo = verified_.find(key);
        if (memo != verified_.end() && memo->second.first == actual &&
            memo->second.second == want)
          continue;
      }
      ++stats_.rule_compares;
      if (*actual != *want) {
        return {false, "switch " + std::to_string(s->id()) +
                           " stale rules of " + std::to_string(c->id())};
      }
      if (!fresh) verified_[key] = {actual, want};
    }
  }
  return {true, ""};
}

LegitimacyMonitor::Status LegitimacyMonitor::check_walks(
    const flows::TopoView& truth, bool fresh) {
  std::uint64_t we = 0;
  if (!fresh) {
    we = walk_epoch();
    if (walk_ok_valid_ && walk_ok_epoch_ == we) return {true, ""};
  }
  ++stats_.walk_sweeps;

  std::map<NodeId, switchd::AbstractSwitch*> switch_by_id;
  for (auto* s : live_switches()) switch_by_id[s->id()] = s;

  auto next_hop = [&](NodeId at, NodeId src,
                      NodeId dst) -> std::optional<NodeId> {
    auto it = switch_by_id.find(at);
    if (it == switch_by_id.end()) return std::nullopt;  // controller/host relay
    for (const auto& cand : it->second->rule_table().candidates(src, dst)) {
      if (sim_.network().link_operational(at, cand.fwd)) return cand.fwd;
    }
    if (sim_.network().link_operational(at, dst)) return dst;  // adjacency
    return std::nullopt;
  };
  auto link_up = [&](NodeId a, NodeId b) {
    return sim_.network().link_operational(a, b);
  };
  const int ttl = 4 * static_cast<int>(truth.node_count()) + 8;

  for (Controller* c : live_controllers()) {
    const auto flows_ptr = c->current_flows();
    if (flows_ptr == nullptr) {
      return {false, "controller " + std::to_string(c->id()) + " has no flows"};
    }
    for (const auto& [node, _] : truth.adj()) {
      if (node == c->id()) continue;
      // Forward walk c -> node.
      std::vector<NodeId> first;
      if (sim_.network().link_operational(c->id(), node)) {
        first = {node};
      } else if (auto it = flows_ptr->first_hops.find(node);
                 it != flows_ptr->first_hops.end()) {
        first = it->second;
      }
      auto fwd = flows::rule_walk(c->id(), node, first, next_hop, link_up, ttl);
      if (!fwd.delivered) {
        return {false, "no path " + std::to_string(c->id()) + " -> " +
                           std::to_string(node)};
      }
      // Reverse walk node -> c.
      std::vector<NodeId> rfirst;
      if (sim_.network().link_operational(node, c->id())) {
        rfirst = {c->id()};
      } else if (switch_by_id.count(node) != 0) {
        if (auto nh = next_hop(node, node, c->id())) rfirst = {*nh};
      } else {
        // Another controller: use its own compiled first hops.
        for (Controller* o : live_controllers()) {
          if (o->id() != node) continue;
          const auto of = o->current_flows();
          if (of != nullptr) {
            if (auto it = of->first_hops.find(c->id());
                it != of->first_hops.end())
              rfirst = it->second;
          }
        }
      }
      auto rev = flows::rule_walk(node, c->id(), rfirst, next_hop, link_up, ttl);
      if (!rev.delivered) {
        return {false, "no path " + std::to_string(node) + " -> " +
                           std::to_string(c->id())};
      }
    }
  }
  if (!fresh) {
    walk_ok_valid_ = true;
    walk_ok_epoch_ = we;
  }
  return {true, ""};
}

}  // namespace ren::core

// Legitimate-state checker (paper Definition 1).
//
// A system state is legitimate when, for every live controller p_i and node
// p_k:
//  1. p_i's accumulated topology view matches the real connected topology Gc
//     (replyDB correctness),
//  2. every switch is managed by exactly the live controllers,
//  3. the installed rules encode the kappa-fault-resilient flows that
//     myRules() derives from the real topology (checked as content equality
//     against a reference compilation, plus an actual rule-walk showing that
//     every controller can exchange packets with every node),
//  4. (transport/round-sync legitimacy is implied by 1-3 observably: rounds
//     keep completing, which the harness exercises by running on).
//
// The monitor is a *measurement* device: it reads global simulator truth
// that no protocol participant has access to, and is used by the harness to
// timestamp convergence (bootstrap & recovery experiments).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "flows/graph.hpp"
#include "flows/my_rules.hpp"
#include "net/simulator.hpp"
#include "switchd/abstract_switch.hpp"

namespace ren::core {

class LegitimacyMonitor {
 public:
  struct Config {
    int kappa = 2;
    bool check_rule_content = true;
    bool check_rule_walk = true;
  };

  LegitimacyMonitor(net::Simulator& sim, std::vector<Controller*> controllers,
                    std::vector<switchd::AbstractSwitch*> switches,
                    Config config);

  struct Status {
    bool legitimate = false;
    std::string reason;  ///< first failed condition, empty when legitimate
  };

  /// Evaluate Definition 1 against the current global state.
  [[nodiscard]] Status check();

  /// The real control-plane topology (live controllers + switches, links in
  /// Gc). Hosts are not part of the control plane.
  [[nodiscard]] flows::TopoView true_view() const;

  [[nodiscard]] std::vector<Controller*> live_controllers() const;
  [[nodiscard]] std::vector<switchd::AbstractSwitch*> live_switches() const;

 private:
  [[nodiscard]] Status check_views(const flows::TopoView& truth);
  [[nodiscard]] Status check_managers();
  [[nodiscard]] Status check_rules(const flows::TopoView& truth);
  [[nodiscard]] Status check_walks(const flows::TopoView& truth);

  net::Simulator& sim_;
  std::vector<Controller*> controllers_;
  std::vector<switchd::AbstractSwitch*> switches_;
  Config config_;
  flows::RuleCompiler compiler_;

  // (switch, cid) -> last rule-list pointer verified as correct; skips
  // re-verification of unchanged immutable lists.
  std::map<std::pair<NodeId, NodeId>, const void*> verified_;
  // Rule-walk memo: walks are deterministic given topology + link states.
  std::uint64_t walk_ok_fingerprint_ = 0;
  std::uint64_t walk_ok_linkstate_ = 0;
  bool walk_ok_valid_ = false;
};

}  // namespace ren::core

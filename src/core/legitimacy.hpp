// Legitimate-state checker (paper Definition 1).
//
// A system state is legitimate when, for every live controller p_i and node
// p_k:
//  1. p_i's accumulated topology view matches the real connected topology Gc
//     (replyDB correctness),
//  2. every switch is managed by exactly the live controllers,
//  3. the installed rules encode the kappa-fault-resilient flows that
//     myRules() derives from the real topology (checked as content equality
//     against a reference compilation, plus an actual rule-walk showing that
//     every controller can exchange packets with every node),
//  4. (transport/round-sync legitimacy is implied by 1-3 observably: rounds
//     keep completing, which the harness exercises by running on).
//
// The monitor is a *measurement* device: it reads global simulator truth
// that no protocol participant has access to, and is used by the harness to
// timestamp convergence (bootstrap & recovery experiments).
//
// Incremental checking: every layer of the stack carries a monotonic change
// epoch (net::Network for topology + liveness, core::Controller for its
// fused view / compiled flows, switchd for manager sets + rule content).
// The monitor sums them into stack_epoch(); an unchanged sum means nothing
// the verdict depends on has changed, so check() replays the cached verdict
// in O(controllers + switches) pointer reads. When something did change,
// per-item memos (per-controller view, per-switch managers/owners, per
// (switch, controller) rule list, cached ground truth and reference
// compilations) confine the work to the changed slice. Config::paranoid
// shadows every incremental verdict with a fresh full evaluation and throws
// on divergence — the differential harness used by tests and CI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "flows/connectivity.hpp"
#include "flows/graph.hpp"
#include "flows/my_rules.hpp"
#include "net/simulator.hpp"
#include "switchd/abstract_switch.hpp"

namespace ren::core {

class LegitimacyMonitor {
 public:
  struct Config {
    int kappa = 2;
    bool check_rule_content = true;
    bool check_rule_walk = true;
    /// Epoch-gated incremental verification (false = every check() is a
    /// fresh full evaluation, the pre-epoch behavior).
    bool incremental = true;
    /// Differential-test mode: run the full check alongside the incremental
    /// one on every sample and throw std::logic_error when verdicts diverge.
    bool paranoid = false;
  };

  LegitimacyMonitor(net::Simulator& sim, std::vector<Controller*> controllers,
                    std::vector<switchd::AbstractSwitch*> switches,
                    Config config);

  struct Status {
    bool legitimate = false;
    std::string reason;  ///< first failed condition, empty when legitimate
  };

  /// Work counters (what the incremental machinery actually had to do).
  struct Stats {
    std::uint64_t checks = 0;             ///< check() calls
    std::uint64_t short_circuits = 0;     ///< verdicts replayed, epoch unchanged
    std::uint64_t full_evaluations = 0;   ///< non-short-circuited evaluations
    std::uint64_t truth_rebuilds = 0;     ///< true_view() recomputations
    std::uint64_t view_compares = 0;      ///< controller-view equality checks
    std::uint64_t manager_checks = 0;     ///< per-switch manager validations
    std::uint64_t reference_compiles = 0; ///< reference (re)compilations
    std::uint64_t rule_compares = 0;      ///< deep rule-list content compares
    std::uint64_t walk_sweeps = 0;        ///< full rule-walk sweeps
    std::uint64_t paranoid_shadows = 0;   ///< differential full checks run
  };

  /// Evaluate Definition 1 against the current global state (incremental
  /// when configured; throws std::logic_error on a paranoid divergence).
  [[nodiscard]] Status check();

  /// Fresh, memo-free evaluation of Definition 1 — the ground truth the
  /// paranoid mode compares against, and the baseline the benches time.
  [[nodiscard]] Status check_full();

  /// Sum of every tracked change epoch below the monitor. Strictly
  /// increases whenever any tracked state mutates; an unchanged value
  /// guarantees an unchanged verdict. Harnesses use it to gate sampling.
  [[nodiscard]] std::uint64_t stack_epoch() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The real control-plane topology (live controllers + switches, links in
  /// Gc). Hosts are not part of the control plane. Cached per topology
  /// epoch; the reference is valid until the next topology change.
  [[nodiscard]] const flows::TopoView& true_view() const;

  /// The largest kappa the *current* real fabric could support:
  /// lambda(Gc) - 1, since a kappa-fault-resilient flow needs kappa+1
  /// edge-disjoint paths. Cached per topology epoch on an incremental
  /// connectivity oracle, so sampling an unchanged fabric is O(1) and a
  /// changed fabric pays one sparse evaluation (no n x n residual exists
  /// anywhere in this path). Degradation diagnostics — e.g. the B4
  /// cascading-failure investigation — compare it against Config::kappa.
  [[nodiscard]] int achievable_kappa();

  /// Work counters of the connectivity oracle behind achievable_kappa().
  [[nodiscard]] const flows::ConnectivityOracle::Stats& oracle_stats() const {
    return oracle_.stats();
  }

  [[nodiscard]] std::vector<Controller*> live_controllers() const;
  [[nodiscard]] std::vector<switchd::AbstractSwitch*> live_switches() const;

 private:
  /// `fresh` disables every cross-sample memo (the full-check path).
  [[nodiscard]] Status evaluate(const flows::TopoView& truth, bool fresh);
  [[nodiscard]] Status check_views(const flows::TopoView& truth, bool fresh);
  [[nodiscard]] Status check_managers(bool fresh);
  [[nodiscard]] Status check_rules(const flows::TopoView& truth, bool fresh);
  [[nodiscard]] Status check_walks(const flows::TopoView& truth, bool fresh);

  [[nodiscard]] flows::TopoView build_truth() const;
  /// FNV hash of the live controller id set (memo key component).
  [[nodiscard]] std::uint64_t live_signature() const;
  /// Epoch over everything rule walks depend on: topology + controller
  /// flows + rule content (manager churn excluded — walks never read it).
  [[nodiscard]] std::uint64_t walk_epoch() const;
  /// The reference per-switch rule lists controller `c` must have installed
  /// given `truth` (control flows merged with its registered data flows).
  [[nodiscard]] const std::map<NodeId, proto::RuleListPtr>& reference_rules(
      Controller* c, const flows::TopoView& truth,
      const std::map<NodeId, bool>& transit, bool fresh);

  net::Simulator& sim_;
  std::vector<Controller*> controllers_;
  std::vector<switchd::AbstractSwitch*> switches_;
  Config config_;
  flows::RuleCompiler compiler_;
  mutable Stats stats_;  ///< true_view() is const but counts rebuilds

  // --- Cross-sample incremental state --------------------------------------
  // Global verdict cache: valid while stack_epoch() is unchanged.
  bool verdict_valid_ = false;
  std::uint64_t verdict_epoch_ = 0;
  Status verdict_;

  // Ground truth cached per topology epoch (mutable: true_view() is const).
  mutable bool truth_valid_ = false;
  mutable std::uint64_t truth_epoch_ = 0;
  mutable flows::TopoView truth_;

  // Connectivity certificate over the true fabric (achievable_kappa).
  flows::ConnectivityOracle oracle_;
  bool kappa_valid_ = false;
  std::uint64_t kappa_epoch_ = 0;
  int achievable_kappa_ = 0;

  // cid -> (controller epoch, topology epoch) of the last passing compare.
  std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> views_ok_;
  // sid -> (manager epoch, live signature) of the last passing check.
  std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> managers_ok_;
  // sid -> (rule epoch, live signature) of the last passing owners check.
  std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> owners_ok_;
  // Per-controller reference compilation keyed on (truth fingerprint,
  // data-flow revision); holds the merged per-switch lists.
  struct ReferenceCache {
    std::uint64_t truth_fingerprint = 0;
    std::uint64_t data_flow_revision = 0;
    std::map<NodeId, proto::RuleListPtr> per_switch;
  };
  std::map<NodeId, ReferenceCache> reference_;
  // (switch, cid) -> (installed list, reference list) verified equal. Both
  // pointers are pinned so allocator reuse can never alias a stale entry;
  // keying on the reference too invalidates the memo when the truth moved
  // even though the switch still holds its old (now stale) rules.
  std::map<std::pair<NodeId, NodeId>,
           std::pair<proto::RuleListPtr, proto::RuleListPtr>>
      verified_;
  // Rule-walk memo: valid while walk_epoch() is unchanged.
  bool walk_ok_valid_ = false;
  std::uint64_t walk_ok_epoch_ = 0;
};

}  // namespace ren::core

#include "core/reply_db.hpp"

#include <algorithm>

namespace ren::core {

bool ReplyDb::make_room(NodeId id) {
  const std::size_t projected = entries_.size() + (contains(id) ? 0 : 1);
  if (projected <= config_.max_replies) return false;
  if (config_.reset_on_overflow) {
    // C-reset: keep nothing (the self record is synthesized by the caller).
    if (!entries_.empty()) {
      ++revision_;
      ++view_shape_revision_;
      ++management_revision_;
    }
    entries_.clear();
    insert_order_.clear();
    ++c_resets_;
    return true;
  }
  // Section 8.1 variant: constant-size queue semantics, evict the oldest.
  while (entries_.size() + 1 > config_.max_replies && !entries_.empty()) {
    auto victim = insert_order_.begin();
    for (auto it = insert_order_.begin(); it != insert_order_.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    entries_.erase(victim->first);
    insert_order_.erase(victim);
    ++revision_;
    ++view_shape_revision_;
    ++management_revision_;
  }
  return false;
}

void ReplyDb::store(proto::QueryReply reply) {
  const NodeId id = reply.id;
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++revision_;
    ++view_shape_revision_;
    ++management_revision_;
    entries_.emplace(id, std::move(reply));
  } else if (!(it->second == reply)) {
    // Only (id, nc, from_controller) shape a topology view; a replace that
    // merely rolls the round tag / manager list / rule summaries forward
    // (every steady-state re-reply) keeps the shape revision still.
    if (it->second.nc != reply.nc ||
        it->second.from_controller != reply.from_controller) {
      ++view_shape_revision_;
    }
    // The lines 14-17 preparation reads the manager list and the owner id
    // sequence; only changes to those (or to the respondent kind) disturb
    // the batch planner's cached eviction commands.
    if (it->second.managers != reply.managers ||
        it->second.from_controller != reply.from_controller ||
        !std::equal(it->second.rule_owners.begin(),
                    it->second.rule_owners.end(), reply.rule_owners.begin(),
                    reply.rule_owners.end(),
                    [](const proto::RuleOwnerSummary& a,
                       const proto::RuleOwnerSummary& b) {
                      return a.cid == b.cid;
                    })) {
      ++management_revision_;
    }
    ++revision_;
    it->second = std::move(reply);
  }
  insert_order_[id] = ++insert_counter_;
}

const proto::QueryReply* ReplyDb::find(NodeId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void ReplyDb::erase_if(
    const std::function<bool(const proto::QueryReply&)>& drop) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (drop(it->second)) {
      insert_order_.erase(it->first);
      it = entries_.erase(it);
      ++revision_;
      ++view_shape_revision_;
      ++management_revision_;
    } else {
      ++it;
    }
  }
}

void ReplyDb::corrupt(Rng& rng, NodeId node_space) {
  // Corruption may have touched anything.
  ++revision_;
  ++view_shape_revision_;
  ++management_revision_;
  auto rand_node = [&rng, node_space] {
    return static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(node_space)));
  };
  // Scramble some stored replies.
  for (auto& [id, reply] : entries_) {
    if (rng.chance(0.4)) {
      reply.nc.clear();
      const auto n = rng.next_below(5);
      for (std::uint64_t i = 0; i < n; ++i) reply.nc.push_back(rand_node());
    }
    if (rng.chance(0.3)) {
      reply.tag_for_querier =
          proto::Tag{rand_node(), static_cast<std::uint32_t>(
                                      rng.next_below(proto::kTagDomain))};
    }
  }
  // Fabricate bogus replies about nodes that may not exist.
  const auto extra = rng.next_below(4);
  for (std::uint64_t i = 0; i < extra; ++i) {
    proto::QueryReply fake;
    fake.id = rand_node();
    const auto n = rng.next_below(4);
    for (std::uint64_t k = 0; k < n; ++k) fake.nc.push_back(rand_node());
    fake.from_controller = rng.chance(0.3);
    fake.tag_for_querier =
        proto::Tag{rand_node(),
                   static_cast<std::uint32_t>(rng.next_below(proto::kTagDomain))};
    store(std::move(fake));
  }
}

}  // namespace ren::core

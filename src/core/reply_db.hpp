// The controller's bounded store of query replies (Algorithm 2, `replyDB`).
//
// Capacity is maxReplies >= 2(N_C + N_S); overflowing it triggers a C-reset
// (drop everything and restart discovery from the direct neighborhood) in
// the memory-adaptive algorithm, or an oldest-entry eviction in the
// non-memory-adaptive Theta(D) variant of Section 8.1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "proto/messages.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::core {

class ReplyDb {
 public:
  struct Config {
    std::size_t max_replies = 1024;
    bool reset_on_overflow = true;  ///< false = LRU eviction (Section 8.1)
  };

  explicit ReplyDb(Config config) : config_(config) {}

  /// Line 21 of Algorithm 2: make room for a reply from `id`; returns true
  /// when a C-reset was performed.
  bool make_room(NodeId id);

  /// Insert or replace the reply of reply.id.
  void store(proto::QueryReply reply);

  [[nodiscard]] const proto::QueryReply* find(NodeId id) const;
  [[nodiscard]] bool contains(NodeId id) const { return find(id) != nullptr; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<NodeId, proto::QueryReply>& entries() const {
    return entries_;
  }

  /// Remove entries for which `drop` returns true.
  void erase_if(const std::function<bool(const proto::QueryReply&)>& drop);
  void clear() {
    if (!entries_.empty()) {
      ++revision_;
      ++view_shape_revision_;
      ++management_revision_;
    }
    entries_.clear();
  }

  [[nodiscard]] std::uint64_t c_resets() const { return c_resets_; }

  /// Monotonic content revision: bumps whenever the stored reply set
  /// changes (insert, content-changing replace, erase, C-reset, eviction,
  /// corruption). Storing a reply identical to the held entry leaves it
  /// untouched, which is what lets the controller's ViewCache survive
  /// retransmissions and steady-state re-replies without a rebuild.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// Like revision(), but insensitive to fields that never enter a topology
  /// view: a replace that only moves tag_for_querier / managers /
  /// rule_owners (the steady-state round-tag churn) leaves it untouched.
  /// An unchanged value guarantees the *structure* of any res view over an
  /// unchanged entry subset is unchanged — the ViewCache's slot-reuse key.
  [[nodiscard]] std::uint64_t view_shape_revision() const {
    return view_shape_revision_;
  }

  /// Management-content revision: bumps on inserts/erases and on replaces
  /// that change anything the lines 14-17 command preparation reads — the
  /// manager list, the rule-owner id sequence, or the respondent kind. A
  /// steady-state re-reply (only round tags and rule counts rolled forward)
  /// leaves it untouched, which is what lets the batch planner's fan-out
  /// gate skip re-deriving per-peer eviction commands.
  [[nodiscard]] std::uint64_t management_revision() const {
    return management_revision_;
  }

  /// Transient-fault hook: fabricate bogus replies and scramble stored ones.
  void corrupt(Rng& rng, NodeId node_space);

 private:
  Config config_;
  std::map<NodeId, proto::QueryReply> entries_;
  std::uint64_t insert_counter_ = 0;
  std::map<NodeId, std::uint64_t> insert_order_;  // for LRU eviction
  std::uint64_t c_resets_ = 0;
  std::uint64_t revision_ = 0;
  std::uint64_t view_shape_revision_ = 0;
  std::uint64_t management_revision_ = 0;
};

}  // namespace ren::core

#include "core/view_cache.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

namespace ren::core {

void ResView::clear() {
  view = flows::TopoView{};
  transit.clear();
  reply_ids.clear();
  reach.clear();
}

void ResView::finalize(NodeId self) {
  flat.assign(view);
  reach.clear();
  flat.reachable_from(self, reach);
  static std::atomic<std::uint64_t> next_build_id{0};
  build_id = ++next_build_id;
}

// --- From-scratch builders ----------------------------------------------------

namespace {

void stamp(ResView& out, const ReplyDb& db,
           const detect::ThetaDetector& detector) {
  out.coverage = out.reply_ids.empty() ? ResView::Coverage::Empty
                 : out.reply_ids.size() == db.size()
                     ? ResView::Coverage::All
                     : ResView::Coverage::Partial;
  out.shape_revision = db.view_shape_revision();
  out.liveness_epoch = detector.liveness_epoch();
}

}  // namespace

void ViewCache::build_res(NodeId self, const ReplyDb& db, proto::Tag tag,
                          const detect::ThetaDetector& detector,
                          ResView& out) {
  out.clear();
  // The synthetic self record <i, Nc(i), {}, {}> (Algorithm 2, line 3).
  out.view.add_node(self);
  out.transit[self] = false;
  for (NodeId n : detector.live()) out.view.add_edge(self, n);
  for (const auto& [rid, m] : db.entries()) {
    if (!(m.tag_for_querier == tag)) continue;
    out.view.add_node(m.id);
    for (NodeId n : m.nc) out.view.add_edge(m.id, n);
    out.transit[m.id] = !m.from_controller;
    out.reply_ids.insert(m.id);
  }
  out.finalize(self);
  stamp(out, db, detector);
}

void ViewCache::build_fusion(NodeId self, const ReplyDb& db, proto::Tag curr,
                             proto::Tag prev,
                             const detect::ThetaDetector& detector,
                             ResView& out) {
  out.clear();
  out.view.add_node(self);
  out.transit[self] = false;
  for (NodeId n : detector.live()) out.view.add_edge(self, n);
  // res(currTag), then res(prevTag) entries not shadowed by a curr reply.
  for (const auto& [rid, m] : db.entries()) {
    const bool is_curr = m.tag_for_querier == curr;
    const bool is_prev = m.tag_for_querier == prev;
    if (!is_curr && !is_prev) continue;
    if (is_prev && !is_curr) {
      const proto::QueryReply* other = db.find(m.id);
      if (other != nullptr && other->tag_for_querier == curr) continue;
    }
    out.view.add_node(m.id);
    for (NodeId n : m.nc) out.view.add_edge(m.id, n);
    out.transit[m.id] = !m.from_controller;
    out.reply_ids.insert(m.id);
  }
  out.finalize(self);
  stamp(out, db, detector);
}

void ViewCache::build_empty(const ReplyDb& db,
                            const detect::ThetaDetector& detector,
                            ResView& out) const {
  out.clear();
  out.view.add_node(self_);
  out.transit[self_] = false;
  for (NodeId n : detector.live()) out.view.add_edge(self_, n);
  out.finalize(self_);
  stamp(out, db, detector);
}

// --- Cache maintenance --------------------------------------------------------

void ViewCache::refresh(const ReplyDb& db, proto::Tag curr, proto::Tag prev,
                        const detect::ThetaDetector& detector) {
  ++stats_.refreshes;
  const std::uint64_t db_rev = db.revision();
  const std::uint64_t live_epoch = detector.liveness_epoch();
  if (enabled_ && key_.valid && key_.db_revision == db_rev &&
      key_.liveness_epoch == live_epoch && key_.curr == curr &&
      key_.prev == prev) {
    ++stats_.hits;
  } else {
    resync(db, curr, prev, detector);
  }
  key_ = Key{true, db_rev, curr, prev, live_epoch};
  if (paranoid_) check_paranoid(db, curr, prev, detector);
}

void ViewCache::resync(const ReplyDb& db, proto::Tag curr, proto::Tag prev,
                       const detect::ThetaDetector& detector) {
  // Classify entries once. The replyDB is keyed by node id, so each tag
  // class is a disjoint entry subset; when one class holds everything (the
  // converged norm: all entries re-tagged curr at tick start, all entries
  // still prev right after a flip) the three views collapse to one
  // all-entries view plus the self-only view, and fusion aliases the full
  // one (no shadowing can occur).
  std::size_t n_curr = 0, n_prev = 0;
  for (const auto& [_, m] : db.entries()) {
    if (m.tag_for_querier == curr) {
      ++n_curr;
    } else if (m.tag_for_querier == prev) {
      ++n_prev;
    }
  }
  const std::size_t n = db.size();
  const std::uint64_t shape = db.view_shape_revision();
  const std::uint64_t live = detector.liveness_epoch();
  auto all_match = [&](const ResView* s) {
    return enabled_ && s->coverage == ResView::Coverage::All &&
           s->shape_revision == shape && s->liveness_epoch == live;
  };
  auto empty_match = [&](const ResView* s) {
    return enabled_ && s->coverage == ResView::Coverage::Empty &&
           s->liveness_epoch == live;
  };
  // `full` gets the all-entries view, `empty` the self-only view. An
  // existing slot whose entry subset and shapes are unchanged is reused by
  // pointer swap — tag churn alone never forces a build, which is what
  // makes a converged round flip (and the following tick start) O(1).
  auto fill = [&](ResView** full, ResView** empty, proto::Tag full_tag) {
    if (!all_match(*full)) {
      if (all_match(*empty)) {
        std::swap(*full, *empty);
      } else if (all_match(fus_)) {
        std::swap(*full, fus_);
      }
    }
    if (all_match(*full)) {
      ++stats_.rotations;
    } else {
      ++stats_.rebuilds;
      build_res(self_, db, full_tag, detector, **full);
    }
    if (!empty_match(*empty) && empty_match(fus_)) std::swap(*empty, fus_);
    if (!empty_match(*empty)) build_empty(db, detector, **empty);
  };
  if (n > 0 && n_curr == n && !(curr == prev)) {
    fill(&curr_, &prev_, curr);
    fusion_alias_ = FusionAlias::Curr;
  } else if (n > 0 && n_prev == n && !(curr == prev)) {
    fill(&prev_, &curr_, prev);
    fusion_alias_ = FusionAlias::Prev;
  } else {
    ++stats_.rebuilds;
    build_res(self_, db, curr, detector, *curr_);
    build_res(self_, db, prev, detector, *prev_);
    if (n_prev == 0 && !(curr == prev)) {
      fusion_alias_ = FusionAlias::Curr;
    } else if (n_curr == 0) {
      fusion_alias_ = FusionAlias::Prev;
    } else {
      build_fusion(self_, db, curr, prev, detector, *fus_);
      fusion_alias_ = FusionAlias::None;
    }
  }
}

void ViewCache::check_paranoid(const ReplyDb& db, proto::Tag curr,
                               proto::Tag prev,
                               const detect::ThetaDetector& detector) {
  ++stats_.paranoid_checks;
  auto verify = [&](const ResView& cached, const ResView& fresh,
                    const char* which) {
    std::ostringstream what;
    if (!(cached.view == fresh.view)) {
      what << "view mismatch";
    } else if (cached.transit != fresh.transit) {
      what << "transit mismatch";
    } else if (cached.reply_ids != fresh.reply_ids) {
      what << "reply_ids mismatch";
    } else {
      // Reachability differential against the independent std::set BFS of
      // TopoView (not the FlatView code path under test).
      const auto expect = fresh.view.reachable_set(self_);
      if (std::set<NodeId>(cached.reach.begin(), cached.reach.end()) !=
          std::set<NodeId>(expect.begin(), expect.end())) {
        what << "reach set mismatch";
      } else {
        for (const auto& [n, _] : fresh.view.adj()) {
          const bool want = std::find(expect.begin(), expect.end(), n) !=
                            expect.end();
          if (cached.reachable(n) != want) {
            what << "reachable(" << n << ") = " << cached.reachable(n)
                 << ", want " << want;
            break;
          }
        }
      }
    }
    if (what.str().empty()) return;
    throw std::logic_error(std::string("ViewCache paranoid divergence [") +
                           which + "] for controller " +
                           std::to_string(self_) + ": " + what.str());
  };
  ResView fresh;
  build_res(self_, db, curr, detector, fresh);
  verify(res_curr(), fresh, "res_curr");
  build_res(self_, db, prev, detector, fresh);
  verify(res_prev(), fresh, "res_prev");
  build_fusion(self_, db, curr, prev, detector, fresh);
  verify(fusion(), fresh, "fusion");
}

}  // namespace ren::core

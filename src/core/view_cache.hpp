// One cached view construction per controller tick.
//
// Algorithm 2 consumes three directed topology views per do-forever
// iteration — res(currTag), res(prevTag) and their fusion — and the seed
// rebuilt them from the replyDB at every consumer: twice in the prune step,
// once in the round-completion test, and three more times for reference
// selection, six-plus std::map/std::set constructions plus a BFS per use,
// every task_delay, per controller. The ViewCache materializes the three
// views (and their reachability from the owning controller) exactly once
// per *state*, keyed on everything a build reads:
//
//   (ReplyDb::revision(), currTag, prevTag, ThetaDetector::liveness_epoch())
//
// refresh() is O(1) while the key is unchanged — steady-state ticks where no
// new reply content arrived reuse all three views untouched. A clean round
// flip (prev' == curr, replyDB untouched) takes the *rotation* fast path:
// the curr slot is moved into the prev slot wholesale, the new res(curr')
// is just the synthesized self record (no replies carry a brand-new tag),
// and the fusion aliases the prev slot — by the fusion definition, with no
// curr-tagged entries every non-shadowed prev entry is included, so
// G(fusion) == G(res(prev')) exactly.
//
// Reachability is precomputed per view on an index-mapped flat adjacency
// (flows::FlatView): one integer BFS per rebuild with an epoch-stamped
// visited array that then answers membership in O(1), replacing the
// per-call std::set BFS plus linear reachable-set scans of the seed. All
// scratch (flat CSR arrays, BFS queue, visited stamps) lives in the three
// long-lived slots, so a steady-state tick allocates nothing here.
//
// Config::paranoid_views mirrors the PR 2 differential-mode pattern: every
// refresh() outcome (hit, rotation or rebuild) is shadowed by from-scratch
// builds — with reachability recomputed through the *independent*
// TopoView::reachable_set() implementation — and any divergence throws
// std::logic_error.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/reply_db.hpp"
#include "detect/theta_detector.hpp"
#include "flows/graph.hpp"
#include "proto/tag.hpp"
#include "util/types.hpp"

namespace ren::core {

/// A topology view materialized from replyDB entries with one tag (or the
/// curr/prev fusion), plus its precomputed reachability from the owner.
struct ResView {
  flows::TopoView view;
  std::map<NodeId, bool> transit;  ///< id -> is-switch (may relay)
  std::set<NodeId> reply_ids;      ///< ids that actually replied
  flows::FlatView flat;            ///< index-mapped snapshot of `view`
  std::vector<NodeId> reach;       ///< reachable from the owner, BFS order

  /// Which replyDB entry subset this view was built over. The replyDB is
  /// keyed by node id, so a tag class is just a subset of entries — and a
  /// view over *all* entries (or none) is structurally independent of which
  /// tag that class carries. Empty/All slots can therefore be reused across
  /// round flips while the entry shapes and the liveness set are unchanged.
  enum class Coverage : std::uint8_t { Partial, Empty, All };
  Coverage coverage = Coverage::Partial;
  std::uint64_t shape_revision = 0;  ///< ReplyDb::view_shape_revision() at build
  std::uint64_t liveness_epoch = 0;  ///< detector epoch at build
  /// Process-unique content stamp assigned by finalize(): slot rotations and
  /// aliasing move it with the content, so equal build_ids mean "the exact
  /// same materialized view" (what lets the batch planner O(1)-compare the
  /// views feeding a fan-out instead of deep-comparing reach/reply sets).
  std::uint64_t build_id = 0;

  /// O(1): was `n` reachable from the owning controller when this view was
  /// built? (Membership in `reach`.)
  [[nodiscard]] bool reachable(NodeId n) const { return flat.reached(n); }

  void clear();
  /// Snapshot `view` into `flat` and precompute `reach` from `self`.
  void finalize(NodeId self);
};

class ViewCache {
 public:
  struct Stats {
    std::uint64_t refreshes = 0;   ///< refresh() calls
    std::uint64_t hits = 0;        ///< key unchanged, views reused untouched
    std::uint64_t rotations = 0;   ///< slot-reuse fast paths (no full build)
    std::uint64_t rebuilds = 0;    ///< full view materializations
    std::uint64_t paranoid_checks = 0;  ///< differential shadows run
  };

  explicit ViewCache(NodeId self) : self_(self) {}

  /// Differential mode: shadow every refresh with from-scratch builds.
  void set_paranoid(bool paranoid) { paranoid_ = paranoid; }
  /// Disabled, every refresh() rebuilds from scratch — the pre-cache
  /// behavior, kept as the bench baseline and a debugging escape hatch.
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Synchronize the three views with (db, tags, detector). O(1) when the
  /// key is unchanged; a clean round flip rotates slots; anything else
  /// rebuilds all three views once.
  void refresh(const ReplyDb& db, proto::Tag curr, proto::Tag prev,
               const detect::ThetaDetector& detector);

  /// Drop the cached key and slot-reuse metadata (e.g. after corruption).
  void invalidate() {
    key_.valid = false;
    for (auto& s : slots_) s.coverage = ResView::Coverage::Partial;
  }

  [[nodiscard]] const ResView& res_curr() const { return *curr_; }
  [[nodiscard]] const ResView& res_prev() const { return *prev_; }
  [[nodiscard]] const ResView& fusion() const {
    switch (fusion_alias_) {
      case FusionAlias::Prev: return *prev_;
      case FusionAlias::Curr: return *curr_;
      case FusionAlias::None: break;
    }
    return *fus_;
  }
  /// True when G(fusion) is the prev slot itself (no curr-tagged entries);
  /// the controller uses this to skip the topology-stability compare.
  [[nodiscard]] bool fusion_aliases_prev() const {
    return fusion_alias_ == FusionAlias::Prev;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  // --- From-scratch builders (paranoid mode, tests) -------------------------
  static void build_res(NodeId self, const ReplyDb& db, proto::Tag tag,
                        const detect::ThetaDetector& detector, ResView& out);
  static void build_fusion(NodeId self, const ReplyDb& db, proto::Tag curr,
                           proto::Tag prev,
                           const detect::ThetaDetector& detector, ResView& out);

 private:
  struct Key {
    bool valid = false;
    std::uint64_t db_revision = 0;
    proto::Tag curr;
    proto::Tag prev;
    std::uint64_t liveness_epoch = 0;
  };

  void resync(const ReplyDb& db, proto::Tag curr, proto::Tag prev,
              const detect::ThetaDetector& detector);
  /// The self-only view (synthesized self record, no replies).
  void build_empty(const ReplyDb& db, const detect::ThetaDetector& detector,
                   ResView& out) const;
  void check_paranoid(const ReplyDb& db, proto::Tag curr, proto::Tag prev,
                      const detect::ThetaDetector& detector);

  /// Which slot IS the fusion. When only one tag class has entries the
  /// fusion definition collapses onto that class's view — the steady-state
  /// norm (all replies re-tagged curr => fusion == res_curr; right after a
  /// clean flip => fusion == res_prev) — so most ticks materialize a single
  /// full view instead of three.
  enum class FusionAlias { None, Prev, Curr };

  NodeId self_;
  bool enabled_ = true;
  bool paranoid_ = false;
  Key key_;
  // Three long-lived slots addressed through pointers so a rotation is a
  // pointer swap, not a deep copy; their internal buffers are reused across
  // rebuilds.
  ResView slots_[3];
  ResView* curr_ = &slots_[0];
  ResView* prev_ = &slots_[1];
  ResView* fus_ = &slots_[2];
  FusionAlias fusion_alias_ = FusionAlias::None;
  Stats stats_;
};

}  // namespace ren::core

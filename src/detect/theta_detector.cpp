#include "detect/theta_detector.hpp"

#include <algorithm>

namespace ren::detect {

void ThetaDetector::set_candidates(const std::vector<NodeId>& neighbors) {
  // Keep state for surviving candidates; add fresh entries for new ones.
  // Dropping a live entry changes the reported set (fresh entries start
  // suspected, so additions never do).
  std::map<NodeId, Entry> next;
  for (NodeId n : neighbors) {
    auto it = entries_.find(n);
    next[n] = (it != entries_.end()) ? it->second : Entry{};
  }
  for (const auto& [n, e] : entries_) {
    if (entry_live(e) && next.count(n) == 0) {
      ++liveness_epoch_;
      break;
    }
  }
  entries_ = std::move(next);
}

void ThetaDetector::tick(const SendProbe& send) {
  // Evaluate the round that just ended.
  const bool any_replied =
      std::any_of(entries_.begin(), entries_.end(),
                  [](const auto& kv) { return kv.second.replied_this_round; });
  bool live_changed = false;
  for (auto& [n, e] : entries_) {
    const bool was_live = entry_live(e);
    if (e.replied_this_round) {
      e.suspected = false;
      e.misses = 0;
    } else if (any_replied && e.confirmed) {
      // Relative evidence: others answered, this one did not.
      if (++e.misses >= config_.theta) e.suspected = true;
    }
    e.replied_this_round = false;
    live_changed = live_changed || entry_live(e) != was_live;
  }
  if (live_changed) ++liveness_epoch_;
  ++round_;
  for (auto& [n, e] : entries_) send(n, proto::Probe{round_});
}

void ThetaDetector::on_probe_reply(NodeId from) {
  auto it = entries_.find(from);
  if (it == entries_.end()) return;  // not an attached port
  const bool was_live = entry_live(it->second);
  it->second.confirmed = true;
  it->second.replied_this_round = true;
  if (entry_live(it->second) != was_live) ++liveness_epoch_;
}

std::vector<NodeId> ThetaDetector::live() const {
  std::vector<NodeId> out;
  for (const auto& [n, e] : entries_) {
    if (e.confirmed && !e.suspected) out.push_back(n);
  }
  return out;
}

bool ThetaDetector::is_live(NodeId n) const {
  auto it = entries_.find(n);
  return it != entries_.end() && it->second.confirmed && !it->second.suspected;
}

void ThetaDetector::corrupt(Rng& rng) {
  ++liveness_epoch_;  // scrambling may change the reported set arbitrarily
  for (auto& [n, e] : entries_) {
    e.confirmed = rng.chance(0.5);
    e.suspected = rng.chance(0.5);
    e.misses = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(config_.theta + 1)));
  }
}

}  // namespace ren::detect

// Local topology discovery with a Theta failure detector (paper
// Section 2.2.1, after Blanchard et al. [16, Section 6]).
//
// Every detection round the node probes each attached port. A neighbor is
// suspected once Theta consecutive rounds passed in which *some other
// neighbor replied* but it did not (the relative-counting rule of the Theta
// detector, which stays meaningful in an asynchronous system). A suspected
// neighbor rejoins the reported neighborhood on its next reply.
//
// Bootstrapping detail: every port starts "unconfirmed" — a neighbor enters
// the reported set Nc(i) only after its first reply. Hosts never answer
// probes, so host-facing ports are automatically excluded from the control
// plane's topology, as in real deployments (LLDP vs. host ports).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "proto/payload.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::detect {

class ThetaDetector {
 public:
  struct Config {
    int theta = 10;  ///< suspicion threshold (paper: 10 small / 30 large nets)
  };

  using SendProbe = std::function<void(NodeId neighbor, proto::Probe probe)>;

  ThetaDetector(NodeId self, Config config) : self_(self), config_(config) {}

  /// Declare the set of attached ports (the configured adjacency).
  void set_candidates(const std::vector<NodeId>& neighbors);

  /// Run one detection round: evaluate the previous round's replies, then
  /// probe every candidate.
  void tick(const SendProbe& send);

  /// Feed a probe reply received from `from`.
  void on_probe_reply(NodeId from);

  /// The reported neighborhood Nc(i): confirmed, unsuspected neighbors.
  [[nodiscard]] std::vector<NodeId> live() const;
  [[nodiscard]] bool is_live(NodeId n) const;

  [[nodiscard]] std::uint64_t rounds() const { return round_; }

  /// Monotonic liveness epoch: bumps exactly when the reported set live()
  /// changes (a neighbor confirmed, suspected, rehabilitated, or a live
  /// entry dropped from the candidate ports). Detection rounds that leave
  /// the set unchanged leave it untouched — the controller's ViewCache keys
  /// on it to avoid rebuilding views on quiet ticks.
  [[nodiscard]] std::uint64_t liveness_epoch() const { return liveness_epoch_; }

  /// Transient-fault hook: scramble counters and suspicion flags.
  void corrupt(Rng& rng);

 private:
  struct Entry {
    bool confirmed = false;          ///< replied at least once, ever
    bool replied_this_round = false;
    int misses = 0;
    bool suspected = true;           ///< starts suspected until confirmed
  };

  static bool entry_live(const Entry& e) {
    return e.confirmed && !e.suspected;
  }

  NodeId self_;
  Config config_;
  std::map<NodeId, Entry> entries_;  // ordered => deterministic iteration
  std::uint64_t round_ = 0;
  std::uint64_t liveness_epoch_ = 0;
};

}  // namespace ren::detect

#include "faults/adversary.hpp"

#include <stdexcept>

#include "proto/mutate.hpp"
#include "proto/tag.hpp"

namespace ren::faults {
namespace {

// Salt so the adversary stream never collides with the node's simulation
// stream (`Rng::stream_seed(seed, node_id)`), which seeds timers and
// per-packet fault draws.
constexpr std::uint64_t kAdversarySalt = 0xb1a5ed0ddba11ull;

}  // namespace

const char* to_string(AdversaryMode m) {
  switch (m) {
    case AdversaryMode::Lying:
      return "lying";
    case AdversaryMode::Equivocating:
      return "equivocating";
    case AdversaryMode::Corrupting:
      return "corrupting";
    case AdversaryMode::Babbling:
      return "babbling";
  }
  return "?";
}

AdversaryMode adversary_mode_from_string(const std::string& s) {
  for (int m = 0; m <= static_cast<int>(AdversaryMode::Babbling); ++m) {
    if (s == to_string(static_cast<AdversaryMode>(m))) {
      return static_cast<AdversaryMode>(m);
    }
  }
  throw std::invalid_argument("unknown adversary mode: \"" + s + "\"");
}

Adversary::Adversary(NodeId self, NodeId node_space, Config cfg,
                     std::uint64_t trial_seed)
    : self_(self),
      node_space_(node_space),
      cfg_(cfg),
      rng_(Rng::stream_seed(trial_seed ^ kAdversarySalt,
                            static_cast<std::uint64_t>(self))) {
  if (cfg_.replay_depth > 0) ring_.reserve(static_cast<std::size_t>(cfg_.replay_depth));
}

bool Adversary::tamper_reply(NodeId peer, proto::QueryReply& reply) {
  switch (cfg_.mode) {
    case AdversaryMode::Lying: {
      if (!rng_.chance(cfg_.intensity)) return false;
      // Advertise a forged neighborhood: drop each real entry with p=0.5
      // and invent a phantom neighbor, so the querier's ReplyDb holds a
      // stale/false picture of the adversary's connectivity.
      std::vector<NodeId> forged;
      forged.reserve(reply.nc.size() + 1);
      for (NodeId n : reply.nc) {
        if (!rng_.chance(0.5)) forged.push_back(n);
      }
      if (node_space_ > 0) {
        forged.push_back(static_cast<NodeId>(
            rng_.next_below(static_cast<std::uint64_t>(node_space_))));
      }
      reply.nc = std::move(forged);
      // Claim stale rounds for advertised rule owners.
      for (auto& s : reply.rule_owners) {
        if (rng_.chance(0.5)) {
          s.tag.epoch = static_cast<std::uint32_t>(
              (s.tag.epoch + proto::kTagDomain - 1 -
               rng_.next_below(8)) % proto::kTagDomain);
        }
      }
      return true;
    }
    case AdversaryMode::Equivocating: {
      if (!rng_.chance(cfg_.intensity)) return false;
      // Peer-derived tag skew: distinct queriers receive distinct round
      // tags for the same logical round, so no two of them can agree on
      // this node's configuration. The skew is a pure function of the peer
      // id (plus one draw for reproducibility bookkeeping), not of query
      // arrival order.
      const std::uint32_t skew = static_cast<std::uint32_t>(
          1 + (Rng::stream_seed(rng_.next_u64() & 0xff,
                                static_cast<std::uint64_t>(peer)) %
               7));
      reply.tag_for_querier.epoch =
          static_cast<std::uint32_t>((reply.tag_for_querier.epoch + skew) %
                                     proto::kTagDomain);
      return true;
    }
    case AdversaryMode::Corrupting:
    case AdversaryMode::Babbling:
      return false;  // these act on whole frames in the send path
  }
  return false;
}

proto::PayloadPtr Adversary::corrupt_frame(const proto::Payload& p) {
  if (cfg_.mode != AdversaryMode::Corrupting) return nullptr;
  if (!rng_.chance(cfg_.intensity)) return nullptr;
  return std::make_shared<const proto::Payload>(
      proto::corrupt_payload(p, rng_, node_space_));
}

std::optional<Adversary::Replay> Adversary::note_and_babble(
    NodeId peer, const proto::PayloadPtr& frame, std::uint32_t bytes) {
  if (cfg_.mode != AdversaryMode::Babbling || cfg_.replay_depth <= 0) {
    return std::nullopt;
  }
  std::optional<Replay> replay;
  if (!ring_.empty() && rng_.chance(cfg_.intensity)) {
    replay = ring_[rng_.next_below(ring_.size())];
  }
  const Replay entry{peer, frame, bytes};
  if (ring_.size() < static_cast<std::size_t>(cfg_.replay_depth)) {
    ring_.push_back(entry);
  } else {
    ring_[ring_pos_] = entry;
    ring_pos_ = (ring_pos_ + 1) % ring_.size();
  }
  return replay;
}

}  // namespace ren::faults

// Byzantine adversary model (ROADMAP: "Byzantine fault family").
//
// An `Adversary` attaches to one controller or switch and tampers with its
// outbound control traffic from *inside* the node — the regime MORPH
// (Sakic et al.) identifies as the one that actually breaks SDN control
// planes, and the one Renaissance's self-stabilization claim must survive.
// Four modes:
//
//   Lying         forged query replies: dropped/invented neighborhood
//                 entries and stale rule-owner summaries, so honest
//                 controllers build wrong views (advertised ReplyDb state).
//   Equivocating  different round tags to different peers: the reply tag is
//                 skewed by a peer-derived offset, so no two queriers agree
//                 on the adversary's round.
//   Corrupting    field-permuted frames before encode (proto/mutate.hpp):
//                 structurally valid, semantically wrong messages on the
//                 wire.
//   Babbling      replay of previously sent frames: every outbound frame is
//                 remembered in a bounded ring and old ones are re-sent,
//                 stressing the transport's duplicate suppression.
//
// Determinism: each adversary owns a private RNG stream derived with
// `Rng::stream_seed` from the trial seed and its node id, and interposes
// only inside its host node's event handlers — which execute on the node's
// own lane in the sharded simulator — so trials stay bit-reproducible at
// any `--sim-threads` count and benign nodes' RNG streams are untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/messages.hpp"
#include "proto/payload.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::faults {

enum class AdversaryMode {
  Lying,
  Equivocating,
  Corrupting,
  Babbling,
};

[[nodiscard]] const char* to_string(AdversaryMode m);

/// Parses "lying" / "equivocating" / "corrupting" / "babbling".
/// Throws std::invalid_argument for anything else.
[[nodiscard]] AdversaryMode adversary_mode_from_string(const std::string& s);

class Adversary {
 public:
  struct Config {
    AdversaryMode mode = AdversaryMode::Lying;
    double intensity = 1.0;  ///< per-interposition tamper probability
    int replay_depth = 8;    ///< Babbling: remembered-frame ring size
  };

  /// `node_space` bounds forged node ids (typically `sim.node_count()`);
  /// `trial_seed` plus `self` derive the private RNG stream.
  Adversary(NodeId self, NodeId node_space, Config cfg,
            std::uint64_t trial_seed);

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] AdversaryMode mode() const { return cfg_.mode; }

  /// Lying / Equivocating: tamper with a query reply about to be submitted
  /// to `peer`. Returns true when the reply was modified.
  bool tamper_reply(NodeId peer, proto::QueryReply& reply);

  /// Corrupting: maybe replace an outbound payload with a field-permuted
  /// deep copy. Returns nullptr when the frame should go out untouched.
  [[nodiscard]] proto::PayloadPtr corrupt_frame(const proto::Payload& p);

  /// Babbling: remember this outbound frame and maybe pick a previously
  /// sent one to replay to its original peer. Must be called exactly once
  /// per outbound frame (in the node's send path) so the ring — and thus
  /// the trial — stays deterministic.
  struct Replay {
    NodeId peer = kNoNode;
    proto::PayloadPtr frame;
    std::uint32_t bytes = 0;
  };
  [[nodiscard]] std::optional<Replay> note_and_babble(
      NodeId peer, const proto::PayloadPtr& frame, std::uint32_t bytes);

 private:
  NodeId self_;
  NodeId node_space_;
  Config cfg_;
  Rng rng_;
  std::vector<Replay> ring_;  ///< Babbling history, ring_pos_ is next slot
  std::size_t ring_pos_ = 0;
};

}  // namespace ren::faults

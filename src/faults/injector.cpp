#include "faults/injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace ren::faults {

namespace {

/// Global fault injections mutate node/link state across every shard, so
/// they are only sound at a shard-window barrier (workers parked): the
/// scenario engine applies events between run_until calls, which is exactly
/// that. A call from a worker thread would race the lockstep kernel and
/// silently break bit-reproducibility — fail loudly instead.
void require_barrier_context(const char* what) {
  if (net::Simulator::concurrent_context()) {
    throw std::logic_error(std::string(what) +
                           ": fault injection must run at a shard-window "
                           "barrier, not from shard context");
  }
}

std::vector<NodeId> live_control_ids(const ControlPlane& cp) {
  std::vector<NodeId> ids;
  for (const auto* c : cp.controllers) {
    if (c->alive()) ids.push_back(c->id());
  }
  for (const auto* s : cp.switches) {
    if (s->alive()) ids.push_back(s->id());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool view_connected(const flows::TopoView& v) {
  if (v.node_count() == 0) return true;
  const NodeId start = v.adj().begin()->first;
  return v.reachable_set(start).size() == v.node_count();
}

}  // namespace

flows::TopoView control_topology(const ControlPlane& cp) {
  flows::TopoView view;
  const auto ids = live_control_ids(cp);
  for (NodeId n : ids) view.add_node(n);
  const net::Network& net = cp.sim->network();
  for (NodeId n : ids) {
    for (const auto& e : net.adjacency(n)) {
      if (net.link(e.link).state() == net::LinkState::PermanentDown) continue;
      if (!std::binary_search(ids.begin(), ids.end(), e.neighbor)) continue;
      view.add_edge(n, e.neighbor);
    }
  }
  return view;
}

void kill_node(ControlPlane& cp, NodeId id) {
  auto& downed = cp.kill_downed_links[id];
  for (const auto& e : cp.sim->network().adjacency(id)) {
    const net::LinkState prior = cp.sim->network().link(e.link).state();
    if (prior != net::LinkState::PermanentDown)
      downed.emplace_back(e.link, prior);
  }
  cp.sim->kill_node(id);
  cp.killed_nodes.push_back(id);
}

bool restart_node(ControlPlane& cp, NodeId id) {
  if (cp.sim->node(id).alive()) return false;
  if (const auto it = cp.kill_downed_links.find(id);
      it != cp.kill_downed_links.end()) {
    for (const auto& [li, prior] : it->second) {
      net::Link& l = cp.sim->network().link(li);
      if (l.state() == net::LinkState::PermanentDown) l.set_state(prior);
    }
    cp.kill_downed_links.erase(it);
  }
  cp.sim->revive_node(id);
  cp.killed_nodes.erase(
      std::remove(cp.killed_nodes.begin(), cp.killed_nodes.end(), id),
      cp.killed_nodes.end());
  return true;
}

std::vector<NodeId> restart_all_nodes(ControlPlane& cp) {
  std::vector<NodeId> revived;
  // killed_nodes shrinks as restart_node succeeds; iterate over a copy.
  const std::vector<NodeId> killed = cp.killed_nodes;
  for (NodeId id : killed) {
    if (restart_node(cp, id)) revived.push_back(id);
  }
  return revived;
}

bool fail_link(ControlPlane& cp, NodeId a, NodeId b) {
  net::Link* l = cp.sim->network().find_link(a, b);
  if (l == nullptr || l->state() == net::LinkState::PermanentDown) return false;
  l->set_state(net::LinkState::PermanentDown);
  cp.failed_links.push_back(l->index());
  return true;
}

bool restore_link(ControlPlane& cp, NodeId a, NodeId b) {
  net::Link* l = cp.sim->network().find_link(a, b);
  if (l == nullptr || l->state() != net::LinkState::PermanentDown) return false;
  l->set_state(net::LinkState::Up);
  cp.failed_links.erase(
      std::remove(cp.failed_links.begin(), cp.failed_links.end(), l->index()),
      cp.failed_links.end());
  return true;
}

std::size_t restore_all_links(ControlPlane& cp) {
  std::size_t restored = 0;
  for (int li : cp.failed_links) {
    net::Link& l = cp.sim->network().link(li);
    if (l.state() == net::LinkState::PermanentDown) {
      l.set_state(net::LinkState::Up);
      ++restored;
    }
  }
  cp.failed_links.clear();
  return restored;
}

NodeId kill_random_controller(ControlPlane& cp, Rng& rng) {
  std::vector<core::Controller*> live;
  for (auto* c : cp.controllers) {
    if (c->alive()) live.push_back(c);
  }
  if (live.size() <= 1) return kNoNode;  // keep at least one controller
  core::Controller* victim = live[rng.next_below(live.size())];
  kill_node(cp, victim->id());
  return victim->id();
}

std::vector<NodeId> kill_random_controllers(ControlPlane& cp, Rng& rng,
                                            int count) {
  std::vector<NodeId> killed;
  for (int i = 0; i < count; ++i) {
    const NodeId victim = kill_random_controller(cp, rng);
    if (victim == kNoNode) break;
    killed.push_back(victim);
  }
  return killed;
}

NodeId kill_random_switch(ControlPlane& cp, Rng& rng) {
  std::vector<switchd::AbstractSwitch*> candidates;
  for (auto* s : cp.switches) {
    if (!s->alive()) continue;
    if (std::find(cp.protected_switches.begin(), cp.protected_switches.end(),
                  s->id()) != cp.protected_switches.end())
      continue;
    candidates.push_back(s);
  }
  rng.shuffle(candidates);
  // The live topology does not change while probing candidates, so build it
  // once; each candidate only needs the "what if this switch vanished" copy
  // (the per-candidate rebuild made one kill O(candidates x edges)).
  const flows::TopoView current = control_topology(cp);
  for (auto* s : candidates) {
    flows::TopoView probe;
    for (const auto& [n, nbrs] : current.adj()) {
      if (n == s->id()) continue;
      probe.add_node(n);
      for (NodeId v : nbrs) {
        if (v != s->id()) probe.add_edge(n, v);
      }
    }
    if (view_connected(probe)) {
      kill_node(cp, s->id());
      return s->id();
    }
  }
  return kNoNode;
}

std::vector<NodeId> kill_random_switches(ControlPlane& cp, Rng& rng,
                                         int count) {
  std::vector<NodeId> killed;
  for (int i = 0; i < count; ++i) {
    const NodeId victim = kill_random_switch(cp, rng);
    if (victim == kNoNode) break;
    killed.push_back(victim);
  }
  return killed;
}

std::pair<NodeId, NodeId> fail_random_link(ControlPlane& cp, Rng& rng,
                                           bool keep_connected) {
  const auto ids = live_control_ids(cp);
  std::vector<std::pair<NodeId, NodeId>> candidates;
  const net::Network& net = cp.sim->network();
  for (NodeId n : ids) {
    for (const auto& e : net.adjacency(n)) {
      if (e.neighbor < n) continue;  // dedupe
      if (!net.link(e.link).operational()) continue;
      if (!std::binary_search(ids.begin(), ids.end(), e.neighbor)) continue;
      candidates.emplace_back(n, e.neighbor);
    }
  }
  rng.shuffle(candidates);
  // One live-topology build for the whole probe loop — rebuilding it per
  // candidate made a single link failure O(candidates x edges) and dominated
  // fault injection on 1k-node fabrics.
  const flows::TopoView view = control_topology(cp);
  for (const auto& [a, b] : candidates) {
    if (keep_connected) {
      // Rebuild without this edge.
      flows::TopoView probe;
      for (const auto& [n, nbrs] : view.adj()) {
        probe.add_node(n);
        for (NodeId v : nbrs) {
          if ((n == a && v == b) || (n == b && v == a)) continue;
          probe.add_edge(n, v);
        }
      }
      if (!view_connected(probe)) continue;
    }
    fail_link(cp, a, b);
    return {a, b};
  }
  return {kNoNode, kNoNode};
}

std::vector<std::pair<NodeId, NodeId>> fail_random_links(
    ControlPlane& cp, Rng& rng, int count, bool keep_connected) {
  std::vector<std::pair<NodeId, NodeId>> failed;
  for (int i = 0; i < count; ++i) {
    const auto link = fail_random_link(cp, rng, keep_connected);
    if (link.first == kNoNode) break;
    failed.push_back(link);
  }
  return failed;
}

void corrupt_all_state(ControlPlane& cp, Rng& rng) {
  require_barrier_context("corrupt_all_state");
  const auto node_space =
      static_cast<NodeId>(cp.sim->node_count());
  for (auto* s : cp.switches) {
    if (s->alive()) s->corrupt_state(rng, node_space);
  }
  for (auto* c : cp.controllers) {
    if (c->alive()) c->corrupt_state(rng, node_space);
  }
}

}  // namespace ren::faults

// Fault injection (paper Sections 3.4 and 6.4).
//
// Benign faults: fail-stop of controllers and switches, permanent link
// failures — always chosen so that the surviving control-plane graph stays
// connected, as the paper's recovery guarantees assume. Transient faults:
// arbitrary state corruption of switches and controllers (rules, manager
// sets, replyDB, tags, transport labels, detector counters), driving the
// self-stabilization experiments.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "flows/graph.hpp"
#include "net/simulator.hpp"
#include "switchd/abstract_switch.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::faults {

/// The injector's handle on the system under test.
struct ControlPlane {
  net::Simulator* sim = nullptr;
  std::vector<core::Controller*> controllers;
  std::vector<switchd::AbstractSwitch*> switches;
  /// Switches that must stay alive (e.g. host attachment points).
  std::vector<NodeId> protected_switches;

  // --- Restorable-fault bookkeeping ---------------------------------------
  // Filled by the kill_*/fail_* helpers below so that restart_node and
  // restore_link/restore_all_links can undo exactly what was injected.
  // Keep one ControlPlane alive across inject+restore calls to use these.
  std::vector<NodeId> killed_nodes;  ///< in kill order
  /// Per killed node: links the kill took down, with their pre-kill state so
  /// restart_node puts back exactly what was there (a TransientDown link
  /// stays transiently down; already-permanent failures are not touched).
  std::map<NodeId, std::vector<std::pair<int, net::LinkState>>>
      kill_downed_links;
  std::vector<int> failed_links;  ///< indices failed via fail_link*()
};

/// The current control-plane topology over live nodes and non-permanently-
/// failed links (the injector's notion of Gc).
flows::TopoView control_topology(const ControlPlane& cp);

/// Fail-stop a specific node (controller or switch), recording the links the
/// kill takes down so restart_node can restore them later.
void kill_node(ControlPlane& cp, NodeId id);

/// Revive a fail-stopped node: restores the links its kill took down and
/// restarts its timers; it resumes with the stale state it crashed with
/// (self-stabilization recovers from that by design). Returns false when the
/// node is already alive.
bool restart_node(ControlPlane& cp, NodeId id);

/// Revive every node in `killed_nodes` (rolling-restart convenience).
/// Returns the revived ids.
std::vector<NodeId> restart_all_nodes(ControlPlane& cp);

/// Permanently fail a specific link. No connectivity check — the caller
/// chooses whether to honor the paper's connected-survivor assumption.
/// Returns false when the link does not exist or is already down.
bool fail_link(ControlPlane& cp, NodeId a, NodeId b);

/// Restore a permanently failed link to Up ("the fiber got fixed": any
/// transient state the link had before fail_link is deliberately forgotten).
/// Returns false when the link does not exist or is not permanently down.
bool restore_link(ControlPlane& cp, NodeId a, NodeId b);

/// Restore every link recorded in `failed_links`; returns how many.
std::size_t restore_all_links(ControlPlane& cp);

/// Fail-stop one live controller chosen uniformly at random (keeps at least
/// one controller alive). Returns its id, or kNoNode if impossible.
NodeId kill_random_controller(ControlPlane& cp, Rng& rng);

/// Fail-stop `count` distinct controllers simultaneously (Fig. 11).
std::vector<NodeId> kill_random_controllers(ControlPlane& cp, Rng& rng,
                                            int count);

/// Fail-stop one switch whose removal keeps the surviving control plane
/// connected and does not strand a protected switch. Returns kNoNode if no
/// candidate exists.
NodeId kill_random_switch(ControlPlane& cp, Rng& rng);

/// Fail-stop up to `count` switches one after another (cascading failures).
std::vector<NodeId> kill_random_switches(ControlPlane& cp, Rng& rng,
                                         int count);

/// Permanently fail one link. With `keep_connected` (the default, matching
/// the paper's assumptions) only links whose removal keeps the control plane
/// connected are candidates; without it any live link qualifies, which is
/// how a scenario provokes a real partition. Returns {kNoNode, kNoNode} if
/// no candidate exists.
std::pair<NodeId, NodeId> fail_random_link(ControlPlane& cp, Rng& rng,
                                           bool keep_connected = true);

/// Permanently fail up to `count` links simultaneously (Fig. 14).
std::vector<std::pair<NodeId, NodeId>> fail_random_links(
    ControlPlane& cp, Rng& rng, int count, bool keep_connected = true);

/// Transient-fault storm: corrupt the state of every switch and controller
/// (rules, managers, replyDB, tags, transport, detectors) in one step.
void corrupt_all_state(ControlPlane& cp, Rng& rng);

}  // namespace ren::faults

// Fault injection (paper Sections 3.4 and 6.4).
//
// Benign faults: fail-stop of controllers and switches, permanent link
// failures — always chosen so that the surviving control-plane graph stays
// connected, as the paper's recovery guarantees assume. Transient faults:
// arbitrary state corruption of switches and controllers (rules, manager
// sets, replyDB, tags, transport labels, detector counters), driving the
// self-stabilization experiments.
#pragma once

#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "flows/graph.hpp"
#include "net/simulator.hpp"
#include "switchd/abstract_switch.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::faults {

/// The injector's handle on the system under test.
struct ControlPlane {
  net::Simulator* sim = nullptr;
  std::vector<core::Controller*> controllers;
  std::vector<switchd::AbstractSwitch*> switches;
  /// Switches that must stay alive (e.g. host attachment points).
  std::vector<NodeId> protected_switches;
};

/// The current control-plane topology over live nodes and non-permanently-
/// failed links (the injector's notion of Gc).
flows::TopoView control_topology(const ControlPlane& cp);

/// Fail-stop one live controller chosen uniformly at random (keeps at least
/// one controller alive). Returns its id, or kNoNode if impossible.
NodeId kill_random_controller(ControlPlane& cp, Rng& rng);

/// Fail-stop `count` distinct controllers simultaneously (Fig. 11).
std::vector<NodeId> kill_random_controllers(ControlPlane& cp, Rng& rng,
                                            int count);

/// Fail-stop one switch whose removal keeps the surviving control plane
/// connected and does not strand a protected switch. Returns kNoNode if no
/// candidate exists.
NodeId kill_random_switch(ControlPlane& cp, Rng& rng);

/// Permanently fail one link whose removal keeps the control plane
/// connected. Returns {kNoNode, kNoNode} if no candidate exists.
std::pair<NodeId, NodeId> fail_random_link(ControlPlane& cp, Rng& rng);

/// Permanently fail up to `count` links simultaneously (Fig. 14).
std::vector<std::pair<NodeId, NodeId>> fail_random_links(ControlPlane& cp,
                                                         Rng& rng, int count);

/// Transient-fault storm: corrupt the state of every switch and controller
/// (rules, managers, replyDB, tags, transport, detectors) in one step.
void corrupt_all_state(ControlPlane& cp, Rng& rng);

}  // namespace ren::faults

#include "flows/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ren::flows {

namespace {

/// Bounded Pareto draw with the given mean and shape: scale x_m chosen so
/// the unbounded mean is `mean` (alpha > 1), capped at 10^4 x_m so a single
/// elephant cannot stall the workload window. u must be in (0, 1].
double bounded_pareto(double mean, double alpha, double u) {
  const double xm = mean * (alpha - 1.0) / alpha;
  return std::min(xm / std::pow(u, 1.0 / alpha), xm * 1e4);
}

}  // namespace

ChurnGenerator::ChurnGenerator(Graph graph, ChurnConfig config,
                               std::uint64_t seed, Time start)
    : graph_(std::move(graph)), config_(config), rng_(seed) {
  if (!(config_.rate > 0)) {
    throw std::invalid_argument("churn: rate must be > 0");
  }
  if (!(config_.alpha > 1.0)) {
    throw std::invalid_argument("churn: alpha must be > 1");
  }
  if (config_.zipf < 0) {
    throw std::invalid_argument("churn: zipf must be >= 0");
  }
  if (config_.priorities < 1) {
    throw std::invalid_argument("churn: priorities must be >= 1");
  }
  if (config_.mean_duration <= 0) {
    throw std::invalid_argument("churn: mean_duration must be > 0");
  }
  if (graph_.n() < 2) {
    throw std::invalid_argument("churn: graph needs >= 2 nodes");
  }
  // Zipf popularity by node id: weight(i) = 1 / (i+1)^zipf. Precomputed
  // cumulative weights turn every endpoint draw into one binary search.
  zipf_cdf_.resize(static_cast<std::size_t>(graph_.n()));
  double acc = 0;
  for (int i = 0; i < graph_.n(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf);
    zipf_cdf_[static_cast<std::size_t>(i)] = acc;
  }
  next_at_ = start + draw_gap();
}

Time ChurnGenerator::draw_gap() {
  // (0, 1]: keep Pareto's pow and Poisson's log away from u == 0.
  const double u = 1.0 - rng_.next_double();
  const double mean = 1.0 / config_.rate;
  const double gap = config_.dist == ChurnDist::Pareto
                         ? bounded_pareto(mean, config_.alpha, u)
                         : -std::log(u) * mean;
  return static_cast<Time>(gap * 1e6);
}

Time ChurnGenerator::draw_duration() {
  const double u = 1.0 - rng_.next_double();
  const double d =
      bounded_pareto(to_seconds(config_.mean_duration), config_.alpha, u);
  return std::max<Time>(1, static_cast<Time>(d * 1e6));
}

NodeId ChurnGenerator::draw_endpoint() {
  const double u = rng_.next_double() * zipf_cdf_.back();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - zipf_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(zipf_cdf_.size()) - 1));
  return static_cast<NodeId>(idx);
}

void ChurnGenerator::advance(Time until, std::vector<FlowArrival>& out) {
  while (next_at_ <= until) {
    FlowArrival a;
    a.id = next_id_++;
    a.at = next_at_;
    a.duration = draw_duration();
    a.src = draw_endpoint();
    // Re-draw the destination until it differs from the source; bounded in
    // expectation (the hottest node's weight share is < 1 for n >= 2).
    do {
      a.dst = draw_endpoint();
    } while (a.dst == a.src);
    a.prt = static_cast<Priority>(
        rng_.next_below(static_cast<std::uint64_t>(config_.priorities)));
    out.push_back(a);
    ++arrivals_;
    next_at_ += draw_gap();
  }
}

const std::vector<NodeId>& ChurnGenerator::tree_toward(NodeId dst) {
  auto it = trees_.find(dst);
  if (it != trees_.end()) return it->second;
  // BFS from dst over sorted adjacency with a FIFO queue: for every node v
  // the recorded hop is the first shortest-path neighbor toward dst — the
  // same "first shortest path" determinism contract Graph documents.
  std::vector<NodeId> next(static_cast<std::size_t>(graph_.n()), kNoNode);
  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(graph_.n()));
  std::vector<char> seen(static_cast<std::size_t>(graph_.n()), 0);
  seen[static_cast<std::size_t>(dst)] = 1;
  queue.push_back(dst);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (int v : graph_.neighbors(u)) {
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      next[static_cast<std::size_t>(v)] = u;
      queue.push_back(static_cast<NodeId>(v));
    }
  }
  return trees_.emplace(dst, std::move(next)).first->second;
}

NodeId ChurnGenerator::next_hop(NodeId v, NodeId dst) {
  if (v == dst || v < 0 || v >= graph_.n()) return kNoNode;
  return tree_toward(dst)[static_cast<std::size_t>(v)];
}

void ChurnGenerator::path_hops(NodeId src, NodeId dst,
                               std::vector<NodeId>& out) {
  out.clear();
  NodeId v = src;
  while (v != dst && v != kNoNode) {
    out.push_back(v);
    v = next_hop(v, dst);
  }
  if (v == kNoNode) out.clear();  // unreachable: install nothing
}

}  // namespace ren::flows

// Deterministic heavy-tailed flow-churn generator: the data-plane workload
// axis (ROADMAP "Million-flow data plane").
//
// The generator models production flow churn against the switch fabric:
// flow arrivals follow a bounded-Pareto (or exponential) interarrival
// process at a configurable mean rate, lifetimes are bounded-Pareto with
// shape alpha (heavy tail: most flows are mice, a few elephants dominate),
// and endpoints are drawn by Zipf popularity over the switch nodes (a few
// hot destinations absorb most flows, which is what makes priority-masked
// LRU vs reject-lowest eviction behave differently under pressure).
//
// Everything is a pure function of (graph, config, seed): one private Rng
// drives all draws in a fixed per-arrival order, so the emitted arrival
// stream is bit-reproducible at any --sim-threads value — the scenario
// engine drives the generator from harness-lane tick events, which the
// epoch-lockstep simulator executes only at barriers.
//
// The generator also owns the routing of flows: per-destination BFS
// next-hop trees over the switch graph ("first shortest path": sorted
// adjacency + FIFO queue, the same determinism contract as Graph), cached
// per destination, so the scenario engine can install one exact-match
// microflow entry per hop (switchd::FlowRule) without re-deriving paths.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "flows/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::flows {

/// Interarrival-time distribution of the churn workload.
enum class ChurnDist { Pareto, Poisson };

struct ChurnConfig {
  double rate = 1000.0;            ///< mean flow arrivals per second (> 0)
  Time mean_duration = msec(200);  ///< mean flow lifetime
  double alpha = 1.5;   ///< Pareto shape (> 1); closer to 1 = heavier tail
  double zipf = 1.0;    ///< endpoint popularity skew (0 = uniform)
  int priorities = 4;   ///< flow priorities drawn uniformly from [0, this)
  ChurnDist dist = ChurnDist::Pareto;
};

/// One flow arrival emitted by the generator.
struct FlowArrival {
  std::uint64_t id = 0;  ///< unique per generator, starts at 1
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Time at = 0;
  Time duration = 0;
  Priority prt = 0;
};

class ChurnGenerator {
 public:
  /// `graph` is the switch fabric (node ids = switch NodeIds); `start` is
  /// the simulated time of the first interarrival draw.
  ChurnGenerator(Graph graph, ChurnConfig config, std::uint64_t seed,
                 Time start);

  /// Pop every arrival with `at <= until`, in arrival order.
  void advance(Time until, std::vector<FlowArrival>& out);

  /// Deterministic shortest-path next hop from `v` toward `dst` (kNoNode
  /// when unreachable or v == dst). BFS trees are cached per destination.
  [[nodiscard]] NodeId next_hop(NodeId v, NodeId dst);

  /// The hop sequence src, ..., last-before-dst a flow's microflow entries
  /// are installed on (empty when src == dst or dst is unreachable).
  void path_hops(NodeId src, NodeId dst, std::vector<NodeId>& out);

  [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }
  [[nodiscard]] const ChurnConfig& config() const { return config_; }

 private:
  [[nodiscard]] Time draw_gap();
  [[nodiscard]] Time draw_duration();
  [[nodiscard]] NodeId draw_endpoint();
  const std::vector<NodeId>& tree_toward(NodeId dst);

  Graph graph_;
  ChurnConfig config_;
  Rng rng_;
  Time next_at_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t arrivals_ = 0;
  std::vector<double> zipf_cdf_;  ///< cumulative endpoint weights, by node id
  /// dst -> next-hop-toward-dst per node (kNoNode = unreachable / is dst).
  std::map<NodeId, std::vector<NodeId>> trees_;
};

}  // namespace ren::flows

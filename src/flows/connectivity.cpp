#include "flows/connectivity.hpp"

#include <algorithm>
#include <stdexcept>

namespace ren::flows {

// --- SparseMaxFlow -----------------------------------------------------------

void SparseMaxFlow::assign(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.n());
  off_.assign(n + 1, 0);
  for (int u = 0; u < g.n(); ++u) {
    off_[static_cast<std::size_t>(u) + 1] =
        off_[static_cast<std::size_t>(u)] +
        static_cast<std::int32_t>(g.neighbors(u).size());
  }
  const auto slots = static_cast<std::size_t>(off_[n]);
  arcs_.resize(slots);
  // Each undirected edge {u, v} with u < v becomes the arc pair (2i, 2i+1):
  // 2i is u->v, 2i+1 is v->u, and arc e's reverse is e^1. Both start at
  // capacity 1 (the undirected unit edge can carry one unit either way;
  // augmenting u->v leaves v->u at 2, which encodes "cancel + reuse").
  to_.resize(slots);
  std::vector<std::int32_t> cursor(off_.begin(), off_.end() - 1);
  std::int32_t next_arc = 0;
  for (int u = 0; u < g.n(); ++u) {
    for (int v : g.neighbors(u)) {
      if (u < v) {
        const std::int32_t fwd = next_arc++;
        const std::int32_t rev = next_arc++;
        to_[static_cast<std::size_t>(fwd)] = v;
        to_[static_cast<std::size_t>(rev)] = u;
        arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = fwd;
        arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = rev;
      }
    }
  }
  cap_.resize(slots);
  parent_.assign(n, -1);
  queue_.clear();
  queue_.reserve(n);
}

int SparseMaxFlow::run(int s, int t, int cap_limit) {
  if (s == t || n() == 0) return 0;
  std::fill(cap_.begin(), cap_.end(), std::int8_t{1});
  int flow = 0;
  while (flow < cap_limit) {
    std::fill(parent_.begin(), parent_.end(), -1);
    parent_[static_cast<std::size_t>(s)] = -2;  // any non-(-1) sentinel
    queue_.clear();
    queue_.push_back(s);
    for (std::size_t head = 0;
         head < queue_.size() && parent_[static_cast<std::size_t>(t)] == -1;
         ++head) {
      const std::int32_t u = queue_[head];
      const std::int32_t end = off_[static_cast<std::size_t>(u) + 1];
      for (std::int32_t i = off_[static_cast<std::size_t>(u)]; i < end; ++i) {
        const std::int32_t e = arcs_[static_cast<std::size_t>(i)];
        if (cap_[static_cast<std::size_t>(e)] <= 0) continue;
        const std::int32_t v = to_[static_cast<std::size_t>(e)];
        if (parent_[static_cast<std::size_t>(v)] != -1) continue;
        parent_[static_cast<std::size_t>(v)] = e;  // arc that discovered v
        queue_.push_back(v);
      }
    }
    if (parent_[static_cast<std::size_t>(t)] == -1) break;
    for (std::int32_t v = t; v != s;) {
      const std::int32_t e = parent_[static_cast<std::size_t>(v)];
      cap_[static_cast<std::size_t>(e)] -= 1;
      cap_[static_cast<std::size_t>(e ^ 1)] += 1;
      v = to_[static_cast<std::size_t>(e ^ 1)];  // tail of e
    }
    ++flow;
  }
  return flow;
}

// --- ConnectivityOracle ------------------------------------------------------

void ConnectivityOracle::assign(const Graph& g) {
  ++stats_.assigns;
  const std::uint64_t fp = g.fingerprint();
  if (bound_ && fp == fingerprint_) {
    ++stats_.memo_hits;
    return;
  }
  ++stats_.rebinds;
  bound_ = true;
  fingerprint_ = fp;
  graph_ = g;
  flow_.assign(g);
  lambda_ = -1;
  pair_memo_.clear();
  lower_bound_.clear();

  const auto n = static_cast<std::size_t>(g.n());
  parent_.assign(n, -1);
  queue_.clear();
  queue_.reserve(n);
  std::size_t slots = 0;
  for (int u = 0; u < g.n(); ++u) slots += g.neighbors(u).size();
  used_stamp_.assign(slots, 0);
  stamp_ = 0;
}

int ConnectivityOracle::edge_connectivity() {
  if (!bound_) throw std::logic_error("ConnectivityOracle: assign() first");
  if (lambda_ >= 0) {
    ++stats_.memo_hits;
    return lambda_;
  }
  const int n = graph_.n();
  if (n < 2 || !graph_.connected()) return lambda_ = 0;
  // lambda(G) = min over t != 0 of maxflow(0, t); every cut separates node 0
  // from some t. Capping each run at the best-so-far is sound for a min, and
  // the degree of node 0 is an upper bound to start from.
  int best = static_cast<int>(graph_.neighbors(0).size());
  for (int t = 1; t < n && best > 0; ++t) {
    const int d = static_cast<int>(graph_.neighbors(t).size());
    if (d >= best) {
      // A capped run returning `best` can't lower the min; only nodes whose
      // degree is already below it can. Still run it capped: degree >= best
      // does not imply flow >= best.
      ++stats_.maxflow_runs;
      best = std::min(best, flow_.run(0, t, best));
    } else {
      ++stats_.maxflow_runs;
      best = std::min(best, flow_.run(0, t, d));
    }
  }
  return lambda_ = best;
}

int ConnectivityOracle::pair_connectivity(int s, int t) {
  if (!bound_) throw std::logic_error("ConnectivityOracle: assign() first");
  if (s == t) return 0;
  const auto key = std::minmax(s, t);
  if (auto it = pair_memo_.find(key); it != pair_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  ++stats_.maxflow_runs;
  const int v = flow_.run(s, t, graph_.n());
  pair_memo_[key] = v;
  lower_bound_[key] = v;  // exact value is also the tightest lower bound
  return v;
}

bool ConnectivityOracle::at_least(int s, int t, int k) {
  if (!bound_) throw std::logic_error("ConnectivityOracle: assign() first");
  if (k <= 0) return true;
  if (s == t) return false;
  const int ds = static_cast<int>(graph_.neighbors(s).size());
  const int dt = static_cast<int>(graph_.neighbors(t).size());
  if (std::min(ds, dt) < k) {
    ++stats_.degree_hits;
    return false;
  }
  const auto key = std::minmax(s, t);
  if (auto it = pair_memo_.find(key); it != pair_memo_.end()) {
    ++stats_.memo_hits;
    return it->second >= k;
  }
  auto [lb_it, inserted] = lower_bound_.try_emplace(key, 0);
  if (lb_it->second >= k) {
    ++stats_.memo_hits;
    return true;
  }
  const int greedy = greedy_lower_bound(s, t, k);
  lb_it->second = std::max(lb_it->second, greedy);
  if (greedy >= k) {
    ++stats_.greedy_hits;
    return true;
  }
  // Greedy is only a lower bound (its paths need not extend to a maximum
  // disjoint set), so a miss needs the exact answer — capped at k.
  ++stats_.maxflow_runs;
  const int exact = flow_.run(s, t, k);
  if (exact < k) pair_memo_[key] = exact;  // capped at k but flow stopped
                                           // short of the cap => exact value
  lb_it->second = std::max(lb_it->second, exact);
  return exact >= k;
}

int ConnectivityOracle::greedy_lower_bound(int s, int t, int target) {
  // Repeated BFS over arcs not yet claimed by an earlier path. Each round
  // extracts one shortest s-t path and marks its arcs (both directions of
  // each undirected edge) used. No residual cancellation — that is what
  // keeps it a lower bound and O(target * m).
  //
  // Arc slot identity: slot i of node u is u's i-th sorted neighbor, and the
  // global slot index is offset(u) + i, where offset accumulates degrees.
  const int n = graph_.n();
  std::vector<std::int32_t> offset(static_cast<std::size_t>(n) + 1, 0);
  for (int u = 0; u < n; ++u) {
    offset[static_cast<std::size_t>(u) + 1] =
        offset[static_cast<std::size_t>(u)] +
        static_cast<std::int32_t>(graph_.neighbors(u).size());
  }
  if (++stamp_ == 0) {
    std::fill(used_stamp_.begin(), used_stamp_.end(), 0);
    stamp_ = 1;
  }
  auto slot_of = [&](int u, int v) {
    const auto& nbrs = graph_.neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    return offset[static_cast<std::size_t>(u)] +
           static_cast<std::int32_t>(it - nbrs.begin());
  };
  int found = 0;
  while (found < target) {
    std::fill(parent_.begin(), parent_.end(), -1);
    parent_[static_cast<std::size_t>(s)] = s;
    queue_.clear();
    queue_.push_back(s);
    bool hit = false;
    for (std::size_t head = 0; head < queue_.size() && !hit; ++head) {
      const std::int32_t u = queue_[head];
      const auto& nbrs = graph_.neighbors(u);
      const std::int32_t base = offset[static_cast<std::size_t>(u)];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int v = nbrs[i];
        if (parent_[static_cast<std::size_t>(v)] != -1) continue;
        if (used_stamp_[static_cast<std::size_t>(base) + i] == stamp_) continue;
        parent_[static_cast<std::size_t>(v)] = u;
        if (v == t) {
          hit = true;
          break;
        }
        queue_.push_back(v);
      }
    }
    if (!hit) break;
    for (int v = t; v != s;) {
      const int u = parent_[static_cast<std::size_t>(v)];
      used_stamp_[static_cast<std::size_t>(slot_of(u, v))] = stamp_;
      used_stamp_[static_cast<std::size_t>(slot_of(v, u))] = stamp_;
      v = u;
    }
    ++found;
  }
  return found;
}

}  // namespace ren::flows

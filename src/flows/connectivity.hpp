// Sparse connectivity machinery for 1k+ switch fabrics.
//
// The seed computed unit-capacity max-flows over a flat n x n residual
// matrix — a 2 MiB allocation per (s, t) pair at 1,000 nodes, touched n-1
// times by edge_connectivity(). Two replacements:
//
//  * SparseMaxFlow  — Edmonds-Karp over a paired-arc adjacency list (CSR of
//                     arc ids, residual capacities per arc). Memory is O(m),
//                     buffers are reused across runs on the same graph, and
//                     a run resets only the 2m arc capacities.
//  * ConnectivityOracle — an incremental connectivity-certificate cache on
//                     top of SparseMaxFlow: keyed on the graph's content
//                     fingerprint, it memoizes the global edge connectivity
//                     and per-pair values, and answers threshold queries
//                     ("are s,t at least k-edge-connected?") from a greedy
//                     disjoint-path lower-bound certificate whenever
//                     possible, falling back to an exact max-flow capped at
//                     k. Re-assigning the same graph (same fingerprint)
//                     keeps every memo — that is what makes repeated
//                     Definition-1-adjacent checks on an unchanged fabric
//                     O(1) after the first evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "flows/graph.hpp"

namespace ren::flows {

/// Reusable unit-capacity max-flow over an undirected Graph. Each undirected
/// edge becomes a pair of arcs (e, e^1) with capacity 1 each; augmenting
/// along one direction refunds the other. No n x n residual matrix exists
/// anywhere: peak memory is O(n + m).
class SparseMaxFlow {
 public:
  SparseMaxFlow() = default;
  explicit SparseMaxFlow(const Graph& g) { assign(g); }

  /// Snapshot `g`'s adjacency into the arc arena. Buffers are reused.
  void assign(const Graph& g);

  [[nodiscard]] int n() const { return static_cast<int>(off_.empty() ? 0 : off_.size() - 1); }

  /// Max s->t flow, stopping early once `cap_limit` augmenting paths were
  /// found (callers that only need "at least k" pass k). Resets the residual
  /// capacities (O(m)) and runs BFS augmentation from scratch.
  int run(int s, int t, int cap_limit);

 private:
  std::vector<std::int32_t> off_;     // CSR: node -> first arc-slot
  std::vector<std::int32_t> arcs_;    // arc ids per node (CSR payload)
  std::vector<std::int32_t> to_;      // arc id -> head node
  std::vector<std::int8_t> cap_;      // arc id -> residual capacity (0..2)
  std::vector<std::int32_t> parent_;  // BFS: arc that discovered each node
  std::vector<std::int32_t> queue_;   // BFS scratch
};

/// Incremental connectivity-certificate cache over one graph version.
///
/// assign() binds the oracle to a graph snapshot; when the snapshot's
/// fingerprint matches the previous one the certificate state (global
/// lambda, per-pair memos) survives, so a monitor that re-checks an
/// unchanged fabric pays nothing. A changed fingerprint drops every memo.
class ConnectivityOracle {
 public:
  struct Stats {
    std::uint64_t assigns = 0;        ///< assign() calls
    std::uint64_t rebinds = 0;        ///< assigns that found a changed graph
    std::uint64_t greedy_hits = 0;    ///< threshold answers from the greedy
                                      ///< disjoint-path certificate alone
    std::uint64_t degree_hits = 0;    ///< threshold answers from degree bounds
    std::uint64_t maxflow_runs = 0;   ///< exact (capped) max-flow evaluations
    std::uint64_t memo_hits = 0;      ///< per-pair / lambda memo replays
  };

  /// Bind to `g`. Cheap when the content fingerprint is unchanged.
  void assign(const Graph& g);

  /// True when assign() has been called at least once.
  [[nodiscard]] bool bound() const { return bound_; }

  /// lambda(G): global edge connectivity. Memoized per graph version.
  int edge_connectivity();

  /// Exact number of edge-disjoint s-t paths. Memoized per (s, t).
  int pair_connectivity(int s, int t);

  /// Are there >= k edge-disjoint s-t paths? Answered by (in order) the
  /// endpoint degree bound, the per-pair memo, a greedy disjoint-path
  /// lower-bound certificate, and finally an exact max-flow capped at k.
  bool at_least(int s, int t, int k);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  /// Greedy BFS edge-disjoint path count (a lower bound on the true value),
  /// stopping once `target` paths were found.
  int greedy_lower_bound(int s, int t, int target);

  bool bound_ = false;
  std::uint64_t fingerprint_ = 0;
  Graph graph_;  ///< bound snapshot (the greedy walk needs adjacency)
  SparseMaxFlow flow_;
  int lambda_ = -1;  ///< memoized edge connectivity, -1 = not yet computed
  std::map<std::pair<int, int>, int> pair_memo_;  ///< exact values
  /// (s, t) -> best known lower bound (greedy certificates accumulate here;
  /// a threshold query below the bound never reruns the search).
  std::map<std::pair<int, int>, int> lower_bound_;
  Stats stats_;

  // Greedy-walk scratch, reused across queries.
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> queue_;
  std::vector<std::uint32_t> used_stamp_;  ///< per directed arc slot
  std::uint32_t stamp_ = 0;
};

}  // namespace ren::flows

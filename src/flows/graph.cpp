#include "flows/graph.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "flows/connectivity.hpp"

namespace ren::flows {

// --- Graph ------------------------------------------------------------------

std::size_t Graph::edge_count() const {
  std::size_t deg = 0;
  for (const auto& a : adj_) deg += a.size();
  return deg / 2;
}

void Graph::add_edge(int a, int b) {
  ensure(std::max(a, b) + 1);
  auto insert_sorted = [](std::vector<int>& v, int x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) v.insert(it, x);
  };
  insert_sorted(adj_[static_cast<std::size_t>(a)], b);
  insert_sorted(adj_[static_cast<std::size_t>(b)], a);
}

void Graph::remove_edge(int a, int b) {
  auto erase_sorted = [](std::vector<int>& v, int x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it != v.end() && *it == x) v.erase(it);
  };
  if (a < n() && b < n()) {
    erase_sorted(adj_[static_cast<std::size_t>(a)], b);
    erase_sorted(adj_[static_cast<std::size_t>(b)], a);
  }
}

bool Graph::has_edge(int a, int b) const {
  if (a >= n() || b >= n()) return false;
  const auto& v = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(v.begin(), v.end(), b);
}

std::vector<int> Graph::bfs_dist(int src) const {
  std::vector<int> dist(static_cast<std::size_t>(n()), -1);
  std::deque<int> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push_back(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop_front();
    for (int v : adj_[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (n() == 0) return true;
  const auto d = bfs_dist(0);
  return std::none_of(d.begin(), d.end(), [](int x) { return x < 0; });
}

int Graph::diameter() const {
  int best = 0;
  for (int s = 0; s < n(); ++s) {
    for (int d : bfs_dist(s)) best = std::max(best, d);
  }
  return best;
}

int Graph::edge_disjoint_path_count(int s, int t) const {
  if (s == t) return 0;
  SparseMaxFlow flow(*this);
  return flow.run(s, t, n());
}

int Graph::edge_connectivity() const {
  if (n() < 2) return 0;
  if (!connected()) return 0;
  // lambda(G) = min over t != 0 of maxflow(0, t): every cut separates node 0
  // from some t. One SparseMaxFlow instance serves all n-1 runs (a run only
  // resets the O(m) residual capacities), and each run is capped at the
  // running minimum — a flow can't raise the min, so pushing past the best
  // known cut is wasted work. deg(0) seeds the bound.
  SparseMaxFlow flow(*this);
  int best = static_cast<int>(neighbors(0).size());
  for (int t = 1; t < n() && best > 0; ++t) {
    best = std::min(best, flow.run(0, t, best));
  }
  return best;
}

std::uint64_t Graph::fingerprint() const {
  // FNV-1a over the sorted adjacency structure, node count included so that
  // isolated trailing nodes change the hash.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(n()));
  for (int u = 0; u < n(); ++u) {
    mix(static_cast<std::uint64_t>(u) + 0x9e37);
    for (int v : adj_[static_cast<std::size_t>(u)]) {
      mix(static_cast<std::uint64_t>(v) + 0x85eb);
    }
  }
  return h;
}

// --- TopoView ---------------------------------------------------------------

void TopoView::add_edge(NodeId a, NodeId b) {
  auto& v = adj_[a];
  auto it = std::lower_bound(v.begin(), v.end(), b);
  if (it == v.end() || *it != b) v.insert(it, b);
  adj_[b];  // the claimed neighbor becomes a node of the view
}

bool TopoView::has_edge(NodeId a, NodeId b) const {
  auto it = adj_.find(a);
  if (it == adj_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), b);
}

std::size_t TopoView::edge_count() const {
  std::size_t deg = 0;
  for (const auto& [_, nbrs] : adj_) deg += nbrs.size();
  return deg;
}

const std::vector<NodeId>* TopoView::neighbors(NodeId n) const {
  auto it = adj_.find(n);
  return it == adj_.end() ? nullptr : &it->second;
}

std::vector<NodeId> TopoView::reachable_set(NodeId from) const {
  std::vector<NodeId> out;
  if (!has_node(from)) return out;
  std::set<NodeId> seen{from};
  std::deque<NodeId> q{from};
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    out.push_back(u);
    if (const auto* nbrs = neighbors(u)) {
      for (NodeId v : *nbrs) {
        if (seen.insert(v).second) q.push_back(v);
      }
    }
  }
  return out;
}

bool TopoView::reachable(NodeId from, NodeId to) const {
  if (from == to) return has_node(from);
  if (!has_node(from)) return false;
  std::set<NodeId> seen{from};
  std::deque<NodeId> q{from};
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    if (const auto* nbrs = neighbors(u)) {
      for (NodeId v : *nbrs) {
        if (v == to) return true;
        if (seen.insert(v).second) q.push_back(v);
      }
    }
  }
  return false;
}

// --- FlatView ---------------------------------------------------------------

void FlatView::assign(const TopoView& view) {
  const auto n = view.adj().size();
  ids_.clear();
  ids_.reserve(n);
  off_.clear();
  off_.reserve(n + 1);
  nbr_.clear();
  nbr_.reserve(view.edge_count());
  for (const auto& [id, _] : view.adj()) ids_.push_back(id);

  // Direct id -> index table when the id range is reasonably dense (the
  // protocol's ids are 0..N-1; only corrupt replies fabricate outliers).
  const NodeId max_id = ids_.empty() ? -1 : ids_.back();
  const bool dense = max_id >= 0 &&
                     static_cast<std::size_t>(max_id) < 4 * n + 1024;
  direct_.clear();
  if (dense) {
    direct_.assign(static_cast<std::size_t>(max_id) + 1, -1);
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] >= 0) direct_[static_cast<std::size_t>(ids_[i])] =
          static_cast<std::int32_t>(i);
    }
  }

  off_.push_back(0);
  for (const auto& [_, nbrs] : view.adj()) {
    for (NodeId v : nbrs) {
      // Claimed neighbors are always nodes of the view (TopoView::add_edge).
      nbr_.push_back(static_cast<std::int32_t>(index_of(v)));
    }
    off_.push_back(static_cast<std::int32_t>(nbr_.size()));
  }
  mark_.assign(ids_.size(), 0);
  stamp_ = 0;
}

int FlatView::index_of(NodeId id) const {
  if (!direct_.empty()) {
    if (id < 0 || static_cast<std::size_t>(id) >= direct_.size()) return -1;
    return direct_[static_cast<std::size_t>(id)];
  }
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return -1;
  return static_cast<int>(it - ids_.begin());
}

void FlatView::reachable_from(NodeId from, std::vector<NodeId>& out) {
  if (++stamp_ == 0) {  // stamp wrapped: reset marks once, restart at 1
    std::fill(mark_.begin(), mark_.end(), 0);
    stamp_ = 1;
  }
  const int src = index_of(from);
  if (src < 0) return;
  queue_.clear();
  queue_.push_back(src);
  mark_[static_cast<std::size_t>(src)] = stamp_;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::int32_t u = queue_[head];
    out.push_back(ids_[static_cast<std::size_t>(u)]);
    const std::int32_t end = off_[static_cast<std::size_t>(u) + 1];
    for (std::int32_t e = off_[static_cast<std::size_t>(u)]; e < end; ++e) {
      const std::int32_t v = nbr_[static_cast<std::size_t>(e)];
      if (mark_[static_cast<std::size_t>(v)] != stamp_) {
        mark_[static_cast<std::size_t>(v)] = stamp_;
        queue_.push_back(v);
      }
    }
  }
}

bool FlatView::reached(NodeId id) const {
  if (stamp_ == 0) return false;  // no reachable_from() since assign()
  const int idx = index_of(id);
  return idx >= 0 && mark_[static_cast<std::size_t>(idx)] == stamp_;
}

std::uint64_t TopoView::fingerprint() const {
  // FNV-1a over the sorted adjacency structure.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (const auto& [node, nbrs] : adj_) {
    mix(static_cast<std::uint64_t>(node) + 0x9e37);
    for (NodeId v : nbrs) mix(static_cast<std::uint64_t>(v) + 0x85eb);
  }
  return h;
}

}  // namespace ren::flows

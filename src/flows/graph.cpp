#include "flows/graph.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace ren::flows {

// --- Graph ------------------------------------------------------------------

std::size_t Graph::edge_count() const {
  std::size_t deg = 0;
  for (const auto& a : adj_) deg += a.size();
  return deg / 2;
}

void Graph::add_edge(int a, int b) {
  ensure(std::max(a, b) + 1);
  auto insert_sorted = [](std::vector<int>& v, int x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) v.insert(it, x);
  };
  insert_sorted(adj_[static_cast<std::size_t>(a)], b);
  insert_sorted(adj_[static_cast<std::size_t>(b)], a);
}

void Graph::remove_edge(int a, int b) {
  auto erase_sorted = [](std::vector<int>& v, int x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it != v.end() && *it == x) v.erase(it);
  };
  if (a < n() && b < n()) {
    erase_sorted(adj_[static_cast<std::size_t>(a)], b);
    erase_sorted(adj_[static_cast<std::size_t>(b)], a);
  }
}

bool Graph::has_edge(int a, int b) const {
  if (a >= n() || b >= n()) return false;
  const auto& v = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(v.begin(), v.end(), b);
}

std::vector<int> Graph::bfs_dist(int src) const {
  std::vector<int> dist(static_cast<std::size_t>(n()), -1);
  std::deque<int> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push_back(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop_front();
    for (int v : adj_[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (n() == 0) return true;
  const auto d = bfs_dist(0);
  return std::none_of(d.begin(), d.end(), [](int x) { return x < 0; });
}

int Graph::diameter() const {
  int best = 0;
  for (int s = 0; s < n(); ++s) {
    for (int d : bfs_dist(s)) best = std::max(best, d);
  }
  return best;
}

namespace {

// Unit-capacity max-flow via repeated BFS augmentation (Edmonds-Karp on the
// residual multigraph). Small graphs only; fine for tests and generators.
int unit_max_flow(const Graph& g, int s, int t, int cap_limit) {
  const int n = g.n();
  // residual capacity per directed pair, stored sparsely.
  std::map<std::pair<int, int>, int> cap;
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) cap[{u, v}] = 1;
  }
  int flow = 0;
  while (flow < cap_limit) {
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    parent[static_cast<std::size_t>(s)] = s;
    std::deque<int> q{s};
    while (!q.empty() && parent[static_cast<std::size_t>(t)] < 0) {
      const int u = q.front();
      q.pop_front();
      for (int v : g.neighbors(u)) {
        if (parent[static_cast<std::size_t>(v)] < 0 && cap[{u, v}] > 0) {
          parent[static_cast<std::size_t>(v)] = u;
          q.push_back(v);
        }
      }
    }
    if (parent[static_cast<std::size_t>(t)] < 0) break;
    for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
      const int u = parent[static_cast<std::size_t>(v)];
      cap[{u, v}] -= 1;
      cap[{v, u}] += 1;
    }
    ++flow;
  }
  return flow;
}

}  // namespace

int Graph::edge_disjoint_path_count(int s, int t) const {
  if (s == t) return 0;
  return unit_max_flow(*this, s, t, n());
}

int Graph::edge_connectivity() const {
  if (n() < 2) return 0;
  if (!connected()) return 0;
  // lambda(G) = min over t != 0 of maxflow(0, t).
  int best = n();
  for (int t = 1; t < n(); ++t) {
    best = std::min(best, edge_disjoint_path_count(0, t));
    if (best == 0) break;
  }
  return best;
}

// --- TopoView ---------------------------------------------------------------

void TopoView::add_edge(NodeId a, NodeId b) {
  auto& v = adj_[a];
  auto it = std::lower_bound(v.begin(), v.end(), b);
  if (it == v.end() || *it != b) v.insert(it, b);
  adj_[b];  // the claimed neighbor becomes a node of the view
}

bool TopoView::has_edge(NodeId a, NodeId b) const {
  auto it = adj_.find(a);
  if (it == adj_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), b);
}

std::size_t TopoView::edge_count() const {
  std::size_t deg = 0;
  for (const auto& [_, nbrs] : adj_) deg += nbrs.size();
  return deg;
}

const std::vector<NodeId>* TopoView::neighbors(NodeId n) const {
  auto it = adj_.find(n);
  return it == adj_.end() ? nullptr : &it->second;
}

std::vector<NodeId> TopoView::reachable_set(NodeId from) const {
  std::vector<NodeId> out;
  if (!has_node(from)) return out;
  std::set<NodeId> seen{from};
  std::deque<NodeId> q{from};
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop_front();
    out.push_back(u);
    if (const auto* nbrs = neighbors(u)) {
      for (NodeId v : *nbrs) {
        if (seen.insert(v).second) q.push_back(v);
      }
    }
  }
  return out;
}

bool TopoView::reachable(NodeId from, NodeId to) const {
  if (from == to) return has_node(from);
  const auto set = reachable_set(from);
  return std::find(set.begin(), set.end(), to) != set.end();
}

std::uint64_t TopoView::fingerprint() const {
  // FNV-1a over the sorted adjacency structure.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (const auto& [node, nbrs] : adj_) {
    mix(static_cast<std::uint64_t>(node) + 0x9e37);
    for (NodeId v : nbrs) mix(static_cast<std::uint64_t>(v) + 0x85eb);
  }
  return h;
}

}  // namespace ren::flows

// Graph primitives shared by the rule compiler, the topology generators and
// the controllers' topology views.
//
// Two representations:
//  * Graph     — compact, index-based, for generators and whole-network
//                algorithms (diameter, edge connectivity).
//  * TopoView  — sparse, NodeId-keyed, for what a controller *believes* the
//                topology to be (paper: G(S) built from query replies).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/types.hpp"

namespace ren::flows {

class Graph {
 public:
  explicit Graph(int n = 0) : adj_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] int n() const { return static_cast<int>(adj_.size()); }
  [[nodiscard]] std::size_t edge_count() const;

  void ensure(int n) {
    if (n > this->n()) adj_.resize(static_cast<std::size_t>(n));
  }
  /// Add an undirected edge (idempotent). Keeps adjacency sorted, which
  /// makes path computations deterministic ("first shortest path").
  void add_edge(int a, int b);
  void remove_edge(int a, int b);
  [[nodiscard]] bool has_edge(int a, int b) const;
  [[nodiscard]] const std::vector<int>& neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// BFS distances from src; unreachable = -1.
  [[nodiscard]] std::vector<int> bfs_dist(int src) const;
  [[nodiscard]] bool connected() const;
  /// Largest shortest-path distance over all reachable pairs.
  [[nodiscard]] int diameter() const;
  /// Global edge connectivity lambda(G) (unit-capacity max-flow based).
  [[nodiscard]] int edge_connectivity() const;
  /// Max number of edge-disjoint paths between s and t (unit-cap max-flow).
  [[nodiscard]] int edge_disjoint_path_count(int s, int t) const;

  /// Stable content hash (FNV-1a over the sorted adjacency). Used to key
  /// connectivity-certificate caches on a specific graph version.
  [[nodiscard]] std::uint64_t fingerprint() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::vector<int>> adj_;
};

/// A controller's accumulated knowledge of the topology. Node set and edge
/// set follow the paper's G(S) definition: nodes are reply senders and their
/// claimed neighbors; edges are *directed* from a sender to each claimed
/// neighbor. Directed evidence is what makes recovery from state corruption
/// possible: a single corrupted reply can fabricate edges out of its sender,
/// but never paths *into* a real node, so queries keep reaching every real
/// node and fresh replies flush the corruption. In a converged view every
/// physical link is reported by both endpoints, so the view coincides with
/// the symmetric ground-truth topology.
class TopoView {
 public:
  void add_node(NodeId n) { adj_[n]; }
  /// Add the directed edge a -> b (idempotent).
  void add_edge(NodeId a, NodeId b);
  /// Add both directions (used when building ground-truth views).
  void add_sym_edge(NodeId a, NodeId b) {
    add_edge(a, b);
    add_edge(b, a);
  }

  [[nodiscard]] bool has_node(NodeId n) const { return adj_.count(n) != 0; }
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  /// Number of directed edges.
  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] const std::map<NodeId, std::vector<NodeId>>& adj() const {
    return adj_;
  }
  /// Out-neighbors of n (claimed by n itself), or nullptr.
  [[nodiscard]] const std::vector<NodeId>* neighbors(NodeId n) const;

  /// Nodes reachable from `from` along directed edges (including `from`).
  [[nodiscard]] std::vector<NodeId> reachable_set(NodeId from) const;
  /// Early-exit BFS: stops as soon as `to` is dequeued-to instead of
  /// materializing (and then linearly scanning) the full reachable set.
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const;

  /// Stable content hash for caching compiled rules per view.
  [[nodiscard]] std::uint64_t fingerprint() const;

  friend bool operator==(const TopoView&, const TopoView&) = default;

 private:
  std::map<NodeId, std::vector<NodeId>> adj_;  // sorted unique out-neighbors
};

/// An index-dense snapshot of a TopoView: node ids are mapped to compact
/// indices 0..n-1 (in the view's sorted node order) with CSR adjacency, so
/// reachability runs as an integer BFS over flat arrays instead of a
/// std::set-seeded walk over std::map adjacency. The visited array is
/// epoch-stamped: re-assigning or re-running BFS bumps the stamp instead of
/// clearing, and the scratch buffers are retained across assign() calls, so
/// a long-lived FlatView (one per cached controller view) allocates nothing
/// in steady state.
class FlatView {
 public:
  FlatView() = default;

  /// Snapshot `view`. Reuses this instance's buffers.
  void assign(const TopoView& view);

  [[nodiscard]] int n() const { return static_cast<int>(ids_.size()); }
  /// Compact index of `id`, or -1 when the node is not in the snapshot.
  /// O(1) for the dense ids the protocol produces (a direct table covers
  /// them); corrupt out-of-range ids fall back to a binary search.
  [[nodiscard]] int index_of(NodeId id) const;
  [[nodiscard]] NodeId id_at(int idx) const {
    return ids_[static_cast<std::size_t>(idx)];
  }

  /// BFS along directed edges from `from`, appending reached node ids to
  /// `out` in BFS order (including `from`). Visited stamps stay in place, so
  /// `reached()` afterwards answers membership in O(1). Does nothing when
  /// `from` is not in the snapshot.
  void reachable_from(NodeId from, std::vector<NodeId>& out);
  /// Membership in the most recent reachable_from() run.
  [[nodiscard]] bool reached(NodeId id) const;

 private:
  std::vector<NodeId> ids_;           // sorted node ids (map order)
  std::vector<std::int32_t> direct_;  // id -> index table for dense ids
  std::vector<std::int32_t> off_;     // CSR offsets (size n+1)
  std::vector<std::int32_t> nbr_;     // CSR neighbor indices
  std::vector<std::uint32_t> mark_;   // epoch-stamped visited array
  std::vector<std::int32_t> queue_;   // BFS scratch
  std::uint32_t stamp_ = 0;
};

}  // namespace ren::flows

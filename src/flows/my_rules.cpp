#include "flows/my_rules.hpp"

#include <algorithm>
#include <deque>

namespace ren::flows {

bool rule_order(const proto::Rule& a, const proto::Rule& b) {
  if (a.dest != b.dest) return a.dest < b.dest;
  if (a.src != b.src) return a.src < b.src;
  return a.prt > b.prt;
}

namespace {

/// Effective transit map over all view nodes: nodes of unknown kind are
/// optimistically treated as switches (the compilation is refreshed once
/// their reply reveals otherwise); `owner` never relays its own flows.
std::map<NodeId, bool> effective_transit(
    const TopoView& view, NodeId owner,
    const std::map<NodeId, bool>& is_transit) {
  std::map<NodeId, bool> transit;
  for (const auto& [n, _] : view.adj()) {
    if (n == owner) {
      transit[n] = false;
      continue;
    }
    auto it = is_transit.find(n);
    transit[n] = (it == is_transit.end()) ? true : it->second;
  }
  return transit;
}

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

/// Shortest s->t path whose interior nodes are transit, avoiding edges in
/// `used`. Deterministic (neighbors explored in sorted order). Empty when
/// no such path exists.
std::vector<NodeId> bfs_path(const TopoView& view, NodeId s, NodeId t,
                             const std::map<NodeId, bool>& transit,
                             const EdgeSet& used) {
  std::map<NodeId, NodeId> parent;
  parent[s] = s;
  std::deque<NodeId> q{s};
  while (!q.empty() && parent.count(t) == 0) {
    const NodeId u = q.front();
    q.pop_front();
    if (u != s) {
      auto it = transit.find(u);
      if (it == transit.end() || !it->second) continue;  // endpoint only
    }
    const auto* nbrs = view.neighbors(u);
    if (nbrs == nullptr) continue;
    for (NodeId v : *nbrs) {
      if (parent.count(v) != 0) continue;
      if (used.count({u, v}) != 0) continue;
      parent[v] = u;
      q.push_back(v);
    }
  }
  if (parent.count(t) == 0) return {};
  std::vector<NodeId> path;
  for (NodeId v = t; v != s; v = parent[v]) path.push_back(v);
  path.push_back(s);
  std::reverse(path.begin(), path.end());
  return path;
}

void mark_used(EdgeSet& used, const std::vector<NodeId>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    used.insert({path[i], path[i + 1]});
    used.insert({path[i + 1], path[i]});
  }
}

}  // namespace

std::vector<std::vector<NodeId>> disjoint_view_paths(
    const TopoView& view, NodeId s, NodeId t, int count,
    const std::map<NodeId, bool>& transit) {
  std::vector<std::vector<NodeId>> paths;
  EdgeSet used;
  for (int k = 0; k < count; ++k) {
    auto p = bfs_path(view, s, t, transit, used);
    if (p.empty()) break;
    mark_used(used, p);
    paths.push_back(std::move(p));
  }
  return paths;
}

std::uint64_t RuleCompiler::combined_fingerprint(
    const TopoView& view, const std::map<NodeId, bool>& transit) {
  std::uint64_t h = view.fingerprint();
  for (const auto& [n, t] : transit) {
    h ^= (static_cast<std::uint64_t>(n) * 2 + (t ? 1 : 0)) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

CompiledFlowsPtr RuleCompiler::compile(
    const TopoView& view, NodeId owner,
    const std::map<NodeId, bool>& is_transit) const {
  auto flows = std::make_shared<CompiledFlows>();
  const auto transit = effective_transit(view, owner, is_transit);
  flows->view_fingerprint = combined_fingerprint(view, transit);

  const std::vector<NodeId> nodes = view.reachable_set(owner);
  std::map<NodeId, proto::RuleList> building;

  for (NodeId d : nodes) {
    if (d == owner) continue;
    const auto paths =
        disjoint_view_paths(view, owner, d, config_.kappa + 1, transit);
    std::vector<NodeId>& fh = flows->first_hops[d];
    for (std::size_t k = 0; k < paths.size(); ++k) {
      const auto& path = paths[k];
      const Priority prt = nprt() - 1 - static_cast<Priority>(k);
      if (path.size() >= 2 &&
          std::find(fh.begin(), fh.end(), path[1]) == fh.end()) {
        fh.push_back(path[1]);
      }
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        const NodeId sw = path[i];
        // Outbound: owner -> d along this path.
        building[sw].push_back(
            proto::Rule{owner, sw, owner, d, prt, path[i + 1]});
        // Inbound: primary reverse rules form the BFS tree and use a
        // wildcard source (default return route toward the controller);
        // backup reverse rules are exact-matched on the remote endpoint to
        // stay unambiguous across destinations.
        const NodeId back = path[i - 1];
        if (k == 0) {
          building[sw].push_back(
              proto::Rule{owner, sw, kNoNode, owner, prt, back});
        } else {
          building[sw].push_back(proto::Rule{owner, sw, d, owner, prt, back});
        }
      }
      // The terminal needs the inbound direction too when it is a switch:
      // its replies to the controller ride the reverse of its own flow.
      if (path.size() >= 2) {
        auto t_it = transit.find(d);
        if (t_it != transit.end() && t_it->second) {
          const NodeId back = path[path.size() - 2];
          if (k == 0) {
            building[d].push_back(
                proto::Rule{owner, d, kNoNode, owner, prt, back});
          } else {
            building[d].push_back(proto::Rule{owner, d, d, owner, prt, back});
          }
        }
      }
    }
    if (fh.empty()) flows->first_hops.erase(d);
  }

  for (auto& [sid, rules] : building) {
    std::sort(rules.begin(), rules.end(), rule_order);
    // The wildcard reverse rules of the primary tree are emitted once per
    // destination whose path crosses this switch; collapse duplicates.
    rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    flows->per_switch[sid] =
        std::make_shared<const proto::RuleList>(std::move(rules));
  }
  return flows;
}

CompiledFlowsPtr RuleCompiler::compile_cached(
    const TopoView& view, NodeId owner,
    const std::map<NodeId, bool>& is_transit) {
  const auto transit = effective_transit(view, owner, is_transit);
  const std::uint64_t fp = combined_fingerprint(view, transit);
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i].fingerprint == fp && cache_[i].owner == owner) {
      CacheEntry hit = cache_[i];
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(i));
      cache_.insert(cache_.begin(), hit);
      return cache_.front().flows;
    }
  }
  CacheEntry e;
  e.fingerprint = fp;
  e.owner = owner;
  e.flows = compile(view, owner, is_transit);
  cache_.insert(cache_.begin(), std::move(e));
  constexpr std::size_t kCacheSize = 8;
  if (cache_.size() > kCacheSize) cache_.resize(kCacheSize);
  return cache_.front().flows;
}

DataFlow RuleCompiler::compile_data_flow(
    const TopoView& view, NodeId owner, NodeId host_a, NodeId attach_a,
    NodeId host_b, NodeId attach_b,
    const std::map<NodeId, bool>& is_transit) const {
  DataFlow flow;
  std::map<NodeId, proto::RuleList> building;
  const auto transit = effective_transit(view, owner, is_transit);

  // Paths between the attachment switches; both endpoints relay here, so
  // mark them transit for the search.
  auto search_transit = transit;
  search_transit[attach_a] = true;
  search_transit[attach_b] = true;
  const auto paths = disjoint_view_paths(view, attach_a, attach_b,
                                         config_.kappa + 1, search_transit);

  for (std::size_t k = 0; k < paths.size(); ++k) {
    const auto& path = paths[k];
    const Priority prt = nprt() - 1 - static_cast<Priority>(k);
    for (std::size_t i = 0; i < path.size(); ++i) {
      const NodeId sw = path[i];
      if (i + 1 < path.size()) {  // a -> b direction
        building[sw].push_back(
            proto::Rule{owner, sw, host_a, host_b, prt, path[i + 1]});
      }
      if (i > 0) {  // b -> a direction
        building[sw].push_back(
            proto::Rule{owner, sw, host_b, host_a, prt, path[i - 1]});
      }
    }
  }
  // Delivery hops at the attachment switches (host-facing ports).
  building[attach_b].push_back(proto::Rule{
      owner, attach_b, host_a, host_b, static_cast<Priority>(nprt()), host_b});
  building[attach_a].push_back(proto::Rule{
      owner, attach_a, host_b, host_a, static_cast<Priority>(nprt()), host_a});

  for (auto& [sid, rules] : building) {
    std::sort(rules.begin(), rules.end(), rule_order);
    rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    flow.per_switch[sid] =
        std::make_shared<const proto::RuleList>(std::move(rules));
  }
  flow.first_hops_a = {attach_a};
  flow.first_hops_b = {attach_b};
  return flow;
}

}  // namespace ren::flows

// myRules(): compilation of a controller's forwarding rules from its
// topology view (paper Sections 2.2.2 and 3.3).
//
// Faithful to the paper's kappa-fault-resilient flows over simple paths:
// for every destination d the compiler derives up to kappa+1 pairwise
// edge-disjoint owner->d paths (primary = the "first shortest path" from a
// deterministic lexicographic BFS tree; backups = successive shortest paths
// avoiding already-used edges). The rule corresponding to the k-th
// alternative carries priority n_prt-1-k, so a switch applying the
// highest-priority applicable rule whose out-port is operational realizes
// OpenFlow fast-failover semantics: primary traffic rides shortest paths,
// and a failed link diverts traffic onto the next-priority path at any
// switch the paths share.
//
// Match-space layout per owner c:
//   (src=c,  dest=d) forward rules along every path switch     [outbound]
//   (src=*,  dest=c) reverse rules of the *primary* BFS tree   [inbound]
//   (src=d,  dest=c) reverse rules of backup paths             [inbound]
// The primary reverse rules form a tree (unique predecessor per switch), so
// the wildcard cannot be ambiguous, and it gives every node — even one the
// controller has not fully discovered yet — a default return route, which
// in-band bootstrapping depends on.
//
// Compilations are cached by (view, transit) fingerprint; rule lists are
// immutable and shared by pointer with in-flight messages and switch tables.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "flows/graph.hpp"
#include "proto/rule.hpp"
#include "util/types.hpp"

namespace ren::flows {

/// Canonical ordering of per-switch rule lists: (dest, src, -prt). Lookups
/// binary-search the (dest, src) prefix; priority descends within a group.
bool rule_order(const proto::Rule& a, const proto::Rule& b);

/// Everything a controller installs for one topology view.
struct CompiledFlows {
  /// Combined fingerprint of the (view, transit) pair used to compile.
  std::uint64_t view_fingerprint = 0;
  /// Rules to install at each switch (sorted by rule_order).
  std::map<NodeId, proto::RuleListPtr> per_switch;
  /// The controller's own ordered first hops toward every destination
  /// (primary path's first, then backups').
  std::map<NodeId, std::vector<NodeId>> first_hops;
};
using CompiledFlowsPtr = std::shared_ptr<const CompiledFlows>;

/// A host-to-host data flow (Section 6.4.3 experiments) compiled by the
/// managing controller: per-switch rules plus the hosts' first hops.
struct DataFlow {
  std::map<NodeId, proto::RuleListPtr> per_switch;
  std::vector<NodeId> first_hops_a;
  std::vector<NodeId> first_hops_b;
};

/// Up to `count` pairwise edge-disjoint s->t paths in `view` whose interior
/// nodes satisfy `transit` (switches). Shortest-first, deterministic.
std::vector<std::vector<NodeId>> disjoint_view_paths(
    const TopoView& view, NodeId s, NodeId t, int count,
    const std::map<NodeId, bool>& transit);

class RuleCompiler {
 public:
  struct Config {
    int kappa = 2;  ///< tolerate up to kappa link failures
  };

  explicit RuleCompiler(Config config) : config_(config) {}

  /// Priorities run 0..nprt; path rules use nprt-1-k for the k-th
  /// alternative (paper: n_prt >= kappa+1).
  [[nodiscard]] Priority nprt() const { return config_.kappa + 2; }
  [[nodiscard]] int kappa() const { return config_.kappa; }

  /// Compile all rules controller `owner` must install given its `view`.
  /// `is_transit(n)` tells whether n may relay packets (switches only);
  /// nodes of unknown kind are treated as switches until they reply.
  [[nodiscard]] CompiledFlowsPtr compile(
      const TopoView& view, NodeId owner,
      const std::map<NodeId, bool>& is_transit) const;

  /// Cached variant keyed by the combined (view, transit) fingerprint.
  [[nodiscard]] CompiledFlowsPtr compile_cached(
      const TopoView& view, NodeId owner,
      const std::map<NodeId, bool>& is_transit);

  /// Compile a bidirectional host<->host flow owned by `owner`. Hosts a/b
  /// attach to switches attach_a/attach_b (hosts are not in the view).
  [[nodiscard]] DataFlow compile_data_flow(
      const TopoView& view, NodeId owner, NodeId host_a, NodeId attach_a,
      NodeId host_b, NodeId attach_b,
      const std::map<NodeId, bool>& is_transit) const;

  /// Combined fingerprint used as the cache key.
  [[nodiscard]] static std::uint64_t combined_fingerprint(
      const TopoView& view, const std::map<NodeId, bool>& transit);

 private:
  Config config_;
  struct CacheEntry {
    std::uint64_t fingerprint = 0;
    NodeId owner = kNoNode;
    CompiledFlowsPtr flows;
  };
  std::vector<CacheEntry> cache_;  // tiny LRU (most recent first)
};

}  // namespace ren::flows

#include "flows/resilient_paths.hpp"

#include <deque>
#include <set>

namespace ren::flows {

std::vector<std::vector<int>> edge_disjoint_paths(const Graph& g, int s, int t,
                                                  int count) {
  std::vector<std::vector<int>> paths;
  std::set<std::pair<int, int>> used;  // directed pairs, both directions added

  for (int k = 0; k < count; ++k) {
    std::vector<int> parent(static_cast<std::size_t>(g.n()), -1);
    parent[static_cast<std::size_t>(s)] = s;
    std::deque<int> q{s};
    while (!q.empty() && parent[static_cast<std::size_t>(t)] < 0) {
      const int u = q.front();
      q.pop_front();
      for (int v : g.neighbors(u)) {
        if (parent[static_cast<std::size_t>(v)] >= 0) continue;
        if (used.count({u, v})) continue;
        parent[static_cast<std::size_t>(v)] = u;
        q.push_back(v);
      }
    }
    if (parent[static_cast<std::size_t>(t)] < 0) break;
    std::vector<int> path;
    for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)])
      path.push_back(v);
    path.push_back(s);
    std::reverse(path.begin(), path.end());
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      used.insert({path[i], path[i + 1]});
      used.insert({path[i + 1], path[i]});
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

WalkResult rule_walk(
    NodeId src, NodeId dst, const std::vector<NodeId>& first_hops,
    const std::function<std::optional<NodeId>(NodeId at, NodeId s, NodeId d)>&
        next_hop,
    const std::function<bool(NodeId, NodeId)>& link_up, int ttl) {
  WalkResult r;
  r.path.push_back(src);
  if (src == dst) {
    r.delivered = true;
    return r;
  }
  NodeId at = kNoNode;
  for (NodeId h : first_hops) {
    if (link_up(src, h)) {
      at = h;
      break;
    }
  }
  if (at == kNoNode) return r;
  r.path.push_back(at);
  while (ttl-- > 0) {
    if (at == dst) {
      r.delivered = true;
      return r;
    }
    const auto nh = next_hop(at, src, dst);
    if (!nh.has_value()) return r;  // dropped: no applicable rule
    at = *nh;
    r.path.push_back(at);
  }
  r.ttl_exceeded = true;
  return r;
}

}  // namespace ren::flows

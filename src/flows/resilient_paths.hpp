// kappa-fault-resilient flows (paper Section 2.2.2).
//
// Verification-side helpers: extraction of edge-disjoint paths and a
// rule-walk simulator used by the legitimacy monitor and the property tests
// to check that installed rules really survive up to kappa link failures.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "flows/graph.hpp"
#include "util/types.hpp"

namespace ren::flows {

/// Up to `count` pairwise edge-disjoint s->t paths, shortest first, found by
/// successive BFS that avoids previously used edges. Deterministic: BFS
/// explores neighbors in sorted order (the paper's "first shortest path").
std::vector<std::vector<int>> edge_disjoint_paths(const Graph& g, int s, int t,
                                                  int count);

/// Walks a packet from `src` toward `dst` using a forwarding oracle:
/// `next_hop(at, pkt_src, pkt_dst)` returns the chosen out-neighbor at a
/// relay, or nullopt to drop. `first_hops` are the ordered candidates at the
/// source; `link_up(a,b)` models Go. Returns the traversed path on success.
struct WalkResult {
  bool delivered = false;
  std::vector<NodeId> path;  ///< nodes visited, starting at src
  bool ttl_exceeded = false;
};
WalkResult rule_walk(
    NodeId src, NodeId dst, const std::vector<NodeId>& first_hops,
    const std::function<std::optional<NodeId>(NodeId at, NodeId s, NodeId d)>&
        next_hop,
    const std::function<bool(NodeId, NodeId)>& link_up, int ttl);

}  // namespace ren::flows

#include "net/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace ren::net {

void EventQueue::push(Event&& ev) {
  if (ev.at < now_) ev.at = now_;  // clamp: never schedule in the past
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_at(Time at, Action action) {
  schedule_at(at, std::move(action), kGlobalLane, next_seq_++);
}

void EventQueue::schedule_at(Time at, Action action, std::int32_t lane,
                             std::uint64_t seq) {
  Event ev;
  ev.at = at;
  ev.lane = lane;
  ev.seq = seq;
  ev.action = std::move(action);
  push(std::move(ev));
}

void EventQueue::schedule_packet(Time at, NodeId from, NodeId to, int link,
                                 Packet packet) {
  schedule_packet(at, from, to, link, std::move(packet), kGlobalLane,
                  next_seq_++);
}

void EventQueue::schedule_packet(Time at, NodeId from, NodeId to, int link,
                                 Packet packet, std::int32_t lane,
                                 std::uint64_t seq) {
  Event ev;
  ev.at = at;
  ev.lane = lane;
  ev.seq = seq;
  ev.packet = std::move(packet);
  ev.from = from;
  ev.to = to;
  ev.link = link;
  push(std::move(ev));
}

void EventQueue::inject(Event&& ev) { push(std::move(ev)); }

Time EventQueue::next_time() const {
  return heap_.empty() ? kTimeNever : heap_.front().at;
}

EventQueue::Key EventQueue::front_key() const {
  if (heap_.empty()) return Key{};
  const Event& e = heap_.front();
  return Key{e.at, e.lane, e.seq};
}

bool EventQueue::pop(Event& out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  out = std::move(heap_.back());
  heap_.pop_back();
  now_ = out.at;
  ++executed_;
  return true;
}

bool EventQueue::pop_until(Time limit, Event& out) {
  if (heap_.empty() || heap_.front().at > limit) return false;
  return pop(out);
}

bool EventQueue::step() {
  Event ev;
  if (!pop(ev)) return false;
  if (ev.action) {
    ev.action();
  } else {
    packet_handler_(ev.from, ev.to, ev.link, ev.packet);
  }
  return true;
}

std::vector<EventQueue::Event> EventQueue::drain_all() {
  return std::exchange(heap_, {});
}

}  // namespace ren::net

#include "net/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace ren::net {

void EventQueue::push(Event&& ev) {
  if (ev.at < now_) ev.at = now_;  // clamp: never schedule in the past
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_at(Time at, Action action) {
  Event ev;
  ev.at = at;
  ev.seq = next_seq_++;
  ev.action = std::move(action);
  push(std::move(ev));
}

void EventQueue::schedule_packet(Time at, NodeId from, NodeId to, int link,
                                 Packet packet) {
  Event ev;
  ev.at = at;
  ev.seq = next_seq_++;
  ev.packet = std::move(packet);
  ev.from = from;
  ev.to = to;
  ev.link = link;
  push(std::move(ev));
}

Time EventQueue::next_time() const {
  return heap_.empty() ? kTimeNever : heap_.front().at;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.at;
  ++executed_;
  if (ev.action) {
    ev.action();
  } else {
    packet_handler_(ev.from, ev.to, ev.link, ev.packet);
  }
  return true;
}

}  // namespace ren::net

#include "net/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace ren::net {

void EventQueue::schedule_at(Time at, Action action) {
  if (at < now_) at = now_;  // clamp: never schedule in the past
  heap_.push(Event{at, next_seq_++, std::move(action)});
}

Time EventQueue::next_time() const {
  return heap_.empty() ? kTimeNever : heap_.top().at;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (std::function copy) and pop.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.at;
  ++executed_;
  ev.action();
  return true;
}

}  // namespace ren::net

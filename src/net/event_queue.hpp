// Deterministic discrete-event queue.
//
// Events fire in (time, insertion order) — ties broken by a monotonically
// increasing sequence number so that runs are bit-for-bit reproducible,
// which the self-stabilization experiments rely on.
//
// Two event classes share one heap: general closures (timers, scheduled
// actions) and packet deliveries. Packet deliveries are the dominant class
// by far, and a std::function closure would cost a heap allocation plus a
// payload copy per hop; instead they are stored inline (the Packet payload
// is a shared immutable pointer, so moving an event moves two pointers) and
// dispatched through one handler installed by the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace ren::net {

class EventQueue {
 public:
  using Action = std::function<void()>;
  /// Installed once by the simulator; receives every packet event.
  using PacketHandler =
      std::function<void(NodeId from, NodeId to, int link, Packet& packet)>;

  void set_packet_handler(PacketHandler handler) {
    packet_handler_ = std::move(handler);
  }

  /// Schedule `action` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Action action);

  /// Allocation-free fast path: deliver `packet` (from -> to over `link`)
  /// at time `at` via the installed packet handler.
  void schedule_packet(Time at, NodeId from, NodeId to, int link,
                       Packet packet);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Current simulated time (time of the last executed event).
  [[nodiscard]] Time now() const { return now_; }

  /// Time of the next pending event, or kTimeNever when empty.
  [[nodiscard]] Time next_time() const;

  /// Execute the next event; returns false when the queue is empty.
  bool step();

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action action;  ///< general event; empty for packet events
    Packet packet;  ///< packet event payload (action empty)
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    int link = -1;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void push(Event&& ev);

  // A std::push_heap/pop_heap heap rather than std::priority_queue: the
  // queue's top() is const, which would force a copy of the event (and its
  // closure) per step; pop_heap lets the event be moved out.
  std::vector<Event> heap_;
  PacketHandler packet_handler_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ren::net

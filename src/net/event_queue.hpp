// Deterministic discrete-event queue.
//
// Events fire in (time, lane, lane sequence) order. The lane identifies the
// scheduling context — lane 0 is the harness/global lane, lane `id + 1` the
// per-node lane — and the sequence number is that lane's monotonic schedule
// counter. The key is *content-based*: it depends only on who scheduled what,
// never on which thread or in which interleaving the schedule call ran, so
// the total event order (and therefore every run) is bit-for-bit identical
// whether one queue serves the whole simulation or nodes are sharded across
// several queues (net::Simulator's parallel mode). Within a lane, ties at
// equal time keep insertion order, which is what the pre-lane kernel
// guaranteed globally.
//
// Two event classes share one heap: general closures (timers, scheduled
// actions) and packet deliveries. Packet deliveries are the dominant class
// by far, and a std::function closure would cost a heap allocation plus a
// payload copy per hop; instead they are stored inline (the Packet payload
// is a shared immutable pointer, so moving an event moves two pointers) and
// dispatched by the simulator, or — for standalone use — through one
// installed handler.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace ren::net {

class EventQueue {
 public:
  using Action = std::function<void()>;
  /// Installed once for standalone use (step()); receives packet events.
  using PacketHandler =
      std::function<void(NodeId from, NodeId to, int link, Packet& packet)>;

  /// The harness/global lane. Node `id` schedules on lane `id + 1`.
  static constexpr std::int32_t kGlobalLane = 0;

  struct Event {
    Time at = 0;
    std::int32_t lane = kGlobalLane;
    std::uint64_t seq = 0;
    Action action;  ///< general event; empty for packet events
    Packet packet;  ///< packet event payload (action empty)
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    int link = -1;

    [[nodiscard]] bool is_packet() const { return !action; }
  };

  /// The deterministic total-order key of an event.
  struct Key {
    Time at = kTimeNever;
    std::int32_t lane = 0;
    std::uint64_t seq = 0;

    [[nodiscard]] bool operator<(const Key& o) const {
      if (at != o.at) return at < o.at;
      if (lane != o.lane) return lane < o.lane;
      return seq < o.seq;
    }
  };

  void set_packet_handler(PacketHandler handler) {
    packet_handler_ = std::move(handler);
  }

  /// Schedule `action` at absolute time `at` on the global lane with this
  /// queue's own sequence counter (standalone use; the simulator's global
  /// queue also runs on this).
  void schedule_at(Time at, Action action);

  /// Schedule `action` with an externally assigned (lane, seq) key — the
  /// simulator owns the per-node lane counters.
  void schedule_at(Time at, Action action, std::int32_t lane,
                   std::uint64_t seq);

  /// Allocation-free fast path: deliver `packet` (from -> to over `link`)
  /// at time `at`. Without an explicit key: global lane, own counter.
  void schedule_packet(Time at, NodeId from, NodeId to, int link,
                       Packet packet);
  void schedule_packet(Time at, NodeId from, NodeId to, int link,
                       Packet packet, std::int32_t lane, std::uint64_t seq);

  /// Insert an event whose key was already assigned by another queue
  /// (cross-shard mailbox drain). The key is preserved verbatim, so the
  /// heap order is independent of merge order.
  void inject(Event&& ev);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Current simulated time (time of the last executed event).
  [[nodiscard]] Time now() const { return now_; }

  /// Advance now() to at least `t` without executing anything (the simulator
  /// re-syncs idle shard queues at quiescent points so the past-event clamp
  /// matches the single-queue kernel).
  void sync_now(Time t) {
    if (t > now_) now_ = t;
  }

  /// Time of the next pending event, or kTimeNever when empty.
  [[nodiscard]] Time next_time() const;

  /// Key of the next pending event ({kTimeNever, ..} when empty).
  [[nodiscard]] Key front_key() const;

  /// Pop the next event into `out` (advances now(), counts it as executed).
  /// Returns false when empty.
  bool pop(Event& out);

  /// pop(), but only while the next event's time is <= `limit`.
  bool pop_until(Time limit, Event& out);

  /// Standalone drive: pop and dispatch the next event (action directly,
  /// packets through the installed handler); false when empty.
  bool step();

  /// Move out every pending event (heap order, not sorted); the queue is
  /// empty afterwards. Used when re-partitioning shards.
  [[nodiscard]] std::vector<Event> drain_all();

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.lane != b.lane) return a.lane > b.lane;
      return a.seq > b.seq;
    }
  };

  void push(Event&& ev);

  // A std::push_heap/pop_heap heap rather than std::priority_queue: the
  // queue's top() is const, which would force a copy of the event (and its
  // closure) per step; pop_heap lets the event be moved out.
  std::vector<Event> heap_;
  PacketHandler packet_handler_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ren::net

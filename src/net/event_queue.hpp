// Deterministic discrete-event queue.
//
// Events fire in (time, insertion order) — ties broken by a monotonically
// increasing sequence number so that runs are bit-for-bit reproducible,
// which the self-stabilization experiments rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace ren::net {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, Action action);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Current simulated time (time of the last executed event).
  [[nodiscard]] Time now() const { return now_; }

  /// Time of the next pending event, or kTimeNever when empty.
  [[nodiscard]] Time next_time() const;

  /// Execute the next event; returns false when the queue is empty.
  bool step();

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ren::net

#include "net/link.hpp"

#include <algorithm>

namespace ren::net {

Link::TxPlan Link::plan_transmission(NodeId from, std::uint32_t bytes, Time now,
                                     Rng& rng) {
  TxPlan plan;
  const int d = dir(from);

  // Serialization: the packet occupies the transmitter for bytes*8/bw.
  Time ser = 0;
  if (params_.bandwidth_bps > 0) {
    ser = static_cast<Time>(static_cast<double>(bytes) * 8.0 * 1e6 /
                            params_.bandwidth_bps);
  }
  const Time start = std::max(now, busy_until_[d]);

  // Drop-tail queue: bound the backlog a sender may accumulate.
  if (start - now > params_.max_queue_delay) {
    plan.dropped = true;
    return plan;
  }
  busy_until_[d] = start + ser;

  // Random omission (the transport layer recovers from these).
  if (params_.faults.loss > 0 && rng.chance(params_.faults.loss)) {
    plan.dropped = true;
    return plan;
  }

  Time deliver = busy_until_[d] + params_.latency;
  if (params_.faults.reorder > 0 && rng.chance(params_.faults.reorder)) {
    deliver += static_cast<Time>(
        rng.next_below(static_cast<std::uint64_t>(
            std::max<Time>(params_.faults.reorder_delay_max, 1))));
  }
  plan.deliver_at = deliver;

  if (params_.faults.duplicate > 0 && rng.chance(params_.faults.duplicate)) {
    plan.duplicated = true;
    plan.duplicate_at =
        deliver + static_cast<Time>(rng.next_below(
                      static_cast<std::uint64_t>(params_.latency + 1)));
  }
  return plan;
}

}  // namespace ren::net

// Bidirectional network link with latency, bandwidth, a drop-tail queue and
// a packet-level fault model (omission / duplication / reordering), i.e. the
// "unreliable media" underneath the self-stabilizing transport (Section 3.1).
#pragma once

#include <array>
#include <cstdint>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::net {

/// Packet-level fault probabilities applied per traversal.
struct LinkFaults {
  double loss = 0.0;       ///< omission probability
  double duplicate = 0.0;  ///< duplication probability
  double reorder = 0.0;    ///< probability of an extra, random delay
  Time reorder_delay_max = 0;  ///< max extra delay for reordered packets
  double corrupt = 0.0;    ///< payload corruption probability (in-band
                           ///< channel faults; see proto/mutate.hpp)
};

struct LinkParams {
  Time latency = 1000;               ///< one-way propagation delay (us)
  double bandwidth_bps = 0.0;        ///< 0 = unlimited
  Time max_queue_delay = 50'000;     ///< drop-tail bound on queued backlog
  LinkFaults faults;
};

/// Operational state (paper: Go vs Gc). `TransientDown` models temporary
/// unavailability (at most kappa at a time); `PermanentDown` models the
/// permanent link failures / removals of Section 3.4. `Blackhole` models
/// the port-down detection window of a real switch: forwarding still
/// selects the link (operational() is true) but every packet is lost —
/// this is what produces the retransmission spike right after a failure.
enum class LinkState : std::uint8_t {
  Up,
  TransientDown,
  PermanentDown,
  Blackhole
};

class Link {
 public:
  Link(int index, NodeId a, NodeId b, LinkParams params)
      : index_(index), a_(a), b_(b), params_(params) {}

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] NodeId a() const { return a_; }
  [[nodiscard]] NodeId b() const { return b_; }
  [[nodiscard]] NodeId other(NodeId n) const { return n == a_ ? b_ : a_; }
  [[nodiscard]] const LinkParams& params() const { return params_; }

  /// Swap the fault profile at runtime (harness/barrier context only —
  /// scenario events such as channel-corruption storms). Latency, bandwidth
  /// and queue state are untouched, so in-flight packets keep their
  /// schedules.
  void set_faults(const LinkFaults& f) { params_.faults = f; }

  [[nodiscard]] LinkState state() const { return state_; }
  [[nodiscard]] bool operational() const {
    return state_ == LinkState::Up || state_ == LinkState::Blackhole;
  }
  /// True when packets can actually traverse the link right now.
  [[nodiscard]] bool passes_traffic() const { return state_ == LinkState::Up; }
  void set_state(LinkState s) {
    if (s == state_) return;
    state_ = s;
    if (epoch_hook_ != nullptr) ++*epoch_hook_;
  }

  /// Wire the owning Network's topology epoch into this link so that every
  /// state transition bumps it, no matter which layer flips the state.
  void attach_epoch(std::uint64_t* epoch) { epoch_hook_ = epoch; }

  /// Outcome of pushing one packet onto a direction of the link.
  struct TxPlan {
    bool dropped = false;      ///< queue overflow or random omission
    bool duplicated = false;   ///< deliver a second copy
    Time deliver_at = 0;       ///< arrival time of the (first) copy
    Time duplicate_at = 0;     ///< arrival time of the duplicate copy
  };

  /// Compute delivery schedule for `bytes` sent from `from` at time `now`.
  /// Mutates the per-direction queue state (busy-until) and applies faults.
  TxPlan plan_transmission(NodeId from, std::uint32_t bytes, Time now, Rng& rng);

 private:
  int dir(NodeId from) const { return from == a_ ? 0 : 1; }

  int index_;
  NodeId a_, b_;
  LinkParams params_;
  LinkState state_ = LinkState::Up;
  std::uint64_t* epoch_hook_ = nullptr;  ///< owning Network's topology epoch
  std::array<Time, 2> busy_until_{0, 0};
};

}  // namespace ren::net

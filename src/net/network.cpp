#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ren::net {

void Network::ensure_nodes(std::size_t n) {
  if (adjacency_.size() < n) adjacency_.resize(n);
}

int Network::add_link(NodeId a, NodeId b, const LinkParams& params) {
  if (a == b) throw std::invalid_argument("add_link: self-loop");
  ensure_nodes(static_cast<std::size_t>(std::max(a, b)) + 1);
  if (find_link(a, b) != nullptr)
    throw std::invalid_argument("add_link: duplicate link");
  const int index = static_cast<int>(links_.size());
  links_.emplace_back(index, a, b, params);
  links_.back().attach_epoch(&epoch_);
  adjacency_[static_cast<std::size_t>(a)].push_back(Edge{b, index});
  adjacency_[static_cast<std::size_t>(b)].push_back(Edge{a, index});
  ++epoch_;
  return index;
}

Link* Network::find_link(NodeId a, NodeId b) {
  for (const Edge& e : adjacency_[static_cast<std::size_t>(a)]) {
    if (e.neighbor == b) return &links_[static_cast<std::size_t>(e.link)];
  }
  return nullptr;
}

const Link* Network::find_link(NodeId a, NodeId b) const {
  return const_cast<Network*>(this)->find_link(a, b);
}

std::vector<NodeId> Network::neighbors_connected(NodeId n) const {
  std::vector<NodeId> out;
  for (const Edge& e : adjacency_[static_cast<std::size_t>(n)]) {
    if (links_[static_cast<std::size_t>(e.link)].state() !=
        LinkState::PermanentDown)
      out.push_back(e.neighbor);
  }
  return out;
}

std::vector<NodeId> Network::neighbors_operational(NodeId n) const {
  std::vector<NodeId> out;
  for (const Edge& e : adjacency_[static_cast<std::size_t>(n)]) {
    if (links_[static_cast<std::size_t>(e.link)].operational())
      out.push_back(e.neighbor);
  }
  return out;
}

bool Network::link_operational(NodeId a, NodeId b) const {
  const Link* l = find_link(a, b);
  return l != nullptr && l->operational();
}

bool Network::link_connected(NodeId a, NodeId b) const {
  const Link* l = find_link(a, b);
  return l != nullptr && l->state() != LinkState::PermanentDown;
}

}  // namespace ren::net

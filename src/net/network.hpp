// The physical network: nodes' adjacency and the set of links.
//
// Terminology follows the paper: Gc (connected communication topology) is
// the set of links that have not failed permanently; Go (operational
// topology) is the subset whose links are currently up.
//
// The network also carries the stack's *topology change epoch*: a monotonic
// counter bumped on every link state transition (links are wired into it by
// add_link) and on node kill/revive (bumped by the Simulator). Measurement
// code — most importantly the legitimacy monitor — uses the epoch to skip
// re-deriving ground truth that cannot have changed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "util/types.hpp"

namespace ren::net {

class Network {
 public:
  Network() = default;
  // Links hold a pointer to epoch_, so the network must stay put.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  struct Edge {
    NodeId neighbor = kNoNode;
    int link = -1;
  };

  /// Grow the adjacency structure to cover node ids [0, n).
  void ensure_nodes(std::size_t n);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Add a bidirectional link; returns its index. Parallel links between the
  /// same pair are not supported (the paper's model has simple graphs).
  int add_link(NodeId a, NodeId b, const LinkParams& params);

  [[nodiscard]] Link& link(int index) { return links_[index]; }
  [[nodiscard]] const Link& link(int index) const { return links_[index]; }

  /// Find the link between a and b, or nullptr.
  [[nodiscard]] Link* find_link(NodeId a, NodeId b);
  [[nodiscard]] const Link* find_link(NodeId a, NodeId b) const;

  /// All configured edges at `n` (including failed links; filter by state).
  [[nodiscard]] const std::vector<Edge>& adjacency(NodeId n) const {
    return adjacency_[static_cast<std::size_t>(n)];
  }

  /// Neighbors of `n` in Gc: links that are not permanently down.
  [[nodiscard]] std::vector<NodeId> neighbors_connected(NodeId n) const;

  /// Neighbors of `n` in Go: links that are currently operational.
  [[nodiscard]] std::vector<NodeId> neighbors_operational(NodeId n) const;

  /// True when the a-b link exists and is operational (Go membership).
  [[nodiscard]] bool link_operational(NodeId a, NodeId b) const;

  /// True when the a-b link exists and is not permanently down (Gc).
  [[nodiscard]] bool link_connected(NodeId a, NodeId b) const;

  /// Monotonic change counter over everything that defines the ground-truth
  /// topology: link state transitions and node kill/revive events.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Record a topology-affecting change that links cannot observe themselves
  /// (node kill/revive; called by the Simulator).
  void bump_epoch() { ++epoch_; }

 private:
  std::vector<Link> links_;
  std::vector<std::vector<Edge>> adjacency_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ren::net

// Base class for simulated nodes (abstract switches, controllers, hosts).
#pragma once

#include "net/packet.hpp"
#include "util/types.hpp"

namespace ren::net {

class Simulator;

class Node {
 public:
  Node(NodeId id, NodeKind kind) : id_(id), kind_(kind) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Called once after the node is wired into the simulator; schedule the
  /// initial timers here.
  virtual void start() {}

  /// A packet arrived on the port facing `from_neighbor`.
  virtual void on_packet(NodeId from_neighbor, const Packet& packet) = 0;

  /// Fail-stop: the node ceases all activity (timers check alive()).
  virtual void fail_stop() { alive_ = false; }

 protected:
  friend class Simulator;
  Simulator* sim_ = nullptr;  ///< set by Simulator::add_node

 private:
  NodeId id_;
  NodeKind kind_;
  bool alive_ = true;
};

}  // namespace ren::net

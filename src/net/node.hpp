// Base class for simulated nodes (abstract switches, controllers, hosts).
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace ren::net {

class Simulator;

class Node {
 public:
  Node(NodeId id, NodeKind kind) : id_(id), kind_(kind) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Called once after the node is wired into the simulator; schedule the
  /// initial timers here.
  virtual void start() {}

  /// A packet arrived on the port facing `from_neighbor`.
  virtual void on_packet(NodeId from_neighbor, const Packet& packet) = 0;

  /// Fail-stop: the node ceases all activity (timers check alive()).
  virtual void fail_stop() { alive_ = false; }

  /// Undo a fail-stop: the node resumes taking steps with whatever state it
  /// held at the crash — an arbitrary starting state the self-stabilizing
  /// algorithm must recover from anyway. Bumps the incarnation so timer
  /// chains scheduled before the crash stay dead after the revival.
  virtual void revive() {
    alive_ = true;
    ++incarnation_;
  }

  /// Monotonic revival count; schedule_for actions are dropped when the
  /// node's incarnation has moved past the one they were scheduled under.
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

 protected:
  friend class Simulator;
  Simulator* sim_ = nullptr;  ///< set by Simulator::add_node

 private:
  NodeId id_;
  NodeKind kind_;
  bool alive_ = true;
  std::uint32_t incarnation_ = 0;
};

}  // namespace ren::net

// A simulated network packet. Control traffic and data traffic share the
// same packet type and the same links — the essence of in-band control.
#pragma once

#include <cstdint>

#include "proto/payload.hpp"
#include "util/types.hpp"

namespace ren::net {

/// Hop budget; cuts forwarding loops caused by corrupted rules during the
/// recovery period (a legitimate path is never longer than the node count).
inline constexpr int kDefaultTtl = 255;

struct Packet {
  NodeId src = kNoNode;  ///< original endpoint (rule match field `src`)
  NodeId dst = kNoNode;  ///< final endpoint (rule match field `dest`)
  int ttl = kDefaultTtl;
  std::uint32_t bytes = 0;  ///< wire size, for bandwidth modelling
  proto::PayloadPtr payload;
};

/// Build a packet and compute its wire size from the payload.
inline Packet make_packet(NodeId src, NodeId dst, proto::Payload payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.bytes = static_cast<std::uint32_t>(proto::wire_size(payload));
  p.payload = std::make_shared<const proto::Payload>(std::move(payload));
  return p;
}

/// Zero-copy variant: wrap an already-shared immutable payload (e.g. the
/// transport's cached act frame) without re-allocating it per packet.
inline Packet make_packet(NodeId src, NodeId dst, proto::PayloadPtr payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.bytes = static_cast<std::uint32_t>(proto::wire_size(*payload));
  p.payload = std::move(payload);
  return p;
}

/// Zero-copy variant with a precomputed wire size (the transport caches the
/// size of its act frame alongside the frame itself, so the hot submit path
/// never re-walks the message).
inline Packet make_packet(NodeId src, NodeId dst, proto::PayloadPtr payload,
                          std::uint32_t bytes) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.bytes = bytes;
  p.payload = std::move(payload);
  return p;
}

}  // namespace ren::net

#include "net/shard.hpp"

#include <algorithm>

namespace ren::net {

ShardPlan make_shard_plan(const Network& net,
                          const std::vector<NodeKind>& kinds, int shards) {
  ShardPlan plan;
  const std::size_t n = kinds.size();
  plan.shard_of.assign(n, 0);
  plan.shards = std::max(1, shards);
  plan.shards = std::min<int>(plan.shards, static_cast<int>(std::max<std::size_t>(n, 1)));
  if (plan.shards <= 1) {
    plan.shards = 1;
    return plan;
  }

  const auto s64 = static_cast<std::size_t>(plan.shards);
  std::size_t n_switches = 0;
  for (NodeKind k : kinds) {
    if (k == NodeKind::Switch) ++n_switches;
  }
  std::size_t switch_idx = 0;
  std::size_t controller_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    switch (kinds[i]) {
      case NodeKind::Switch:
        plan.shard_of[i] = static_cast<int>(switch_idx * s64 / n_switches);
        ++switch_idx;
        break;
      case NodeKind::Controller:
        plan.shard_of[i] = static_cast<int>(controller_idx++ % s64);
        break;
      case NodeKind::Host:
        plan.shard_of[i] = 0;
        break;
    }
  }

  for (std::size_t li = 0; li < net.link_count(); ++li) {
    const Link& l = net.link(static_cast<int>(li));
    if (plan.shard_of[static_cast<std::size_t>(l.a())] ==
        plan.shard_of[static_cast<std::size_t>(l.b())])
      continue;
    ++plan.cross_links;
    plan.lookahead = std::min(plan.lookahead, l.params().latency);
  }

  if (plan.cross_links > 0 && plan.lookahead <= 0) {
    // A zero-latency cross-shard link leaves no conservative window at all;
    // run serial rather than degenerate.
    plan.shards = 1;
    plan.shard_of.assign(n, 0);
    plan.lookahead = kTimeNever;
    plan.cross_links = 0;
  }
  return plan;
}

int suggest_sim_shards(int nodes, std::size_t links, int diameter) {
  if (nodes <= 0) return 1;
  // Per-epoch work scales with the event rate ~ nodes x degree; one shard
  // per ~512 incident-edge units keeps each worker busy well past the
  // barrier cost. Deep fabrics tolerate more shards: a cross-shard packet
  // needs a full epoch per hop, so the diameter bounds useful parallelism.
  const double degree =
      2.0 * static_cast<double>(links) / static_cast<double>(nodes);
  const int by_load =
      static_cast<int>(static_cast<double>(nodes) * degree / 512.0);
  const int by_depth = std::max(1, diameter);
  int s = std::clamp(std::min(by_load, by_depth), 1, 16);
  // Round down to a power of two: campaign scripts sweep 1/2/4/8/16.
  int p = 1;
  while (p * 2 <= s) p *= 2;
  return p;
}

}  // namespace ren::net

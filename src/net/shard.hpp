// Node partitioning for the parallel simulation kernel.
//
// A shard plan assigns every node to one of S shards and derives the
// conservative lookahead Δ = the minimum one-way latency over cross-shard
// links. The epoch-lockstep kernel (net::Simulator) advances all shards in
// windows of width Δ: a packet crossing a shard boundary arrives at least Δ
// after it was sent, so within a window shards cannot influence each other
// and may execute on independent threads.
//
// The partition is a pure function of the topology (never of thread timing):
//   - switches are cut into contiguous id blocks (topology generators emit
//     locality-correlated ids, so blocks keep most fabric links internal);
//   - controllers are dealt round-robin so no shard carries them all;
//   - hosts all land in shard 0 — a host pair shares its FlowStats sink, so
//     the two endpoints must never execute concurrently.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.hpp"
#include "util/types.hpp"

namespace ren::net {

struct ShardPlan {
  int shards = 1;
  std::vector<int> shard_of;  ///< node id -> shard index
  /// Minimum one-way latency over cross-shard links (the conservative epoch
  /// width). kTimeNever when no link crosses a shard boundary — then windows
  /// are bounded only by the run target and pending global events.
  Time lookahead = kTimeNever;
  std::size_t cross_links = 0;
};

/// Partition `kinds.size()` nodes into at most `shards` shards over the
/// given network. Falls back to a single shard when any cross-shard link has
/// zero latency (no lookahead — conservative windows would be empty).
[[nodiscard]] ShardPlan make_shard_plan(const Network& net,
                                        const std::vector<NodeKind>& kinds,
                                        int shards);

/// Suggested --sim-threads for a fabric: enough per-epoch work per shard
/// (nodes x degree) to amortize the barrier, capped by the diameter (a
/// cross-shard packet spends >= 1 epoch per hop, so shallow fabrics stop
/// profiting early) and rounded down to a power of two <= 16.
[[nodiscard]] int suggest_sim_shards(int nodes, std::size_t links,
                                     int diameter);

}  // namespace ren::net

#include "net/simulator.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace ren::net {

void Simulator::schedule_for(NodeId node_id, Time delay,
                             std::function<void()> action) {
  const std::uint32_t inc = node(node_id).incarnation();
  schedule(delay, [this, node_id, inc, action = std::move(action)]() {
    const Node& n = node(node_id);
    if (n.alive() && n.incarnation() == inc) action();
  });
}

void Simulator::run_until(Time t) {
  while (!events_.empty() && events_.next_time() <= t) events_.step();
}

NodeId Simulator::add_node(std::unique_ptr<Node> node) {
  const NodeId id = node->id();
  if (static_cast<std::size_t>(id) != nodes_.size())
    throw std::invalid_argument("add_node: node ids must be dense 0..N-1");
  node->sim_ = this;
  nodes_.push_back(std::move(node));
  network_.ensure_nodes(nodes_.size());
  counters_.ensure_nodes(nodes_.size());
  return id;
}

std::vector<NodeId> Simulator::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n->kind() == kind) out.push_back(n->id());
  }
  return out;
}

int Simulator::add_link(NodeId a, NodeId b, const LinkParams& params) {
  return network_.add_link(a, b, params);
}

void Simulator::kill_node(NodeId id) {
  Node& n = node(id);
  n.fail_stop();
  for (const Network::Edge& e : network_.adjacency(id)) {
    network_.link(e.link).set_state(LinkState::PermanentDown);
  }
  network_.bump_epoch();  // the alive set is part of the topology epoch
  REN_LOG(Info, "t=%.3fs node %d fail-stopped", to_seconds(now()), id);
}

void Simulator::revive_node(NodeId id) {
  Node& n = node(id);
  if (n.alive()) return;
  n.revive();
  n.start();  // restart the timer chains under the new incarnation
  network_.bump_epoch();
  REN_LOG(Info, "t=%.3fs node %d revived", to_seconds(now()), id);
}

void Simulator::set_link_state(NodeId a, NodeId b, LinkState state) {
  Link* l = network_.find_link(a, b);
  if (l == nullptr) throw std::invalid_argument("set_link_state: no such link");
  l->set_state(state);
}

void Simulator::send(NodeId from, NodeId to, Packet packet) {
  ++counters_.packets_sent;
  Link* link = network_.find_link(from, to);
  if (link == nullptr ||
      (!link->passes_traffic() && link->state() != LinkState::Blackhole)) {
    ++counters_.drops_link_down;
    return;
  }
  // A blackholing (failing-but-not-yet-detected) port flaps: most packets
  // are lost, a trickle still passes — that trickle is what produces the
  // duplicate-ack and out-of-order signatures of Figs. 18-20.
  if (link->state() == LinkState::Blackhole && rng_.chance(0.9)) {
    ++counters_.drops_link_down;
    return;
  }
  const Link::TxPlan plan =
      link->plan_transmission(from, packet.bytes, now(), rng_);
  if (plan.dropped) {
    ++counters_.drops_queue;
    return;
  }

  const int link_index = link->index();
  if (plan.duplicated) {
    // Keep the original event order (delivery enqueued before the
    // duplicate) so tie-breaking by sequence number is unchanged.
    events_.schedule_packet(plan.deliver_at, from, to, link_index, packet);
    events_.schedule_packet(plan.duplicate_at, from, to, link_index,
                            std::move(packet));
  } else {
    events_.schedule_packet(plan.deliver_at, from, to, link_index,
                            std::move(packet));
  }
}

void Simulator::deliver_packet(NodeId from, NodeId to, int link,
                               Packet& packet) {
  // In-flight packets on a permanently removed link are lost.
  if (network_.link(link).state() == LinkState::PermanentDown) {
    ++counters_.drops_link_down;
    return;
  }
  Node& receiver = node(to);
  if (!receiver.alive()) {
    ++counters_.drops_dead_node;
    return;
  }
  ++counters_.packets_delivered;
  receiver.on_packet(from, packet);
}

}  // namespace ren::net

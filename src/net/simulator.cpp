#include "net/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "proto/mutate.hpp"
#include "util/log.hpp"

namespace ren::net {

thread_local Simulator::ExecContext Simulator::tls_;

bool Simulator::concurrent_context() {
  return tls_.sim != nullptr && tls_.sim->shard_count_ > 1;
}

// --- Counters ---------------------------------------------------------------

void Counters::merge_from(Counters& other) {
  packets_sent += other.packets_sent;
  packets_delivered += other.packets_delivered;
  drops_link_down += other.drops_link_down;
  drops_queue += other.drops_queue;
  drops_dead_node += other.drops_dead_node;
  drops_ttl += other.drops_ttl;
  drops_no_rule += other.drops_no_rule;
  drops_ambiguous_rule += other.drops_ambiguous_rule;
  packets_corrupted += other.packets_corrupted;
  control_bytes_sent += other.control_bytes_sent;
  max_control_message_bytes =
      std::max(max_control_message_bytes, other.max_control_message_bytes);
  ensure_nodes(other.ctrl_messages_sent.size());
  for (std::size_t i = 0; i < other.ctrl_messages_sent.size(); ++i) {
    ctrl_messages_sent[i] += other.ctrl_messages_sent[i];
  }
  for (std::size_t i = 0; i < other.ctrl_commands_sent.size(); ++i) {
    ctrl_commands_sent[i] += other.ctrl_commands_sent[i];
  }
  for (std::size_t i = 0; i < other.iterations.size(); ++i) {
    iterations[i] += other.iterations[i];
  }
  const std::size_t n = other.ctrl_messages_sent.size();
  other = Counters{};
  other.ensure_nodes(n);
}

std::uint64_t Counters::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(packets_sent);
  mix(packets_delivered);
  mix(drops_link_down);
  mix(drops_queue);
  mix(drops_dead_node);
  mix(drops_ttl);
  mix(drops_no_rule);
  mix(drops_ambiguous_rule);
  mix(packets_corrupted);
  mix(control_bytes_sent);
  mix(max_control_message_bytes);
  for (const auto* v :
       {&ctrl_messages_sent, &ctrl_commands_sent, &iterations}) {
    mix(v->size());
    for (std::uint64_t x : *v) mix(x);
  }
  return h;
}

// --- Spin barrier -----------------------------------------------------------

void Simulator::SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation.load(std::memory_order_acquire);
  if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == parties) {
    arrived.store(0, std::memory_order_relaxed);
    {
      // The generation bump is published under the mutex so a waiter that
      // decided to block cannot miss the wake-up.
      std::lock_guard<std::mutex> lk(mu);
      generation.store(gen + 1, std::memory_order_release);
    }
    cv.notify_all();
  } else {
    for (int i = 0; i < spin_limit; ++i) {
      if (generation.load(std::memory_order_acquire) != gen) return;
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] {
      return generation.load(std::memory_order_acquire) != gen;
    });
  }
}

// --- Construction -----------------------------------------------------------

Simulator::Simulator(std::uint64_t seed) : rng_(seed), seed_(seed) {
  auto sh = std::make_unique<Shard>();
  sh->outbox.resize(1);
  shards_.push_back(std::move(sh));
}

Simulator::~Simulator() { stop_workers(); }

NodeId Simulator::add_node(std::unique_ptr<Node> node) {
  const NodeId id = node->id();
  if (static_cast<std::size_t>(id) != nodes_.size())
    throw std::invalid_argument("add_node: node ids must be dense 0..N-1");
  node->sim_ = this;
  nodes_.push_back(std::move(node));
  network_.ensure_nodes(nodes_.size());
  counters_.ensure_nodes(nodes_.size());
  for (auto& sh : shards_) sh->counters.ensure_nodes(nodes_.size());
  node_rngs_.emplace_back(
      Rng::stream_seed(seed_, static_cast<std::uint64_t>(id)));
  node_seq_.push_back(0);
  return id;
}

std::vector<NodeId> Simulator::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n->kind() == kind) out.push_back(n->id());
  }
  return out;
}

int Simulator::add_link(NodeId a, NodeId b, const LinkParams& params) {
  return network_.add_link(a, b, params);
}

// --- Sharding ---------------------------------------------------------------

void Simulator::configure_parallel(int shards) {
  if (in_shard_context())
    throw std::logic_error("configure_parallel: not from node context");
  stop_workers();
  fold_counters();

  std::vector<NodeKind> kinds;
  kinds.reserve(nodes_.size());
  for (const auto& n : nodes_) kinds.push_back(n->kind());
  ShardPlan plan = make_shard_plan(network_, kinds, shards);

  // Carry the pending events and clocks over to the new partition.
  std::vector<EventQueue::Event> pending;
  Time max_now = global_now_;
  for (auto& sh : shards_) {
    executed_base_ += sh->queue.executed();
    max_now = std::max(max_now, sh->queue.now());
    for (auto& ev : sh->queue.drain_all()) pending.push_back(std::move(ev));
  }

  shard_count_ = plan.shards;
  shard_of_ = std::move(plan.shard_of);
  lookahead_ = shard_count_ > 1 ? plan.lookahead : kTimeNever;
  shards_.clear();
  for (int s = 0; s < shard_count_; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->queue.sync_now(max_now);
    sh->counters.ensure_nodes(nodes_.size());
    sh->outbox.resize(static_cast<std::size_t>(shard_count_));
    shards_.push_back(std::move(sh));
  }
  for (auto& ev : pending) {
    const int dst = ev.is_packet()       ? shard_of(ev.to)
                    : ev.lane > EventQueue::kGlobalLane
                        ? shard_of(static_cast<NodeId>(ev.lane - 1))
                        : 0;
    shards_[static_cast<std::size_t>(dst)]->queue.inject(std::move(ev));
  }
}

// --- Time, scheduling -------------------------------------------------------

Time Simulator::now() const {
  if (tls_.sim == this && tls_.shard >= 0)
    return shards_[static_cast<std::size_t>(tls_.shard)]->queue.now();
  return global_now_;
}

Time Simulator::next_event_time() const {
  Time t = global_q_.next_time();
  for (const auto& sh : shards_) t = std::min(t, sh->queue.next_time());
  return t;
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t n = executed_base_ + global_q_.executed();
  for (const auto& sh : shards_) n += sh->queue.executed();
  return n;
}

void Simulator::schedule_at(Time at, EventQueue::Action action) {
  if (in_shard_context() && tls_.node != kNoNode) {
    // Node context: the event stays affine to the executing node, so the
    // timer chain keeps running in its shard with its lane key.
    shards_[static_cast<std::size_t>(tls_.shard)]->queue.schedule_at(
        at, std::move(action), lane_of(tls_.node),
        node_seq_[static_cast<std::size_t>(tls_.node)]++);
  } else {
    global_q_.schedule_at(at, std::move(action));
  }
}

void Simulator::schedule_for(NodeId node_id, Time delay,
                             std::function<void()> action) {
  const int dst = shard_of(node_id);
  if (in_shard_context() && dst != tls_.shard) {
    // Would race on the target shard's queue mid-window; nodes talk to other
    // shards through send() (which has >= lookahead latency), never timers.
    throw std::logic_error(
        "schedule_for: cross-shard target from node context");
  }
  const std::uint32_t inc = node(node_id).incarnation();
  const Time at = now() + delay;
  shards_[static_cast<std::size_t>(dst)]->queue.schedule_at(
      at,
      [this, node_id, inc, action = std::move(action)]() {
        const Node& n = node(node_id);
        if (n.alive() && n.incarnation() == inc) action();
      },
      lane_of(node_id), node_seq_[static_cast<std::size_t>(node_id)]++);
}

// --- Execution --------------------------------------------------------------

void Simulator::exec_node_event(int shard, EventQueue::Event& ev) {
  const ExecContext saved = tls_;
  tls_.sim = this;
  tls_.shard = shard;
  tls_.node = ev.is_packet() ? ev.to
              : ev.lane > EventQueue::kGlobalLane
                  ? static_cast<NodeId>(ev.lane - 1)
                  : kNoNode;
  if (ev.action) {
    ev.action();
  } else {
    deliver_packet(ev.from, ev.to, ev.link, ev.packet);
  }
  tls_ = saved;
}

void Simulator::exec_global_event(EventQueue::Event& ev) {
  const ExecContext saved = tls_;
  tls_ = ExecContext{this, -1, kNoNode};
  global_now_ = ev.at;
  if (ev.action) {
    ev.action();
  } else {
    deliver_packet(ev.from, ev.to, ev.link, ev.packet);
  }
  tls_ = saved;
}

bool Simulator::step() {
  if (shard_count_ != 1)
    throw std::logic_error("Simulator::step: serial kernel only");
  Shard& sh = *shards_[0];
  const EventQueue::Key gk = global_q_.front_key();
  const EventQueue::Key sk = sh.queue.front_key();
  if (gk.at == kTimeNever && sk.at == kTimeNever) return false;
  EventQueue::Event ev;
  if (gk < sk) {
    global_q_.pop(ev);
    exec_global_event(ev);
  } else {
    sh.queue.pop(ev);
    exec_node_event(0, ev);
    counters_dirty_ = true;
  }
  sync_global_now();
  fold_counters();
  return true;
}

void Simulator::run_until(Time t) {
  std::uint64_t shard_events = 0;
  for (const auto& sh : shards_) shard_events += sh->queue.executed();
  if (shard_count_ == 1) {
    run_serial_until(t);
  } else {
    run_parallel_until(t);
  }
  std::uint64_t after = 0;
  for (const auto& sh : shards_) after += sh->queue.executed();
  if (after != shard_events) counters_dirty_ = true;
  sync_global_now();
  // run_until returns at a quiescent point: make the merged totals current
  // so callers holding a counters() reference read up-to-date values.
  fold_counters();
}

void Simulator::run_serial_until(Time t) {
  Shard& sh = *shards_[0];
  EventQueue::Event ev;
  for (;;) {
    const EventQueue::Key gk = global_q_.front_key();
    const EventQueue::Key sk = sh.queue.front_key();
    const bool use_global = gk < sk;
    const Time at = use_global ? gk.at : sk.at;
    if (at == kTimeNever || at > t) break;
    if (use_global) {
      global_q_.pop(ev);
      exec_global_event(ev);
    } else {
      sh.queue.pop(ev);
      exec_node_event(0, ev);
    }
  }
}

void Simulator::run_parallel_until(Time t) {
  ensure_workers();
  bool awake = false;  // workers enter the barrier loop on the first window
  for (;;) {
    Time tn = kTimeNever;
    for (const auto& sh : shards_) tn = std::min(tn, sh->queue.next_time());
    const Time tg = global_q_.next_time();
    if (std::min(tn, tg) == kTimeNever || std::min(tn, tg) > t) break;
    if (tg <= tn) {
      // The global lane sorts first at equal time (lane 0): run every
      // harness event at tg with the workers parked — fault injection and
      // monitors see a quiescent simulation.
      run_globals_at(tg);
      continue;
    }
    // Conservative window: no event before tn exists anywhere, cross-shard
    // traffic arrives >= lookahead after its send, and pending global events
    // clip the window so they run at a barrier.
    Time w = t;
    if (tg != kTimeNever) w = std::min(w, tg - 1);
    if (lookahead_ != kTimeNever && tn <= kTimeNever - lookahead_)
      w = std::min(w, tn + lookahead_ - 1);
    run_window(w, awake);
  }
  if (awake) {
    // Send the workers back to the condition variable (every wake-up is
    // matched by an Exit command, so stop_workers never strands a worker
    // spinning at the command barrier). The second barrier acknowledges the
    // command: without it a slow worker could still be *reading* cmd_ when
    // this thread, already back in the harness, starts the next run and
    // overwrites it — the worker would miss the exit, skip the wake-up gate
    // and arrive at the wrong barrier phase.
    cmd_ = Cmd::Exit;
    barrier_.arrive_and_wait();
    barrier_.arrive_and_wait();
  }
}

void Simulator::run_globals_at(Time at) {
  global_now_ = at;
  EventQueue::Event ev;
  while (!global_q_.empty() && global_q_.next_time() == at) {
    global_q_.pop(ev);
    exec_global_event(ev);
  }
}

void Simulator::run_window(Time end, bool& awake) {
  if (!awake) {
    {
      std::lock_guard<std::mutex> lk(start_mu_);
      ++window_gen_;
    }
    start_cv_.notify_all();
    awake = true;
  }
  // The workers wait at the command barrier; cmd_/window_end_ writes are
  // published to them by the barrier itself.
  window_end_ = end;
  cmd_ = Cmd::Window;
  barrier_.arrive_and_wait();  // command out
  run_shard_window(0);
  barrier_.arrive_and_wait();  // every shard drained to the window end
  drain_inboxes(0);
  barrier_.arrive_and_wait();  // every mailbox merged
}

void Simulator::run_shard_window(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  EventQueue::Event ev;
  while (sh.queue.pop_until(window_end_, ev)) {
    exec_node_event(shard, ev);
  }
}

void Simulator::drain_inboxes(int shard) {
  Shard& dst = *shards_[static_cast<std::size_t>(shard)];
  for (auto& src : shards_) {
    auto& box = src->outbox[static_cast<std::size_t>(shard)];
    for (auto& ev : box) dst.queue.inject(std::move(ev));
    box.clear();
  }
}

void Simulator::fold_counters() {
  if (!counters_dirty_) return;
  for (auto& sh : shards_) counters_.merge_from(sh->counters);
  counters_dirty_ = false;
}

void Simulator::sync_global_now() {
  Time m = std::max(global_now_, global_q_.now());
  for (const auto& sh : shards_) m = std::max(m, sh->queue.now());
  global_now_ = m;
  global_q_.sync_now(m);
}

// --- Worker pool ------------------------------------------------------------

void Simulator::ensure_workers() {
  if (shard_count_ <= 1 || !workers_.empty()) return;
  barrier_.parties = shard_count_;
  // Spin only when every shard can actually hold a core; otherwise block
  // right away — spinning against threads that need this core turns every
  // epoch phase into a scheduler round-trip.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  barrier_.spin_limit = hw >= shard_count_ ? 4096 : 0;
  barrier_.arrived.store(0, std::memory_order_relaxed);
  barrier_.generation.store(0, std::memory_order_relaxed);
  exit_workers_ = false;
  workers_.reserve(static_cast<std::size_t>(shard_count_ - 1));
  for (int s = 1; s < shard_count_; ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void Simulator::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(start_mu_);
    exit_workers_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  exit_workers_ = false;
}

void Simulator::worker_main(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(start_mu_);
      start_cv_.wait(lk,
                     [&] { return exit_workers_ || window_gen_ != seen; });
      if (exit_workers_) return;
      seen = window_gen_;
    }
    for (;;) {
      barrier_.arrive_and_wait();  // command barrier
      if (cmd_ == Cmd::Exit) {
        barrier_.arrive_and_wait();  // ack: every worker has read the exit
        break;
      }
      run_shard_window(shard);
      barrier_.arrive_and_wait();
      drain_inboxes(shard);
      barrier_.arrive_and_wait();
    }
  }
}

// --- Failures ---------------------------------------------------------------

void Simulator::kill_node(NodeId id) {
  if (in_shard_context())
    throw std::logic_error("kill_node: not from node context");
  Node& n = node(id);
  n.fail_stop();
  for (const Network::Edge& e : network_.adjacency(id)) {
    network_.link(e.link).set_state(LinkState::PermanentDown);
  }
  network_.bump_epoch();  // the alive set is part of the topology epoch
  REN_LOG(Info, "t=%.3fs node %d fail-stopped", to_seconds(now()), id);
}

void Simulator::revive_node(NodeId id) {
  if (in_shard_context())
    throw std::logic_error("revive_node: not from node context");
  Node& n = node(id);
  if (n.alive()) return;
  n.revive();
  n.start();  // restart the timer chains under the new incarnation
  network_.bump_epoch();
  REN_LOG(Info, "t=%.3fs node %d revived", to_seconds(now()), id);
}

void Simulator::set_link_state(NodeId a, NodeId b, LinkState state) {
  if (in_shard_context())
    throw std::logic_error("set_link_state: not from node context");
  Link* l = network_.find_link(a, b);
  if (l == nullptr) throw std::invalid_argument("set_link_state: no such link");
  l->set_state(state);
}

// --- Services ---------------------------------------------------------------

Counters& Simulator::counters() {
  if (in_shard_context())
    return shards_[static_cast<std::size_t>(tls_.shard)]->counters;
  fold_counters();
  return counters_;
}

void Simulator::send(NodeId from, NodeId to, Packet packet) {
  Counters& c = counters();
  ++c.packets_sent;
  Link* link = network_.find_link(from, to);
  if (link == nullptr ||
      (!link->passes_traffic() && link->state() != LinkState::Blackhole)) {
    ++c.drops_link_down;
    return;
  }
  // All per-packet randomness comes from the *sender's* stream, so the draw
  // sequence follows the node's own deterministic trajectory at any shard
  // count. A blackholing (failing-but-not-yet-detected) port flaps: most
  // packets are lost, a trickle still passes — that trickle is what produces
  // the duplicate-ack and out-of-order signatures of Figs. 18-20.
  Rng& r = node_rng(from);
  if (link->state() == LinkState::Blackhole && r.chance(0.9)) {
    ++c.drops_link_down;
    return;
  }
  const Link::TxPlan plan =
      link->plan_transmission(from, packet.bytes, now(), r);
  if (plan.dropped) {
    ++c.drops_queue;
    return;
  }
  // In-band channel corruption: replace the payload with a field-permuted
  // deep copy (proto/mutate.hpp). Gated on the probability so zero-knob
  // runs draw nothing extra and stay byte-identical; the draw comes from
  // the sender's stream like every other per-packet fault.
  const double pc = link->params().faults.corrupt;
  if (pc > 0 && packet.payload != nullptr && r.chance(pc)) {
    packet.payload = std::make_shared<const proto::Payload>(
        proto::corrupt_payload(*packet.payload, r,
                               static_cast<NodeId>(node_count())));
    ++c.packets_corrupted;
  }

  const int link_index = link->index();
  const int dst = shard_of(to);
  const std::int32_t lane = lane_of(from);
  // Cross-shard deliveries are buffered in the sender shard's outbox and
  // merged at the epoch barrier; the conservative window guarantees their
  // arrival time is past the window end. Same-shard (and quiescent-context)
  // sends go straight into the target queue.
  const bool cross = in_shard_context() && dst != tls_.shard;
  const auto emit = [&](Time at, Packet&& p) {
    const std::uint64_t seq = node_seq_[static_cast<std::size_t>(from)]++;
    if (cross) {
      EventQueue::Event ev;
      ev.at = at;
      ev.lane = lane;
      ev.seq = seq;
      ev.packet = std::move(p);
      ev.from = from;
      ev.to = to;
      ev.link = link_index;
      shards_[static_cast<std::size_t>(tls_.shard)]
          ->outbox[static_cast<std::size_t>(dst)]
          .push_back(std::move(ev));
    } else {
      shards_[static_cast<std::size_t>(dst)]->queue.schedule_packet(
          at, from, to, link_index, std::move(p), lane, seq);
    }
  };
  if (plan.duplicated) {
    // Keep the original event order (delivery enqueued before the
    // duplicate) so same-time copies tie-break by lane sequence.
    Packet copy = packet;
    emit(plan.deliver_at, std::move(copy));
    emit(plan.duplicate_at, std::move(packet));
  } else {
    emit(plan.deliver_at, std::move(packet));
  }
}

void Simulator::deliver_packet(NodeId from, NodeId to, int link,
                               Packet& packet) {
  Counters& c = counters();
  // In-flight packets on a permanently removed link are lost.
  if (network_.link(link).state() == LinkState::PermanentDown) {
    ++c.drops_link_down;
    return;
  }
  Node& receiver = node(to);
  if (!receiver.alive()) {
    ++c.drops_dead_node;
    return;
  }
  ++c.packets_delivered;
  receiver.on_packet(from, packet);
}

}  // namespace ren::net

// The simulation kernel: owns the event queues, the network, the nodes, the
// RNG streams and the counters.
//
// Two execution modes share one code path:
//
//   - Serial (shard count 1, the default): one node queue plus the global
//     harness queue, popped in deterministic (time, lane, lane-seq) order on
//     the calling thread — the paper's one-atomic-step interleaving model.
//
//   - Parallel (configure_parallel(S)): nodes are partitioned into S shards
//     (net::shard.hpp), each with its own event queue and counters, and
//     simulated time advances in conservative epochs of width Δ = the
//     minimum cross-shard link latency. Within a window [T, T+Δ) shards
//     execute independently on worker threads; a cross-shard send() lands in
//     the sender shard's per-destination outbox and is drained into the
//     target queue at the epoch barrier. Because event keys are
//     content-based — (time, lane = scheduling node + 1, per-lane sequence)
//     — every node observes the identical stimulus order at any shard
//     count, and per-node RNG streams (Rng::stream_seed) plus per-shard
//     counters with a commutative merge make whole-trial outcomes
//     bit-identical to the serial kernel. Harness events (the global lane)
//     always execute at a barrier with every worker parked, so fault
//     injection and monitors see a quiescent simulation, exactly as in
//     serial mode.
#pragma once

#include <condition_variable>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/event_queue.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/shard.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::net {

/// Global accounting used by the benches (Fig. 9 communication overhead,
/// drop diagnostics, Lemma 3 message sizes).
struct Counters {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_dead_node = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_no_rule = 0;
  std::uint64_t drops_ambiguous_rule = 0;
  std::uint64_t packets_corrupted = 0;  ///< in-band channel corruption hits
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t max_control_message_bytes = 0;

  /// Application-level control messages originated per node (transport Act
  /// frames carrying a Message). Indexed by NodeId.
  std::vector<std::uint64_t> ctrl_messages_sent;
  /// Individual controller commands issued per node (newRound, addMngr,
  /// updateRule, query, ...). Indexed by NodeId; drives the Fig. 9 metric.
  std::vector<std::uint64_t> ctrl_commands_sent;
  /// Completed do-forever iterations per node. Indexed by NodeId.
  std::vector<std::uint64_t> iterations;

  void ensure_nodes(std::size_t n) {
    if (ctrl_messages_sent.size() < n) ctrl_messages_sent.resize(n, 0);
    if (ctrl_commands_sent.size() < n) ctrl_commands_sent.resize(n, 0);
    if (iterations.size() < n) iterations.resize(n, 0);
  }

  /// Fold `other` into this and reset `other` to zero (sizes kept). Sums
  /// everywhere except max_control_message_bytes (max) — commutative and
  /// associative, so the per-shard merge order cannot affect the result.
  void merge_from(Counters& other);

  /// Order-independent digest of every field — the per-trial Counters
  /// identity check behind --paranoid-sim and the determinism tests.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- time & events --------------------------------------------------------
  /// Inside a node event: that shard's clock. Elsewhere: the time of the
  /// last executed event across all queues (the serial-kernel semantic).
  [[nodiscard]] Time now() const;
  void schedule(Time delay, EventQueue::Action action) {
    schedule_at(now() + delay, std::move(action));
  }
  /// Schedule an action. From node context the event stays on that node's
  /// lane (and shard); from the harness or a global event it goes to the
  /// global lane, which only ever executes at an epoch barrier.
  void schedule_at(Time at, EventQueue::Action action);
  /// Schedule an action that is silently skipped if the node has fail-stopped.
  /// Always keyed to `node`'s lane and executed in `node`'s shard, no matter
  /// the scheduling context — timer chains stay shard-local.
  void schedule_for(NodeId node, Time delay, std::function<void()> action);

  /// Execute one event (serial mode only; throws with shards configured).
  bool step();
  /// Run until simulated time `t` (events at exactly t are executed).
  void run_until(Time t);
  /// Time of the next pending event, or kTimeNever when the queue is empty.
  /// Note now() only advances by executing events, so a caller stepping in
  /// fixed increments must consult this to skip quiet gaps.
  [[nodiscard]] Time next_event_time() const;
  [[nodiscard]] std::uint64_t events_executed() const;

  // --- topology --------------------------------------------------------------
  /// Transfer ownership of a node into the simulator. The node's id must
  /// equal the current node count (dense ids).
  NodeId add_node(std::unique_ptr<Node> node);

  template <typename T, typename... Args>
  T& emplace_node(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    add_node(std::move(owned));
    return ref;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Node& node(NodeId id) const {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  int add_link(NodeId a, NodeId b, const LinkParams& params);
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const Network& network() const { return network_; }

  // --- parallel execution -----------------------------------------------------
  /// Partition the current nodes into (at most) `shards` shards and enable
  /// the epoch-lockstep parallel kernel. Call after every node and link
  /// exists (pending events are redistributed by lane). `shards` <= 1, or a
  /// plan without usable lookahead, restores the serial kernel.
  void configure_parallel(int shards);
  [[nodiscard]] int shard_count() const { return shard_count_; }
  [[nodiscard]] int shard_of(NodeId id) const {
    return shard_of_.empty() ? 0 : shard_of_[static_cast<std::size_t>(id)];
  }
  /// Conservative epoch width (kTimeNever: unbounded windows — serial, or
  /// no cross-shard links).
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  // --- failures ----------------------------------------------------------------
  /// Fail-stop a node: it stops taking steps and all its links go down
  /// permanently (the paper's node-removal semantics, Section 3.4.2).
  /// Harness/barrier context only.
  void kill_node(NodeId id);

  /// Bring a fail-stopped node back: it keeps the (stale) state it crashed
  /// with and restarts its timers. Links are NOT restored here — the faults
  /// layer tracks which links each kill took down and restores exactly those
  /// (faults::restart_node). Harness/barrier context only.
  void revive_node(NodeId id);

  /// Change the state of the a-b link. Throws if the link does not exist.
  void set_link_state(NodeId a, NodeId b, LinkState state);

  // --- services ---------------------------------------------------------------
  /// The harness stream (topology synthesis, fault selection, tests). Node
  /// code must use node_rng()/its own stream — the kernel's send path does.
  [[nodiscard]] Rng& rng() { return rng_; }
  /// The node's own deterministic stream, seeded Rng::stream_seed(seed, id).
  [[nodiscard]] Rng& node_rng(NodeId id) {
    return node_rngs_[static_cast<std::size_t>(id)];
  }
  /// Inside a node event: the executing shard's counters. Elsewhere: the
  /// merged totals (folds the shards first — quiescent context only).
  [[nodiscard]] Counters& counters();

  /// True when the calling thread is executing an event of a multi-shard
  /// simulation. Layers that optimise through exclusive buffer ownership
  /// (shared_ptr use_count() == 1 → mutate in place) must consult this and
  /// fall back to fresh allocation: use_count() is a relaxed load, so the
  /// ownership hand-off from a peer shard carries no happens-before edge.
  [[nodiscard]] static bool concurrent_context();

  /// Transmit `packet` from `from` to its direct neighbor `to`. Applies
  /// link state, bandwidth/queueing and the packet fault model; delivery
  /// invokes `Node::on_packet` on the receiver. All randomness comes from
  /// `from`'s stream; a cross-shard delivery is buffered in the sender
  /// shard's outbox until the epoch barrier.
  void send(NodeId from, NodeId to, Packet packet);

 private:
  struct Shard {
    EventQueue queue;
    Counters counters;
    /// Cross-shard events produced during the current window, per
    /// destination shard; drained at the epoch barrier.
    std::vector<std::vector<EventQueue::Event>> outbox;
  };

  /// Which simulator/shard/node the current thread is executing, if any.
  /// Routes now(), counters(), lane assignment and the send path.
  struct ExecContext {
    Simulator* sim = nullptr;
    int shard = -1;  ///< >= 0: node event on that shard; -1: global event
    NodeId node = kNoNode;
  };
  static thread_local ExecContext tls_;

  /// Reusable sense-reversing barrier for the epoch phases. Waiters spin
  /// (windows are short — parking on every phase would dominate), but only
  /// for a bounded count before blocking on the condition variable: on an
  /// oversubscribed machine (fewer cores than shards) pure spinning turns
  /// every phase hand-off into scheduler round-trips. spin_limit 0 blocks
  /// immediately — ensure_workers picks it from the core count.
  struct SpinBarrier {
    std::atomic<std::uint64_t> generation{0};
    std::atomic<int> arrived{0};
    int parties = 1;
    int spin_limit = 0;
    std::mutex mu;
    std::condition_variable cv;
    void arrive_and_wait();
  };

  [[nodiscard]] bool in_shard_context() const {
    return tls_.sim == this && tls_.shard >= 0;
  }
  static constexpr std::int32_t lane_of(NodeId id) { return id + 1; }

  /// Packet-event endpoint: link/liveness checks at delivery time, then
  /// Node::on_packet (the deferred half of send()).
  void deliver_packet(NodeId from, NodeId to, int link, Packet& packet);

  void exec_node_event(int shard, EventQueue::Event& ev);
  void exec_global_event(EventQueue::Event& ev);
  void run_serial_until(Time t);
  void run_parallel_until(Time t);
  void run_globals_at(Time at);
  /// Coordinator side of one epoch window. Wakes the workers into the
  /// barrier loop on the first window of a run (`awake`).
  void run_window(Time end, bool& awake);
  void run_shard_window(int shard); ///< drain one shard's queue to window_end_
  void drain_inboxes(int shard);    ///< merge outboxes targeting `shard`
  void fold_counters();
  void ensure_workers();
  void stop_workers();
  void worker_main(int shard);
  void sync_global_now();

  std::vector<std::unique_ptr<Shard>> shards_;  ///< always >= 1 entries
  EventQueue global_q_;  ///< lane-0 harness events; runs at barriers only
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Rng rng_;
  std::vector<Rng> node_rngs_;
  /// Per-lane monotonic schedule counters (index = NodeId). Only ever
  /// touched from the owning node's shard or at quiescent points.
  std::vector<std::uint64_t> node_seq_;
  std::uint64_t seed_;
  Counters counters_;  ///< merged totals (valid when !counters_dirty_)
  bool counters_dirty_ = false;

  std::vector<int> shard_of_;
  int shard_count_ = 1;
  Time lookahead_ = kTimeNever;
  Time global_now_ = 0;  ///< harness-visible clock (last executed event)
  std::uint64_t executed_base_ = 0;  ///< events counted before a re-partition

  // Worker pool (parallel mode). Workers sleep on the condition variable
  // between run_until calls; inside a call they stay in a barrier loop —
  // command barrier (read cmd_/window_end_), execute, exec barrier, drain
  // mailboxes, drain barrier, back to the command barrier — so a window
  // costs three spin barriers and zero futex wake-ups. The coordinator
  // computes window bounds and runs global/harness events while the workers
  // wait at the command barrier.
  enum class Cmd { Window, Exit };
  std::vector<std::thread> workers_;
  std::mutex start_mu_;
  std::condition_variable start_cv_;
  std::uint64_t window_gen_ = 0;
  bool exit_workers_ = false;
  Cmd cmd_ = Cmd::Exit;   ///< written by the coordinator between barriers
  Time window_end_ = 0;   ///< likewise
  SpinBarrier barrier_;
};

}  // namespace ren::net

// The simulation kernel: owns the event queue, the network, the nodes, the
// RNG and the global counters. Single-threaded by design — the paper's
// interleaving model has one atomic step at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/event_queue.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::net {

/// Global accounting used by the benches (Fig. 9 communication overhead,
/// drop diagnostics, Lemma 3 message sizes).
struct Counters {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_dead_node = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_no_rule = 0;
  std::uint64_t drops_ambiguous_rule = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t max_control_message_bytes = 0;

  /// Application-level control messages originated per node (transport Act
  /// frames carrying a Message). Indexed by NodeId.
  std::vector<std::uint64_t> ctrl_messages_sent;
  /// Individual controller commands issued per node (newRound, addMngr,
  /// updateRule, query, ...). Indexed by NodeId; drives the Fig. 9 metric.
  std::vector<std::uint64_t> ctrl_commands_sent;
  /// Completed do-forever iterations per node. Indexed by NodeId.
  std::vector<std::uint64_t> iterations;

  void ensure_nodes(std::size_t n) {
    if (ctrl_messages_sent.size() < n) ctrl_messages_sent.resize(n, 0);
    if (ctrl_commands_sent.size() < n) ctrl_commands_sent.resize(n, 0);
    if (iterations.size() < n) iterations.resize(n, 0);
  }
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed) : rng_(seed) {
    events_.set_packet_handler(
        [this](NodeId from, NodeId to, int link, Packet& packet) {
          deliver_packet(from, to, link, packet);
        });
  }

  // --- time & events --------------------------------------------------------
  [[nodiscard]] Time now() const { return events_.now(); }
  void schedule(Time delay, EventQueue::Action action) {
    events_.schedule_at(now() + delay, std::move(action));
  }
  void schedule_at(Time at, EventQueue::Action action) {
    events_.schedule_at(at, std::move(action));
  }
  /// Schedule an action that is silently skipped if the node has fail-stopped.
  void schedule_for(NodeId node, Time delay, std::function<void()> action);

  bool step() { return events_.step(); }
  /// Run until simulated time `t` (events at exactly t are executed).
  void run_until(Time t);
  /// Time of the next pending event, or kTimeNever when the queue is empty.
  /// Note now() only advances by executing events, so a caller stepping in
  /// fixed increments must consult this to skip quiet gaps.
  [[nodiscard]] Time next_event_time() const { return events_.next_time(); }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_.executed();
  }

  // --- topology --------------------------------------------------------------
  /// Transfer ownership of a node into the simulator. The node's id must
  /// equal the current node count (dense ids).
  NodeId add_node(std::unique_ptr<Node> node);

  template <typename T, typename... Args>
  T& emplace_node(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    add_node(std::move(owned));
    return ref;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Node& node(NodeId id) const {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  int add_link(NodeId a, NodeId b, const LinkParams& params);
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] const Network& network() const { return network_; }

  // --- failures ----------------------------------------------------------------
  /// Fail-stop a node: it stops taking steps and all its links go down
  /// permanently (the paper's node-removal semantics, Section 3.4.2).
  void kill_node(NodeId id);

  /// Bring a fail-stopped node back: it keeps the (stale) state it crashed
  /// with and restarts its timers. Links are NOT restored here — the faults
  /// layer tracks which links each kill took down and restores exactly those
  /// (faults::restart_node).
  void revive_node(NodeId id);

  /// Change the state of the a-b link. Throws if the link does not exist.
  void set_link_state(NodeId a, NodeId b, LinkState state);

  // --- services ---------------------------------------------------------------
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Counters& counters() { return counters_; }

  /// Transmit `packet` from `from` to its direct neighbor `to`. Applies
  /// link state, bandwidth/queueing and the packet fault model; delivery
  /// invokes `Node::on_packet` on the receiver.
  void send(NodeId from, NodeId to, Packet packet);

 private:
  /// Packet-event endpoint: link/liveness checks at delivery time, then
  /// Node::on_packet (the deferred half of send()).
  void deliver_packet(NodeId from, NodeId to, int link, Packet& packet);

  EventQueue events_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Rng rng_;
  Counters counters_;
};

}  // namespace ren::net

// Control-plane wire messages (paper Figure 4).
//
// A controller sends an aggregated *command batch* to each reachable node:
//   <'newRound', t> ... update commands ... <'updateRule', rules> <'query', t>
// Switches apply the batch atomically and answer the trailing query with
// their configuration <j, Nc(j), manager(j), rules(j)>. Controllers ignore
// everything but the query, which they answer with their neighborhood and
// the echoed tag (Algorithm 2, line 23).
//
// Fidelity note: in query replies the rule set is carried as per-owner
// summaries (owner id, round tag, rule count) rather than the full rules.
// Algorithm 2 only inspects rule ownership and tags of replies; the full
// rule bytes still count toward message sizes via `rules_wire_bytes`, so the
// Lemma 3 / Fig. 9 measurements reflect the real encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "proto/rule.hpp"
#include "proto/tag.hpp"
#include "util/types.hpp"

namespace ren::proto {

// --- Commands -----------------------------------------------------------

struct NewRoundCmd {
  Tag tag;            ///< becomes the sender's meta-rule (round) tag
  int retention = 2;  ///< rounds of old rule lists the switch retains:
                      ///< 2 = Algorithm 2, 3 = the Section 6.2 variant
};
struct DelMngrCmd {
  NodeId k = kNoNode;  ///< manager to remove
};
struct AddMngrCmd {
  NodeId k = kNoNode;  ///< manager to add
};
struct DelAllRulesCmd {
  NodeId k = kNoNode;  ///< delete every rule whose cID == k
};
struct UpdateRuleCmd {
  RuleListPtr rules;  ///< replaces the sender's rules for round `tag`
  Tag tag;
};
struct QueryCmd {
  Tag tag;  ///< round tag echoed in the reply
};

using Command = std::variant<NewRoundCmd, DelMngrCmd, AddMngrCmd,
                             DelAllRulesCmd, UpdateRuleCmd, QueryCmd>;

/// One aggregated configuration+query message (Algorithm 2, line 19).
struct CommandBatch {
  NodeId from = kNoNode;  ///< issuing controller p_i
  std::vector<Command> commands;
};

// --- Replies ------------------------------------------------------------

/// Per-owner rule summary inside a query reply.
struct RuleOwnerSummary {
  NodeId cid = kNoNode;
  Tag tag;
  std::uint32_t count = 0;

  friend bool operator==(const RuleOwnerSummary&,
                         const RuleOwnerSummary&) = default;
};

/// Query reply m = <ID, Nc, Mng, rules> (Figure 4). `tag_for_querier` is the
/// round tag as seen by the querying controller: for switches the tag of the
/// querier's meta rule, for controllers the echoed query tag.
struct QueryReply {
  NodeId id = kNoNode;
  std::vector<NodeId> nc;        ///< respondent's communication neighborhood
  std::vector<NodeId> managers;  ///< switch only; empty for controllers
  std::vector<RuleOwnerSummary> rule_owners;
  std::size_t rules_wire_bytes = 0;  ///< encoded size of the full rule set
  Tag tag_for_querier;
  bool from_controller = false;

  friend bool operator==(const QueryReply&, const QueryReply&) = default;
};

using Message = std::variant<CommandBatch, QueryReply>;

// --- Wire-size accounting (Lemma 3) ----------------------------------------

inline std::size_t wire_size(const Command& c) {
  return std::visit(
      [](const auto& v) -> std::size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, UpdateRuleCmd>) {
          std::size_t s = 12;
          if (v.rules) s += v.rules->size() * wire_size(Rule{});
          return s;
        } else {
          return 12;  // opcode + one id/tag operand
        }
      },
      c);
}

inline std::size_t wire_size(const CommandBatch& b) {
  std::size_t s = 8;
  for (const auto& c : b.commands) s += wire_size(c);
  return s;
}

inline std::size_t wire_size(const QueryReply& r) {
  return 24 + 4 * (r.nc.size() + r.managers.size()) + r.rules_wire_bytes;
}

inline std::size_t wire_size(const Message& m) {
  return std::visit([](const auto& v) { return wire_size(v); }, m);
}

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace ren::proto

// Control-plane wire messages (paper Figure 4).
//
// A controller sends an aggregated *command batch* to each reachable node:
//   <'newRound', t> ... update commands ... <'updateRule', rules> <'query', t>
// Switches apply the batch atomically and answer the trailing query with
// their configuration <j, Nc(j), manager(j), rules(j)>. Controllers ignore
// everything but the query, which they answer with their neighborhood and
// the echoed tag (Algorithm 2, line 23).
//
// Fidelity note: in query replies the rule set is carried as per-owner
// summaries (owner id, round tag, rule count) rather than the full rules.
// Algorithm 2 only inspects rule ownership and tags of replies; the full
// rule bytes still count toward message sizes via `rules_wire_bytes`, so the
// Lemma 3 / Fig. 9 measurements reflect the real encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "proto/rule.hpp"
#include "proto/tag.hpp"
#include "util/types.hpp"

namespace ren::proto {

// --- Commands -----------------------------------------------------------

struct NewRoundCmd {
  Tag tag;            ///< becomes the sender's meta-rule (round) tag
  int retention = 2;  ///< rounds of old rule lists the switch retains:
                      ///< 2 = Algorithm 2, 3 = the Section 6.2 variant
};
struct DelMngrCmd {
  NodeId k = kNoNode;  ///< manager to remove
};
struct AddMngrCmd {
  NodeId k = kNoNode;  ///< manager to add
};
struct DelAllRulesCmd {
  NodeId k = kNoNode;  ///< delete every rule whose cID == k
};
struct UpdateRuleCmd {
  RuleListPtr rules;  ///< replaces the sender's rules for round `tag`
  Tag tag;
};
struct QueryCmd {
  Tag tag;  ///< round tag echoed in the reply
};

using Command = std::variant<NewRoundCmd, DelMngrCmd, AddMngrCmd,
                             DelAllRulesCmd, UpdateRuleCmd, QueryCmd>;

/// One aggregated configuration+query message (Algorithm 2, line 19).
struct CommandBatch {
  NodeId from = kNoNode;  ///< issuing controller p_i
  std::vector<Command> commands;
};

// --- Replies ------------------------------------------------------------

/// Per-owner rule summary inside a query reply.
struct RuleOwnerSummary {
  NodeId cid = kNoNode;
  Tag tag;
  std::uint32_t count = 0;

  friend bool operator==(const RuleOwnerSummary&,
                         const RuleOwnerSummary&) = default;
};

/// Query reply m = <ID, Nc, Mng, rules> (Figure 4). `tag_for_querier` is the
/// round tag as seen by the querying controller: for switches the tag of the
/// querier's meta rule, for controllers the echoed query tag.
struct QueryReply {
  NodeId id = kNoNode;
  std::vector<NodeId> nc;        ///< respondent's communication neighborhood
  std::vector<NodeId> managers;  ///< switch only; empty for controllers
  std::vector<RuleOwnerSummary> rule_owners;
  std::size_t rules_wire_bytes = 0;  ///< encoded size of the full rule set
  Tag tag_for_querier;
  bool from_controller = false;

  friend bool operator==(const QueryReply&, const QueryReply&) = default;
};

using Message = std::variant<CommandBatch, QueryReply>;
using MessagePtr = std::shared_ptr<const Message>;

inline MessagePtr make_message(Message&& m) {
  return std::make_shared<const Message>(std::move(m));
}

// --- Outbound batch fingerprint (zero-copy fan-out) -------------------------

/// Content fingerprint of an outbound CommandBatch. Two batches from the
/// same controller with equal keys encode to identical wire bytes, so
/// successive-batch equality is an O(victims) tag/pointer compare instead of
/// a deep command-list compare: `rules` is the *identity* of the
/// UpdateRuleCmd payload (rule lists are immutable and shared, so pointer
/// equality implies content equality) and `victims` digests the
/// manager/rule-eviction delta in command order.
struct BatchKey {
  Tag tag;                      ///< round tag of newRound/updateRule/query
  int retention = 2;
  bool query_only = false;      ///< controller-class batch: newRound + query
  RuleListPtr rules;            ///< updateRule payload (switch classes)
  std::vector<NodeId> victims;  ///< delMngr+delAllRules targets, ascending

  friend bool operator==(const BatchKey&, const BatchKey&) = default;

  /// Equal up to the round tag — the batch-planner rotation fast path.
  [[nodiscard]] bool same_except_tag(const BatchKey& o) const {
    return retention == o.retention && query_only == o.query_only &&
           rules == o.rules && victims == o.victims;
  }

  /// Commands in the batch this key describes (Fig. 9 accounting):
  /// newRound [+ victim pairs + addMngr + updateRule] + query.
  [[nodiscard]] std::size_t command_count() const {
    return query_only ? 2 : 4 + 2 * victims.size();
  }
};

/// Materialize the command batch a key describes (Algorithm 2, line 19).
inline Message build_batch(NodeId from, const BatchKey& k) {
  CommandBatch b;
  b.from = from;
  b.commands.reserve(k.command_count());
  b.commands.push_back(NewRoundCmd{k.tag, k.retention});
  if (!k.query_only) {
    for (NodeId v : k.victims) {
      b.commands.push_back(DelMngrCmd{v});
      b.commands.push_back(DelAllRulesCmd{v});
    }
    b.commands.push_back(AddMngrCmd{from});
    b.commands.push_back(UpdateRuleCmd{k.rules, k.tag});
  }
  b.commands.push_back(QueryCmd{k.tag});
  return Message{std::move(b)};
}

// --- Wire-size accounting (Lemma 3) ----------------------------------------

inline std::size_t wire_size(const Command& c) {
  return std::visit(
      [](const auto& v) -> std::size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, UpdateRuleCmd>) {
          std::size_t s = 12;
          if (v.rules) s += v.rules->size() * wire_size(Rule{});
          return s;
        } else {
          return 12;  // opcode + one id/tag operand
        }
      },
      c);
}

inline std::size_t wire_size(const CommandBatch& b) {
  std::size_t s = 8;
  for (const auto& c : b.commands) s += wire_size(c);
  return s;
}

inline std::size_t wire_size(const QueryReply& r) {
  return 24 + 4 * (r.nc.size() + r.managers.size()) + r.rules_wire_bytes;
}

inline std::size_t wire_size(const Message& m) {
  return std::visit([](const auto& v) { return wire_size(v); }, m);
}

// --- Canonical debug encoding ----------------------------------------------
//
// A deterministic byte rendering of a message, including the full rule
// bytes. Not a real wire format: it exists so differential modes (e.g.
// Config::paranoid_batches) can assert that two independently constructed
// messages are byte-equal without hand-writing field-by-field comparisons.

namespace detail {
inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void put_id(std::string& out, NodeId v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
inline void put_tag(std::string& out, const Tag& t) {
  put_id(out, t.owner);
  put_u64(out, t.epoch);
}
}  // namespace detail

inline void debug_encode(const Command& c, std::string& out) {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, NewRoundCmd>) {
          out.push_back(1);
          detail::put_tag(out, v.tag);
          detail::put_u64(out, static_cast<std::uint64_t>(v.retention));
        } else if constexpr (std::is_same_v<T, DelMngrCmd>) {
          out.push_back(2);
          detail::put_id(out, v.k);
        } else if constexpr (std::is_same_v<T, AddMngrCmd>) {
          out.push_back(3);
          detail::put_id(out, v.k);
        } else if constexpr (std::is_same_v<T, DelAllRulesCmd>) {
          out.push_back(4);
          detail::put_id(out, v.k);
        } else if constexpr (std::is_same_v<T, UpdateRuleCmd>) {
          out.push_back(5);
          detail::put_tag(out, v.tag);
          detail::put_u64(out, v.rules ? v.rules->size() : 0);
          if (v.rules) {
            for (const Rule& r : *v.rules) {
              detail::put_id(out, r.cid);
              detail::put_id(out, r.sid);
              detail::put_id(out, r.src);
              detail::put_id(out, r.dest);
              detail::put_u64(out, static_cast<std::uint64_t>(r.prt));
              detail::put_id(out, r.fwd);
            }
          }
        } else if constexpr (std::is_same_v<T, QueryCmd>) {
          out.push_back(6);
          detail::put_tag(out, v.tag);
        }
      },
      c);
}

inline void debug_encode(const Message& m, std::string& out) {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, CommandBatch>) {
          out.push_back('B');
          detail::put_id(out, v.from);
          detail::put_u64(out, v.commands.size());
          for (const Command& c : v.commands) debug_encode(c, out);
        } else {
          out.push_back('R');
          detail::put_id(out, v.id);
          detail::put_u64(out, v.nc.size());
          for (NodeId n : v.nc) detail::put_id(out, n);
          detail::put_u64(out, v.managers.size());
          for (NodeId n : v.managers) detail::put_id(out, n);
          detail::put_u64(out, v.rule_owners.size());
          for (const RuleOwnerSummary& s : v.rule_owners) {
            detail::put_id(out, s.cid);
            detail::put_tag(out, s.tag);
            detail::put_u64(out, s.count);
          }
          detail::put_u64(out, v.rules_wire_bytes);
          detail::put_tag(out, v.tag_for_querier);
          out.push_back(v.from_controller ? 1 : 0);
        }
      },
      m);
}

[[nodiscard]] inline std::string debug_encode(const Message& m) {
  std::string out;
  debug_encode(m, out);
  return out;
}

}  // namespace ren::proto

// Deterministic message/payload corruption primitives.
//
// Shared by the in-band channel-fault hook (`net::LinkFaults::corrupt`) and
// the Byzantine adversary model (`faults::Adversary`): both need to turn a
// well-formed control message into a *plausible but wrong* one — field
// permutations, forged ids, stale tags — rather than random bytes, because
// the variant-based payloads have no undefined bit patterns to flip. Every
// mutation draws from a caller-supplied `Rng`, so corruption is exactly as
// reproducible as the stream that feeds it, and never touches the shared
// immutable originals: callers corrupt deep copies.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>

#include "proto/messages.hpp"
#include "proto/payload.hpp"
#include "proto/tag.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::proto {

/// Forge a round tag: either claim a different owner (a node id drawn from
/// `[0, node_space)`) or skew the epoch within the bounded tag domain.
inline void corrupt_tag(Tag& t, Rng& rng, NodeId node_space) {
  if (node_space > 0 && rng.chance(0.5)) {
    t.owner = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(node_space)));
  } else {
    t.epoch = static_cast<std::uint32_t>(
        (t.epoch + 1 + rng.next_below(kTagDomain - 1)) % kTagDomain);
  }
}

/// Field-permute one command in place.
inline void corrupt_command(Command& c, Rng& rng, NodeId node_space) {
  std::visit(
      [&](auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, NewRoundCmd> ||
                      std::is_same_v<T, QueryCmd>) {
          corrupt_tag(v.tag, rng, node_space);
        } else if constexpr (std::is_same_v<T, UpdateRuleCmd>) {
          corrupt_tag(v.tag, rng, node_space);
        } else {
          // DelMngr / AddMngr / DelAllRules: retarget the victim.
          if (node_space > 0) {
            v.k = static_cast<NodeId>(rng.next_below(
                static_cast<std::uint64_t>(node_space)));
          }
        }
      },
      c);
}

/// Field-permute a control message in place. The result stays structurally
/// valid (decodable) but semantically wrong — the regime Algorithm 2's
/// consistency checks must survive.
inline void corrupt_message(Message& m, Rng& rng, NodeId node_space) {
  std::visit(
      [&](auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, CommandBatch>) {
          switch (rng.next_below(3)) {
            case 0:  // forge the issuing controller
              if (node_space > 0) {
                v.from = static_cast<NodeId>(rng.next_below(
                    static_cast<std::uint64_t>(node_space)));
              }
              break;
            case 1:  // corrupt one command's fields
              if (!v.commands.empty()) {
                corrupt_command(v.commands[rng.next_below(v.commands.size())],
                                rng, node_space);
              }
              break;
            default:  // drop a command (truncated batch)
              if (!v.commands.empty()) {
                v.commands.erase(v.commands.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     rng.next_below(v.commands.size())));
              }
              break;
          }
        } else {  // QueryReply
          switch (rng.next_below(4)) {
            case 0:  // forged neighborhood: drop an edge or invent one
              if (!v.nc.empty() && rng.chance(0.5)) {
                v.nc.erase(v.nc.begin() + static_cast<std::ptrdiff_t>(
                                               rng.next_below(v.nc.size())));
              } else if (node_space > 0) {
                v.nc.push_back(static_cast<NodeId>(rng.next_below(
                    static_cast<std::uint64_t>(node_space))));
              }
              break;
            case 1:  // stale/forged round tag
              corrupt_tag(v.tag_for_querier, rng, node_space);
              break;
            case 2:  // forge a rule-owner summary (phantom or stale rules)
              if (!v.rule_owners.empty()) {
                auto& s = v.rule_owners[rng.next_below(v.rule_owners.size())];
                if (rng.chance(0.5)) {
                  corrupt_tag(s.tag, rng, node_space);
                } else {
                  s.count = static_cast<std::uint32_t>(rng.next_below(1024));
                }
              } else {
                corrupt_tag(v.tag_for_querier, rng, node_space);
              }
              break;
            default:  // impersonate another respondent
              if (node_space > 0) {
                v.id = static_cast<NodeId>(rng.next_below(
                    static_cast<std::uint64_t>(node_space)));
              }
              break;
          }
        }
      },
      m);
}

/// Deep-copy + corrupt a packet payload. Control frames get their message
/// field-permuted (and occasionally a flipped transport label, modelling a
/// damaged token); probes and data segments get bit-skewed counters. The
/// original shared payload is never modified.
[[nodiscard]] inline Payload corrupt_payload(const Payload& p, Rng& rng,
                                             NodeId node_space) {
  return std::visit(
      [&](const auto& v) -> Payload {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Frame>) {
          Frame f = v;
          if (f.payload && !rng.chance(0.25)) {
            Message m = *f.payload;
            corrupt_message(m, rng, node_space);
            f.payload = make_message(std::move(m));
          } else {
            f.label ^= static_cast<std::uint32_t>(1 + rng.next_below(3));
          }
          return f;
        } else if constexpr (std::is_same_v<T, Segment>) {
          Segment s = v;
          if (s.is_ack) {
            s.ack ^= std::uint64_t{1} << rng.next_below(16);
          } else {
            s.seq ^= std::uint64_t{1} << rng.next_below(16);
          }
          return s;
        } else {
          // Probe / ProbeReply: skew the round counter.
          T probe = v;
          probe.round ^= std::uint64_t{1} << rng.next_below(16);
          return probe;
        }
      },
      p);
}

}  // namespace ren::proto

// The union of everything that can ride inside a simulated network packet:
// self-stabilizing transport frames (carrying control-plane messages),
// neighbor-discovery probes, and data-plane TCP segments.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>

#include "proto/messages.hpp"
#include "util/types.hpp"

namespace ren::proto {

// --- Self-stabilizing end-to-end transport (paper Section 3.1) -------------

enum class FrameKind : std::uint8_t { Act, Ack };

/// Token frame of the end-to-end protocol: at any time during a legal
/// execution exactly one token {act, ack} circulates per directed session.
struct Frame {
  FrameKind kind = FrameKind::Act;
  std::uint32_t label = 0;  ///< bounded alternating label
  MessagePtr payload;       ///< only for Act frames
};

// --- Local topology discovery / Theta failure detector ---------------------

struct Probe {
  std::uint64_t round = 0;
};
struct ProbeReply {
  std::uint64_t round = 0;
};

// --- Data plane (TCP Reno model, Section 6.4.3 experiments) ----------------

struct Segment {
  std::uint64_t seq = 0;   ///< first byte carried (sender) / cumulative ack
  std::uint32_t len = 0;   ///< payload bytes (0 for pure acks)
  std::uint64_t ack = 0;   ///< cumulative ack (receiver -> sender)
  bool is_ack = false;
  Time sent_at = 0;        ///< sender timestamp (for RTT sampling)
  bool retransmit = false; ///< marked for the Fig. 18 accounting
};

using Payload = std::variant<Frame, Probe, ProbeReply, Segment>;
using PayloadPtr = std::shared_ptr<const Payload>;

inline std::size_t wire_size(const Payload& p) {
  return std::visit(
      [](const auto& v) -> std::size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Frame>) {
          return 16 + (v.payload ? wire_size(*v.payload) : 0);
        } else if constexpr (std::is_same_v<T, Segment>) {
          return 40 + v.len;  // TCP/IP-ish header + payload
        } else {
          return 16;  // probes
        }
      },
      p);
}

}  // namespace ren::proto

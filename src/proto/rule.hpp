// Packet-forwarding rules of the abstract SDN switch (paper Section 2.1).
//
// A rule is the tuple <cID, sID, src, dest, prt, fwd>:
//   cID  controller that installed the rule
//   sID  switch that stores the rule
//   src  match: packet source        (kNoNode = wildcard)
//   dest match: packet destination   (kNoNode = wildcard)
//   prt  priority in {0..n_prt}; higher wins among applicable rules
//   fwd  action: neighbor to forward to
//
// The paper additionally tags every rule with the installing controller's
// synchronization-round tag. We keep tags at rule-*list* granularity: a
// controller replaces its whole rule set on a switch atomically per round
// (UpdateRuleCmd carries the round tag), which is how the prototype batches
// updates. The per-controller *meta rule* of the paper is represented by the
// switch remembering the most recent round tag per manager.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "proto/tag.hpp"
#include "util/types.hpp"

namespace ren::proto {

struct Rule {
  NodeId cid = kNoNode;   ///< installing controller (rule owner)
  NodeId sid = kNoNode;   ///< switch holding the rule
  NodeId src = kNoNode;   ///< match on packet source (kNoNode = wildcard)
  NodeId dest = kNoNode;  ///< match on packet destination (kNoNode = wildcard)
  Priority prt = 0;       ///< priority; higher value = applied first
  NodeId fwd = kNoNode;   ///< out-port (neighbor id)

  /// True when the match part covers a packet with the given header fields.
  [[nodiscard]] bool matches(NodeId pkt_src, NodeId pkt_dst) const {
    const bool src_ok = (src == kNoNode) || (src == pkt_src);
    const bool dst_ok = (dest == kNoNode) || (dest == pkt_dst);
    return src_ok && dst_ok;
  }

  /// Exact matches beat wildcards of the same priority (2 = both exact).
  [[nodiscard]] int specificity() const {
    return (src != kNoNode ? 1 : 0) + (dest != kNoNode ? 1 : 0);
  }

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// Approximate encoded size in bytes, used for the message-size analysis
/// (Lemma 3) and for bandwidth modelling of control traffic.
inline std::size_t wire_size(const Rule&) {
  return 4 * 6 + 4;  // six fields + list tag amortized
}

using RuleList = std::vector<Rule>;
/// Rule lists are immutable once compiled and shared by pointer between the
/// compiler cache, in-flight messages, and switch tables.
using RuleListPtr = std::shared_ptr<const RuleList>;

}  // namespace ren::proto

// Synchronization-round tags (paper Section 4.2).
//
// Each controller brackets its configuration queries/updates in rounds named
// by a tag that is unique during legal executions. The paper assumes a
// self-stabilizing bounded-tag algorithm (Alon et al. [20]); we model tags as
// (owner, epoch) pairs drawn from a bounded domain -- the epoch wraps at
// kTagDomain, which stands in for the finite tagDomain of the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "util/types.hpp"

namespace ren::proto {

/// Size of the bounded tag domain per owner. Large enough that wrap-around
/// never recycles a tag that is still present somewhere in the system during
/// a legal execution (the paper's uniqueness requirement).
inline constexpr std::uint32_t kTagDomain = 1u << 30;

struct Tag {
  NodeId owner = kNoNode;   ///< Controller that generated the tag.
  std::uint32_t epoch = 0;  ///< Position within the bounded domain.

  friend bool operator==(const Tag&, const Tag&) = default;
};

/// The "null" tag: matches nothing that nextTag() ever returns.
inline constexpr Tag kNullTag{};

struct TagHash {
  std::size_t operator()(const Tag& t) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.owner)) << 32) |
        t.epoch);
  }
};

}  // namespace ren::proto

// Renaissance — a self-stabilizing distributed in-band SDN control plane.
// C++ reproduction of Canini, Salem, Schiff, Schiller, Schmid (ICDCS 2018).
//
// Umbrella header: pulls in the public API surface used by the examples and
// benchmark harnesses. Individual subsystem headers can be included directly
// for finer-grained use.
#pragma once

#include "core/controller.hpp"        // Algorithm 2
#include "core/legitimacy.hpp"        // Definition 1 checker
#include "detect/theta_detector.hpp"  // local topology discovery
#include "faults/injector.hpp"        // benign + transient fault injection
#include "flows/connectivity.hpp"     // sparse max-flow + certificate cache
#include "flows/graph.hpp"            // topology views & graph algorithms
#include "flows/my_rules.hpp"         // kappa-fault-resilient rule compiler
#include "flows/resilient_paths.hpp"  // verification helpers
#include "net/simulator.hpp"          // discrete-event substrate
#include "scenario/library.hpp"       // built-in fault-timeline scenarios
#include "scenario/merge.hpp"         // shard-report merging
#include "scenario/runner.hpp"        // parallel campaign runner
#include "scenario/scenario.hpp"      // declarative scenario model
#include "sim/experiment.hpp"         // experiment harness
#include "switchd/abstract_switch.hpp"  // the abstract SDN switch
#include "tags/tag_generator.hpp"     // bounded round tags
#include "tcp/host.hpp"               // data-plane hosts + TCP Reno
#include "topo/generators.hpp"        // fat-tree / random-WAN generators
#include "topo/loaders.hpp"           // Rocketfuel / GraphML / edge-list files
#include "topo/source.hpp"            // topology spec registry (resolve)
#include "topo/topologies.hpp"        // the five paper topologies
#include "transport/endpoint.hpp"     // self-stabilizing end-to-end channel
#include "util/stats.hpp"             // violin summaries, Pearson r

#include "scenario/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ren::scenario {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

/// Fixed-format number rendering: integers without a fraction, everything
/// else with the fewest digits (>= 12 significant) that parse back to the
/// exact double. The format is part of the determinism contract (equal
/// doubles serialize to equal bytes regardless of how the campaign was
/// threaded), and the exact round-trip is what lets `--merge` rebuild
/// shard aggregates byte-identical to the unsharded report.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  for (int precision = 12; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    // Report the position as line:column (1-based) — spec files are edited
    // by hand, and editors jump to lines, not byte offsets.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json: " + what + " at line " +
                             std::to_string(line) + ", column " +
                             std::to_string(col));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const auto code = static_cast<unsigned>(
                std::stoul(hex, nullptr, 16));
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) fail("invalid number");  // e.g. "1-2", "1.2.3"
      return Json(v);
    } catch (const std::exception&) {
      fail("invalid number");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(arr));
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(obj));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) type_error("bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) type_error("number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) type_error("string");
  return str_;
}

const JsonArray& Json::as_array() const {
  if (kind_ != Kind::Array) type_error("array");
  return arr_;
}

const JsonObject& Json::as_object() const {
  if (kind_ != Kind::Object) type_error("object");
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::number_or(const std::string& key, double dflt) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_number() : dflt;
}

bool Json::bool_or(const std::string& key, bool dflt) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_bool() : dflt;
}

std::string Json::string_or(const std::string& key, std::string dflt) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_string() : dflt;
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) type_error("object");
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) type_error("array");
  arr_.push_back(std::move(value));
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += format_number(num_); break;
    case Kind::String: write_escaped(out, str_); break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].write(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad;
        write_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.write(out, indent, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace ren::scenario

// Minimal JSON value used by the scenario subsystem for spec files and
// campaign output. Deliberately tiny: objects keep insertion order (so
// serialized campaigns are byte-stable), numbers are doubles printed with a
// fixed format, and parsing covers exactly the JSON subset the specs need
// (null, bool, number, string, array, object — no \u escapes beyond ASCII).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ren::scenario {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered object (objects in specs and reports are small).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  Json(double v) : kind_(Kind::Number), num_(v) {}  // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}  // NOLINT
  Json(JsonArray a) : kind_(Kind::Array), arr_(std::move(a)) {}  // NOLINT
  Json(JsonObject o) : kind_(Kind::Object), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Member or a default (missing keys in specs mean "use the default").
  [[nodiscard]] double number_or(const std::string& key, double dflt) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool dflt) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string dflt) const;

  /// Append a member (object kind is adopted if currently null).
  void set(std::string key, Json value);
  /// Append an element (array kind is adopted if currently null).
  void push_back(Json value);

  /// Compact serialization with deterministic number formatting.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization (2-space indent), same number formatting.
  [[nodiscard]] std::string pretty() const;

  /// Parse a JSON document. Throws std::runtime_error with a position on
  /// malformed input.
  static Json parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace ren::scenario

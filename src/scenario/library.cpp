#include "scenario/library.hpp"

#include <stdexcept>

namespace ren::scenario {

namespace {

/// Controllers crash and come back one at a time; the control plane must
/// re-converge after every transition (MORPH-style failure sequences).
Scenario rolling_restart() {
  Scenario s;
  s.name = "rolling_restart";
  s.description =
      "sequential controller crash+revive rounds; convergence after each";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  for (int round = 0; round < 3; ++round) {
    const Time base = sec(5 + 25 * round);
    s.kill_controller(base);
    s.expect_converged(base, "degraded_" + std::to_string(round), sec(120));
    s.restart_nodes(base + sec(12));
    s.expect_converged(base + sec(12), "restored_" + std::to_string(round),
                       sec(120));
  }
  return s;
}

/// Links repeatedly fail and recover before the system fully settles —
/// the flapping stresses stale-view cleanup rather than steady-state loss.
Scenario flapping_links() {
  Scenario s;
  s.name = "flapping_links";
  s.description = "repeated fail+restore link flaps, then settle";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  for (int flap = 0; flap < 4; ++flap) {
    const Time base = sec(5 + 4 * flap);
    s.fail_links(base, 2);
    s.restore_links(base + sec(2));
  }
  s.expect_converged(sec(22), "settle", sec(120));
  return s;
}

/// Switches die in growing waves; each wave removes more of the fabric and
/// the survivors must keep every remaining switch managed.
Scenario cascading_switch_failures() {
  Scenario s;
  s.name = "cascading_switch_failures";
  s.description = "three growing waves of permanent switch fail-stops";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.kill_switches(sec(5), 1);
  s.expect_converged(sec(5), "wave_1", sec(120));
  s.kill_switches(sec(30), 2);
  s.expect_converged(sec(30), "wave_2", sec(120));
  s.kill_switches(sec(60), 3);
  s.expect_converged(sec(60), "wave_3", sec(120));
  return s;
}

/// A transient-fault storm lands while the topology is also churning — the
/// combination the self-stabilization proof covers but no seed bench runs.
Scenario corruption_under_churn() {
  Scenario s;
  s.name = "corruption_under_churn";
  s.description = "corrupt all state concurrently with link/controller churn";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.fail_links(sec(5), 1);
  s.corrupt_all(sec(5));
  s.expect_converged(sec(5), "storm_1", sec(180));
  s.kill_controller(sec(40));
  s.corrupt_all(sec(40));
  s.expect_converged(sec(40), "storm_2", sec(180));
  return s;
}

/// Random link cuts with the connectivity guard off: the control plane may
/// genuinely partition (violating the paper's fault assumptions), then the
/// links heal and recovery is measured from the healed instant.
Scenario partition_and_heal() {
  Scenario s;
  s.name = "partition_and_heal";
  s.description =
      "unguarded link failures (may partition), heal, measure recovery";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.fail_links(sec(5), 3, /*keep_connected=*/false);
  s.restore_links(sec(15));
  s.expect_converged(sec(15), "heal", sec(180));
  return s;
}

/// A denser storm than flapping_links, written with periodic events: one
/// fail_links and one restore_links entry each repeat six times instead of
/// unrolling twelve timeline entries by hand.
Scenario link_flap_storm() {
  Scenario s;
  s.name = "link_flap_storm";
  s.description =
      "periodic two-link flaps (every(4s) x6 fail/restore pair), then settle";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.fail_links(sec(5), 2).every(sec(4), 6);
  s.restore_links(sec(7)).every(sec(4), 6);
  s.expect_converged(sec(31), "settle", sec(180));
  return s;
}

/// The Section 6.4.3 throughput experiment as a declarative timeline
/// (Figs. 15/16 shape): a bracketed traffic window with a mid-path link
/// failure at its 10th second, on RTT-calibrated links. The campaign
/// report's traffic_windows carry the per-second goodput/retransmission
/// series the figures plot.
Scenario throughput_window() {
  Scenario s;
  s.name = "throughput_window";
  s.description =
      "30s traffic window, mid-path link failure at its 10th second "
      "(fig15 shape; freeze before the failure for fig16)";
  s.calibrate_rtt = true;
  s.trials = 1;  // the paper plots single series per network
  s.expect_converged(sec(0), "bootstrap", sec(300));
  s.start_traffic(sec(150), "window");
  s.fail_path_link(sec(160), msec(150));
  s.stop_traffic(sec(180));
  return s;
}

/// A TCP flow runs across the fabric while a controller dies and a link on
/// or off the path fails; measures both re-convergence and the goodput the
/// flow kept through the failover.
Scenario failover_under_load() {
  Scenario s;
  s.name = "failover_under_load";
  s.description = "controller + link failure under an active TCP flow";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.start_traffic(sec(2));
  s.kill_controller(sec(10));
  s.fail_links(sec(10), 1);
  s.expect_converged(sec(10), "failover", sec(120));
  return s;
}

/// Byzantine controllers (Section 7's adversarial discussion): a subset of
/// controllers starts lying about its ReplyDb and corrupting its outbound
/// frames mid-run, then is cured; the stabilization watchdog records time
/// below legitimacy, episode count, blast radius, and re-stabilization.
Scenario byzantine_controller() {
  Scenario s;
  s.name = "byzantine_controller";
  s.description =
      "one controller turns Byzantine (lying + corrupting), is cured at "
      "t=35s; watchdog measures the damage and the recovery";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.start_adversary(sec(5), "lying");
  s.start_adversary(sec(5), "corrupting");
  s.stop_adversary(sec(35));
  s.expect_converged(sec(35), "restabilize", sec(180));
  return s;
}

/// An in-band channel-fault storm: every link simultaneously corrupts,
/// loses, duplicates and reorders packets for a window, then the fault
/// profile is restored and recovery is measured. Exercises the message-level
/// corruption path (proto/mutate.hpp) end to end.
Scenario channel_corruption_storm() {
  Scenario s;
  s.name = "channel_corruption_storm";
  s.description =
      "30s all-links corruption/loss/duplication storm, then restore the "
      "channel and measure re-stabilization";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.channel_faults(sec(5), /*loss=*/0.05, /*corrupt=*/0.10,
                   /*duplicate=*/0.02, /*reorder=*/0.05);
  s.stop_adversary(sec(35));
  s.expect_converged(sec(35), "recover", sec(180));
  return s;
}

/// Recovery colliding with full rule tables — the scenario no paper figure
/// covers: a heavy-tailed flow workload saturates capacity-limited tables,
/// a controller dies and a link fails mid-storm, and convergence is
/// measured while management installs must displace flow entries. The
/// report's "table" block carries overflow/eviction/lookup-cost aggregates.
Scenario table_overflow_recovery() {
  Scenario s;
  s.name = "table_overflow_recovery";
  s.description =
      "flow churn saturates capacity-limited rule tables (eviction under "
      "pressure), then a controller+link failure must re-converge through "
      "the table pressure";
  s.expect_converged(sec(0), "bootstrap", sec(120));
  s.start_flow_churn(sec(5), /*rate=*/2000.0, /*mean_duration=*/msec(500));
  // Above the default grid's worst-case management requirement (Telstra's
  // hottest switch holds ~596 protected rules; protected entries are
  // unevictable, so a lower cap would break bootstrap instead of
  // pressuring flows) but far below the ~1000-flow steady state.
  s.axis("table_capacity", {640});
  s.kill_controller(sec(10));
  s.fail_links(sec(10), 1);
  s.expect_converged(sec(10), "recover_under_pressure", sec(180));
  s.stop_flow_churn(sec(25));
  s.expect_converged(sec(25), "drained", sec(120));
  return s;
}

}  // namespace

std::vector<std::string> builtin_names() {
  std::vector<std::string> names = {
      "rolling_restart",        "flapping_links",
      "link_flap_storm",        "cascading_switch_failures",
      "corruption_under_churn", "partition_and_heal",
      "failover_under_load",    "throughput_window",
      "byzantine_controller",   "channel_corruption_storm",
      "table_overflow_recovery"};
  static_assert(kBuiltinCount == 11,
                "update builtin_names(), builtin() and kBuiltinCount "
                "together");
  return names;
}

Scenario builtin(const std::string& name) {
  if (name == "rolling_restart") return rolling_restart();
  if (name == "flapping_links") return flapping_links();
  if (name == "link_flap_storm") return link_flap_storm();
  if (name == "cascading_switch_failures") return cascading_switch_failures();
  if (name == "corruption_under_churn") return corruption_under_churn();
  if (name == "partition_and_heal") return partition_and_heal();
  if (name == "failover_under_load") return failover_under_load();
  if (name == "throughput_window") return throughput_window();
  if (name == "byzantine_controller") return byzantine_controller();
  if (name == "channel_corruption_storm") return channel_corruption_storm();
  if (name == "table_overflow_recovery") return table_overflow_recovery();
  std::string known;
  for (const auto& n : builtin_names()) known += " " + n;
  throw std::invalid_argument("unknown scenario \"" + name +
                              "\"; built-ins:" + known);
}

}  // namespace ren::scenario

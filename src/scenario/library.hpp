// Built-in scenario library: programmable fault timelines the seed's fixed
// per-figure benches cannot express. Each returns a ready-to-run Scenario
// over the default axes (B4/Clos/Telstra x 3 controllers x 8 trials); the
// CLI and callers can override any axis afterwards.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace ren::scenario {

/// Names accepted by builtin(), in presentation order.
[[nodiscard]] std::vector<std::string> builtin_names();

/// Look up a built-in scenario. Throws std::invalid_argument for unknown
/// names (the message lists the valid ones).
[[nodiscard]] Scenario builtin(const std::string& name);

}  // namespace ren::scenario

// Built-in scenario library: programmable fault timelines the seed's fixed
// per-figure benches cannot express. Each returns a ready-to-run Scenario
// over the default grid (B4/Clos/Telstra x 3 controllers x 8 trials); the
// CLI and callers can override any axis afterwards. The library holds
// kBuiltinCount scenarios — keep that constant, builtin_names() and the
// builtin() dispatch in lockstep (asserted in tests/test_scenario.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace ren::scenario {

/// How many built-in scenarios the library ships (the single place the
/// count is written down; docs say "the built-ins" and defer to this).
inline constexpr std::size_t kBuiltinCount = 11;

/// Names accepted by builtin(), in presentation order. Exactly
/// kBuiltinCount entries.
[[nodiscard]] std::vector<std::string> builtin_names();

/// Look up a built-in scenario. Throws std::invalid_argument for unknown
/// names (the message lists the valid ones).
[[nodiscard]] Scenario builtin(const std::string& name);

}  // namespace ren::scenario

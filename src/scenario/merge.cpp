#include "scenario/merge.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace ren::scenario {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("merge: " + what);
}

const Json& member(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr) bad(std::string("missing key \"") + key + "\"");
  return *v;
}

std::vector<double> series_from(const Json& obj, const char* key) {
  std::vector<double> out;
  for (const Json& v : member(obj, key).as_array()) {
    out.push_back(v.as_number());
  }
  return out;
}

/// The outcome of one executed trial, reconstructed from a shard report.
TrialOutcome outcome_from_raw(const Json& rj) {
  TrialOutcome out;
  out.ok = true;
  for (const Json& cj : member(rj, "checkpoints").as_array()) {
    TrialOutcome::Checkpoint cp;
    cp.label = member(cj, "label").as_string();
    cp.converged = member(cj, "converged").as_bool();
    cp.seconds = member(cj, "seconds").as_number();
    cp.cmd_per_node_iter = member(cj, "cmd_per_node_iter").as_number();
    out.checkpoints.push_back(std::move(cp));
  }
  if (const Json* wins = rj.find("traffic_windows"); wins != nullptr) {
    for (const Json& wj : wins->as_array()) {
      TrialOutcome::TrafficWindow w;
      w.label = member(wj, "label").as_string();
      w.seconds = static_cast<int>(member(wj, "seconds").as_number());
      w.mbits = member(wj, "mbits").as_number();
      w.mbits_series = series_from(wj, "mbits_series");
      w.retx_pct = series_from(wj, "retx_pct");
      w.bad_pct = series_from(wj, "bad_pct");
      w.ooo_pct = series_from(wj, "ooo_pct");
      out.windows.push_back(std::move(w));
    }
  }
  out.messages = member(rj, "messages").as_number();
  out.commands = member(rj, "commands").as_number();
  out.illegitimate_deletions =
      member(rj, "illegitimate_deletions").as_number();
  if (const Json* w = rj.find("watchdog"); w != nullptr) {
    out.has_watchdog = true;
    out.wd_below_s = member(*w, "below_s").as_number();
    out.wd_episodes = static_cast<int>(member(*w, "episodes").as_number());
    out.wd_blast_radius = member(*w, "blast_radius").as_number();
    out.wd_restabilized = member(*w, "restabilized").as_bool();
  }
  if (const Json* t = rj.find("table"); t != nullptr) {
    out.has_table = true;
    out.tbl_arrivals = member(*t, "arrivals").as_number();
    out.tbl_departures = member(*t, "departures").as_number();
    out.tbl_peak_active = member(*t, "peak_active").as_number();
    out.tbl_installs = member(*t, "installs").as_number();
    out.tbl_overflows = member(*t, "overflows").as_number();
    out.tbl_evictions = member(*t, "evictions").as_number();
    out.tbl_peak_rules = member(*t, "peak_rules").as_number();
    out.tbl_lookups = member(*t, "lookups").as_number();
    out.tbl_lookup_cost = member(*t, "lookup_cost").as_number();
  }
  if (const Json* t = rj.find("traffic_mbits"); t != nullptr) {
    out.has_traffic = true;
    out.traffic_mbits = t->as_number();
  }
  return out;
}

/// A cell's generic-axis point, reconstructed from its "axes" member (the
/// cell identity under shard merging is topology + controllers + axes).
AxisPoint axes_from_cell(const Json& cell) {
  AxisPoint out;
  if (const Json* axes = cell.find("axes"); axes != nullptr) {
    for (const auto& [name, value] : axes->as_object()) {
      out.emplace_back(name, value.as_number());
    }
  }
  return out;
}

/// Errored trials are reported as "trial N: message" strings; recover the
/// trial index and the message so they re-aggregate in trial order.
std::pair<int, TrialOutcome> outcome_from_error(const std::string& entry) {
  const std::string prefix = "trial ";
  if (entry.compare(0, prefix.size(), prefix) != 0) {
    bad("unparseable error entry \"" + entry + "\"");
  }
  std::size_t used = 0;
  int trial = -1;
  try {
    trial = std::stoi(entry.substr(prefix.size()), &used);
  } catch (const std::exception&) {
    bad("unparseable error entry \"" + entry + "\"");
  }
  const std::size_t sep = prefix.size() + used;
  if (trial < 0 || entry.compare(sep, 2, ": ") != 0) {
    bad("unparseable error entry \"" + entry + "\"");
  }
  TrialOutcome out;
  out.ok = false;
  out.error = entry.substr(sep + 2);
  return {trial, std::move(out)};
}

}  // namespace

CampaignResult merge_campaigns(const std::vector<Json>& shards) {
  if (shards.empty()) bad("no shard reports given");

  CampaignResult result;
  const Json& first = shards.front();
  result.scenario = member(first, "scenario").as_string();
  result.description = member(first, "description").as_string();
  result.profile = member(first, "profile").as_string();
  result.trials_per_cell =
      static_cast<int>(member(first, "trials_per_cell").as_number());
  result.base_seed =
      static_cast<std::uint64_t>(member(first, "seed").as_number());
  result.shard_index = 0;
  result.shard_count = 1;

  const JsonArray& first_cells = member(first, "cells").as_array();
  // (cell index) -> trial -> outcome, accumulated over every shard.
  std::vector<std::map<int, TrialOutcome>> merged(first_cells.size());

  for (const Json& shard : shards) {
    if (member(shard, "scenario").as_string() != result.scenario ||
        member(shard, "description").as_string() != result.description ||
        member(shard, "profile").as_string() != result.profile ||
        member(shard, "seed").as_number() !=
            static_cast<double>(result.base_seed) ||
        static_cast<int>(member(shard, "trials_per_cell").as_number()) !=
            result.trials_per_cell) {
      bad("shards come from different campaigns (scenario/profile/seed/"
          "trials mismatch)");
    }
    const JsonArray& cells = member(shard, "cells").as_array();
    if (cells.size() != first_cells.size()) bad("shard grids differ");
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const Json& cell = cells[c];
      if (member(cell, "topology").as_string() !=
              member(first_cells[c], "topology").as_string() ||
          member(cell, "controllers").as_number() !=
              member(first_cells[c], "controllers").as_number() ||
          axes_from_cell(cell) != axes_from_cell(first_cells[c])) {
        bad("shard grids differ (cell " + std::to_string(c) + ")");
      }
      const int executed = static_cast<int>(member(cell, "trials").as_number());
      const Json* raw = cell.find("raw");
      const std::size_t raw_n = raw != nullptr ? raw->as_array().size() : 0;
      if (static_cast<std::size_t>(executed) != raw_n) {
        bad("shard for cell \"" + member(cell, "topology").as_string() +
            "\" reports " + std::to_string(executed) + " trials but " +
            std::to_string(raw_n) +
            " raw samples; re-run the shard with --raw");
      }
      auto add = [&](int trial, TrialOutcome out) {
        if (trial < 0 || trial >= result.trials_per_cell) {
          bad("trial index " + std::to_string(trial) + " out of range");
        }
        if (!merged[c].emplace(trial, std::move(out)).second) {
          bad("trial " + std::to_string(trial) + " of cell \"" +
              member(cell, "topology").as_string() +
              "\" appears in more than one shard");
        }
      };
      if (raw != nullptr) {
        for (const Json& rj : raw->as_array()) {
          add(static_cast<int>(member(rj, "trial").as_number()),
              outcome_from_raw(rj));
        }
      }
      if (const Json* errs = cell.find("errors"); errs != nullptr) {
        for (const Json& e : errs->as_array()) {
          auto [trial, out] = outcome_from_error(e.as_string());
          add(trial, std::move(out));
        }
      }
    }
  }

  for (std::size_t c = 0; c < first_cells.size(); ++c) {
    std::vector<std::pair<int, TrialOutcome>> outcomes;
    outcomes.reserve(merged[c].size());
    for (auto& [trial, out] : merged[c]) {
      outcomes.emplace_back(trial, std::move(out));  // map => trial order
    }
    result.cells.push_back(aggregate_cell(
        member(first_cells[c], "topology").as_string(),
        static_cast<int>(member(first_cells[c], "controllers").as_number()),
        axes_from_cell(first_cells[c]), std::move(outcomes),
        /*include_raw=*/false));
  }
  return result;
}

}  // namespace ren::scenario

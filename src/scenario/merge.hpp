// Shard merging: fold `ren_scenarios --shard k/n --raw` reports back into
// one campaign aggregate (the multi-machine story's missing half).
//
// Shard reports carry raw per-trial samples; trial seeds depend only on the
// grid coordinates, so the union of the shards' samples is exactly the
// sample set an unsharded run would have produced. merge_campaigns()
// reconstructs the per-trial outcomes from the raw arrays (and the errors
// list for trials that threw), then re-aggregates them through the same
// aggregate_cell() the runner uses — with the JSON number format
// round-tripping doubles exactly, the merged report is byte-identical to
// the unsharded campaign's (non-raw) report when the shards cover the full
// grid.
#pragma once

#include <vector>

#include "scenario/json.hpp"
#include "scenario/runner.hpp"

namespace ren::scenario {

/// Merge shard campaign reports (parsed JSON documents produced with
/// --raw). Throws std::invalid_argument on inconsistent campaign metadata
/// (scenario, seed, profile, trial count, grid), overlapping trials, or a
/// shard whose executed trials carry no raw samples. Shards covering only
/// part of the grid merge fine — the result then aggregates exactly the
/// trials present (callers can compare trials-per-cell against
/// trials_per_cell to detect gaps).
[[nodiscard]] CampaignResult merge_campaigns(const std::vector<Json>& shards);

}  // namespace ren::scenario

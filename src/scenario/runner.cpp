#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "faults/adversary.hpp"
#include "faults/injector.hpp"
#include "flows/churn.hpp"
#include "net/link.hpp"
#include "sim/experiment.hpp"
#include "switchd/abstract_switch.hpp"
#include "tcp/host.hpp"
#include "topo/source.hpp"
#include "util/rng.hpp"

namespace ren::scenario {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

sim::ExperimentConfig profile_config(const Scenario& s,
                                     const std::string& topology,
                                     int controllers, const AxisPoint& axes,
                                     std::uint64_t seed, bool paper_timers) {
  sim::ExperimentConfig cfg;
  cfg.topology = topology;
  cfg.controllers = controllers;
  cfg.kappa = 2;
  cfg.seed = seed;
  if (paper_timers) {
    cfg.task_delay = msec(500);
    cfg.detect_interval = msec(100);
    cfg.monitor_interval = msec(250);
    cfg.theta = (topology == "B4" || topology == "Clos") ? 10 : 30;
  } else {
    cfg.task_delay = msec(50);
    cfg.detect_interval = msec(10);
    cfg.monitor_interval = msec(25);
    cfg.link_latency = usec(100);
    cfg.theta = 10;
  }
  cfg.rule_retention = 3;
  if (s.calibrate_rtt) {
    // The Section 6.4.3 throughput setup: per-topology latency so the
    // host-to-host RTT lands near 16 ms (the hosts sit at diameter + 2
    // hops from each other, counting the attach edges).
    const int diameter = topo::resolve(topology).expected_diameter;
    cfg.link_latency = 16'000 / (2 * (diameter + 2));
  }
  cfg.max_events = s.max_events;
  // Generic axis points override the profile last, so an axis value always
  // wins (e.g. a task_delay_ms axis replaces either profile's task delay).
  for (const auto& [name, value] : axes) sim::apply_axis(cfg, name, value);
  return cfg;
}

/// Cross-product of the scenario's generic axes, in declaration order; a
/// scenario without axes yields the single empty point.
std::vector<AxisPoint> expand_axis_points(const Scenario& s) {
  std::vector<AxisPoint> points{AxisPoint{}};
  for (const Axis& a : s.axes) {
    if (a.values.empty())
      throw std::invalid_argument("axis \"" + a.name + "\" has no values");
    std::vector<AxisPoint> next;
    next.reserve(points.size() * a.values.size());
    for (const AxisPoint& p : points) {
      for (double v : a.values) {
        AxisPoint q = p;
        q.emplace_back(a.name, v);
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  return points;
}

/// Element-wise mean of variable-length per-second series: each second
/// averages over the trials whose series reach it.
struct SeriesAcc {
  std::vector<double> sum;
  std::vector<int> n;

  void add(const std::vector<double>& v) {
    if (v.size() > sum.size()) {
      sum.resize(v.size(), 0.0);
      n.resize(v.size(), 0);
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      sum[i] += v[i];
      n[i] += 1;
    }
  }

  [[nodiscard]] std::vector<double> mean() const {
    std::vector<double> out(sum.size(), 0.0);
    for (std::size_t i = 0; i < sum.size(); ++i) {
      if (n[i] > 0) out[i] = sum[i] / n[i];
    }
    return out;
  }
};

Json series_json(const std::vector<double>& series) {
  Json j{JsonArray{}};
  for (double v : series) j.push_back(v);
  return j;
}

Json summary_json(const PercentileSummary& p) {
  Json j;
  j.set("mean", p.mean);
  j.set("min", p.min);
  j.set("p50", p.p50);
  j.set("p90", p.p90);
  j.set("p99", p.p99);
  j.set("max", p.max);
  j.set("n", p.n);
  return j;
}

/// The per-trial timeline interpreter.
class TrialExecutor {
 public:
  TrialExecutor(const Scenario& s, const std::string& topology,
                int controllers, const AxisPoint& axes, std::uint64_t seed,
                const RunnerOptions& opt)
      : scenario_(s),
        // The scenario fault stream is separate from the experiment's
        // internal streams so adding internal randomness never reshuffles
        // which victims a scenario picks.
        fault_rng_(mix64(seed ^ 0x5ce9a5ce9a5ce9aULL)),
        seed_(seed) {
    // The stabilization watchdog arms only for adversarial scenarios: its
    // fine-grained advance + sampling would otherwise change nothing but
    // still run, and benign campaign reports must stay byte-identical to
    // pre-watchdog output.
    wd_active_ = std::any_of(
        s.events.begin(), s.events.end(),
        [](const Event& e) { return e.kind == EventKind::StartAdversary; });
    // Table metrics gate the same way: armed only when the scenario drives
    // the flow-churn workload, so churn-free reports stay byte-identical.
    table_active_ = std::any_of(
        s.events.begin(), s.events.end(),
        [](const Event& e) { return e.kind == EventKind::StartFlowChurn; });
    auto cfg =
        profile_config(s, topology, controllers, axes, seed, opt.paper_timers);
    cfg.with_hosts = s.needs_hosts();
    cfg.monitor_paranoid = opt.paranoid_monitor;
    cfg.views_paranoid = opt.paranoid_views;
    cfg.batches_paranoid = opt.paranoid_batches;
    cfg.sim_threads = std::max(1, opt.sim_threads);
    exp_ = std::make_unique<sim::Experiment>(std::move(cfg));
    cp_ = exp_->control_plane();
    // Traffic scenarios register the host<->host data flow up front so its
    // rules install during bootstrap — a start_traffic event then opens its
    // window at exactly its timestamp instead of consuming a variable
    // install wait, which is what lets throughput figures (15/16) place
    // fail_path_link/stop_traffic at fixed offsets from the window start.
    if (s.needs_hosts()) {
      flow_owner_ = exp_->register_default_data_flow();
    }
  }

  TrialOutcome run() {
    TrialOutcome out;
    for (const Event& ev : scenario_.expanded_events()) {
      if (exp_->sim().now() < ev.at) advance_to(ev.at);
      apply(ev, out);
    }
    finish(out);
    out.ok = true;
    return out;
  }

 private:
  /// Victim count of a Kill*/FailLinks event: literal, or — for
  /// "count": "axis" — the grid cell's victims axis value.
  [[nodiscard]] int victim_count(const Event& ev) const {
    if (ev.count != kCountAxis) return ev.count;
    const int v = exp_->config().victims;
    if (v < 1) {
      throw std::logic_error(
          "event with count \"axis\" needs a \"victims\" axis in the campaign");
    }
    return v;
  }

  void apply(const Event& ev, TrialOutcome& out) {
    switch (ev.kind) {
      case EventKind::KillController:
        faults::kill_random_controllers(cp_, fault_rng_, victim_count(ev));
        break;
      case EventKind::KillSwitches:
        faults::kill_random_switches(cp_, fault_rng_, victim_count(ev));
        break;
      case EventKind::FailLinks:
        faults::fail_random_links(cp_, fault_rng_, victim_count(ev),
                                  ev.keep_connected);
        break;
      case EventKind::RestoreLinks:
        faults::restore_all_links(cp_);
        break;
      case EventKind::RestartNodes:
        faults::restart_all_nodes(cp_);
        break;
      case EventKind::CorruptAll:
        faults::corrupt_all_state(cp_, fault_rng_);
        break;
      case EventKind::Freeze:
        for (auto* c : exp_->controllers()) c->set_frozen(true);
        break;
      case EventKind::Unfreeze:
        for (auto* c : exp_->controllers()) c->set_frozen(false);
        break;
      case EventKind::StartTraffic:
        start_traffic(ev.label);
        break;
      case EventKind::StopTraffic:
        if (traffic_stats_ == nullptr)
          throw std::logic_error("stop_traffic: no open traffic window");
        close_window(out);
        break;
      case EventKind::FailPathLink: {
        const auto link = exp_->fail_data_path_link(ev.detection);
        if (link.first == kNoNode)
          throw std::logic_error(
              "fail_path_link: no data-path link to fail (is a flow "
              "installed?)");
        break;
      }
      case EventKind::ExpectConverged: {
        if (wd_active_) wd_sample();
        const auto r = exp_->run_until_legitimate(ev.limit);
        TrialOutcome::Checkpoint cp;
        cp.label = ev.label;
        cp.converged = r.converged;
        cp.seconds = r.converged ? r.seconds : to_seconds(ev.limit);
        // Fig. 9's normalized cost: max-loaded controller by commands sent
        // over the wait, per completed iteration and per node.
        const auto nodes = static_cast<double>(
            exp_->topology().switch_graph.n() +
            static_cast<int>(exp_->controller_count()));
        for (std::size_t k = 0; k < r.commands.size(); ++k) {
          if (r.iterations[k] == 0) continue;
          const double per_node = static_cast<double>(r.commands[k]) /
                                  static_cast<double>(r.iterations[k]) / nodes;
          cp.cmd_per_node_iter = std::max(cp.cmd_per_node_iter, per_node);
        }
        if (wd_active_) {
          // The checkpoint's verdict is the monitor's at the current epoch,
          // so fold it in directly and let the next epoch-gated sample
          // short-circuit off it.
          wd_epoch_ = exp_->monitor().stack_epoch();
          wd_account(exp_->sim().now(), r.converged);
        }
        out.checkpoints.push_back(std::move(cp));
        break;
      }
      case EventKind::StartAdversary:
        start_adversary(ev);
        break;
      case EventKind::StopAdversary:
        stop_adversary();
        break;
      case EventKind::StartFlowChurn:
        start_flow_churn(ev);
        break;
      case EventKind::StopFlowChurn:
        stop_flow_churn();
        break;
    }
  }

  // --- Flow-churn lifecycle ------------------------------------------------

  /// Flow-churn generator tick cadence. Arrivals between ticks batch up and
  /// install at the next tick boundary; ticks are harness-lane events, which
  /// the epoch-lockstep kernel executes only at barriers — that is what
  /// keeps the churn timeline bit-identical at any --sim-threads value.
  static constexpr Time kChurnTick = msec(10);
  /// Rng::stream_seed stream id of the churn generator's private stream.
  static constexpr std::uint64_t kChurnStream = 0x466c6f774368ULL;  // "FlowCh"

  void start_flow_churn(const Event& ev) {
    if (churn_running_) {
      throw std::logic_error(
          "start_flow_churn: flow churn is already active");
    }
    double rate = ev.rate;
    if (rate == kRateAxis) {
      rate = exp_->config().churn_rate;
      if (!(rate > 0)) {
        throw std::logic_error(
            "start_flow_churn with rate \"axis\" needs a \"churn_rate\" axis "
            "in the campaign");
      }
    }
    flows::ChurnConfig ccfg;
    ccfg.rate = rate;
    ccfg.mean_duration = ev.duration;
    ccfg.alpha = ev.alpha;
    ccfg.zipf = ev.zipf;
    ccfg.dist = ev.dist == "poisson" ? flows::ChurnDist::Poisson
                                     : flows::ChurnDist::Pareto;
    const auto policy = ev.eviction == "reject_lowest"
                            ? switchd::EvictionPolicy::RejectLowest
                            : switchd::EvictionPolicy::PriorityLru;
    for (auto* sw : exp_->switches()) {
      sw->rule_table().set_eviction_policy(policy);
    }
    churn_ = std::make_unique<flows::ChurnGenerator>(
        exp_->topology().switch_graph, ccfg,
        Rng::stream_seed(seed_, kChurnStream), exp_->sim().now());
    churn_running_ = true;
    exp_->sim().schedule(kChurnTick, [this] { churn_tick(); });
  }

  void stop_flow_churn() {
    if (!churn_running_) {
      throw std::logic_error("stop_flow_churn: no active flow churn");
    }
    churn_running_ = false;  // the pending tick fires once and goes quiet
    // Flush every active flow: departures ahead of schedule, but removed —
    // the workload window ends with management rules alone in the tables.
    while (!active_flows_.empty()) {
      retire_flow(active_flows_.begin());
    }
  }

  /// One harness-lane churn tick: install the arrivals due by now, retire
  /// the flows whose lifetime ended, re-arm.
  void churn_tick() {
    if (!churn_running_) return;
    const Time now = exp_->sim().now();
    arrivals_buf_.clear();
    churn_->advance(now, arrivals_buf_);
    for (const flows::FlowArrival& a : arrivals_buf_) install_flow(a);
    while (!active_flows_.empty() &&
           active_flows_.begin()->first.first <= now) {
      retire_flow(active_flows_.begin());
    }
    exp_->sim().schedule(kChurnTick, [this] { churn_tick(); });
  }

  /// Install one microflow entry per hop of the flow's shortest path (the
  /// table may evict or reject under pressure — that is the experiment).
  void install_flow(const flows::FlowArrival& a) {
    churn_->path_hops(a.src, a.dst, hops_buf_);
    if (hops_buf_.empty()) return;  // currently unreachable in the fabric
    switchd::FlowRule r;
    r.id = a.id;
    r.src = a.src;
    r.dst = a.dst;
    r.prt = a.prt;
    const auto& switches = exp_->switches();
    for (NodeId v : hops_buf_) {
      r.fwd = churn_->next_hop(v, a.dst);
      switches[static_cast<std::size_t>(v)]->rule_table().install_flow(r);
    }
    active_flows_.emplace(std::pair{a.at + a.duration, a.id}, hops_buf_);
    tbl_peak_active_ =
        std::max(tbl_peak_active_, static_cast<double>(active_flows_.size()));
  }

  void retire_flow(
      std::map<std::pair<Time, std::uint64_t>,
               std::vector<NodeId>>::iterator it) {
    const std::uint64_t id = it->first.second;
    const auto& switches = exp_->switches();
    for (NodeId v : it->second) {
      // false = the entry was already evicted under pressure; fine.
      switches[static_cast<std::size_t>(v)]->rule_table().remove_flow(id);
    }
    ++tbl_departures_;
    active_flows_.erase(it);
  }

  // --- Adversary lifecycle + stabilization watchdog -----------------------

  /// Advance simulated time to `target`. Adversarial trials sample the
  /// legitimacy monitor every monitor_interval along the way (epoch-gated,
  /// so quiet stretches cost pointer reads); benign trials take the single
  /// jump and execute the exact pre-watchdog event schedule.
  void advance_to(Time target) {
    if (!wd_active_) {
      exp_->sim().run_until(target);
      return;
    }
    const Time step = std::max<Time>(exp_->config().monitor_interval, 1);
    while (exp_->sim().now() < target) {
      // now() only advances by executing events: aim each step at the next
      // pending event so an empty window can never spin this loop.
      const Time next = exp_->sim().next_event_time();
      if (next == kTimeNever || next > target) break;  // nothing before target
      exp_->sim().run_until(
          std::min(target, std::max(next, exp_->sim().now() + step)));
      wd_sample();
    }
  }

  /// One watchdog sample: consult the monitor (replaying the last verdict
  /// when the stack epoch is unchanged) and fold it into the accounting.
  void wd_sample() {
    const std::uint64_t e = exp_->monitor().stack_epoch();
    const bool legit = (wd_have_verdict_ && e == wd_epoch_)
                           ? wd_last_legit_
                           : exp_->monitor().check().legitimate;
    wd_epoch_ = e;
    wd_account(exp_->sim().now(), legit);
  }

  /// Fold one (time, verdict) sample into the watchdog counters. Time below
  /// legitimacy accumulates only after the first legitimate sample (the
  /// bootstrap climb is not an outage); an episode is each legitimate ->
  /// illegitimate edge. Resolution is the sampling step (monitor_interval).
  void wd_account(Time t, bool legit) {
    if (wd_have_verdict_ && wd_seen_legit_ && !wd_last_legit_) {
      wd_below_ += t - wd_last_t_;
    }
    if (wd_have_verdict_ && wd_last_legit_ && !legit) ++wd_episodes_;
    if (legit) wd_seen_legit_ = true;
    wd_have_verdict_ = true;
    wd_last_legit_ = legit;
    wd_last_t_ = t;
  }

  /// Snapshot every switch's change epoch at the first adversary start of a
  /// window — the blast-radius baseline.
  void wd_arm_blast() {
    if (wd_blast_armed_) return;
    wd_blast_armed_ = true;
    wd_epoch_snapshot_.clear();
    for (auto* sw : exp_->switches()) {
      wd_epoch_snapshot_[sw->id()] = sw->change_epoch();
    }
  }

  /// Blast radius: the fraction of switches whose manager/rule state moved
  /// since the adversary window opened. Conservative — it counts switches
  /// the adversary touched transiently even if they were repaired before
  /// the window closed (and any concurrent benign churn).
  void wd_measure_blast() {
    if (!wd_blast_armed_ || wd_epoch_snapshot_.empty()) return;
    double diverged = 0;
    for (auto* sw : exp_->switches()) {
      auto it = wd_epoch_snapshot_.find(sw->id());
      if (it != wd_epoch_snapshot_.end() && sw->change_epoch() != it->second) {
        diverged += 1;
      }
    }
    wd_blast_ = std::max(
        wd_blast_, diverged / static_cast<double>(wd_epoch_snapshot_.size()));
    wd_blast_armed_ = false;
  }

  void start_adversary(const Event& ev) {
    wd_arm_blast();
    if (ev.mode == "channel") {
      auto& net = exp_->sim().network();
      if (baseline_faults_.empty()) {
        baseline_faults_.reserve(net.link_count());
        for (std::size_t i = 0; i < net.link_count(); ++i) {
          baseline_faults_.push_back(
              net.link(static_cast<int>(i)).params().faults);
        }
      }
      for (std::size_t i = 0; i < net.link_count(); ++i) {
        net::LinkFaults f = baseline_faults_[i];
        if (ev.loss > 0) f.loss = ev.loss;
        if (ev.duplicate > 0) f.duplicate = ev.duplicate;
        if (ev.reorder > 0) {
          f.reorder = ev.reorder;
          if (f.reorder_delay_max <= 0) {
            f.reorder_delay_max = 4 * exp_->config().link_latency;
          }
        }
        if (ev.corrupt > 0) f.corrupt = ev.corrupt;
        net.link(static_cast<int>(i)).set_faults(f);
      }
      storm_active_ = true;
      return;
    }
    faults::Adversary::Config acfg;
    acfg.mode = faults::adversary_mode_from_string(ev.mode);
    acfg.intensity = ev.intensity;
    const auto node_space =
        static_cast<NodeId>(exp_->sim().network().node_count());
    const int want = victim_count(ev);
    // Victims are drawn from the scenario fault stream over the candidates
    // in id order, like every other injection — adding adversaries never
    // reshuffles which nodes earlier events picked.
    if (ev.target == "switch") {
      std::vector<switchd::AbstractSwitch*> cand;
      for (auto* sw : exp_->switches()) {
        if (sw->alive() && sw->adversary() == nullptr) cand.push_back(sw);
      }
      for (int k = 0; k < want && !cand.empty(); ++k) {
        const auto pick =
            static_cast<std::size_t>(fault_rng_.next_below(cand.size()));
        auto* sw = cand[pick];
        cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(pick));
        adversaries_.push_back(std::make_unique<faults::Adversary>(
            sw->id(), node_space, acfg, seed_));
        sw->set_adversary(adversaries_.back().get());
      }
    } else {
      std::vector<core::Controller*> cand;
      for (auto* c : exp_->controllers()) {
        if (c->alive() && c->adversary() == nullptr) cand.push_back(c);
      }
      for (int k = 0; k < want && !cand.empty(); ++k) {
        const auto pick =
            static_cast<std::size_t>(fault_rng_.next_below(cand.size()));
        auto* c = cand[pick];
        cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(pick));
        adversaries_.push_back(std::make_unique<faults::Adversary>(
            c->id(), node_space, acfg, seed_));
        c->set_adversary(adversaries_.back().get());
      }
    }
  }

  void stop_adversary() {
    wd_measure_blast();
    for (auto* c : exp_->controllers()) c->set_adversary(nullptr);
    for (auto* sw : exp_->switches()) sw->set_adversary(nullptr);
    adversaries_.clear();
    if (storm_active_) {
      auto& net = exp_->sim().network();
      for (std::size_t i = 0; i < baseline_faults_.size(); ++i) {
        net.link(static_cast<int>(i)).set_faults(baseline_faults_[i]);
      }
      storm_active_ = false;
    }
    wd_stopped_ = true;
  }

  void start_traffic(const std::string& label) {
    tcp::Host* a = exp_->host_a();
    tcp::Host* b = exp_->host_b();
    if (a == nullptr || b == nullptr)
      throw std::logic_error("start_traffic: experiment has no hosts");
    // One window per trial: the hosts' TCP endpoints are single-flow, and
    // replacing a sender would leave its queued RTO callbacks dangling.
    if (traffic_stats_ != nullptr || !retired_stats_.empty())
      throw std::logic_error(
          "start_traffic: only one traffic window per trial is supported");
    // The build-time flow owner may have been killed by an earlier event;
    // re-register on a surviving controller so the flow stays provisioned.
    if (flow_owner_ == nullptr || !flow_owner_->alive()) {
      flow_owner_ = exp_->register_default_data_flow();
    }
    // Fallback install wait (epoch-gated): the flow is registered at build
    // time, so after a bootstrap checkpoint the path is already walkable and
    // this loop exits without consuming simulated time.
    const Time deadline = exp_->sim().now() + sec(30);
    std::uint64_t walked_epoch = exp_->monitor().stack_epoch() - 1;
    while (exp_->sim().now() < deadline) {
      const std::uint64_t e = exp_->monitor().stack_epoch();
      if (e != walked_epoch) {
        walked_epoch = e;
        if (!exp_->current_data_path().empty()) break;
      }
      if (exp_->sim().next_event_time() == kTimeNever) break;  // drained
      exp_->sim().run_until(exp_->sim().now() + exp_->config().task_delay);
    }
    traffic_stats_ = std::make_unique<tcp::FlowStats>(exp_->sim().now());
    tcp::RenoConfig tcp_cfg;
    tcp_cfg.rwnd = 1u << 20;
    b->make_receiver(a->id(), tcp_cfg, traffic_stats_.get());
    auto& sender = a->make_sender(b->id(), tcp_cfg, traffic_stats_.get());
    window_label_ = label;
    traffic_start_ = exp_->sim().now();
    sender.start(traffic_start_);
  }

  /// Close the open traffic window: stop the sender and record the window's
  /// series + mean goodput.
  void close_window(TrialOutcome& out) {
    if (traffic_stats_ == nullptr) return;
    if (exp_->host_a() != nullptr && exp_->host_a()->sender() != nullptr) {
      exp_->host_a()->sender()->stop();
    }
    TrialOutcome::TrafficWindow w;
    w.label = window_label_.empty() ? "traffic" : window_label_;
    w.seconds =
        static_cast<int>((exp_->sim().now() - traffic_start_) / sec(1));
    if (w.seconds > 0) {
      w.mbits_series = traffic_stats_->mbits_series(w.seconds);
      w.retx_pct = traffic_stats_->retransmission_pct(w.seconds);
      w.bad_pct = traffic_stats_->bad_tcp_pct(w.seconds);
      w.ooo_pct = traffic_stats_->out_of_order_pct(w.seconds);
      double total = 0;
      for (double v : w.mbits_series) total += v;
      w.mbits = total / w.seconds;
    }
    out.windows.push_back(std::move(w));
    // Retire the stats object instead of destroying it: the hosts' TCP
    // endpoints keep raw pointers to it, and segments still in flight at
    // the stop instant are delivered (and recorded) if the timeline
    // advances further — the window snapshot above is already taken.
    retired_stats_.push_back(std::move(traffic_stats_));
    window_label_.clear();
  }

  void finish(TrialOutcome& out) {
    const auto& counters = exp_->sim().counters();
    for (const auto* c : exp_->controllers()) {
      const auto idx = static_cast<std::size_t>(c->id());
      out.messages += static_cast<double>(counters.ctrl_messages_sent[idx]);
      out.commands += static_cast<double>(counters.ctrl_commands_sent[idx]);
      out.illegitimate_deletions +=
          static_cast<double>(c->stats().illegitimate_deletions);
    }
    close_window(out);  // a window left open closes at trial end
    if (!out.windows.empty()) {
      out.has_traffic = true;
      out.traffic_mbits = out.windows.front().mbits;
    }
    if (wd_active_) {
      wd_sample();
      wd_measure_blast();  // adversary still live: measure at trial end
      out.has_watchdog = true;
      out.wd_below_s = to_seconds(wd_below_);
      out.wd_episodes = wd_episodes_;
      out.wd_blast_radius = wd_blast_;
      out.wd_restabilized = wd_stopped_ && wd_last_legit_;
    }
    if (table_active_) {
      out.has_table = true;
      out.tbl_arrivals =
          churn_ ? static_cast<double>(churn_->arrivals()) : 0;
      out.tbl_departures = tbl_departures_;
      out.tbl_peak_active = tbl_peak_active_;
      for (auto* sw : exp_->switches()) {
        const auto& fs = sw->rule_table().flow_stats();
        out.tbl_installs += static_cast<double>(fs.installs);
        out.tbl_overflows += static_cast<double>(fs.overflow_rejects);
        out.tbl_evictions += static_cast<double>(fs.flow_evictions);
        out.tbl_peak_rules =
            std::max(out.tbl_peak_rules, static_cast<double>(fs.peak_rules));
        out.tbl_lookups += static_cast<double>(fs.lookups);
        out.tbl_lookup_cost += static_cast<double>(fs.lookup_cost);
      }
    }
    out.counters_fp = exp_->sim().counters().fingerprint();
  }

  const Scenario& scenario_;
  Rng fault_rng_;
  std::unique_ptr<sim::Experiment> exp_;
  faults::ControlPlane cp_;
  core::Controller* flow_owner_ = nullptr;  ///< data-flow owner (traffic)
  std::unique_ptr<tcp::FlowStats> traffic_stats_;  ///< open window, if any
  /// The closed window's stats, kept alive for the rest of the trial: the
  /// hosts' TCP endpoints hold raw pointers into it and may still record
  /// in-flight segments after the window snapshot was taken.
  std::vector<std::unique_ptr<tcp::FlowStats>> retired_stats_;
  std::string window_label_;
  Time traffic_start_ = 0;
  std::uint64_t seed_ = 0;  ///< the trial seed (adversary stream derivation)

  // --- Adversary + stabilization-watchdog state (adversarial trials only) --
  std::vector<std::unique_ptr<faults::Adversary>> adversaries_;
  std::vector<net::LinkFaults> baseline_faults_;  ///< pre-storm per-link
  bool storm_active_ = false;
  bool wd_active_ = false;        ///< scenario contains a StartAdversary
  bool wd_have_verdict_ = false;  ///< at least one sample folded in
  bool wd_last_legit_ = false;
  bool wd_seen_legit_ = false;    ///< first legitimate sample reached
  std::uint64_t wd_epoch_ = 0;    ///< stack epoch of the last fresh check
  Time wd_last_t_ = 0;
  Time wd_below_ = 0;             ///< accumulated time below legitimacy
  int wd_episodes_ = 0;
  bool wd_stopped_ = false;       ///< a stop_adversary event ran
  double wd_blast_ = 0;
  bool wd_blast_armed_ = false;
  std::map<NodeId, std::uint64_t> wd_epoch_snapshot_;

  // --- Flow-churn state (churn scenarios only) ----------------------------
  bool table_active_ = false;   ///< scenario contains a StartFlowChurn
  bool churn_running_ = false;  ///< between start_flow_churn and stop
  std::unique_ptr<flows::ChurnGenerator> churn_;
  /// (end time, flow id) -> hop switches the flow's entries sit on. Ordered,
  /// so departures retire in (time, id) order — deterministic.
  std::map<std::pair<Time, std::uint64_t>, std::vector<NodeId>> active_flows_;
  std::vector<flows::FlowArrival> arrivals_buf_;
  std::vector<NodeId> hops_buf_;
  double tbl_departures_ = 0;
  double tbl_peak_active_ = 0;
};

}  // namespace

Json trial_outcome_json(const TrialOutcome& out) {
  Json rj;
  Json rcps{JsonArray{}};
  for (const auto& rcp : out.checkpoints) {
    Json j;
    j.set("label", rcp.label);
    j.set("converged", rcp.converged);
    j.set("seconds", rcp.seconds);
    j.set("cmd_per_node_iter", rcp.cmd_per_node_iter);
    rcps.push_back(std::move(j));
  }
  rj.set("checkpoints", std::move(rcps));
  if (!out.windows.empty()) {
    Json rwins{JsonArray{}};
    for (const auto& w : out.windows) {
      Json j;
      j.set("label", w.label);
      j.set("seconds", w.seconds);
      j.set("mbits", w.mbits);
      j.set("mbits_series", series_json(w.mbits_series));
      j.set("retx_pct", series_json(w.retx_pct));
      j.set("bad_pct", series_json(w.bad_pct));
      j.set("ooo_pct", series_json(w.ooo_pct));
      rwins.push_back(std::move(j));
    }
    rj.set("traffic_windows", std::move(rwins));
  }
  rj.set("messages", out.messages);
  rj.set("commands", out.commands);
  rj.set("illegitimate_deletions", out.illegitimate_deletions);
  if (out.has_watchdog) {
    Json wj;
    wj.set("below_s", out.wd_below_s);
    wj.set("episodes", out.wd_episodes);
    wj.set("blast_radius", out.wd_blast_radius);
    wj.set("restabilized", out.wd_restabilized);
    rj.set("watchdog", std::move(wj));
  }
  if (out.has_table) {
    Json tj;
    tj.set("arrivals", out.tbl_arrivals);
    tj.set("departures", out.tbl_departures);
    tj.set("peak_active", out.tbl_peak_active);
    tj.set("installs", out.tbl_installs);
    tj.set("overflows", out.tbl_overflows);
    tj.set("evictions", out.tbl_evictions);
    tj.set("peak_rules", out.tbl_peak_rules);
    tj.set("lookups", out.tbl_lookups);
    tj.set("lookup_cost", out.tbl_lookup_cost);
    rj.set("table", std::move(tj));
  }
  if (out.has_traffic) rj.set("traffic_mbits", out.traffic_mbits);
  return rj;
}

std::uint64_t trial_seed(std::uint64_t base_seed, const std::string& topology,
                         int controllers, int trial) {
  std::uint64_t h = mix64(base_seed);
  h = mix64(h ^ fnv1a(topology));
  h = mix64(h ^ (static_cast<std::uint64_t>(controllers) << 32) ^
            static_cast<std::uint64_t>(trial));
  return h;
}

TrialOutcome run_trial(const Scenario& s, const std::string& topology,
                       int controllers, const AxisPoint& axes, int trial,
                       const RunnerOptions& opt) {
  const std::uint64_t seed =
      trial_seed(s.base_seed, topology, controllers, trial);
  TrialExecutor exec(s, topology, controllers, axes, seed, opt);
  TrialOutcome out = exec.run();
  if (opt.paranoid_sim) {
    // Differential mode: replay the trial on the serial reference kernel and
    // demand a byte-identical outcome (same idiom as --paranoid-views /
    // --paranoid-batches: the optimized path shadows the reference path).
    RunnerOptions serial = opt;
    serial.sim_threads = 1;
    serial.paranoid_sim = false;
    TrialExecutor ref(s, topology, controllers, axes, seed, serial);
    const TrialOutcome want = ref.run();
    if (trial_outcome_json(out).pretty() != trial_outcome_json(want).pretty() ||
        out.counters_fp != want.counters_fp) {
      throw std::runtime_error(
          "paranoid-sim: sim_threads=" + std::to_string(opt.sim_threads) +
          " outcome diverged from the serial kernel (trial " +
          std::to_string(trial) + ", topology " + topology + ")");
    }
  }
  return out;
}

TrialOutcome run_trial(const Scenario& s, const std::string& topology,
                       int controllers, int trial, const RunnerOptions& opt) {
  return run_trial(s, topology, controllers, AxisPoint{}, trial, opt);
}

CampaignResult run_campaign(const Scenario& s, const RunnerOptions& opt) {
  for (const auto& t : s.topologies) topo::validate_spec(t);  // validate early
  // An event taking its victim count from the grid needs the axis to exist —
  // fail the campaign up front, not per trial.
  const bool uses_count_axis =
      std::any_of(s.events.begin(), s.events.end(),
                  [](const Event& e) { return e.count == kCountAxis; });
  const bool has_victims_axis =
      std::any_of(s.axes.begin(), s.axes.end(),
                  [](const Axis& a) { return a.name == "victims"; });
  if (uses_count_axis && !has_victims_axis) {
    throw std::invalid_argument(
        "run_campaign: an event uses count \"axis\" but the scenario has no "
        "\"victims\" axis");
  }
  const bool uses_rate_axis = std::any_of(
      s.events.begin(), s.events.end(), [](const Event& e) {
        return e.kind == EventKind::StartFlowChurn && e.rate == kRateAxis;
      });
  const bool has_churn_axis =
      std::any_of(s.axes.begin(), s.axes.end(),
                  [](const Axis& a) { return a.name == "churn_rate"; });
  if (uses_rate_axis && !has_churn_axis) {
    throw std::invalid_argument(
        "run_campaign: a start_flow_churn event uses rate \"axis\" but the "
        "scenario has no \"churn_rate\" axis");
  }
  if (opt.shard_count < 1 || opt.shard_index < 0 ||
      opt.shard_index >= opt.shard_count) {
    throw std::invalid_argument("run_campaign: shard must satisfy 0 <= k < n");
  }
  const std::vector<AxisPoint> axis_points = expand_axis_points(s);

  struct GridPoint {
    std::size_t cell;
    std::string topology;
    int controllers;
    std::size_t axis_point;
    int trial;
  };
  std::vector<GridPoint> grid;
  std::size_t cell = 0;
  for (const auto& t : s.topologies) {
    for (int nc : s.controllers) {
      for (std::size_t ap = 0; ap < axis_points.size(); ++ap) {
        for (int r = 0; r < s.trials; ++r) grid.push_back({cell, t, nc, ap, r});
        ++cell;
      }
    }
  }

  // Shard k-of-n: this process runs grid indices ≡ k (mod n). Seeds depend
  // only on grid coordinates, so shards are disjoint and their union is the
  // whole campaign regardless of how it is split.
  auto in_shard = [&](std::size_t i) {
    return static_cast<int>(i % static_cast<std::size_t>(opt.shard_count)) ==
           opt.shard_index;
  };

  std::vector<TrialOutcome> outcomes(grid.size());
  std::vector<char> executed(grid.size(), 0);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= grid.size()) return;
      if (!in_shard(i)) continue;
      const GridPoint& g = grid[i];
      try {
        outcomes[i] = run_trial(s, g.topology, g.controllers,
                                axis_points[g.axis_point], g.trial, opt);
      } catch (const std::exception& e) {
        outcomes[i].ok = false;
        outcomes[i].error = e.what();
      }
      executed[i] = 1;
    }
  };
  int threads = opt.threads > 0
                    ? opt.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  // Budget nested parallelism: each trial may itself run sim_threads shard
  // workers, so cap the trial pool at hw / sim_threads to keep trial-level x
  // simulation-level threads within the machine.
  if (opt.sim_threads > 1) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1) hw = 1;
    threads = std::min(threads, std::max(1, hw / opt.sim_threads));
  }
  // Size the pool by the trials this process actually runs, not the whole
  // grid: under --shard k/n only every n-th grid point is ours, and a pool
  // sized by grid.size() would spawn workers with nothing to do.
  std::size_t shard_trials = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (in_shard(i)) ++shard_trials;
  }
  threads = std::min<int>(threads, static_cast<int>(
                                       std::max<std::size_t>(shard_trials, 1)));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads > 1 ? threads : 0));
  if (threads <= 1) {
    worker();
  } else {
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // --- Aggregate in grid order (thread-count independent) -----------------
  CampaignResult result;
  result.scenario = s.name;
  result.description = s.description;
  result.profile = opt.paper_timers ? "paper" : "fast";
  result.trials_per_cell = s.trials;
  result.base_seed = s.base_seed;
  result.shard_index = opt.shard_index;
  result.shard_count = opt.shard_count;

  std::size_t at = 0;
  for (const auto& t : s.topologies) {
    for (int nc : s.controllers) {
      for (const AxisPoint& ap : axis_points) {
        std::vector<std::pair<int, TrialOutcome>> cell_outcomes;
        for (int r = 0; r < s.trials; ++r, ++at) {
          if (executed[at] == 0) continue;  // another shard's trial
          cell_outcomes.emplace_back(r, std::move(outcomes[at]));
        }
        result.cells.push_back(aggregate_cell(t, nc, ap,
                                              std::move(cell_outcomes),
                                              opt.include_raw));
      }
    }
  }
  return result;
}

CellResult aggregate_cell(const std::string& topology, int controllers,
                          AxisPoint axes,
                          std::vector<std::pair<int, TrialOutcome>> outcomes,
                          bool include_raw) {
  CellResult cr;
  cr.topology = topology;
  cr.controllers = controllers;
  cr.axes = std::move(axes);
  Sample messages, commands, violations, traffic;
  Sample wd_below, wd_episodes, wd_blast;
  Sample tb_arrivals, tb_departures, tb_peak_active, tb_installs;
  Sample tb_overflows, tb_evictions, tb_peak_rules, tb_lookups, tb_cost;
  // label -> aggregation slot, in first-seen (timeline) order
  std::vector<std::string> labels;
  std::vector<Sample> cp_seconds, cp_rate;
  std::vector<int> cp_converged, cp_total;
  // traffic-window label -> aggregation slot, in first-seen order
  struct WindowAcc {
    std::string label;
    int trials = 0;
    Sample mbits;
    SeriesAcc mbits_series, retx, bad, ooo;
  };
  std::vector<WindowAcc> windows;
  for (auto& [r, out] : outcomes) {
    if (!out.ok) {
      cr.errors.push_back("trial " + std::to_string(r) + ": " + out.error);
      continue;
    }
    ++cr.trials;
    messages.add(out.messages);
    commands.add(out.commands);
    violations.add(out.illegitimate_deletions);
    if (out.has_traffic) {
      cr.has_traffic = true;
      traffic.add(out.traffic_mbits);
    }
    if (out.has_watchdog) {
      cr.has_watchdog = true;
      wd_below.add(out.wd_below_s);
      wd_episodes.add(out.wd_episodes);
      wd_blast.add(out.wd_blast_radius);
      cr.wd_restabilized += out.wd_restabilized ? 1 : 0;
    }
    if (out.has_table) {
      cr.has_table = true;
      tb_arrivals.add(out.tbl_arrivals);
      tb_departures.add(out.tbl_departures);
      tb_peak_active.add(out.tbl_peak_active);
      tb_installs.add(out.tbl_installs);
      tb_overflows.add(out.tbl_overflows);
      tb_evictions.add(out.tbl_evictions);
      tb_peak_rules.add(out.tbl_peak_rules);
      tb_lookups.add(out.tbl_lookups);
      tb_cost.add(out.tbl_lookup_cost);
    }
    for (std::size_t k = 0; k < out.checkpoints.size(); ++k) {
      const auto& c = out.checkpoints[k];
      if (k >= labels.size()) {
        labels.push_back(c.label);
        cp_seconds.emplace_back();
        cp_rate.emplace_back();
        cp_converged.push_back(0);
        cp_total.push_back(0);
      }
      cp_seconds[k].add(c.seconds);
      cp_rate[k].add(c.cmd_per_node_iter);
      cp_converged[k] += c.converged ? 1 : 0;
      cp_total[k] += 1;
    }
    for (const auto& w : out.windows) {
      WindowAcc* acc = nullptr;
      for (auto& cand : windows) {
        if (cand.label == w.label) {
          acc = &cand;
          break;
        }
      }
      if (acc == nullptr) {
        windows.emplace_back();
        windows.back().label = w.label;
        acc = &windows.back();
      }
      ++acc->trials;
      acc->mbits.add(w.mbits);
      acc->mbits_series.add(w.mbits_series);
      acc->retx.add(w.retx_pct);
      acc->bad.add(w.bad_pct);
      acc->ooo.add(w.ooo_pct);
    }
    if (include_raw) cr.raw.emplace_back(r, std::move(out));
  }
  for (std::size_t k = 0; k < labels.size(); ++k) {
    CellResult::CheckpointAgg agg;
    agg.label = labels[k];
    agg.converged = cp_converged[k];
    agg.trials = cp_total[k];
    agg.seconds = cp_seconds[k].percentiles();
    agg.cmd_per_node_iter = cp_rate[k].percentiles();
    cr.checkpoints.push_back(std::move(agg));
  }
  for (auto& acc : windows) {
    CellResult::WindowAgg agg;
    agg.label = acc.label;
    agg.trials = acc.trials;
    agg.mbits = acc.mbits.percentiles();
    agg.mbits_series = acc.mbits_series.mean();
    agg.retx_pct = acc.retx.mean();
    agg.bad_pct = acc.bad.mean();
    agg.ooo_pct = acc.ooo.mean();
    cr.windows.push_back(std::move(agg));
  }
  cr.messages = messages.percentiles();
  cr.commands = commands.percentiles();
  cr.illegitimate_deletions = violations.percentiles();
  cr.traffic_mbits = traffic.percentiles();
  cr.wd_below_s = wd_below.percentiles();
  cr.wd_episodes = wd_episodes.percentiles();
  cr.wd_blast_radius = wd_blast.percentiles();
  cr.tbl_arrivals = tb_arrivals.percentiles();
  cr.tbl_departures = tb_departures.percentiles();
  cr.tbl_peak_active = tb_peak_active.percentiles();
  cr.tbl_installs = tb_installs.percentiles();
  cr.tbl_overflows = tb_overflows.percentiles();
  cr.tbl_evictions = tb_evictions.percentiles();
  cr.tbl_peak_rules = tb_peak_rules.percentiles();
  cr.tbl_lookups = tb_lookups.percentiles();
  cr.tbl_lookup_cost = tb_cost.percentiles();
  return cr;
}

Json CampaignResult::to_json() const {
  Json doc;
  doc.set("scenario", scenario);
  doc.set("description", description);
  doc.set("profile", profile);
  doc.set("trials_per_cell", trials_per_cell);
  doc.set("seed", base_seed);
  if (shard_count > 1) {
    doc.set("shard_index", shard_index);
    doc.set("shard_count", shard_count);
  }
  Json cells_json{JsonArray{}};
  for (const CellResult& c : cells) {
    Json cj;
    cj.set("topology", c.topology);
    cj.set("controllers", c.controllers);
    if (!c.axes.empty()) {
      Json axes;
      for (const auto& [name, value] : c.axes) axes.set(name, value);
      cj.set("axes", std::move(axes));
    }
    cj.set("trials", c.trials);
    Json cps{JsonArray{}};
    for (const auto& cp : c.checkpoints) {
      Json j;
      j.set("label", cp.label);
      j.set("converged", cp.converged);
      j.set("trials", cp.trials);
      j.set("seconds", summary_json(cp.seconds));
      j.set("cmd_per_node_iter", summary_json(cp.cmd_per_node_iter));
      cps.push_back(std::move(j));
    }
    cj.set("checkpoints", std::move(cps));
    if (!c.windows.empty()) {
      Json wins{JsonArray{}};
      for (const auto& w : c.windows) {
        Json j;
        j.set("label", w.label);
        j.set("trials", w.trials);
        j.set("mbits", summary_json(w.mbits));
        j.set("mbits_series", series_json(w.mbits_series));
        j.set("retx_pct", series_json(w.retx_pct));
        j.set("bad_pct", series_json(w.bad_pct));
        j.set("ooo_pct", series_json(w.ooo_pct));
        wins.push_back(std::move(j));
      }
      cj.set("traffic_windows", std::move(wins));
    }
    if (!c.errors.empty()) {
      Json errs{JsonArray{}};
      for (const auto& e : c.errors) errs.push_back(e);
      cj.set("errors", std::move(errs));
    }
    cj.set("messages", summary_json(c.messages));
    cj.set("commands", summary_json(c.commands));
    cj.set("illegitimate_deletions", summary_json(c.illegitimate_deletions));
    if (c.has_watchdog) {
      Json wj;
      wj.set("below_s", summary_json(c.wd_below_s));
      wj.set("episodes", summary_json(c.wd_episodes));
      wj.set("blast_radius", summary_json(c.wd_blast_radius));
      wj.set("restabilized", c.wd_restabilized);
      cj.set("watchdog", std::move(wj));
    }
    if (c.has_table) {
      Json tj;
      tj.set("arrivals", summary_json(c.tbl_arrivals));
      tj.set("departures", summary_json(c.tbl_departures));
      tj.set("peak_active", summary_json(c.tbl_peak_active));
      tj.set("installs", summary_json(c.tbl_installs));
      tj.set("overflows", summary_json(c.tbl_overflows));
      tj.set("evictions", summary_json(c.tbl_evictions));
      tj.set("peak_rules", summary_json(c.tbl_peak_rules));
      tj.set("lookups", summary_json(c.tbl_lookups));
      tj.set("lookup_cost", summary_json(c.tbl_lookup_cost));
      cj.set("table", std::move(tj));
    }
    if (c.has_traffic) cj.set("traffic_mbits", summary_json(c.traffic_mbits));
    if (!c.raw.empty()) {
      Json raws{JsonArray{}};
      for (const auto& [trial, out] : c.raw) {
        Json rj;
        rj.set("trial", trial);
        const Json tj = trial_outcome_json(out);
        for (const auto& [key, value] : tj.as_object()) rj.set(key, value);
        raws.push_back(std::move(rj));
      }
      cj.set("raw", std::move(raws));
    }
    cells_json.push_back(std::move(cj));
  }
  doc.set("cells", std::move(cells_json));
  return doc;
}

}  // namespace ren::scenario

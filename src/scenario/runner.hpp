// The campaign runner: expands a Scenario over its parameter grid
// (topology x controller-count x generic axes x seed), executes the trials
// on a thread pool — each trial is one Experiment, serial by default or on
// `sim_threads` epoch-lockstep shards (bit-identical either way, so the
// paper's interleaving model is preserved inside a trial while the campaign
// uses every core) — and aggregates the per-trial measurements into
// percentile summaries with a deterministic JSON rendering.
//
// Determinism contract: a campaign's JSON output depends only on the
// scenario (including base_seed) and the timer profile, never on the thread
// count. Every trial derives its own RNG streams from the (scenario seed,
// topology, controllers, trial index) tuple — axis points deliberately share
// seeds so sweeps are paired — and aggregation happens in grid order after
// all workers join.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace ren::scenario {

struct RunnerOptions {
  int threads = 0;  ///< worker count; 0 = hardware concurrency
  /// false (default): the fast timer profile the test suite uses (task delay
  /// 50 ms, detection 10 ms) — the algorithm is timer-rate oblivious, so this
  /// only compresses simulated wall-clock. true: the paper's Section 6.3
  /// timers (500 ms / 100 ms), for figures meant to match the paper's axes.
  bool paper_timers = false;
  /// Differential-test mode: every trial shadows the incremental legitimacy
  /// verdict with a fresh full check and fails the trial on divergence.
  bool paranoid_monitor = false;
  /// Differential-test mode: every controller shadows its cached res/fusion
  /// views with from-scratch builds and fails the trial on divergence.
  bool paranoid_views = false;
  /// Differential-test mode: every controller shadows each planned outbound
  /// batch with a from-scratch build and fails the trial unless the wire
  /// encodings are byte-equal.
  bool paranoid_batches = false;
  /// Attach raw per-trial samples to each cell (and its JSON) instead of
  /// only the percentile aggregates.
  bool include_raw = false;
  /// Shard k-of-n: run only grid points whose index ≡ shard_index (mod
  /// shard_count). Trial seeds depend only on grid coordinates, so the
  /// union of all n shard reports equals the unsharded campaign.
  int shard_index = 0;  ///< 0-based, < shard_count
  int shard_count = 1;
  /// Simulation shards per trial (Simulator::configure_parallel); 1 = the
  /// serial kernel. Outcomes are bit-identical at any value, so this is a
  /// pure wall-clock knob. The trial pool is budgeted so that trial-level x
  /// simulation-level parallelism never oversubscribes the machine.
  int sim_threads = 1;
  /// Differential-test mode: every trial is re-run on the serial kernel and
  /// the two TrialOutcome JSON renderings plus the Counters fingerprints
  /// must match byte-for-byte; the trial fails on any divergence.
  bool paranoid_sim = false;
};

/// One concrete point of the generic axes: (axis name, value) in the
/// scenario's axis declaration order. Empty when the scenario has no axes.
using AxisPoint = std::vector<std::pair<std::string, double>>;

/// One executed trial (a single seeded run of the scenario timeline).
struct TrialOutcome {
  struct Checkpoint {
    std::string label;
    bool converged = false;
    double seconds = 0;  ///< convergence time, or the limit when it failed
    /// Fig. 9's normalized communication cost over the checkpoint's wait:
    /// max over controllers of commands / iterations / node-count.
    double cmd_per_node_iter = 0;
  };
  /// One closed traffic window (start_traffic .. stop_traffic / trial end):
  /// per-second series after the paper's Figs. 15/16/18-20 plus the mean
  /// goodput over the whole window.
  struct TrafficWindow {
    std::string label;
    int seconds = 0;           ///< whole seconds the window spans
    double mbits = 0;          ///< mean goodput over the window
    std::vector<double> mbits_series;
    std::vector<double> retx_pct;  ///< retransmitted-packet % (Fig. 18)
    std::vector<double> bad_pct;   ///< "BAD TCP" % (Fig. 19)
    std::vector<double> ooo_pct;   ///< out-of-order % (Fig. 20)
  };
  bool ok = false;    ///< false: the trial threw (error holds the message)
  std::string error;
  std::vector<Checkpoint> checkpoints;
  std::vector<TrafficWindow> windows;
  double messages = 0;   ///< control messages originated by controllers
  double commands = 0;   ///< controller commands issued
  double illegitimate_deletions = 0;  ///< deletions that hit live peers
  bool has_traffic = false;
  double traffic_mbits = 0;  ///< mean goodput of the first traffic window
  /// Stabilization-watchdog record (LegitimacyMonitor layered over the
  /// adversary window). Present — and emitted in the JSON — only for trials
  /// whose scenario contains a StartAdversary event, so benign campaigns
  /// stay byte-identical to pre-watchdog reports.
  bool has_watchdog = false;
  double wd_below_s = 0;   ///< simulated seconds below legitimacy (after the
                           ///< first legitimate sample)
  int wd_episodes = 0;     ///< distinct legitimate->illegitimate transitions
  double wd_blast_radius = 0;  ///< max fraction of switches whose rule/
                               ///< manager state diverged while adversarial
  bool wd_restabilized = false;  ///< legitimate again after the last
                                 ///< stop_adversary
  /// Rule-table / flow-churn record (flows/churn.hpp workload over the
  /// capacity-limited switchd::RuleTable). Present — and emitted in the
  /// JSON — only for trials whose scenario contains a StartFlowChurn event,
  /// so churn-free campaigns stay byte-identical to pre-churn reports.
  bool has_table = false;
  double tbl_arrivals = 0;     ///< cumulative generator flow arrivals
  double tbl_departures = 0;   ///< flows removed (natural end or flush)
  double tbl_peak_active = 0;  ///< peak concurrently active flows
  double tbl_installs = 0;     ///< flow-entry installs, summed over switches
  double tbl_overflows = 0;    ///< overflow rejections, summed over switches
  double tbl_evictions = 0;    ///< pressure evictions, summed over switches
  double tbl_peak_rules = 0;   ///< max per-switch peak table occupancy
  double tbl_lookups = 0;      ///< forwarding-path lookups, summed
  double tbl_lookup_cost = 0;  ///< modeled lookup cost, summed
  /// Order-independent digest of the trial's final simulator Counters. Not
  /// part of the JSON rendering (shard-merged reports stay byte-identical);
  /// used by --paranoid-sim and the determinism tests.
  std::uint64_t counters_fp = 0;
};

/// Aggregates for one (topology, controllers, axis point) grid cell.
struct CellResult {
  std::string topology;
  int controllers = 0;
  AxisPoint axes;  ///< this cell's generic-axis values (empty: no axes)
  int trials = 0;  ///< trials that ran to completion
  struct CheckpointAgg {
    std::string label;
    int converged = 0;
    int trials = 0;
    PercentileSummary seconds;
    PercentileSummary cmd_per_node_iter;
  };
  std::vector<CheckpointAgg> checkpoints;
  /// Per traffic-window label: summary of per-trial mean goodput plus
  /// per-second series averaged element-wise over the trials that reached
  /// that second.
  struct WindowAgg {
    std::string label;
    int trials = 0;
    PercentileSummary mbits;
    std::vector<double> mbits_series;
    std::vector<double> retx_pct;
    std::vector<double> bad_pct;
    std::vector<double> ooo_pct;
  };
  std::vector<WindowAgg> windows;
  /// Error messages of trials that threw, in trial order ("trial N: what").
  /// Such trials are excluded from the aggregates but never silently: they
  /// are also reported in the JSON output.
  std::vector<std::string> errors;
  PercentileSummary messages;
  PercentileSummary commands;
  PercentileSummary illegitimate_deletions;
  bool has_traffic = false;
  PercentileSummary traffic_mbits;
  /// Stabilization-watchdog aggregates (adversarial scenarios only).
  bool has_watchdog = false;
  PercentileSummary wd_below_s;
  PercentileSummary wd_episodes;
  PercentileSummary wd_blast_radius;
  int wd_restabilized = 0;  ///< trials that re-stabilized after stop
  /// Rule-table / flow-churn aggregates (churn scenarios only).
  bool has_table = false;
  PercentileSummary tbl_arrivals;
  PercentileSummary tbl_departures;
  PercentileSummary tbl_peak_active;
  PercentileSummary tbl_installs;
  PercentileSummary tbl_overflows;
  PercentileSummary tbl_evictions;
  PercentileSummary tbl_peak_rules;
  PercentileSummary tbl_lookups;
  PercentileSummary tbl_lookup_cost;
  /// Raw per-trial samples, populated when RunnerOptions::include_raw:
  /// (trial index, outcome) for every trial this process executed.
  std::vector<std::pair<int, TrialOutcome>> raw;
};

struct CampaignResult {
  std::string scenario;
  std::string description;
  std::string profile;  ///< "fast" or "paper"
  int trials_per_cell = 0;
  std::uint64_t base_seed = 0;
  int shard_index = 0;  ///< which shard this report covers (0-based)
  int shard_count = 1;
  std::vector<CellResult> cells;

  [[nodiscard]] Json to_json() const;
};

/// The deterministic per-trial seed for one grid point (exposed for tests).
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       const std::string& topology,
                                       int controllers, int trial);

/// Execute one trial synchronously (exposed for tests and the ported
/// benches; run_campaign is a thread pool over this). The AxisPoint overload
/// applies the given axis values on top of the timer profile.
[[nodiscard]] TrialOutcome run_trial(const Scenario& s,
                                     const std::string& topology,
                                     int controllers, const AxisPoint& axes,
                                     int trial, const RunnerOptions& opt);
[[nodiscard]] TrialOutcome run_trial(const Scenario& s,
                                     const std::string& topology,
                                     int controllers, int trial,
                                     const RunnerOptions& opt);

/// The canonical JSON rendering of one trial (the raw-export cell format).
/// Byte-equality of two renderings is the determinism contract checked by
/// --paranoid-sim and the sim_threads determinism tests.
[[nodiscard]] Json trial_outcome_json(const TrialOutcome& t);

/// Fold executed trials (in ascending trial order; errored ones carry
/// ok=false) into one cell's aggregates. Takes the outcomes by value (they
/// are consumed — raw export moves them). run_campaign and merge_campaigns
/// share this, which is what makes a merged shard report byte-identical to
/// the unsharded campaign.
[[nodiscard]] CellResult aggregate_cell(
    const std::string& topology, int controllers, AxisPoint axes,
    std::vector<std::pair<int, TrialOutcome>> outcomes, bool include_raw);

/// Expand the grid, run every trial (in parallel), aggregate.
/// Validates topology names up front and throws std::invalid_argument for
/// unknown ones.
[[nodiscard]] CampaignResult run_campaign(const Scenario& s,
                                          const RunnerOptions& opt = {});

}  // namespace ren::scenario

#include "scenario/scenario.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "faults/adversary.hpp"
#include "sim/experiment.hpp"

namespace ren::scenario {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::KillController: return "kill_controller";
    case EventKind::KillSwitches: return "kill_switches";
    case EventKind::FailLinks: return "fail_links";
    case EventKind::RestoreLinks: return "restore_links";
    case EventKind::RestartNodes: return "restart_nodes";
    case EventKind::CorruptAll: return "corrupt_all";
    case EventKind::Freeze: return "freeze";
    case EventKind::Unfreeze: return "unfreeze";
    case EventKind::StartTraffic: return "start_traffic";
    case EventKind::StopTraffic: return "stop_traffic";
    case EventKind::FailPathLink: return "fail_path_link";
    case EventKind::ExpectConverged: return "expect_converged";
    case EventKind::StartAdversary: return "start_adversary";
    case EventKind::StopAdversary: return "stop_adversary";
    case EventKind::StartFlowChurn: return "start_flow_churn";
    case EventKind::StopFlowChurn: return "stop_flow_churn";
  }
  return "?";
}

EventKind event_kind_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(EventKind::StopFlowChurn); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (s == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown event kind: " + s);
}

namespace {

Event make_event(Time at, EventKind kind) {
  Event e;
  e.at = at;
  e.kind = kind;
  return e;
}

int checked_count(int count) {
  if (count < 1 && count != kCountAxis) {
    throw std::invalid_argument(
        "Scenario: event count must be >= 1 or kCountAxis");
  }
  return count;
}

/// Shared StartAdversary validation (builder API and spec parser): the mode
/// must name an adversary mode or "channel", intensity is a probability, and
/// channel fault probabilities must leave room for delivery.
void check_adversary_event(const Event& e, const std::string& where) {
  if (e.mode != "channel") {
    (void)faults::adversary_mode_from_string(e.mode);  // throws on unknown
    if (e.target != "controller" && e.target != "switch") {
      throw std::invalid_argument(where + ": target must be \"controller\" or "
                                          "\"switch\", got \"" + e.target +
                                  "\"");
    }
  }
  if (e.intensity < 0.0 || e.intensity > 1.0) {
    throw std::invalid_argument(where + ": intensity must be in [0, 1]");
  }
  for (double p : {e.loss, e.duplicate, e.reorder, e.corrupt}) {
    if (p < 0.0 || p >= 1.0) {
      throw std::invalid_argument(
          where + ": channel fault probabilities must be in [0, 1)");
    }
  }
}

/// Shared StartFlowChurn validation (builder API and spec parser); the
/// domains mirror flows::ChurnConfig's constructor checks so a bad spec
/// fails at parse/build time instead of mid-trial.
void check_churn_event(const Event& e, const std::string& where) {
  if (!(e.rate > 0) && e.rate != kRateAxis) {
    throw std::invalid_argument(where +
                                ": rate must be > 0 or \"axis\"");
  }
  if (e.duration <= 0) {
    throw std::invalid_argument(where + ": mean_duration must be > 0");
  }
  if (!(e.alpha > 1.0)) {
    throw std::invalid_argument(where + ": alpha must be > 1");
  }
  if (e.zipf < 0) {
    throw std::invalid_argument(where + ": zipf must be >= 0");
  }
  if (e.dist != "pareto" && e.dist != "poisson") {
    throw std::invalid_argument(where + ": dist must be \"pareto\" or "
                                        "\"poisson\", got \"" + e.dist + "\"");
  }
  if (e.eviction != "priority_lru" && e.eviction != "reject_lowest") {
    throw std::invalid_argument(where + ": eviction must be \"priority_lru\" "
                                        "or \"reject_lowest\", got \"" +
                                e.eviction + "\"");
  }
}

}  // namespace

Scenario& Scenario::expect_converged(Time at, std::string label, Time limit) {
  Event e = make_event(at, EventKind::ExpectConverged);
  e.label = std::move(label);
  e.limit = limit;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::kill_controller(Time at, int count) {
  Event e = make_event(at, EventKind::KillController);
  e.count = checked_count(count);
  events.push_back(e);
  return *this;
}

Scenario& Scenario::kill_switches(Time at, int count) {
  Event e = make_event(at, EventKind::KillSwitches);
  e.count = checked_count(count);
  events.push_back(e);
  return *this;
}

Scenario& Scenario::fail_links(Time at, int count, bool keep_connected) {
  Event e = make_event(at, EventKind::FailLinks);
  e.count = checked_count(count);
  e.keep_connected = keep_connected;
  events.push_back(e);
  return *this;
}

Scenario& Scenario::restore_links(Time at) {
  events.push_back(make_event(at, EventKind::RestoreLinks));
  return *this;
}

Scenario& Scenario::restart_nodes(Time at) {
  events.push_back(make_event(at, EventKind::RestartNodes));
  return *this;
}

Scenario& Scenario::corrupt_all(Time at) {
  events.push_back(make_event(at, EventKind::CorruptAll));
  return *this;
}

Scenario& Scenario::freeze(Time at) {
  events.push_back(make_event(at, EventKind::Freeze));
  return *this;
}

Scenario& Scenario::unfreeze(Time at) {
  events.push_back(make_event(at, EventKind::Unfreeze));
  return *this;
}

Scenario& Scenario::start_traffic(Time at, std::string label) {
  Event e = make_event(at, EventKind::StartTraffic);
  e.label = std::move(label);
  events.push_back(std::move(e));
  with_hosts = true;
  return *this;
}

Scenario& Scenario::stop_traffic(Time at) {
  events.push_back(make_event(at, EventKind::StopTraffic));
  return *this;
}

Scenario& Scenario::fail_path_link(Time at, Time detection) {
  if (detection < 0)
    throw std::invalid_argument(
        "Scenario::fail_path_link: detection must be >= 0");
  Event e = make_event(at, EventKind::FailPathLink);
  e.detection = detection;
  events.push_back(e);
  return *this;
}

Scenario& Scenario::start_adversary(Time at, std::string mode, int count,
                                    double intensity, std::string target) {
  Event e = make_event(at, EventKind::StartAdversary);
  e.mode = std::move(mode);
  e.count = checked_count(count);
  e.intensity = intensity;
  e.target = std::move(target);
  check_adversary_event(e, "Scenario::start_adversary");
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::channel_faults(Time at, double loss, double corrupt,
                                   double duplicate, double reorder) {
  Event e = make_event(at, EventKind::StartAdversary);
  e.mode = "channel";
  e.loss = loss;
  e.corrupt = corrupt;
  e.duplicate = duplicate;
  e.reorder = reorder;
  check_adversary_event(e, "Scenario::channel_faults");
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::stop_adversary(Time at) {
  events.push_back(make_event(at, EventKind::StopAdversary));
  return *this;
}

Scenario& Scenario::start_flow_churn(Time at, double rate, Time mean_duration,
                                     double alpha, double zipf,
                                     std::string dist, std::string eviction) {
  Event e = make_event(at, EventKind::StartFlowChurn);
  e.rate = rate;
  e.duration = mean_duration;
  e.alpha = alpha;
  e.zipf = zipf;
  e.dist = std::move(dist);
  e.eviction = std::move(eviction);
  check_churn_event(e, "Scenario::start_flow_churn");
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::stop_flow_churn(Time at) {
  events.push_back(make_event(at, EventKind::StopFlowChurn));
  return *this;
}

Scenario& Scenario::axis(const std::string& name, std::vector<double> values) {
  if (values.empty())
    throw std::invalid_argument("Scenario::axis: \"" + name +
                                "\" needs at least one value");
  // Name + domain validation against the single source of truth (throws on
  // unknown names / out-of-domain values).
  sim::ExperimentConfig scratch;
  for (double v : values) sim::apply_axis(scratch, name, v);
  for (Axis& a : axes) {
    if (a.name == name) {
      a.values = std::move(values);
      return *this;
    }
  }
  axes.push_back({name, std::move(values)});
  return *this;
}

Scenario& Scenario::every(Time period, int times) {
  if (events.empty())
    throw std::logic_error("Scenario::every: no event to make periodic");
  if (period <= 0 || times < 1)
    throw std::invalid_argument(
        "Scenario::every: period must be positive and times >= 1");
  events.back().every = period;
  events.back().repeat = times;
  return *this;
}

std::vector<Event> Scenario::sorted_events() const {
  std::vector<Event> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  return sorted;
}

std::vector<Event> Scenario::expanded_events() const {
  std::vector<Event> expanded;
  for (const Event& e : events) {
    const int times = e.every > 0 ? std::max(e.repeat, 1) : 1;
    for (int k = 0; k < times; ++k) {
      Event occ = e;
      occ.at = e.at + static_cast<Time>(k) * e.every;
      occ.every = 0;
      occ.repeat = 1;
      if (k > 0 && e.kind == EventKind::ExpectConverged) {
        occ.label = e.label + "_" + std::to_string(k);
      }
      expanded.push_back(std::move(occ));
    }
  }
  std::stable_sort(expanded.begin(), expanded.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  return expanded;
}

bool Scenario::needs_hosts() const {
  if (with_hosts) return true;
  return std::any_of(events.begin(), events.end(), [](const Event& e) {
    return e.kind == EventKind::StartTraffic;
  });
}

// --- Spec serialization -----------------------------------------------------

namespace {

/// Spec seeds (and event budgets) travel through JSON numbers (doubles);
/// anything above 2^53 would round silently and break the "same seed, same
/// bytes" contract, so both directions reject it loudly.
constexpr std::uint64_t kMaxSpecInt = 1ULL << 53;

void check_spec_int_fits(std::uint64_t v, const char* what) {
  if (v > kMaxSpecInt)
    throw std::invalid_argument(std::string("spec: ") + what +
                                " must be <= 2^53 (JSON numbers cannot hold "
                                "it exactly)");
}

}  // namespace

Json to_spec_json(const Scenario& s) {
  check_spec_int_fits(s.base_seed, "seed");
  check_spec_int_fits(s.max_events, "max_events");
  Json doc;
  doc.set("name", s.name);
  doc.set("description", s.description);
  Json topos;
  for (const auto& t : s.topologies) topos.push_back(t);
  doc.set("topologies", std::move(topos));
  Json ctrls;
  for (int c : s.controllers) ctrls.push_back(c);
  doc.set("controllers", std::move(ctrls));
  doc.set("trials", s.trials);
  doc.set("seed", s.base_seed);
  if (!s.axes.empty()) {
    Json axes;
    for (const Axis& a : s.axes) {
      Json values{JsonArray{}};
      for (double v : a.values) values.push_back(v);
      axes.set(a.name, std::move(values));
    }
    doc.set("axes", std::move(axes));
  }
  if (s.with_hosts) doc.set("with_hosts", true);
  if (s.calibrate_rtt) doc.set("calibrate_rtt", true);
  if (s.max_events > 0) doc.set("max_events", s.max_events);
  Json events{JsonArray{}};
  for (const Event& e : s.events) {
    Json ev;
    ev.set("at_ms", e.at / 1000);
    ev.set("kind", to_string(e.kind));
    auto set_count = [&ev](int count) {
      if (count == kCountAxis) {
        ev.set("count", "axis");
      } else {
        ev.set("count", count);
      }
    };
    switch (e.kind) {
      case EventKind::KillController:
      case EventKind::KillSwitches:
        set_count(e.count);
        break;
      case EventKind::FailLinks:
        set_count(e.count);
        if (!e.keep_connected) ev.set("keep_connected", false);
        break;
      case EventKind::StartTraffic:
        if (!e.label.empty()) ev.set("label", e.label);
        break;
      case EventKind::FailPathLink:
        ev.set("detection_ms", e.detection / 1000);
        break;
      case EventKind::ExpectConverged:
        ev.set("label", e.label);
        ev.set("limit_ms", e.limit / 1000);
        break;
      case EventKind::StartAdversary:
        ev.set("mode", e.mode);
        if (e.mode == "channel") {
          if (e.loss > 0) ev.set("loss", e.loss);
          if (e.duplicate > 0) ev.set("duplicate", e.duplicate);
          if (e.reorder > 0) ev.set("reorder", e.reorder);
          if (e.corrupt > 0) ev.set("corrupt", e.corrupt);
        } else {
          set_count(e.count);
          if (e.intensity != 1.0) ev.set("intensity", e.intensity);
          if (e.target != "controller") ev.set("target", e.target);
        }
        break;
      case EventKind::StartFlowChurn:
        if (e.rate == kRateAxis) {
          ev.set("rate", "axis");
        } else {
          ev.set("rate", e.rate);
        }
        ev.set("mean_duration_ms", e.duration / 1000);
        if (e.alpha != 1.5) ev.set("alpha", e.alpha);
        if (e.zipf != 1.0) ev.set("zipf", e.zipf);
        if (e.dist != "pareto") ev.set("dist", e.dist);
        if (e.eviction != "priority_lru") ev.set("eviction", e.eviction);
        break;
      default:
        break;
    }
    if (e.every > 0) {
      ev.set("every_ms", e.every / 1000);
      ev.set("repeat", e.repeat);
    }
    events.push_back(std::move(ev));
  }
  doc.set("events", std::move(events));
  return doc;
}

namespace {

void reject_unknown_keys(const Json& obj, const std::set<std::string>& known,
                         const std::string& where) {
  for (const auto& [k, v] : obj.as_object()) {
    (void)v;
    if (known.find(k) == known.end())
      throw std::runtime_error("spec: unknown key \"" + k + "\" in " + where);
  }
}

/// Read a non-negative integer spec field, validating the double *before*
/// the cast (a negative or huge value must be a loud error, not undefined
/// behavior of the float-to-unsigned conversion).
std::uint64_t spec_uint(const Json& doc, const char* key, std::uint64_t dflt,
                        const char* what) {
  const double v = doc.number_or(key, static_cast<double>(dflt));
  if (v < 0 || v > static_cast<double>(kMaxSpecInt)) {
    throw std::invalid_argument(std::string("spec: ") + what +
                                " must be in [0, 2^53]");
  }
  return static_cast<std::uint64_t>(v);
}

/// Required integer parameter of an object-form topology entry.
long long topo_int(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind() != Json::Kind::Number) {
    throw std::runtime_error(std::string("spec: topology object needs a "
                                         "numeric \"") + key + "\"");
  }
  return static_cast<long long>(v->as_number());
}

/// Canonicalize one "topologies" entry: plain strings pass through (they are
/// already the topo::resolve() grammar); object form maps onto it:
///   {"kind": "builtin", "name": "B4"}
///   {"kind": "fat_tree", "k": 16}
///   {"kind": "random_wan", "nodes": 1024, "m": 2, "seed": 1}
///   {"kind": "isp", "nodes": 120, "diameter": 9, "seed": 1}
///   {"kind": "file", "path": "maps/1755.cch", "format": "rocketfuel"}
std::string topology_spec_from_json(const Json& v) {
  if (v.kind() == Json::Kind::String) return v.as_string();
  if (!v.is_object()) {
    throw std::runtime_error(
        "spec: each topology must be a spec string or an object with a "
        "\"kind\"");
  }
  const std::string kind = v.string_or("kind", "");
  if (kind == "builtin") {
    reject_unknown_keys(v, {"kind", "name"}, "topology");
    const std::string name = v.string_or("name", "");
    if (name.empty()) {
      throw std::runtime_error("spec: builtin topology needs a \"name\"");
    }
    return name;
  }
  if (kind == "fat_tree") {
    reject_unknown_keys(v, {"kind", "k"}, "topology");
    return "fat_tree:k=" + std::to_string(topo_int(v, "k"));
  }
  if (kind == "random_wan") {
    reject_unknown_keys(v, {"kind", "nodes", "m", "seed"}, "topology");
    std::string spec = "random_wan:nodes=" + std::to_string(topo_int(v, "nodes"));
    if (v.find("m") != nullptr) spec += ",m=" + std::to_string(topo_int(v, "m"));
    if (v.find("seed") != nullptr) {
      spec += ",seed=" + std::to_string(topo_int(v, "seed"));
    }
    return spec;
  }
  if (kind == "isp") {
    reject_unknown_keys(v, {"kind", "nodes", "diameter", "seed"}, "topology");
    std::string spec = "isp:nodes=" + std::to_string(topo_int(v, "nodes")) +
                       ",diameter=" + std::to_string(topo_int(v, "diameter"));
    if (v.find("seed") != nullptr) {
      spec += ",seed=" + std::to_string(topo_int(v, "seed"));
    }
    return spec;
  }
  if (kind == "file") {
    reject_unknown_keys(v, {"kind", "path", "format"}, "topology");
    const std::string path = v.string_or("path", "");
    if (path.empty()) {
      throw std::runtime_error("spec: file topology needs a \"path\"");
    }
    const std::string format = v.string_or("format", "");
    return (format.empty() ? "file" : format) + ":" + path;
  }
  throw std::runtime_error(
      "spec: unknown topology kind \"" + kind +
      "\" (want builtin, fat_tree, random_wan, isp, or file)");
}

}  // namespace

Scenario parse_spec_json(const Json& doc) {
  reject_unknown_keys(doc,
                      {"name", "description", "topologies", "controllers",
                       "trials", "seed", "axes", "with_hosts", "calibrate_rtt",
                       "max_events", "events"},
                      "scenario");
  Scenario s;
  s.name = doc.string_or("name", "unnamed");
  s.description = doc.string_or("description", "");
  if (const Json* t = doc.find("topologies")) {
    s.topologies.clear();
    for (const Json& v : t->as_array()) {
      s.topologies.push_back(topology_spec_from_json(v));
    }
  }
  if (const Json* c = doc.find("controllers")) {
    s.controllers.clear();
    for (const Json& v : c->as_array())
      s.controllers.push_back(static_cast<int>(v.as_number()));
  }
  s.trials = static_cast<int>(doc.number_or("trials", s.trials));
  s.base_seed = spec_uint(doc, "seed", s.base_seed, "seed");
  if (const Json* axes = doc.find("axes")) {
    // Scenario::axis validates names and value domains (loud on typos).
    for (const auto& [name, values] : axes->as_object()) {
      std::vector<double> vs;
      for (const Json& v : values.as_array()) vs.push_back(v.as_number());
      s.axis(name, std::move(vs));
    }
  }
  s.with_hosts = doc.bool_or("with_hosts", false);
  s.calibrate_rtt = doc.bool_or("calibrate_rtt", false);
  s.max_events = spec_uint(doc, "max_events", 0, "max_events");
  if (const Json* evs = doc.find("events")) {
    std::size_t idx = 0;
    for (const Json& ej : evs->as_array()) {
      const std::string where = "events[" + std::to_string(idx++) + "]";
      reject_unknown_keys(ej,
                          {"at_ms", "kind", "count", "keep_connected", "label",
                           "limit_ms", "detection_ms", "every_ms", "repeat",
                           "mode", "intensity", "target", "loss", "duplicate",
                           "reorder", "corrupt", "rate", "mean_duration_ms",
                           "alpha", "zipf", "dist", "eviction"},
                          where);
      Event e;
      e.at = msec(static_cast<std::int64_t>(ej.number_or("at_ms", 0)));
      try {
        e.kind = event_kind_from_string(ej.string_or("kind", ""));
      } catch (const std::invalid_argument& ex) {
        throw std::invalid_argument("spec: " + where + ": " + ex.what());
      }
      if (const Json* cj = ej.find("count")) {
        if (cj->kind() == Json::Kind::String) {
          if (cj->as_string() != "axis") {
            throw std::runtime_error(
                "spec: \"count\" must be a number or the string \"axis\"");
          }
          e.count = kCountAxis;
        } else {
          e.count = static_cast<int>(cj->as_number());
          if (e.count < 1) {
            throw std::runtime_error("spec: \"count\" must be >= 1");
          }
        }
      }
      e.keep_connected = ej.bool_or("keep_connected", true);
      e.limit =
          msec(static_cast<std::int64_t>(ej.number_or("limit_ms", 120'000)));
      e.detection =
          msec(static_cast<std::int64_t>(ej.number_or("detection_ms", 150)));
      if (e.detection < 0)
        throw std::runtime_error("spec: detection_ms must be >= 0");
      e.label = ej.string_or("label", "");
      e.mode = ej.string_or("mode", "");
      e.intensity = ej.number_or("intensity", 1.0);
      e.target = ej.string_or("target", "controller");
      e.loss = ej.number_or("loss", 0.0);
      e.duplicate = ej.number_or("duplicate", 0.0);
      e.reorder = ej.number_or("reorder", 0.0);
      e.corrupt = ej.number_or("corrupt", 0.0);
      if (e.kind == EventKind::StartAdversary) {
        try {
          check_adversary_event(e, "start_adversary");
        } catch (const std::invalid_argument& ex) {
          throw std::invalid_argument("spec: " + where + ": " + ex.what());
        }
      }
      if (const Json* rj = ej.find("rate")) {
        if (rj->kind() == Json::Kind::String) {
          if (rj->as_string() != "axis") {
            throw std::runtime_error(
                "spec: \"rate\" must be a number or the string \"axis\"");
          }
          e.rate = kRateAxis;
        } else {
          e.rate = rj->as_number();
        }
      }
      e.duration = msec(
          static_cast<std::int64_t>(ej.number_or("mean_duration_ms", 200)));
      e.alpha = ej.number_or("alpha", 1.5);
      e.zipf = ej.number_or("zipf", 1.0);
      e.dist = ej.string_or("dist", "pareto");
      e.eviction = ej.string_or("eviction", "priority_lru");
      if (e.kind == EventKind::StartFlowChurn) {
        try {
          check_churn_event(e, "start_flow_churn");
        } catch (const std::invalid_argument& ex) {
          throw std::invalid_argument("spec: " + where + ": " + ex.what());
        }
      }
      e.every = msec(static_cast<std::int64_t>(ej.number_or("every_ms", 0)));
      e.repeat = static_cast<int>(ej.number_or("repeat", 1));
      // Periodicity needs both halves: "every_ms" without "repeat" would
      // silently degenerate to a one-shot, so reject either half alone.
      if (e.every < 0 || (e.every > 0 && e.repeat < 1) ||
          ((ej.find("every_ms") != nullptr) !=
           (ej.find("repeat") != nullptr)))
        throw std::runtime_error(
            "spec: periodic events need both \"every_ms\" (> 0) and "
            "\"repeat\" (>= 1)");
      if (e.every == 0) e.repeat = 1;
      if (e.kind == EventKind::StartTraffic) s.with_hosts = true;
      s.events.push_back(std::move(e));
    }
  }
  if (s.topologies.empty())
    throw std::runtime_error("spec: topologies must not be empty");
  if (s.controllers.empty())
    throw std::runtime_error("spec: controllers must not be empty");
  if (s.trials <= 0) throw std::runtime_error("spec: trials must be positive");
  // Churn events must nest: a stop without an active workload (or a second
  // start over a running one) is a spec bug, caught here over the expanded
  // timeline so periodic events are covered too.
  bool churn_active = false;
  for (const Event& e : s.expanded_events()) {
    if (e.kind == EventKind::StartFlowChurn) {
      if (churn_active) {
        throw std::runtime_error(
            "spec: start_flow_churn while flow churn is already active");
      }
      churn_active = true;
    } else if (e.kind == EventKind::StopFlowChurn) {
      if (!churn_active) {
        throw std::runtime_error(
            "spec: stop_flow_churn before any start_flow_churn");
      }
      churn_active = false;
    }
  }
  return s;
}

Scenario parse_spec(const std::string& text) {
  return parse_spec_json(Json::parse(text));
}

}  // namespace ren::scenario

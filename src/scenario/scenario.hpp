// The declarative scenario model: a timeline of timed fault/traffic/
// measurement events plus the parameter axes (topology x controller-count x
// seed) a campaign sweeps over. Scenarios come from three places: the C++
// builder API below, the built-in library (scenario/library.hpp), and JSON
// spec files (parse_spec / to_spec_json round-trip, see README for the spec
// reference).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "util/types.hpp"

namespace ren::scenario {

enum class EventKind {
  KillController,   ///< fail-stop `count` random controllers (>=1 survives)
  KillSwitches,     ///< fail-stop `count` connectivity-preserving switches
  FailLinks,        ///< permanently fail `count` random links
  RestoreLinks,     ///< restore every link failed so far
  RestartNodes,     ///< revive every node killed so far (+ their links)
  CorruptAll,       ///< transient-fault storm over all live state
  Freeze,           ///< freeze the controllers' do-forever loops
  Unfreeze,         ///< resume the controllers
  StartTraffic,     ///< start the host-pair TCP flow (needs with_hosts)
  ExpectConverged,  ///< checkpoint: wait for legitimacy, record the time
};

[[nodiscard]] const char* to_string(EventKind k);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] EventKind event_kind_from_string(const std::string& s);

struct Event {
  Time at = 0;
  EventKind kind = EventKind::ExpectConverged;
  int count = 1;               ///< Kill*/FailLinks victim count
  bool keep_connected = true;  ///< FailLinks: honor the paper's assumption
  Time limit = sec(120);       ///< ExpectConverged wait bound
  std::string label;           ///< ExpectConverged checkpoint name
  /// Periodic repetition ("every_ms" in the JSON spec): when `every` > 0 the
  /// event fires `repeat` times at `at`, `at`+every, ... — flap storms no
  /// longer unroll their timelines. ExpectConverged occurrences after the
  /// first get a "_k" label suffix so checkpoints stay distinguishable.
  Time every = 0;
  int repeat = 1;

  bool operator==(const Event&) const = default;
};

struct Scenario {
  std::string name;
  std::string description;

  // --- Campaign axes ------------------------------------------------------
  std::vector<std::string> topologies = {"B4", "Clos", "Telstra"};
  std::vector<int> controllers = {3};
  int trials = 8;  ///< seeds base_seed .. base_seed+trials-1 per cell
  std::uint64_t base_seed = 1;

  bool with_hosts = false;  ///< implied by any StartTraffic event
  std::vector<Event> events;

  bool operator==(const Scenario&) const = default;

  // --- Builder API (each returns *this for chaining) ----------------------
  Scenario& expect_converged(Time at, std::string label,
                             Time limit = sec(120));
  Scenario& kill_controller(Time at, int count = 1);
  Scenario& kill_switches(Time at, int count = 1);
  Scenario& fail_links(Time at, int count = 1, bool keep_connected = true);
  Scenario& restore_links(Time at);
  Scenario& restart_nodes(Time at);
  Scenario& corrupt_all(Time at);
  Scenario& freeze(Time at);
  Scenario& unfreeze(Time at);
  Scenario& start_traffic(Time at);
  /// Make the most recently added event periodic: `times` total occurrences
  /// spaced `period` apart. Throws std::logic_error without a prior event,
  /// std::invalid_argument on a non-positive period/count.
  Scenario& every(Time period, int times);

  /// Events ordered by time; ties keep declaration order (stable), which is
  /// how e.g. restart_nodes + expect_converged at the same instant compose.
  [[nodiscard]] std::vector<Event> sorted_events() const;

  /// sorted_events() with periodic entries expanded into their concrete
  /// occurrences — what the trial executor interprets.
  [[nodiscard]] std::vector<Event> expanded_events() const;

  [[nodiscard]] bool needs_hosts() const;
};

/// Serialize to the JSON spec format (times in milliseconds).
[[nodiscard]] Json to_spec_json(const Scenario& s);

/// Parse a JSON spec document. Unknown keys are rejected so typos in spec
/// files fail loudly; missing keys take the Scenario defaults. Throws
/// std::runtime_error / std::invalid_argument on malformed specs.
[[nodiscard]] Scenario parse_spec(const std::string& text);
[[nodiscard]] Scenario parse_spec_json(const Json& doc);

}  // namespace ren::scenario

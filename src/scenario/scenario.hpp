// The declarative scenario model: a timeline of timed fault/traffic/
// measurement events plus the parameter axes a campaign sweeps over — the
// built-in topology x controller-count x seed grid composed with any number
// of generic config axes (kappa, task_delay_ms, link_loss, theta; see
// sim::axis_names()). Scenarios come from three places: the C++ builder API
// below, the built-in library (scenario/library.hpp), and JSON spec files
// (parse_spec / to_spec_json round-trip, see docs/scenarios.md for the spec
// reference).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "util/types.hpp"

namespace ren::scenario {

enum class EventKind {
  KillController,   ///< fail-stop `count` random controllers (>=1 survives)
  KillSwitches,     ///< fail-stop `count` connectivity-preserving switches
  FailLinks,        ///< permanently fail `count` random links
  RestoreLinks,     ///< restore every link failed so far
  RestartNodes,     ///< revive every node killed so far (+ their links)
  CorruptAll,       ///< transient-fault storm over all live state
  Freeze,           ///< freeze the controllers' do-forever loops
  Unfreeze,         ///< resume the controllers
  StartTraffic,     ///< open a traffic window: start the host-pair TCP flow
  StopTraffic,      ///< close the open traffic window (stop the sender)
  FailPathLink,     ///< fail a link on the current data path (Figs. 15-20)
  ExpectConverged,  ///< checkpoint: wait for legitimacy, record the time
  StartAdversary,   ///< attach Byzantine adversaries / start a channel storm
  StopAdversary,    ///< detach every adversary, restore link fault baselines
  StartFlowChurn,   ///< start the heavy-tailed data-plane flow workload
  StopFlowChurn,    ///< stop the workload and flush active flow entries
};

[[nodiscard]] const char* to_string(EventKind k);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] EventKind event_kind_from_string(const std::string& s);

/// Sentinel for Event::count: the victim count comes from the campaign's
/// "victims" axis (sim::ExperimentConfig::victims) instead of the event —
/// multi-failure sweeps (Figs. 11/14) run as one campaign. Spec form:
/// "count": "axis".
inline constexpr int kCountAxis = -1;

/// Sentinel for Event::rate: the flow-churn arrival rate comes from the
/// campaign's "churn_rate" axis (sim::ExperimentConfig::churn_rate) instead
/// of the event. Spec form: "rate": "axis".
inline constexpr double kRateAxis = -1.0;

struct Event {
  Time at = 0;
  EventKind kind = EventKind::ExpectConverged;
  /// Kill*/FailLinks victim count, or kCountAxis to take the value from the
  /// campaign's "victims" axis per grid cell.
  int count = 1;
  bool keep_connected = true;  ///< FailLinks: honor the paper's assumption
  Time limit = sec(120);       ///< ExpectConverged wait bound
  std::string label;           ///< ExpectConverged checkpoint / traffic window
  /// FailPathLink: port-down detection window — the link blackholes traffic
  /// for this long before it goes permanently down (drives the Fig. 18
  /// retransmission spike).
  Time detection = msec(150);
  /// Periodic repetition ("every_ms" in the JSON spec): when `every` > 0 the
  /// event fires `repeat` times at `at`, `at`+every, ... — flap storms no
  /// longer unroll their timelines. ExpectConverged occurrences after the
  /// first get a "_k" label suffix so checkpoints stay distinguishable.
  Time every = 0;
  int repeat = 1;
  /// StartAdversary: "lying" | "equivocating" | "corrupting" | "babbling"
  /// attach per-node adversaries to `count` victims, "channel" sets the
  /// link-level fault probabilities below on every link instead.
  std::string mode;
  double intensity = 1.0;  ///< node modes: per-interposition probability
  /// Node modes: which node class to compromise ("controller" | "switch").
  std::string target = "controller";
  /// Channel ("channel" mode) per-link fault probabilities; a zero keeps
  /// the link's baseline value for that fault.
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  /// StartFlowChurn: mean flow arrival rate in flows/s, or kRateAxis to take
  /// the value from the campaign's "churn_rate" axis per grid cell.
  double rate = 1000.0;
  Time duration = msec(200);  ///< StartFlowChurn: mean flow lifetime
  double alpha = 1.5;  ///< StartFlowChurn: Pareto shape (heavy tail)
  double zipf = 1.0;   ///< StartFlowChurn: endpoint popularity skew
  /// StartFlowChurn: interarrival distribution ("pareto" | "poisson").
  std::string dist = "pareto";
  /// StartFlowChurn: table eviction policy applied to every switch
  /// ("priority_lru" | "reject_lowest"; switchd::EvictionPolicy).
  std::string eviction = "priority_lru";

  bool operator==(const Event&) const = default;
};

/// One generic sweep axis: a named ExperimentConfig parameter and the values
/// the campaign crosses with the topology x controllers x seed grid. Valid
/// names are sim::axis_names() (kappa, theta, task_delay_ms, link_loss,
/// victims).
struct Axis {
  std::string name;
  std::vector<double> values;

  bool operator==(const Axis&) const = default;
};

struct Scenario {
  std::string name;
  std::string description;

  // --- Campaign axes ------------------------------------------------------
  /// Topology specs resolved by topo::resolve(): paper builtin names plus
  /// "fat_tree:k=K", "random_wan:nodes=N[,m=M][,seed=S]",
  /// "isp:nodes=N,diameter=D[,seed=S]" and "file:PATH". The JSON spec also
  /// accepts object form ({"kind": "fat_tree", "k": 16}), canonicalized to
  /// these strings at parse time.
  std::vector<std::string> topologies = {"B4", "Clos", "Telstra"};
  std::vector<int> controllers = {3};
  int trials = 8;  ///< seeds base_seed .. base_seed+trials-1 per cell
  std::uint64_t base_seed = 1;
  /// Generic config axes, crossed with topologies x controllers in
  /// declaration order. Trial seeds depend only on (seed, topology,
  /// controllers, trial) — axis points deliberately reuse them, so sweeps
  /// are paired across axis values like the paper's repeated runs.
  std::vector<Axis> axes;

  bool with_hosts = false;  ///< implied by any StartTraffic event
  /// Calibrate per-topology link latency so the host-to-host RTT lands near
  /// 16 ms (the Section 6.4.3 throughput setup: ~525 Mbit/s steady state
  /// with a 1 MiB receive window on 1000 Mbit/s links).
  bool calibrate_rtt = false;
  /// Per-trial event budget (0 = unlimited): convergence checkpoints give
  /// up once the simulator has executed this many events (Fig. 7).
  std::uint64_t max_events = 0;
  std::vector<Event> events;

  bool operator==(const Scenario&) const = default;

  // --- Builder API (each returns *this for chaining) ----------------------
  Scenario& expect_converged(Time at, std::string label,
                             Time limit = sec(120));
  Scenario& kill_controller(Time at, int count = 1);
  Scenario& kill_switches(Time at, int count = 1);
  Scenario& fail_links(Time at, int count = 1, bool keep_connected = true);
  Scenario& restore_links(Time at);
  Scenario& restart_nodes(Time at);
  Scenario& corrupt_all(Time at);
  Scenario& freeze(Time at);
  Scenario& unfreeze(Time at);
  /// Open the trial's traffic window (one per trial — the hosts' TCP
  /// endpoints are single-flow). The label names the window in the campaign
  /// report ("traffic" when empty); the flow starts at `at` (the data flow
  /// is registered at build time so its rules install during bootstrap).
  Scenario& start_traffic(Time at, std::string label = "");
  /// Close the open traffic window: stop the sender, record the window's
  /// per-second goodput/retransmission series and mean goodput.
  Scenario& stop_traffic(Time at);
  /// Fail a link on the current data path (blackhole for `detection`, then
  /// permanently down) — the Figs. 15-20 mid-path failure.
  Scenario& fail_path_link(Time at, Time detection = msec(150));
  /// Attach Byzantine adversaries (faults/adversary.hpp) to `count` random
  /// live nodes of `target` class ("controller" or "switch"). `mode` is one
  /// of "lying", "equivocating", "corrupting", "babbling"; `intensity` is
  /// the per-interposition tamper probability. Activates the stabilization
  /// watchdog for the trial.
  Scenario& start_adversary(Time at, std::string mode, int count = 1,
                            double intensity = 1.0,
                            std::string target = "controller");
  /// In-band channel-fault storm: set per-link fault probabilities on every
  /// link (mode "channel"). Zeros keep the baseline value per fault.
  Scenario& channel_faults(Time at, double loss, double corrupt,
                           double duplicate = 0.0, double reorder = 0.0);
  /// Detach every adversary and restore the per-link fault baselines; the
  /// watchdog records whether the system re-stabilizes afterwards.
  Scenario& stop_adversary(Time at);
  /// Start the heavy-tailed data-plane flow workload (flows/churn.hpp):
  /// `rate` flows/s (or kRateAxis to sweep the "churn_rate" axis) with mean
  /// lifetime `mean_duration`, Pareto shape `alpha`, Zipf endpoint skew
  /// `zipf`, interarrival distribution `dist` ("pareto" | "poisson") and
  /// table eviction policy `eviction` ("priority_lru" | "reject_lowest").
  /// Activates the per-switch table metrics ("table") for the trial.
  Scenario& start_flow_churn(Time at, double rate,
                             Time mean_duration = msec(200),
                             double alpha = 1.5, double zipf = 1.0,
                             std::string dist = "pareto",
                             std::string eviction = "priority_lru");
  /// Stop the flow workload and flush every active flow entry.
  Scenario& stop_flow_churn(Time at);
  /// Add a generic sweep axis (or replace the values of an existing one).
  /// Throws std::invalid_argument on unknown names, out-of-domain values,
  /// or an empty value list — axis typos fail at build time, not mid-run.
  Scenario& axis(const std::string& name, std::vector<double> values);
  /// Make the most recently added event periodic: `times` total occurrences
  /// spaced `period` apart. Throws std::logic_error without a prior event,
  /// std::invalid_argument on a non-positive period/count.
  Scenario& every(Time period, int times);

  /// Events ordered by time; ties keep declaration order (stable), which is
  /// how e.g. restart_nodes + expect_converged at the same instant compose.
  [[nodiscard]] std::vector<Event> sorted_events() const;

  /// sorted_events() with periodic entries expanded into their concrete
  /// occurrences — what the trial executor interprets.
  [[nodiscard]] std::vector<Event> expanded_events() const;

  [[nodiscard]] bool needs_hosts() const;
};

/// Serialize to the JSON spec format (times in milliseconds).
[[nodiscard]] Json to_spec_json(const Scenario& s);

/// Parse a JSON spec document. Unknown keys are rejected so typos in spec
/// files fail loudly; missing keys take the Scenario defaults. Throws
/// std::runtime_error / std::invalid_argument on malformed specs.
[[nodiscard]] Scenario parse_spec(const std::string& text);
[[nodiscard]] Scenario parse_spec_json(const Json& doc);

}  // namespace ren::scenario

#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "flows/resilient_paths.hpp"
#include "topo/source.hpp"
#include "util/log.hpp"

namespace ren::sim {

namespace {

long long integral_axis(const std::string& name, double value, long long min) {
  const double r = std::round(value);
  if (value != r || r < static_cast<double>(min)) {
    throw std::invalid_argument("axis \"" + name + "\": value must be an " +
                                "integer >= " + std::to_string(min));
  }
  return static_cast<long long>(r);
}

}  // namespace

const std::vector<std::string>& axis_names() {
  static const std::vector<std::string> names = {
      "kappa",     "theta",      "task_delay_ms",
      "link_loss", "victims",    "churn_rate",
      "table_capacity"};
  return names;
}

void apply_axis(ExperimentConfig& cfg, const std::string& name, double value) {
  if (name == "kappa") {
    cfg.kappa = static_cast<int>(integral_axis(name, value, 0));
  } else if (name == "theta") {
    cfg.theta = static_cast<int>(integral_axis(name, value, 1));
  } else if (name == "task_delay_ms") {
    if (!(value > 0)) {
      throw std::invalid_argument("axis \"task_delay_ms\": value must be > 0");
    }
    cfg.task_delay = usec(std::llround(value * 1000.0));
    // Keep the profile's 5:1 task:detect ratio with a 5 ms floor — the rule
    // the Fig. 7 harness used (both timer profiles ship the same ratio).
    cfg.detect_interval = std::max<Time>(msec(5), cfg.task_delay / 5);
  } else if (name == "link_loss") {
    if (!(value >= 0.0) || value >= 1.0) {
      throw std::invalid_argument("axis \"link_loss\": value must be in [0, 1)");
    }
    cfg.link_loss = value;
  } else if (name == "victims") {
    cfg.victims = static_cast<int>(integral_axis(name, value, 1));
  } else if (name == "churn_rate") {
    if (!(value > 0)) {
      throw std::invalid_argument("axis \"churn_rate\": value must be > 0");
    }
    cfg.churn_rate = value;
  } else if (name == "table_capacity") {
    cfg.max_rules =
        static_cast<std::size_t>(integral_axis(name, value, 1));
  } else {
    std::string known;
    for (const auto& n : axis_names()) known += " " + n;
    throw std::invalid_argument("unknown axis \"" + name + "\"; known:" + known);
  }
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      topo_(topo::resolve(config_.topology)),
      sim_(config_.seed),
      fault_rng_(config_.seed ^ 0xfa17fa17ULL) {
  build();
}

void Experiment::build() {
  const int n_switches = topo_.switch_graph.n();
  const int n_controllers = config_.controllers;

  std::size_t max_replies = config_.max_replies;
  if (max_replies == 0) {
    max_replies =
        2 * static_cast<std::size_t>(n_switches + n_controllers) + 4;
  }

  // Switches: ids 0..n_switches-1 (same ids as the topology graph).
  switchd::AbstractSwitch::Config sw_cfg;
  sw_cfg.max_rules = config_.max_rules;
  sw_cfg.max_managers = config_.max_managers;
  sw_cfg.tick_interval = config_.task_delay;
  sw_cfg.detect_interval = config_.detect_interval;
  sw_cfg.theta = config_.theta;
  for (int i = 0; i < n_switches; ++i) {
    switches_.push_back(
        &sim_.emplace_node<switchd::AbstractSwitch>(i, sw_cfg));
  }

  // Controllers: ids n_switches..n_switches+n_controllers-1.
  core::Controller::Config c_cfg;
  c_cfg.kappa = config_.kappa;
  c_cfg.task_delay = config_.task_delay;
  c_cfg.detect_interval = config_.detect_interval;
  c_cfg.theta = config_.theta;
  c_cfg.max_replies = max_replies;
  c_cfg.memory_adaptive = config_.memory_adaptive;
  c_cfg.rule_retention = config_.rule_retention;
  c_cfg.cache_views = config_.cache_views;
  c_cfg.paranoid_views = config_.views_paranoid;
  c_cfg.plan_batches = config_.plan_batches;
  c_cfg.paranoid_batches = config_.batches_paranoid;
  for (int k = 0; k < n_controllers; ++k) {
    controllers_.push_back(&sim_.emplace_node<core::Controller>(
        static_cast<NodeId>(n_switches + k), c_cfg));
  }

  // Physical links: the switch fabric.
  net::LinkParams lp;
  lp.latency = config_.link_latency;
  lp.bandwidth_bps = config_.link_bandwidth_bps;
  lp.max_queue_delay = config_.link_max_queue_delay;
  lp.faults.loss = config_.link_loss;
  lp.faults.duplicate = config_.link_duplicate;
  lp.faults.reorder = config_.link_reorder;
  lp.faults.reorder_delay_max = 2 * config_.link_latency;
  lp.faults.corrupt = config_.link_corrupt;
  for (int u = 0; u < n_switches; ++u) {
    for (int v : topo_.switch_graph.neighbors(u)) {
      if (u < v) sim_.add_link(u, v, lp);
    }
  }

  // Attach each controller to kappa+1 distinct switches. Deterministic per
  // (seed, controller index) so that growing the controller count (Fig. 6)
  // does not move earlier controllers around.
  for (int k = 0; k < n_controllers; ++k) {
    Rng attach_rng(config_.seed * 0x9e3779b97f4a7c15ULL +
                   static_cast<std::uint64_t>(k) + 1);
    std::vector<int> candidates(static_cast<std::size_t>(n_switches));
    for (int i = 0; i < n_switches; ++i) candidates[static_cast<std::size_t>(i)] = i;
    attach_rng.shuffle(candidates);
    const int attach_count =
        std::min(config_.kappa + 1, n_switches);
    for (int a = 0; a < attach_count; ++a) {
      sim_.add_link(controllers_[static_cast<std::size_t>(k)]->id(),
                    candidates[static_cast<std::size_t>(a)], lp);
    }
  }

  // Optional host pair at maximum switch-graph distance.
  if (config_.with_hosts) {
    int best_a = 0, best_b = 0, best_d = -1;
    for (int s = 0; s < n_switches; ++s) {
      const auto dist = topo_.switch_graph.bfs_dist(s);
      for (int t = 0; t < n_switches; ++t) {
        if (dist[static_cast<std::size_t>(t)] > best_d) {
          best_d = dist[static_cast<std::size_t>(t)];
          best_a = s;
          best_b = t;
        }
      }
    }
    const auto ha = static_cast<NodeId>(n_switches + n_controllers);
    const auto hb = static_cast<NodeId>(n_switches + n_controllers + 1);
    host_a_ = &sim_.emplace_node<tcp::Host>(ha, best_a);
    host_b_ = &sim_.emplace_node<tcp::Host>(hb, best_b);
    sim_.add_link(ha, best_a, lp);
    sim_.add_link(hb, best_b, lp);
  }

  // Start every node (schedules the do-forever and discovery timers).
  for (std::size_t i = 0; i < sim_.node_count(); ++i) {
    sim_.node(static_cast<NodeId>(i)).start();
  }

  if (config_.sim_threads != 1) sim_.configure_parallel(config_.sim_threads);

  core::LegitimacyMonitor::Config m_cfg;
  m_cfg.kappa = config_.kappa;
  m_cfg.check_rule_walk = config_.check_rule_walk;
  m_cfg.incremental = config_.monitor_incremental;
  m_cfg.paranoid = config_.monitor_paranoid;
  monitor_ = std::make_unique<core::LegitimacyMonitor>(sim_, controllers_,
                                                       switches_, m_cfg);
}

faults::ControlPlane Experiment::control_plane() {
  faults::ControlPlane cp;
  cp.sim = &sim_;
  cp.controllers = controllers_;
  cp.switches = switches_;
  if (host_a_ != nullptr) cp.protected_switches.push_back(host_a_->attach());
  if (host_b_ != nullptr) cp.protected_switches.push_back(host_b_->attach());
  return cp;
}

Experiment::ConvergenceResult Experiment::run_until_legitimate(Time limit) {
  ConvergenceResult result;
  const Time t0 = sim_.now();
  const auto& counters = sim_.counters();

  std::vector<std::uint64_t> iter0, msg0, cmd0;
  for (const auto* c : controllers_) {
    const auto idx = static_cast<std::size_t>(c->id());
    iter0.push_back(counters.iterations[idx]);
    msg0.push_back(counters.ctrl_messages_sent[idx]);
    cmd0.push_back(counters.ctrl_commands_sent[idx]);
  }

  // Adaptive sampling: instead of blindly checking every monitor_interval,
  // advance the simulation in fine steps and consult the monitor as soon as
  // some layer's change epoch moved — convergence is timestamped at finer
  // resolution and quiet stretches cost one cheap epoch read per step. The
  // old fixed interval remains the ceiling between checks, so even a
  // (hypothetical) untracked mutation is picked up at the seed's rate.
  const Time fine_step =
      std::max<Time>(Time{1}, config_.monitor_interval / 8);
  const Time deadline = t0 + limit;
  std::uint64_t checked_epoch = monitor_->stack_epoch() - 1;  // force check
  while (sim_.now() < deadline) {
    const Time ceiling = sim_.now() + config_.monitor_interval;
    if (config_.adaptive_monitor) {
      while (sim_.now() < ceiling &&
             monitor_->stack_epoch() == checked_epoch) {
        // now() only advances by executing events — aim each step at the
        // next event when the fine window is quiet, else this loop spins.
        const Time next = sim_.next_event_time();
        if (next > deadline) break;  // nothing can happen before the deadline
        if (next >= ceiling) {
          sim_.run_until(next);  // quiet gap: jump to the next activity
          break;
        }
        sim_.run_until(std::min(ceiling, std::max(next, sim_.now() + fine_step)));
      }
    } else {
      sim_.run_until(ceiling);
    }
    const auto status = monitor_->check();
    checked_epoch = monitor_->stack_epoch();
    result.last_reason = status.reason;
    if (status.legitimate) {
      result.converged = true;
      break;
    }
    // No event before the deadline means no epoch can move and the verdict
    // cannot change (covers a fully drained queue, kTimeNever): stop now
    // instead of spinning the wall clock on a frozen simulated clock.
    if (sim_.next_event_time() > deadline) break;
    // Event budget exhausted (Fig. 7's congestion ceiling): report the cap.
    if (config_.max_events > 0 && sim_.events_executed() >= config_.max_events) {
      result.last_reason = "event budget exhausted";
      break;
    }
  }
  result.seconds = to_seconds(sim_.now() - t0);
  for (std::size_t k = 0; k < controllers_.size(); ++k) {
    const auto idx = static_cast<std::size_t>(controllers_[k]->id());
    result.iterations.push_back(counters.iterations[idx] - iter0[k]);
    result.messages.push_back(counters.ctrl_messages_sent[idx] - msg0[k]);
    result.commands.push_back(counters.ctrl_commands_sent[idx] - cmd0[k]);
  }
  return result;
}

std::vector<NodeId> Experiment::data_path_between(tcp::Host* from,
                                                  tcp::Host* to) {
  if (from == nullptr || to == nullptr) return {};
  std::map<NodeId, switchd::AbstractSwitch*> by_id;
  for (auto* s : switches_) {
    if (s->alive()) by_id[s->id()] = s;
  }
  auto next_hop = [&](NodeId at, NodeId src,
                      NodeId dst) -> std::optional<NodeId> {
    auto it = by_id.find(at);
    if (it == by_id.end()) return std::nullopt;
    for (const auto& cand : it->second->rule_table().candidates(src, dst)) {
      if (sim_.network().link_operational(at, cand.fwd)) return cand.fwd;
    }
    if (sim_.network().link_operational(at, dst)) return dst;
    return std::nullopt;
  };
  auto link_up = [&](NodeId a, NodeId b) {
    return sim_.network().link_operational(a, b);
  };
  const auto walk =
      flows::rule_walk(from->id(), to->id(), {from->attach()}, next_hop,
                       link_up, 4 * static_cast<int>(sim_.node_count()));
  return walk.delivered ? walk.path : std::vector<NodeId>{};
}

std::vector<NodeId> Experiment::current_data_path() {
  return data_path_between(host_a_, host_b_);
}

std::pair<NodeId, NodeId> Experiment::pick_failover_link(
    const std::vector<NodeId>& path) {
  // Candidate edges: switch-switch links on the path (skip host attach
  // edges at both ends). The paper chooses a link "such that it enables a
  // backup path between the hosts": prefer, from the middle outward, a link
  // whose failure the installed fast-failover rules survive locally (the
  // data path stays walkable without any controller recomputation); any
  // connectivity-preserving link is the fallback.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 1; i + 2 < path.size(); ++i) {
    edges.emplace_back(path[i], path[i + 1]);
  }
  if (edges.empty()) return {kNoNode, kNoNode};
  std::vector<std::size_t> order;
  const std::size_t mid = edges.size() / 2;
  for (std::size_t off = 0; off < edges.size(); ++off) {
    if (mid >= off) order.push_back(mid - off);
    if (off > 0 && mid + off < edges.size()) order.push_back(mid + off);
  }
  auto cp = control_plane();
  auto keeps_connected = [&](NodeId a, NodeId b) {
    flows::TopoView probe;
    const flows::TopoView current = faults::control_topology(cp);
    for (const auto& [n, nbrs] : current.adj()) {
      probe.add_node(n);
      for (NodeId v : nbrs) {
        if ((n == a && v == b) || (n == b && v == a)) continue;
        probe.add_edge(n, v);
      }
    }
    return probe.node_count() > 0 &&
           probe.reachable_set(probe.adj().begin()->first).size() ==
               probe.node_count();
  };
  auto survives_locally = [&](NodeId a, NodeId b) {
    net::Link* l = sim_.network().find_link(a, b);
    if (l == nullptr) return false;
    const net::LinkState prior = l->state();
    l->set_state(net::LinkState::TransientDown);
    // Both directions must survive: data forward, acks backward.
    const bool ok = !data_path_between(host_a_, host_b_).empty() &&
                    !data_path_between(host_b_, host_a_).empty();
    l->set_state(prior);
    return ok;
  };
  std::pair<NodeId, NodeId> fallback{kNoNode, kNoNode};
  for (std::size_t idx : order) {
    const auto [a, b] = edges[idx];
    if (!keeps_connected(a, b)) continue;
    if (survives_locally(a, b)) return {a, b};
    if (fallback.first == kNoNode) fallback = {a, b};
  }
  return fallback;
}

core::Controller* Experiment::register_default_data_flow(
    core::Controller* owner) {
  if (host_a_ == nullptr || host_b_ == nullptr) {
    throw std::logic_error(
        "register_default_data_flow requires with_hosts=true");
  }
  if (owner == nullptr) {
    for (auto* c : controllers_) {
      if (c->alive()) {
        owner = c;
        break;
      }
    }
  }
  if (owner == nullptr) {
    throw std::logic_error("register_default_data_flow: no live controller");
  }
  core::Controller::DataFlowSpec spec;
  spec.host_a = host_a_->id();
  spec.attach_a = host_a_->attach();
  spec.host_b = host_b_->id();
  spec.attach_b = host_b_->attach();
  owner->register_data_flow(spec);
  return owner;
}

std::pair<NodeId, NodeId> Experiment::fail_data_path_link(
    Time detection_delay) {
  const auto link = pick_failover_link(current_data_path());
  if (link.first == kNoNode) return link;
  // Blackhole first (port-down detection window), then hard failure.
  sim_.set_link_state(link.first, link.second, net::LinkState::Blackhole);
  sim_.schedule(detection_delay, [this, link] {
    sim_.set_link_state(link.first, link.second, net::LinkState::PermanentDown);
  });
  REN_LOG(Info, "t=%.3fs failed link %d-%d", to_seconds(sim_.now()),
          link.first, link.second);
  return link;
}

Experiment::ThroughputResult Experiment::run_throughput(
    const ThroughputRun& run) {
  ThroughputResult result;
  if (host_a_ == nullptr || host_b_ == nullptr) {
    throw std::logic_error("run_throughput requires with_hosts=true");
  }

  // 1. Bootstrap the control plane.
  const auto boot = run_until_legitimate(sec(300));
  if (!boot.converged) return result;

  // 2. Provision the host<->host flow; wait until the rules are walkable
  //    end-to-end.
  register_default_data_flow();
  const Time install_deadline = sim_.now() + sec(30);
  while (sim_.now() < install_deadline && current_data_path().empty()) {
    sim_.run_until(sim_.now() + config_.task_delay);
  }
  result.primary_path = current_data_path();
  if (result.primary_path.empty()) return result;

  // 3. Start the TCP flow.
  tcp::FlowStats stats(sim_.now());
  host_b_->make_receiver(host_a_->id(), run.tcp, &stats);
  auto& sender = host_a_->make_sender(host_b_->id(), run.tcp, &stats);
  const Time t0 = sim_.now();
  sender.start(t0);

  // 4. Schedule the mid-path link failure (freezing controllers first in
  //    the no-recovery variant of Fig. 16).
  sim_.schedule_at(t0 + run.fail_at, [this, &run, &result] {
    if (!run.with_recovery) {
      for (auto* c : controllers_) c->set_frozen(true);
    }
    result.failed_link = fail_data_path_link(run.detection_delay);
  });

  // 5. Run the measurement window and collect the per-second series.
  sim_.run_until(t0 + run.duration);
  sender.stop();
  for (auto* c : controllers_) c->set_frozen(false);

  const int seconds = static_cast<int>(run.duration / sec(1));
  result.mbits = stats.mbits_series(seconds);
  result.retx_pct = stats.retransmission_pct(seconds);
  result.bad_pct = stats.bad_tcp_pct(seconds);
  result.ooo_pct = stats.out_of_order_pct(seconds);
  result.ok = true;
  return result;
}

}  // namespace ren::sim

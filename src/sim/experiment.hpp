// The experiment harness: builds a complete Renaissance deployment (switch
// fabric + attached controllers + optional host pair), drives it to a
// legitimate state, injects faults, and measures the quantities the paper's
// evaluation reports (bootstrap/recovery time, message overhead, TCP
// throughput around a failover).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "core/legitimacy.hpp"
#include "faults/injector.hpp"
#include "net/simulator.hpp"
#include "switchd/abstract_switch.hpp"
#include "tcp/host.hpp"
#include "topo/topologies.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::sim {

struct ExperimentConfig {
  std::string topology = "B4";  ///< any topo::resolve() spec: a paper name
                                ///< (B4, Clos, ...), "fat_tree:k=16",
                                ///< "random_wan:nodes=1024", "file:PATH", ...
  int controllers = 3;
  int kappa = 2;
  /// Victim count consumed by scenario events that declare "count": "axis"
  /// (how many controllers/switches/links one injection hits). 0 = unset;
  /// such events throw when no victims axis point is in effect.
  int victims = 0;
  /// Flow-churn arrival rate (flows/s) consumed by start_flow_churn events
  /// that declare "rate": "axis". 0 = unset; such events throw when no
  /// churn_rate axis point is in effect.
  double churn_rate = 0;
  Time task_delay = msec(500);        ///< paper Section 6.3 default
  Time detect_interval = msec(100);
  int theta = 10;                     ///< 10 small nets, 30 large (paper)
  int rule_retention = 3;             ///< 3 = the paper's evaluation variant
  bool memory_adaptive = true;        ///< false = Section 8.1 variant
  std::uint64_t seed = 1;

  Time link_latency = msec(1);
  double link_bandwidth_bps = 1e9;    ///< paper: 1000 Mbit/s
  Time link_max_queue_delay = msec(50);
  double link_loss = 0.0;
  double link_duplicate = 0.0;
  double link_reorder = 0.0;
  double link_corrupt = 0.0;          ///< payload corruption probability

  Time monitor_interval = msec(250);  ///< legitimacy sampling ceiling
  /// Epoch-gated adaptive sampling: between checks the harness advances in
  /// fine steps and consults the monitor as soon as some change epoch moved,
  /// falling back to monitor_interval as the ceiling between checks.
  bool adaptive_monitor = true;
  bool monitor_incremental = true;    ///< epoch-gated incremental monitor
  /// Differential-test mode: shadow every incremental verdict with a full
  /// check and throw on divergence (slow; tests/CI only).
  bool monitor_paranoid = false;
  bool cache_views = true;  ///< per-tick controller view cache (PR 3)
  /// Differential-test mode: shadow every cached controller view with a
  /// from-scratch build and throw on divergence (slow; tests/CI only).
  bool views_paranoid = false;
  /// Per-peer batch planning + shared immutable payloads (PR 4); false =
  /// rebuild every outbound CommandBatch from scratch per tick (baseline).
  bool plan_batches = true;
  /// Differential-test mode: shadow every planned batch with a from-scratch
  /// build and throw unless byte-equal (slow; tests/CI only).
  bool batches_paranoid = false;
  std::size_t max_rules = 1u << 20;
  std::size_t max_replies = 0;        ///< 0 = auto: 2(N_C+N_S)+4
  std::size_t max_managers = 64;
  /// Simulation shards (worker threads) for the epoch-lockstep parallel
  /// kernel; 1 = serial. Outcomes are bit-identical at any value.
  int sim_threads = 1;
  bool with_hosts = false;            ///< attach a host pair at max distance
  bool check_rule_walk = true;        ///< monitor strictness
  /// Event budget: run_until_legitimate additionally gives up once the
  /// simulator has executed this many events in total (0 = unlimited). The
  /// Fig. 7 sweep needs it — at tiny task delays a non-converging run
  /// generates enormous event counts, and exhausting the budget *is* the
  /// congestion ceiling the paper plots.
  std::uint64_t max_events = 0;
};

// --- Scenario axes ------------------------------------------------------------
// The generic campaign axes a scenario can sweep (scenario::Scenario::axes).
// This is the single source of truth for axis names and their mapping onto
// ExperimentConfig; the scenario spec parser validates against it so unknown
// axes fail at parse time, and the campaign runner applies it per grid cell.
//
//   kappa          resilience parameter (integer >= 0)
//   theta          failure-detector threshold (integer >= 1)
//   task_delay_ms  do-forever pause; also rescales the discovery interval to
//                  keep the profile's 5:1 task:detect ratio (5 ms floor),
//                  matching the Fig. 7 harness
//   link_loss      per-packet loss probability on every link, in [0, 1)
//   victims        per-injection victim count for events with "count": "axis"
//                  (integer >= 1)
//   churn_rate     flow-churn arrival rate in flows/s for start_flow_churn
//                  events with "rate": "axis" (> 0)
//   table_capacity per-switch rule-table capacity (max_rules; integer >= 1)

/// Names accepted by apply_axis, in presentation order.
[[nodiscard]] const std::vector<std::string>& axis_names();

/// Apply one axis point to a config. Throws std::invalid_argument on an
/// unknown axis name or an out-of-domain value (also used for validation:
/// callers may apply to a scratch config at parse time).
void apply_axis(ExperimentConfig& cfg, const std::string& name, double value);

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // --- Accessors -----------------------------------------------------------
  [[nodiscard]] net::Simulator& sim() { return sim_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] std::size_t controller_count() const {
    return controllers_.size();
  }
  [[nodiscard]] core::Controller& controller(std::size_t k) {
    return *controllers_[k];
  }
  [[nodiscard]] const std::vector<core::Controller*>& controllers() {
    return controllers_;
  }
  [[nodiscard]] const std::vector<switchd::AbstractSwitch*>& switches() {
    return switches_;
  }
  [[nodiscard]] core::LegitimacyMonitor& monitor() { return *monitor_; }
  [[nodiscard]] faults::ControlPlane control_plane();
  [[nodiscard]] Rng& fault_rng() { return fault_rng_; }

  [[nodiscard]] tcp::Host* host_a() { return host_a_; }
  [[nodiscard]] tcp::Host* host_b() { return host_b_; }

  // --- Convergence measurement ----------------------------------------------
  struct ConvergenceResult {
    bool converged = false;
    double seconds = 0;  ///< from call time to the first legitimate sample
    /// Per-controller deltas over the measured window:
    std::vector<std::uint64_t> iterations;
    std::vector<std::uint64_t> messages;
    std::vector<std::uint64_t> commands;
    std::string last_reason;  ///< monitor's last failure reason (diagnostics)
  };

  /// Run until the monitor reports a legitimate state (sampled every
  /// monitor_interval), or until `limit` simulated time elapses.
  ConvergenceResult run_until_legitimate(Time limit);

  // --- Throughput experiment (Figs. 15-20) -----------------------------------
  struct ThroughputRun {
    Time duration = sec(30);
    Time fail_at = sec(10);
    /// Port-down detection window: the failed link blackholes traffic for
    /// this long before the data plane fails over (models OVS carrier/BFD
    /// detection latency; drives the Fig. 18 retransmission spike).
    Time detection_delay = msec(150);
    bool with_recovery = true;  ///< false = Fig. 16 (controllers frozen)
    tcp::RenoConfig tcp;
  };
  struct ThroughputResult {
    bool ok = false;
    std::vector<double> mbits;     ///< per-second series (Fig. 15/16)
    std::vector<double> retx_pct;  ///< Fig. 18
    std::vector<double> bad_pct;   ///< Fig. 19
    std::vector<double> ooo_pct;   ///< Fig. 20
    std::vector<NodeId> primary_path;
    std::pair<NodeId, NodeId> failed_link{kNoNode, kNoNode};
  };
  ThroughputResult run_throughput(const ThroughputRun& run);

  /// Register the host_a <-> host_b data flow on `owner` (default: the
  /// first *live* controller). Returns the owning controller. Throws
  /// std::logic_error without hosts or without a live controller. The one
  /// place the "who owns the default host-pair flow" policy lives — shared
  /// by run_throughput and the scenario engine.
  core::Controller* register_default_data_flow(
      core::Controller* owner = nullptr);

  /// Fail a link on the current host_a -> host_b data path (preferring, from
  /// the middle outward, one the installed fast-failover rules survive
  /// locally): blackhole now, permanent failure after `detection_delay` (the
  /// port-down detection window). Returns the failed link, or
  /// {kNoNode, kNoNode} when the path is empty or has no candidate edge.
  /// Shared by run_throughput and the scenario engine's fail_path_link event.
  std::pair<NodeId, NodeId> fail_data_path_link(Time detection_delay);

  /// The data path host_a -> host_b implied by the currently installed rules.
  [[nodiscard]] std::vector<NodeId> current_data_path();

 private:
  void build();
  [[nodiscard]] std::vector<NodeId> data_path_between(tcp::Host* from,
                                                      tcp::Host* to);
  [[nodiscard]] std::pair<NodeId, NodeId> pick_failover_link(
      const std::vector<NodeId>& path);

  ExperimentConfig config_;
  topo::Topology topo_;
  net::Simulator sim_;
  Rng fault_rng_;
  std::vector<core::Controller*> controllers_;
  std::vector<switchd::AbstractSwitch*> switches_;
  std::unique_ptr<core::LegitimacyMonitor> monitor_;
  tcp::Host* host_a_ = nullptr;
  tcp::Host* host_b_ = nullptr;
};

}  // namespace ren::sim

#include "switchd/abstract_switch.hpp"

#include <algorithm>

#include "faults/adversary.hpp"
#include "util/log.hpp"

namespace ren::switchd {

AbstractSwitch::AbstractSwitch(NodeId id, Config config)
    : net::Node(id, NodeKind::Switch),
      config_(config),
      rules_(RuleTable::Config{config.max_rules}),
      detector_(id, detect::ThetaDetector::Config{config.theta}),
      endpoint_(
          id, transport::Config{},
          transport::Endpoint::Hooks{
              [this](NodeId peer, proto::PayloadPtr f, std::uint32_t bytes) {
                route_frame(peer, std::move(f), bytes);
              },
              [this](NodeId peer, proto::MessagePtr m) {
                apply_batch(peer, m);  // replies are never consumed here
              },
              [this](NodeId) {
                ++sim_->counters().ctrl_messages_sent[static_cast<std::size_t>(
                    this->id())];
              }}) {}

void AbstractSwitch::start() {
  // Stagger timers across nodes so synchronized bursts do not mask queueing.
  // Drawn from the node's own stream: the offsets depend only on (seed, id),
  // never on the order nodes happen to start in.
  const Time tick_off = static_cast<Time>(sim_->node_rng(id()).next_below(
      static_cast<std::uint64_t>(config_.tick_interval)));
  const Time det_off = static_cast<Time>(sim_->node_rng(id()).next_below(
      static_cast<std::uint64_t>(config_.detect_interval)));
  sim_->schedule_for(id(), tick_off, [this] { control_tick(); });
  sim_->schedule_for(id(), det_off, [this] { detect_tick(); });
}

void AbstractSwitch::control_tick() {
  endpoint_.tick();
  sim_->schedule_for(id(), config_.tick_interval, [this] { control_tick(); });
}

void AbstractSwitch::detect_tick() {
  // Candidates are the attached ports; liveness is learned from replies only.
  std::vector<NodeId> ports;
  for (const auto& e : sim_->network().adjacency(id())) {
    ports.push_back(e.neighbor);
  }
  detector_.set_candidates(ports);
  detector_.tick([this](NodeId nbr, proto::Probe p) {
    sim_->send(id(), nbr, net::make_packet(id(), nbr, proto::Payload{p}));
  });
  sim_->schedule_for(id(), config_.detect_interval, [this] { detect_tick(); });
}

void AbstractSwitch::on_packet(NodeId from_neighbor, const net::Packet& packet) {
  if (packet.dst != id()) {
    forward_packet(packet);
    return;
  }
  // Control module: dispatch by payload kind.
  if (const auto* frame = std::get_if<proto::Frame>(&*packet.payload)) {
    last_port_[packet.src] = from_neighbor;
    endpoint_.on_frame(packet.src, *frame);
  } else if (const auto* probe = std::get_if<proto::Probe>(&*packet.payload)) {
    sim_->send(id(), from_neighbor,
               net::make_packet(id(), from_neighbor,
                                proto::Payload{proto::ProbeReply{probe->round}}));
  } else if (std::get_if<proto::ProbeReply>(&*packet.payload) != nullptr) {
    detector_.on_probe_reply(from_neighbor);
  }
  // Data segments addressed to a switch are silently ignored.
}

void AbstractSwitch::forward_packet(const net::Packet& packet) {
  if (packet.ttl <= 0) {
    ++sim_->counters().drops_ttl;
    return;
  }
  net::Packet out = packet;
  out.ttl -= 1;
  for (const Candidate& c : rules_.lookup(packet.src, packet.dst)) {
    if (sim_->network().link_operational(id(), c.fwd)) {
      sim_->send(id(), c.fwd, out);
      return;
    }
  }
  // Query-by-neighbor: hand packets addressed to a direct neighbor over the
  // port facing it even without an installed rule (Section 2.1.1).
  if (sim_->network().link_operational(id(), packet.dst)) {
    sim_->send(id(), packet.dst, out);
    return;
  }
  ++sim_->counters().drops_no_rule;
}

void AbstractSwitch::route_frame(NodeId peer, proto::PayloadPtr frame,
                                 std::uint32_t bytes) {
  // Byzantine interposition on the outbound frame path (see Controller's
  // route_frame): corrupt the frame and/or replay a remembered one.
  if (adversary_ != nullptr) {
    if (proto::PayloadPtr forged = adversary_->corrupt_frame(*frame)) {
      frame = std::move(forged);
    }
    if (auto replay = adversary_->note_and_babble(peer, frame, bytes)) {
      emit_frame(replay->peer, std::move(replay->frame), replay->bytes);
    }
  }
  emit_frame(peer, std::move(frame), bytes);
}

void AbstractSwitch::emit_frame(NodeId peer, proto::PayloadPtr frame,
                                std::uint32_t bytes) {
  net::Packet pkt = net::make_packet(id(), peer, std::move(frame), bytes);
  auto& counters = sim_->counters();
  counters.control_bytes_sent += pkt.bytes;
  counters.max_control_message_bytes =
      std::max<std::uint64_t>(counters.max_control_message_bytes, pkt.bytes);

  // 1. Direct hand-over when the peer is adjacent.
  if (sim_->network().link_operational(id(), peer)) {
    sim_->send(id(), peer, pkt);
    return;
  }
  // 2. Installed reverse rules (src=*, dest=peer).
  for (const Candidate& c : rules_.lookup(id(), peer)) {
    if (sim_->network().link_operational(id(), c.fwd)) {
      sim_->send(id(), c.fwd, pkt);
      return;
    }
  }
  // 3. Fall back to the port the peer was last heard on (reverse-path hint;
  //    covers the bootstrap window before reverse rules are installed).
  auto it = last_port_.find(peer);
  if (it != last_port_.end() &&
      sim_->network().link_operational(id(), it->second)) {
    sim_->send(id(), it->second, pkt);
    return;
  }
  ++sim_->counters().drops_no_rule;
}

void AbstractSwitch::apply_batch(NodeId from, const proto::MessagePtr& message) {
  const auto* batch = std::get_if<proto::CommandBatch>(&*message);
  if (batch == nullptr) return;
  for (const proto::Command& cmd : batch->commands) {
    std::visit(
        [&](const auto& c) {
          using T = std::decay_t<decltype(c)>;
          if constexpr (std::is_same_v<T, proto::NewRoundCmd>) {
            rules_.new_round(from, c.tag, c.retention);
          } else if constexpr (std::is_same_v<T, proto::DelMngrCmd>) {
            del_manager(c.k);
          } else if constexpr (std::is_same_v<T, proto::AddMngrCmd>) {
            add_manager(c.k);
          } else if constexpr (std::is_same_v<T, proto::DelAllRulesCmd>) {
            rules_.del_all(c.k);
          } else if constexpr (std::is_same_v<T, proto::UpdateRuleCmd>) {
            rules_.update_rules(from, c.rules, c.tag);
          } else if constexpr (std::is_same_v<T, proto::QueryCmd>) {
            proto::QueryReply reply;
            reply.id = id();
            reply.nc = detector_.live();
            reply.managers = managers();
            reply.rule_owners = rules_.owners_summary();
            reply.rules_wire_bytes = rules_.rules_wire_bytes();
            const auto meta = rules_.meta_tag(from);
            reply.tag_for_querier = meta.value_or(c.tag);
            reply.from_controller = false;
            // Byzantine interposition: a compromised switch lies about its
            // configuration or equivocates its round tag per querier.
            if (adversary_ != nullptr) adversary_->tamper_reply(from, reply);
            endpoint_.submit(from, proto::Message{std::move(reply)});
          }
        },
        cmd);
  }
}

void AbstractSwitch::add_manager(NodeId k) {
  auto it = managers_.find(k);
  if (it != managers_.end()) {
    it->second = ++manager_touch_;  // LRU refresh only, set unchanged
    return;
  }
  if (managers_.size() >= config_.max_managers) {
    // Evict the least recently added/accessed manager (Section 2.1.1).
    auto victim = managers_.begin();
    for (auto m = managers_.begin(); m != managers_.end(); ++m) {
      if (m->second < victim->second) victim = m;
    }
    managers_.erase(victim);
    ++manager_evictions_;
  }
  managers_[k] = ++manager_touch_;
  ++manager_epoch_;
}

void AbstractSwitch::del_manager(NodeId k) {
  if (managers_.erase(k) != 0) ++manager_epoch_;
}

std::vector<NodeId> AbstractSwitch::managers() const {
  std::vector<NodeId> out;
  out.reserve(managers_.size());
  for (const auto& [k, _] : managers_) out.push_back(k);
  return out;
}

void AbstractSwitch::corrupt_state(Rng& rng, NodeId node_space) {
  rules_.corrupt(rng, node_space);
  // Scramble the manager set.
  for (auto it = managers_.begin(); it != managers_.end();) {
    it = rng.chance(0.4) ? managers_.erase(it) : std::next(it);
  }
  if (rng.chance(0.5)) {
    managers_[static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(node_space)))] = ++manager_touch_;
  }
  detector_.corrupt(rng);
  endpoint_.corrupt(rng);
  if (rng.chance(0.5)) last_port_.clear();
  ++manager_epoch_;  // corruption may have touched anything
}

}  // namespace ren::switchd

// The abstract SDN switch (paper Section 2.1).
//
// Beyond match-action forwarding, the abstract switch offers exactly the
// small control surface the paper needs:
//  * configuration queries and command batches from controllers (equal-role
//    multi-controller management, bounded manager set with LRU eviction),
//  * per-controller meta (round) tags echoed in query replies,
//  * query-by-neighbor: packets addressed to a direct neighbor are handed
//    over even without an installed rule — this is what lets a controller
//    bootstrap ring-by-ring,
//  * local topology discovery via the Theta failure detector.
//
// Control traffic is in-band: a frame destined elsewhere is forwarded by the
// rule table's fast-failover candidates; frames addressed to the switch go
// to its control module.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "detect/theta_detector.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "switchd/rule_table.hpp"
#include "transport/endpoint.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::faults {
class Adversary;
}

namespace ren::switchd {

class AbstractSwitch : public net::Node {
 public:
  struct Config {
    std::size_t max_rules = 1u << 20;   ///< clogged-memory bound
    std::size_t max_managers = 64;      ///< bounded manager set
    Time tick_interval = msec(500);     ///< control-module timer (retransmits)
    Time detect_interval = msec(100);   ///< neighborhood discovery interval
    int theta = 10;                     ///< failure-detector threshold
  };

  AbstractSwitch(NodeId id, Config config);

  void start() override;
  void on_packet(NodeId from_neighbor, const net::Packet& packet) override;

  // --- Introspection (legitimacy monitor, tests) -------------------------
  [[nodiscard]] RuleTable& rule_table() { return rules_; }
  [[nodiscard]] const RuleTable& rule_table() const { return rules_; }
  [[nodiscard]] std::vector<NodeId> managers() const;
  [[nodiscard]] const detect::ThetaDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] const transport::Endpoint& endpoint() const { return endpoint_; }
  [[nodiscard]] std::uint64_t manager_evictions() const {
    return manager_evictions_;
  }
  /// Bumps whenever the manager *set* changes (insertions, deletions,
  /// evictions — LRU touch refreshes do not count).
  [[nodiscard]] std::uint64_t manager_epoch() const { return manager_epoch_; }
  /// Combined monitor-relevant change epoch of this switch: manager set +
  /// rule-table content. Monotonic; unchanged implies the monitor's verdict
  /// about this switch is unchanged (given an unchanged ground truth).
  [[nodiscard]] std::uint64_t change_epoch() const {
    return manager_epoch_ + rules_.epoch();
  }
  /// The port the given peer was last heard on (kNoNode if never).
  [[nodiscard]] NodeId last_port_of(NodeId peer) const {
    auto it = last_port_.find(peer);
    return it == last_port_.end() ? kNoNode : it->second;
  }

  /// Transient-fault hook: corrupt rules, managers, detector, transport and
  /// reply-routing state (tests / self-stabilization experiments).
  void corrupt_state(Rng& rng, NodeId node_space);

  /// Attach/detach a Byzantine adversary (faults/adversary.hpp; not owned,
  /// nullptr = benign). Interposes on outbound query replies and frames.
  /// Harness/barrier context only.
  void set_adversary(faults::Adversary* a) { adversary_ = a; }
  [[nodiscard]] faults::Adversary* adversary() const { return adversary_; }

 private:
  void control_tick();
  void detect_tick();
  /// Apply a delivered command batch. The payload is shared and immutable:
  /// commands are consumed in place and rule lists flow into the rule table
  /// by pointer, never copied.
  void apply_batch(NodeId from, const proto::MessagePtr& message);
  void add_manager(NodeId k);
  void del_manager(NodeId k);
  /// Forward a transit packet using the rule table (fast-failover order),
  /// falling back to direct hand-over when the destination is adjacent.
  void forward_packet(const net::Packet& packet);
  /// Route a locally originated frame payload toward `peer`. route_frame
  /// runs adversary interposition (corrupt/babble), emit_frame the routing.
  void route_frame(NodeId peer, proto::PayloadPtr frame, std::uint32_t bytes);
  void emit_frame(NodeId peer, proto::PayloadPtr frame, std::uint32_t bytes);

  Config config_;
  RuleTable rules_;
  std::map<NodeId, std::uint64_t> managers_;  ///< manager -> LRU stamp
  std::uint64_t manager_touch_ = 0;
  std::uint64_t manager_evictions_ = 0;
  std::uint64_t manager_epoch_ = 0;
  detect::ThetaDetector detector_;
  transport::Endpoint endpoint_;
  std::map<NodeId, NodeId> last_port_;  ///< peer -> most recent in-port
  faults::Adversary* adversary_ = nullptr;
};

}  // namespace ren::switchd

#include "switchd/rule_table.hpp"

#include <algorithm>
#include <limits>

namespace ren::switchd {

namespace {

std::uint64_t lookup_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

void RuleTable::new_round(NodeId cid, proto::Tag tag, int retention) {
  OwnerEntry& e = owners_[cid];
  e.retention = std::max(1, retention);
  if (e.recent_tags.empty() || !(e.recent_tags.front() == tag)) {
    e.recent_tags.push_front(tag);
  }
  e.touch = ++touch_counter_;
  trim_to_retention(e);
  note_mutation();
}

void RuleTable::update_rules(NodeId cid, proto::RuleListPtr rules,
                             proto::Tag tag) {
  OwnerEntry& e = owners_[cid];
  if (std::find(e.recent_tags.begin(), e.recent_tags.end(), tag) ==
      e.recent_tags.end()) {
    e.recent_tags.push_front(tag);
  }
  bool replaced = false;
  for (auto& tl : e.lists) {
    if (tl.tag == tag) {
      tl.rules = rules;
      replaced = true;
      break;
    }
  }
  if (!replaced) e.lists.push_back(TaggedList{tag, std::move(rules)});
  // Installing the current round's rules removes the oldest retained round
  // (Section 6.2: installing currTag removes beforePrevTag; the base
  // algorithm with retention 2 removes prevTag): live lists are the first
  // retention-1 round tags plus the one just written.
  const auto live_tags = static_cast<std::size_t>(
      std::max(1, e.retention - 1));
  std::erase_if(e.lists, [&](const TaggedList& tl) {
    if (tl.tag == tag) return false;
    const auto pos =
        std::find(e.recent_tags.begin(), e.recent_tags.end(), tl.tag);
    return pos == e.recent_tags.end() ||
           static_cast<std::size_t>(pos - e.recent_tags.begin()) >= live_tags;
  });
  e.touch = ++touch_counter_;
  trim_to_retention(e);
  enforce_capacity();
  note_mutation();
}

void RuleTable::del_all(NodeId cid) {
  owners_.erase(cid);
  note_mutation();
}

void RuleTable::clear() {
  owners_.clear();
  note_mutation();
}

// --- Flow store --------------------------------------------------------------

void RuleTable::note_peak() {
  const std::uint64_t occ = occupancy();
  if (occ > flow_stats_.peak_rules) flow_stats_.peak_rules = occ;
}

void RuleTable::erase_flow(std::uint64_t id,
                           std::uint64_t FlowStats::*counter) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  const FlowRule& r = it->second.rule;
  flow_order_.erase({{r.prt, it->second.stamp}, id});
  auto mi = flow_match_.find({r.dst, r.src});
  if (mi != flow_match_.end()) {
    std::erase(mi->second, id);
    if (mi->second.empty()) flow_match_.erase(mi);
  }
  lookup_cache_.erase(lookup_key(r.src, r.dst));
  flows_.erase(it);
  flow_stats_.*counter += 1;
}

std::uint64_t RuleTable::pick_victim(Priority incoming) const {
  if (flow_order_.empty()) return 0;
  if (policy_ == EvictionPolicy::RejectLowest) {
    // The incoming entry must strictly beat the lowest stored priority to
    // displace anything; the victim is that class's oldest entry.
    const auto& lowest = *flow_order_.begin();
    return lowest.first.first < incoming ? lowest.second : 0;
  }
  // PriorityLru: the least recently used entry over every priority class at
  // or below the incoming priority. The order index is (priority, stamp), so
  // each class's head is its oldest entry; classes are few (flow priorities
  // span the compiler's n_prt range), so hopping class heads is O(classes).
  std::uint64_t victim = 0;
  std::uint64_t best_stamp = 0;
  auto it = flow_order_.begin();
  while (it != flow_order_.end() && it->first.first <= incoming) {
    if (victim == 0 || it->first.second < best_stamp) {
      victim = it->second;
      best_stamp = it->first.second;
    }
    // Jump past this priority class to the next class head.
    it = flow_order_.lower_bound(
        {{it->first.first + 1, 0}, 0});
  }
  return victim;
}

bool RuleTable::install_flow(const FlowRule& r) {
  if (r.id == 0) return false;  // 0 is the "no victim" sentinel
  if (auto it = flows_.find(r.id); it != flows_.end()) {
    // Reinstall refreshes the LRU stamp; the match never changes (flow ids
    // are bound to one header for their lifetime).
    flow_order_.erase({{it->second.rule.prt, it->second.stamp}, r.id});
    it->second.rule = r;
    it->second.stamp = ++flow_stamp_;
    flow_order_.insert({{r.prt, it->second.stamp}, r.id});
    return true;
  }
  if (occupancy() >= config_.max_rules) {
    // Protected management rules alone may exceed the capacity; flows only
    // ever displace other flows.
    const std::uint64_t victim = pick_victim(r.prt);
    if (victim == 0) {
      ++flow_stats_.overflow_rejects;
      return false;
    }
    erase_flow(victim, &FlowStats::flow_evictions);
  }
  FlowEntry e;
  e.rule = r;
  e.stamp = ++flow_stamp_;
  flows_.emplace(r.id, e);
  flow_order_.insert({{r.prt, e.stamp}, r.id});
  flow_match_[{r.dst, r.src}].push_back(r.id);
  lookup_cache_.erase(lookup_key(r.src, r.dst));
  ++flow_stats_.installs;
  note_peak();
  return true;
}

bool RuleTable::remove_flow(std::uint64_t id) {
  if (flows_.find(id) == flows_.end()) return false;
  erase_flow(id, &FlowStats::removals);
  return true;
}

void RuleTable::clear_flows() {
  while (!flows_.empty()) {
    erase_flow(flows_.begin()->first, &FlowStats::removals);
  }
}

const std::vector<Candidate>& RuleTable::lookup(NodeId src, NodeId dst) {
  // Lookup-cost model (docs/ARCHITECTURE.md): one probe of the priority-
  // sorted table — ~log2 of the occupancy, the sorted-array idiom — plus a
  // unit per candidate the fast-failover scan may examine. Charged per
  // forwarding-path lookup regardless of the cache (the cache is an
  // implementation artifact, not part of the modeled hardware).
  ++flow_stats_.lookups;
  std::uint64_t probe = 1;
  for (std::size_t occ = occupancy(); occ > 1; occ >>= 1) ++probe;
  const std::vector<Candidate>& cands = candidates(src, dst);
  flow_stats_.lookup_cost += probe + cands.size();
  // Matched flow entries are "used": refresh their LRU stamps so popular
  // flows survive priority-masked LRU pressure.
  if (auto mi = flow_match_.find({dst, src}); mi != flow_match_.end()) {
    for (std::uint64_t id : mi->second) {
      auto it = flows_.find(id);
      if (it == flows_.end()) continue;
      flow_order_.erase({{it->second.rule.prt, it->second.stamp}, id});
      it->second.stamp = ++flow_stamp_;
      flow_order_.insert({{it->second.rule.prt, it->second.stamp}, id});
    }
  }
  return cands;
}

void RuleTable::trim_to_retention(OwnerEntry& e) {
  while (e.recent_tags.size() > static_cast<std::size_t>(e.retention)) {
    e.recent_tags.pop_back();
  }
  std::erase_if(e.lists, [&e](const TaggedList& tl) {
    return std::find(e.recent_tags.begin(), e.recent_tags.end(), tl.tag) ==
           e.recent_tags.end();
  });
}

std::uint64_t RuleTable::content_signature() const {
  // Owner ids, each owner's newest list and every retained list's identity —
  // everything the legitimacy monitor can observe (owners(),
  // newest_rules_of(), candidates()-driven walks). Lists are immutable, so
  // pointer identity stands in for content. Tags are deliberately NOT
  // hashed: steady-state round churn re-installs the same compiled list
  // pointer under fresh tags, which must leave the signature unchanged.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& [cid, e] : owners_) {
    mix(static_cast<std::uint64_t>(cid) + 1);
    const proto::RuleListPtr newest = newest_rules_of(cid);
    mix(reinterpret_cast<std::uint64_t>(newest.get()));
    mix(e.lists.size());
    for (const auto& tl : e.lists) {
      mix(reinterpret_cast<std::uint64_t>(tl.rules.get()));
    }
  }
  return h;
}

void RuleTable::note_mutation() {
  lookup_cache_.clear();
  const std::uint64_t sig = content_signature();
  if (sig != content_sig_) {
    content_sig_ = sig;
    ++epoch_;
  }
}

void RuleTable::enforce_capacity() {
  // Management rules are protected: when a controller install overflows the
  // table, flow entries go first (lowest priority class, oldest entry) so
  // the self-stabilization state survives data-plane pressure.
  const std::size_t owner_rules = total_rules();
  while (owner_rules + flows_.size() > config_.max_rules && !flows_.empty()) {
    erase_flow(flow_order_.begin()->second, &FlowStats::flow_evictions);
  }
  // Clogged memory: evict whole least-recently-updated owner entries until
  // the total rule count fits (Section 2.1.1 eviction policy, at the
  // granularity of our per-owner immutable lists).
  while (total_rules() > config_.max_rules && owners_.size() > 1) {
    auto victim = owners_.begin();
    for (auto it = owners_.begin(); it != owners_.end(); ++it) {
      if (it->second.touch < victim->second.touch) victim = it;
    }
    owners_.erase(victim);
    ++evictions_;
  }
}

std::optional<proto::Tag> RuleTable::meta_tag(NodeId cid) const {
  auto it = owners_.find(cid);
  if (it == owners_.end() || it->second.recent_tags.empty()) return std::nullopt;
  return it->second.recent_tags.front();
}

bool RuleTable::has_rules_of(NodeId cid) const {
  auto it = owners_.find(cid);
  if (it == owners_.end()) return false;
  for (const auto& tl : it->second.lists) {
    if (tl.rules && !tl.rules->empty()) return true;
  }
  return false;
}

std::vector<NodeId> RuleTable::owners() const {
  std::vector<NodeId> out;
  out.reserve(owners_.size());
  for (const auto& [cid, _] : owners_) out.push_back(cid);
  return out;
}

std::vector<proto::RuleOwnerSummary> RuleTable::owners_summary() const {
  std::vector<proto::RuleOwnerSummary> out;
  for (const auto& [cid, e] : owners_) {
    for (const auto& tl : e.lists) {
      proto::RuleOwnerSummary s;
      s.cid = cid;
      s.tag = tl.tag;
      s.count = tl.rules ? static_cast<std::uint32_t>(tl.rules->size()) : 0;
      out.push_back(s);
    }
    if (e.lists.empty() && !e.recent_tags.empty()) {
      // Meta rule only (newRound seen, no updateRule yet).
      out.push_back(proto::RuleOwnerSummary{cid, e.recent_tags.front(), 0});
    }
  }
  return out;
}

std::size_t RuleTable::total_rules() const {
  std::size_t n = 0;
  for (const auto& [cid, e] : owners_) {
    for (const auto& tl : e.lists) {
      if (tl.rules) n += tl.rules->size();
    }
  }
  return n;
}

std::size_t RuleTable::rules_wire_bytes() const {
  return total_rules() * proto::wire_size(proto::Rule{});
}

proto::RuleListPtr RuleTable::newest_rules_of(NodeId cid) const {
  auto it = owners_.find(cid);
  if (it == owners_.end()) return nullptr;
  const OwnerEntry& e = it->second;
  for (const proto::Tag& t : e.recent_tags) {  // front = newest
    for (const auto& tl : e.lists) {
      if (tl.tag == t && tl.rules) return tl.rules;
    }
  }
  return nullptr;
}

const std::vector<Candidate>& RuleTable::candidates(NodeId src, NodeId dst) {
  const std::uint64_t key = lookup_key(src, dst);
  auto cached = lookup_cache_.find(key);
  if (cached != lookup_cache_.end()) return cached->second;

  std::vector<Candidate> cands;
  for (const auto& [cid, e] : owners_) {
    for (const auto& tl : e.lists) {
      if (!tl.rules) continue;
      const int rank = static_cast<int>(
          std::find(e.recent_tags.begin(), e.recent_tags.end(), tl.tag) -
          e.recent_tags.begin());
      const proto::RuleList& rules = *tl.rules;
      // Lists are sorted by (dest, src, -prt): binary-search the dest range,
      // then scan it for matching src groups (exact src and wildcard src).
      auto lo = std::lower_bound(
          rules.begin(), rules.end(), dst,
          [](const proto::Rule& r, NodeId d) { return r.dest < d; });
      for (auto it = lo; it != rules.end() && it->dest == dst; ++it) {
        if (!it->matches(src, dst)) continue;
        cands.push_back(Candidate{it->fwd, it->prt, it->specificity(), rank,
                                  cid});
      }
      // Wildcard-dest rules are not produced by the compiler but may exist
      // after state corruption; include them for faithful recovery behavior.
      auto wlo = std::lower_bound(
          rules.begin(), rules.end(), kNoNode,
          [](const proto::Rule& r, NodeId d) { return r.dest < d; });
      for (auto it = wlo; it != rules.end() && it->dest == kNoNode; ++it) {
        if (!it->matches(src, dst)) continue;
        cands.push_back(Candidate{it->fwd, it->prt, it->specificity(), rank,
                                  cid});
      }
    }
  }
  // Flow-store entries are exact matches on both header fields (specificity
  // 2, current tag rank, no owning controller).
  if (auto mi = flow_match_.find({dst, src}); mi != flow_match_.end()) {
    for (std::uint64_t id : mi->second) {
      const FlowRule& r = flows_.at(id).rule;
      cands.push_back(Candidate{r.fwd, r.prt, 2, 0, kNoNode});
    }
  }
  // Round freshness first: rules of an owner's *current* round always beat
  // its older retained rounds — retained lists exist purely as failover
  // while a reconfiguration rolls out (Section 6.2), and must never
  // override fresh state (a corrupted old-tag rule could otherwise shadow
  // the repair forever). Within a round: priority first (the paper: "the
  // rule with the highest prt that matches"), specificity as tie-breaker.
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.tag_rank != b.tag_rank) return a.tag_rank < b.tag_rank;
              if (a.prt != b.prt) return a.prt > b.prt;
              if (a.specificity != b.specificity)
                return a.specificity > b.specificity;
              return a.cid < b.cid;
            });
  // Collapse duplicates (several controllers installing the same decision).
  cands.erase(std::unique(cands.begin(), cands.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.fwd == b.fwd && a.prt == b.prt &&
                                   a.specificity == b.specificity;
                          }),
              cands.end());

  // Bound the cache (flow pairs are few in practice; corruption could blow
  // it up, so clamp hard).
  if (lookup_cache_.size() > 65536) lookup_cache_.clear();
  auto [it, _] = lookup_cache_.emplace(key, std::move(cands));
  return it->second;
}

void RuleTable::corrupt(Rng& rng, NodeId node_space) {
  // Model arbitrary state corruption: delete some owners entirely, rewrite
  // some rules to random forward ports / matches, scramble tags.
  for (auto it = owners_.begin(); it != owners_.end();) {
    if (rng.chance(0.3)) {
      it = owners_.erase(it);
      continue;
    }
    OwnerEntry& e = it->second;
    for (auto& tl : e.lists) {
      if (!tl.rules) continue;
      if (rng.chance(0.5)) {
        auto mutated = std::make_shared<proto::RuleList>(*tl.rules);
        for (auto& r : *mutated) {
          if (rng.chance(0.2)) {
            r.fwd = static_cast<NodeId>(rng.next_below(
                static_cast<std::uint64_t>(node_space)));
          }
          if (rng.chance(0.1)) {
            r.dest = static_cast<NodeId>(rng.next_below(
                static_cast<std::uint64_t>(node_space)));
          }
          if (rng.chance(0.05)) r.prt = static_cast<Priority>(rng.next_below(8));
        }
        tl.rules = std::move(mutated);
      }
      if (rng.chance(0.3)) {
        tl.tag = proto::Tag{
            static_cast<NodeId>(rng.next_below(
                static_cast<std::uint64_t>(node_space))),
            static_cast<std::uint32_t>(rng.next_below(proto::kTagDomain))};
      }
    }
    ++it;
  }
  // Scramble flow-store out-ports too — but only when flows exist, so the
  // RNG draw sequence (and thus every downstream random choice) in flow-free
  // trials is identical to a build without the flow store.
  if (!flows_.empty()) {
    for (auto& [id, e] : flows_) {
      if (rng.chance(0.1)) {
        e.rule.fwd = static_cast<NodeId>(
            rng.next_below(static_cast<std::uint64_t>(node_space)));
      }
    }
  }
  note_mutation();
}

}  // namespace ren::switchd

// The abstract switch's rule storage (paper Section 2.1.1).
//
// Rules are stored per installing controller (owner) as immutable tagged
// lists: `updateRule` replaces the owner's list for the current round tag;
// `newRound` advances the owner's meta (round) tag and ages out lists whose
// tag falls outside the retention window (2 tags = Algorithm 2's
// currTag/prevTag scheme, 3 tags = the Section 6.2 evaluation variant that
// keeps beforePrevTag rules alive during reconfigurations).
//
// Memory is bounded by maxRules; on overflow the table evicts the least
// recently updated owner entry, the paper's clogged-memory policy. Lookup
// returns an ordered candidate list for a (src, dst) header: higher match
// specificity first, then higher priority, then fresher round tag. The
// forwarding engine applies the first candidate whose out-port is
// operational — OpenFlow fast-failover semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/messages.hpp"
#include "proto/rule.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::switchd {

/// One forwarding candidate produced by a lookup, pre-ordered.
struct Candidate {
  NodeId fwd = kNoNode;
  Priority prt = 0;
  int specificity = 0;
  int tag_rank = 0;  ///< 0 = current round tag, 1 = previous, ...
  NodeId cid = kNoNode;
};

class RuleTable {
 public:
  struct Config {
    std::size_t max_rules = 1u << 20;  ///< clogged-memory bound
  };

  explicit RuleTable(Config config) : config_(config) {}

  // --- Mutations (driven by controller commands) -------------------------
  void new_round(NodeId cid, proto::Tag tag, int retention);
  void update_rules(NodeId cid, proto::RuleListPtr rules, proto::Tag tag);
  void del_all(NodeId cid);
  void clear();

  // --- Queries ----------------------------------------------------------
  /// The owner's current round tag (the paper's meta-rule tag), if any.
  [[nodiscard]] std::optional<proto::Tag> meta_tag(NodeId cid) const;
  [[nodiscard]] bool has_rules_of(NodeId cid) const;
  [[nodiscard]] std::vector<NodeId> owners() const;
  [[nodiscard]] std::vector<proto::RuleOwnerSummary> owners_summary() const;
  [[nodiscard]] std::size_t total_rules() const;
  [[nodiscard]] std::size_t rules_wire_bytes() const;
  /// The newest installed list of `cid` (for the legitimacy monitor).
  [[nodiscard]] proto::RuleListPtr newest_rules_of(NodeId cid) const;
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Monitor-relevant change epoch: bumps when the owner set or any owner's
  /// newest installed list changes. Steady-state round churn (newRound +
  /// updateRule re-installing the same immutable list under a fresh tag)
  /// leaves it untouched — that is what lets the legitimacy monitor
  /// short-circuit between faults.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Ordered forwarding candidates for a packet header; cached until the
  /// next mutation. The returned reference is valid until then.
  [[nodiscard]] const std::vector<Candidate>& candidates(NodeId src, NodeId dst);

  /// Transient-fault hook: scramble stored rules (tests only). `node_space`
  /// bounds the random ids written into corrupted entries.
  void corrupt(Rng& rng, NodeId node_space);

 private:
  struct TaggedList {
    proto::Tag tag;
    proto::RuleListPtr rules;
  };
  struct OwnerEntry {
    std::deque<proto::Tag> recent_tags;  ///< front = current round tag
    std::vector<TaggedList> lists;
    int retention = 2;
    std::uint64_t touch = 0;  ///< LRU stamp
  };

  void trim_to_retention(OwnerEntry& e);
  void enforce_capacity();
  /// Drop the lookup cache and advance the epoch iff the monitor-observable
  /// content (owner set, newest list per owner) actually changed. Called at
  /// the end of every mutating entry point.
  void note_mutation();
  [[nodiscard]] std::uint64_t content_signature() const;

  Config config_;
  std::map<NodeId, OwnerEntry> owners_;
  std::uint64_t touch_counter_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t content_sig_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Candidate>> lookup_cache_;
};

}  // namespace ren::switchd

// The abstract switch's rule storage (paper Section 2.1.1).
//
// Rules are stored per installing controller (owner) as immutable tagged
// lists: `updateRule` replaces the owner's list for the current round tag;
// `newRound` advances the owner's meta (round) tag and ages out lists whose
// tag falls outside the retention window (2 tags = Algorithm 2's
// currTag/prevTag scheme, 3 tags = the Section 6.2 evaluation variant that
// keeps beforePrevTag rules alive during reconfigurations).
//
// Memory is bounded by maxRules; on overflow the table evicts the least
// recently updated owner entry, the paper's clogged-memory policy. Lookup
// returns an ordered candidate list for a (src, dst) header: higher match
// specificity first, then higher priority, then fresher round tag. The
// forwarding engine applies the first candidate whose out-port is
// operational — OpenFlow fast-failover semantics.
//
// Alongside the per-owner Renaissance management rules the table holds a
// capacity-limited *flow store*: exact-match microflow entries installed by
// the data-plane workload generator (flows/churn.hpp), kept priority-sorted
// and evicted under table pressure by a configurable policy —
// priority-masked LRU (evict the least recently used entry among priority
// classes at or below the incoming priority) or reject-lowest (refuse the
// incoming entry when it is the lowest priority in the table). Management
// rules are *protected*: a flow entry can never displace them, so the
// self-stabilization invariants survive arbitrary table pressure; a
// management install under pressure instead evicts flow entries. Flow
// mutations deliberately leave the monitor epoch untouched — churn is not
// monitor-observable state — and invalidate only the affected lookup-cache
// key.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "proto/messages.hpp"
#include "proto/rule.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::switchd {

/// One forwarding candidate produced by a lookup, pre-ordered.
struct Candidate {
  NodeId fwd = kNoNode;
  Priority prt = 0;
  int specificity = 0;
  int tag_rank = 0;  ///< 0 = current round tag, 1 = previous, ...
  NodeId cid = kNoNode;
};

/// How the flow store resolves table pressure (docs/scenarios.md):
///   PriorityLru   evict the least recently used flow entry among priority
///                 classes <= the incoming priority (priority-masked LRU);
///                 reject the newcomer only when no such entry exists.
///   RejectLowest  refuse the incoming entry when it would be the lowest
///                 priority in the table; otherwise evict the oldest entry
///                 of the lowest priority class.
enum class EvictionPolicy { PriorityLru, RejectLowest };

/// One exact-match microflow entry (churn workload).
struct FlowRule {
  std::uint64_t id = 0;  ///< generator-unique flow id
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Priority prt = 0;
  NodeId fwd = kNoNode;
};

class RuleTable {
 public:
  struct Config {
    std::size_t max_rules = 1u << 20;  ///< clogged-memory bound
  };

  /// Flow-store accounting (campaign "table" metrics; all monotonic except
  /// peak_rules, which tracks the peak combined occupancy).
  struct FlowStats {
    std::uint64_t installs = 0;
    std::uint64_t removals = 0;          ///< explicit departures that hit
    std::uint64_t overflow_rejects = 0;  ///< incoming entries refused
    std::uint64_t flow_evictions = 0;    ///< entries displaced by pressure
    std::uint64_t peak_rules = 0;        ///< peak occupancy (rules + flows)
    std::uint64_t lookups = 0;           ///< forwarding-path lookups
    std::uint64_t lookup_cost = 0;       ///< modeled cost of those lookups
  };

  explicit RuleTable(Config config) : config_(config) {}

  // --- Mutations (driven by controller commands) -------------------------
  void new_round(NodeId cid, proto::Tag tag, int retention);
  void update_rules(NodeId cid, proto::RuleListPtr rules, proto::Tag tag);
  void del_all(NodeId cid);
  void clear();

  // --- Flow store (data-plane workload; flows/churn.hpp) ------------------
  /// Install a microflow entry under the capacity limit. Returns false when
  /// the eviction policy rejects it (counted in overflow_rejects). Protected
  /// management rules are never displaced.
  bool install_flow(const FlowRule& r);
  /// Remove a flow entry by id (false when already evicted/absent).
  bool remove_flow(std::uint64_t id);
  /// Drop every flow entry (stop_flow_churn flushes active flows).
  void clear_flows();
  void set_eviction_policy(EvictionPolicy p) { policy_ = p; }
  [[nodiscard]] EvictionPolicy eviction_policy() const { return policy_; }
  [[nodiscard]] std::size_t flow_rules() const { return flows_.size(); }
  /// Combined occupancy counted against max_rules.
  [[nodiscard]] std::size_t occupancy() const {
    return total_rules() + flows_.size();
  }
  [[nodiscard]] const FlowStats& flow_stats() const { return flow_stats_; }

  /// Forwarding-path lookup: candidates() plus the lookup-cost model (one
  /// binary-search probe of the priority-sorted table, ~log2(occupancy),
  /// plus one unit per candidate examined). Only the switch's packet path
  /// calls this — monitor walks use candidates() and stay cost-free.
  [[nodiscard]] const std::vector<Candidate>& lookup(NodeId src, NodeId dst);

  // --- Queries ----------------------------------------------------------
  /// The owner's current round tag (the paper's meta-rule tag), if any.
  [[nodiscard]] std::optional<proto::Tag> meta_tag(NodeId cid) const;
  [[nodiscard]] bool has_rules_of(NodeId cid) const;
  [[nodiscard]] std::vector<NodeId> owners() const;
  [[nodiscard]] std::vector<proto::RuleOwnerSummary> owners_summary() const;
  [[nodiscard]] std::size_t total_rules() const;
  [[nodiscard]] std::size_t rules_wire_bytes() const;
  /// The newest installed list of `cid` (for the legitimacy monitor).
  [[nodiscard]] proto::RuleListPtr newest_rules_of(NodeId cid) const;
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Monitor-relevant change epoch: bumps when the owner set or any owner's
  /// newest installed list changes. Steady-state round churn (newRound +
  /// updateRule re-installing the same immutable list under a fresh tag)
  /// leaves it untouched — that is what lets the legitimacy monitor
  /// short-circuit between faults.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Ordered forwarding candidates for a packet header; cached until the
  /// next mutation. The returned reference is valid until then.
  [[nodiscard]] const std::vector<Candidate>& candidates(NodeId src, NodeId dst);

  /// Transient-fault hook: scramble stored rules (tests only). `node_space`
  /// bounds the random ids written into corrupted entries.
  void corrupt(Rng& rng, NodeId node_space);

 private:
  struct TaggedList {
    proto::Tag tag;
    proto::RuleListPtr rules;
  };
  struct OwnerEntry {
    std::deque<proto::Tag> recent_tags;  ///< front = current round tag
    std::vector<TaggedList> lists;
    int retention = 2;
    std::uint64_t touch = 0;  ///< LRU stamp
  };

  /// A stored flow entry: the rule plus its LRU stamp.
  struct FlowEntry {
    FlowRule rule;
    std::uint64_t stamp = 0;
  };

  void trim_to_retention(OwnerEntry& e);
  void enforce_capacity();
  /// Drop the lookup cache and advance the epoch iff the monitor-observable
  /// content (owner set, newest list per owner) actually changed. Called at
  /// the end of every mutating entry point.
  void note_mutation();
  [[nodiscard]] std::uint64_t content_signature() const;
  /// Erase one flow entry (must exist) and maintain the indexes; counted
  /// against `counter` (evictions vs removals).
  void erase_flow(std::uint64_t id, std::uint64_t FlowStats::*counter);
  /// Pick the eviction victim for an incoming priority under the active
  /// policy, or 0 when the newcomer must be rejected (flow ids are >= 1).
  [[nodiscard]] std::uint64_t pick_victim(Priority incoming) const;
  void note_peak();

  Config config_;
  std::map<NodeId, OwnerEntry> owners_;
  std::uint64_t touch_counter_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t content_sig_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Candidate>> lookup_cache_;

  // --- Flow store ---------------------------------------------------------
  EvictionPolicy policy_ = EvictionPolicy::PriorityLru;
  std::map<std::uint64_t, FlowEntry> flows_;  ///< flow id -> entry
  /// (priority, LRU stamp) -> flow id: ascending order puts the lowest
  /// priority class first and the oldest entry first within a class, which
  /// is exactly the deterministic scan order both eviction policies need.
  std::set<std::pair<std::pair<Priority, std::uint64_t>, std::uint64_t>>
      flow_order_;
  /// (dst, src) -> flow ids matching that exact header, for candidates().
  std::map<std::pair<NodeId, NodeId>, std::vector<std::uint64_t>> flow_match_;
  std::uint64_t flow_stamp_ = 0;
  FlowStats flow_stats_;
};

}  // namespace ren::switchd

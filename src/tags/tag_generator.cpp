// TagGenerator is header-only; this translation unit anchors the library.
#include "tags/tag_generator.hpp"

namespace ren::tags {
// Intentionally empty.
}  // namespace ren::tags

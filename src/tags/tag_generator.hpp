// Bounded unique-tag generator (paper Section 4.2, after Alon et al. [20]).
//
// During a legal execution nextTag() returns a tag that exists nowhere else
// in the system. A transient fault may corrupt the epoch counter; because the
// domain is finite and each controller owns a disjoint namespace (tags carry
// the owner id), uniqueness is re-established after at most Delta_synch
// rounds once the corrupted value has been cycled past — which the
// correctness argument of the paper absorbs into its Delta_synch bound.
#pragma once

#include "proto/tag.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::tags {

class TagGenerator {
 public:
  explicit TagGenerator(NodeId owner, std::uint32_t start = 0)
      : owner_(owner), epoch_(start % proto::kTagDomain) {}

  [[nodiscard]] NodeId owner() const { return owner_; }

  /// The most recently issued tag (kNullTag before the first next()).
  [[nodiscard]] proto::Tag current() const { return current_; }

  /// Issue the next tag in the bounded domain.
  proto::Tag next() {
    epoch_ = (epoch_ + 1) % proto::kTagDomain;
    current_ = proto::Tag{owner_, epoch_};
    return current_;
  }

  /// Transient-fault hook: scramble the generator state (tests only).
  void corrupt(Rng& rng) {
    epoch_ = static_cast<std::uint32_t>(rng.next_below(proto::kTagDomain));
    current_ = proto::Tag{owner_, epoch_};
  }

 private:
  NodeId owner_;
  std::uint32_t epoch_;
  proto::Tag current_ = proto::kNullTag;
};

}  // namespace ren::tags

#include "tcp/host.hpp"

namespace ren::tcp {

Host::Host(NodeId id, NodeId attach_switch)
    : net::Node(id, NodeKind::Host), attach_(attach_switch) {}

void Host::transmit(NodeId peer, proto::Segment seg) {
  sim_->send(id(), attach_,
             net::make_packet(id(), peer, proto::Payload{std::move(seg)}));
}

RenoSender& Host::make_sender(NodeId peer, RenoConfig config, FlowStats* stats) {
  sender_ = std::make_unique<RenoSender>(
      *sim_, id(), config, stats,
      [this, peer](proto::Segment s) { transmit(peer, std::move(s)); });
  return *sender_;
}

RenoReceiver& Host::make_receiver(NodeId peer, RenoConfig config,
                                  FlowStats* stats) {
  receiver_ = std::make_unique<RenoReceiver>(
      *sim_, config, stats,
      [this, peer](proto::Segment s) { transmit(peer, std::move(s)); });
  return *receiver_;
}

void Host::on_packet(NodeId /*from_neighbor*/, const net::Packet& packet) {
  if (packet.dst != id()) return;  // hosts never relay
  const auto* seg = std::get_if<proto::Segment>(&*packet.payload);
  if (seg == nullptr) return;  // hosts ignore control traffic and probes
  if (seg->is_ack) {
    if (sender_) sender_->on_ack(*seg);
  } else {
    if (receiver_) receiver_->on_segment(*seg);
  }
}

}  // namespace ren::tcp

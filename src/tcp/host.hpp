// A data-plane host (paper Section 2): attached to one switch through a
// data port, outside the control plane — hosts never answer discovery
// probes, so the controllers' topology views exclude them by construction.
#pragma once

#include <memory>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "tcp/reno.hpp"
#include "util/types.hpp"

namespace ren::tcp {

class Host : public net::Node {
 public:
  Host(NodeId id, NodeId attach_switch);

  void start() override {}
  void on_packet(NodeId from_neighbor, const net::Packet& packet) override;

  [[nodiscard]] NodeId attach() const { return attach_; }

  /// Configure this host as the TCP sender toward `peer`.
  RenoSender& make_sender(NodeId peer, RenoConfig config, FlowStats* stats);
  /// Configure this host as the TCP receiver (acks flow back to `peer`).
  RenoReceiver& make_receiver(NodeId peer, RenoConfig config, FlowStats* stats);

  [[nodiscard]] RenoSender* sender() { return sender_.get(); }
  [[nodiscard]] RenoReceiver* receiver() { return receiver_.get(); }

 private:
  void transmit(NodeId peer, proto::Segment seg);

  NodeId attach_;
  std::unique_ptr<RenoSender> sender_;
  std::unique_ptr<RenoReceiver> receiver_;
};

}  // namespace ren::tcp

#include "tcp/reno.hpp"

#include <algorithm>

namespace ren::tcp {

// --- FlowStats ---------------------------------------------------------------

SecondStats& FlowStats::bucket(Time now) {
  auto idx = static_cast<std::size_t>(std::max<Time>(0, now - start_) / sec(1));
  if (buckets_.size() <= idx) buckets_.resize(idx + 1);
  return buckets_[idx];
}

std::vector<double> FlowStats::mbits_series(int seconds) const {
  std::vector<double> out(static_cast<std::size_t>(seconds), 0.0);
  for (std::size_t i = 0; i < out.size() && i < buckets_.size(); ++i) {
    out[i] = static_cast<double>(buckets_[i].goodput_bytes) * 8.0 / 1e6;
  }
  return out;
}

namespace {
std::vector<double> pct_series(const std::vector<SecondStats>& buckets,
                               int seconds,
                               std::uint64_t (*num)(const SecondStats&),
                               std::uint64_t (*den)(const SecondStats&)) {
  std::vector<double> out(static_cast<std::size_t>(seconds), 0.0);
  for (std::size_t i = 0; i < out.size() && i < buckets.size(); ++i) {
    const auto d = den(buckets[i]);
    if (d > 0) out[i] = 100.0 * static_cast<double>(num(buckets[i])) /
                        static_cast<double>(d);
  }
  return out;
}
}  // namespace

std::vector<double> FlowStats::retransmission_pct(int seconds) const {
  return pct_series(
      buckets_, seconds,
      [](const SecondStats& b) { return b.retransmissions; },
      [](const SecondStats& b) { return std::max<std::uint64_t>(b.segments_sent, 1); });
}

std::vector<double> FlowStats::bad_tcp_pct(int seconds) const {
  return pct_series(
      buckets_, seconds,
      [](const SecondStats& b) {
        return b.retransmissions + b.dup_acks + b.spurious;
      },
      [](const SecondStats& b) {
        return std::max<std::uint64_t>(b.segments_sent + b.received, 1);
      });
}

std::vector<double> FlowStats::out_of_order_pct(int seconds) const {
  return pct_series(
      buckets_, seconds,
      [](const SecondStats& b) { return b.out_of_order; },
      [](const SecondStats& b) { return std::max<std::uint64_t>(b.received, 1); });
}

// --- RenoSender --------------------------------------------------------------

RenoSender::RenoSender(net::Simulator& sim, NodeId self, RenoConfig config,
                       FlowStats* stats, SendFn send)
    : sim_(sim),
      self_(self),
      config_(config),
      stats_(stats),
      send_(std::move(send)) {
  cwnd_ = static_cast<double>(config_.init_cwnd_mss) * config_.mss;
  ssthresh_ = static_cast<double>(config_.rwnd);
  rto_ = sec(1);
}

void RenoSender::start(Time at) {
  running_ = true;
  sim_.schedule_at(at, [this] {
    pump();
    arm_rto();
  });
}

void RenoSender::pump() {
  if (!running_) return;
  const auto window = static_cast<std::uint64_t>(
      std::min(cwnd_, static_cast<double>(config_.rwnd)));
  while (snd_nxt_ + config_.mss <= snd_una_ + window) {
    send_segment(snd_nxt_, false);
    snd_nxt_ += config_.mss;
  }
}

void RenoSender::send_segment(std::uint64_t seq, bool retransmit) {
  // Wireshark-style accounting: any send of data at or below the highest
  // byte already transmitted is a retransmission (covers go-back-N resends
  // after an RTO, not just explicit fast retransmits).
  retransmit = retransmit || (seq + config_.mss <= snd_max_);
  snd_max_ = std::max(snd_max_, seq + config_.mss);
  proto::Segment s;
  s.seq = seq;
  s.len = config_.mss;
  s.is_ack = false;
  s.sent_at = sim_.now();
  s.retransmit = retransmit;
  auto& b = stats_->bucket(sim_.now());
  ++b.segments_sent;
  if (retransmit) ++b.retransmissions;
  // RTT sampling state (Karn: never sample retransmitted sequence ranges).
  auto [it, inserted] =
      inflight_times_.emplace(seq + config_.mss,
                              std::make_pair(sim_.now(), retransmit));
  if (!inserted) it->second.second = true;  // mark range as retransmitted
  send_(std::move(s));
}

void RenoSender::arm_rto() {
  const std::uint64_t epoch = ++rto_epoch_;
  sim_.schedule(rto_, [this, epoch] { on_rto(epoch); });
}

void RenoSender::on_rto(std::uint64_t epoch) {
  if (!running_ || epoch != rto_epoch_) return;  // re-armed since
  if (snd_nxt_ == snd_una_) {                    // nothing outstanding
    arm_rto();
    return;
  }
  // Timeout: multiplicative backoff, go-back-N from the hole.
  ssthresh_ = std::max((static_cast<double>(snd_nxt_ - snd_una_)) / 2.0,
                       2.0 * config_.mss);
  cwnd_ = config_.mss;
  dup_acks_ = 0;
  in_recovery_ = false;
  snd_nxt_ = snd_una_;
  inflight_times_.clear();
  rto_ = std::min<Time>(rto_ * 2, config_.rto_max);
  send_segment(snd_una_, true);
  snd_nxt_ = snd_una_ + config_.mss;
  arm_rto();
}

void RenoSender::on_ack(const proto::Segment& ack) {
  if (!running_) return;
  const std::uint64_t a = ack.ack;
  if (a > snd_una_) {
    // New data acknowledged.
    const std::uint64_t acked = a - snd_una_;
    stats_->bucket(sim_.now()).goodput_bytes += acked;
    // RTT sample for a never-retransmitted range ending exactly at `a`.
    auto it = inflight_times_.find(a);
    if (it != inflight_times_.end() && !it->second.second) {
      const Time sample = sim_.now() - it->second.first;
      if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
      } else {
        const Time err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
      }
      rto_ = std::clamp<Time>(srtt_ + 4 * rttvar_, config_.rto_min,
                              config_.rto_max);
    }
    inflight_times_.erase(inflight_times_.begin(),
                          inflight_times_.upper_bound(a));
    snd_una_ = a;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (a >= recover_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ack (NewReno-style): retransmit the next hole, deflate.
        send_segment(snd_una_, true);
        cwnd_ = std::max(cwnd_ - static_cast<double>(acked) + config_.mss,
                         static_cast<double>(config_.mss));
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += config_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(config_.mss) * config_.mss / cwnd_;
    }
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    arm_rto();
    pump();
    return;
  }
  // Duplicate ack.
  if (snd_nxt_ == snd_una_) return;  // nothing outstanding; stale ack
  ++dup_acks_;
  if (in_recovery_) {
    cwnd_ += config_.mss;  // window inflation
    pump();
  } else if (dup_acks_ == 3) {
    // Fast retransmit + fast recovery.
    ssthresh_ = std::max((static_cast<double>(snd_nxt_ - snd_una_)) / 2.0,
                         2.0 * config_.mss);
    send_segment(snd_una_, true);
    cwnd_ = ssthresh_ + 3.0 * config_.mss;
    in_recovery_ = true;
    recover_point_ = snd_nxt_;
  }
}

// --- RenoReceiver -----------------------------------------------------------

RenoReceiver::RenoReceiver(net::Simulator& sim, RenoConfig config,
                           FlowStats* stats, SendFn send)
    : sim_(sim), config_(config), stats_(stats), send_(std::move(send)) {}

void RenoReceiver::on_segment(const proto::Segment& seg) {
  auto& b = stats_->bucket(sim_.now());
  ++b.received;
  if (seg.seq == rcv_nxt_) {
    rcv_nxt_ += seg.len;
    // Drain the reassembly buffer while contiguous.
    auto it = reassembly_.begin();
    while (it != reassembly_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->first + it->second);
      it = reassembly_.erase(it);
    }
  } else if (seg.seq > rcv_nxt_) {
    ++b.out_of_order;
    if (reassembly_.size() < 4096) reassembly_[seg.seq] = seg.len;
  } else {
    ++b.spurious;  // duplicate of already-delivered data
  }

  proto::Segment ack;
  ack.is_ack = true;
  ack.ack = rcv_nxt_;
  ack.len = 0;
  ack.sent_at = sim_.now();
  if (last_ack_sent_ == rcv_nxt_) ++b.dup_acks;
  last_ack_sent_ = rcv_nxt_;
  send_(std::move(ack));
}

}  // namespace ren::tcp

// Packet-level TCP Reno model (paper Section 6.4.3).
//
// The throughput experiments of Figs. 15-20 measure how a long-lived TCP
// Reno flow reacts to a mid-path link failure with fast-failover rules in
// place. This model implements the mechanisms those figures exercise:
// slow start, congestion avoidance, duplicate-ack fast retransmit, Reno
// fast recovery (window halving), RTO with exponential backoff and go-back-N
// resend, cumulative acks with out-of-order reassembly at the receiver, and
// the Wireshark-style accounting the paper reports: retransmission share
// (Fig. 18), "BAD TCP" share (Fig. 19: retransmissions + duplicate acks +
// spurious retransmissions), and out-of-order share (Fig. 20).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/simulator.hpp"
#include "proto/payload.hpp"
#include "util/types.hpp"

namespace ren::tcp {

struct RenoConfig {
  std::uint32_t mss = 8960;          ///< large-MTU segments (paper: 64KB MTU)
  std::uint64_t rwnd = 1u << 20;     ///< receiver window (bytes)
  std::uint32_t init_cwnd_mss = 4;
  Time rto_min = msec(200);
  Time rto_max = sec(4);
};

/// Per-second accounting buckets (the paper plots everything per second).
struct SecondStats {
  std::uint64_t goodput_bytes = 0;   ///< newly acked bytes (Fig. 15/16)
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0; ///< Fig. 18 numerator
  std::uint64_t received = 0;        ///< segments arriving at the receiver
  std::uint64_t out_of_order = 0;    ///< Fig. 20 numerator
  std::uint64_t spurious = 0;        ///< already-acked data received
  std::uint64_t dup_acks = 0;        ///< duplicate acks generated
};

class FlowStats {
 public:
  explicit FlowStats(Time start) : start_(start) {}

  [[nodiscard]] Time start() const { return start_; }
  SecondStats& bucket(Time now);
  [[nodiscard]] const std::vector<SecondStats>& buckets() const {
    return buckets_;
  }
  /// Throughput series in Mbit/s, one value per full second [0, seconds).
  [[nodiscard]] std::vector<double> mbits_series(int seconds) const;
  /// Percentage series helpers for Figs. 18-20.
  [[nodiscard]] std::vector<double> retransmission_pct(int seconds) const;
  [[nodiscard]] std::vector<double> bad_tcp_pct(int seconds) const;
  [[nodiscard]] std::vector<double> out_of_order_pct(int seconds) const;

 private:
  Time start_;
  std::vector<SecondStats> buckets_;
};

/// Sender side. `send` transmits one segment toward the peer (the Host
/// wires this to the simulator); timers run on the simulator directly.
class RenoSender {
 public:
  using SendFn = std::function<void(proto::Segment)>;

  RenoSender(net::Simulator& sim, NodeId self, RenoConfig config,
             FlowStats* stats, SendFn send);

  /// Begin transmitting an unbounded byte stream at time `at`.
  void start(Time at);
  void stop() { running_ = false; }

  void on_ack(const proto::Segment& ack);

  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] Time srtt() const { return srtt_; }

 private:
  void pump();
  void send_segment(std::uint64_t seq, bool retransmit);
  void arm_rto();
  void on_rto(std::uint64_t epoch);

  net::Simulator& sim_;
  NodeId self_;
  RenoConfig config_;
  FlowStats* stats_;
  SendFn send_;

  bool running_ = false;
  std::uint64_t snd_una_ = 0;   ///< oldest unacked byte
  std::uint64_t snd_nxt_ = 0;   ///< next byte to send
  std::uint64_t snd_max_ = 0;   ///< highest byte ever transmitted
  double cwnd_ = 0;
  double ssthresh_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;

  Time srtt_ = 0;
  Time rttvar_ = 0;
  Time rto_ = 0;
  std::uint64_t rto_epoch_ = 0;

  /// seq_end -> (sent_at, was_retransmitted); for RTT sampling (Karn).
  std::map<std::uint64_t, std::pair<Time, bool>> inflight_times_;
};

/// Receiver side: cumulative acks + bounded reassembly buffer.
class RenoReceiver {
 public:
  using SendFn = std::function<void(proto::Segment)>;

  RenoReceiver(net::Simulator& sim, RenoConfig config, FlowStats* stats,
               SendFn send);

  void on_segment(const proto::Segment& seg);

  [[nodiscard]] std::uint64_t rcv_next() const { return rcv_nxt_; }

 private:
  net::Simulator& sim_;
  RenoConfig config_;
  FlowStats* stats_;
  SendFn send_;
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t last_ack_sent_ = ~0ULL;
  std::map<std::uint64_t, std::uint32_t> reassembly_;  // seq -> len
};

}  // namespace ren::tcp

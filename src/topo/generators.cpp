#include "topo/generators.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ren::topo {

Topology make_fat_tree(int k) {
  if (k < 4 || k > 64 || k % 2 != 0) {
    throw std::invalid_argument("fat_tree: k must be even and in [4, 64], got " +
                                std::to_string(k));
  }
  const int half = k / 2;
  const int edges_total = k * half;       // k pods x k/2 edge switches
  const int aggs_base = edges_total;      // aggregation ids follow edges
  const int cores_base = 2 * edges_total; // core ids follow aggregation
  const int cores_total = half * half;
  flows::Graph g(cores_base + cores_total);
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      const int edge_sw = pod * half + e;
      // Full bipartite edge <-> aggregation mesh inside the pod.
      for (int a = 0; a < half; ++a) {
        g.add_edge(edge_sw, aggs_base + pod * half + a);
      }
    }
    // Aggregation switch a of every pod uplinks to core group a: cores
    // [a*k/2, (a+1)*k/2). Two pods always share all core groups, so any
    // edge-to-edge route is edge-agg-core-agg-edge: diameter 4.
    for (int a = 0; a < half; ++a) {
      const int agg_sw = aggs_base + pod * half + a;
      for (int c = 0; c < half; ++c) {
        g.add_edge(agg_sw, cores_base + a * half + c);
      }
    }
  }
  return Topology{"fat_tree(k=" + std::to_string(k) + ")", std::move(g), 4};
}

Topology make_random_wan(int nodes, int m, std::uint64_t seed) {
  if (m < 2) throw std::invalid_argument("random_wan: m must be >= 2");
  if (nodes < m + 1) {
    throw std::invalid_argument("random_wan: nodes must be >= m + 1");
  }
  Rng rng(seed);
  flows::Graph g(nodes);
  // Degree-proportional sampling pool: every edge appends both endpoints, so
  // a node's multiplicity equals its degree (classic Barabasi-Albert).
  std::vector<int> pool;
  pool.reserve(static_cast<std::size_t>(2 * m) *
               static_cast<std::size_t>(nodes));
  auto link = [&](int a, int b) {
    g.add_edge(a, b);
    pool.push_back(a);
    pool.push_back(b);
  };
  // Seed cycle of m+1 nodes: 2-edge-connected base, every later node joins
  // with m >= 2 distinct attachments, which keeps every new edge on a cycle.
  const int base = m + 1;
  for (int i = 0; i < base; ++i) link(i, (i + 1) % base);
  std::vector<int> targets;
  for (int v = base; v < nodes; ++v) {
    targets.clear();
    while (static_cast<int>(targets.size()) < m) {
      const int u = pool[rng.next_below(pool.size())];
      bool dup = false;
      for (int t : targets) dup = dup || (t == u);
      if (!dup) targets.push_back(u);
    }
    for (int u : targets) link(v, u);
  }
  const int diameter = g.diameter();
  return Topology{"random_wan(nodes=" + std::to_string(nodes) +
                      ",m=" + std::to_string(m) +
                      ",seed=" + std::to_string(seed) + ")",
                  std::move(g), diameter};
}

}  // namespace ren::topo

// Parametric topology generators for scale-out experiments.
//
// Both generators are deterministic: the same parameters (and seed) produce
// the same Graph bit-for-bit on every platform, because all randomness flows
// through ren::Rng (xoshiro256**, fixed algorithm) and adjacency lists
// are kept sorted by construction.
#pragma once

#include <cstdint>

#include "topo/topologies.hpp"

namespace ren::topo {

/// Three-stage folded-Clos fat-tree with parameter k (even, 4..64):
/// k pods of k/2 edge + k/2 aggregation switches plus (k/2)^2 cores —
/// 5k^2/4 switches total (k=8: 80, k=16: 320, k=32: 1280), diameter 4.
/// Hosts are not modeled; ids are edge [0, k^2/2), aggregation [k^2/2, k^2),
/// core [k^2, 5k^2/4). Throws std::invalid_argument for invalid k.
Topology make_fat_tree(int k);

/// Seeded random WAN: a `m+1`-node seed cycle grown by preferential
/// attachment, each new node linking to `m` distinct existing nodes chosen
/// degree-proportionally. Connected and 2-edge-connected by construction
/// (every node starts on a cycle through its first two attachments).
/// Requires nodes >= m + 1 >= 3. expected_diameter is measured, not a target.
Topology make_random_wan(int nodes, int m, std::uint64_t seed);

}  // namespace ren::topo

#include "topo/loaders.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ren::topo {
namespace {

/// Shared tail of every loader: remap identifiers to dense ids (sorted order
/// of the original identifier), coalesce duplicate edges, keep the largest
/// connected component, and measure the diameter.
template <typename Id>
Topology build_from_edges(const std::string& format, const std::string& name,
                          const std::vector<std::pair<Id, Id>>& edges) {
  if (edges.empty()) {
    throw std::runtime_error(format + " '" + name + "': no edges found");
  }
  std::map<Id, int> index;
  for (const auto& [a, b] : edges) {
    index.emplace(a, 0);
    index.emplace(b, 0);
  }
  int next = 0;
  for (auto& [id, ix] : index) ix = next++;

  flows::Graph full(next);
  for (const auto& [a, b] : edges) full.add_edge(index[a], index[b]);

  // Largest connected component; a tie keeps the component holding the
  // smallest original identifier (components are discovered in id order).
  std::vector<int> comp(static_cast<std::size_t>(full.n()), -1);
  int comp_count = 0;
  std::vector<int> sizes;
  std::vector<int> queue;
  for (int s = 0; s < full.n(); ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    const int c = comp_count++;
    sizes.push_back(0);
    queue.assign(1, s);
    comp[static_cast<std::size_t>(s)] = c;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      ++sizes[static_cast<std::size_t>(c)];
      for (int v : full.neighbors(queue[head])) {
        if (comp[static_cast<std::size_t>(v)] < 0) {
          comp[static_cast<std::size_t>(v)] = c;
          queue.push_back(v);
        }
      }
    }
  }
  int best = 0;
  for (int c = 1; c < comp_count; ++c) {
    if (sizes[static_cast<std::size_t>(c)] > sizes[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }

  std::vector<int> dense(static_cast<std::size_t>(full.n()), -1);
  int kept = 0;
  for (int v = 0; v < full.n(); ++v) {
    if (comp[static_cast<std::size_t>(v)] == best) {
      dense[static_cast<std::size_t>(v)] = kept++;
    }
  }
  flows::Graph g(kept);
  for (int u = 0; u < full.n(); ++u) {
    if (dense[static_cast<std::size_t>(u)] < 0) continue;
    for (int v : full.neighbors(u)) {
      if (u < v) {
        g.add_edge(dense[static_cast<std::size_t>(u)],
                   dense[static_cast<std::size_t>(v)]);
      }
    }
  }
  const int diameter = g.diameter();
  return Topology{name, std::move(g), diameter};
}

[[noreturn]] void malformed(const std::string& format, const std::string& name,
                            int line_no, const std::string& what) {
  throw std::runtime_error(format + " '" + name + "' line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

Topology parse_rocketfuel(const std::string& text, const std::string& name) {
  // Rocketfuel .cch lines: "uid @loc ... -> <nuid> <nuid> ... {-euid} ...".
  // Negative uids are external routers; "{-euid}" entries are external
  // links. Both are skipped — Table 8 uses the backbone maps.
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream toks(line);
    std::string tok;
    if (!(toks >> tok) || tok[0] == '#') continue;  // blank / comment
    std::int64_t uid = 0;
    try {
      std::size_t used = 0;
      uid = std::stoll(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
    } catch (const std::exception&) {
      malformed("rocketfuel", name, line_no,
                "expected a numeric router uid, got '" + tok + "'");
    }
    if (uid < 0) continue;  // external router block
    while (toks >> tok) {
      if (tok.front() != '<') continue;  // location/flags/external/name noise
      if (tok.back() != '>') {
        malformed("rocketfuel", name, line_no,
                  "truncated neighbor ref '" + tok + "'");
      }
      std::int64_t nuid = 0;
      try {
        std::size_t used = 0;
        nuid = std::stoll(tok.substr(1, tok.size() - 2), &used);
        if (used != tok.size() - 2) throw std::invalid_argument(tok);
      } catch (const std::exception&) {
        malformed("rocketfuel", name, line_no,
                  "bad neighbor ref '" + tok + "'");
      }
      if (nuid < 0) continue;  // link to an external router
      if (nuid == uid) {
        malformed("rocketfuel", name, line_no, "self-loop on uid " +
                                                   std::to_string(uid));
      }
      edges.emplace_back(uid, nuid);
    }
  }
  return build_from_edges("rocketfuel", name, edges);
}

Topology parse_graphml(const std::string& text, const std::string& name) {
  // Minimal GraphML scan: <node id="..."/> declares a node, <edge
  // source="..." target="..."/> declares a link. Attribute order within the
  // tag is free; everything else (keys, data, namespaces) is ignored.
  auto attr = [](const std::string& tag, const std::string& key)
      -> std::string {
    const std::string needle = key + "=";
    std::size_t pos = 0;
    while ((pos = tag.find(needle, pos)) != std::string::npos) {
      // Require the match to start an attribute (not e.g. "sourceport=").
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(tag[pos - 1])) != 0 ||
                      tag[pos - 1] == '_')) {
        pos += needle.size();
        continue;
      }
      const std::size_t q = pos + needle.size();
      if (q >= tag.size() || (tag[q] != '"' && tag[q] != '\'')) return {};
      const std::size_t end = tag.find(tag[q], q + 1);
      if (end == std::string::npos) return {};
      return tag.substr(q + 1, end - q - 1);
    }
    return {};
  };

  std::map<std::string, bool> declared;
  std::vector<std::pair<std::string, std::string>> edges;
  std::size_t pos = 0;
  while ((pos = text.find('<', pos)) != std::string::npos) {
    const std::size_t close = text.find('>', pos);
    if (close == std::string::npos) {
      throw std::runtime_error("graphml '" + name + "': truncated tag at byte " +
                               std::to_string(pos));
    }
    const std::string tag = text.substr(pos, close - pos + 1);
    pos = close + 1;
    if (tag.rfind("<node", 0) == 0) {
      const std::string id = attr(tag, "id");
      if (id.empty()) {
        throw std::runtime_error("graphml '" + name + "': <node> without id");
      }
      declared[id] = true;
    } else if (tag.rfind("<edge", 0) == 0) {
      const std::string src = attr(tag, "source");
      const std::string dst = attr(tag, "target");
      if (src.empty() || dst.empty()) {
        throw std::runtime_error("graphml '" + name +
                                 "': <edge> without source/target");
      }
      if (src == dst) {
        throw std::runtime_error("graphml '" + name + "': self-loop on node '" +
                                 src + "'");
      }
      edges.emplace_back(src, dst);
    }
  }
  for (const auto& [a, b] : edges) {
    if (declared.count(a) == 0 || declared.count(b) == 0) {
      throw std::runtime_error("graphml '" + name +
                               "': edge references undeclared node '" +
                               (declared.count(a) == 0 ? a : b) + "'");
    }
  }
  return build_from_edges("graphml", name, edges);
}

Topology parse_edgelist(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<std::string, std::string>> edges;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream toks(line);
    std::string a, b, extra;
    if (!(toks >> a)) continue;  // blank
    if (!(toks >> b)) {
      malformed("edgelist", name, line_no, "expected 'A B', got only '" + a + "'");
    }
    if (toks >> extra) {
      malformed("edgelist", name, line_no, "trailing token '" + extra + "'");
    }
    if (a == b) {
      malformed("edgelist", name, line_no, "self-loop on node '" + a + "'");
    }
    edges.emplace_back(std::move(a), std::move(b));
  }
  return build_from_edges("edgelist", name, edges);
}

namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("topology file '" + path + "': cannot open");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Topology load_file_as(const std::string& path, const std::string& format) {
  const std::string text = read_all(path);
  const std::string name = basename_of(path);
  if (format == "rocketfuel") return parse_rocketfuel(text, name);
  if (format == "graphml") return parse_graphml(text, name);
  if (format == "edgelist") return parse_edgelist(text, name);
  throw std::runtime_error("unknown topology format '" + format +
                           "' (want rocketfuel|graphml|edgelist)");
}

Topology load_file(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    const std::string s = suffix;
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".cch")) return load_file_as(path, "rocketfuel");
  if (ends_with(".graphml") || ends_with(".xml")) {
    return load_file_as(path, "graphml");
  }
  return load_file_as(path, "edgelist");
}

}  // namespace ren::topo

// File loaders for real-world topology datasets.
//
// Three formats:
//  * Rocketfuel ISP maps (.cch) — "uid ... -> <nuid> <nuid> ..." router
//    adjacency; external links ("{-euid}") and negative-uid external routers
//    are skipped, matching how the paper's Table 8 uses the backbone maps.
//  * Topology Zoo GraphML (.graphml/.xml) — <node id="..."/> and
//    <edge source="..." target="..."/> elements, scanned with a minimal
//    tag parser (no XML library dependency).
//  * Plain edge lists — one "A B" pair per line, '#' comments.
//
// Common semantics, applied by every loader:
//  * arbitrary node identifiers are remapped to dense ids 0..n-1 in sorted
//    order of the original identifier (deterministic across runs);
//  * self-loops are rejected (throw), duplicate edges are coalesced;
//  * malformed, truncated, or edge-free input throws std::runtime_error;
//  * when the map is disconnected, the largest connected component is kept
//    (ties broken toward the smaller minimum original identifier) — the
//    simulation needs one fabric, and real Rocketfuel maps carry debris.
#pragma once

#include <string>

#include "topo/topologies.hpp"

namespace ren::topo {

/// Parse Rocketfuel .cch content. `name` labels the resulting Topology.
Topology parse_rocketfuel(const std::string& text, const std::string& name);

/// Parse Topology Zoo GraphML content.
Topology parse_graphml(const std::string& text, const std::string& name);

/// Parse a plain "A B" edge list ('#' starts a comment).
Topology parse_edgelist(const std::string& text, const std::string& name);

/// Load `path`, dispatching on extension: .cch -> Rocketfuel,
/// .graphml/.xml -> GraphML, anything else -> edge list. Throws
/// std::runtime_error when the file is missing or malformed.
Topology load_file(const std::string& path);

/// Load `path` with an explicit format: "rocketfuel", "graphml", "edgelist".
Topology load_file_as(const std::string& path, const std::string& format);

}  // namespace ren::topo

#include "topo/source.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "topo/generators.hpp"
#include "topo/loaders.hpp"

namespace ren::topo {
namespace {

struct Params {
  std::map<std::string, std::string> kv;
  std::string spec;  // for error messages

  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) != 0;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback,
                                     bool required) const {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      if (!required) return fallback;
      throw std::invalid_argument("topology spec '" + spec +
                                  "': missing required parameter '" + key + "'");
    }
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("topology spec '" + spec + "': parameter '" +
                                  key + "=" + it->second +
                                  "' is not an integer");
    }
  }
};

/// Parse "k1=v1,k2=v2" after the colon, rejecting unknown keys.
Params parse_params(const std::string& spec, const std::string& body,
                    const std::vector<std::string>& allowed) {
  Params p;
  p.spec = spec;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      throw std::invalid_argument("topology spec '" + spec +
                                  "': expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    bool ok = false;
    for (const auto& a : allowed) ok = ok || (a == key);
    if (!ok) {
      throw std::invalid_argument("topology spec '" + spec +
                                  "': unknown parameter '" + key + "'");
    }
    if (!p.kv.emplace(key, item.substr(eq + 1)).second) {
      throw std::invalid_argument("topology spec '" + spec +
                                  "': duplicate parameter '" + key + "'");
    }
  }
  return p;
}

Topology resolve_uncached(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return by_name(spec);  // paper builtin
  const std::string head = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  if (head == "fat_tree") {
    const Params p = parse_params(spec, body, {"k"});
    return make_fat_tree(static_cast<int>(p.get_int("k", 0, true)));
  }
  if (head == "random_wan") {
    const Params p = parse_params(spec, body, {"nodes", "m", "seed"});
    return make_random_wan(
        static_cast<int>(p.get_int("nodes", 0, true)),
        static_cast<int>(p.get_int("m", 2, false)),
        static_cast<std::uint64_t>(p.get_int("seed", 1, false)));
  }
  if (head == "isp") {
    const Params p = parse_params(spec, body, {"nodes", "diameter", "seed"});
    return make_isp(spec, static_cast<int>(p.get_int("nodes", 0, true)),
                    static_cast<int>(p.get_int("diameter", 0, true)),
                    static_cast<std::uint64_t>(p.get_int("seed", 1, false)));
  }
  if (head == "file") return load_file(body);
  if (head == "rocketfuel" || head == "graphml" || head == "edgelist") {
    return load_file_as(body, head);
  }
  throw std::invalid_argument(
      "unknown topology spec '" + spec +
      "' (want a builtin name, fat_tree:k=K, random_wan:nodes=N[,m=M][,seed=S], "
      "isp:nodes=N,diameter=D[,seed=S], or file:PATH)");
}

const Topology& resolve_cached(const std::string& spec) {
  static std::mutex mu;
  static std::map<std::string, Topology>* cache =
      new std::map<std::string, Topology>();  // leaked: safe at exit
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(spec);
  if (it == cache->end()) {
    it = cache->emplace(spec, resolve_uncached(spec)).first;
  }
  return it->second;
}

}  // namespace

Topology resolve(const std::string& spec) { return resolve_cached(spec); }

void validate_spec(const std::string& spec) { (void)resolve_cached(spec); }

std::vector<TopoInfo> list_topos() {
  std::vector<TopoInfo> out;
  auto add = [&out](const std::string& spec, const std::string& kind,
                    const std::string& summary) {
    const Topology t = resolve(spec);
    out.push_back(TopoInfo{spec, kind, summary, t.switch_graph.n(),
                           t.switch_graph.edge_count(),
                           t.switch_graph.diameter()});
  };
  add("B4", "builtin", "Google's SDN WAN (paper Table 8)");
  add("Clos", "builtin", "3-stage fat-tree, k=4 (paper Table 8)");
  add("Telstra", "builtin", "Rocketfuel 1221 stand-in (paper Table 8)");
  add("ATT", "builtin", "Rocketfuel 7018 stand-in (paper Table 8)");
  add("EBONE", "builtin", "Rocketfuel 1755 stand-in (paper Table 8)");
  add("fat_tree:k=8", "generator example", "folded Clos datacenter fabric");
  add("fat_tree:k=16", "generator example", "folded Clos datacenter fabric");
  add("fat_tree:k=32", "generator example", "folded Clos datacenter fabric");
  add("random_wan:nodes=1024,m=2,seed=1", "generator example",
      "preferential-attachment WAN, 2-edge-connected");
  add("isp:nodes=120,diameter=9,seed=1", "generator example",
      "hub-backbone ISP with exact diameter");
  out.push_back(TopoInfo{"file:PATH", "loader",
                         "rocketfuel .cch / topology-zoo .graphml / edge list"
                         " (format by extension)",
                         0, 0, 0});
  return out;
}

}  // namespace ren::topo

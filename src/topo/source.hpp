// TopologySource registry: one string grammar naming every fabric the stack
// can simulate — paper builtins, parametric generators, and dataset files —
// so scenario specs, CLI flags and benches all share a single resolver.
//
// Spec grammar (case-sensitive except builtin aliases):
//   "B4" | "Clos" | "Telstra" | "ATT" | "EBONE"   paper builtins (Table 8)
//   "fat_tree:k=K"                                folded Clos, 5K^2/4 switches
//   "random_wan:nodes=N[,m=M][,seed=S]"           preferential attachment,
//                                                 m >= 2 (default 2), seed
//                                                 default 1
//   "isp:nodes=N,diameter=D[,seed=S]"             hub-backbone ISP generator
//                                                 (seed default 1)
//   "file:PATH"                                   load, format by extension
//   "rocketfuel:PATH" | "graphml:PATH" | "edgelist:PATH"   explicit format
//
// resolve() memoizes per spec behind a mutex (campaign trials run on many
// threads and re-resolve the same fabric), so files parse once per process
// and generator determinism doubles as cache coherence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topo/topologies.hpp"

namespace ren::topo {

/// Resolve a topology spec (grammar above). Throws std::invalid_argument for
/// an unknown name or malformed spec, std::runtime_error for file problems.
Topology resolve(const std::string& spec);

/// Validate without materializing a copy (still populates the cache).
/// Throws exactly like resolve().
void validate_spec(const std::string& spec);

/// One row of `ren_scenarios --list-topos`.
struct TopoInfo {
  std::string spec;     ///< resolvable spec string
  std::string kind;     ///< "builtin", "generator", or "generator example"
  std::string summary;  ///< one-line description
  int nodes = 0;
  std::size_t links = 0;
  int diameter = 0;
};

/// Every registered builtin plus representative generator instantiations
/// (fat-tree k=8/16/32, a 1k-node random WAN, an ISP example) with measured
/// node/link/diameter counts. Generators accept other parameters too — the
/// examples exist so campaign authors can discover fabrics without reading
/// source.
std::vector<TopoInfo> list_topos();

}  // namespace ren::topo

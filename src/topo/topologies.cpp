#include "topo/topologies.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace ren::topo {

Topology make_b4() {
  // Reconstruction of Google's 12-site B4 WAN (SIGCOMM'13, Fig. 1): two
  // hemispheric rings bridged by long-haul links. Tuned so that the graph
  // has 12 nodes, 19 links, diameter 5 and is 2-edge-connected, matching
  // the statistics the paper reports (Table 8).
  Topology t;
  t.name = "B4";
  t.expected_diameter = 5;
  flows::Graph g(12);
  const std::pair<int, int> edges[] = {
      {0, 1}, {0, 2},  {1, 2},  {1, 3},  {2, 3},   {3, 4},  {3, 5},
      {4, 5}, {4, 6},  {5, 7},  {6, 7},  {6, 8},   {7, 9},  {8, 9},
      {8, 10}, {9, 11}, {10, 11}, {2, 4}, {2, 5},
  };
  for (auto [a, b] : edges) g.add_edge(a, b);
  t.switch_graph = std::move(g);
  return t;
}

Topology make_clos() {
  // 3-stage Clos / k=4 fat-tree: 8 edge + 8 aggregation + 4 core = 20
  // switches, diameter 4 (edge-agg-core-agg-edge), 2-edge-connected.
  Topology t;
  t.name = "Clos";
  t.expected_diameter = 4;
  flows::Graph g(20);
  // ids: edge 0..7, aggregation 8..15, core 16..19; pods p = 0..3 own
  // edges {2p, 2p+1} and aggs {8+2p, 8+2p+1}.
  for (int p = 0; p < 4; ++p) {
    const int e0 = 2 * p, e1 = 2 * p + 1;
    const int a0 = 8 + 2 * p, a1 = 8 + 2 * p + 1;
    g.add_edge(e0, a0);
    g.add_edge(e0, a1);
    g.add_edge(e1, a0);
    g.add_edge(e1, a1);
    g.add_edge(a0, 16);
    g.add_edge(a0, 17);
    g.add_edge(a1, 18);
    g.add_edge(a1, 19);
  }
  t.switch_graph = std::move(g);
  return t;
}

Topology make_isp(const std::string& name, int nodes, int diameter,
                  std::uint64_t seed) {
  if (nodes < 2 * diameter + 1) {
    // Need diameter+1 hubs plus at least one bridging leaf per hub segment.
    throw std::invalid_argument("make_isp: nodes too few for diameter");
  }
  // Backbone: a path of L = diameter+1 hubs fixes the diameter at
  // (L-1) = diameter via the dual-homed leaves (see below); leaves attach to
  // two consecutive hubs, which (a) preserves all backbone distances and
  // (b) makes every edge lie on a cycle => 2-edge-connected.
  Topology t;
  t.name = name;
  t.expected_diameter = diameter;
  const int hubs = diameter + 1;
  const int leaves = nodes - hubs;
  flows::Graph g(nodes);
  for (int h = 0; h + 1 < hubs; ++h) g.add_edge(h, h + 1);

  // Center-heavy leaf distribution (ISP-like degree mix), deterministic.
  Rng rng(seed);
  std::vector<int> weight(static_cast<std::size_t>(hubs - 1));
  int total = 0;
  for (int i = 0; i + 1 < hubs; ++i) {
    const int centrality = std::min(i, hubs - 2 - i) + 1;
    weight[static_cast<std::size_t>(i)] = centrality;
    total += centrality;
  }
  // Every hub segment gets at least one bridging leaf (keeps the backbone
  // 2-edge-connected); the rest are drawn from the weighted distribution.
  std::vector<int> segment_of_leaf;
  segment_of_leaf.reserve(static_cast<std::size_t>(leaves));
  for (int s = 0; s + 1 < hubs && static_cast<int>(segment_of_leaf.size()) < leaves;
       ++s) {
    segment_of_leaf.push_back(s);
  }
  while (static_cast<int>(segment_of_leaf.size()) < leaves) {
    auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(total)));
    int seg = 0;
    while (pick >= weight[static_cast<std::size_t>(seg)]) {
      pick -= weight[static_cast<std::size_t>(seg)];
      ++seg;
    }
    segment_of_leaf.push_back(seg);
  }
  for (int l = 0; l < leaves; ++l) {
    const int id = hubs + l;
    const int seg = segment_of_leaf[static_cast<std::size_t>(l)];
    g.add_edge(id, seg);
    g.add_edge(id, seg + 1);
  }
  t.switch_graph = std::move(g);
  return t;
}

Topology make_telstra() { return make_isp("Telstra", 57, 8, 0x7e157a); }
Topology make_att() { return make_isp("ATT", 172, 10, 0xa77); }
Topology make_ebone() { return make_isp("EBONE", 208, 11, 0xeb0e); }

Topology by_name(const std::string& name) {
  if (name == "B4") return make_b4();
  if (name == "Clos") return make_clos();
  if (name == "Telstra") return make_telstra();
  if (name == "ATT" || name == "AT&T") return make_att();
  if (name == "EBONE" || name == "Ebone") return make_ebone();
  throw std::invalid_argument("unknown topology: " + name);
}

std::vector<Topology> paper_topologies() {
  std::vector<Topology> out;
  out.push_back(make_b4());
  out.push_back(make_clos());
  out.push_back(make_telstra());
  out.push_back(make_att());
  out.push_back(make_ebone());
  return out;
}

}  // namespace ren::topo

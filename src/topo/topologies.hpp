// The evaluation topologies (paper Section 6.3, Table/Fig. 8):
//   B4      12 nodes, diameter 5  — Google's SDN WAN (reconstructed graph)
//   Clos    20 nodes, diameter 4  — 3-stage fat-tree (k=4)
//   Telstra 57 nodes, diameter 8  — Rocketfuel 1221 (synthetic stand-in)
//   AT&T   172 nodes, diameter 10 — Rocketfuel 7018 (synthetic stand-in)
//   EBONE  208 nodes, diameter 11 — Rocketfuel 1755 (synthetic stand-in)
//
// The Rocketfuel data files are not redistributable offline, so the three
// ISP networks are generated deterministically: a hub backbone path sets the
// exact diameter, dual-homed leaf routers make the graph 2-edge-connected,
// and a seeded RNG distributes leaves center-heavy (ISP-like degree mix).
// Node counts and diameters match Table 8 exactly and are verified in tests.
#pragma once

#include <string>
#include <vector>

#include "flows/graph.hpp"

namespace ren::topo {

struct Topology {
  std::string name;
  flows::Graph switch_graph;  ///< switches only, ids 0..n-1
  int expected_diameter = 0;
};

Topology make_b4();
Topology make_clos();
Topology make_telstra();
Topology make_att();
Topology make_ebone();

/// Deterministic ISP-like generator: exact `nodes` count, exact `diameter`,
/// 2-edge-connected. Requires nodes >= 2*diameter.
Topology make_isp(const std::string& name, int nodes, int diameter,
                  std::uint64_t seed);

/// Lookup by the names used in the paper: "B4", "Clos", "Telstra", "ATT",
/// "EBONE". Throws std::invalid_argument for unknown names.
Topology by_name(const std::string& name);

/// All five paper topologies, in Table 8 order.
std::vector<Topology> paper_topologies();

}  // namespace ren::topo

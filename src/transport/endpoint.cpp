#include "transport/endpoint.hpp"

#include <utility>
#include <vector>

namespace ren::transport {

Endpoint::Endpoint(NodeId self, Config config, Hooks hooks)
    : self_(self), config_(config), hooks_(std::move(hooks)) {}

void Endpoint::submit(NodeId peer, proto::Message message) {
  auto ptr = std::make_shared<const proto::Message>(std::move(message));
  SendSession& s = send_[peer];
  if (!s.inflight || config_.supersede_inflight) {
    begin_transmission(peer, s, std::move(ptr));
  } else {
    s.next = std::move(ptr);  // supersede any queued message
  }
}

void Endpoint::begin_transmission(NodeId peer, SendSession& s,
                                  proto::MessagePtr msg) {
  s.label = (s.label + 1) % config_.label_domain;
  s.inflight = std::move(msg);
  if (hooks_.on_new_message) hooks_.on_new_message(peer);
  transmit(peer, s);
}

void Endpoint::transmit(NodeId peer, const SendSession& s) {
  proto::Frame f;
  f.kind = proto::FrameKind::Act;
  f.label = s.label;
  f.payload = s.inflight;
  hooks_.send_frame(peer, std::move(f));
}

void Endpoint::on_frame(NodeId peer, const proto::Frame& frame) {
  if (frame.kind == proto::FrameKind::Act) {
    // Always acknowledge; deliver only fresh labels.
    proto::Frame ack;
    ack.kind = proto::FrameKind::Ack;
    ack.label = frame.label;
    hooks_.send_frame(peer, std::move(ack));

    RecvSession& r = recv_[peer];
    if (!r.delivered_any || r.last_label != frame.label) {
      r.last_label = frame.label;
      r.delivered_any = true;
      if (frame.payload && hooks_.deliver) hooks_.deliver(peer, frame.payload);
    }
    return;
  }
  // Ack: completes the round-trip for the current label only.
  auto it = send_.find(peer);
  if (it == send_.end()) return;
  SendSession& s = it->second;
  if (s.inflight && frame.label == s.label) {
    s.inflight.reset();
    if (s.next) {
      proto::MessagePtr next = std::move(s.next);
      s.next.reset();
      begin_transmission(peer, s, std::move(next));
    }
  }
}

void Endpoint::tick() {
  for (auto& [peer, s] : send_) {
    if (s.inflight) {
      ++retransmissions_;
      transmit(peer, s);
    }
  }
}

void Endpoint::retain_only(const std::set<NodeId>& keep) {
  for (auto it = send_.begin(); it != send_.end();) {
    it = keep.count(it->first) ? std::next(it) : send_.erase(it);
  }
  for (auto it = recv_.begin(); it != recv_.end();) {
    it = keep.count(it->first) ? std::next(it) : recv_.erase(it);
  }
  // Hard bound, even if the caller's keep-set is oversized.
  while (send_.size() > config_.max_sessions) send_.erase(send_.begin());
  while (recv_.size() > config_.max_sessions) recv_.erase(recv_.begin());
}

bool Endpoint::idle(NodeId peer) const {
  auto it = send_.find(peer);
  return it == send_.end() || !it->second.inflight;
}

void Endpoint::corrupt(Rng& rng) {
  for (auto& [peer, s] : send_) {
    s.label = static_cast<std::uint32_t>(rng.next_below(config_.label_domain));
    if (rng.chance(0.5)) s.inflight.reset();
  }
  for (auto& [peer, r] : recv_) {
    r.last_label = static_cast<std::uint32_t>(rng.next_below(config_.label_domain));
    r.delivered_any = rng.chance(0.5);
  }
}

}  // namespace ren::transport

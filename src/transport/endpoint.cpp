#include "transport/endpoint.hpp"

#include <algorithm>
#include <utility>

#include "net/simulator.hpp"

namespace ren::transport {

namespace {

/// Refill `slot` with `frame` in place when the buffer is uniquely owned
/// (no packet still rides it through the network), else allocate a fresh
/// one. The in-place path assigns the Frame members directly instead of
/// re-constructing the variant. Under a multi-shard simulation the
/// uniqueness test is not a synchronisation point (the last reference may
/// have been dropped by a peer shard), so always allocate fresh there.
void refill(std::shared_ptr<proto::Payload>& slot, proto::Frame&& frame) {
  if (slot && slot.use_count() == 1 && !net::Simulator::concurrent_context()) {
    if (auto* f = std::get_if<proto::Frame>(slot.get())) {
      *f = std::move(frame);
    } else {
      *slot = proto::Payload{std::move(frame)};
    }
  } else {
    slot = std::make_shared<proto::Payload>(proto::Payload{std::move(frame)});
  }
}

}  // namespace

Endpoint::Endpoint(NodeId self, Config config, Hooks hooks)
    : self_(self), config_(config), hooks_(std::move(hooks)) {}

void Endpoint::submit(NodeId peer, proto::MessagePtr message) {
  SendSession& s = send_[peer];
  if (config_.supersede_inflight && message != nullptr &&
      message == s.inflight) {
    // Idempotent resubmit: the exact payload object is already the in-flight
    // act frame, so the newest-state-supersedes contract is vacuous. Count
    // the logical send, re-emit the cached frame (the seed transmitted on
    // every submit) and keep the label: the receiver either delivers the
    // frame once or has already delivered-and-acked it, and since receivers
    // always acknowledge, a stuck label never outlives the session — the
    // next *content* change starts a fresh transmission as usual.
    if (hooks_.on_new_message) hooks_.on_new_message(peer);
    transmit(peer, s);
    return;
  }
  if (message != nullptr && message == s.next) {
    return;  // already queued as the superseding message
  }
  if (!s.inflight || config_.supersede_inflight) {
    begin_transmission(peer, s, std::move(message));
  } else {
    s.next = std::move(message);  // supersede any queued message
  }
}

void Endpoint::begin_transmission(NodeId peer, SendSession& s,
                                  proto::MessagePtr msg) {
  s.label = (s.label + 1) % config_.label_domain;
  s.inflight = std::move(msg);
  refresh_act_frame(s);
  if (hooks_.on_new_message) hooks_.on_new_message(peer);
  transmit(peer, s);
}

void Endpoint::refresh_act_frame(SendSession& s) {
  refill(s.act_frame,
         proto::Frame{proto::FrameKind::Act, s.label, s.inflight});
  s.act_bytes = static_cast<std::uint32_t>(proto::wire_size(*s.act_frame));
}

void Endpoint::transmit(NodeId peer, const SendSession& s) {
  hooks_.send_frame(peer, s.act_frame, s.act_bytes);
}

void Endpoint::on_frame(NodeId peer, const proto::Frame& frame) {
  if (frame.kind == proto::FrameKind::Act) {
    // Always acknowledge; deliver only fresh labels.
    RecvSession& r = recv_[peer];
    refill(r.ack_frame,
           proto::Frame{proto::FrameKind::Ack, frame.label, nullptr});
    hooks_.send_frame(peer, r.ack_frame,
                      static_cast<std::uint32_t>(proto::wire_size(*r.ack_frame)));

    if (!r.delivered_any || r.last_label != frame.label) {
      r.last_label = frame.label;
      r.delivered_any = true;
      if (frame.payload && hooks_.deliver) hooks_.deliver(peer, frame.payload);
    }
    return;
  }
  // Ack: completes the round-trip for the current label only.
  auto it = send_.find(peer);
  if (it == send_.end()) return;
  SendSession& s = it->second;
  if (s.inflight && frame.label == s.label) {
    s.inflight.reset();
    // Release the act frame's message reference so the producer (the batch
    // planner) sees the payload as uniquely owned again and can rotate it
    // in place; keep the payload buffer itself for reuse when possible.
    if (s.act_frame) {
      if (s.act_frame.use_count() == 1 &&
          !net::Simulator::concurrent_context()) {
        std::get<proto::Frame>(*s.act_frame).payload.reset();
      } else {
        s.act_frame.reset();
      }
    }
    if (s.next) {
      proto::MessagePtr next = std::move(s.next);
      s.next.reset();
      begin_transmission(peer, s, std::move(next));
    }
  }
}

void Endpoint::tick() {
  for (auto& [peer, s] : send_) {
    if (s.inflight) {
      ++retransmissions_;
      transmit(peer, s);
    }
  }
}

void Endpoint::retain_only(std::span<const NodeId> keep_sorted) {
  auto kept = [&](NodeId n) {
    return std::binary_search(keep_sorted.begin(), keep_sorted.end(), n);
  };
  for (auto it = send_.begin(); it != send_.end();) {
    it = kept(it->first) ? std::next(it) : send_.erase(it);
  }
  for (auto it = recv_.begin(); it != recv_.end();) {
    it = kept(it->first) ? std::next(it) : recv_.erase(it);
  }
  // Hard bound, even if the caller's keep-set is oversized.
  while (send_.size() > config_.max_sessions) send_.erase(send_.begin());
  while (recv_.size() > config_.max_sessions) recv_.erase(recv_.begin());
}

bool Endpoint::idle(NodeId peer) const {
  auto it = send_.find(peer);
  return it == send_.end() || !it->second.inflight;
}

void Endpoint::corrupt(Rng& rng) {
  for (auto& [peer, s] : send_) {
    s.label = static_cast<std::uint32_t>(rng.next_below(config_.label_domain));
    if (rng.chance(0.5)) s.inflight.reset();
    // Keep retransmissions in sync with the (possibly scrambled) session
    // state, as the seed did by rebuilding the frame from s.label each send.
    if (s.inflight) {
      refresh_act_frame(s);
    } else {
      s.act_frame.reset();
    }
  }
  for (auto& [peer, r] : recv_) {
    r.last_label = static_cast<std::uint32_t>(rng.next_below(config_.label_domain));
    r.delivered_any = rng.chance(0.5);
  }
}

}  // namespace ren::transport

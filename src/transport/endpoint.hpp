// Self-stabilizing end-to-end transport (paper Section 3.1).
//
// Implements the token-circulation protocol of the communication-channel
// model: per directed session (sender -> receiver) a single frame
// pkt in {act, ack} is logically in transit. The sender retransmits the
// current Act frame (bounded label l) on every timer tick until the matching
// Ack(l) arrives, then advances to the next label; the receiver delivers a
// frame when its label differs from the last delivered label and always
// acknowledges. Starting from an arbitrary state (corrupted labels, stale
// frames in channels) the session re-synchronizes after a bounded number of
// spurious deliveries / false acknowledgments (the paper's Delta_comm <= 3).
//
// Senders keep a single-slot outbox per peer: submitting a new message while
// one is in flight replaces the *next* message. This bounds memory (a
// self-stabilization requirement) and matches Renaissance's semantics, where
// every command batch/query reply supersedes the previous one.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "proto/payload.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::transport {

struct Config {
  std::uint32_t label_domain = 1u << 16;  ///< bounded label space
  std::size_t max_sessions = 4096;        ///< bound on per-node session state
  /// When true (Renaissance semantics), submitting a new message replaces
  /// an unacknowledged in-flight one: every batch/reply carries the full
  /// refreshed state, so the newest message always supersedes. This is what
  /// keeps the channel live while the in-band return path is still broken —
  /// a repair batch must not queue behind an unackable predecessor. When
  /// false, classic stop-and-wait: a new message waits for the current ack.
  bool supersede_inflight = true;
};

class Endpoint {
 public:
  struct Hooks {
    /// Route and transmit one raw frame toward `peer` (in-band!).
    std::function<void(NodeId peer, proto::Frame frame)> send_frame;
    /// Upcall with a delivered application message.
    std::function<void(NodeId peer, proto::MessagePtr message)> deliver;
    /// Invoked once per *new* outbound message (not per retransmission);
    /// feeds the Fig. 9 communication-overhead accounting.
    std::function<void(NodeId peer)> on_new_message;
  };

  Endpoint(NodeId self, Config config, Hooks hooks);

  /// Queue `message` for reliable delivery to `peer`, superseding any
  /// not-yet-started message to the same peer.
  void submit(NodeId peer, proto::Message message);

  /// Handle an incoming frame that originated at `peer`.
  void on_frame(NodeId peer, const proto::Frame& frame);

  /// Retransmit all unacknowledged Act frames (call on the node's timer).
  void tick();

  /// Drop session state for peers outside `keep` (bounds memory while the
  /// reachable set shrinks); the algorithm re-creates sessions on demand.
  void retain_only(const std::set<NodeId>& keep);

  [[nodiscard]] bool idle(NodeId peer) const;
  [[nodiscard]] std::size_t session_count() const {
    return send_.size() + recv_.size();
  }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

  /// Debug/test introspection of a send session toward `peer`.
  struct SessionDebug {
    bool exists = false;
    bool inflight = false;
    bool has_next = false;
    std::uint32_t label = 0;
  };
  [[nodiscard]] SessionDebug debug_send_session(NodeId peer) const {
    SessionDebug d;
    auto it = send_.find(peer);
    if (it == send_.end()) return d;
    d.exists = true;
    d.inflight = it->second.inflight != nullptr;
    d.has_next = it->second.next != nullptr;
    d.label = it->second.label;
    return d;
  }
  [[nodiscard]] SessionDebug debug_recv_session(NodeId peer) const {
    SessionDebug d;
    auto it = recv_.find(peer);
    if (it == recv_.end()) return d;
    d.exists = true;
    d.inflight = it->second.delivered_any;
    d.label = it->second.last_label;
    return d;
  }

  /// Transient-fault hook: scramble labels and in-flight slots (tests only).
  void corrupt(Rng& rng);

 private:
  struct SendSession {
    std::uint32_t label = 0;
    proto::MessagePtr inflight;  ///< current Act payload awaiting Ack
    proto::MessagePtr next;      ///< superseding message, if any
  };
  struct RecvSession {
    std::uint32_t last_label = 0;
    bool delivered_any = false;
  };

  void begin_transmission(NodeId peer, SendSession& s, proto::MessagePtr msg);
  void transmit(NodeId peer, const SendSession& s);

  NodeId self_;
  Config config_;
  Hooks hooks_;
  std::unordered_map<NodeId, SendSession> send_;
  std::unordered_map<NodeId, RecvSession> recv_;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace ren::transport

// Self-stabilizing end-to-end transport (paper Section 3.1).
//
// Implements the token-circulation protocol of the communication-channel
// model: per directed session (sender -> receiver) a single frame
// pkt in {act, ack} is logically in transit. The sender retransmits the
// current Act frame (bounded label l) on every timer tick until the matching
// Ack(l) arrives, then advances to the next label; the receiver delivers a
// frame when its label differs from the last delivered label and always
// acknowledges. Starting from an arbitrary state (corrupted labels, stale
// frames in channels) the session re-synchronizes after a bounded number of
// spurious deliveries / false acknowledgments (the paper's Delta_comm <= 3).
//
// Senders keep a single-slot outbox per peer: submitting a new message while
// one is in flight replaces the *next* message. This bounds memory (a
// self-stabilization requirement) and matches Renaissance's semantics, where
// every command batch/query reply supersedes the previous one.
//
// Zero-copy payloads: messages enter and leave as shared immutable
// proto::MessagePtr; the Act frame payload (a proto::Payload holding the
// Frame) is built once per (label, message) and reused verbatim by every
// retransmission, so a steady retransmit allocates nothing. Resubmitting the
// *identical* message pointer (the batch planner's reuse path) refreshes the
// supersede slot without a new label or allocation: the frame already in
// flight carries exactly that payload, and receiver-side label
// de-duplication stays intact because acknowledgments always flow, so a
// content change always reaches a fresh label eventually.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>

#include "proto/payload.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ren::transport {

struct Config {
  std::uint32_t label_domain = 1u << 16;  ///< bounded label space
  std::size_t max_sessions = 4096;        ///< bound on per-node session state
  /// When true (Renaissance semantics), submitting a new message replaces
  /// an unacknowledged in-flight one: every batch/reply carries the full
  /// refreshed state, so the newest message always supersedes. This is what
  /// keeps the channel live while the in-band return path is still broken —
  /// a repair batch must not queue behind an unackable predecessor. When
  /// false, classic stop-and-wait: a new message waits for the current ack.
  bool supersede_inflight = true;
};

class Endpoint {
 public:
  struct Hooks {
    /// Route and transmit one raw frame payload toward `peer` (in-band!).
    /// The payload always holds a proto::Frame; retransmissions of the same
    /// act frame hand over the same immutable payload object. `bytes` is
    /// the payload's wire size, computed once per frame refresh so routing
    /// layers never re-walk the message for sizing.
    std::function<void(NodeId peer, proto::PayloadPtr frame,
                       std::uint32_t bytes)>
        send_frame;
    /// Upcall with a delivered application message.
    std::function<void(NodeId peer, proto::MessagePtr message)> deliver;
    /// Invoked once per *new* outbound message — including an idempotent
    /// resubmit of the identical payload pointer, which is a logical send
    /// even though no new frame state is created — but not per
    /// retransmission; feeds the Fig. 9 communication-overhead accounting.
    std::function<void(NodeId peer)> on_new_message;
  };

  Endpoint(NodeId self, Config config, Hooks hooks);

  /// Queue the shared immutable `message` for reliable delivery to `peer`,
  /// superseding any not-yet-started message to the same peer. Under the
  /// default supersede configuration, resubmitting the pointer that is
  /// already in flight (or already queued) refreshes that slot in place:
  /// no new label, no allocation. Stop-and-wait mode queues it like any
  /// other submission so both configurations mirror the seed's accounting.
  void submit(NodeId peer, proto::MessagePtr message);
  /// Convenience overload for freshly built one-off messages.
  void submit(NodeId peer, proto::Message message) {
    submit(peer, proto::make_message(std::move(message)));
  }

  /// Handle an incoming frame that originated at `peer`.
  void on_frame(NodeId peer, const proto::Frame& frame);

  /// Retransmit all unacknowledged Act frames (call on the node's timer).
  void tick();

  /// Drop session state for peers outside `keep_sorted` (bounds memory while
  /// the reachable set shrinks); the algorithm re-creates sessions on
  /// demand. `keep_sorted` must be sorted ascending — the hot path hands in
  /// its already-sorted peer scratch instead of materializing a std::set.
  void retain_only(std::span<const NodeId> keep_sorted);

  [[nodiscard]] bool idle(NodeId peer) const;
  [[nodiscard]] std::size_t session_count() const {
    return send_.size() + recv_.size();
  }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

  /// Debug/test introspection of a send session toward `peer`.
  struct SessionDebug {
    bool exists = false;
    bool inflight = false;
    bool has_next = false;
    std::uint32_t label = 0;
  };
  [[nodiscard]] SessionDebug debug_send_session(NodeId peer) const {
    SessionDebug d;
    auto it = send_.find(peer);
    if (it == send_.end()) return d;
    d.exists = true;
    d.inflight = it->second.inflight != nullptr;
    d.has_next = it->second.next != nullptr;
    d.label = it->second.label;
    return d;
  }
  [[nodiscard]] SessionDebug debug_recv_session(NodeId peer) const {
    SessionDebug d;
    auto it = recv_.find(peer);
    if (it == recv_.end()) return d;
    d.exists = true;
    d.inflight = it->second.delivered_any;
    d.label = it->second.last_label;
    return d;
  }

  /// Transient-fault hook: scramble labels and in-flight slots (tests only).
  void corrupt(Rng& rng);

 private:
  struct SendSession {
    std::uint32_t label = 0;
    proto::MessagePtr inflight;  ///< current Act payload awaiting Ack
    proto::MessagePtr next;      ///< superseding message, if any
    /// The Act frame payload for (label, inflight), built once and reused by
    /// every retransmission. Non-const so a uniquely-owned buffer can be
    /// refilled in place when the label advances.
    std::shared_ptr<proto::Payload> act_frame;
    std::uint32_t act_bytes = 0;  ///< wire size of act_frame, cached
  };
  struct RecvSession {
    std::uint32_t last_label = 0;
    bool delivered_any = false;
    std::shared_ptr<proto::Payload> ack_frame;  ///< reused Ack payload buffer
  };

  void begin_transmission(NodeId peer, SendSession& s, proto::MessagePtr msg);
  void refresh_act_frame(SendSession& s);
  void transmit(NodeId peer, const SendSession& s);

  NodeId self_;
  Config config_;
  Hooks hooks_;
  std::unordered_map<NodeId, SendSession> send_;
  std::unordered_map<NodeId, RecvSession> recv_;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace ren::transport

#include "util/log.hpp"

#include <cstdarg>

namespace ren {

namespace {
LogLevel g_level = LogLevel::None;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  const char* prefix = "";
  switch (level) {
    case LogLevel::Error: prefix = "[error] "; break;
    case LogLevel::Info: prefix = "[info ] "; break;
    case LogLevel::Debug: prefix = "[debug] "; break;
    case LogLevel::Trace: prefix = "[trace] "; break;
    case LogLevel::None: return;
  }
  std::fputs(prefix, stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace ren

// Minimal leveled logger. Off by default so simulations stay fast; examples
// turn on Info/Debug to narrate protocol progress.
#pragma once

#include <cstdio>
#include <string>

namespace ren {

enum class LogLevel : int { None = 0, Error = 1, Info = 2, Debug = 3, Trace = 4 };

/// Global log level (not thread-local; the simulator is single-threaded by
/// design, matching the paper's interleaving execution model).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

#define REN_LOG(level, ...)                                        \
  do {                                                             \
    if (static_cast<int>(::ren::log_level()) >=                    \
        static_cast<int>(::ren::LogLevel::level))                  \
      ::ren::detail::vlog(::ren::LogLevel::level, __VA_ARGS__);    \
  } while (0)

}  // namespace ren

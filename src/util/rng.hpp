// Deterministic pseudo-random number generation.
//
// Every experiment derives all randomness (topology synthesis, fault
// selection, packet-level faults, jitter) from a single seeded Rng so runs
// are exactly reproducible. xoshiro256** seeded via SplitMix64, per the
// reference implementations by Blackman & Vigna (public domain).
#pragma once

#include <array>
#include <cstdint>

namespace ren {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// SplitMix64 stream split: derive the seed of an independent stream from
  /// a base seed and a stream id. The parallel simulation kernel gives every
  /// node the stream `Rng(Rng::stream_seed(seed, node_id))`; the derivation
  /// depends only on (seed, stream), never on execution order, so per-node
  /// draw sequences are identical for any shard count.
  static constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                             std::uint64_t stream) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased only below
    // 2^-64, irrelevant here).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Derive an independent child generator (for per-subsystem streams).
  Rng fork() { return Rng(next_u64()); }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename Container>
  auto& pick(Container& c) {
    return c[next_below(c.size())];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ren

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ren {

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Sample::quantile(double q) const {
  if (values_.empty()) return 0.0;
  std::vector<double> s = values_;
  std::sort(s.begin(), s.end());
  if (q <= 0) return s.front();
  if (q >= 1) return s.back();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double Sample::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

ViolinSummary Sample::violin() const {
  ViolinSummary v;
  v.n = values_.size();
  if (values_.empty()) return v;
  v.min = min();
  v.q1 = quantile(0.25);
  v.median = median();
  v.q3 = quantile(0.75);
  v.max = max();
  v.mean = mean();
  return v;
}

PercentileSummary Sample::percentiles() const {
  PercentileSummary p;
  p.n = values_.size();
  if (values_.empty()) return p;
  p.mean = mean();
  p.min = min();
  p.p50 = quantile(0.5);
  p.p90 = quantile(0.9);
  p.p99 = quantile(0.99);
  p.max = max();
  return p;
}

Sample Sample::drop_extrema() const {
  if (values_.size() <= 2) return Sample{};
  std::vector<double> s = values_;
  std::sort(s.begin(), s.end());
  return Sample(std::vector<double>(s.begin() + 1, s.end() - 1));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2)
    throw std::invalid_argument("pearson: series must have equal size >= 2");
  const auto n = static_cast<double>(a.size());
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0 || vb == 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::string format_violin(const ViolinSummary& v, int precision) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "med=%.*f [q1=%.*f q3=%.*f] (min=%.*f max=%.*f) n=%zu",
                precision, v.median, precision, v.q1, precision, v.q3,
                precision, v.min, precision, v.max, v.n);
  return buf;
}

}  // namespace ren

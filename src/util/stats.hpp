// Descriptive statistics used by the benchmark harnesses to reproduce the
// paper's violin plots (median, quartiles, extrema) and the Fig. 17
// correlation table (Pearson r).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ren {

/// Five-number summary matching the paper's violin plots: the white dot
/// (median), the thick black line (q1..q3) and the whiskers (min..max).
struct ViolinSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};

/// Tail-oriented summary used by the scenario campaign aggregates.
struct PercentileSummary {
  double mean = 0, min = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;
  std::size_t n = 0;
};

class Sample {
 public:
  Sample() = default;
  explicit Sample(std::vector<double> values) : values_(std::move(values)) {}

  void add(double v) { values_.push_back(v); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Linear-interpolation quantile, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  [[nodiscard]] ViolinSummary violin() const;
  [[nodiscard]] PercentileSummary percentiles() const;

  /// The paper dismisses the two extrema from 20 measurements before
  /// averaging (Section 6.4); this returns a copy with min & max removed.
  [[nodiscard]] Sample drop_extrema() const;

 private:
  std::vector<double> values_;
};

/// Pearson correlation coefficient of two equal-length series (Fig. 17).
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Render a one-line violin summary, e.g. "med=12.3 [q1=10.0 q3=14.1] (min=9 max=16)".
std::string format_violin(const ViolinSummary& v, int precision = 1);

}  // namespace ren

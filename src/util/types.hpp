// Fundamental value types shared across all Renaissance subsystems.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace ren {

/// Identifier of a node (controller, switch, or host) in the network.
/// Node ids are dense: 0..N-1. kNoNode marks "no node" / wildcard.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Simulated time in microseconds since the start of the run.
using Time = std::int64_t;
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// Convenience constructors for simulated durations.
constexpr Time usec(std::int64_t v) { return v; }
constexpr Time msec(std::int64_t v) { return v * 1000; }
constexpr Time sec(std::int64_t v) { return v * 1000 * 1000; }
constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e6; }

/// Rule priority. Higher value = higher priority (the paper's `prt`).
using Priority = std::int32_t;

/// Kind of a node. The paper partitions P into P_C (controllers) and
/// P_S (switches); hosts exist only at the data-plane edge (Section 2).
enum class NodeKind : std::uint8_t { Switch, Controller, Host };

inline const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::Switch: return "switch";
    case NodeKind::Controller: return "controller";
    case NodeKind::Host: return "host";
  }
  return "?";
}

}  // namespace ren

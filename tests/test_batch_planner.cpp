// The line-19 batch planner must be observationally equivalent to building
// every per-peer CommandBatch from scratch each tick — under randomized
// fault storms, across rotations/reuse/sharing, and through the built-in
// scenario timelines with Config::paranoid_batches live. The differential
// reference inside BatchPlanner::check_paranoid is written against the
// seed's original std::set fan-out and compares canonical byte encodings.
#include <gtest/gtest.h>

#include "core/batch_planner.hpp"
#include "test_helpers.hpp"

namespace ren::core {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

sim::ExperimentConfig paranoid_batches_config(const std::string& topology,
                                              int controllers,
                                              std::uint64_t seed = 1) {
  auto cfg = fast_config(topology, controllers, /*kappa=*/2, seed);
  cfg.batches_paranoid = true;
  return cfg;
}

TEST(BatchKey, EqualityAndRotationClasses) {
  const auto rules = std::make_shared<const proto::RuleList>();
  proto::BatchKey a;
  a.tag = proto::Tag{1, 7};
  a.retention = 3;
  a.rules = rules;
  a.victims = {4, 9};
  proto::BatchKey b = a;
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.same_except_tag(b));
  b.tag = proto::Tag{1, 8};
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.same_except_tag(b));  // the rotation fast path
  b.rules = std::make_shared<const proto::RuleList>(*rules);
  EXPECT_FALSE(a.same_except_tag(b));  // same bytes, different identity
  EXPECT_EQ(a.command_count(), 4u + 2u * 2u);
  proto::BatchKey q;
  q.query_only = true;
  EXPECT_EQ(q.command_count(), 2u);
}

TEST(BatchKey, BuildBatchMatchesKeyShape) {
  proto::BatchKey k;
  k.tag = proto::Tag{2, 5};
  k.retention = 2;
  k.victims = {3};
  k.rules = std::make_shared<const proto::RuleList>();
  const proto::Message m = proto::build_batch(7, k);
  const auto& b = std::get<proto::CommandBatch>(m);
  EXPECT_EQ(b.from, 7);
  ASSERT_EQ(b.commands.size(), k.command_count());
  EXPECT_TRUE(std::holds_alternative<proto::NewRoundCmd>(b.commands.front()));
  EXPECT_TRUE(std::holds_alternative<proto::QueryCmd>(b.commands.back()));
}

TEST(BatchPlannerParanoid, BootstrapAgrees) {
  sim::Experiment exp(paranoid_batches_config("B4", 3));
  bootstrap_or_fail(exp);
  // Every fan-out on the way up ran the from-scratch differential.
  EXPECT_GT(exp.controller(0).batch_planner().stats().paranoid_checks, 0u);
}

TEST(BatchPlannerParanoid, SteadyStateRotatesWithoutRebuilding) {
  sim::Experiment exp(fast_config("B4", 3));
  bootstrap_or_fail(exp);
  for (int i = 0; i < 10; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(50));
  }
  const auto before = exp.controller(0).batch_planner().stats();
  for (int i = 0; i < 20; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(50));
  }
  const auto after = exp.controller(0).batch_planner().stats();
  // Converged rounds flip the tag every tick, but tag churn alone must
  // never rebuild a batch: every planned batch is a reuse, a rotation, or a
  // shared alias of one (the clone of a still-referenced shared message).
  EXPECT_EQ(after.rebuilt, before.rebuilt);
  EXPECT_GT(after.planned, before.planned);
  EXPECT_GT(after.rotated + after.reused + after.shared + after.cloned,
            before.rotated + before.reused + before.shared + before.cloned);
  // And the fan-out *gate* carries the steady state: no input moved, so the
  // whole fan-out is served as a rotation without a single key re-derived.
  EXPECT_EQ(after.full_plans, before.full_plans);
  EXPECT_GT(after.gate_rotations, before.gate_rotations);
}

TEST(BatchPlannerParanoid, GateReopensOnChurnAndStaysCorrect) {
  // Fault churn must force full re-plans (the gate is input-keyed), and the
  // live differential guarantees the rotation ticks in between were exact.
  auto cfg = paranoid_batches_config("B4", 3, /*seed=*/11);
  sim::Experiment exp(cfg);
  bootstrap_or_fail(exp);
  const auto before = exp.controller(0).batch_planner().stats();
  auto cp = exp.control_plane();
  Rng rng(0x9a7e);
  faults::fail_random_links(cp, rng, 2, /*keep_connected=*/true);
  for (int i = 0; i < 40; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(25));
  }
  faults::restore_all_links(cp);
  const auto r = exp.run_until_legitimate(sec(60));
  ASSERT_TRUE(r.converged) << r.last_reason;
  const auto after = exp.controller(0).batch_planner().stats();
  EXPECT_GT(after.full_plans, before.full_plans);
  EXPECT_GT(after.paranoid_checks, before.paranoid_checks);
}

TEST(BatchPlannerParanoid, FaultStormAgrees) {
  sim::Experiment exp(paranoid_batches_config("Clos", 3, /*seed=*/7));
  bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  Rng storm(0xba7c4b47ULL);
  for (int round = 0; round < 6; ++round) {
    switch (storm.next_below(5)) {
      case 0:
        faults::kill_random_controllers(cp, storm, 1);
        break;
      case 1:
        faults::kill_random_switches(cp, storm, 1);
        break;
      case 2:
        faults::fail_random_links(cp, storm, 2, /*keep_connected=*/true);
        break;
      case 3:
        faults::corrupt_all_state(cp, storm);
        break;
      case 4:
        faults::restart_all_nodes(cp);
        faults::restore_all_links(cp);
        break;
    }
    // A planner divergence throws std::logic_error out of the controller's
    // do-forever task and would abort the run here.
    for (int i = 0; i < 40; ++i) {
      exp.sim().run_until(exp.sim().now() + msec(25));
    }
  }
  faults::restart_all_nodes(cp);
  faults::restore_all_links(cp);
  const auto r = exp.run_until_legitimate(sec(120));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(BatchPlannerParanoid, ScenarioTimelinesPass) {
  // Every built-in fault timeline with the batch differential live on every
  // controller tick (acceptance criterion).
  scenario::RunnerOptions opt;
  opt.threads = 1;
  opt.paranoid_batches = true;
  for (const auto& name : scenario::builtin_names()) {
    scenario::Scenario s = scenario::builtin(name);
    s.topologies = {"B4"};
    s.controllers = {3};
    s.trials = 1;
    const auto out = scenario::run_trial(s, "B4", 3, /*trial=*/0, opt);
    EXPECT_TRUE(out.ok) << name << ": " << out.error;
  }
}

TEST(BatchPlanner, DisabledModeStillConverges) {
  auto cfg = fast_config("B4", 3);
  cfg.plan_batches = false;  // the seed's rebuild-every-tick baseline
  sim::Experiment exp(cfg);
  bootstrap_or_fail(exp);
  EXPECT_EQ(exp.controller(0).batch_planner().stats().planned, 0u);
}

TEST(BatchPlanner, FigNineAccountingMatchesTheBaseline) {
  // Planned and baseline fan-out must agree on the logical send accounting:
  // same per-controller command and message counts for the same seeded
  // bootstrap (what keeps bench_fig09 unchanged by default).
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    std::vector<std::uint64_t> commands[2], messages[2];
    for (const bool planned : {false, true}) {
      auto cfg = fast_config("B4", 3, /*kappa=*/2, seed);
      cfg.plan_batches = planned;
      sim::Experiment exp(cfg);
      const auto r = exp.run_until_legitimate(sec(60));
      ASSERT_TRUE(r.converged) << r.last_reason;
      commands[planned] = r.commands;
      messages[planned] = r.messages;
    }
    EXPECT_EQ(commands[0], commands[1]) << "seed " << seed;
    EXPECT_EQ(messages[0], messages[1]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ren::core

// Integration: in-band bootstrap from empty switch configurations
// (the paper's Section 6.4.1 experiment, as correctness tests).
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::sim {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

struct BootCase {
  const char* topology;
  int controllers;
};

class Bootstrap : public ::testing::TestWithParam<BootCase> {};

TEST_P(Bootstrap, ReachesLegitimacy) {
  const auto [name, nc] = GetParam();
  auto cfg = fast_config(name, nc);
  cfg.theta = std::string(name) == "B4" || std::string(name) == "Clos" ? 10 : 30;
  Experiment exp(cfg);
  const auto r = exp.run_until_legitimate(sec(120));
  ASSERT_TRUE(r.converged) << r.last_reason;
  // After legitimacy every switch is managed by every controller.
  std::vector<NodeId> expected;
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    expected.push_back(exp.controller(k).id());
  }
  for (auto* s : exp.switches()) {
    auto got = s->managers();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Networks, Bootstrap,
    ::testing::Values(BootCase{"B4", 1}, BootCase{"B4", 3}, BootCase{"B4", 7},
                      BootCase{"Clos", 1}, BootCase{"Clos", 3},
                      BootCase{"Telstra", 3}, BootCase{"Telstra", 7},
                      BootCase{"ATT", 3}, BootCase{"EBONE", 3}),
    [](const auto& info) {
      return std::string(info.param.topology) + "_c" +
             std::to_string(info.param.controllers);
    });

TEST(BootstrapProperties, EverySeedConverges) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = fast_config("B4", 3, 2, seed);
    Experiment exp(cfg);
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "seed " << seed << ": " << r.last_reason;
  }
}

TEST(BootstrapProperties, TimeGrowsWithDiameterAcrossNetworks) {
  // Lemma 5 predicts O(D) bootstrap; check the weak monotone trend the
  // paper reports (Fig. 5): the largest-diameter network takes at least as
  // long as the smallest one.
  auto time_for = [](const char* name) {
    auto cfg = fast_config(name, 3);
    cfg.theta = 10;
    Experiment exp(cfg);
    auto r = exp.run_until_legitimate(sec(120));
    EXPECT_TRUE(r.converged) << name;
    return r.seconds;
  };
  const double t_clos = time_for("Clos");      // D = 4
  const double t_ebone = time_for("EBONE");    // D = 11
  EXPECT_GE(t_ebone, t_clos * 0.8);
}

TEST(BootstrapProperties, ConvergedStateIsStable) {
  auto cfg = fast_config("Clos", 3);
  Experiment exp(cfg);
  bootstrap_or_fail(exp);
  // No faults => stays legitimate for a long window.
  for (int i = 0; i < 20; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(200));
    const auto st = exp.monitor().check();
    EXPECT_TRUE(st.legitimate) << st.reason;
  }
}

TEST(BootstrapProperties, ControllersKeepQueryingForever) {
  // Self-stabilizing algorithms can never stop sending (Section 3.5).
  auto cfg = fast_config("B4", 2);
  Experiment exp(cfg);
  bootstrap_or_fail(exp);
  const auto sent0 = exp.sim().counters().packets_sent;
  exp.sim().run_until(exp.sim().now() + sec(2));
  EXPECT_GT(exp.sim().counters().packets_sent, sent0 + 100);
}

TEST(BootstrapProperties, SurvivesLossyLinks) {
  // The self-stabilizing transport masks packet omission/duplication/
  // reordering (Section 3.1).
  auto cfg = fast_config("B4", 2);
  cfg.link_loss = 0.05;
  cfg.link_duplicate = 0.05;
  cfg.link_reorder = 0.1;
  Experiment exp(cfg);
  const auto r = exp.run_until_legitimate(sec(120));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(BootstrapProperties, WorksWithKappaZeroAndThree) {
  for (int kappa : {0, 1, 3}) {
    auto cfg = fast_config("Clos", 2, kappa);
    Experiment exp(cfg);
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "kappa=" << kappa << ": " << r.last_reason;
  }
}

}  // namespace
}  // namespace ren::sim

// Sparse connectivity machinery (flows/connectivity.hpp): differential
// tests against a local dense-residual reference (the algorithm the seed
// used before the sparse rewrite), plus the oracle's memo/certificate
// behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "flows/connectivity.hpp"
#include "flows/graph.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace ren::flows {
namespace {

// --- Dense reference ---------------------------------------------------------
// The seed's unit-capacity max-flow: BFS augmentation over a flat n x n
// residual matrix. Kept here (and only here) as the differential oracle.

int dense_max_flow(const Graph& g, int s, int t) {
  const int n = g.n();
  std::vector<std::int16_t> cap(static_cast<std::size_t>(n) * n, 0);
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) cap[static_cast<std::size_t>(u) * n + v] = 1;
  }
  int flow = 0;
  std::vector<int> parent(static_cast<std::size_t>(n));
  while (true) {
    std::fill(parent.begin(), parent.end(), -1);
    parent[static_cast<std::size_t>(s)] = s;
    std::vector<int> queue{s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      for (int v = 0; v < n; ++v) {
        if (parent[static_cast<std::size_t>(v)] == -1 &&
            cap[static_cast<std::size_t>(u) * n + v] > 0) {
          parent[static_cast<std::size_t>(v)] = u;
          queue.push_back(v);
        }
      }
    }
    if (parent[static_cast<std::size_t>(t)] == -1) return flow;
    for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
      const int u = parent[static_cast<std::size_t>(v)];
      cap[static_cast<std::size_t>(u) * n + v] -= 1;
      cap[static_cast<std::size_t>(v) * n + u] += 1;
    }
    ++flow;
  }
}

int dense_edge_connectivity(const Graph& g) {
  if (g.n() < 2 || !g.connected()) return 0;
  int best = g.n();
  for (int t = 1; t < g.n(); ++t) best = std::min(best, dense_max_flow(g, 0, t));
  return best;
}

/// Random connected-ish graph: a spanning path plus extra random edges.
Graph random_graph(Rng& rng, int n, int extra_edges) {
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(v - 1, v);
  for (int i = 0; i < extra_edges; ++i) {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
  }
  return g;
}

// --- SparseMaxFlow -------------------------------------------------------------

TEST(SparseMaxFlow, MatchesDenseOnRandomGraphs) {
  Rng rng(0x5eed);
  for (int round = 0; round < 60; ++round) {
    const int n = 4 + static_cast<int>(rng.next_below(30));
    Graph g = random_graph(rng, n, n * 2);
    SparseMaxFlow flow(g);
    for (int pair = 0; pair < 8; ++pair) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (s == t) t = (t + 1) % n;
      EXPECT_EQ(flow.run(s, t, n), dense_max_flow(g, s, t))
          << "round " << round << " pair " << s << "->" << t;
    }
  }
}

TEST(SparseMaxFlow, CapLimitTruncatesExactly) {
  Rng rng(7);
  Graph g = random_graph(rng, 24, 60);
  SparseMaxFlow flow(g);
  const int full = flow.run(0, 23, 24);
  for (int cap = 0; cap <= full + 2; ++cap) {
    EXPECT_EQ(flow.run(0, 23, cap), std::min(cap, full));
  }
}

TEST(SparseMaxFlow, ReassignReusesBuffers) {
  SparseMaxFlow flow;
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    Graph g = random_graph(rng, 10 + round, 20);
    flow.assign(g);
    EXPECT_EQ(flow.n(), g.n());
    EXPECT_EQ(flow.run(0, g.n() - 1, g.n()), dense_max_flow(g, 0, g.n() - 1));
  }
}

// --- Graph methods on the sparse path ------------------------------------------

TEST(GraphConnectivity, EdgeConnectivityMatchesDense) {
  Rng rng(0xc0ffee);
  for (int round = 0; round < 40; ++round) {
    const int n = 3 + static_cast<int>(rng.next_below(20));
    const Graph g = random_graph(rng, n, static_cast<int>(rng.next_below(40)));
    EXPECT_EQ(g.edge_connectivity(), dense_edge_connectivity(g))
        << "round " << round;
  }
}

TEST(GraphConnectivity, DisconnectedGraphIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(g.edge_connectivity(), 0);
  EXPECT_EQ(g.edge_disjoint_path_count(0, 2), 0);
}

TEST(GraphFingerprint, ContentEqualGraphsMatch) {
  Graph a(5), b(5);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);  // insertion order must not matter
  b.add_edge(0, 1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.add_edge(3, 4);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(Graph(5).fingerprint(), Graph(6).fingerprint());
}

// --- ConnectivityOracle ---------------------------------------------------------

TEST(ConnectivityOracle, AnswersMatchDenseReference) {
  Rng rng(0xabcde);
  for (int round = 0; round < 25; ++round) {
    const int n = 4 + static_cast<int>(rng.next_below(16));
    const Graph g = random_graph(rng, n, n);
    ConnectivityOracle oracle;
    oracle.assign(g);
    EXPECT_EQ(oracle.edge_connectivity(), dense_edge_connectivity(g));
    for (int pair = 0; pair < 6; ++pair) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (s == t) t = (t + 1) % n;
      const int exact = dense_max_flow(g, s, t);
      EXPECT_EQ(oracle.pair_connectivity(s, t), exact);
      for (int k = 0; k <= exact + 1; ++k) {
        EXPECT_EQ(oracle.at_least(s, t, k), k <= exact)
            << s << "->" << t << " k=" << k;
      }
    }
  }
}

TEST(ConnectivityOracle, SameFingerprintKeepsMemos) {
  Graph g = topo::make_fat_tree(8).switch_graph;
  ConnectivityOracle oracle;
  oracle.assign(g);
  const int lambda = oracle.edge_connectivity();
  const auto runs_before = oracle.stats().maxflow_runs;
  oracle.assign(g);  // identical content: memos must survive
  EXPECT_EQ(oracle.edge_connectivity(), lambda);
  EXPECT_EQ(oracle.stats().maxflow_runs, runs_before);
  EXPECT_EQ(oracle.stats().rebinds, 1u);  // only the first bind
  EXPECT_GE(oracle.stats().memo_hits, 1u);
}

TEST(ConnectivityOracle, ChangedGraphRebindsAndDropsMemos) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  ConnectivityOracle oracle;
  oracle.assign(g);
  EXPECT_EQ(oracle.edge_connectivity(), 2);
  g.add_edge(0, 2);
  oracle.assign(g);
  EXPECT_EQ(oracle.stats().rebinds, 2u);
  EXPECT_EQ(oracle.pair_connectivity(0, 2), 3);
}

TEST(ConnectivityOracle, DegreeBoundShortCircuits) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  ConnectivityOracle oracle;
  oracle.assign(g);
  EXPECT_FALSE(oracle.at_least(0, 3, 2));  // deg(0) = 1 < 2
  EXPECT_EQ(oracle.stats().degree_hits, 1u);
  EXPECT_EQ(oracle.stats().maxflow_runs, 0u);
}

TEST(ConnectivityOracle, GreedyCertificateAvoidsMaxflow) {
  // A 4-cycle: two edge-disjoint 0->2 paths exist and greedy BFS finds both,
  // so at_least(0, 2, 2) must not need an exact max-flow.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  ConnectivityOracle oracle;
  oracle.assign(g);
  EXPECT_TRUE(oracle.at_least(0, 2, 2));
  EXPECT_EQ(oracle.stats().maxflow_runs, 0u);
  EXPECT_GE(oracle.stats().greedy_hits, 1u);
}

}  // namespace
}  // namespace ren::flows

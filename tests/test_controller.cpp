#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::core {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

TEST(Controller, RoundsAdvanceAfterDiscovery) {
  sim::Experiment exp(fast_config("B4", 1));
  bootstrap_or_fail(exp);
  const auto rounds0 = exp.controller(0).stats().rounds_started;
  exp.sim().run_until(exp.sim().now() + sec(2));
  // Rounds keep completing — the algorithm never terminates (Section 3.5).
  EXPECT_GT(exp.controller(0).stats().rounds_started, rounds0 + 5);
}

TEST(Controller, TagsChangePerRound) {
  sim::Experiment exp(fast_config("B4", 1));
  bootstrap_or_fail(exp);
  const auto t1 = exp.controller(0).curr_tag();
  exp.sim().run_until(exp.sim().now() + sec(1));
  const auto t2 = exp.controller(0).curr_tag();
  EXPECT_FALSE(t1 == t2);
  EXPECT_EQ(t1.owner, exp.controller(0).id());
  EXPECT_EQ(t2.owner, exp.controller(0).id());
}

TEST(Controller, ReplyDbHoldsWholeNetwork) {
  auto cfg = fast_config("Clos", 2);
  sim::Experiment exp(cfg);
  bootstrap_or_fail(exp);
  // 20 switches + 1 peer controller (self is synthesized, not stored).
  EXPECT_EQ(exp.controller(0).reply_db().size(), 21u);
}

TEST(Controller, CResetOnOverflowThenRediscovery) {
  auto cfg = fast_config("B4", 1);
  cfg.max_replies = 5;  // far below 13 nodes => must C-reset while growing
  sim::Experiment exp(cfg);
  exp.sim().run_until(sec(10));
  EXPECT_GT(exp.controller(0).c_resets(), 0u);
  // Part (3) of Lemma 2 requires boundedness, not convergence, with an
  // undersized replyDB; the view still covers the direct neighborhood.
  EXPECT_LE(exp.controller(0).reply_db().size(), 5u);
}

TEST(Controller, NonAdaptiveVariantNeverCResets) {
  auto cfg = fast_config("B4", 2);
  cfg.memory_adaptive = false;
  cfg.max_replies = 5;
  sim::Experiment exp(cfg);
  exp.sim().run_until(sec(5));
  EXPECT_EQ(exp.controller(0).c_resets(), 0u);
  EXPECT_LE(exp.controller(0).reply_db().size(), 5u);  // LRU-bounded
}

TEST(Controller, NonAdaptiveVariantSendsNoDeletions) {
  auto cfg = fast_config("B4", 3);
  cfg.memory_adaptive = false;
  sim::Experiment exp(cfg);
  // The Section 8.1 variant relies on switch-side eviction only. (It can
  // not reach our strict Definition-1 legitimacy since stale entries of
  // dead controllers are never purged actively; run time-bounded instead.)
  exp.sim().run_until(sec(10));
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    EXPECT_EQ(exp.controller(k).stats().deletions_sent, 0u);
  }
}

TEST(Controller, StaleManagerCleanupAfterPeerDeath) {
  auto cfg = fast_config("B4", 3);
  sim::Experiment exp(cfg);
  bootstrap_or_fail(exp);
  const NodeId victim = exp.controller(2).id();
  exp.sim().kill_node(victim);
  bootstrap_or_fail(exp);  // re-legitimacy implies cleanup everywhere
  for (auto* s : exp.switches()) {
    for (NodeId m : s->managers()) EXPECT_NE(m, victim);
    EXPECT_FALSE(s->rule_table().has_rules_of(victim));
  }
}

TEST(Controller, IllegitimateDeletionsAreBounded) {
  // Theorem 1: deletions that hit live controllers happen only boundedly
  // often (here: during convergence), never in steady state.
  auto cfg = fast_config("B4", 3);
  sim::Experiment exp(cfg);
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    std::vector<core::Controller*> all = exp.controllers();
    exp.controller(k).set_liveness_oracle([all](NodeId n) {
      for (auto* c : all) {
        if (c->id() == n) return c->alive();
      }
      return false;
    });
  }
  bootstrap_or_fail(exp);
  std::uint64_t after_boot = 0;
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    after_boot += exp.controller(k).stats().illegitimate_deletions;
  }
  exp.sim().run_until(exp.sim().now() + sec(5));
  std::uint64_t later = 0;
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    later += exp.controller(k).stats().illegitimate_deletions;
  }
  EXPECT_EQ(later, after_boot) << "illegitimate deletions in steady state";
}

TEST(Controller, FrozenControllerStopsIteratingButPeersCover) {
  auto cfg = fast_config("B4", 2);
  sim::Experiment exp(cfg);
  bootstrap_or_fail(exp);
  exp.controller(1).set_frozen(true);
  const auto it0 = exp.controller(1).stats().iterations;
  exp.sim().run_until(exp.sim().now() + sec(2));
  EXPECT_EQ(exp.controller(1).stats().iterations, it0);
  EXPECT_GT(exp.controller(0).stats().iterations, 0u);
  exp.controller(1).set_frozen(false);
  exp.sim().run_until(exp.sim().now() + sec(2));
  EXPECT_GT(exp.controller(1).stats().iterations, it0);
}

TEST(Controller, FusedViewMatchesTruthAfterBootstrap) {
  sim::Experiment exp(fast_config("Telstra", 3));
  bootstrap_or_fail(exp);
  const auto truth = exp.monitor().true_view();
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    EXPECT_TRUE(exp.controller(k).fused_view() == truth);
  }
}

TEST(Controller, RepliesWithStaleTagsAreDiscarded) {
  sim::Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  exp.sim().run_until(exp.sim().now() + sec(2));
  // Both accepted and discarded happen during normal round turnover.
  const auto& st = exp.controller(0).stats();
  EXPECT_GT(st.replies_accepted, 0u);
  EXPECT_LT(st.replies_discarded_tag, st.replies_accepted);
}

}  // namespace
}  // namespace ren::core

#include <gtest/gtest.h>

#include <map>

#include "detect/theta_detector.hpp"

namespace ren::detect {
namespace {

struct Harness {
  explicit Harness(int theta) : det(0, ThetaDetector::Config{theta}) {}

  /// One detection round; `alive` answers probes.
  void round(const std::map<NodeId, bool>& alive) {
    // Feed replies for the round the detector asked about last tick, then
    // tick (which evaluates and probes again) — mirrors the node wiring.
    det.tick([this](NodeId n, proto::Probe) { probed.push_back(n); });
    for (const auto& [n, up] : alive) {
      if (up) det.on_probe_reply(n);
    }
  }

  ThetaDetector det;
  std::vector<NodeId> probed;
};

TEST(ThetaDetector, NeighborsConfirmedAfterFirstReply) {
  Harness h(3);
  h.det.set_candidates({1, 2});
  EXPECT_TRUE(h.det.live().empty());  // unconfirmed at start
  h.round({{1, true}, {2, true}});
  h.round({{1, true}, {2, true}});
  EXPECT_EQ(h.det.live(), (std::vector<NodeId>{1, 2}));
}

TEST(ThetaDetector, HostsNeverEnterTheNeighborhood) {
  Harness h(3);
  h.det.set_candidates({1, 2, 99});  // 99 is a host: never replies
  for (int i = 0; i < 20; ++i) h.round({{1, true}, {2, true}});
  EXPECT_EQ(h.det.live(), (std::vector<NodeId>{1, 2}));
  EXPECT_FALSE(h.det.is_live(99));
}

TEST(ThetaDetector, SuspectsAfterThetaRelativeMisses) {
  const int theta = 5;
  Harness h(theta);
  h.det.set_candidates({1, 2});
  h.round({{1, true}, {2, true}});
  h.round({{1, true}, {2, true}});
  // 2 dies; 1 keeps answering.
  for (int i = 0; i < theta - 1; ++i) {
    h.round({{1, true}});
    EXPECT_TRUE(h.det.is_live(2)) << "suspected too early at round " << i;
  }
  h.round({{1, true}});
  h.round({{1, true}});  // evaluation happens at the next tick
  EXPECT_FALSE(h.det.is_live(2));
  EXPECT_TRUE(h.det.is_live(1));
}

TEST(ThetaDetector, NoEvidenceNoSuspicion) {
  // If *nobody* answers (e.g. the node itself is partitioned), relative
  // counting gives no evidence, so nobody gets suspected.
  Harness h(2);
  h.det.set_candidates({1, 2});
  h.round({{1, true}, {2, true}});
  h.round({{1, true}, {2, true}});
  for (int i = 0; i < 10; ++i) h.round({});
  EXPECT_TRUE(h.det.is_live(1));
  EXPECT_TRUE(h.det.is_live(2));
}

TEST(ThetaDetector, RecoversOnReply) {
  const int theta = 3;
  Harness h(theta);
  h.det.set_candidates({1, 2});
  h.round({{1, true}, {2, true}});
  for (int i = 0; i < theta + 2; ++i) h.round({{1, true}});
  EXPECT_FALSE(h.det.is_live(2));
  h.round({{1, true}, {2, true}});
  h.round({{1, true}, {2, true}});
  EXPECT_TRUE(h.det.is_live(2));
}

TEST(ThetaDetector, CandidateChangesPreserveState) {
  Harness h(3);
  h.det.set_candidates({1, 2});
  h.round({{1, true}, {2, true}});
  h.round({{1, true}, {2, true}});
  h.det.set_candidates({1, 2, 3});  // port added
  EXPECT_TRUE(h.det.is_live(1));
  h.det.set_candidates({1});  // ports removed
  EXPECT_FALSE(h.det.is_live(2));
  EXPECT_TRUE(h.det.is_live(1));
}

TEST(ThetaDetector, ProbesAllCandidatesEveryRound) {
  Harness h(3);
  h.det.set_candidates({4, 5, 6});
  h.round({});
  EXPECT_EQ(h.probed, (std::vector<NodeId>{4, 5, 6}));
}

TEST(ThetaDetector, LivenessEpochBumpsExactlyWhenTheReportedSetChanges) {
  Harness h(2);
  h.det.set_candidates({1, 2});
  const auto e0 = h.det.liveness_epoch();
  h.round({});  // nothing replied: still unconfirmed, no change
  EXPECT_EQ(h.det.liveness_epoch(), e0);
  h.round({{1, true}, {2, true}});  // replies land: still pre-tick state
  h.round({{1, true}, {2, true}});
  const auto e1 = h.det.liveness_epoch();
  EXPECT_GT(e1, e0);  // both neighbors entered the reported set
  // Quiet rounds with the same answers leave the epoch untouched.
  for (int i = 0; i < 5; ++i) h.round({{1, true}, {2, true}});
  EXPECT_EQ(h.det.liveness_epoch(), e1);
  // Relative misses eventually suspect 2: one bump when it drops out.
  for (int i = 0; i < 4; ++i) h.round({{1, true}, {2, false}});
  const auto e2 = h.det.liveness_epoch();
  EXPECT_GT(e2, e1);
  EXPECT_EQ(h.det.live(), (std::vector<NodeId>{1}));
  // Dropping a live candidate port changes the reported set too.
  h.det.set_candidates({2});
  EXPECT_GT(h.det.liveness_epoch(), e2);
}

TEST(ThetaDetector, RecoversFromCorruption) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Harness h(3);
    h.det.set_candidates({1, 2});
    h.round({{1, true}, {2, true}});
    Rng rng(seed);
    h.det.corrupt(rng);
    // A few truthful rounds restore the exact neighborhood.
    for (int i = 0; i < 3; ++i) h.round({{1, true}, {2, true}});
    EXPECT_EQ(h.det.live(), (std::vector<NodeId>{1, 2})) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ren::detect

#include <gtest/gtest.h>

#include "net/event_queue.hpp"

namespace ren::net {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  while (q.step()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  Time seen = -1;
  q.schedule_at(100, [&] {});
  q.step();
  q.schedule_at(50, [&, t = &seen] { *t = q.now(); });  // in the past
  q.step();
  EXPECT_EQ(seen, 100);  // executed at now, not before
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_at(2, [&] { ++fired; });
  });
  while (q.step()) {
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, NextTimeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
  q.schedule_at(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
  EXPECT_FALSE(q.empty());
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace ren::net

// The experiment harness itself: construction invariants, determinism,
// host placement, and the measurement plumbing the benches rely on.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::sim {
namespace {

using ren::testing::fast_config;

TEST(Experiment, BuildsDenseIdsInLayerOrder) {
  auto cfg = fast_config("Clos", 3);
  cfg.with_hosts = true;
  Experiment exp(cfg);
  // switches 0..19, controllers 20..22, hosts 23..24
  EXPECT_EQ(exp.switches().size(), 20u);
  EXPECT_EQ(exp.controller(0).id(), 20);
  EXPECT_EQ(exp.controller(2).id(), 22);
  EXPECT_EQ(exp.host_a()->id(), 23);
  EXPECT_EQ(exp.host_b()->id(), 24);
  EXPECT_EQ(exp.sim().node_count(), 25u);
}

TEST(Experiment, ControllersAttachToKappaPlusOneSwitches) {
  for (int kappa : {0, 1, 2, 3}) {
    auto cfg = fast_config("Telstra", 2, kappa);
    Experiment exp(cfg);
    for (std::size_t k = 0; k < exp.controller_count(); ++k) {
      const auto adj = exp.sim().network().adjacency(exp.controller(k).id());
      EXPECT_EQ(adj.size(), static_cast<std::size_t>(kappa + 1));
    }
  }
}

TEST(Experiment, ControllerAttachmentsStableAcrossControllerCounts) {
  // Fig. 6 varies the controller count; earlier controllers must keep
  // their attachment points so the sweep is comparable.
  auto cfg3 = fast_config("Telstra", 3);
  auto cfg5 = fast_config("Telstra", 5);
  Experiment a(cfg3), b(cfg5);
  for (int k = 0; k < 3; ++k) {
    const auto adj_a = a.sim().network().adjacency(a.controller(static_cast<std::size_t>(k)).id());
    const auto adj_b = b.sim().network().adjacency(b.controller(static_cast<std::size_t>(k)).id());
    ASSERT_EQ(adj_a.size(), adj_b.size());
    for (std::size_t i = 0; i < adj_a.size(); ++i) {
      EXPECT_EQ(adj_a[i].neighbor, adj_b[i].neighbor);
    }
  }
}

TEST(Experiment, HostsSitAtMaximumDistance) {
  auto cfg = fast_config("B4", 1);
  cfg.with_hosts = true;
  Experiment exp(cfg);
  const auto d = exp.topology().switch_graph.bfs_dist(exp.host_a()->attach());
  EXPECT_EQ(d[static_cast<std::size_t>(exp.host_b()->attach())],
            exp.topology().expected_diameter);
}

TEST(Experiment, RunsAreDeterministicPerSeed) {
  auto run_once = [] {
    Experiment exp(fast_config("B4", 3, 2, 77));
    const auto r = exp.run_until_legitimate(sec(60));
    return std::make_tuple(r.seconds, exp.sim().events_executed(),
                           exp.sim().counters().packets_sent);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Experiment, DifferentSeedsDiverge) {
  auto events_for = [](std::uint64_t seed) {
    Experiment exp(fast_config("B4", 3, 2, seed));
    (void)exp.run_until_legitimate(sec(60));
    return exp.sim().events_executed();
  };
  EXPECT_NE(events_for(1), events_for(2));
}

TEST(Experiment, ConvergenceResultCountsPerController) {
  Experiment exp(fast_config("B4", 3));
  const auto r = exp.run_until_legitimate(sec(60));
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.iterations.size(), 3u);
  ASSERT_EQ(r.messages.size(), 3u);
  ASSERT_EQ(r.commands.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GT(r.iterations[k], 0u);
    EXPECT_GT(r.messages[k], 0u);
    EXPECT_GT(r.commands[k], r.messages[k]);  // several commands per batch
  }
}

TEST(Experiment, MeasurementWindowsAreDeltas) {
  Experiment exp(fast_config("B4", 2));
  const auto r1 = exp.run_until_legitimate(sec(60));
  ASSERT_TRUE(r1.converged);
  // A second, immediate measurement sees only the new window's traffic.
  const auto r2 = exp.run_until_legitimate(sec(5));
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.messages[0], r1.messages[0]);
}

TEST(Experiment, ControlPlaneProtectsHostAttachSwitches) {
  auto cfg = fast_config("B4", 2);
  cfg.with_hosts = true;
  Experiment exp(cfg);
  const auto cp = exp.control_plane();
  ASSERT_EQ(cp.protected_switches.size(), 2u);
  // Repeated switch killing never takes a protected one.
  auto mutable_cp = exp.control_plane();
  for (int i = 0; i < 4; ++i) {
    const NodeId victim = faults::kill_random_switch(mutable_cp, exp.fault_rng());
    if (victim == kNoNode) break;
    EXPECT_NE(victim, exp.host_a()->attach());
    EXPECT_NE(victim, exp.host_b()->attach());
  }
}

TEST(Experiment, UnknownTopologyThrows) {
  auto cfg = fast_config("B4", 1);
  cfg.topology = "no-such-network";
  EXPECT_THROW(Experiment exp(cfg), std::invalid_argument);
}

TEST(Experiment, AutoMaxRepliesIsGenerous) {
  // The auto-derived replyDB bound must never trigger C-resets in a fault
  // free run (Lemma 2's 2(N_C+N_S) plus slack).
  Experiment exp(fast_config("EBONE", 3));
  (void)exp.run_until_legitimate(sec(120));
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    EXPECT_EQ(exp.controller(k).c_resets(), 0u);
  }
}

}  // namespace
}  // namespace ren::sim

// Fault-family tests: restore-path edge cases in faults::injector, the
// Byzantine adversary / channel-corruption tentpole, and the determinism
// contracts the adversarial fault family must honor (bit-identical trials
// at any --sim-threads, zero-knob byte-identity, barrier-only injection).
#include <gtest/gtest.h>

#include "faults/adversary.hpp"
#include "proto/mutate.hpp"
#include "test_helpers.hpp"

namespace ren {
namespace {

using scenario::RunnerOptions;
using scenario::Scenario;

// --- Injector restore-path edge cases ---------------------------------------

// Kill a controller mid-bootstrap, while frames are still in flight toward
// it: the queued deliveries must not wedge the revived incarnation, and the
// system must still converge after the restart.
TEST(Injector, RestartNodeWithInFlightFrames) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  auto cp = exp.control_plane();
  // Advance a little so the bootstrap conversation is mid-flight (frames
  // queued on links and in transport endpoints), but not yet legitimate.
  exp.sim().run_until(msec(300));
  const NodeId victim = cp.controllers.front()->id();
  faults::kill_node(cp, victim);
  exp.sim().run_until(exp.sim().now() + msec(500));
  ASSERT_TRUE(faults::restart_node(cp, victim));
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

// restart_node must put back exactly the link states the kill took down —
// a TransientDown link stays transiently down, it does not come back Up.
TEST(Injector, RestartRestoresExactPriorLinkState) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  testing::bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  const NodeId victim = cp.controllers.front()->id();
  net::Network& net = exp.sim().network();
  const auto& adj = net.adjacency(victim);
  ASSERT_FALSE(adj.empty());
  const int li = adj.front().link;
  net.link(li).set_state(net::LinkState::TransientDown);
  faults::kill_node(cp, victim);
  EXPECT_EQ(net.link(li).state(), net::LinkState::PermanentDown);
  ASSERT_TRUE(faults::restart_node(cp, victim));
  EXPECT_EQ(net.link(li).state(), net::LinkState::TransientDown);
  net.link(li).set_state(net::LinkState::Up);  // let the fabric heal
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

// restore_link racing the restart of the node whose kill downed the link:
// an explicit restore wins, and the later restart_node must not clobber the
// already-restored link back to its pre-kill state. Also: restore_link only
// acts on permanent failures — a TransientDown link (pending expiry) is not
// its to restore.
TEST(Injector, RestoreLinkRacesRestart) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  testing::bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  const NodeId victim = cp.controllers.front()->id();
  net::Network& net = exp.sim().network();
  const auto& adj = net.adjacency(victim);
  ASSERT_FALSE(adj.empty());
  const int li = adj.front().link;
  const NodeId peer = adj.front().neighbor;
  faults::kill_node(cp, victim);
  ASSERT_EQ(net.link(li).state(), net::LinkState::PermanentDown);
  // The fiber gets fixed before the node comes back.
  EXPECT_TRUE(faults::restore_link(cp, victim, peer));
  EXPECT_EQ(net.link(li).state(), net::LinkState::Up);
  ASSERT_TRUE(faults::restart_node(cp, victim));
  EXPECT_EQ(net.link(li).state(), net::LinkState::Up) << "restart clobbered "
                                                         "a restored link";
  // A transiently-down link has a pending expiry, not a permanent failure:
  // restore_link must refuse it.
  net.link(li).set_state(net::LinkState::TransientDown);
  EXPECT_FALSE(faults::restore_link(cp, victim, peer));
  EXPECT_EQ(net.link(li).state(), net::LinkState::TransientDown);
  net.link(li).set_state(net::LinkState::Up);
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

// Double kill and double restore are idempotent: the second kill records no
// extra link state, the second restore reports false and changes nothing.
TEST(Injector, DoubleKillDoubleRestoreIdempotence) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  testing::bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  const NodeId victim = cp.controllers.front()->id();
  faults::kill_node(cp, victim);
  const auto downed_once = cp.kill_downed_links[victim];
  faults::kill_node(cp, victim);  // all adjacent links already permanent
  EXPECT_EQ(cp.kill_downed_links[victim], downed_once)
      << "second kill re-recorded link state";
  EXPECT_TRUE(faults::restart_node(cp, victim));
  EXPECT_FALSE(faults::restart_node(cp, victim));  // already alive
  EXPECT_TRUE(cp.kill_downed_links.find(victim) == cp.kill_downed_links.end());
  // The duplicate killed_nodes entry from the double kill must be gone too.
  EXPECT_TRUE(std::find(cp.killed_nodes.begin(), cp.killed_nodes.end(),
                        victim) == cp.killed_nodes.end());
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

// --- Adversary model ---------------------------------------------------------

TEST(Adversary, ModeNamesRoundTrip) {
  for (auto m : {faults::AdversaryMode::Lying, faults::AdversaryMode::Equivocating,
                 faults::AdversaryMode::Corrupting, faults::AdversaryMode::Babbling}) {
    EXPECT_EQ(faults::adversary_mode_from_string(faults::to_string(m)), m);
  }
  EXPECT_THROW(faults::adversary_mode_from_string("friendly"),
               std::invalid_argument);
}

// The adversary draws from its own salted per-node stream: two instances
// with the same (node, seed) behave identically, different seeds diverge.
TEST(Adversary, DeterministicPerNodeStreams) {
  faults::Adversary::Config cfg;
  cfg.mode = faults::AdversaryMode::Lying;
  auto make_reply = [] {
    proto::QueryReply r;
    r.id = 7;
    r.nc = {1, 2, 3};
    return r;
  };
  faults::Adversary a(3, 16, cfg, 42), b(3, 16, cfg, 42), c(3, 16, cfg, 43);
  proto::QueryReply ra = make_reply(), rb = make_reply(), rc = make_reply();
  for (int i = 0; i < 8; ++i) {
    a.tamper_reply(1, ra);
    b.tamper_reply(1, rb);
    c.tamper_reply(1, rc);
  }
  EXPECT_EQ(ra.nc, rb.nc);
  EXPECT_EQ(ra.tag_for_querier.epoch, rb.tag_for_querier.epoch);
  // Not a hard guarantee per-field, but 8 lying rounds from a different
  // seed diverging nowhere would mean the stream is not seeded.
  EXPECT_TRUE(ra.nc != rc.nc ||
              ra.tag_for_querier.epoch != rc.tag_for_querier.epoch);
}

// Payload corruption never mutates the shared original (frames are shared
// immutable payloads — a corrupting adversary must deep-copy).
TEST(Adversary, CorruptPayloadCopies) {
  Rng rng(7);
  proto::Message msg{proto::QueryReply{}};
  auto& qr = std::get<proto::QueryReply>(msg);
  qr.id = 4;
  qr.nc = {1, 2};
  proto::Payload original{proto::Frame{
      proto::FrameKind::Act, 3, std::make_shared<const proto::Message>(msg)}};
  const proto::Payload snapshot = original;
  for (int i = 0; i < 32; ++i) {
    const proto::Payload mutated = proto::corrupt_payload(original, rng, 16);
    (void)mutated;
  }
  const auto& of = std::get<proto::Frame>(original);
  const auto& sf = std::get<proto::Frame>(snapshot);
  EXPECT_EQ(std::get<proto::QueryReply>(*of.payload).nc,
            std::get<proto::QueryReply>(*sf.payload).nc);
}

// --- Scenario integration ----------------------------------------------------

Scenario byzantine_probe_scenario() {
  Scenario s;
  s.name = "byz_probe";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_adversary(sec(2), "lying");
  s.stop_adversary(sec(8));
  s.expect_converged(sec(8), "restabilize", sec(120));
  return s;
}

// Adversarial trials are bit-identical at any simulation shard count: the
// adversary RNG streams are per-node, the channel corruption draws from the
// packet's event, and the watchdog only reads at barriers.
TEST(AdversaryScenario, TrialsAreShardCountInvariant) {
  const Scenario s = byzantine_probe_scenario();
  RunnerOptions serial, sharded;
  serial.sim_threads = 1;
  sharded.sim_threads = 4;
  const auto a = scenario::run_trial(s, "B4", 3, 0, serial);
  const auto b = scenario::run_trial(s, "B4", 3, 0, sharded);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(scenario::trial_outcome_json(a).pretty(),
            scenario::trial_outcome_json(b).pretty());
  EXPECT_EQ(a.counters_fp, b.counters_fp);
}

// The watchdog record exists exactly for adversarial scenarios — benign
// trials must not even carry the JSON key (zero-knob byte-identity).
TEST(AdversaryScenario, WatchdogOnlyForAdversarialScenarios) {
  Scenario benign;
  benign.topologies = {"B4"};
  benign.controllers = {3};
  benign.trials = 1;
  benign.expect_converged(sec(0), "bootstrap", sec(60));
  const auto plain = scenario::run_trial(benign, "B4", 3, 0, RunnerOptions{});
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_FALSE(plain.has_watchdog);
  EXPECT_EQ(scenario::trial_outcome_json(plain).find("watchdog"), nullptr);

  const auto byz =
      scenario::run_trial(byzantine_probe_scenario(), "B4", 3, 0,
                          RunnerOptions{});
  ASSERT_TRUE(byz.ok) << byz.error;
  EXPECT_TRUE(byz.has_watchdog);
  ASSERT_NE(scenario::trial_outcome_json(byz).find("watchdog"), nullptr);
  EXPECT_TRUE(byz.wd_restabilized);
  EXPECT_GT(byz.wd_below_s, 0.0);
  EXPECT_GE(byz.wd_episodes, 1);
}

// Satellite: a corrupt_all_state storm under --sim-threads > 1 must stay
// byte-identical to the serial kernel — global mutations run at shard-window
// barriers. paranoid_sim replays the trial serially and fails on divergence.
TEST(AdversaryScenario, ParanoidSimCorruptionStormUnderShards) {
  Scenario s;
  s.name = "corrupt_probe";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.corrupt_all(sec(2));
  s.channel_faults(sec(2), /*loss=*/0.02, /*corrupt=*/0.05);
  s.stop_adversary(sec(6));
  s.expect_converged(sec(6), "recover", sec(120));
  RunnerOptions opt;
  opt.sim_threads = 4;
  opt.paranoid_sim = true;
  const auto out = scenario::run_trial(s, "B4", 3, 0, opt);
  EXPECT_TRUE(out.ok) << out.error;
}

// Spec-level validation of the adversarial event family.
TEST(AdversaryScenario, BuilderAndSpecValidation) {
  Scenario s;
  EXPECT_THROW(s.start_adversary(sec(1), "friendly"), std::invalid_argument);
  EXPECT_THROW(s.start_adversary(sec(1), "lying", 1, 1.0, "router"),
               std::invalid_argument);
  EXPECT_THROW(s.start_adversary(sec(1), "lying", 1, 1.5),
               std::invalid_argument);
  EXPECT_THROW(s.channel_faults(sec(1), /*loss=*/1.0, /*corrupt=*/0.0),
               std::invalid_argument);
  EXPECT_THROW(
      scenario::parse_spec(
          R"({"events":[{"at_ms":0,"kind":"start_adversary","mode":"nope"}]})"),
      std::invalid_argument);
  // Unknown event keys are rejected with the event's index in the message.
  try {
    (void)scenario::parse_spec(
        R"({"events":[{"at_ms":0,"kind":"stop_adversary","blast":1}]})");
    FAIL() << "unknown event key accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("events[0]"), std::string::npos)
        << e.what();
  }
}

// Adversarial events survive the spec round-trip byte-exactly.
TEST(AdversaryScenario, EventsRoundTrip) {
  Scenario s;
  s.name = "adv_rt";
  s.start_adversary(sec(1), "equivocating", 2, 0.5, "switch");
  s.channel_faults(sec(2), 0.05, 0.1, 0.02, 0.03);
  s.stop_adversary(sec(3));
  const Scenario reparsed =
      scenario::parse_spec(scenario::to_spec_json(s).pretty());
  EXPECT_EQ(s, reparsed);
}

}  // namespace
}  // namespace ren

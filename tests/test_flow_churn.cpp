// Flow-churn workload: generator determinism, the campaign runner's
// sim-threads byte-identity contract under churn, the paranoid-sim
// differential over the table-pressure builtin, malformed-spec rejection,
// and the campaign report schema for the "table" / "watchdog" blocks
// (docs/scenarios.md documents these fields; the schema tests here keep the
// docs honest).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "flows/churn.hpp"
#include "test_helpers.hpp"

namespace ren {
namespace {

using scenario::AxisPoint;
using scenario::Scenario;

// --- Generator ---------------------------------------------------------------

flows::ChurnConfig small_churn(double rate = 500.0) {
  flows::ChurnConfig cfg;
  cfg.rate = rate;
  cfg.mean_duration = msec(100);
  return cfg;
}

flows::Graph line_graph(int n) {
  flows::Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(ChurnGenerator, SameSeedSameArrivals) {
  const auto g = line_graph(8);
  flows::ChurnGenerator a(g, small_churn(), /*seed=*/7, /*start=*/0);
  flows::ChurnGenerator b(g, small_churn(), /*seed=*/7, /*start=*/0);
  std::vector<flows::FlowArrival> va, vb;
  a.advance(sec(2), va);
  b.advance(sec(2), vb);
  ASSERT_EQ(va.size(), vb.size());
  ASSERT_GT(va.size(), 0u);
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].id, vb[i].id);
    EXPECT_EQ(va[i].src, vb[i].src);
    EXPECT_EQ(va[i].dst, vb[i].dst);
    EXPECT_EQ(va[i].at, vb[i].at);
    EXPECT_EQ(va[i].duration, vb[i].duration);
    EXPECT_EQ(va[i].prt, vb[i].prt);
  }
  // A different seed draws a different stream.
  flows::ChurnGenerator c(g, small_churn(), /*seed=*/8, /*start=*/0);
  std::vector<flows::FlowArrival> vc;
  c.advance(sec(2), vc);
  bool differs = vc.size() != va.size();
  for (std::size_t i = 0; !differs && i < va.size(); ++i) {
    differs = va[i].at != vc[i].at || va[i].dst != vc[i].dst;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnGenerator, ArrivalsAreWellFormedAndRateShaped) {
  const auto g = line_graph(16);
  flows::ChurnGenerator gen(g, small_churn(1000.0), 1, /*start=*/sec(1));
  std::vector<flows::FlowArrival> v;
  gen.advance(sec(11), v);  // a 10-second window at 1000 flows/s
  EXPECT_GT(v.size(), 8000u);
  EXPECT_LT(v.size(), 12000u);
  std::set<std::uint64_t> ids;
  Time prev = 0;
  for (const auto& a : v) {
    EXPECT_TRUE(ids.insert(a.id).second) << "duplicate flow id " << a.id;
    EXPECT_GE(a.at, sec(1));
    EXPECT_LE(a.at, sec(11));
    EXPECT_GE(a.at, prev);  // arrivals come out in time order
    prev = a.at;
    EXPECT_GE(a.src, 0);
    EXPECT_LT(a.src, 16);
    EXPECT_GE(a.dst, 0);
    EXPECT_LT(a.dst, 16);
    EXPECT_NE(a.src, a.dst);
    EXPECT_GE(a.duration, 1);
  }
  EXPECT_EQ(gen.arrivals(), v.size());
}

TEST(ChurnGenerator, ZipfSkewsDestinationPopularity) {
  const auto g = line_graph(32);
  flows::ChurnConfig cfg = small_churn(2000.0);
  cfg.zipf = 1.2;
  flows::ChurnGenerator gen(g, cfg, 3, 0);
  std::vector<flows::FlowArrival> v;
  gen.advance(sec(10), v);
  std::vector<int> by_dst(32, 0);
  for (const auto& a : v) ++by_dst[a.dst];
  const int top = *std::max_element(by_dst.begin(), by_dst.end());
  // Under a uniform draw each destination would get ~1/32 of the flows; the
  // Zipf head must be far above that share.
  EXPECT_GT(top, static_cast<int>(2 * v.size() / 32));
}

TEST(ChurnGenerator, NextHopFollowsShortestPaths) {
  const auto g = line_graph(6);
  flows::ChurnGenerator gen(g, small_churn(), 1, 0);
  // On a line, every hop toward dst is the neighbor in that direction.
  EXPECT_EQ(gen.next_hop(0, 5), 1);
  EXPECT_EQ(gen.next_hop(4, 5), 5);
  EXPECT_EQ(gen.next_hop(5, 0), 4);
  std::vector<NodeId> hops;
  gen.path_hops(1, 4, hops);
  EXPECT_EQ(hops, (std::vector<NodeId>{1, 2, 3}));  // src..pre-dst
}

TEST(ChurnGenerator, RejectsInvalidConfigs) {
  const auto g = line_graph(4);
  auto bad = [&](auto mutate) {
    flows::ChurnConfig cfg = small_churn();
    mutate(cfg);
    EXPECT_THROW(flows::ChurnGenerator(g, cfg, 1, 0), std::invalid_argument);
  };
  bad([](auto& c) { c.rate = 0; });
  bad([](auto& c) { c.rate = -5; });
  bad([](auto& c) { c.alpha = 1.0; });
  bad([](auto& c) { c.zipf = -0.1; });
  bad([](auto& c) { c.mean_duration = 0; });
  bad([](auto& c) { c.priorities = 0; });
  EXPECT_THROW(flows::ChurnGenerator(line_graph(1), small_churn(), 1, 0),
               std::invalid_argument);
}

// --- Runner determinism ------------------------------------------------------

Scenario churn_scenario() {
  Scenario s;
  s.name = "churn_determinism";
  s.description = "short churn window for the sim-threads identity contract";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.base_seed = 11;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_flow_churn(sec(1), /*rate=*/2000.0, /*mean_duration=*/msec(100));
  s.stop_flow_churn(sec(3));
  s.expect_converged(sec(3), "drained", sec(60));
  return s;
}

TEST(FlowChurnDeterminism, TrialOutcomeIdenticalAcrossSimThreads) {
  const Scenario s = churn_scenario();
  const AxisPoint axes = {{"table_capacity", 192}};
  std::string first_json;
  std::uint64_t first_fp = 0;
  for (const int sim_threads : {1, 2, 4, 8}) {
    scenario::RunnerOptions opt;
    opt.threads = 1;
    opt.sim_threads = sim_threads;
    const auto out = scenario::run_trial(s, "B4", 3, axes, /*trial=*/0, opt);
    ASSERT_TRUE(out.ok) << "sim_threads=" << sim_threads << ": " << out.error;
    ASSERT_TRUE(out.has_table);
    EXPECT_GT(out.tbl_arrivals, 0);
    const std::string json = scenario::trial_outcome_json(out).pretty();
    if (first_json.empty()) {
      first_json = json;
      first_fp = out.counters_fp;
    } else {
      EXPECT_EQ(json, first_json) << "sim_threads=" << sim_threads;
      EXPECT_EQ(out.counters_fp, first_fp) << "sim_threads=" << sim_threads;
    }
  }
}

TEST(FlowChurnDeterminism, ParanoidSimPassesOnTableOverflowRecovery) {
  // The builtin's full timeline (churn + controller kill + link failure)
  // re-executed on the serial kernel must reproduce the sharded run byte
  // for byte — the harness-lane churn ticks ride the epoch barriers.
  Scenario s = scenario::builtin("table_overflow_recovery");
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  scenario::RunnerOptions opt;
  opt.threads = 1;
  opt.sim_threads = 2;
  opt.paranoid_sim = true;
  const AxisPoint axes = {{"table_capacity", 640}};
  const auto out = scenario::run_trial(s, "B4", 3, axes, /*trial=*/0, opt);
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_TRUE(out.has_table);
  EXPECT_GT(out.tbl_arrivals, 0);
  EXPECT_EQ(out.tbl_departures, out.tbl_arrivals);  // stop flushes the rest
}

// --- Spec validation ---------------------------------------------------------

std::string spec_with_events(const std::string& events_json) {
  return R"({"name":"x","description":"d","topologies":["B4"],)"
         R"("controllers":[3],"trials":1,"seed":1,"events":[)" +
         events_json + "]}";
}

void expect_spec_error(const std::string& spec, const std::string& needle) {
  try {
    (void)scenario::parse_spec(spec);
    FAIL() << "spec accepted; expected error containing \"" << needle << "\"";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(FlowChurnSpec, RejectsMalformedChurnEvents) {
  expect_spec_error(
      spec_with_events(
          R"({"at_ms":0,"kind":"start_flow_churn","rate":-10})"),
      "events[0]: start_flow_churn: rate must be > 0");
  expect_spec_error(
      spec_with_events(
          R"({"at_ms":0,"kind":"start_flow_churn","rate":100,"dist":"cauchy"})"),
      "dist must be \"pareto\" or \"poisson\"");
  expect_spec_error(
      spec_with_events(
          R"({"at_ms":0,"kind":"start_flow_churn","rate":100,"alpha":0.5})"),
      "alpha must be > 1");
  expect_spec_error(
      spec_with_events(
          R"({"at_ms":0,"kind":"start_flow_churn","rate":100,)"
          R"("eviction":"random"})"),
      "eviction must be \"priority_lru\" or \"reject_lowest\"");
  // Nesting: stop before any start, and a second start while active.
  expect_spec_error(
      spec_with_events(R"({"at_ms":0,"kind":"stop_flow_churn"})"),
      "stop_flow_churn before any start_flow_churn");
  expect_spec_error(
      spec_with_events(
          R"({"at_ms":0,"kind":"start_flow_churn","rate":100},)"
          R"({"at_ms":1000,"kind":"start_flow_churn","rate":100})"),
      "start_flow_churn while flow churn is already active");
  // Typos in churn keys are unknown keys, not silently ignored.
  expect_spec_error(
      spec_with_events(
          R"({"at_ms":0,"kind":"start_flow_churn","ratee":100})"),
      "unknown key");
}

TEST(FlowChurnSpec, MalformedJsonReportsLineAndColumn) {
  // The scenario/json.cpp parser positions its errors; a hand-edited spec
  // with a syntax error must say where.
  try {
    (void)scenario::parse_spec("{\n  \"name\": \"x\",\n  !bad\n}");
    FAIL() << "malformed JSON accepted";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("column"), std::string::npos) << what;
  }
}

TEST(FlowChurnSpec, RateAxisRequiresChurnRateAxis) {
  Scenario s;
  s.name = "axis_churn";
  s.description = "rate from the churn_rate axis";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_flow_churn(sec(1), scenario::kRateAxis);
  s.stop_flow_churn(sec(2));
  scenario::RunnerOptions opt;
  opt.threads = 1;
  EXPECT_THROW((void)scenario::run_campaign(s, opt), std::invalid_argument);
  s.axis("churn_rate", {500});
  const auto result = scenario::run_campaign(s, opt);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].has_table);
  EXPECT_GT(result.cells[0].tbl_arrivals.mean, 0);
}

TEST(FlowChurnSpec, BuilderChurnEventsSurviveRoundTrip) {
  Scenario s;
  s.name = "rt";
  s.description = "round trip";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.start_flow_churn(sec(1), 1500.0, msec(250), /*alpha=*/2.0, /*zipf=*/0.5,
                     "poisson", "reject_lowest");
  s.stop_flow_churn(sec(5));
  const Scenario reparsed = scenario::parse_spec(scenario::to_spec_json(s).pretty());
  EXPECT_EQ(s, reparsed);
}

// --- Report schema -----------------------------------------------------------

TEST(CampaignSchema, TableAndWatchdogBlocksCarryTheDocumentedFields) {
  // trial_outcome_json is the raw-export schema; docs/scenarios.md lists
  // exactly these members for the gated blocks.
  scenario::TrialOutcome out;
  out.ok = true;
  out.has_table = true;
  out.has_watchdog = true;
  const scenario::Json j = scenario::trial_outcome_json(out);
  const scenario::Json* table = j.find("table");
  ASSERT_NE(table, nullptr);
  for (const char* key : {"arrivals", "departures", "peak_active", "installs",
                          "overflows", "evictions", "peak_rules", "lookups",
                          "lookup_cost"}) {
    EXPECT_NE(table->find(key), nullptr) << "table." << key;
  }
  const scenario::Json* wd = j.find("watchdog");
  ASSERT_NE(wd, nullptr);
  for (const char* key :
       {"below_s", "episodes", "blast_radius", "restabilized"}) {
    EXPECT_NE(wd->find(key), nullptr) << "watchdog." << key;
  }
  // The gates: an outcome without the flags emits neither block, which is
  // what keeps churn-free campaign reports byte-identical to older ones.
  scenario::TrialOutcome plain;
  plain.ok = true;
  const scenario::Json pj = scenario::trial_outcome_json(plain);
  EXPECT_EQ(pj.find("table"), nullptr);
  EXPECT_EQ(pj.find("watchdog"), nullptr);
}

}  // namespace
}  // namespace ren

#include <gtest/gtest.h>

#include "flows/graph.hpp"
#include "flows/resilient_paths.hpp"

namespace ren::flows {
namespace {

Graph cycle(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

TEST(Graph, BasicEdgeOps) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // idempotent
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, BfsDistances) {
  Graph g = cycle(6);
  const auto d = g.bfs_dist(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[5], 1);
}

TEST(Graph, DiameterOfKnownGraphs) {
  EXPECT_EQ(cycle(6).diameter(), 3);
  EXPECT_EQ(cycle(7).diameter(), 3);
  Graph path(5);
  for (int i = 0; i + 1 < 5; ++i) path.add_edge(i, i + 1);
  EXPECT_EQ(path.diameter(), 4);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, EdgeConnectivity) {
  EXPECT_EQ(cycle(5).edge_connectivity(), 2);
  Graph path(4);
  for (int i = 0; i < 3; ++i) path.add_edge(i, i + 1);
  EXPECT_EQ(path.edge_connectivity(), 1);
  Graph k4(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.add_edge(i, j);
  }
  EXPECT_EQ(k4.edge_connectivity(), 3);
}

TEST(Graph, EdgeDisjointPathCount) {
  Graph g = cycle(6);
  EXPECT_EQ(g.edge_disjoint_path_count(0, 3), 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.edge_disjoint_path_count(0, 3), 3);
}

TEST(EdgeDisjointPaths, PathsAreDisjointAndShortestFirst) {
  Graph g = cycle(6);
  g.add_edge(0, 3);
  const auto paths = edge_disjoint_paths(g, 0, 3, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], (std::vector<int>{0, 3}));  // chord first
  std::set<std::pair<int, int>> used;
  for (const auto& p : paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(used.insert({p[i], p[i + 1]}).second);
      EXPECT_TRUE(used.insert({p[i + 1], p[i]}).second);
    }
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
  }
}

TEST(TopoView, DirectedEdgeSemantics) {
  TopoView v;
  v.add_edge(1, 2);
  EXPECT_TRUE(v.has_edge(1, 2));
  EXPECT_FALSE(v.has_edge(2, 1));  // directed evidence
  EXPECT_TRUE(v.has_node(2));     // claimed neighbor becomes a node
  v.add_sym_edge(3, 4);
  EXPECT_TRUE(v.has_edge(3, 4));
  EXPECT_TRUE(v.has_edge(4, 3));
}

TEST(TopoView, ReachabilityFollowsDirection) {
  TopoView v;
  v.add_edge(1, 2);
  v.add_edge(2, 3);
  EXPECT_TRUE(v.reachable(1, 3));
  EXPECT_FALSE(v.reachable(3, 1));
  const auto r = v.reachable_set(1);
  EXPECT_EQ(r.size(), 3u);
}

TEST(TopoView, FingerprintSensitivity) {
  TopoView a, b;
  a.add_sym_edge(1, 2);
  b.add_sym_edge(1, 2);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_TRUE(a == b);
  b.add_edge(2, 3);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_FALSE(a == b);
}

TEST(TopoView, CorruptClaimCannotFabricatePathsIntoRealNodes) {
  // The property that makes recovery from state corruption work: a
  // corrupted reply (node 9 claiming edges to everything) does not create
  // paths *into* 9 or make other nodes reachable through it from a node
  // that has only truthful evidence.
  TopoView v;
  v.add_edge(1, 2);  // truthful: 1 claims 2
  v.add_edge(9, 1);  // corrupt: 9 claims 1
  v.add_edge(9, 7);  // corrupt: 9 claims ghost 7
  EXPECT_FALSE(v.reachable(1, 9));
  EXPECT_FALSE(v.reachable(1, 7));
  EXPECT_TRUE(v.reachable(9, 2));  // corruption only helps the corrupt node
}

TEST(RuleWalk, DeliversAlongOracle) {
  // Line graph 0-1-2-3; oracle forwards toward 3.
  auto next = [](NodeId at, NodeId, NodeId) -> std::optional<NodeId> {
    return at + 1;
  };
  auto up = [](NodeId, NodeId) { return true; };
  const auto r = rule_walk(0, 3, {1}, next, up, 10);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(RuleWalk, TtlCutsLoops) {
  auto next = [](NodeId at, NodeId, NodeId) -> std::optional<NodeId> {
    return at == 1 ? 2 : 1;  // 1 <-> 2 forever
  };
  auto up = [](NodeId, NodeId) { return true; };
  const auto r = rule_walk(0, 9, {1}, next, up, 20);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.ttl_exceeded);
}

TEST(RuleWalk, DropsWhenNoFirstHopIsUp) {
  auto next = [](NodeId, NodeId, NodeId) -> std::optional<NodeId> {
    return std::nullopt;
  };
  auto up = [](NodeId, NodeId) { return false; };
  const auto r = rule_walk(0, 3, {1, 2}, next, up, 10);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.ttl_exceeded);
}

}  // namespace
}  // namespace ren::flows

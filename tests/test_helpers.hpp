// Shared helpers for the Renaissance test suite.
#pragma once

#include <gtest/gtest.h>

#include "renaissance.hpp"

namespace ren::testing {

/// Experiment configuration scaled down for fast tests: the algorithm is
/// timer-rate oblivious (Section 3), so shrinking every interval by 10x
/// only compresses simulated wall-clock, not the logic under test.
inline sim::ExperimentConfig fast_config(const std::string& topology,
                                         int controllers, int kappa = 2,
                                         std::uint64_t seed = 1) {
  sim::ExperimentConfig cfg;
  cfg.topology = topology;
  cfg.controllers = controllers;
  cfg.kappa = kappa;
  cfg.seed = seed;
  cfg.task_delay = msec(50);
  cfg.detect_interval = msec(10);
  cfg.monitor_interval = msec(25);
  cfg.link_latency = usec(100);
  cfg.theta = 10;
  return cfg;
}

/// Bootstrap to a legitimate state or fail the test.
inline void bootstrap_or_fail(sim::Experiment& exp, Time limit = sec(60)) {
  const auto r = exp.run_until_legitimate(limit);
  ASSERT_TRUE(r.converged) << "bootstrap failed: " << r.last_reason;
}

}  // namespace ren::testing

// The legitimacy monitor itself: it must detect each Definition-1
// violation, and the protocol must then repair what the monitor flagged.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::core {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

TEST(Legitimacy, CleanBootstrapPasses) {
  sim::Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  const auto st = exp.monitor().check();
  EXPECT_TRUE(st.legitimate);
  EXPECT_TRUE(st.reason.empty());
}

TEST(Legitimacy, DetectsForeignManagerAndProtocolCleansIt) {
  sim::Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  // Inject a manager entry for a non-existent controller directly.
  auto* sw = exp.switches()[3];
  proto::CommandBatch b;
  b.from = 99;  // ghost controller
  b.commands = {proto::AddMngrCmd{99}};
  sw->on_packet(0, net::make_packet(
                       99, sw->id(),
                       proto::Payload{proto::Frame{
                           proto::FrameKind::Act, 12345,
                           std::make_shared<const proto::Message>(
                               proto::Message{b})}}));
  auto st = exp.monitor().check();
  EXPECT_FALSE(st.legitimate);
  // The controllers must clean the ghost up (stale-information removal).
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
  for (NodeId m : sw->managers()) EXPECT_NE(m, 99);
}

TEST(Legitimacy, DetectsGhostRulesAndProtocolCleansThem) {
  sim::Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  auto* sw = exp.switches()[5];
  auto ghost_rules = std::make_shared<proto::RuleList>();
  ghost_rules->push_back(proto::Rule{99, sw->id(), 1, 2, 3, 0});
  sw->rule_table().new_round(99, proto::Tag{99, 1}, 2);
  sw->rule_table().update_rules(99, ghost_rules, proto::Tag{99, 1});
  EXPECT_FALSE(exp.monitor().check().legitimate);
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
  EXPECT_FALSE(sw->rule_table().has_rules_of(99));
}

TEST(Legitimacy, DetectsStaleRuleContent) {
  sim::Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  // Tamper with one controller's installed rules at one switch.
  auto* sw = exp.switches()[1];
  const NodeId cid = exp.controller(0).id();
  auto current = sw->rule_table().newest_rules_of(cid);
  ASSERT_NE(current, nullptr);
  auto mutated = std::make_shared<proto::RuleList>(*current);
  ASSERT_FALSE(mutated->empty());
  (*mutated)[0].fwd = (*mutated)[0].fwd == 0 ? 1 : 0;
  const auto meta = sw->rule_table().meta_tag(cid);
  ASSERT_TRUE(meta.has_value());
  sw->rule_table().update_rules(cid, mutated, *meta);
  EXPECT_FALSE(exp.monitor().check().legitimate);
  // The owner refreshes its rules every iteration.
  const auto r = exp.run_until_legitimate(sec(30));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(Legitimacy, DetectsMissingManager) {
  sim::Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  auto* sw = exp.switches()[2];
  proto::CommandBatch b;
  b.from = exp.controller(0).id();
  b.commands = {proto::DelMngrCmd{exp.controller(1).id()}};
  sw->on_packet(0, net::make_packet(
                       b.from, sw->id(),
                       proto::Payload{proto::Frame{
                           proto::FrameKind::Act, 54321,
                           std::make_shared<const proto::Message>(
                               proto::Message{b})}}));
  EXPECT_FALSE(exp.monitor().check().legitimate);
  const auto r = exp.run_until_legitimate(sec(30));
  EXPECT_TRUE(r.converged) << r.last_reason;  // self-heals via addMngr
}

TEST(Legitimacy, RequiresALiveController) {
  sim::Experiment exp(fast_config("B4", 1));
  bootstrap_or_fail(exp);
  exp.sim().kill_node(exp.controller(0).id());
  const auto st = exp.monitor().check();
  EXPECT_FALSE(st.legitimate);
  EXPECT_EQ(st.reason, "no live controller");
}

TEST(Legitimacy, TrueViewExcludesHostsAndDeadNodes) {
  auto cfg = fast_config("B4", 2);
  cfg.with_hosts = true;
  sim::Experiment exp(cfg);
  const auto view = exp.monitor().true_view();
  EXPECT_FALSE(view.has_node(exp.host_a()->id()));
  EXPECT_FALSE(view.has_node(exp.host_b()->id()));
  exp.sim().kill_node(3);
  EXPECT_FALSE(exp.monitor().true_view().has_node(3));
}

}  // namespace
}  // namespace ren::core

// Memory and message-size bounds (paper Lemmas 1-3, memory adaptiveness).
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::sim {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

TEST(MemoryBounds, SwitchRulesStayUnderLemma1Bound) {
  auto cfg = fast_config("Clos", 3);
  Experiment exp(cfg);
  bootstrap_or_fail(exp);
  exp.sim().run_until(exp.sim().now() + sec(2));
  const std::size_t n_c = exp.controller_count();
  const std::size_t n_nodes = 20 + n_c;
  const auto nprt = static_cast<std::size_t>(cfg.kappa) + 3;
  // Lemma 1: maxRules >= N_C * (N_C + N_S - 1) * n_prt suffices. With the
  // 3-round retention of the evaluation variant, triple it.
  const std::size_t bound = 3 * n_c * (n_nodes - 1) * nprt;
  for (auto* s : exp.switches()) {
    EXPECT_LE(s->rule_table().total_rules(), bound)
        << "switch " << s->id();
  }
}

TEST(MemoryBounds, ReplyDbStaysUnderLemma2Bound) {
  auto cfg = fast_config("Telstra", 5);
  Experiment exp(cfg);
  bootstrap_or_fail(exp);
  exp.sim().run_until(exp.sim().now() + sec(2));
  const std::size_t bound = 2 * (57 + 5);  // 2(N_C + N_S)
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    EXPECT_LE(exp.controller(k).reply_db().size(), bound);
    EXPECT_EQ(exp.controller(k).c_resets(), 0u)
        << "C-resets must not happen with adequate maxReplies";
  }
}

TEST(MemoryBounds, MemoryAdaptivenessAfterControllerDeath) {
  // Memory adaptiveness: after recovery, per-node memory tracks the ACTUAL
  // number of controllers n_C, not the upper bound N_C.
  auto cfg = fast_config("B4", 5);
  Experiment exp(cfg);
  bootstrap_or_fail(exp);
  std::size_t rules_with_5 = 0;
  for (auto* s : exp.switches()) rules_with_5 += s->rule_table().total_rules();

  auto cp = exp.control_plane();
  faults::kill_random_controllers(cp, exp.fault_rng(), 3);
  bootstrap_or_fail(exp);
  exp.sim().run_until(exp.sim().now() + sec(1));
  std::size_t rules_with_2 = 0;
  for (auto* s : exp.switches()) rules_with_2 += s->rule_table().total_rules();
  EXPECT_LT(rules_with_2, rules_with_5)
      << "rule memory must shrink with the controller count";
  for (auto* s : exp.switches()) {
    EXPECT_EQ(s->managers().size(), 2u);
    EXPECT_EQ(s->rule_table().owners().size(), 2u);
  }
}

TEST(MemoryBounds, NonAdaptiveVariantKeepsDeadControllersState) {
  // The Section 8.1 trade-off: without active deletions, stale owners
  // survive until switch-side eviction — memory cost up to N_C/n_C higher.
  auto cfg = fast_config("B4", 4);
  cfg.memory_adaptive = false;
  Experiment exp(cfg);
  exp.sim().run_until(sec(10));
  auto cp = exp.control_plane();
  faults::kill_random_controllers(cp, exp.fault_rng(), 2);
  exp.sim().run_until(exp.sim().now() + sec(5));
  std::size_t max_owners = 0;
  for (auto* s : exp.switches()) {
    max_owners = std::max(max_owners, s->rule_table().owners().size());
  }
  EXPECT_GT(max_owners, 2u) << "dead controllers' rules were deleted, but "
                               "this variant must retain them";
}

TEST(MemoryBounds, CloggedSwitchMemoryEvictsButSystemSurvives) {
  auto cfg = fast_config("B4", 3);
  cfg.max_rules = 60;  // far below what three controllers need
  Experiment exp(cfg);
  exp.sim().run_until(sec(10));
  std::uint64_t evictions = 0;
  for (auto* s : exp.switches()) evictions += s->rule_table().evictions();
  EXPECT_GT(evictions, 0u);
  // The system cannot be fully legitimate, but it must remain live:
  // controllers keep iterating and no crash occurs.
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    EXPECT_GT(exp.controller(k).stats().iterations, 50u);
  }
}

TEST(MemoryBounds, ControlMessageSizesAreBounded) {
  // Lemma 3 flavor: the biggest control message is O(maxRules * logN) —
  // concretely, bounded by the full rule set for one switch plus framing.
  auto cfg = fast_config("EBONE", 3);
  Experiment exp(cfg);
  bootstrap_or_fail(exp, sec(120));
  const auto& c = exp.sim().counters();
  const std::size_t rule_bytes = proto::wire_size(proto::Rule{});
  const std::size_t bound =
      (208 + 3) * 2 * static_cast<std::size_t>(cfg.kappa + 1) * rule_bytes * 3 +
      4096;
  EXPECT_GT(c.max_control_message_bytes, 0u);
  EXPECT_LE(c.max_control_message_bytes, bound);
}

TEST(MemoryBounds, TransportSessionsAreBounded) {
  auto cfg = fast_config("Clos", 2);
  Experiment exp(cfg);
  bootstrap_or_fail(exp);
  exp.sim().run_until(exp.sim().now() + sec(2));
  // Sessions: at most one send + one recv per peer.
  const std::size_t peers = 20 + 2;
  for (std::size_t k = 0; k < exp.controller_count(); ++k) {
    EXPECT_LE(exp.controller(k).endpoint().session_count(), 2 * peers);
  }
}

}  // namespace
}  // namespace ren::sim

// The incremental (epoch-gated) legitimacy monitor must be observationally
// equivalent to a fresh full evaluation of Definition 1 — under clean
// bootstraps, under randomized fault storms, and across the built-in
// scenario timelines. These tests drive Config::paranoid (check() throws on
// any divergence) and additionally assert the incremental machinery really
// is incremental: steady-state samples short-circuit instead of re-deriving
// the world.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::core {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

sim::ExperimentConfig paranoid_config(const std::string& topology,
                                      int controllers,
                                      std::uint64_t seed = 1) {
  auto cfg = fast_config(topology, controllers, 2, seed);
  cfg.monitor_paranoid = true;
  return cfg;
}

TEST(MonitorIncremental, ParanoidBootstrapAgrees) {
  sim::Experiment exp(paranoid_config("B4", 3));
  // Every sample on the way to legitimacy runs the differential; a
  // divergence throws out of check() and fails the bootstrap.
  bootstrap_or_fail(exp);
  EXPECT_GT(exp.monitor().stats().paranoid_shadows, 0u);
}

TEST(MonitorIncremental, SteadyStateShortCircuits) {
  sim::Experiment exp(fast_config("B4", 3));
  bootstrap_or_fail(exp);
  // Let in-flight protocol chatter settle onto the converged fixed point.
  for (int i = 0; i < 10; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(50));
    ASSERT_TRUE(exp.monitor().check().legitimate);
  }
  const auto before = exp.monitor().stats();
  const std::uint64_t epoch = exp.monitor().stack_epoch();
  for (int i = 0; i < 20; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(50));
    ASSERT_TRUE(exp.monitor().check().legitimate);
  }
  const auto after = exp.monitor().stats();
  // A converged system bumps no epochs, so every sample replays the verdict.
  EXPECT_EQ(exp.monitor().stack_epoch(), epoch);
  EXPECT_EQ(after.short_circuits - before.short_circuits, 20u);
  EXPECT_EQ(after.truth_rebuilds, before.truth_rebuilds);
  EXPECT_EQ(after.view_compares, before.view_compares);
  EXPECT_EQ(after.rule_compares, before.rule_compares);
  EXPECT_EQ(after.walk_sweeps, before.walk_sweeps);
}

TEST(MonitorIncremental, EpochsReactToFaults) {
  sim::Experiment exp(fast_config("B4", 3));
  bootstrap_or_fail(exp);
  const std::uint64_t settled = exp.monitor().stack_epoch();
  exp.sim().kill_node(exp.controller(2).id());
  EXPECT_GT(exp.monitor().stack_epoch(), settled)
      << "kill must bump the topology epoch";
  const auto st = exp.monitor().check();
  EXPECT_FALSE(st.legitimate);
  // The system re-converges and the incremental verdict flips with it.
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(MonitorIncremental, DifferentialFaultStorm) {
  // Randomized storm: benign faults, revivals and transient corruption in
  // random order, with the paranoid differential live at every sample.
  sim::Experiment exp(paranoid_config("Clos", 3, /*seed=*/7));
  bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  Rng storm(0xfa57'57a7ULL);
  for (int round = 0; round < 8; ++round) {
    switch (storm.next_below(5)) {
      case 0:
        faults::kill_random_controllers(cp, storm, 1);
        break;
      case 1:
        faults::kill_random_switches(cp, storm, 1);
        break;
      case 2:
        faults::fail_random_links(cp, storm, 2, /*keep_connected=*/true);
        break;
      case 3:
        faults::corrupt_all_state(cp, storm);
        break;
      case 4:
        faults::restart_all_nodes(cp);
        faults::restore_all_links(cp);
        break;
    }
    // Sample aggressively through the repair window — every check is
    // shadowed by a full evaluation and throws on divergence.
    for (int i = 0; i < 40; ++i) {
      exp.sim().run_until(exp.sim().now() + msec(25));
      ASSERT_NO_THROW((void)exp.monitor().check());
    }
  }
  faults::restart_all_nodes(cp);
  faults::restore_all_links(cp);
  const auto r = exp.run_until_legitimate(sec(120));
  EXPECT_TRUE(r.converged) << r.last_reason;
  EXPECT_GT(exp.monitor().stats().paranoid_shadows, 300u);
}

TEST(MonitorIncremental, DirectTamperingIsCaughtThroughEpochs) {
  // Out-of-protocol mutations (what the legitimacy tests inject) must bump
  // epochs too — otherwise the cached verdict would go stale.
  sim::Experiment exp(paranoid_config("B4", 2));
  bootstrap_or_fail(exp);
  ASSERT_TRUE(exp.monitor().check().legitimate);
  auto* sw = exp.switches()[4];
  const std::uint64_t before = exp.monitor().stack_epoch();
  auto ghost = std::make_shared<proto::RuleList>();
  ghost->push_back(proto::Rule{77, sw->id(), 1, 2, 3, 0});
  sw->rule_table().new_round(77, proto::Tag{77, 1}, 2);
  sw->rule_table().update_rules(77, ghost, proto::Tag{77, 1});
  EXPECT_GT(exp.monitor().stack_epoch(), before);
  EXPECT_FALSE(exp.monitor().check().legitimate);
  const auto r = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(MonitorIncremental, FullCheckMatchesIncrementalVerdictAcrossRecovery) {
  // Belt-and-suspenders differential without paranoid mode: drive a
  // recovery and compare verdicts explicitly at every sample.
  sim::Experiment exp(fast_config("Telstra", 3, 2, /*seed=*/3));
  bootstrap_or_fail(exp);
  exp.sim().kill_node(exp.controller(1).id());
  for (int i = 0; i < 200; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(25));
    const auto inc = exp.monitor().check();
    const auto full = exp.monitor().check_full();
    ASSERT_EQ(inc.legitimate, full.legitimate)
        << "sample " << i << ": incremental='" << inc.reason << "' full='"
        << full.reason << "'";
    if (inc.legitimate) break;
  }
}

TEST(MonitorIncremental, ScenarioTimelinesPassParanoid) {
  // The six built-in fault timelines, each with the differential live. One
  // trial per scenario on B4 keeps this test minutes-not-hours while still
  // walking every event kind the engine knows.
  scenario::RunnerOptions opt;
  opt.threads = 1;
  opt.paranoid_monitor = true;
  for (const auto& name : scenario::builtin_names()) {
    scenario::Scenario s = scenario::builtin(name);
    s.topologies = {"B4"};
    s.controllers = {3};
    s.trials = 1;
    const auto out = scenario::run_trial(s, "B4", 3, /*trial=*/0, opt);
    // A paranoid divergence throws inside the trial and surfaces here.
    EXPECT_TRUE(out.ok) << name << ": " << out.error;
  }
}

}  // namespace
}  // namespace ren::core

#include <gtest/gtest.h>

#include "net/node.hpp"
#include "net/simulator.hpp"

namespace ren::net {
namespace {

/// Records every delivered packet.
class SinkNode : public Node {
 public:
  SinkNode(NodeId id, NodeKind kind = NodeKind::Switch) : Node(id, kind) {}
  void on_packet(NodeId from, const Packet& p) override {
    deliveries.emplace_back(from, p);
  }
  std::vector<std::pair<NodeId, Packet>> deliveries;
};

Packet probe_packet(NodeId src, NodeId dst) {
  return make_packet(src, dst, proto::Payload{proto::Probe{1}});
}

TEST(Link, SerializationAndQueueOverflow) {
  // 1 Mbit/s link: a 1250-byte packet takes 10ms to serialize.
  LinkParams p;
  p.latency = 1000;
  p.bandwidth_bps = 1e6;
  p.max_queue_delay = 25'000;  // at most ~2.5 packets of backlog
  Link l(0, 0, 1, p);
  Rng rng(1);
  const auto t1 = l.plan_transmission(0, 1250, 0, rng);
  EXPECT_FALSE(t1.dropped);
  EXPECT_EQ(t1.deliver_at, 10'000 + 1000);
  const auto t2 = l.plan_transmission(0, 1250, 0, rng);
  EXPECT_EQ(t2.deliver_at, 20'000 + 1000);  // queued behind t1
  const auto t3 = l.plan_transmission(0, 1250, 0, rng);
  EXPECT_FALSE(t3.dropped);  // backlog 20ms < 25ms
  const auto t4 = l.plan_transmission(0, 1250, 0, rng);
  EXPECT_TRUE(t4.dropped);  // backlog 30ms > 25ms => drop-tail
}

TEST(Link, IndependentDirections) {
  LinkParams p;
  p.bandwidth_bps = 1e6;
  Link l(0, 0, 1, p);
  Rng rng(1);
  (void)l.plan_transmission(0, 12500, 0, rng);  // loads direction 0->1
  // The reverse direction is unaffected by the forward backlog:
  // 125 bytes at 1 Mbit/s = 1ms serialization, plus propagation.
  const auto rev = l.plan_transmission(1, 125, 0, rng);
  EXPECT_EQ(rev.deliver_at, 1000 + p.latency);
}

TEST(Link, LossAndDuplicationStatistics) {
  LinkParams p;
  p.faults.loss = 0.3;
  p.faults.duplicate = 0.2;
  Link l(0, 0, 1, p);
  Rng rng(99);
  int dropped = 0, dup = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto t = l.plan_transmission(0, 100, i * 10'000, rng);
    dropped += t.dropped ? 1 : 0;
    dup += t.duplicated ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / trials, 0.3, 0.02);
  // Duplication applies only to non-dropped packets.
  EXPECT_NEAR(static_cast<double>(dup) / (trials - dropped), 0.2, 0.02);
}

TEST(Network, AdjacencyAndStates) {
  Network n;
  n.ensure_nodes(3);
  n.add_link(0, 1, LinkParams{});
  n.add_link(1, 2, LinkParams{});
  EXPECT_EQ(n.link_count(), 2u);
  EXPECT_TRUE(n.link_operational(0, 1));
  EXPECT_FALSE(n.link_operational(0, 2));  // no such link
  n.find_link(0, 1)->set_state(LinkState::TransientDown);
  EXPECT_FALSE(n.link_operational(0, 1));
  EXPECT_TRUE(n.link_connected(0, 1));  // still in Gc
  n.find_link(0, 1)->set_state(LinkState::PermanentDown);
  EXPECT_FALSE(n.link_connected(0, 1));
  EXPECT_EQ(n.neighbors_connected(1), (std::vector<NodeId>{2}));
  EXPECT_THROW(n.add_link(0, 1, LinkParams{}), std::invalid_argument);
  EXPECT_THROW(n.add_link(2, 2, LinkParams{}), std::invalid_argument);
}

TEST(Simulator, DeliversAcrossLink) {
  Simulator sim(1);
  sim.emplace_node<SinkNode>(0);
  auto& b = sim.emplace_node<SinkNode>(1);
  sim.add_link(0, 1, LinkParams{});
  sim.send(0, 1, probe_packet(0, 1));
  sim.run_until(sec(1));
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].first, 0);
  EXPECT_EQ(sim.counters().packets_delivered, 1u);
}

TEST(Simulator, DropsOnDownLinkAndDeadNode) {
  Simulator sim(1);
  sim.emplace_node<SinkNode>(0);
  auto& b = sim.emplace_node<SinkNode>(1);
  sim.add_link(0, 1, LinkParams{});
  sim.set_link_state(0, 1, LinkState::TransientDown);
  sim.send(0, 1, probe_packet(0, 1));
  sim.run_until(sec(1));
  EXPECT_EQ(b.deliveries.size(), 0u);
  EXPECT_EQ(sim.counters().drops_link_down, 1u);

  sim.set_link_state(0, 1, LinkState::Up);
  sim.kill_node(1);  // also takes the link down permanently
  sim.send(0, 1, probe_packet(0, 1));
  sim.run_until(sec(2));
  EXPECT_EQ(b.deliveries.size(), 0u);
}

TEST(Simulator, InFlightPacketsDieWithPermanentFailure) {
  Simulator sim(1);
  sim.emplace_node<SinkNode>(0);
  auto& b = sim.emplace_node<SinkNode>(1);
  LinkParams p;
  p.latency = msec(10);
  sim.add_link(0, 1, p);
  sim.send(0, 1, probe_packet(0, 1));
  sim.schedule(msec(1), [&] { sim.set_link_state(0, 1, LinkState::PermanentDown); });
  sim.run_until(sec(1));
  EXPECT_EQ(b.deliveries.size(), 0u);
}

TEST(Simulator, BlackholeDropsMostButSelectsLink) {
  Simulator sim(7);
  sim.emplace_node<SinkNode>(0);
  auto& b = sim.emplace_node<SinkNode>(1);
  sim.add_link(0, 1, LinkParams{});
  sim.set_link_state(0, 1, LinkState::Blackhole);
  EXPECT_TRUE(sim.network().link_operational(0, 1));  // rules still pick it
  for (int i = 0; i < 1000; ++i) sim.send(0, 1, probe_packet(0, 1));
  sim.run_until(sec(1));
  EXPECT_GT(b.deliveries.size(), 20u);   // a trickle passes
  EXPECT_LT(b.deliveries.size(), 300u);  // most are lost
}

TEST(Simulator, ScheduleForSkipsDeadNodes) {
  Simulator sim(1);
  sim.emplace_node<SinkNode>(0);
  int fired = 0;
  sim.schedule_for(0, msec(10), [&] { ++fired; });
  sim.kill_node(0);
  sim.run_until(sec(1));
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, NodesOfKind) {
  Simulator sim(1);
  sim.emplace_node<SinkNode>(0, NodeKind::Switch);
  sim.emplace_node<SinkNode>(1, NodeKind::Controller);
  sim.emplace_node<SinkNode>(2, NodeKind::Switch);
  EXPECT_EQ(sim.nodes_of_kind(NodeKind::Switch).size(), 2u);
  EXPECT_EQ(sim.nodes_of_kind(NodeKind::Controller),
            (std::vector<NodeId>{1}));
}

TEST(Simulator, DenseNodeIdsEnforced) {
  Simulator sim(1);
  EXPECT_THROW(sim.emplace_node<SinkNode>(5), std::invalid_argument);
}

}  // namespace
}  // namespace ren::net

#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "proto/payload.hpp"

namespace ren::proto {
namespace {

TEST(Rule, MatchingSemantics) {
  Rule exact{1, 2, 3, 4, 5, 6};
  EXPECT_TRUE(exact.matches(3, 4));
  EXPECT_FALSE(exact.matches(3, 5));
  EXPECT_FALSE(exact.matches(9, 4));

  Rule wild_src{1, 2, kNoNode, 4, 5, 6};
  EXPECT_TRUE(wild_src.matches(3, 4));
  EXPECT_TRUE(wild_src.matches(99, 4));
  EXPECT_FALSE(wild_src.matches(3, 5));

  Rule wild_both{1, 2, kNoNode, kNoNode, 5, 6};
  EXPECT_TRUE(wild_both.matches(7, 8));
}

TEST(Rule, SpecificityCountsExactFields) {
  EXPECT_EQ((Rule{1, 2, 3, 4, 5, 6}).specificity(), 2);
  EXPECT_EQ((Rule{1, 2, kNoNode, 4, 5, 6}).specificity(), 1);
  EXPECT_EQ((Rule{1, 2, kNoNode, kNoNode, 5, 6}).specificity(), 0);
}

TEST(WireSize, UpdateRuleDominatedByRuleCount) {
  auto small = std::make_shared<RuleList>(10, Rule{});
  auto big = std::make_shared<RuleList>(1000, Rule{});
  const auto s1 = wire_size(Command{UpdateRuleCmd{small, Tag{}}});
  const auto s2 = wire_size(Command{UpdateRuleCmd{big, Tag{}}});
  EXPECT_GT(s2, s1 * 50);
  EXPECT_EQ(s2 - 12, 1000 * wire_size(Rule{}));
}

TEST(WireSize, BatchSumsItsCommands) {
  CommandBatch b;
  b.commands.push_back(NewRoundCmd{Tag{1, 2}, 3});
  b.commands.push_back(QueryCmd{Tag{1, 2}});
  EXPECT_EQ(wire_size(b), 8u + 12u + 12u);
}

TEST(WireSize, QueryReplyAccountsFullRuleBytes) {
  QueryReply r;
  r.nc = {1, 2, 3};
  r.managers = {9};
  r.rules_wire_bytes = 5000;  // as if the full rules were encoded
  EXPECT_EQ(wire_size(r), 24u + 4 * 4u + 5000u);
}

TEST(WireSize, FramesAddFixedOverhead) {
  QueryReply r;
  r.rules_wire_bytes = 100;
  const auto msg_size = wire_size(Message{r});
  Frame f;
  f.kind = FrameKind::Act;
  f.payload = std::make_shared<const Message>(Message{r});
  EXPECT_EQ(wire_size(Payload{f}), 16 + msg_size);
  Frame ack;
  ack.kind = FrameKind::Ack;
  EXPECT_EQ(wire_size(Payload{ack}), 16u);
}

TEST(WireSize, SegmentsCarryPayloadPlusHeader) {
  Segment s;
  s.len = 1460;
  EXPECT_EQ(wire_size(Payload{s}), 1500u);
  Segment pure_ack;
  pure_ack.is_ack = true;
  EXPECT_EQ(wire_size(Payload{pure_ack}), 40u);
}

TEST(Messages, VariantRoundTrips) {
  CommandBatch b;
  b.from = 7;
  b.commands = {AddMngrCmd{7}, DelAllRulesCmd{9}, QueryCmd{Tag{7, 3}}};
  Message m{b};
  const auto* back = std::get_if<CommandBatch>(&m);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->from, 7);
  ASSERT_EQ(back->commands.size(), 3u);
  EXPECT_NE(std::get_if<AddMngrCmd>(&back->commands[0]), nullptr);
  EXPECT_EQ(std::get_if<DelAllRulesCmd>(&back->commands[1])->k, 9);
}

}  // namespace
}  // namespace ren::proto

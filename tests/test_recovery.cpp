// Integration: recovery from benign failures (paper Section 6.4.2 as
// correctness tests) — controller fail-stop, switch fail-stop, link
// failures, combinations.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::sim {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

TEST(Recovery, SingleControllerFailStop) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Experiment exp(fast_config("B4", 3, 2, seed));
    bootstrap_or_fail(exp);
    auto cp = exp.control_plane();
    const NodeId victim = faults::kill_random_controller(cp, exp.fault_rng());
    ASSERT_NE(victim, kNoNode);
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "seed " << seed << ": " << r.last_reason;
  }
}

TEST(Recovery, ManyControllersFailSimultaneously) {
  // Fig. 11: kill 1..nc-1 controllers at once.
  for (int kills : {2, 4, 6}) {
    Experiment exp(fast_config("Telstra", 7, 2, 3));
    bootstrap_or_fail(exp);
    auto cp = exp.control_plane();
    const auto victims =
        faults::kill_random_controllers(cp, exp.fault_rng(), kills);
    ASSERT_EQ(static_cast<int>(victims.size()), kills);
    const auto r = exp.run_until_legitimate(sec(90));
    EXPECT_TRUE(r.converged) << kills << " kills: " << r.last_reason;
  }
}

TEST(Recovery, LastControllerIsNeverKilled) {
  Experiment exp(fast_config("B4", 2));
  bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  EXPECT_NE(faults::kill_random_controller(cp, exp.fault_rng()), kNoNode);
  EXPECT_EQ(faults::kill_random_controller(cp, exp.fault_rng()), kNoNode);
}

TEST(Recovery, SwitchFailStop) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Experiment exp(fast_config("Clos", 3, 1, seed));
    bootstrap_or_fail(exp);
    auto cp = exp.control_plane();
    const NodeId victim = faults::kill_random_switch(cp, exp.fault_rng());
    ASSERT_NE(victim, kNoNode) << "seed " << seed;
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "seed " << seed << ": " << r.last_reason;
    // The dead switch's reply must be flushed from every view.
    for (std::size_t k = 0; k < exp.controller_count(); ++k) {
      EXPECT_FALSE(exp.controller(k).fused_view().has_node(victim));
    }
  }
}

TEST(Recovery, SingleLinkFailure) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Experiment exp(fast_config("B4", 3, 2, seed));
    bootstrap_or_fail(exp);
    auto cp = exp.control_plane();
    const auto link = faults::fail_random_link(cp, exp.fault_rng());
    ASSERT_NE(link.first, kNoNode);
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "seed " << seed << ": " << r.last_reason;
  }
}

TEST(Recovery, MultipleLinkFailures) {
  // Fig. 14: 2/4/6 simultaneous permanent link failures.
  for (int count : {2, 4, 6}) {
    Experiment exp(fast_config("Telstra", 3, 2, count));
    bootstrap_or_fail(exp);
    auto cp = exp.control_plane();
    const auto links = faults::fail_random_links(cp, exp.fault_rng(), count);
    EXPECT_GE(static_cast<int>(links.size()), 1);
    const auto r = exp.run_until_legitimate(sec(90));
    EXPECT_TRUE(r.converged) << count << " links: " << r.last_reason;
  }
}

TEST(Recovery, SequentialFaultStorm) {
  // Several benign faults in sequence, recovery in between each.
  Experiment exp(fast_config("EBONE", 4, 2, 11));
  ASSERT_NO_FATAL_FAILURE(bootstrap_or_fail(exp, sec(120)));
  auto cp = exp.control_plane();
  faults::fail_random_link(cp, exp.fault_rng());
  ASSERT_NO_FATAL_FAILURE(bootstrap_or_fail(exp, sec(90)));
  faults::kill_random_controller(cp, exp.fault_rng());
  ASSERT_NO_FATAL_FAILURE(bootstrap_or_fail(exp, sec(90)));
  faults::kill_random_switch(cp, exp.fault_rng());
  ASSERT_NO_FATAL_FAILURE(bootstrap_or_fail(exp, sec(90)));
}

TEST(Recovery, TransientLinkFlapHealsWithoutReconfiguration) {
  // A short transient failure (below the suspicion threshold) must not
  // change any configuration: fast failover handles it in the data plane.
  Experiment exp(fast_config("Clos", 2, 1, 4));
  bootstrap_or_fail(exp);
  auto* link = exp.sim().network().find_link(8, 16);  // agg-core link
  ASSERT_NE(link, nullptr);
  link->set_state(net::LinkState::TransientDown);
  exp.sim().run_until(exp.sim().now() + msec(30));  // < theta*detect
  link->set_state(net::LinkState::Up);
  exp.sim().run_until(exp.sim().now() + msec(200));
  const auto st = exp.monitor().check();
  EXPECT_TRUE(st.legitimate) << st.reason;
}

TEST(Recovery, FaultInjectorPreservesConnectivity) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Experiment exp(fast_config("Telstra", 3, 2, seed));
    auto cp = exp.control_plane();
    faults::fail_random_links(cp, exp.fault_rng(), 6);
    faults::kill_random_switch(cp, exp.fault_rng());
    const auto view = faults::control_topology(cp);
    ASSERT_GT(view.node_count(), 0u);
    EXPECT_EQ(view.reachable_set(view.adj().begin()->first).size(),
              view.node_count())
        << "injector disconnected the control plane, seed " << seed;
  }
}

}  // namespace
}  // namespace ren::sim

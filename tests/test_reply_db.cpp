#include <gtest/gtest.h>

#include "core/reply_db.hpp"

namespace ren::core {
namespace {

proto::QueryReply reply(NodeId id, std::uint32_t epoch = 1) {
  proto::QueryReply r;
  r.id = id;
  r.tag_for_querier = proto::Tag{0, epoch};
  return r;
}

TEST(ReplyDb, StoreReplacesById) {
  ReplyDb db({8, true});
  db.store(reply(1, 1));
  db.store(reply(1, 2));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find(1)->tag_for_querier.epoch, 2u);
}

TEST(ReplyDb, CResetDropsEverything) {
  ReplyDb db({3, true});
  db.store(reply(1));
  db.store(reply(2));
  db.store(reply(3));
  EXPECT_FALSE(db.make_room(2));  // existing id: no growth, no reset
  EXPECT_TRUE(db.make_room(4));   // would exceed: C-reset
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.c_resets(), 1u);
}

TEST(ReplyDb, LruModeEvictsOldestInsteadOfResetting) {
  ReplyDb db({3, false});
  db.store(reply(1));
  db.store(reply(2));
  db.store(reply(3));
  EXPECT_FALSE(db.make_room(4));
  db.store(reply(4));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.find(1), nullptr);  // oldest evicted
  EXPECT_NE(db.find(4), nullptr);
  EXPECT_EQ(db.c_resets(), 0u);
}

TEST(ReplyDb, LruOrderFollowsReinsertion) {
  ReplyDb db({3, false});
  db.store(reply(1));
  db.store(reply(2));
  db.store(reply(3));
  db.store(reply(1, 9));  // refresh 1: now 2 is the oldest
  (void)db.make_room(4);
  db.store(reply(4));
  EXPECT_NE(db.find(1), nullptr);
  EXPECT_EQ(db.find(2), nullptr);
}

TEST(ReplyDb, EraseIfFilters) {
  ReplyDb db({8, true});
  for (NodeId i = 1; i <= 5; ++i) db.store(reply(i, static_cast<std::uint32_t>(i)));
  db.erase_if([](const proto::QueryReply& r) {
    return r.tag_for_querier.epoch % 2 == 0;
  });
  EXPECT_EQ(db.size(), 3u);
  EXPECT_NE(db.find(1), nullptr);
  EXPECT_EQ(db.find(2), nullptr);
}

TEST(ReplyDb, CorruptionAddsBoundedGarbage) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ReplyDb db({64, true});
    for (NodeId i = 1; i <= 5; ++i) db.store(reply(i));
    Rng rng(seed);
    db.corrupt(rng, 32);
    EXPECT_LE(db.size(), 5u + 4u);  // at most a few fabricated entries
  }
}

}  // namespace
}  // namespace ren::core

#include <gtest/gtest.h>

#include "core/reply_db.hpp"

namespace ren::core {
namespace {

proto::QueryReply reply(NodeId id, std::uint32_t epoch = 1) {
  proto::QueryReply r;
  r.id = id;
  r.tag_for_querier = proto::Tag{0, epoch};
  return r;
}

TEST(ReplyDb, StoreReplacesById) {
  ReplyDb db({8, true});
  db.store(reply(1, 1));
  db.store(reply(1, 2));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find(1)->tag_for_querier.epoch, 2u);
}

TEST(ReplyDb, CResetDropsEverything) {
  ReplyDb db({3, true});
  db.store(reply(1));
  db.store(reply(2));
  db.store(reply(3));
  EXPECT_FALSE(db.make_room(2));  // existing id: no growth, no reset
  EXPECT_TRUE(db.make_room(4));   // would exceed: C-reset
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.c_resets(), 1u);
}

TEST(ReplyDb, LruModeEvictsOldestInsteadOfResetting) {
  ReplyDb db({3, false});
  db.store(reply(1));
  db.store(reply(2));
  db.store(reply(3));
  EXPECT_FALSE(db.make_room(4));
  db.store(reply(4));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.find(1), nullptr);  // oldest evicted
  EXPECT_NE(db.find(4), nullptr);
  EXPECT_EQ(db.c_resets(), 0u);
}

TEST(ReplyDb, LruOrderFollowsReinsertion) {
  ReplyDb db({3, false});
  db.store(reply(1));
  db.store(reply(2));
  db.store(reply(3));
  db.store(reply(1, 9));  // refresh 1: now 2 is the oldest
  (void)db.make_room(4);
  db.store(reply(4));
  EXPECT_NE(db.find(1), nullptr);
  EXPECT_EQ(db.find(2), nullptr);
}

TEST(ReplyDb, EraseIfFilters) {
  ReplyDb db({8, true});
  for (NodeId i = 1; i <= 5; ++i) db.store(reply(i, static_cast<std::uint32_t>(i)));
  db.erase_if([](const proto::QueryReply& r) {
    return r.tag_for_querier.epoch % 2 == 0;
  });
  EXPECT_EQ(db.size(), 3u);
  EXPECT_NE(db.find(1), nullptr);
  EXPECT_EQ(db.find(2), nullptr);
}

TEST(ReplyDb, RevisionTracksContentNotRetransmissions) {
  ReplyDb db({8, true});
  const auto r0 = db.revision();
  db.store(reply(1, 1));
  EXPECT_GT(db.revision(), r0);  // insert
  const auto r1 = db.revision();
  db.store(reply(1, 1));
  EXPECT_EQ(db.revision(), r1);  // identical re-store: untouched
  db.store(reply(1, 2));
  EXPECT_GT(db.revision(), r1);  // tag moved: content changed
  const auto r2 = db.revision();
  db.erase_if([](const proto::QueryReply&) { return true; });
  EXPECT_GT(db.revision(), r2);  // erase
  const auto r3 = db.revision();
  db.erase_if([](const proto::QueryReply&) { return true; });
  EXPECT_EQ(db.revision(), r3);  // nothing to erase: untouched
}

TEST(ReplyDb, ViewShapeRevisionIgnoresTagChurn) {
  ReplyDb db({8, true});
  db.store(reply(1, 1));
  db.store(reply(2, 1));
  const auto s0 = db.view_shape_revision();
  const auto r0 = db.revision();
  // Steady-state re-replies: same node, same neighborhood, new round tag.
  db.store(reply(1, 2));
  db.store(reply(2, 2));
  EXPECT_GT(db.revision(), r0);            // content did change
  EXPECT_EQ(db.view_shape_revision(), s0);  // but no view can tell
  // A changed neighborhood is a shape change.
  auto m = reply(1, 3);
  m.nc = {5};
  db.store(std::move(m));
  EXPECT_GT(db.view_shape_revision(), s0);
  // So are erases, C-resets and corruption.
  const auto s1 = db.view_shape_revision();
  db.erase_if([](const proto::QueryReply& r) { return r.id == 2; });
  EXPECT_GT(db.view_shape_revision(), s1);
  const auto s2 = db.view_shape_revision();
  Rng rng(1);
  db.corrupt(rng, 8);
  EXPECT_GT(db.view_shape_revision(), s2);
}

TEST(ReplyDb, CorruptionAddsBoundedGarbage) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ReplyDb db({64, true});
    for (NodeId i = 1; i <= 5; ++i) db.store(reply(i));
    Rng rng(seed);
    db.corrupt(rng, 32);
    EXPECT_LE(db.size(), 5u + 4u);  // at most a few fabricated entries
  }
}

}  // namespace
}  // namespace ren::core

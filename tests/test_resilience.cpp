// kappa-fault-resilience of the *installed* flows: after bootstrap, data
// and control paths survive link failures without any controller action
// (paper Section 2.2.2; Lemma 7's no-packet-loss regime).
#include <gtest/gtest.h>

#include "flows/resilient_paths.hpp"
#include "test_helpers.hpp"

namespace ren::sim {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

/// Walks c -> dst over the real switch tables with current link states.
bool walk_ok(Experiment& exp, core::Controller& c, NodeId dst) {
  std::map<NodeId, switchd::AbstractSwitch*> by_id;
  for (auto* s : exp.switches()) {
    if (s->alive()) by_id[s->id()] = s;
  }
  auto next_hop = [&](NodeId at, NodeId src,
                      NodeId dst2) -> std::optional<NodeId> {
    auto it = by_id.find(at);
    if (it == by_id.end()) return std::nullopt;
    for (const auto& cand : it->second->rule_table().candidates(src, dst2)) {
      if (exp.sim().network().link_operational(at, cand.fwd)) return cand.fwd;
    }
    if (exp.sim().network().link_operational(at, dst2)) return dst2;
    return std::nullopt;
  };
  auto link_up = [&](NodeId a, NodeId b) {
    return exp.sim().network().link_operational(a, b);
  };
  std::vector<NodeId> first;
  if (exp.sim().network().link_operational(c.id(), dst)) {
    first = {dst};
  } else if (const auto f = c.current_flows()) {
    auto it = f->first_hops.find(dst);
    if (it != f->first_hops.end()) first = it->second;
  }
  return flows::rule_walk(c.id(), dst, first, next_hop, link_up,
                          4 * static_cast<int>(exp.sim().node_count()))
      .delivered;
}

TEST(Resilience, SourceSideFailoverCoversEveryAttachLinkLoss) {
  // The controller's own first-hop list is its local fast-failover group:
  // any single attach link can die and it still reaches everything.
  Experiment exp(fast_config("Clos", 1, 2, 5));
  bootstrap_or_fail(exp);
  auto& c = exp.controller(0);
  const auto ports = exp.sim().network().adjacency(c.id());
  ASSERT_GE(ports.size(), 2u);
  for (const auto& e : ports) {
    auto* link = exp.sim().network().find_link(c.id(), e.neighbor);
    link->set_state(net::LinkState::TransientDown);
    int reached = 0, total = 0;
    for (auto* s : exp.switches()) {
      ++total;
      reached += walk_ok(exp, c, s->id()) ? 1 : 0;
    }
    EXPECT_EQ(reached, total) << "attach link to " << e.neighbor << " down";
    link->set_state(net::LinkState::Up);
  }
}

TEST(Resilience, FlowsSurviveManySingleLinkFailuresWithoutControl) {
  // Exhaustive over all fabric links on Clos (kappa=1): for each single
  // failure, count destination reachability from the controller using the
  // frozen (pre-failure) rules only. The disjoint-path construction keeps
  // the overwhelming majority of flows alive; the controller repairs the
  // rest within O(D) (covered by Recovery tests).
  Experiment exp(fast_config("Clos", 1, 1, 6));
  bootstrap_or_fail(exp);
  auto& c = exp.controller(0);
  exp.controller(0).set_frozen(true);  // no recomputation during the sweep

  const auto& net = exp.sim().network();
  int total_checks = 0, reached = 0;
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    auto& link = exp.sim().network().link(static_cast<int>(li));
    if (link.a() >= 20 || link.b() >= 20) continue;  // fabric links only
    link.set_state(net::LinkState::TransientDown);
    for (auto* s : exp.switches()) {
      ++total_checks;
      reached += walk_ok(exp, c, s->id()) ? 1 : 0;
    }
    link.set_state(net::LinkState::Up);
  }
  ASSERT_GT(total_checks, 0);
  const double survival =
      static_cast<double>(reached) / static_cast<double>(total_checks);
  EXPECT_GT(survival, 0.95) << reached << "/" << total_checks;
}

TEST(Resilience, KappaTwoOutperformsKappaZeroUnderDoubleFailures) {
  auto survival_for = [](int kappa) {
    Experiment exp(fast_config("B4", 1, kappa, 8));
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged);
    auto& c = exp.controller(0);
    c.set_frozen(true);
    auto& net = exp.sim().network();
    int total = 0, ok = 0;
    for (std::size_t i = 0; i < net.link_count(); ++i) {
      for (std::size_t j = i + 1; j < net.link_count(); ++j) {
        auto& la = net.link(static_cast<int>(i));
        auto& lb = net.link(static_cast<int>(j));
        if (la.a() >= 12 || la.b() >= 12 || lb.a() >= 12 || lb.b() >= 12)
          continue;
        la.set_state(net::LinkState::TransientDown);
        lb.set_state(net::LinkState::TransientDown);
        for (auto* s : exp.switches()) {
          ++total;
          ok += walk_ok(exp, c, s->id()) ? 1 : 0;
        }
        la.set_state(net::LinkState::Up);
        lb.set_state(net::LinkState::Up);
      }
    }
    return static_cast<double>(ok) / static_cast<double>(total);
  };
  const double s0 = survival_for(0);
  const double s2 = survival_for(2);
  EXPECT_GT(s2, s0) << "kappa=2 " << s2 << " vs kappa=0 " << s0;
  EXPECT_GT(s2, 0.8);
}

/// Route a frame from switch `src` to controller id `cid` the way
/// AbstractSwitch::route_frame does; returns true when it arrives.
bool switch_frame_reaches(Experiment& exp, NodeId src, NodeId cid) {
  std::map<NodeId, switchd::AbstractSwitch*> by_id;
  for (auto* s : exp.switches()) {
    if (s->alive()) by_id[s->id()] = s;
  }
  NodeId at = src;
  for (int ttl = 0; ttl < 64; ++ttl) {
    if (at == cid) return true;
    auto it = by_id.find(at);
    if (it == by_id.end()) return false;
    if (exp.sim().network().link_operational(at, cid)) {
      at = cid;
      continue;
    }
    NodeId nh = kNoNode;
    for (const auto& cand : it->second->rule_table().candidates(src, cid)) {
      if (exp.sim().network().link_operational(at, cand.fwd)) {
        nh = cand.fwd;
        break;
      }
    }
    if (nh == kNoNode) return false;
    at = nh;
  }
  return false;
}

TEST(Resilience, PairFlowReverseSurvivesAtTheBreakSwitch) {
  // The paper's kappa-fault-resilient flows are per (controller, node)
  // pair: the switch adjacent to a failed link has its own exact-match
  // backup toward the controller and keeps replying *immediately*, with
  // the pre-failure rules — no controller involvement.
  Experiment exp(fast_config("B4", 1, 2, 3));
  bootstrap_or_fail(exp);
  auto& c = exp.controller(0);
  const auto ports = exp.sim().network().adjacency(c.id());
  ASSERT_GE(ports.size(), 2u);
  const NodeId w = ports[0].neighbor;  // tree child of the dead link
  auto* link = exp.sim().network().find_link(c.id(), w);
  link->set_state(net::LinkState::TransientDown);
  EXPECT_TRUE(switch_frame_reaches(exp, w, c.id()))
      << "break switch lost its own backup flow";
  link->set_state(net::LinkState::Up);
}

TEST(Resilience, AllRepliesFlowAgainAfterControlPlaneRepair) {
  // Transit frames from other sources may blackhole on the dead tree edge
  // (their exact backups live on *their* backup paths); the control plane
  // repairs the tree within O(D) — after that every switch routes again.
  Experiment exp(fast_config("B4", 1, 2, 3));
  bootstrap_or_fail(exp);
  auto& c = exp.controller(0);
  const auto ports = exp.sim().network().adjacency(c.id());
  ASSERT_GE(ports.size(), 2u);
  exp.sim().set_link_state(c.id(), ports[0].neighbor,
                           net::LinkState::PermanentDown);
  const auto r = exp.run_until_legitimate(sec(60));
  ASSERT_TRUE(r.converged) << r.last_reason;
  for (auto* s : exp.switches()) {
    EXPECT_TRUE(switch_frame_reaches(exp, s->id(), c.id()))
        << "switch " << s->id();
  }
}

}  // namespace
}  // namespace ren::sim

#include <gtest/gtest.h>

#include <set>

#include "flows/my_rules.hpp"
#include "topo/topologies.hpp"

namespace ren::flows {
namespace {

/// View of a physical topology plus an attached controller.
struct Scenario {
  TopoView view;
  std::map<NodeId, bool> transit;
  NodeId owner;
};

Scenario diamond() {
  //   1
  //  /.\.
  // 0   3 --- owner(4) attached at 0 and 3
  //  \ /
  //   2
  Scenario s;
  s.owner = 4;
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 3}, {2, 3}, {4, 0}, {4, 3}}) {
    s.view.add_sym_edge(a, b);
  }
  for (NodeId n : {0, 1, 2, 3}) s.transit[n] = true;
  s.transit[4] = false;
  return s;
}

Scenario from_topology(const topo::Topology& t, NodeId attach_a, NodeId attach_b) {
  Scenario s;
  s.owner = t.switch_graph.n();
  for (int u = 0; u < t.switch_graph.n(); ++u) {
    s.transit[u] = true;
    for (int v : t.switch_graph.neighbors(u)) s.view.add_sym_edge(u, v);
  }
  s.view.add_sym_edge(s.owner, attach_a);
  s.view.add_sym_edge(s.owner, attach_b);
  s.transit[s.owner] = false;
  return s;
}

TEST(DisjointViewPaths, PairwiseEdgeDisjointAndSimple) {
  const auto s = diamond();
  const auto paths = disjoint_view_paths(s.view, 4, 3, 3, s.transit);
  ASSERT_EQ(paths.size(), 2u);  // direct 4-3 and 4-0-...-3
  EXPECT_EQ(paths[0], (std::vector<NodeId>{4, 3}));
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& p : paths) {
    std::set<NodeId> nodes;
    for (NodeId n : p) EXPECT_TRUE(nodes.insert(n).second) << "not simple";
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(used.insert({p[i], p[i + 1]}).second);
      EXPECT_TRUE(used.insert({p[i + 1], p[i]}).second);
    }
  }
}

TEST(DisjointViewPaths, InteriorsAreTransitOnly) {
  auto s = diamond();
  s.view.add_sym_edge(5, 1);  // another controller hanging off switch 1
  s.view.add_sym_edge(5, 3);
  s.transit[5] = false;
  const auto paths = disjoint_view_paths(s.view, 4, 1, 3, s.transit);
  for (const auto& p : paths) {
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      EXPECT_NE(p[i], 5) << "controller used as relay";
    }
  }
}

TEST(RuleCompiler, EmitsForwardAndReverseAlongPaths) {
  RuleCompiler compiler({/*kappa=*/1});
  const auto s = diamond();
  const auto flows = compiler.compile(s.view, s.owner, s.transit);

  // Destination 1: primary 4-0-1 (lexicographic), backup 4-3-1.
  ASSERT_TRUE(flows->first_hops.count(1));
  EXPECT_EQ(flows->first_hops.at(1), (std::vector<NodeId>{0, 3}));

  // Switch 0 must hold the forward rule (src=4,dest=1,fwd=1) at primary
  // priority and the wildcard reverse (src=*,dest=4).
  const auto rules0 = flows->per_switch.at(0);
  bool fwd = false, rev = false;
  for (const auto& r : *rules0) {
    if (r.src == 4 && r.dest == 1 && r.fwd == 1 && r.prt == compiler.nprt() - 1)
      fwd = true;
    if (r.src == kNoNode && r.dest == 4 && r.fwd == 4) rev = true;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);
}

TEST(RuleCompiler, TerminalSwitchGetsReturnRoute) {
  RuleCompiler compiler({1});
  const auto s = diamond();
  const auto flows = compiler.compile(s.view, s.owner, s.transit);
  // Switch 1 (a flow terminal two hops away) must be able to route replies
  // back to the controller: a (src=*,dest=4) rule with an operational fwd.
  const auto rules1 = flows->per_switch.at(1);
  bool has_return = false;
  for (const auto& r : *rules1) {
    if (r.src == kNoNode && r.dest == 4) has_return = true;
  }
  EXPECT_TRUE(has_return);
}

TEST(RuleCompiler, PrioritiesEncodePathRank) {
  RuleCompiler compiler({2});
  const auto s = diamond();
  const auto flows = compiler.compile(s.view, s.owner, s.transit);
  for (const auto& [sid, rules] : flows->per_switch) {
    for (const auto& r : *rules) {
      EXPECT_GE(r.prt, 0);
      EXPECT_LE(r.prt, compiler.nprt() - 1);
      EXPECT_EQ(r.sid, sid);
      EXPECT_EQ(r.cid, s.owner);
    }
  }
}

TEST(RuleCompiler, RuleListsAreCanonicallySorted) {
  RuleCompiler compiler({2});
  const auto s = from_topology(topo::make_b4(), 0, 7);
  const auto flows = compiler.compile(s.view, s.owner, s.transit);
  for (const auto& [sid, rules] : flows->per_switch) {
    EXPECT_TRUE(std::is_sorted(rules->begin(), rules->end(), rule_order));
    // No exact duplicates.
    for (std::size_t i = 0; i + 1 < rules->size(); ++i) {
      EXPECT_FALSE((*rules)[i] == (*rules)[i + 1]);
    }
  }
}

TEST(RuleCompiler, RuleCountRespectsLemma1Bound) {
  // Lemma 1 flavor: per controller a switch stores O((N_C+N_S-1) * n_prt)
  // rules — here each destination contributes at most kappa+1 forward and
  // kappa+1 reverse rules at any one switch.
  RuleCompiler compiler({2});
  for (const auto& t : topo::paper_topologies()) {
    const auto s = from_topology(t, 0, t.switch_graph.n() / 2);
    const auto flows = compiler.compile(s.view, s.owner, s.transit);
    const std::size_t bound =
        static_cast<std::size_t>(s.view.node_count() - 1) * 2 *
        static_cast<std::size_t>(compiler.kappa() + 1);
    for (const auto& [sid, rules] : flows->per_switch) {
      EXPECT_LE(rules->size(), bound) << t.name << " switch " << sid;
    }
  }
}

TEST(RuleCompiler, CacheKeyIncludesTransitMap) {
  RuleCompiler compiler({1});
  auto s = diamond();
  const auto a = compiler.compile_cached(s.view, s.owner, s.transit);
  const auto b = compiler.compile_cached(s.view, s.owner, s.transit);
  EXPECT_EQ(a.get(), b.get());  // cache hit
  // Same view, different knowledge about node kinds: must recompile.
  auto transit2 = s.transit;
  transit2[1] = false;  // node 1 turns out to be a controller
  const auto c = compiler.compile_cached(s.view, s.owner, transit2);
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a->view_fingerprint, c->view_fingerprint);
}

TEST(RuleCompiler, UnknownNodesAreOptimisticallyTransit) {
  RuleCompiler compiler({1});
  Scenario s = diamond();
  std::map<NodeId, bool> partial = {{4, false}};  // kinds unknown otherwise
  const auto flows = compiler.compile(s.view, s.owner, partial);
  EXPECT_FALSE(flows->first_hops.empty());
  EXPECT_TRUE(flows->first_hops.count(3));
}

TEST(RuleCompiler, DataFlowCoversBothDirectionsAndDelivery) {
  RuleCompiler compiler({1});
  const auto s = diamond();
  const NodeId ha = 10, hb = 11;
  const auto df =
      compiler.compile_data_flow(s.view, s.owner, ha, 0, hb, 3, s.transit);
  EXPECT_EQ(df.first_hops_a, (std::vector<NodeId>{0}));
  EXPECT_EQ(df.first_hops_b, (std::vector<NodeId>{3}));
  // Delivery rules at the attachment switches.
  bool deliver_b = false, deliver_a = false;
  for (const auto& r : *df.per_switch.at(3)) {
    if (r.src == ha && r.dest == hb && r.fwd == hb) deliver_b = true;
  }
  for (const auto& r : *df.per_switch.at(0)) {
    if (r.src == hb && r.dest == ha && r.fwd == ha) deliver_a = true;
  }
  EXPECT_TRUE(deliver_b);
  EXPECT_TRUE(deliver_a);
}

TEST(RuleCompiler, SingleFailureLeavesAnInstalledPathIntact) {
  // The kappa-fault-resilience property at the flow level: with kappa=1,
  // two edge-disjoint paths exist for every destination on a 2-edge-
  // connected topology, so any single link failure leaves one path whole.
  RuleCompiler compiler({1});
  for (const auto& t : topo::paper_topologies()) {
    const auto s = from_topology(t, 0, t.switch_graph.n() - 1);
    std::vector<NodeId> dsts;
    for (const auto& [n, _] : s.view.adj()) {
      if (n != s.owner) dsts.push_back(n);
    }
    int checked = 0;
    for (NodeId d : dsts) {
      if (++checked > 12) break;  // sample for speed
      const auto paths =
          disjoint_view_paths(s.view, s.owner, d, 2, s.transit);
      ASSERT_GE(paths.size(), 2u)
          << t.name << ": no two disjoint paths to " << d;
    }
  }
}

}  // namespace
}  // namespace ren::flows

#include <gtest/gtest.h>

#include "switchd/rule_table.hpp"

namespace ren::switchd {
namespace {

proto::Tag tag(NodeId owner, std::uint32_t e) { return proto::Tag{owner, e}; }

proto::RuleListPtr rules_of(NodeId cid, NodeId sid,
                            std::vector<std::tuple<NodeId, NodeId, Priority,
                                                   NodeId>> specs) {
  auto list = std::make_shared<proto::RuleList>();
  for (auto [src, dest, prt, fwd] : specs) {
    list->push_back(proto::Rule{cid, sid, src, dest, prt, fwd});
  }
  std::sort(list->begin(), list->end(), [](const auto& a, const auto& b) {
    if (a.dest != b.dest) return a.dest < b.dest;
    if (a.src != b.src) return a.src < b.src;
    return a.prt > b.prt;
  });
  return list;
}

TEST(RuleTable, MetaTagFollowsNewRound) {
  RuleTable t({1024});
  EXPECT_FALSE(t.meta_tag(7).has_value());
  t.new_round(7, tag(7, 1), 2);
  EXPECT_EQ(t.meta_tag(7)->epoch, 1u);
  t.new_round(7, tag(7, 2), 2);
  EXPECT_EQ(t.meta_tag(7)->epoch, 2u);
}

TEST(RuleTable, UpdateReplacesSameTagList) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{7, 1, 3, 2}}), tag(7, 1));
  EXPECT_EQ(t.total_rules(), 1u);
  t.update_rules(7, rules_of(7, 0, {{7, 1, 3, 2}, {7, 2, 3, 2}}), tag(7, 1));
  EXPECT_EQ(t.total_rules(), 2u);
}

TEST(RuleTable, RetentionTwoKeepsOnlyTheCurrentRound) {
  // Base Algorithm 2: "as the new rules for currTag are being installed,
  // the ones for prevTag are being removed".
  RuleTable t({1024});
  for (std::uint32_t e = 1; e <= 4; ++e) {
    t.new_round(7, tag(7, e), 2);
    t.update_rules(7, rules_of(7, 0, {{7, static_cast<NodeId>(e), 3, 2}}),
                   tag(7, e));
  }
  EXPECT_EQ(t.total_rules(), 1u);
  const auto owners = t.owners_summary();
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].tag.epoch, 4u);
}

TEST(RuleTable, RetentionThreeKeepsPreviousRoundAsFailover) {
  // Section 6.2 variant: installing currTag removes beforePrevTag but
  // keeps prevTag rules alive as failover.
  RuleTable t({1024});
  for (std::uint32_t e = 1; e <= 4; ++e) {
    t.new_round(7, tag(7, e), 3);
    t.update_rules(7, rules_of(7, 0, {{7, static_cast<NodeId>(e), 3, 2}}),
                   tag(7, e));
  }
  EXPECT_EQ(t.total_rules(), 2u);  // rounds 3 and 4
}

TEST(RuleTable, StaleRoundNeverShadowsCurrentRules) {
  // A (possibly corrupted) retained list from an older round must lose to
  // the current round's rules even with an absurdly high priority.
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 99, 111}}), tag(7, 1));
  t.new_round(7, tag(7, 2), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 2, 222}}), tag(7, 2));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands.front().fwd, 222);
}

TEST(RuleTable, DelAllRemovesOwnerEntirely) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{7, 1, 3, 2}}), tag(7, 1));
  t.new_round(8, tag(8, 1), 2);
  t.del_all(7);
  EXPECT_FALSE(t.has_rules_of(7));
  EXPECT_FALSE(t.meta_tag(7).has_value());
  EXPECT_TRUE(t.meta_tag(8).has_value());
  EXPECT_EQ(t.owners(), (std::vector<NodeId>{8}));
}

TEST(RuleTable, NewestRulesWinLookupTies) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 111}}), tag(7, 1));
  t.new_round(7, tag(7, 2), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 222}}), tag(7, 2));
  const auto& cands = t.candidates(5, 9);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front().fwd, 222);  // fresher round tag wins the tie
}

TEST(RuleTable, PriorityBeatsSpecificity) {
  // The paper applies "the rule with the highest prt that matches";
  // match specificity only breaks priority ties.
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7,
                 rules_of(7, 0,
                          {{kNoNode, 9, 3, 100},  // wildcard, high priority
                           {5, 9, 2, 200}}),      // exact, lower priority
                 tag(7, 1));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].fwd, 100);
  EXPECT_EQ(cands[1].fwd, 200);
}

TEST(RuleTable, ExactMatchBeatsWildcardAtSamePriority) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(
      7, rules_of(7, 0, {{kNoNode, 9, 3, 100}, {5, 9, 3, 200}}), tag(7, 1));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].fwd, 200);
}

TEST(RuleTable, LookupFiltersByMatch) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(
      7, rules_of(7, 0, {{4, 9, 3, 100}, {kNoNode, 8, 3, 200}}), tag(7, 1));
  EXPECT_TRUE(t.candidates(5, 9).empty());   // src mismatch
  EXPECT_FALSE(t.candidates(4, 9).empty());  // exact
  EXPECT_FALSE(t.candidates(1, 8).empty());  // wildcard src
  EXPECT_TRUE(t.candidates(1, 7).empty());   // no rule for dest 7
}

TEST(RuleTable, LookupCacheInvalidatedByMutation) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 100}}), tag(7, 1));
  EXPECT_EQ(t.candidates(5, 9).front().fwd, 100);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 300}}), tag(7, 1));
  EXPECT_EQ(t.candidates(5, 9).front().fwd, 300);
  t.del_all(7);
  EXPECT_TRUE(t.candidates(5, 9).empty());
}

TEST(RuleTable, CloggedMemoryEvictsLeastRecentlyUpdatedOwner) {
  RuleTable t({/*max_rules=*/4});
  t.new_round(1, tag(1, 1), 2);
  t.update_rules(1, rules_of(1, 0, {{1, 5, 3, 2}, {1, 6, 3, 2}}), tag(1, 1));
  t.new_round(2, tag(2, 1), 2);
  t.update_rules(2, rules_of(2, 0, {{2, 5, 3, 2}, {2, 6, 3, 2}}), tag(2, 1));
  EXPECT_EQ(t.total_rules(), 4u);
  // Owner 3 arrives; owner 1 (least recently updated) is evicted.
  t.new_round(3, tag(3, 1), 2);
  t.update_rules(3, rules_of(3, 0, {{3, 5, 3, 2}, {3, 6, 3, 2}}), tag(3, 1));
  EXPECT_LE(t.total_rules(), 4u);
  EXPECT_FALSE(t.has_rules_of(1));
  EXPECT_TRUE(t.has_rules_of(2));
  EXPECT_TRUE(t.has_rules_of(3));
  EXPECT_EQ(t.evictions(), 1u);
}

TEST(RuleTable, OwnersSummaryIncludesMetaOnlyOwners) {
  RuleTable t({1024});
  t.new_round(9, tag(9, 3), 2);  // newRound without updateRule yet
  const auto owners = t.owners_summary();
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].cid, 9);
  EXPECT_EQ(owners[0].count, 0u);
  EXPECT_EQ(owners[0].tag.epoch, 3u);
}

TEST(RuleTable, CorruptionIsRecoverableByResync) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  const auto clean = rules_of(7, 0, {{7, 1, 3, 2}, {7, 2, 3, 1}});
  t.update_rules(7, clean, tag(7, 1));
  Rng rng(5);
  t.corrupt(rng, 16);
  // A controller refresh reinstalls the canonical state.
  t.new_round(7, tag(7, 2), 2);
  t.update_rules(7, clean, tag(7, 2));
  t.new_round(7, tag(7, 3), 2);
  t.update_rules(7, clean, tag(7, 3));
  const auto now = t.newest_rules_of(7);
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(*now, *clean);
}

}  // namespace
}  // namespace ren::switchd

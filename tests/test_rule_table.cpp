#include <gtest/gtest.h>

#include "switchd/rule_table.hpp"

namespace ren::switchd {
namespace {

proto::Tag tag(NodeId owner, std::uint32_t e) { return proto::Tag{owner, e}; }

proto::RuleListPtr rules_of(NodeId cid, NodeId sid,
                            std::vector<std::tuple<NodeId, NodeId, Priority,
                                                   NodeId>> specs) {
  auto list = std::make_shared<proto::RuleList>();
  for (auto [src, dest, prt, fwd] : specs) {
    list->push_back(proto::Rule{cid, sid, src, dest, prt, fwd});
  }
  std::sort(list->begin(), list->end(), [](const auto& a, const auto& b) {
    if (a.dest != b.dest) return a.dest < b.dest;
    if (a.src != b.src) return a.src < b.src;
    return a.prt > b.prt;
  });
  return list;
}

TEST(RuleTable, MetaTagFollowsNewRound) {
  RuleTable t({1024});
  EXPECT_FALSE(t.meta_tag(7).has_value());
  t.new_round(7, tag(7, 1), 2);
  EXPECT_EQ(t.meta_tag(7)->epoch, 1u);
  t.new_round(7, tag(7, 2), 2);
  EXPECT_EQ(t.meta_tag(7)->epoch, 2u);
}

TEST(RuleTable, UpdateReplacesSameTagList) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{7, 1, 3, 2}}), tag(7, 1));
  EXPECT_EQ(t.total_rules(), 1u);
  t.update_rules(7, rules_of(7, 0, {{7, 1, 3, 2}, {7, 2, 3, 2}}), tag(7, 1));
  EXPECT_EQ(t.total_rules(), 2u);
}

TEST(RuleTable, RetentionTwoKeepsOnlyTheCurrentRound) {
  // Base Algorithm 2: "as the new rules for currTag are being installed,
  // the ones for prevTag are being removed".
  RuleTable t({1024});
  for (std::uint32_t e = 1; e <= 4; ++e) {
    t.new_round(7, tag(7, e), 2);
    t.update_rules(7, rules_of(7, 0, {{7, static_cast<NodeId>(e), 3, 2}}),
                   tag(7, e));
  }
  EXPECT_EQ(t.total_rules(), 1u);
  const auto owners = t.owners_summary();
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].tag.epoch, 4u);
}

TEST(RuleTable, RetentionThreeKeepsPreviousRoundAsFailover) {
  // Section 6.2 variant: installing currTag removes beforePrevTag but
  // keeps prevTag rules alive as failover.
  RuleTable t({1024});
  for (std::uint32_t e = 1; e <= 4; ++e) {
    t.new_round(7, tag(7, e), 3);
    t.update_rules(7, rules_of(7, 0, {{7, static_cast<NodeId>(e), 3, 2}}),
                   tag(7, e));
  }
  EXPECT_EQ(t.total_rules(), 2u);  // rounds 3 and 4
}

TEST(RuleTable, StaleRoundNeverShadowsCurrentRules) {
  // A (possibly corrupted) retained list from an older round must lose to
  // the current round's rules even with an absurdly high priority.
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 99, 111}}), tag(7, 1));
  t.new_round(7, tag(7, 2), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 2, 222}}), tag(7, 2));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands.front().fwd, 222);
}

TEST(RuleTable, DelAllRemovesOwnerEntirely) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{7, 1, 3, 2}}), tag(7, 1));
  t.new_round(8, tag(8, 1), 2);
  t.del_all(7);
  EXPECT_FALSE(t.has_rules_of(7));
  EXPECT_FALSE(t.meta_tag(7).has_value());
  EXPECT_TRUE(t.meta_tag(8).has_value());
  EXPECT_EQ(t.owners(), (std::vector<NodeId>{8}));
}

TEST(RuleTable, NewestRulesWinLookupTies) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 111}}), tag(7, 1));
  t.new_round(7, tag(7, 2), 3);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 222}}), tag(7, 2));
  const auto& cands = t.candidates(5, 9);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front().fwd, 222);  // fresher round tag wins the tie
}

TEST(RuleTable, PriorityBeatsSpecificity) {
  // The paper applies "the rule with the highest prt that matches";
  // match specificity only breaks priority ties.
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7,
                 rules_of(7, 0,
                          {{kNoNode, 9, 3, 100},  // wildcard, high priority
                           {5, 9, 2, 200}}),      // exact, lower priority
                 tag(7, 1));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].fwd, 100);
  EXPECT_EQ(cands[1].fwd, 200);
}

TEST(RuleTable, ExactMatchBeatsWildcardAtSamePriority) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(
      7, rules_of(7, 0, {{kNoNode, 9, 3, 100}, {5, 9, 3, 200}}), tag(7, 1));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].fwd, 200);
}

TEST(RuleTable, LookupFiltersByMatch) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(
      7, rules_of(7, 0, {{4, 9, 3, 100}, {kNoNode, 8, 3, 200}}), tag(7, 1));
  EXPECT_TRUE(t.candidates(5, 9).empty());   // src mismatch
  EXPECT_FALSE(t.candidates(4, 9).empty());  // exact
  EXPECT_FALSE(t.candidates(1, 8).empty());  // wildcard src
  EXPECT_TRUE(t.candidates(1, 7).empty());   // no rule for dest 7
}

TEST(RuleTable, LookupCacheInvalidatedByMutation) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 100}}), tag(7, 1));
  EXPECT_EQ(t.candidates(5, 9).front().fwd, 100);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 300}}), tag(7, 1));
  EXPECT_EQ(t.candidates(5, 9).front().fwd, 300);
  t.del_all(7);
  EXPECT_TRUE(t.candidates(5, 9).empty());
}

TEST(RuleTable, CloggedMemoryEvictsLeastRecentlyUpdatedOwner) {
  RuleTable t({/*max_rules=*/4});
  t.new_round(1, tag(1, 1), 2);
  t.update_rules(1, rules_of(1, 0, {{1, 5, 3, 2}, {1, 6, 3, 2}}), tag(1, 1));
  t.new_round(2, tag(2, 1), 2);
  t.update_rules(2, rules_of(2, 0, {{2, 5, 3, 2}, {2, 6, 3, 2}}), tag(2, 1));
  EXPECT_EQ(t.total_rules(), 4u);
  // Owner 3 arrives; owner 1 (least recently updated) is evicted.
  t.new_round(3, tag(3, 1), 2);
  t.update_rules(3, rules_of(3, 0, {{3, 5, 3, 2}, {3, 6, 3, 2}}), tag(3, 1));
  EXPECT_LE(t.total_rules(), 4u);
  EXPECT_FALSE(t.has_rules_of(1));
  EXPECT_TRUE(t.has_rules_of(2));
  EXPECT_TRUE(t.has_rules_of(3));
  EXPECT_EQ(t.evictions(), 1u);
}

TEST(RuleTable, OwnersSummaryIncludesMetaOnlyOwners) {
  RuleTable t({1024});
  t.new_round(9, tag(9, 3), 2);  // newRound without updateRule yet
  const auto owners = t.owners_summary();
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].cid, 9);
  EXPECT_EQ(owners[0].count, 0u);
  EXPECT_EQ(owners[0].tag.epoch, 3u);
}

// --- Flow store (capacity-limited, property-based) ---------------------------

/// Naive reference model of the flow store: a flat map plus linear scans,
/// mirroring the documented semantics (priority-masked LRU / reject-lowest,
/// stamp refresh on reinstall and on lookup) with none of the index
/// structures. The differential tests drive RuleTable and this model with
/// the same operation stream and require identical observable state.
struct FlowRef {
  struct Entry {
    FlowRule rule;
    std::uint64_t stamp = 0;
    std::uint64_t seq = 0;  ///< match-list append order (install time)
  };
  std::size_t max_rules = 0;
  std::size_t mgmt = 0;  ///< protected management rules sharing the table
  EvictionPolicy policy = EvictionPolicy::PriorityLru;
  std::map<std::uint64_t, Entry> flows;
  std::uint64_t stamp = 0, seq = 0;
  std::uint64_t installs = 0, removals = 0, rejects = 0, evictions = 0;
  std::uint64_t peak = 0, lookups = 0, lookup_cost = 0;

  std::size_t occupancy() const { return mgmt + flows.size(); }

  void note_peak() { peak = std::max<std::uint64_t>(peak, occupancy()); }

  std::uint64_t pick_victim(Priority incoming) const {
    std::uint64_t victim = 0, best_stamp = 0;
    if (policy == EvictionPolicy::RejectLowest) {
      Priority best_prt = 0;
      for (const auto& [id, e] : flows) {
        if (victim == 0 || e.rule.prt < best_prt ||
            (e.rule.prt == best_prt && e.stamp < best_stamp)) {
          victim = id;
          best_prt = e.rule.prt;
          best_stamp = e.stamp;
        }
      }
      return victim != 0 && best_prt < incoming ? victim : 0;
    }
    for (const auto& [id, e] : flows) {
      if (e.rule.prt > incoming) continue;
      if (victim == 0 || e.stamp < best_stamp) {
        victim = id;
        best_stamp = e.stamp;
      }
    }
    return victim;
  }

  bool install(const FlowRule& r) {
    if (r.id == 0) return false;
    if (auto it = flows.find(r.id); it != flows.end()) {
      it->second.rule = r;
      it->second.stamp = ++stamp;
      return true;
    }
    if (occupancy() >= max_rules) {
      const std::uint64_t victim = pick_victim(r.prt);
      if (victim == 0) {
        ++rejects;
        return false;
      }
      flows.erase(victim);
      ++evictions;
    }
    Entry e;
    e.rule = r;
    e.stamp = ++stamp;
    e.seq = ++seq;
    flows.emplace(r.id, e);
    ++installs;
    note_peak();
    return true;
  }

  bool remove(std::uint64_t id) {
    if (flows.erase(id) == 0) return false;
    ++removals;
    return true;
  }

  /// Header lookup: cost accounting plus the LRU refresh of matching
  /// entries, in match-list (install) order like the real table.
  void lookup(NodeId src, NodeId dst) {
    ++lookups;
    std::uint64_t probe = 1;
    for (std::size_t occ = occupancy(); occ > 1; occ >>= 1) ++probe;
    std::vector<Entry*> matches;
    for (auto& [id, e] : flows) {
      if (e.rule.src == src && e.rule.dst == dst) matches.push_back(&e);
    }
    lookup_cost += probe + matches.size();
    std::sort(matches.begin(), matches.end(),
              [](const Entry* a, const Entry* b) { return a->seq < b->seq; });
    for (Entry* e : matches) e->stamp = ++stamp;
  }
};

/// The flow header a given id is bound to for its whole lifetime (flow ids
/// never change headers, matching the generator's contract). Headers live
/// in [1000, 1000+kSpace) so they can never collide with management rules.
FlowRule flow_of(std::uint64_t id, NodeId fwd) {
  constexpr NodeId kSpace = 6;
  FlowRule r;
  r.id = id;
  r.src = 1000 + static_cast<NodeId>(id % kSpace);
  r.dst = 1000 + static_cast<NodeId>((id / kSpace) % kSpace);
  r.prt = static_cast<Priority>(id % 4);
  r.fwd = fwd;
  return r;
}

TEST(RuleTableFlows, DifferentialRandomChurnAgainstNaiveModel) {
  for (const auto policy :
       {EvictionPolicy::PriorityLru, EvictionPolicy::RejectLowest}) {
    for (const std::size_t mgmt : {std::size_t{0}, std::size_t{2}}) {
      RuleTable t({/*max_rules=*/16});
      t.set_eviction_policy(policy);
      FlowRef ref;
      ref.max_rules = 16;
      ref.policy = policy;
      if (mgmt > 0) {
        // Two protected management rules share the table; their headers
        // (node ids < 1000) never match a flow lookup.
        t.new_round(1, tag(1, 1), 2);
        t.update_rules(1, rules_of(1, 0, {{1, 5, 3, 2}, {1, 6, 3, 2}}),
                       tag(1, 1));
        ref.mgmt = 2;
      }
      Rng rng(0xf10c ^ (static_cast<std::uint64_t>(policy) << 8) ^ mgmt);
      for (int step = 0; step < 4000; ++step) {
        const std::uint64_t id = 1 + rng.next_below(40);
        const auto op = rng.next_below(10);
        if (op < 5) {
          const FlowRule r = flow_of(id, static_cast<NodeId>(step));
          ASSERT_EQ(t.install_flow(r), ref.install(r)) << "step " << step;
        } else if (op < 7) {
          ASSERT_EQ(t.remove_flow(id), ref.remove(id)) << "step " << step;
        } else if (op < 9) {
          const FlowRule h = flow_of(id, 0);
          (void)t.lookup(h.src, h.dst);
          ref.lookup(h.src, h.dst);
        } else {
          t.clear_flows();
          ref.removals += ref.flows.size();
          ref.flows.clear();
        }
        // Cheap invariants every step; full state diff sampled.
        ASSERT_LE(t.occupancy(), 16u) << "step " << step;
        ASSERT_EQ(t.flow_rules(), ref.flows.size()) << "step " << step;
        if (step % 97 == 0) {
          const auto& fs = t.flow_stats();
          ASSERT_EQ(fs.installs, ref.installs) << "step " << step;
          ASSERT_EQ(fs.removals, ref.removals) << "step " << step;
          ASSERT_EQ(fs.overflow_rejects, ref.rejects) << "step " << step;
          ASSERT_EQ(fs.flow_evictions, ref.evictions) << "step " << step;
          ASSERT_EQ(fs.peak_rules, ref.peak) << "step " << step;
          ASSERT_EQ(fs.lookups, ref.lookups) << "step " << step;
          ASSERT_EQ(fs.lookup_cost, ref.lookup_cost) << "step " << step;
          ASSERT_EQ(fs.installs,
                    fs.removals + fs.flow_evictions + t.flow_rules());
        }
      }
      // End-of-run: identical survivor sets (every eviction picked the same
      // victim on both sides).
      for (const auto& [id, e] : ref.flows) {
        ASSERT_TRUE(t.remove_flow(id)) << "missing flow " << id;
      }
      ASSERT_EQ(t.flow_rules(), 0u);
      if (mgmt > 0) {
        EXPECT_TRUE(t.has_rules_of(1));  // management survived all pressure
        EXPECT_EQ(t.total_rules(), 2u);
      }
    }
  }
}

TEST(RuleTableFlows, RejectLowestRefusesNonBeatingPriorities) {
  RuleTable t({/*max_rules=*/2});
  t.set_eviction_policy(EvictionPolicy::RejectLowest);
  EXPECT_TRUE(t.install_flow({1, 10, 20, /*prt=*/5, 3}));
  EXPECT_TRUE(t.install_flow({2, 11, 21, /*prt=*/5, 3}));
  // Equal priority does not displace (must strictly beat the lowest).
  EXPECT_FALSE(t.install_flow({3, 12, 22, /*prt=*/5, 3}));
  EXPECT_EQ(t.flow_stats().overflow_rejects, 1u);
  // Higher priority evicts the lowest class's oldest entry (id 1).
  EXPECT_TRUE(t.install_flow({4, 13, 23, /*prt=*/7, 3}));
  EXPECT_EQ(t.flow_stats().flow_evictions, 1u);
  EXPECT_FALSE(t.remove_flow(1));  // the victim
  EXPECT_TRUE(t.remove_flow(2));
  EXPECT_TRUE(t.remove_flow(4));
}

TEST(RuleTableFlows, PriorityLruSparesClassesAboveTheNewcomer) {
  RuleTable t({/*max_rules=*/2});
  EXPECT_TRUE(t.install_flow({1, 10, 20, /*prt=*/9, 3}));
  EXPECT_TRUE(t.install_flow({2, 11, 21, /*prt=*/9, 3}));
  // Priority-masked LRU: nothing at or below prt 4 exists, so reject.
  EXPECT_FALSE(t.install_flow({3, 12, 22, /*prt=*/4, 3}));
  EXPECT_EQ(t.flow_stats().overflow_rejects, 1u);
  // An equal-priority newcomer evicts the LRU entry of its own class.
  EXPECT_TRUE(t.install_flow({4, 13, 23, /*prt=*/9, 3}));
  EXPECT_FALSE(t.remove_flow(1));
  EXPECT_TRUE(t.remove_flow(2));
}

TEST(RuleTableFlows, LookupRefreshKeepsPopularFlowsAlive) {
  RuleTable t({/*max_rules=*/2});
  EXPECT_TRUE(t.install_flow({1, 10, 20, 0, 3}));
  EXPECT_TRUE(t.install_flow({2, 11, 21, 0, 3}));
  (void)t.lookup(10, 20);  // flow 1 becomes the most recently used
  EXPECT_TRUE(t.install_flow({3, 12, 22, 0, 3}));
  EXPECT_TRUE(t.remove_flow(1));   // survived: the lookup refreshed it
  EXPECT_FALSE(t.remove_flow(2));  // the LRU victim
}

TEST(RuleTableFlows, ManagementInstallEvictsFlowsNeverTheReverse) {
  RuleTable t({/*max_rules=*/4});
  t.new_round(1, tag(1, 1), 2);
  t.update_rules(1, rules_of(1, 0, {{1, 5, 3, 2}, {1, 6, 3, 2}}), tag(1, 1));
  EXPECT_TRUE(t.install_flow({1, 10, 20, 9, 3}));
  EXPECT_TRUE(t.install_flow({2, 11, 21, 9, 3}));
  EXPECT_EQ(t.occupancy(), 4u);
  // A flow at the cap cannot displace management rules: with no flow victim
  // at or below prt 0 it is rejected outright.
  RuleTable t2({/*max_rules=*/2});
  t2.new_round(1, tag(1, 1), 2);
  t2.update_rules(1, rules_of(1, 0, {{1, 5, 3, 2}, {1, 6, 3, 2}}), tag(1, 1));
  EXPECT_FALSE(t2.install_flow({9, 10, 20, 99, 3}));
  EXPECT_EQ(t2.total_rules(), 2u);
  // A management install under pressure evicts flows first (protected rules
  // stay; the flow store shrinks), charged to flow_evictions.
  t.new_round(2, tag(2, 1), 2);
  t.update_rules(2, rules_of(2, 0, {{2, 5, 3, 2}, {2, 6, 3, 2}}), tag(2, 1));
  EXPECT_TRUE(t.has_rules_of(1));
  EXPECT_TRUE(t.has_rules_of(2));
  EXPECT_EQ(t.total_rules(), 4u);
  EXPECT_EQ(t.flow_rules(), 0u);
  EXPECT_EQ(t.flow_stats().flow_evictions, 2u);
  EXPECT_EQ(t.evictions(), 0u);  // no owner was clog-evicted
}

TEST(RuleTableFlows, FlowEntriesJoinTheCandidateList) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  t.update_rules(7, rules_of(7, 0, {{kNoNode, 9, 3, 100}}), tag(7, 1));
  EXPECT_TRUE(t.install_flow({1, 5, 9, /*prt=*/8, 42}));
  const auto& cands = t.candidates(5, 9);
  ASSERT_GE(cands.size(), 2u);
  // The exact-match flow entry outranks the wildcard management rule.
  EXPECT_EQ(cands.front().fwd, 42);
  // Flow mutations do not advance the monitor epoch (churn is not
  // monitor-observable state).
  const auto epoch = t.epoch();
  EXPECT_TRUE(t.install_flow({2, 6, 9, 1, 43}));
  EXPECT_TRUE(t.remove_flow(2));
  t.clear_flows();
  EXPECT_EQ(t.epoch(), epoch);
}

TEST(RuleTable, CorruptionIsRecoverableByResync) {
  RuleTable t({1024});
  t.new_round(7, tag(7, 1), 2);
  const auto clean = rules_of(7, 0, {{7, 1, 3, 2}, {7, 2, 3, 1}});
  t.update_rules(7, clean, tag(7, 1));
  Rng rng(5);
  t.corrupt(rng, 16);
  // A controller refresh reinstalls the canonical state.
  t.new_round(7, tag(7, 2), 2);
  t.update_rules(7, clean, tag(7, 2));
  t.new_round(7, tag(7, 3), 2);
  t.update_rules(7, clean, tag(7, 3));
  const auto now = t.newest_rules_of(7);
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(*now, *clean);
}

}  // namespace
}  // namespace ren::switchd

// Scenario engine: JSON plumbing, spec round-trips, restart/restore fault
// bookkeeping, and the campaign runner's thread-count determinism contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "test_helpers.hpp"

namespace ren {
namespace {

using scenario::Json;
using scenario::Scenario;

// --- JSON -------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"name":"x","n":3,"f":1.5,"flag":true,"none":null,)"
      R"("arr":[1,2,3],"nested":{"s":"a\nb"}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.string_or("name", ""), "x");
  EXPECT_EQ(doc.number_or("n", 0), 3);
  EXPECT_EQ(doc.number_or("f", 0), 1.5);
  EXPECT_TRUE(doc.bool_or("flag", false));
  EXPECT_TRUE(doc.find("none")->is_null());
  EXPECT_EQ(doc.find("arr")->as_array().size(), 3u);
  EXPECT_EQ(doc.find("nested")->find("s")->as_string(), "a\nb");
  // dump -> parse -> dump is a fixed point.
  const std::string once = doc.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("nope"), std::runtime_error);
  // Malformed numbers must not be silently prefix-parsed.
  EXPECT_THROW(Json::parse("[1.2.3]"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1-2]"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1e]"), std::runtime_error);
}

// --- Spec round-trip --------------------------------------------------------

TEST(ScenarioSpec, BuiltinsRoundTrip) {
  for (const auto& name : scenario::builtin_names()) {
    const Scenario original = scenario::builtin(name);
    const std::string spec = scenario::to_spec_json(original).pretty();
    const Scenario reparsed = scenario::parse_spec(spec);
    EXPECT_EQ(original, reparsed) << "round-trip changed scenario " << name;
  }
}

TEST(ScenarioSpec, BuilderEventsSurviveRoundTrip) {
  Scenario s;
  s.name = "custom";
  s.description = "desc";
  s.topologies = {"B4"};
  s.controllers = {3, 5};
  s.trials = 3;
  s.base_seed = 42;
  s.expect_converged(sec(0), "bootstrap", sec(90))
      .fail_links(sec(2), 2, /*keep_connected=*/false)
      .kill_switches(sec(3), 2)
      .corrupt_all(sec(4))
      .freeze(sec(5))
      .unfreeze(sec(6))
      .restore_links(sec(7))
      .restart_nodes(sec(7))
      .start_traffic(sec(8))
      .expect_converged(sec(9), "end", sec(60));
  const Scenario reparsed = scenario::parse_spec(scenario::to_spec_json(s).dump());
  EXPECT_EQ(s, reparsed);
}

TEST(ScenarioSpec, RejectsUnknownKeysAndKinds) {
  EXPECT_THROW(scenario::parse_spec(R"({"name":"x","bogus":1})"),
               std::runtime_error);
  EXPECT_THROW(
      scenario::parse_spec(R"({"events":[{"kind":"explode_switch"}]})"),
      std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec(R"({"trials":0})"), std::runtime_error);
  EXPECT_THROW(scenario::parse_spec(R"({"topologies":[]})"),
               std::runtime_error);
}

TEST(ScenarioSpec, UnknownBuiltinThrows) {
  EXPECT_THROW(scenario::builtin("does_not_exist"), std::invalid_argument);
}

TEST(ScenarioSpec, LibrarySizeMatchesTheAdvertisedCount) {
  // kBuiltinCount is the one written-down library size; the name list and
  // the builtin() dispatch must stay in lockstep with it.
  const auto names = scenario::builtin_names();
  EXPECT_EQ(names.size(), scenario::kBuiltinCount);
  for (const auto& n : names) {
    EXPECT_EQ(scenario::builtin(n).name, n);
  }
}

// --- Generic axes -----------------------------------------------------------

TEST(ScenarioAxes, BuilderValidatesNamesAndValues) {
  Scenario s;
  s.axis("kappa", {1, 2, 3});  // ok
  s.axis("task_delay_ms", {500, 0.5});  // fractional milliseconds are fine
  s.axis("link_loss", {0.0, 0.01});
  s.axis("theta", {10, 30});
  EXPECT_THROW(s.axis("bogus_axis", {1}), std::invalid_argument);
  EXPECT_THROW(s.axis("kappa", {}), std::invalid_argument);
  EXPECT_THROW(s.axis("kappa", {1.5}), std::invalid_argument);
  EXPECT_THROW(s.axis("kappa", {-1}), std::invalid_argument);
  EXPECT_THROW(s.axis("theta", {0}), std::invalid_argument);
  EXPECT_THROW(s.axis("task_delay_ms", {0}), std::invalid_argument);
  EXPECT_THROW(s.axis("link_loss", {1.0}), std::invalid_argument);
  EXPECT_THROW(s.axis("link_loss", {-0.1}), std::invalid_argument);
  // Re-declaring an axis replaces its values instead of duplicating it.
  s.axis("kappa", {4});
  ASSERT_EQ(s.axes.size(), 4u);
  EXPECT_EQ(s.axes[0].values, (std::vector<double>{4}));
}

TEST(ScenarioAxes, SpecRoundTripIsIdentity) {
  Scenario s;
  s.name = "axes";
  s.axis("kappa", {1, 2}).axis("task_delay_ms", {500, 100, 20});
  s.calibrate_rtt = true;
  s.max_events = 8'000'000;
  s.expect_converged(sec(0), "bootstrap", sec(30));
  const std::string spec = scenario::to_spec_json(s).pretty();
  const Scenario reparsed = scenario::parse_spec(spec);
  EXPECT_EQ(s, reparsed);
  // And the reparsed spec serializes to the same bytes.
  EXPECT_EQ(scenario::to_spec_json(reparsed).pretty(), spec);
}

TEST(ScenarioAxes, SpecRejectsUnknownAxes) {
  EXPECT_THROW(scenario::parse_spec(R"({"axes":{"warp_factor":[9]}})"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec(R"({"axes":{"kappa":[]}})"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec(R"({"axes":{"link_loss":[2.0]}})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, TrafficEventsSurviveRoundTrip) {
  Scenario s;
  s.name = "traffic";
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_traffic(sec(5), "window");
  s.fail_path_link(sec(7), msec(200));
  s.stop_traffic(sec(9));
  s.calibrate_rtt = true;
  const Scenario reparsed =
      scenario::parse_spec(scenario::to_spec_json(s).dump());
  EXPECT_EQ(s, reparsed);
  EXPECT_TRUE(reparsed.needs_hosts());
  EXPECT_EQ(reparsed.events[2].detection, msec(200));
}

TEST(ScenarioSpec, RejectsSeedsBeyondDoublePrecision) {
  Scenario s;
  s.base_seed = (1ULL << 53) + 1;  // not representable as a double
  EXPECT_THROW(scenario::to_spec_json(s), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec(R"({"seed":1e17})"), std::invalid_argument);
  EXPECT_EQ(scenario::parse_spec(R"({"seed":123})").base_seed, 123u);
}

TEST(ScenarioSpec, PeriodicEventsExpand) {
  Scenario s;
  s.fail_links(sec(5), 2).every(sec(4), 3);
  s.restore_links(sec(7)).every(sec(4), 3);
  s.expect_converged(sec(20), "settle");
  const auto expanded = s.expanded_events();
  ASSERT_EQ(expanded.size(), 7u);
  std::vector<Time> at;
  for (const auto& e : expanded) at.push_back(e.at);
  EXPECT_EQ(at, (std::vector<Time>{sec(5), sec(7), sec(9), sec(11), sec(13),
                                   sec(15), sec(20)}));
  // Expanded occurrences are concrete: no residual periodicity.
  for (const auto& e : expanded) {
    EXPECT_EQ(e.every, 0);
    EXPECT_EQ(e.repeat, 1);
  }
  // Occurrences keep the original event's parameters.
  EXPECT_EQ(expanded[2].kind, scenario::EventKind::FailLinks);
  EXPECT_EQ(expanded[2].count, 2);
}

TEST(ScenarioSpec, PeriodicCheckpointsGetDistinctLabels) {
  Scenario s;
  s.expect_converged(sec(1), "probe", sec(30)).every(sec(2), 3);
  const auto expanded = s.expanded_events();
  ASSERT_EQ(expanded.size(), 3u);
  EXPECT_EQ(expanded[0].label, "probe");
  EXPECT_EQ(expanded[1].label, "probe_1");
  EXPECT_EQ(expanded[2].label, "probe_2");
}

TEST(ScenarioSpec, PeriodicEventsSurviveRoundTrip) {
  Scenario s;
  s.name = "periodic";
  s.fail_links(sec(5), 1).every(sec(3), 4);
  s.expect_converged(sec(20), "settle");
  const Scenario reparsed =
      scenario::parse_spec(scenario::to_spec_json(s).dump());
  EXPECT_EQ(s, reparsed);
  EXPECT_EQ(reparsed.expanded_events().size(), 5u);
}

TEST(ScenarioSpec, PeriodicEventValidation) {
  Scenario empty;
  EXPECT_THROW(empty.every(sec(1), 2), std::logic_error);
  Scenario s;
  s.fail_links(sec(1), 1);
  EXPECT_THROW(s.every(0, 2), std::invalid_argument);
  EXPECT_THROW(s.every(sec(1), 0), std::invalid_argument);
  // Either half of a periodic spec alone is an error, not a silent one-shot.
  EXPECT_THROW(scenario::parse_spec(
                   R"({"events":[{"kind":"fail_links","repeat":3}]})"),
               std::runtime_error);
  EXPECT_THROW(scenario::parse_spec(
                   R"({"events":[{"kind":"fail_links","every_ms":4000}]})"),
               std::runtime_error);
}

TEST(ScenarioSpec, LinkFlapStormUsesPeriodicEvents) {
  const Scenario s = scenario::builtin("link_flap_storm");
  bool has_periodic = false;
  for (const auto& e : s.events) has_periodic |= e.every > 0;
  EXPECT_TRUE(has_periodic);
  EXPECT_GT(s.expanded_events().size(), s.events.size());
}

TEST(ScenarioSpec, SortedEventsIsStableOnTies) {
  Scenario s;
  s.restart_nodes(sec(5));
  s.expect_converged(sec(5), "after_restart");
  const auto sorted = s.sorted_events();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].kind, scenario::EventKind::RestartNodes);
  EXPECT_EQ(sorted[1].kind, scenario::EventKind::ExpectConverged);
}

// --- Restart / restore bookkeeping -----------------------------------------

TEST(FaultRestore, ControllerRestartRestoresLinksAndConverges) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  testing::bootstrap_or_fail(exp);
  auto cp = exp.control_plane();

  const NodeId victim = faults::kill_random_controller(cp, exp.fault_rng());
  ASSERT_NE(victim, kNoNode);
  EXPECT_FALSE(exp.sim().node(victim).alive());
  ASSERT_EQ(cp.killed_nodes.size(), 1u);

  // Let the survivors absorb the failure, then revive.
  exp.sim().run_until(exp.sim().now() + sec(5));
  ASSERT_TRUE(faults::restart_node(cp, victim));
  EXPECT_TRUE(exp.sim().node(victim).alive());
  EXPECT_TRUE(cp.killed_nodes.empty());
  // The kill's collateral link damage is undone.
  for (const auto& e : exp.sim().network().adjacency(victim)) {
    EXPECT_NE(exp.sim().network().link(e.link).state(),
              net::LinkState::PermanentDown);
  }
  const auto rec = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(rec.converged) << rec.last_reason;
}

TEST(FaultRestore, RestartIsNoOpOnLiveNode) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  auto cp = exp.control_plane();
  EXPECT_FALSE(faults::restart_node(cp, exp.controller(0).id()));
}

TEST(FaultRestore, FailAndRestoreLinkRoundTrip) {
  sim::Experiment exp(testing::fast_config("B4", 3));
  testing::bootstrap_or_fail(exp);
  auto cp = exp.control_plane();

  const auto link = faults::fail_random_link(cp, exp.fault_rng());
  ASSERT_NE(link.first, kNoNode);
  EXPECT_FALSE(exp.sim().network().link_connected(link.first, link.second));
  ASSERT_EQ(cp.failed_links.size(), 1u);

  EXPECT_TRUE(faults::restore_link(cp, link.first, link.second));
  EXPECT_TRUE(exp.sim().network().link_operational(link.first, link.second));
  EXPECT_TRUE(cp.failed_links.empty());
  // Restoring an up link reports false.
  EXPECT_FALSE(faults::restore_link(cp, link.first, link.second));

  const auto rec = exp.run_until_legitimate(sec(60));
  EXPECT_TRUE(rec.converged) << rec.last_reason;
}

TEST(FaultRestore, StaleTimersDoNotFireAfterRevive) {
  // A timer chain scheduled before the crash must stay dead after the
  // revival (otherwise every kill+restart doubles the do-forever rate).
  sim::Experiment exp(testing::fast_config("B4", 3));
  testing::bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  const NodeId victim = faults::kill_random_controller(cp, exp.fault_rng());
  ASSERT_NE(victim, kNoNode);
  faults::restart_node(cp, victim);

  const auto& counters = exp.sim().counters();
  const auto idx = static_cast<std::size_t>(victim);
  const std::uint64_t before = counters.iterations[idx];
  const Time window = sec(5);
  exp.sim().run_until(exp.sim().now() + window);
  const std::uint64_t iters = counters.iterations[idx] - before;
  const auto expected =
      static_cast<std::uint64_t>(window / exp.config().task_delay);
  EXPECT_LE(iters, expected + 2);  // one chain, not two
  EXPECT_GE(iters, expected - 2);
}

// --- Campaign runner --------------------------------------------------------

Scenario quick_scenario() {
  Scenario s;
  s.name = "quick";
  s.description = "kill one controller, expect recovery";
  s.topologies = {"B4", "Clos"};
  s.controllers = {3};
  s.trials = 4;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.kill_controller(sec(2));
  s.expect_converged(sec(2), "recovery", sec(60));
  return s;
}

TEST(CampaignRunner, TrialSeedsAreDistinctAndStable) {
  const auto a = scenario::trial_seed(1, "B4", 3, 0);
  EXPECT_EQ(a, scenario::trial_seed(1, "B4", 3, 0));
  EXPECT_NE(a, scenario::trial_seed(1, "B4", 3, 1));
  EXPECT_NE(a, scenario::trial_seed(1, "B4", 5, 0));
  EXPECT_NE(a, scenario::trial_seed(1, "Clos", 3, 0));
  EXPECT_NE(a, scenario::trial_seed(2, "B4", 3, 0));
}

TEST(CampaignRunner, AggregatesConvergedTrials) {
  scenario::RunnerOptions opt;
  opt.threads = 2;
  const auto result = scenario::run_campaign(quick_scenario(), opt);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.trials, 4);
    ASSERT_EQ(cell.checkpoints.size(), 2u);
    EXPECT_EQ(cell.checkpoints[0].label, "bootstrap");
    EXPECT_EQ(cell.checkpoints[1].label, "recovery");
    EXPECT_EQ(cell.checkpoints[1].converged, 4) << cell.topology;
    EXPECT_GT(cell.messages.mean, 0);
  }
}

TEST(CampaignRunner, JsonIsIdenticalAcrossThreadCounts) {
  const Scenario s = quick_scenario();
  scenario::RunnerOptions serial;
  serial.threads = 1;
  scenario::RunnerOptions parallel;
  parallel.threads =
      std::max(2u, std::thread::hardware_concurrency());
  const std::string a = scenario::run_campaign(s, serial).to_json().pretty();
  const std::string b = scenario::run_campaign(s, parallel).to_json().pretty();
  EXPECT_EQ(a, b);
}

TEST(CampaignRunner, RejectsUnknownTopology) {
  Scenario s = quick_scenario();
  s.topologies = {"Atlantis"};
  EXPECT_THROW(scenario::run_campaign(s, {}), std::invalid_argument);
}

TEST(CampaignRunner, RawExportCarriesPerTrialSamples) {
  scenario::RunnerOptions opt;
  opt.threads = 2;
  opt.include_raw = true;
  const auto result = scenario::run_campaign(quick_scenario(), opt);
  for (const auto& cell : result.cells) {
    ASSERT_EQ(cell.raw.size(), 4u) << cell.topology;
    for (std::size_t r = 0; r < cell.raw.size(); ++r) {
      EXPECT_EQ(cell.raw[r].first, static_cast<int>(r));  // grid order
      EXPECT_EQ(cell.raw[r].second.checkpoints.size(), 2u);
    }
  }
  // The JSON rendering includes the raw array (and stays parseable).
  const auto doc = Json::parse(result.to_json().pretty());
  const auto& cell0 = doc.find("cells")->as_array()[0];
  ASSERT_NE(cell0.find("raw"), nullptr);
  EXPECT_EQ(cell0.find("raw")->as_array().size(), 4u);
}

TEST(CampaignRunner, ShardsPartitionTheGridExactly) {
  const Scenario s = quick_scenario();  // 2 topologies x 1 x 4 = 8 trials
  scenario::RunnerOptions whole;
  whole.threads = 2;
  whole.include_raw = true;
  const auto full = scenario::run_campaign(s, whole);

  // Each trial's raw record must appear in exactly one of the 3 shards and
  // match the unsharded run bit-for-bit (seeds depend only on the grid).
  std::map<std::pair<std::string, int>, int> seen;
  for (int k = 0; k < 3; ++k) {
    scenario::RunnerOptions part = whole;
    part.shard_index = k;
    part.shard_count = 3;
    const auto shard = scenario::run_campaign(s, part);
    ASSERT_EQ(shard.cells.size(), full.cells.size());
    for (std::size_t c = 0; c < shard.cells.size(); ++c) {
      for (const auto& [trial, out] : shard.cells[c].raw) {
        ++seen[{shard.cells[c].topology, trial}];
        // Compare against the same trial in the unsharded run.
        const auto& ref = full.cells[c].raw;
        const auto it =
            std::find_if(ref.begin(), ref.end(),
                         [&](const auto& p) { return p.first == trial; });
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(out.checkpoints.size(), it->second.checkpoints.size());
        for (std::size_t i = 0; i < out.checkpoints.size(); ++i) {
          EXPECT_EQ(out.checkpoints[i].seconds,
                    it->second.checkpoints[i].seconds);
        }
        EXPECT_EQ(out.messages, it->second.messages);
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u);  // every (topology, trial) exactly once
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << key.first << "/" << key.second;
  }
}

TEST(CampaignRunner, MergeReproducesUnshardedReportByteForByte) {
  const Scenario s = quick_scenario();
  scenario::RunnerOptions plain;
  plain.threads = 2;
  const std::string unsharded =
      scenario::run_campaign(s, plain).to_json().pretty();

  // Run the same campaign as 3 shards with raw samples, round-trip each
  // report through its JSON text (as files would), and merge.
  std::vector<Json> shards;
  for (int k = 0; k < 3; ++k) {
    scenario::RunnerOptions part = plain;
    part.include_raw = true;
    part.shard_index = k;
    part.shard_count = 3;
    shards.push_back(Json::parse(
        scenario::run_campaign(s, part).to_json().pretty()));
  }
  const auto merged = scenario::merge_campaigns(shards);
  EXPECT_EQ(merged.to_json().pretty(), unsharded);

  // A partial merge still aggregates (fewer trials), just not identically.
  const auto partial =
      scenario::merge_campaigns({shards[0], shards[2]});
  EXPECT_LT(partial.cells[0].trials, merged.cells[0].trials);
}

TEST(CampaignRunner, MergeRejectsBadInput) {
  const Scenario s = quick_scenario();
  scenario::RunnerOptions raw1;
  raw1.threads = 2;
  raw1.include_raw = true;
  raw1.shard_count = 2;
  const auto shard1 =
      Json::parse(scenario::run_campaign(s, raw1).to_json().pretty());

  // Overlapping trials: the same shard twice.
  EXPECT_THROW((void)scenario::merge_campaigns({shard1, shard1}),
               std::invalid_argument);
  // A report without raw samples cannot be merged.
  scenario::RunnerOptions no_raw = raw1;
  no_raw.include_raw = false;
  no_raw.shard_index = 1;
  const auto bare =
      Json::parse(scenario::run_campaign(s, no_raw).to_json().pretty());
  EXPECT_THROW((void)scenario::merge_campaigns({bare}),
               std::invalid_argument);
  // Mismatched campaigns (different seed) don't merge.
  Scenario other = quick_scenario();
  other.base_seed = 999;
  scenario::RunnerOptions raw2 = raw1;
  raw2.shard_index = 1;
  const auto alien =
      Json::parse(scenario::run_campaign(other, raw2).to_json().pretty());
  EXPECT_THROW((void)scenario::merge_campaigns({shard1, alien}),
               std::invalid_argument);
  EXPECT_THROW((void)scenario::merge_campaigns({}), std::invalid_argument);
}

Scenario axes_scenario() {
  Scenario s = quick_scenario();
  s.name = "quick_axes";
  s.topologies = {"B4"};
  s.trials = 2;
  s.axis("kappa", {1, 2}).axis("theta", {10, 30});
  return s;
}

TEST(CampaignRunner, AxesExpandIntoCells) {
  scenario::RunnerOptions opt;
  opt.threads = 2;
  const auto result = scenario::run_campaign(axes_scenario(), opt);
  // 1 topology x 1 controller count x (2 kappa x 2 theta) = 4 cells.
  ASSERT_EQ(result.cells.size(), 4u);
  const scenario::AxisPoint expect0{{"kappa", 1}, {"theta", 10}};
  const scenario::AxisPoint expect3{{"kappa", 2}, {"theta", 30}};
  EXPECT_EQ(result.cells[0].axes, expect0);
  EXPECT_EQ(result.cells[3].axes, expect3);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.trials, 2) << cell.topology;
    EXPECT_EQ(cell.checkpoints.size(), 2u);
  }
  // The JSON keys each cell by its axis values.
  const auto doc = Json::parse(result.to_json().pretty());
  const auto& cells = doc.find("cells")->as_array();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[1].find("axes")->find("kappa")->as_number(), 1);
  EXPECT_EQ(cells[1].find("axes")->find("theta")->as_number(), 30);
}

TEST(CampaignRunner, AxesShardMergeIsByteIdentical) {
  const Scenario s = axes_scenario();  // 4 cells x 2 trials = 8 grid points
  scenario::RunnerOptions plain;
  plain.threads = 2;
  const std::string unsharded =
      scenario::run_campaign(s, plain).to_json().pretty();
  std::vector<Json> shards;
  for (int k = 0; k < 3; ++k) {
    scenario::RunnerOptions part = plain;
    part.include_raw = true;
    part.shard_index = k;
    part.shard_count = 3;
    shards.push_back(
        Json::parse(scenario::run_campaign(s, part).to_json().pretty()));
  }
  EXPECT_EQ(scenario::merge_campaigns(shards).to_json().pretty(), unsharded);
}

TEST(CampaignRunner, TrafficWindowsAreRecordedAndMerged) {
  // A bracketed traffic window with a mid-path failure, on the fast
  // profile: the series and mean goodput must survive raw export + merge.
  Scenario s;
  s.name = "window_test";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 2;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_traffic(sec(8), "win");
  s.fail_path_link(sec(10));
  s.stop_traffic(sec(12));

  scenario::RunnerOptions opt;
  opt.threads = 2;
  const auto result = scenario::run_campaign(s, opt);
  ASSERT_EQ(result.cells.size(), 1u);
  const auto& cell = result.cells[0];
  ASSERT_TRUE(cell.errors.empty()) << cell.errors.front();
  ASSERT_EQ(cell.windows.size(), 1u);
  EXPECT_EQ(cell.windows[0].label, "win");
  EXPECT_EQ(cell.windows[0].trials, 2);
  // The window brackets [8s, 12s): exactly 4 per-second samples, goodput
  // flowing in every one of them.
  ASSERT_EQ(cell.windows[0].mbits_series.size(), 4u);
  for (double v : cell.windows[0].mbits_series) EXPECT_GT(v, 0.0);
  EXPECT_GT(cell.windows[0].mbits.mean, 0.0);
  EXPECT_TRUE(cell.has_traffic);

  // Shard + merge reproduces the report byte-for-byte, series included.
  std::vector<Json> shards;
  for (int k = 0; k < 2; ++k) {
    scenario::RunnerOptions part = opt;
    part.include_raw = true;
    part.shard_index = k;
    part.shard_count = 2;
    shards.push_back(
        Json::parse(scenario::run_campaign(s, part).to_json().pretty()));
  }
  EXPECT_EQ(scenario::merge_campaigns(shards).to_json().pretty(),
            result.to_json().pretty());
}

TEST(CampaignRunner, TimelineMayContinueAfterStopTraffic) {
  // Segments still in flight at the stop instant are delivered while the
  // timeline keeps running (the closed window's stats stay alive), and the
  // flow survives the build-time owner being killed before the window
  // opens (it is re-registered on a survivor).
  Scenario s;
  s.name = "window_then_more";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 2;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.kill_controller(sec(6));
  s.expect_converged(sec(6), "degraded", sec(60));
  s.start_traffic(sec(20), "win");
  s.stop_traffic(sec(23));
  s.fail_links(sec(25), 1);
  s.expect_converged(sec(25), "settle", sec(60));
  const auto result = scenario::run_campaign(s, {});
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_TRUE(result.cells[0].errors.empty())
      << result.cells[0].errors.front();
  ASSERT_EQ(result.cells[0].windows.size(), 1u);
  EXPECT_GT(result.cells[0].windows[0].mbits.mean, 0.0);
  EXPECT_EQ(result.cells[0].checkpoints.back().label, "settle");
}

TEST(CampaignRunner, SecondTrafficWindowFailsTheTrial) {
  Scenario s;
  s.name = "two_windows";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_traffic(sec(5), "a");
  s.stop_traffic(sec(7));
  s.start_traffic(sec(9), "b");
  const auto result = scenario::run_campaign(s, {});
  ASSERT_EQ(result.cells[0].errors.size(), 1u);
  EXPECT_NE(result.cells[0].errors[0].find("one traffic window"),
            std::string::npos);
}

TEST(CampaignRunner, StopTrafficWithoutOpenWindowFailsTheTrial) {
  Scenario s;
  s.name = "bad_window";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.with_hosts = true;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.stop_traffic(sec(5));
  const auto result = scenario::run_campaign(s, {});
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_EQ(result.cells[0].errors.size(), 1u);
  EXPECT_NE(result.cells[0].errors[0].find("no open traffic window"),
            std::string::npos);
}

TEST(CampaignRunner, RejectsBadShard) {
  scenario::RunnerOptions opt;
  opt.shard_index = 2;
  opt.shard_count = 2;
  EXPECT_THROW(scenario::run_campaign(quick_scenario(), opt),
               std::invalid_argument);
}

// --- Victims axis (count = "axis") -------------------------------------------

TEST(VictimsAxis, BuilderAcceptsSentinelAndRejectsGarbage) {
  Scenario s;
  s.kill_switches(sec(1), scenario::kCountAxis);  // ok: resolved per trial
  s.fail_links(sec(2), scenario::kCountAxis);
  s.kill_controller(sec(3), scenario::kCountAxis);
  EXPECT_THROW(s.kill_switches(sec(1), 0), std::invalid_argument);
  EXPECT_THROW(s.fail_links(sec(1), -2), std::invalid_argument);
}

TEST(VictimsAxis, SpecRoundTripUsesTheAxisKeyword) {
  Scenario s;
  s.name = "victims";
  s.axis("victims", {1, 2, 3});
  s.expect_converged(sec(0), "bootstrap", sec(30));
  s.kill_controller(sec(2), scenario::kCountAxis);
  const std::string spec = scenario::to_spec_json(s).pretty();
  EXPECT_NE(spec.find("\"count\": \"axis\""), std::string::npos);
  const Scenario reparsed = scenario::parse_spec(spec);
  EXPECT_EQ(s, reparsed);
  EXPECT_EQ(reparsed.sorted_events()[1].count, scenario::kCountAxis);
}

TEST(VictimsAxis, SpecRejectsOtherStringsAndNonPositiveCounts) {
  EXPECT_THROW(scenario::parse_spec(
                   R"({"events":[{"at_ms":1000,"kind":"kill_switches","count":"many"}]})"),
               std::runtime_error);
  EXPECT_THROW(scenario::parse_spec(
                   R"({"events":[{"at_ms":1000,"kind":"kill_switches","count":0}]})"),
               std::runtime_error);
}

TEST(VictimsAxis, CampaignRejectsAxisCountWithoutVictimsAxis) {
  Scenario s;
  s.name = "missing_axis";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.kill_switches(sec(1), scenario::kCountAxis);
  EXPECT_THROW(scenario::run_campaign(s, {}), std::invalid_argument);
}

TEST(VictimsAxis, SweepRunsAsOneCampaign) {
  Scenario s;
  s.name = "victim_sweep";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.axis("victims", {1, 2});
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.fail_links(sec(2), scenario::kCountAxis);
  s.expect_converged(sec(2), "recovery", sec(60));
  const auto result = scenario::run_campaign(s, {});
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& cell : result.cells) {
    ASSERT_EQ(cell.axes.size(), 1u);
    EXPECT_EQ(cell.axes[0].first, "victims");
    EXPECT_TRUE(cell.errors.empty()) << cell.errors[0];
    ASSERT_EQ(cell.checkpoints.size(), 2u);
    EXPECT_EQ(cell.checkpoints[1].converged, 1)
        << "victims=" << cell.axes[0].second;
  }
}

// --- Topology specs in scenarios ----------------------------------------------

TEST(TopologySpecs, ObjectFormsCanonicalizeToStrings) {
  const Scenario s = scenario::parse_spec(R"({
    "name": "topo_forms",
    "topologies": [
      "B4",
      {"kind": "fat_tree", "k": 8},
      {"kind": "random_wan", "nodes": 64, "m": 2, "seed": 7},
      {"kind": "file", "path": "maps/ebone.cch", "format": "rocketfuel"}
    ]
  })");
  const std::vector<std::string> expect{
      "B4", "fat_tree:k=8", "random_wan:nodes=64,m=2,seed=7",
      "rocketfuel:maps/ebone.cch"};
  EXPECT_EQ(s.topologies, expect);
}

TEST(TopologySpecs, BadObjectFormsThrow) {
  EXPECT_THROW(scenario::parse_spec(R"({"topologies":[{"kind":"warp"}]})"),
               std::runtime_error);
  EXPECT_THROW(scenario::parse_spec(R"({"topologies":[{"k": 8}]})"),
               std::runtime_error);
  EXPECT_THROW(
      scenario::parse_spec(R"({"topologies":[{"kind":"fat_tree"}]})"),
      std::runtime_error);
}

TEST(TopologySpecs, CampaignRunsOnGeneratedFabric) {
  Scenario s;
  s.name = "fat_tree_smoke";
  s.topologies = {"fat_tree:k=4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  const auto result = scenario::run_campaign(s, {});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].errors.empty());
  EXPECT_EQ(result.cells[0].checkpoints[0].converged, 1);
}

// --- Known-failure regression ---------------------------------------------------

// B4 (12 switches) under the built-in cascading_switch_failures timeline:
// waves of 1 + 2 + 3 switch fail-stops. The third wave removes half the
// original fabric and the survivors do NOT re-legitimize within the
// scenario's 120 s budget — a real, reproducible limitation (the remaining
// fabric can no longer satisfy the configured kappa for every pair). This
// test pins the behavior in both directions: waves 1-2 must keep
// converging, and if wave_3 ever starts converging the scenario library's
// documentation (and this test) must be updated deliberately.
TEST(KnownFailures, B4CascadingWave3DoesNotRelegitimize) {
  Scenario s = scenario::builtin("cascading_switch_failures");
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  const auto result = scenario::run_campaign(s, {});
  ASSERT_EQ(result.cells.size(), 1u);
  const auto& cell = result.cells[0];
  EXPECT_TRUE(cell.errors.empty());
  ASSERT_EQ(cell.checkpoints.size(), 4u);
  EXPECT_EQ(cell.checkpoints[0].label, "bootstrap");
  EXPECT_EQ(cell.checkpoints[0].converged, 1);
  EXPECT_EQ(cell.checkpoints[1].label, "wave_1");
  EXPECT_EQ(cell.checkpoints[1].converged, 1);
  EXPECT_EQ(cell.checkpoints[2].label, "wave_2");
  EXPECT_EQ(cell.checkpoints[2].converged, 1);
  EXPECT_EQ(cell.checkpoints[3].label, "wave_3");
  EXPECT_EQ(cell.checkpoints[3].converged, 0)
      << "wave_3 unexpectedly re-legitimized: the known B4 cascading-failure "
         "limitation no longer reproduces — update the scenario library "
         "docs and this regression test together";
}

}  // namespace
}  // namespace ren

// Self-stabilization property tests: starting from *corrupted* state, the
// system reaches a legitimate state again (paper Theorem 2). The paper's
// own evaluation skips arbitrary-corruption experiments (Section 6.1);
// these tests cover them with randomized corruption sweeps.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ren::sim {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

class SelfStabilization : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelfStabilization, RecoversFromFullStateCorruption) {
  Experiment exp(fast_config("B4", 3, 2, GetParam()));
  bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  faults::corrupt_all_state(cp, exp.fault_rng());
  const auto r = exp.run_until_legitimate(sec(90));
  EXPECT_TRUE(r.converged) << "seed " << GetParam() << ": " << r.last_reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfStabilization,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(SelfStabilizationTargets, SwitchOnlyCorruption) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    Experiment exp(fast_config("Clos", 2, 1, seed));
    bootstrap_or_fail(exp);
    Rng rng(seed);
    for (auto* s : exp.switches()) {
      s->corrupt_state(rng, static_cast<NodeId>(exp.sim().node_count()));
    }
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "seed " << seed << ": " << r.last_reason;
  }
}

TEST(SelfStabilizationTargets, ControllerOnlyCorruption) {
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    Experiment exp(fast_config("Clos", 2, 1, seed));
    bootstrap_or_fail(exp);
    Rng rng(seed);
    for (std::size_t k = 0; k < exp.controller_count(); ++k) {
      exp.controller(k).corrupt_state(
          rng, static_cast<NodeId>(exp.sim().node_count()));
    }
    const auto r = exp.run_until_legitimate(sec(60));
    EXPECT_TRUE(r.converged) << "seed " << seed << ": " << r.last_reason;
  }
}

TEST(SelfStabilizationTargets, CorruptionAtScale) {
  Experiment exp(fast_config("EBONE", 5, 2, 77));
  bootstrap_or_fail(exp, sec(120));
  auto cp = exp.control_plane();
  faults::corrupt_all_state(cp, exp.fault_rng());
  const auto r = exp.run_until_legitimate(sec(180));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(SelfStabilizationTargets, CorruptionPlusBenignFaults) {
  // Corruption immediately followed by a controller death and a link
  // failure — the combined recovery the model promises (Figure 3).
  Experiment exp(fast_config("Telstra", 4, 2, 55));
  bootstrap_or_fail(exp, sec(120));
  auto cp = exp.control_plane();
  faults::corrupt_all_state(cp, exp.fault_rng());
  faults::kill_random_controller(cp, exp.fault_rng());
  faults::fail_random_link(cp, exp.fault_rng());
  const auto r = exp.run_until_legitimate(sec(180));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(SelfStabilizationTargets, RepeatedCorruptionRounds) {
  Experiment exp(fast_config("B4", 2, 1, 99));
  bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  for (int round = 0; round < 4; ++round) {
    faults::corrupt_all_state(cp, exp.fault_rng());
    const auto r = exp.run_until_legitimate(sec(90));
    ASSERT_TRUE(r.converged) << "round " << round << ": " << r.last_reason;
  }
}

TEST(SelfStabilizationTargets, ThreeTagAndTwoTagVariantsBothRecover) {
  for (int retention : {2, 3}) {
    auto cfg = fast_config("B4", 2, 1, 7);
    cfg.rule_retention = retention;
    Experiment exp(cfg);
    bootstrap_or_fail(exp);
    auto cp = exp.control_plane();
    faults::corrupt_all_state(cp, exp.fault_rng());
    const auto r = exp.run_until_legitimate(sec(90));
    EXPECT_TRUE(r.converged)
        << "retention " << retention << ": " << r.last_reason;
  }
}

}  // namespace
}  // namespace ren::sim

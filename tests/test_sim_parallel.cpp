// Parallel simulation kernel: per-node RNG stream derivation, shard
// planning, and the bit-reproducibility contract — the same (spec, seed)
// must produce byte-identical trial outcomes at every shard count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_helpers.hpp"

namespace ren {
namespace {

using scenario::Scenario;

// --- Per-node RNG streams ----------------------------------------------------

// The stream derivation is part of the reproducibility contract: checkpoints
// recorded with one build must replay bit-identically on another. These
// literals pin it; a change here invalidates every recorded outcome.
TEST(SimParallelRngStreams, StreamSeedValuesArePinned) {
  // stream_seed(0, 0) is SplitMix64's first output from the canonical
  // increment — a cross-check against the reference implementation.
  static_assert(Rng::stream_seed(0, 0) == 0xe220a8397b1dcdafULL);
  EXPECT_EQ(Rng::stream_seed(42, 0), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(Rng::stream_seed(42, 1), 0x28efe333b266f103ULL);
  EXPECT_EQ(Rng::stream_seed(42, 255), 0x6acce368974e61eeULL);
  EXPECT_EQ(Rng::stream_seed(0xdeadbeefULL, 7), 0xb30a4ccf430b1b5aULL);
}

TEST(SimParallelRngStreams, FirstDrawsArePinnedAndStreamsAreIndependent) {
  Rng a(Rng::stream_seed(42, 3));
  EXPECT_EQ(a.next_u64(), 0xde9ff54476a1fdcbULL);
  EXPECT_EQ(a.next_u64(), 0xda60e38ef2e493d7ULL);
  // The adjacent stream starts somewhere else entirely.
  Rng b(Rng::stream_seed(42, 4));
  EXPECT_EQ(b.next_u64(), 0x639fead32a7030fbULL);
  // Re-deriving the same stream replays the same sequence.
  Rng a2(Rng::stream_seed(42, 3));
  EXPECT_EQ(a2.next_u64(), 0xde9ff54476a1fdcbULL);
}

// --- Shard planning ----------------------------------------------------------

TEST(SimParallelShardPlan, ExperimentConfiguresRequestedShards) {
  auto cfg = testing::fast_config("fat_tree:k=4", 3);
  cfg.sim_threads = 4;
  sim::Experiment exp(cfg);
  EXPECT_EQ(exp.sim().shard_count(), 4);
  // Every link in the fast profile has the same one-way latency, so the
  // conservative window width is exactly that latency.
  EXPECT_EQ(exp.sim().lookahead(), cfg.link_latency);
  testing::bootstrap_or_fail(exp);
}

TEST(SimParallelShardPlan, ZeroLatencyLinksFallBackToSerial) {
  // Without lookahead the conservative windows would be empty; the plan
  // must degrade to the serial kernel instead of spinning forever.
  auto cfg = testing::fast_config("B4", 3);
  cfg.link_latency = 0;
  cfg.sim_threads = 4;
  sim::Experiment exp(cfg);
  EXPECT_EQ(exp.sim().shard_count(), 1);
}

TEST(SimParallelShardPlan, PlanCoversAllNodesAndPinsHostsToShardZero) {
  auto cfg = testing::fast_config("fat_tree:k=4", 3);
  cfg.with_hosts = true;
  sim::Experiment exp(cfg);
  const auto& net = exp.sim().network();
  std::vector<NodeKind> kinds;
  for (std::size_t id = 0; id < net.node_count(); ++id) {
    kinds.push_back(exp.sim().node(static_cast<NodeId>(id)).kind());
  }
  const auto plan = net::make_shard_plan(net, kinds, 4);
  ASSERT_EQ(plan.shards, 4);
  ASSERT_EQ(plan.shard_of.size(), kinds.size());
  std::vector<int> load(4, 0);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    ASSERT_GE(plan.shard_of[i], 0);
    ASSERT_LT(plan.shard_of[i], 4);
    ++load[static_cast<std::size_t>(plan.shard_of[i])];
    if (kinds[i] == NodeKind::Host) EXPECT_EQ(plan.shard_of[i], 0);
  }
  for (int shard = 0; shard < 4; ++shard) EXPECT_GT(load[shard], 0);
  EXPECT_GT(plan.cross_links, 0u);
  EXPECT_EQ(plan.lookahead, cfg.link_latency);
}

TEST(SimParallelShardPlan, SuggestionIsAClampedPowerOfTwo) {
  const int tiny = net::suggest_sim_shards(12, 19, 5);        // B4
  const int big = net::suggest_sim_shards(1344, 3072, 6);     // fat_tree:k=16
  EXPECT_EQ(tiny, 1);
  EXPECT_GE(big, 2);
  EXPECT_LE(big, 16);
  EXPECT_EQ(big & (big - 1), 0) << "not a power of two: " << big;
  // The diameter caps the suggestion: a cross-shard packet spends at least
  // one epoch per hop, so a shallow fabric stops profiting early.
  EXPECT_LE(net::suggest_sim_shards(1344, 3072, 2), 2);
}

// --- Bit-reproducibility across shard counts ---------------------------------

// A fault storm whose victims land in different shards: switch kills, link
// cuts, then a heal — every category of cross-shard stimulus (packets,
// permanent link state, node revival) crosses at least one boundary on
// fat_tree:k=4 at 4 shards.
Scenario storm_scenario() {
  Scenario s;
  s.name = "shard_storm";
  s.topologies = {"fat_tree:k=4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.kill_switches(sec(2), 2);
  s.fail_links(sec(3), 2);
  s.expect_converged(sec(3), "degraded", sec(90));
  s.restore_links(sec(12));
  s.restart_nodes(sec(12));
  s.expect_converged(sec(12), "healed", sec(90));
  return s;
}

TEST(SimParallelDeterminism, FaultStormIsByteIdenticalAtEveryShardCount) {
  const Scenario s = storm_scenario();
  std::string reference;
  std::uint64_t reference_fp = 0;
  for (int shards : {1, 2, 4, 8}) {
    scenario::RunnerOptions opt;
    opt.threads = 1;
    opt.sim_threads = shards;
    const auto out = scenario::run_trial(s, "fat_tree:k=4", 3, 0, opt);
    ASSERT_TRUE(out.ok) << "sim_threads=" << shards << ": " << out.error;
    const std::string json = scenario::trial_outcome_json(out).pretty();
    if (reference.empty()) {
      reference = json;
      reference_fp = out.counters_fp;
      ASSERT_NE(reference_fp, 0u);
    } else {
      EXPECT_EQ(json, reference) << "outcome diverged at sim_threads="
                                 << shards;
      EXPECT_EQ(out.counters_fp, reference_fp)
          << "counters diverged at sim_threads=" << shards;
    }
  }
}

TEST(SimParallelDeterminism, TrafficWindowIsByteIdenticalAcrossShardCounts) {
  // Hosts all live in shard 0 but their traffic rides switches owned by
  // other shards, so goodput accounting exercises the cross-shard path.
  Scenario s;
  s.name = "shard_traffic";
  s.topologies = {"B4"};
  s.controllers = {3};
  s.trials = 1;
  s.expect_converged(sec(0), "bootstrap", sec(60));
  s.start_traffic(sec(8), "win");
  s.fail_path_link(sec(10));
  s.stop_traffic(sec(12));

  std::string reference;
  for (int shards : {1, 4}) {
    scenario::RunnerOptions opt;
    opt.threads = 1;
    opt.sim_threads = shards;
    const auto out = scenario::run_trial(s, "B4", 3, 0, opt);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.windows.size(), 1u);
    EXPECT_GT(out.windows[0].mbits, 0.0);
    const std::string json = scenario::trial_outcome_json(out).pretty();
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference);
    }
  }
}

TEST(SimParallelDeterminism, ParanoidSimPassesOnTheParallelKernel) {
  // --paranoid-sim re-runs the trial on the serial kernel and compares the
  // rendered outcome byte-for-byte; any kernel divergence throws and fails
  // the trial, so ok == true IS the assertion.
  scenario::RunnerOptions opt;
  opt.threads = 1;
  opt.sim_threads = 4;
  opt.paranoid_sim = true;
  const auto out =
      scenario::run_trial(storm_scenario(), "fat_tree:k=4", 3, 0, opt);
  EXPECT_TRUE(out.ok) << out.error;
}

}  // namespace
}  // namespace ren

#include <gtest/gtest.h>

#include "net/simulator.hpp"
#include "switchd/abstract_switch.hpp"

namespace ren::switchd {
namespace {

/// A scripted controller stand-in that records everything it receives.
class Probe : public net::Node {
 public:
  explicit Probe(NodeId id) : net::Node(id, NodeKind::Controller) {}
  void on_packet(NodeId from, const net::Packet& p) override {
    if (const auto* f = std::get_if<proto::Frame>(&*p.payload)) {
      if (f->kind == proto::FrameKind::Act && f->payload) {
        if (const auto* r = std::get_if<proto::QueryReply>(&*f->payload)) {
          replies.push_back(*r);
        }
        // ack so the switch's session advances
        proto::Frame ack;
        ack.kind = proto::FrameKind::Ack;
        ack.label = f->label;
        sim_->send(id(), from,
                   net::make_packet(id(), p.src, proto::Payload{ack}));
      }
    } else if (std::get_if<proto::Probe>(&*p.payload) != nullptr) {
      sim_->send(id(), from,
                 net::make_packet(id(), from,
                                  proto::Payload{proto::ProbeReply{}}));
    }
  }

  void send_batch(NodeId to, proto::CommandBatch batch) {
    proto::Frame f;
    f.kind = proto::FrameKind::Act;
    f.label = ++label_;
    f.payload =
        std::make_shared<const proto::Message>(proto::Message{std::move(batch)});
    sim_->send(id(), to, net::make_packet(id(), to, proto::Payload{f}));
  }

  std::vector<proto::QueryReply> replies;

 private:
  std::uint32_t label_ = 0;
};

struct Fixture : public ::testing::Test {
  // Topology: probe(2) - switch(0) - switch(1), plus host 3 on switch 0.
  void SetUp() override {
    sim = std::make_unique<net::Simulator>(1);
    AbstractSwitch::Config cfg;
    cfg.detect_interval = msec(10);
    cfg.tick_interval = msec(20);
    sw0 = &sim->emplace_node<AbstractSwitch>(0, cfg);
    sw1 = &sim->emplace_node<AbstractSwitch>(1, cfg);
    probe = &sim->emplace_node<Probe>(2);
    sim->add_link(0, 1, net::LinkParams{});
    sim->add_link(0, 2, net::LinkParams{});
    sw0->start();
    sw1->start();
  }

  proto::CommandBatch batch_with(std::vector<proto::Command> cmds) {
    proto::CommandBatch b;
    b.from = 2;
    b.commands = std::move(cmds);
    return b;
  }

  std::unique_ptr<net::Simulator> sim;
  AbstractSwitch* sw0 = nullptr;
  AbstractSwitch* sw1 = nullptr;
  Probe* probe = nullptr;
};

TEST_F(Fixture, AnswersQueriesWithConfiguration) {
  probe->send_batch(
      0, batch_with({proto::NewRoundCmd{proto::Tag{2, 5}, 2},
                     proto::AddMngrCmd{2}, proto::QueryCmd{proto::Tag{2, 5}}}));
  sim->run_until(sec(1));
  ASSERT_EQ(probe->replies.size(), 1u);
  const auto& r = probe->replies[0];
  EXPECT_EQ(r.id, 0);
  EXPECT_FALSE(r.from_controller);
  EXPECT_EQ(r.managers, (std::vector<NodeId>{2}));
  EXPECT_EQ(r.tag_for_querier.epoch, 5u);  // the meta tag just installed
}

TEST_F(Fixture, NeighborhoodDiscoveryExcludesSilentPorts) {
  sim->run_until(sec(2));
  // sw0's ports: sw1 and the probe controller reply; detector reports both.
  const auto live = sw0->detector().live();
  EXPECT_EQ(live, (std::vector<NodeId>{1, 2}));
}

TEST_F(Fixture, BatchAppliesAtomicallyInOrder) {
  auto rules = std::make_shared<proto::RuleList>();
  rules->push_back(proto::Rule{2, 0, 2, 1, 3, 1});
  probe->send_batch(
      0, batch_with({proto::NewRoundCmd{proto::Tag{2, 1}, 2},
                     proto::DelMngrCmd{9}, proto::AddMngrCmd{2},
                     proto::UpdateRuleCmd{rules, proto::Tag{2, 1}},
                     proto::QueryCmd{proto::Tag{2, 1}}}));
  sim->run_until(sec(1));
  ASSERT_EQ(probe->replies.size(), 1u);
  // The reply snapshot reflects the full batch.
  EXPECT_EQ(probe->replies[0].managers, (std::vector<NodeId>{2}));
  ASSERT_EQ(probe->replies[0].rule_owners.size(), 1u);
  EXPECT_EQ(probe->replies[0].rule_owners[0].count, 1u);
}

TEST_F(Fixture, ForwardsByInstalledRules) {
  auto rules = std::make_shared<proto::RuleList>();
  rules->push_back(proto::Rule{2, 0, 5, 1, 3, 1});  // (src=5,dst=1) -> port 1
  probe->send_batch(0,
                    batch_with({proto::NewRoundCmd{proto::Tag{2, 1}, 2},
                                proto::UpdateRuleCmd{rules, proto::Tag{2, 1}}}));
  sim->run_until(msec(100));
  // A transit packet from 5 to 1 entering sw0 must reach sw1's control
  // module (it is addressed to 1 == sw1).
  auto pkt = net::make_packet(5, 1, proto::Payload{proto::Probe{77}});
  sw0->on_packet(2, pkt);
  const auto delivered_before = sim->counters().packets_delivered;
  sim->run_until(sec(1));
  EXPECT_GT(sim->counters().packets_delivered, delivered_before);
}

TEST_F(Fixture, QueryByNeighborDeliversWithoutRules) {
  // No rules at sw0: a packet addressed to its direct neighbor sw1 is
  // handed over anyway (Section 2.1.1 query-by-neighbor).
  auto pkt = net::make_packet(2, 1, proto::Payload{proto::Probe{1}});
  sw0->on_packet(2, pkt);
  const auto drops_before = sim->counters().drops_no_rule;
  sim->run_until(sec(1));
  EXPECT_EQ(sim->counters().drops_no_rule, drops_before);
}

TEST_F(Fixture, DropsUnroutableTransitPackets) {
  auto pkt = net::make_packet(2, 99, proto::Payload{proto::Probe{1}});
  sw0->on_packet(2, pkt);
  sim->run_until(sec(1));
  EXPECT_GT(sim->counters().drops_no_rule, 0u);
}

TEST_F(Fixture, TtlExhaustionDrops) {
  auto pkt = net::make_packet(2, 1, proto::Payload{proto::Probe{1}});
  pkt.ttl = 0;
  sw0->on_packet(2, pkt);
  sim->run_until(sec(1));
  EXPECT_EQ(sim->counters().drops_ttl, 1u);
}

TEST_F(Fixture, ManagerSetIsBoundedLru) {
  AbstractSwitch::Config cfg;
  cfg.max_managers = 2;
  auto& sw = sim->emplace_node<AbstractSwitch>(3, cfg);
  proto::CommandBatch b1;
  b1.from = 10;
  b1.commands = {proto::AddMngrCmd{10}};
  sw.on_packet(0, net::make_packet(10, 3, proto::Payload{proto::Frame{
                      proto::FrameKind::Act, 1,
                      std::make_shared<const proto::Message>(
                          proto::Message{b1})}}));
  proto::CommandBatch b2;
  b2.from = 11;
  b2.commands = {proto::AddMngrCmd{11}};
  sw.on_packet(0, net::make_packet(11, 3, proto::Payload{proto::Frame{
                      proto::FrameKind::Act, 1,
                      std::make_shared<const proto::Message>(
                          proto::Message{b2})}}));
  proto::CommandBatch b3;
  b3.from = 12;
  b3.commands = {proto::AddMngrCmd{12}};
  sw.on_packet(0, net::make_packet(12, 3, proto::Payload{proto::Frame{
                      proto::FrameKind::Act, 1,
                      std::make_shared<const proto::Message>(
                          proto::Message{b3})}}));
  EXPECT_EQ(sw.managers().size(), 2u);
  EXPECT_EQ(sw.manager_evictions(), 1u);
  // 10 was the least recently added; 11 and 12 survive.
  EXPECT_EQ(sw.managers(), (std::vector<NodeId>{11, 12}));
}

}  // namespace
}  // namespace ren::switchd

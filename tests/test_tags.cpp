#include <gtest/gtest.h>

#include <set>

#include "tags/tag_generator.hpp"

namespace ren::tags {
namespace {

TEST(TagGenerator, TagsAreUniquePerOwner) {
  TagGenerator gen(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 100000; ++i) {
    const auto t = gen.next();
    EXPECT_EQ(t.owner, 7);
    EXPECT_TRUE(seen.insert(t.epoch).second) << "duplicate epoch " << t.epoch;
  }
}

TEST(TagGenerator, DistinctOwnersNeverCollide) {
  TagGenerator a(1), b(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(a.next() == b.next());
  }
}

TEST(TagGenerator, WrapsInsideBoundedDomain) {
  TagGenerator gen(3, proto::kTagDomain - 2);
  const auto t1 = gen.next();
  const auto t2 = gen.next();
  const auto t3 = gen.next();
  EXPECT_LT(t1.epoch, proto::kTagDomain);
  EXPECT_LT(t2.epoch, proto::kTagDomain);
  EXPECT_LT(t3.epoch, proto::kTagDomain);
  EXPECT_FALSE(t1 == t2);
  EXPECT_FALSE(t2 == t3);
}

TEST(TagGenerator, CurrentTracksLastIssued) {
  TagGenerator gen(4);
  EXPECT_TRUE(gen.current() == proto::kNullTag);
  const auto t = gen.next();
  EXPECT_TRUE(gen.current() == t);
}

TEST(TagGenerator, UniqueGoingForwardAfterCorruption) {
  TagGenerator gen(5);
  Rng rng(17);
  for (int trial = 0; trial < 32; ++trial) {
    gen.corrupt(rng);
    const auto a = gen.next();
    const auto b = gen.next();
    EXPECT_FALSE(a == b);
    EXPECT_EQ(a.owner, 5);  // corruption never changes ownership
  }
}

TEST(Tag, NullTagMatchesNothingIssued) {
  TagGenerator gen(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.next() == proto::kNullTag);
  }
}

TEST(Tag, HashDistinguishesOwnersAndEpochs) {
  proto::TagHash h;
  EXPECT_NE(h(proto::Tag{1, 5}), h(proto::Tag{2, 5}));
  EXPECT_NE(h(proto::Tag{1, 5}), h(proto::Tag{1, 6}));
  EXPECT_EQ(h(proto::Tag{1, 5}), h(proto::Tag{1, 5}));
}

}  // namespace
}  // namespace ren::tags

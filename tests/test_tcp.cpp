#include <gtest/gtest.h>

#include "net/simulator.hpp"
#include "tcp/reno.hpp"

namespace ren::tcp {
namespace {

/// Direct sender<->receiver harness over an ideal in-memory pipe with a
/// configurable one-way delay; no network stack involved.
struct Pipe {
  explicit Pipe(net::Simulator& s, RenoConfig cfg, Time delay = msec(5))
      : sim(s), stats(0) {
    receiver = std::make_unique<RenoReceiver>(
        sim, cfg, &stats, [this](proto::Segment seg) {
          sim.schedule(delay_, [this, seg] {
            if (!drop_acks) sender->on_ack(seg);
          });
        });
    sender = std::make_unique<RenoSender>(
        sim, 0, cfg, &stats, [this](proto::Segment seg) {
          sim.schedule(delay_, [this, seg] {
            if (drop_data_until > sim.now()) return;
            if (drop_next > 0) {
              --drop_next;
              return;
            }
            receiver->on_segment(seg);
          });
        });
    delay_ = delay;
  }
  net::Simulator& sim;
  FlowStats stats;
  std::unique_ptr<RenoSender> sender;
  std::unique_ptr<RenoReceiver> receiver;
  Time delay_ = msec(5);
  int drop_next = 0;
  Time drop_data_until = 0;
  bool drop_acks = false;
};

TEST(Reno, SlowStartGrowsWindowExponentially) {
  net::Simulator sim(1);
  RenoConfig cfg;
  Pipe p(sim, cfg);
  const double cwnd0 = p.sender->cwnd();
  p.sender->start(0);
  sim.run_until(msec(45));  // ~4 RTTs
  EXPECT_GT(p.sender->cwnd(), cwnd0 * 4);
  EXPECT_GT(p.sender->bytes_acked(), 0u);
}

TEST(Reno, ThroughputIsWindowLimited) {
  net::Simulator sim(1);
  RenoConfig cfg;
  cfg.rwnd = 1 << 20;  // 1 MiB
  Pipe p(sim, cfg, msec(10));  // RTT 20ms
  p.sender->start(0);
  sim.run_until(sec(5));
  const double mbps = static_cast<double>(p.sender->bytes_acked()) * 8.0 /
                      to_seconds(sim.now()) / 1e6;
  // rwnd/RTT = 1MiB/20ms = ~419 Mbit/s.
  EXPECT_NEAR(mbps, 419.0, 45.0);
}

TEST(Reno, FastRetransmitOnTripleDupack) {
  net::Simulator sim(1);
  RenoConfig cfg;
  Pipe p(sim, cfg);
  p.sender->start(0);
  sim.run_until(msec(100));
  p.drop_next = 1;  // lose exactly one segment
  sim.run_until(msec(300));
  const auto& buckets = p.stats.buckets();
  std::uint64_t retx = 0, rto_like = 0;
  for (const auto& b : buckets) retx += b.retransmissions;
  EXPECT_GE(retx, 1u);
  // Recovery should be fast-retransmit, not a stall: goodput continues.
  (void)rto_like;
  EXPECT_GT(p.sender->bytes_acked(), 2u << 20);
}

TEST(Reno, WindowHalvesOnLoss) {
  net::Simulator sim(1);
  RenoConfig cfg;
  Pipe p(sim, cfg);
  p.sender->start(0);
  sim.run_until(msec(400));
  const double before = p.sender->cwnd();
  p.drop_next = 1;
  sim.run_until(msec(600));
  EXPECT_LT(p.sender->cwnd(), before);
}

TEST(Reno, RtoRecoversFromBlackout) {
  net::Simulator sim(1);
  RenoConfig cfg;
  Pipe p(sim, cfg);
  p.sender->start(0);
  sim.run_until(msec(200));
  const auto acked_mid = p.sender->bytes_acked();
  p.drop_data_until = sim.now() + msec(800);  // total blackout
  sim.run_until(sec(3));
  EXPECT_GT(p.sender->bytes_acked(), acked_mid) << "never recovered from RTO";
}

TEST(Reno, ReceiverCountsOutOfOrder) {
  net::Simulator sim(1);
  RenoConfig cfg;
  FlowStats stats(0);
  std::vector<proto::Segment> acks;
  RenoReceiver r(sim, cfg, &stats,
                 [&acks](proto::Segment s) { acks.push_back(s); });
  proto::Segment s1{0, cfg.mss, 0, false, 0, false};
  proto::Segment s2{cfg.mss, cfg.mss, 0, false, 0, false};
  proto::Segment s3{2ull * cfg.mss, cfg.mss, 0, false, 0, false};
  r.on_segment(s1);
  r.on_segment(s3);  // gap
  r.on_segment(s2);  // fills the gap
  EXPECT_EQ(r.rcv_next(), 3ull * cfg.mss);
  EXPECT_EQ(stats.buckets()[0].out_of_order, 1u);
  EXPECT_EQ(stats.buckets()[0].dup_acks, 1u);  // the ack for s3
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks.back().ack, 3ull * cfg.mss);
}

TEST(Reno, ReceiverCountsSpuriousRetransmissions) {
  net::Simulator sim(1);
  RenoConfig cfg;
  FlowStats stats(0);
  RenoReceiver r(sim, cfg, &stats, [](proto::Segment) {});
  proto::Segment s1{0, cfg.mss, 0, false, 0, false};
  r.on_segment(s1);
  r.on_segment(s1);  // duplicate delivery
  EXPECT_EQ(stats.buckets()[0].spurious, 1u);
}

TEST(FlowStats, BucketsByWholeSeconds) {
  FlowStats st(sec(10));
  st.bucket(sec(10)).goodput_bytes += 1000;
  st.bucket(sec(10) + msec(999)).goodput_bytes += 1000;
  st.bucket(sec(11)).goodput_bytes += 5000;
  const auto series = st.mbits_series(2);
  EXPECT_DOUBLE_EQ(series[0], 2000 * 8.0 / 1e6);
  EXPECT_DOUBLE_EQ(series[1], 5000 * 8.0 / 1e6);
}

TEST(FlowStats, PercentSeriesGuardAgainstEmptyBuckets) {
  FlowStats st(0);
  const auto retx = st.retransmission_pct(5);
  for (double v : retx) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace ren::tcp

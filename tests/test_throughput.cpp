// Integration: the Section 6.4.3 throughput-under-failure experiment.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace ren::sim {
namespace {

using ren::testing::fast_config;

Experiment::ThroughputResult run_variant(bool with_recovery,
                                         std::uint64_t seed = 5) {
  auto cfg = fast_config("B4", 3, 2, seed);
  cfg.with_hosts = true;
  cfg.link_latency = usec(800);
  Experiment exp(cfg);
  Experiment::ThroughputRun run;
  run.duration = sec(20);
  run.fail_at = sec(7);
  run.with_recovery = with_recovery;
  return exp.run_throughput(run);
}

TEST(Throughput, SteadyDipRecoverShape) {
  const auto r = run_variant(true);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.mbits.size(), 20u);
  ASSERT_NE(r.failed_link.first, kNoNode);
  // Steady before the failure.
  const double before = (r.mbits[4] + r.mbits[5] + r.mbits[6]) / 3;
  EXPECT_GT(before, 100.0);
  // Dip at the failure second.
  EXPECT_LT(r.mbits[7], before * 0.8);
  // Recovered after a few seconds, to a level near the pre-failure one.
  const double after = (r.mbits[16] + r.mbits[17] + r.mbits[18]) / 3;
  EXPECT_GT(after, before * 0.6);
}

TEST(Throughput, RetransmissionSpikeAtFailure) {
  const auto r = run_variant(true);
  ASSERT_TRUE(r.ok);
  double before = 0, at = 0;
  for (int i = 2; i < 7; ++i) before = std::max(before, r.retx_pct[static_cast<std::size_t>(i)]);
  for (int i = 7; i < 10; ++i) at = std::max(at, r.retx_pct[static_cast<std::size_t>(i)]);
  EXPECT_GT(at, before);
  EXPECT_GT(at, 0.0);
}

TEST(Throughput, NoRecoveryVariantSurvivesOnBackupPath) {
  const auto r = run_variant(false);
  ASSERT_TRUE(r.ok);
  const double after = (r.mbits[16] + r.mbits[17] + r.mbits[18]) / 3;
  EXPECT_GT(after, 100.0) << "backup path never carried traffic";
}

TEST(Throughput, VariantsCorrelateAsInFig17) {
  const auto a = run_variant(true);
  const auto b = run_variant(false);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  const double r = pearson(a.mbits, b.mbits);
  EXPECT_GT(r, 0.85) << "paper reports 0.92-0.96";
}

TEST(Throughput, PrimaryPathConnectsTheHosts) {
  auto cfg = fast_config("Clos", 2, 1, 9);
  cfg.with_hosts = true;
  Experiment exp(cfg);
  ASSERT_TRUE(exp.run_until_legitimate(sec(60)).converged);
  core::Controller::DataFlowSpec spec;
  spec.host_a = exp.host_a()->id();
  spec.attach_a = exp.host_a()->attach();
  spec.host_b = exp.host_b()->id();
  spec.attach_b = exp.host_b()->attach();
  exp.controller(0).register_data_flow(spec);
  exp.sim().run_until(exp.sim().now() + sec(2));
  const auto path = exp.current_data_path();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), exp.host_a()->id());
  EXPECT_EQ(path.back(), exp.host_b()->id());
  // Primary data path follows a shortest route: host + diameter + host.
  EXPECT_LE(path.size(),
            static_cast<std::size_t>(exp.topology().expected_diameter + 3));
}

TEST(Throughput, RequiresHosts) {
  auto cfg = fast_config("B4", 1);
  Experiment exp(cfg);
  Experiment::ThroughputRun run;
  EXPECT_THROW((void)exp.run_throughput(run), std::logic_error);
}

}  // namespace
}  // namespace ren::sim

// Topology subsystem (src/topo/): file loaders, parametric generators, and
// the spec registry. Loader tests parse from strings; file-dispatch tests
// write into the gtest temp dir.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "topo/generators.hpp"
#include "topo/loaders.hpp"
#include "topo/source.hpp"

namespace ren::topo {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

// --- Rocketfuel (.cch) ----------------------------------------------------------

TEST(Rocketfuel, ParsesAdjacency) {
  // 3-cycle; neighbor lists are redundant per line (both endpoints list the
  // edge), which must coalesce into single undirected edges.
  const auto t = parse_rocketfuel(
      "1 @city +bb (2) &3 -> <2> <3>\n"
      "2 @city bb (2) -> <1> <3>\n"
      "3 @city bb (2) -> <1> <2>\n",
      "tiny");
  EXPECT_EQ(t.switch_graph.n(), 3);
  EXPECT_EQ(t.switch_graph.edge_count(), 3u);
  EXPECT_EQ(t.expected_diameter, 1);
}

TEST(Rocketfuel, SkipsExternalRouters) {
  // Negative uids are external; links to them are dropped, and the remaining
  // fabric keeps only its largest component.
  const auto t = parse_rocketfuel(
      "1 bb -> <2>\n"
      "2 bb -> <1>\n"
      "-3 ext -> <1>\n",
      "ext");
  EXPECT_EQ(t.switch_graph.n(), 2);
  EXPECT_EQ(t.switch_graph.edge_count(), 1u);
}

TEST(Rocketfuel, TruncatedNeighborRefThrows) {
  EXPECT_THROW(parse_rocketfuel("1 bb -> <2\n2 bb -> <1>\n", "bad"),
               std::runtime_error);
}

TEST(Rocketfuel, SelfLoopThrows) {
  EXPECT_THROW(parse_rocketfuel("1 bb -> <1>\n", "bad"), std::runtime_error);
}

TEST(Rocketfuel, EmptyInputThrows) {
  EXPECT_THROW(parse_rocketfuel("", "bad"), std::runtime_error);
  EXPECT_THROW(parse_rocketfuel("# only a comment\n", "bad"),
               std::runtime_error);
}

TEST(Rocketfuel, KeepsLargestComponent) {
  const auto t = parse_rocketfuel(
      "1 -> <2>\n2 -> <1>\n"
      "10 -> <11> <12>\n11 -> <10> <12>\n12 -> <10> <11>\n",
      "two-islands");
  EXPECT_EQ(t.switch_graph.n(), 3);  // the triangle wins
  EXPECT_EQ(t.switch_graph.edge_count(), 3u);
}

// --- GraphML --------------------------------------------------------------------

constexpr const char* kGraphml = R"(<?xml version="1.0"?>
<graphml><graph edgedefault="undirected">
  <node id="a"/><node id="b"/><node id="c"/>
  <edge source="a" target="b"/>
  <edge source="b" target="c"/>
  <edge source="c" target="a"/>
  <edge source="a" target="b"/>
</graph></graphml>
)";

TEST(Graphml, ParsesNodesAndEdges) {
  const auto t = parse_graphml(kGraphml, "triangle");
  EXPECT_EQ(t.switch_graph.n(), 3);
  EXPECT_EQ(t.switch_graph.edge_count(), 3u);  // duplicate edge coalesced
}

TEST(Graphml, UndeclaredEndpointThrows) {
  EXPECT_THROW(
      parse_graphml("<graphml><node id=\"a\"/>"
                    "<edge source=\"a\" target=\"ghost\"/></graphml>",
                    "bad"),
      std::runtime_error);
}

TEST(Graphml, TruncatedTagThrows) {
  EXPECT_THROW(
      parse_graphml("<graphml><node id=\"a\"/><edge source=\"a\" ", "bad"),
      std::runtime_error);
}

TEST(Graphml, SelfLoopThrows) {
  EXPECT_THROW(
      parse_graphml("<graphml><node id=\"a\"/>"
                    "<edge source=\"a\" target=\"a\"/></graphml>",
                    "bad"),
      std::runtime_error);
}

// --- Edge lists -----------------------------------------------------------------

TEST(Edgelist, ParsesPairsAndComments) {
  const auto t = parse_edgelist(
      "# fabric\n"
      "s1 s2\n"
      "s2 s3\n"
      "s3 s1   # closes the cycle\n"
      "s1 s2\n",  // duplicate, coalesced
      "cycle");
  EXPECT_EQ(t.switch_graph.n(), 3);
  EXPECT_EQ(t.switch_graph.edge_count(), 3u);
}

TEST(Edgelist, WrongTokenCountThrows) {
  EXPECT_THROW(parse_edgelist("a b c\n", "bad"), std::runtime_error);
  EXPECT_THROW(parse_edgelist("lonely\n", "bad"), std::runtime_error);
}

TEST(Edgelist, SelfLoopThrows) {
  EXPECT_THROW(parse_edgelist("a a\n", "bad"), std::runtime_error);
}

// --- File dispatch --------------------------------------------------------------

TEST(LoadFile, DispatchesOnExtension) {
  const auto cch = write_temp("disp.cch", "1 -> <2>\n2 -> <1>\n");
  const auto gml = write_temp("disp.graphml", kGraphml);
  const auto txt = write_temp("disp.edges", "a b\nb c\n");
  EXPECT_EQ(load_file(cch).switch_graph.n(), 2);
  EXPECT_EQ(load_file(gml).switch_graph.n(), 3);
  EXPECT_EQ(load_file(txt).switch_graph.n(), 3);
}

TEST(LoadFile, MissingFileThrows) {
  EXPECT_THROW(load_file("/nonexistent/nowhere.cch"), std::runtime_error);
}

TEST(LoadFileAs, ExplicitFormatOverridesExtension) {
  const auto path = write_temp("as.txt", "1 -> <2>\n2 -> <1>\n");
  EXPECT_EQ(load_file_as(path, "rocketfuel").switch_graph.n(), 2);
  EXPECT_THROW(load_file_as(path, "cbor"), std::runtime_error);
}

// --- Generators -----------------------------------------------------------------

TEST(FatTree, CountsMatchTheory) {
  for (int k : {4, 8, 16}) {
    const auto t = make_fat_tree(k);
    EXPECT_EQ(t.switch_graph.n(), 5 * k * k / 4) << "k=" << k;
    // k^2/2 edge-agg links per pod pair structure + k^2/2 * k/2 ... exact:
    // pods: k * (k/2 * k/2) edge-agg + agg-core: k * k/2 * k/2.
    EXPECT_EQ(t.switch_graph.edge_count(),
              static_cast<std::size_t>(k) * k * k / 4 * 2)
        << "k=" << k;
    EXPECT_EQ(t.switch_graph.diameter(), 4) << "k=" << k;
    EXPECT_EQ(t.expected_diameter, 4);
    EXPECT_EQ(t.switch_graph.edge_connectivity(), k / 2) << "k=" << k;
  }
}

TEST(FatTree, InvalidParameterThrows) {
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);   // odd
  EXPECT_THROW(make_fat_tree(2), std::invalid_argument);   // too small
  EXPECT_THROW(make_fat_tree(66), std::invalid_argument);  // too large
}

TEST(FatTree, BitReproducible) {
  EXPECT_TRUE(make_fat_tree(8).switch_graph == make_fat_tree(8).switch_graph);
}

TEST(RandomWan, CountsAndConnectivity) {
  const auto t = make_random_wan(200, 2, 42);
  EXPECT_EQ(t.switch_graph.n(), 200);
  // m+1 cycle edges, then m edges per later node.
  EXPECT_EQ(t.switch_graph.edge_count(), 3u + 2u * 197u);
  EXPECT_TRUE(t.switch_graph.connected());
  EXPECT_GE(t.switch_graph.edge_connectivity(), 2);
}

TEST(RandomWan, SeededAndBitReproducible) {
  const auto a = make_random_wan(100, 2, 7);
  const auto b = make_random_wan(100, 2, 7);
  const auto c = make_random_wan(100, 2, 8);
  EXPECT_TRUE(a.switch_graph == b.switch_graph);
  EXPECT_FALSE(a.switch_graph == c.switch_graph);
}

TEST(RandomWan, InvalidParametersThrow) {
  EXPECT_THROW(make_random_wan(10, 1, 1), std::invalid_argument);  // m < 2
  EXPECT_THROW(make_random_wan(2, 2, 1), std::invalid_argument);   // n <= m
}

// --- Spec registry --------------------------------------------------------------

TEST(TopoSource, ResolvesBuiltinsAndGenerators) {
  EXPECT_EQ(resolve("B4").switch_graph.n(), 12);
  EXPECT_EQ(resolve("fat_tree:k=8").switch_graph.n(), 80);
  EXPECT_EQ(resolve("random_wan:nodes=64").switch_graph.n(), 64);
  EXPECT_EQ(resolve("random_wan:nodes=64,m=3,seed=9").switch_graph.n(), 64);
  EXPECT_EQ(resolve("isp:nodes=40,diameter=6").switch_graph.n(), 40);
}

TEST(TopoSource, ResolveIsCachedAndDeterministic) {
  const auto& a = resolve("random_wan:nodes=50,m=2,seed=3");
  const auto& b = resolve("random_wan:nodes=50,m=2,seed=3");
  EXPECT_TRUE(a.switch_graph == b.switch_graph);
}

TEST(TopoSource, MalformedSpecsThrow) {
  EXPECT_THROW(resolve("no_such_topology"), std::invalid_argument);
  EXPECT_THROW(resolve("fat_tree"), std::invalid_argument);
  EXPECT_THROW(resolve("fat_tree:"), std::invalid_argument);
  EXPECT_THROW(resolve("fat_tree:k=8,k=8"), std::invalid_argument);  // dup key
  EXPECT_THROW(resolve("fat_tree:q=8"), std::invalid_argument);  // unknown key
  EXPECT_THROW(resolve("fat_tree:k=abc"), std::invalid_argument);
  EXPECT_THROW(resolve("random_wan:m=2"), std::invalid_argument);  // no nodes
  EXPECT_THROW(resolve("unknown_kind:x=1"), std::invalid_argument);
}

TEST(TopoSource, FileSpecsResolve) {
  const auto path = write_temp("spec.edges", "a b\nb c\nc a\n");
  EXPECT_EQ(resolve("file:" + path).switch_graph.n(), 3);
  EXPECT_EQ(resolve("edgelist:" + path).switch_graph.n(), 3);
  EXPECT_THROW(resolve("file:/nonexistent/x.cch"), std::runtime_error);
}

TEST(TopoSource, ValidateSpecMatchesResolve) {
  EXPECT_NO_THROW(validate_spec("fat_tree:k=4"));
  EXPECT_THROW(validate_spec("fat_tree:k=5"), std::invalid_argument);
}

TEST(TopoSource, ListToposCoversGeneratorsWithCounts) {
  const auto infos = list_topos();
  bool saw_k16 = false, saw_wan = false, saw_b4 = false;
  for (const auto& info : infos) {
    if (info.spec == "fat_tree:k=16") {
      saw_k16 = true;
      EXPECT_EQ(info.nodes, 320);
      EXPECT_EQ(info.links, 2048u);
      EXPECT_EQ(info.diameter, 4);
    }
    if (info.spec == "random_wan:nodes=1024,m=2,seed=1") {
      saw_wan = true;
      EXPECT_EQ(info.nodes, 1024);
    }
    if (info.spec == "B4") saw_b4 = true;
  }
  EXPECT_TRUE(saw_k16);
  EXPECT_TRUE(saw_wan);
  EXPECT_TRUE(saw_b4);
}

}  // namespace
}  // namespace ren::topo

#include <gtest/gtest.h>

#include "topo/topologies.hpp"

namespace ren::topo {
namespace {

struct Expected {
  const char* name;
  int nodes;
  int diameter;
};

/// Table 8 of the paper.
class PaperTopologies : public ::testing::TestWithParam<Expected> {};

TEST_P(PaperTopologies, MatchesTable8) {
  const auto [name, nodes, diameter] = GetParam();
  const auto t = by_name(name);
  EXPECT_EQ(t.switch_graph.n(), nodes);
  EXPECT_EQ(t.switch_graph.diameter(), diameter);
  EXPECT_EQ(t.expected_diameter, diameter);
}

TEST_P(PaperTopologies, IsTwoEdgeConnected) {
  const auto t = by_name(GetParam().name);
  EXPECT_GE(t.switch_graph.edge_connectivity(), 2)
      << t.name << " must survive any single link failure";
}

TEST_P(PaperTopologies, GenerationIsDeterministic) {
  const auto a = by_name(GetParam().name);
  const auto b = by_name(GetParam().name);
  EXPECT_TRUE(a.switch_graph == b.switch_graph);
}

INSTANTIATE_TEST_SUITE_P(Table8, PaperTopologies,
                         ::testing::Values(Expected{"B4", 12, 5},
                                           Expected{"Clos", 20, 4},
                                           Expected{"Telstra", 57, 8},
                                           Expected{"ATT", 172, 10},
                                           Expected{"EBONE", 208, 11}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(Topologies, B4HasNineteenLinks) {
  EXPECT_EQ(make_b4().switch_graph.edge_count(), 19u);
}

TEST(Topologies, ClosIsAFatTree) {
  const auto t = make_clos();
  // 8 edge switches of degree 2, 8 aggregation of degree 4, 4 cores of 4.
  int deg2 = 0, deg4 = 0;
  for (int v = 0; v < t.switch_graph.n(); ++v) {
    const auto d = t.switch_graph.neighbors(v).size();
    if (d == 2) ++deg2;
    if (d == 4) ++deg4;
  }
  EXPECT_EQ(deg2, 8);
  EXPECT_EQ(deg4, 12);
}

TEST(Topologies, IspGeneratorHitsExactTargets) {
  for (int diameter : {6, 9, 12}) {
    for (int nodes : {40, 90}) {
      const auto t = make_isp("x", nodes, diameter, 123);
      EXPECT_EQ(t.switch_graph.n(), nodes);
      EXPECT_EQ(t.switch_graph.diameter(), diameter) << nodes << "/" << diameter;
      EXPECT_GE(t.switch_graph.edge_connectivity(), 2);
    }
  }
}

TEST(Topologies, IspGeneratorRejectsImpossibleParams) {
  EXPECT_THROW(make_isp("x", 10, 8, 1), std::invalid_argument);
}

TEST(Topologies, ByNameAliasesAndErrors) {
  EXPECT_EQ(by_name("AT&T").name, "ATT");
  EXPECT_EQ(by_name("Ebone").name, "EBONE");
  EXPECT_THROW(by_name("nonsense"), std::invalid_argument);
}

TEST(Topologies, PaperTopologiesOrdering) {
  const auto all = paper_topologies();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "B4");
  EXPECT_EQ(all[4].name, "EBONE");
}

}  // namespace
}  // namespace ren::topo

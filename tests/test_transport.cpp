#include <gtest/gtest.h>

#include <deque>

#include "transport/endpoint.hpp"

namespace ren::transport {
namespace {

proto::Message text_message(NodeId from, int payload) {
  proto::QueryReply r;
  r.id = from;
  r.rules_wire_bytes = static_cast<std::size_t>(payload);  // carries the value
  return proto::Message{r};
}

int payload_of(const proto::MessagePtr& m) {
  return static_cast<int>(std::get<proto::QueryReply>(*m).rules_wire_bytes);
}

/// A lossy in-memory channel between two endpoints, with deterministic
/// fault injection: every frame sent is queued; `pump` delivers them,
/// dropping/duplicating per the configured pattern.
struct Harness {
  explicit Harness(Config cfg = Config{}) {
    auto make = [this, cfg](NodeId self, NodeId peer,
                            std::unique_ptr<Endpoint>& slot,
                            std::vector<int>& delivered) {
      slot = std::make_unique<Endpoint>(
          self, cfg,
          Endpoint::Hooks{
              [this, self](NodeId to, proto::PayloadPtr f, std::uint32_t) {
                wire.push_back({self, to, std::get<proto::Frame>(*f)});
              },
              [&delivered](NodeId, proto::MessagePtr m) {
                delivered.push_back(payload_of(m));
              },
              [this, self](NodeId) { ++new_messages[self]; }});
      (void)peer;
    };
    make(1, 2, a, delivered_at_a);
    make(2, 1, b, delivered_at_b);
  }

  /// Deliver queued frames; `drop(i)` decides per frame.
  void pump(const std::function<bool(std::size_t)>& drop = {}) {
    std::size_t i = 0;
    while (!wire.empty()) {
      auto [from, to, frame] = wire.front();
      wire.pop_front();
      if (drop && drop(i++)) continue;
      (to == 1 ? *a : *b).on_frame(from, frame);
    }
  }

  struct WireFrame {
    NodeId from, to;
    proto::Frame frame;
  };
  std::deque<WireFrame> wire;
  std::unique_ptr<Endpoint> a, b;
  std::vector<int> delivered_at_a, delivered_at_b;
  std::map<NodeId, int> new_messages;
};

TEST(Transport, DeliversOnCleanChannel) {
  Harness h;
  h.a->submit(2, text_message(1, 42));
  h.pump();
  EXPECT_EQ(h.delivered_at_b, (std::vector<int>{42}));
  EXPECT_TRUE(h.a->idle(2));  // ack consumed
}

TEST(Transport, RetransmitsUntilAcked) {
  Harness h;
  h.a->submit(2, text_message(1, 7));
  // Drop everything on the first two attempts.
  h.pump([](std::size_t) { return true; });
  EXPECT_TRUE(h.delivered_at_b.empty());
  h.a->tick();  // retransmit
  h.pump([](std::size_t) { return true; });
  h.a->tick();
  h.pump();  // now deliver
  EXPECT_EQ(h.delivered_at_b, (std::vector<int>{7}));
  EXPECT_GE(h.a->retransmissions(), 2u);
}

TEST(Transport, DuplicateFramesDeliverOnce) {
  Harness h;
  h.a->submit(2, text_message(1, 9));
  // Duplicate by retransmitting before the ack is processed.
  h.a->tick();
  h.a->tick();
  h.pump();
  EXPECT_EQ(h.delivered_at_b, (std::vector<int>{9}));
}

TEST(Transport, SupersedeReplacesInflight) {
  Harness h;  // default: supersede_inflight = true
  h.a->submit(2, text_message(1, 1));
  // Ack never returns; a newer message must still go out.
  h.pump([](std::size_t) { return true; });
  h.a->submit(2, text_message(1, 2));
  h.pump();
  EXPECT_EQ(h.delivered_at_b.back(), 2);
}

TEST(Transport, StopAndWaitQueuesBehindInflight) {
  Config cfg;
  cfg.supersede_inflight = false;
  Harness h(cfg);
  h.a->submit(2, text_message(1, 1));
  h.a->submit(2, text_message(1, 2));
  h.a->submit(2, text_message(1, 3));  // supersedes 2 in the queue slot
  h.pump();
  // 1 delivered, its ack releases 3 (2 was superseded), next pump delivers.
  h.pump();
  EXPECT_EQ(h.delivered_at_b, (std::vector<int>{1, 3}));
  EXPECT_EQ(h.new_messages[1], 2);
}

TEST(Transport, BidirectionalSessionsAreIndependent) {
  Harness h;
  h.a->submit(2, text_message(1, 10));
  h.b->submit(1, text_message(2, 20));
  h.pump();
  h.pump();
  EXPECT_EQ(h.delivered_at_b, (std::vector<int>{10}));
  EXPECT_EQ(h.delivered_at_a, (std::vector<int>{20}));
}

TEST(Transport, IdempotentResubmitKeepsLabelAndCountsLogicalSends) {
  Harness h;
  const proto::MessagePtr msg =
      proto::make_message(text_message(1, 77));
  h.a->submit(2, msg);
  const auto first = h.a->debug_send_session(2);
  ASSERT_TRUE(first.inflight);
  // The ack never comes back; resubmitting the identical payload pointer
  // must refresh the in-flight slot without advancing the label...
  h.pump([](std::size_t) { return true; });
  h.a->submit(2, msg);
  h.a->submit(2, msg);
  const auto after = h.a->debug_send_session(2);
  EXPECT_TRUE(after.inflight);
  EXPECT_EQ(after.label, first.label);
  // ...while still counting every submit as a logical send (Fig. 9).
  EXPECT_EQ(h.new_messages[1], 3);
  // Delivery still happens exactly once for the one label.
  h.pump();
  EXPECT_EQ(h.delivered_at_b, (std::vector<int>{77}));
}

TEST(Transport, IdempotentResubmitThenContentChangeAdvancesLabel) {
  Harness h;
  const proto::MessagePtr same = proto::make_message(text_message(1, 1));
  h.a->submit(2, same);
  const auto l0 = h.a->debug_send_session(2).label;
  h.pump([](std::size_t) { return true; });
  h.a->submit(2, same);  // no new label
  EXPECT_EQ(h.a->debug_send_session(2).label, l0);
  h.a->submit(2, proto::make_message(text_message(1, 2)));  // new content
  EXPECT_NE(h.a->debug_send_session(2).label, l0);
  h.pump();
  EXPECT_EQ(h.delivered_at_b.back(), 2);
}

TEST(Transport, RetransmissionsReuseTheSharedFramePayload) {
  Harness h;
  h.a->submit(2, proto::make_message(text_message(1, 5)));
  h.pump([](std::size_t) { return true; });  // drop the initial transmission
  h.a->tick();
  h.a->tick();
  ASSERT_EQ(h.wire.size(), 2u);
  // Both retransmitted act frames carry the *same* message object — the
  // payload is shared, never re-serialized or copied per retransmission.
  EXPECT_EQ(h.wire[0].frame.payload.get(), h.wire[1].frame.payload.get());
  EXPECT_EQ(h.wire[0].frame.label, h.wire[1].frame.label);
}

TEST(Transport, IdempotentResubmitSurvivesCorruptionAndRecovers) {
  // An identical-pointer resubmit stream must never wedge a session, even
  // from an arbitrarily corrupted state: acknowledgments always flow, so a
  // label collision at the receiver resolves and the next content change
  // starts a fresh label.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Harness h;
    Rng rng(seed);
    const proto::MessagePtr stuck = proto::make_message(text_message(1, 50));
    h.a->submit(2, stuck);
    h.pump();
    h.a->corrupt(rng);
    h.b->corrupt(rng);
    // Keep resubmitting the identical payload through the storm.
    for (int round = 0; round < 4; ++round) {
      h.a->submit(2, stuck);
      h.a->tick();
      h.pump();
    }
    // A fresh message must still get through afterwards.
    bool delivered_fresh = false;
    for (int round = 0; round < 6 && !delivered_fresh; ++round) {
      h.a->submit(2, text_message(1, 100 + round));
      h.a->tick();
      h.pump();
      for (int v : h.delivered_at_b) {
        if (v >= 100) delivered_fresh = true;
      }
    }
    EXPECT_TRUE(delivered_fresh) << "seed " << seed;
  }
}

TEST(Transport, RetainOnlyDropsSessions) {
  Harness h;
  h.a->submit(2, text_message(1, 5));
  EXPECT_GT(h.a->session_count(), 0u);
  h.wire.clear();  // discard the initial transmission
  h.a->retain_only({});
  EXPECT_EQ(h.a->session_count(), 0u);
  h.a->tick();  // no sessions left: nothing to retransmit
  EXPECT_TRUE(h.wire.empty());
}

TEST(Transport, RecoversAfterStateCorruption) {
  // Property sweep: from an arbitrarily corrupted session state, fresh
  // messages flow again after a bounded number of exchanges (Delta_comm).
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Harness h;
    Rng rng(seed);
    // Establish some traffic, then corrupt both ends.
    h.a->submit(2, text_message(1, 1));
    h.pump();
    h.a->corrupt(rng);
    h.b->corrupt(rng);
    // A few rounds of fresh messages + retransmissions.
    bool delivered_fresh = false;
    for (int round = 0; round < 6 && !delivered_fresh; ++round) {
      h.a->submit(2, text_message(1, 100 + round));
      h.a->tick();
      h.pump();
      for (int v : h.delivered_at_b) {
        if (v >= 100) delivered_fresh = true;
      }
    }
    EXPECT_TRUE(delivered_fresh) << "seed " << seed;
  }
}

TEST(Transport, LossyChannelPropertySweep) {
  // Under 30% deterministic-pattern loss, every submitted generation is
  // eventually superseded-or-delivered and the newest value arrives.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Harness h;
    Rng rng(seed);
    int last = 0;
    for (int gen = 1; gen <= 30; ++gen) {
      h.a->submit(2, text_message(1, gen));
      h.a->tick();
      h.pump([&rng](std::size_t) { return rng.chance(0.3); });
      last = gen;
    }
    // Final drain without loss.
    h.a->tick();
    h.pump();
    h.pump();
    ASSERT_FALSE(h.delivered_at_b.empty());
    EXPECT_EQ(h.delivered_at_b.back(), last) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ren::transport

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ren {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seed must diverge quickly.
  Rng a2(42);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedValuesStayInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const auto v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedValuesCoverRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Stats, QuantilesOfKnownSample) {
  Sample s({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Stats, ViolinSummary) {
  Sample s({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  const auto v = s.violin();
  EXPECT_DOUBLE_EQ(v.min, 10);
  EXPECT_DOUBLE_EQ(v.max, 100);
  EXPECT_NEAR(v.median, 55, 1e-9);
  EXPECT_EQ(v.n, 10u);
  EXPECT_LT(v.q1, v.median);
  EXPECT_GT(v.q3, v.median);
}

TEST(Stats, DropExtremaRemovesMinAndMax) {
  Sample s({5, 1, 9, 3, 7});
  const auto d = s.drop_extrema();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.min(), 3.0);
  EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

TEST(Stats, PearsonCorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(a, flat), 0.0);
  EXPECT_THROW(pearson(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Stats, EmptySampleIsSafe) {
  Sample s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_EQ(s.violin().n, 0u);
}

}  // namespace
}  // namespace ren

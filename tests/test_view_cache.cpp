// The per-tick controller view cache must be observationally equivalent to
// building res(curr)/res(prev)/fusion from scratch at every consumer — under
// randomized reply/tag/liveness churn, across slot rotations and reuse, and
// through the six built-in scenario timelines with Config::paranoid_views
// live. The differential reference here is written against the seed's
// original semantics (std::map view construction + TopoView::reachable_set),
// deliberately independent of the FlatView code path under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/view_cache.hpp"
#include "test_helpers.hpp"

namespace ren::core {
namespace {

using ren::testing::bootstrap_or_fail;
using ren::testing::fast_config;

// --- Reference implementation (the seed's build_res / build_fusion) ----------

struct RefView {
  flows::TopoView view;
  std::map<NodeId, bool> transit;
  std::set<NodeId> reply_ids;
};

RefView ref_res(NodeId self, const ReplyDb& db, proto::Tag tag,
                const detect::ThetaDetector& det) {
  RefView res;
  res.view.add_node(self);
  res.transit[self] = false;
  for (NodeId n : det.live()) res.view.add_edge(self, n);
  for (const auto& [rid, m] : db.entries()) {
    if (!(m.tag_for_querier == tag)) continue;
    res.view.add_node(m.id);
    for (NodeId n : m.nc) res.view.add_edge(m.id, n);
    res.transit[m.id] = !m.from_controller;
    res.reply_ids.insert(m.id);
  }
  return res;
}

RefView ref_fusion(NodeId self, const ReplyDb& db, proto::Tag curr,
                   proto::Tag prev, const detect::ThetaDetector& det) {
  RefView res;
  res.view.add_node(self);
  res.transit[self] = false;
  for (NodeId n : det.live()) res.view.add_edge(self, n);
  for (const auto& [rid, m] : db.entries()) {
    const bool is_curr = m.tag_for_querier == curr;
    const bool is_prev = m.tag_for_querier == prev;
    if (!is_curr && !is_prev) continue;
    if (is_prev && !is_curr) {
      const proto::QueryReply* other = db.find(m.id);
      if (other != nullptr && other->tag_for_querier == curr) continue;
    }
    res.view.add_node(m.id);
    for (NodeId n : m.nc) res.view.add_edge(m.id, n);
    res.transit[m.id] = !m.from_controller;
    res.reply_ids.insert(m.id);
  }
  return res;
}

void expect_equivalent(NodeId self, const ResView& cached, const RefView& ref,
                       const char* which, int step) {
  ASSERT_TRUE(cached.view == ref.view) << which << " view diverged @" << step;
  ASSERT_EQ(cached.transit, ref.transit) << which << " transit @" << step;
  ASSERT_EQ(cached.reply_ids, ref.reply_ids) << which << " replies @" << step;
  // Reachability: the cached BFS-order list and O(1) membership must match
  // the independent std::set BFS over the reference view.
  const auto expect = ref.view.reachable_set(self);
  ASSERT_EQ(std::set<NodeId>(cached.reach.begin(), cached.reach.end()),
            std::set<NodeId>(expect.begin(), expect.end()))
      << which << " reach set @" << step;
  for (const auto& [n, _] : ref.view.adj()) {
    const bool want =
        std::find(expect.begin(), expect.end(), n) != expect.end();
    ASSERT_EQ(cached.reachable(n), want)
        << which << " reachable(" << n << ") @" << step;
  }
  // And a couple of ids guaranteed absent from the view.
  ASSERT_FALSE(cached.reachable(kNoNode));
  ASSERT_FALSE(cached.reachable(1 << 20));
}

/// Round-completion verdict as the controller derives it from a cached view.
bool verdict(NodeId self, const ResView& res) {
  for (NodeId n : res.reach) {
    if (n == self) continue;
    if (res.reply_ids.count(n) == 0) return false;
  }
  return true;
}

bool ref_verdict(NodeId self, const RefView& res) {
  for (NodeId n : res.view.reachable_set(self)) {
    if (n == self) continue;
    if (res.reply_ids.count(n) == 0) return false;
  }
  return true;
}

TEST(ViewCache, RandomizedChurnMatchesFromScratchBuilds) {
  const NodeId self = 0;
  const NodeId node_space = 24;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 0x9e3779b9ULL);
    ReplyDb db(ReplyDb::Config{48, seed % 2 == 0});
    detect::ThetaDetector det(self, detect::ThetaDetector::Config{3});
    det.set_candidates({1, 2, 3});
    ViewCache cache(self);
    // A small tag pool makes collisions (re-used tags, curr == prev) likely.
    std::vector<proto::Tag> tags;
    for (std::uint32_t e = 0; e < 6; ++e) {
      tags.push_back(proto::Tag{static_cast<NodeId>(e % 3), e});
    }
    proto::Tag curr = tags[0], prev = proto::kNullTag;
    auto rand_node = [&] {
      return static_cast<NodeId>(rng.next_below(node_space));
    };
    for (int step = 0; step < 400; ++step) {
      switch (rng.next_below(8)) {
        case 0:
        case 1: {  // a reply arrives (make_room first, as on_reply does)
          proto::QueryReply m;
          m.id = rand_node();
          const auto deg = rng.next_below(4);
          for (std::uint64_t k = 0; k < deg; ++k) m.nc.push_back(rand_node());
          std::sort(m.nc.begin(), m.nc.end());
          m.nc.erase(std::unique(m.nc.begin(), m.nc.end()), m.nc.end());
          m.from_controller = rng.chance(0.2);
          m.tag_for_querier = rng.chance(0.7) ? curr : tags[rng.next_below(6)];
          db.make_room(m.id);
          db.store(std::move(m));
          break;
        }
        case 2:  // prune-style erase
          db.erase_if([&](const proto::QueryReply& m) {
            return m.id % 3 == static_cast<NodeId>(rng.next_below(3));
          });
          break;
        case 3:  // round flip (occasionally onto a recycled tag)
          prev = curr;
          curr = tags[rng.next_below(6)];
          break;
        case 4: {  // detection round with random replies
          for (NodeId n : {1, 2, 3}) {
            if (rng.chance(0.6)) det.on_probe_reply(n);
          }
          det.tick([](NodeId, proto::Probe) {});
          break;
        }
        case 5:  // candidate churn
          det.set_candidates(rng.chance(0.5)
                                 ? std::vector<NodeId>{1, 2, 3}
                                 : std::vector<NodeId>{1, 3, 4});
          break;
        case 6:  // transient corruption
          if (rng.chance(0.3)) db.corrupt(rng, node_space);
          if (rng.chance(0.3)) det.corrupt(rng);
          if (rng.chance(0.3)) cache.invalidate();
          break;
        case 7:  // quiet step (re-refresh with nothing changed: hit path)
          break;
      }
      cache.refresh(db, curr, prev, det);
      const RefView rc = ref_res(self, db, curr, det);
      const RefView rp = ref_res(self, db, prev, det);
      const RefView rf = ref_fusion(self, db, curr, prev, det);
      expect_equivalent(self, cache.res_curr(), rc, "res_curr", step);
      expect_equivalent(self, cache.res_prev(), rp, "res_prev", step);
      expect_equivalent(self, cache.fusion(), rf, "fusion", step);
      ASSERT_EQ(verdict(self, cache.res_curr()), ref_verdict(self, rc))
          << "round-completion verdict @" << step;
    }
    // The churn must actually have exercised the fast paths.
    const auto& st = cache.stats();
    EXPECT_GT(st.hits + st.rotations, 0u) << "seed " << seed;
    EXPECT_GT(st.rebuilds, 0u) << "seed " << seed;
  }
}

TEST(ViewCache, HitRotationAndRebuildCounters) {
  const NodeId self = 0;
  ReplyDb db(ReplyDb::Config{16, true});
  detect::ThetaDetector det(self, detect::ThetaDetector::Config{3});
  det.set_candidates({1});
  det.on_probe_reply(1);
  det.tick([](NodeId, proto::Probe) {});
  ViewCache cache(self);
  const proto::Tag t1{0, 1}, t2{0, 2}, t3{0, 3};

  auto reply = [](NodeId id, proto::Tag tag) {
    proto::QueryReply m;
    m.id = id;
    m.nc = {0};
    m.tag_for_querier = tag;
    return m;
  };
  db.store(reply(1, t1));
  db.store(reply(2, t1));

  cache.refresh(db, t1, proto::kNullTag, det);  // first sync: rebuild
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  cache.refresh(db, t1, proto::kNullTag, det);  // unchanged: hit
  EXPECT_EQ(cache.stats().hits, 1u);

  // A clean round flip rotates slots — no view construction.
  cache.refresh(db, t2, t1, det);
  EXPECT_EQ(cache.stats().rotations, 1u);
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  EXPECT_TRUE(cache.fusion_aliases_prev());
  EXPECT_EQ(cache.res_prev().reply_ids, (std::set<NodeId>{1, 2}));
  EXPECT_TRUE(cache.res_curr().reply_ids.empty());

  // All replies re-tag onto the new round: the full view is structurally
  // unchanged (same nc), so the tick-start resync reuses it (rotation).
  db.store(reply(1, t2));
  db.store(reply(2, t2));
  cache.refresh(db, t2, t1, det);
  EXPECT_EQ(cache.stats().rotations, 2u);
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  EXPECT_EQ(cache.res_curr().reply_ids, (std::set<NodeId>{1, 2}));

  // A reply whose neighborhood changed breaks the shape key: full rebuild.
  auto m = reply(1, t3);
  m.nc = {0, 2};
  db.store(std::move(m));
  db.store(reply(2, t3));
  cache.refresh(db, t3, t2, det);
  EXPECT_GE(cache.stats().rebuilds, 2u);
}

TEST(ViewCache, DisabledModeStillCorrect) {
  const NodeId self = 7;
  ReplyDb db(ReplyDb::Config{16, true});
  detect::ThetaDetector det(self, detect::ThetaDetector::Config{3});
  ViewCache cache(self);
  cache.set_enabled(false);
  proto::QueryReply m;
  m.id = 3;
  m.nc = {7};
  m.tag_for_querier = proto::Tag{7, 1};
  db.store(m);
  cache.refresh(db, proto::Tag{7, 1}, proto::kNullTag, det);
  cache.refresh(db, proto::Tag{7, 1}, proto::kNullTag, det);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().rebuilds, 2u);
  const RefView rc = ref_res(self, db, proto::Tag{7, 1}, det);
  expect_equivalent(self, cache.res_curr(), rc, "res_curr", 0);
}

// --- Controller-level differential (Config::paranoid_views) ------------------

sim::ExperimentConfig paranoid_views_config(const std::string& topology,
                                            int controllers,
                                            std::uint64_t seed = 1) {
  auto cfg = fast_config(topology, controllers, 2, seed);
  cfg.views_paranoid = true;
  return cfg;
}

TEST(ViewCacheParanoid, BootstrapAgrees) {
  sim::Experiment exp(paranoid_views_config("B4", 3));
  bootstrap_or_fail(exp);
  // Every refresh on the way up ran the from-scratch differential.
  EXPECT_GT(exp.controller(0).view_cache().stats().paranoid_checks, 0u);
}

TEST(ViewCacheParanoid, SteadyStateReusesSlotsWithoutRebuilding) {
  sim::Experiment exp(fast_config("B4", 3));
  bootstrap_or_fail(exp);
  for (int i = 0; i < 10; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(50));
  }
  const auto before = exp.controller(0).view_cache().stats();
  for (int i = 0; i < 20; ++i) {
    exp.sim().run_until(exp.sim().now() + msec(50));
  }
  const auto after = exp.controller(0).view_cache().stats();
  // Converged rounds flip tags every tick, but tag churn alone must never
  // rebuild a view: every resync is a hit or a slot rotation.
  EXPECT_EQ(after.rebuilds, before.rebuilds);
  EXPECT_GT(after.hits + after.rotations, before.hits + before.rotations);
}

TEST(ViewCacheParanoid, FaultStormAgrees) {
  sim::Experiment exp(paranoid_views_config("Clos", 3, /*seed=*/7));
  bootstrap_or_fail(exp);
  auto cp = exp.control_plane();
  Rng storm(0x5eed5eedULL);
  for (int round = 0; round < 6; ++round) {
    switch (storm.next_below(5)) {
      case 0:
        faults::kill_random_controllers(cp, storm, 1);
        break;
      case 1:
        faults::kill_random_switches(cp, storm, 1);
        break;
      case 2:
        faults::fail_random_links(cp, storm, 2, /*keep_connected=*/true);
        break;
      case 3:
        faults::corrupt_all_state(cp, storm);
        break;
      case 4:
        faults::restart_all_nodes(cp);
        faults::restore_all_links(cp);
        break;
    }
    // A cache divergence throws std::logic_error out of the controller's
    // do-forever task and would abort the run here.
    for (int i = 0; i < 40; ++i) {
      exp.sim().run_until(exp.sim().now() + msec(25));
    }
  }
  faults::restart_all_nodes(cp);
  faults::restore_all_links(cp);
  const auto r = exp.run_until_legitimate(sec(120));
  EXPECT_TRUE(r.converged) << r.last_reason;
}

TEST(ViewCacheParanoid, ScenarioTimelinesPass) {
  // The six built-in fault timelines with the view differential live on
  // every controller tick (acceptance criterion).
  scenario::RunnerOptions opt;
  opt.threads = 1;
  opt.paranoid_views = true;
  for (const auto& name : scenario::builtin_names()) {
    scenario::Scenario s = scenario::builtin(name);
    s.topologies = {"B4"};
    s.controllers = {3};
    s.trials = 1;
    const auto out = scenario::run_trial(s, "B4", 3, /*trial=*/0, opt);
    EXPECT_TRUE(out.ok) << name << ": " << out.error;
  }
}

// --- FlatView ----------------------------------------------------------------

TEST(FlatView, MatchesTopoViewReachabilityOnRandomDigraphs) {
  Rng rng(0xf1a7ULL);
  for (int trial = 0; trial < 50; ++trial) {
    flows::TopoView v;
    const NodeId n = 2 + static_cast<NodeId>(rng.next_below(20));
    // Sparse ids (stride 7) exercise the non-dense fallback path too.
    const NodeId stride = trial % 2 == 0 ? 1 : 7919;
    for (int e = 0; e < 40; ++e) {
      const NodeId a = static_cast<NodeId>(rng.next_below(n)) * stride;
      const NodeId b = static_cast<NodeId>(rng.next_below(n)) * stride;
      v.add_edge(a, b);
    }
    flows::FlatView flat;
    flat.assign(v);
    ASSERT_EQ(flat.n(), static_cast<int>(v.node_count()));
    const NodeId src = static_cast<NodeId>(rng.next_below(n)) * stride;
    std::vector<NodeId> out;
    flat.reachable_from(src, out);
    const auto expect = v.reachable_set(src);
    ASSERT_EQ(std::set<NodeId>(out.begin(), out.end()),
              std::set<NodeId>(expect.begin(), expect.end()));
    for (const auto& [node, _] : v.adj()) {
      const bool want =
          std::find(expect.begin(), expect.end(), node) != expect.end();
      ASSERT_EQ(flat.reached(node), want) << "node " << node;
      ASSERT_EQ(v.reachable(src, node), want) << "early-exit BFS, node "
                                              << node;
    }
    ASSERT_FALSE(flat.reached(static_cast<NodeId>(n) * stride + 1));
  }
}

}  // namespace
}  // namespace ren::core

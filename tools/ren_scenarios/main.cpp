// ren_scenarios — run a fault-timeline scenario campaign in parallel.
//
//   ren_scenarios --list
//   ren_scenarios --scenario rolling_restart --trials 8 --threads 8
//   ren_scenarios --spec my_scenario.json --out results.json
//   ren_scenarios --scenario partition_and_heal --topologies B4,ATT \
//                 --controllers 3,5 --seed 7 --paper-timers
//
// Output is a JSON document of per-cell percentile aggregates; identical
// input (scenario + seed + timer profile) produces byte-identical output
// regardless of --threads.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "renaissance.hpp"
#include "util/log.hpp"

namespace {

using namespace ren;

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ren_scenarios (--scenario NAME | --spec FILE) [options]\n"
               "       ren_scenarios --merge SHARD.json... [--out FILE]\n"
               "       ren_scenarios --list | --list-topos\n"
               "\n"
               "options:\n"
               "  --list                 list built-in scenarios and exit\n"
               "  --list-topos           list registered topologies (builtins,\n"
               "                         generators, loaders) with node/link\n"
               "                         counts and exit\n"
               "  --scenario NAME        run a built-in scenario\n"
               "  --spec FILE            run a JSON scenario spec ('-' = stdin)\n"
               "  --print-spec           print the scenario's JSON spec, don't run\n"
               "  --topologies A,B,...   override the topology axis (specs:\n"
               "                         builtin names, fat_tree:k=K,\n"
               "                         random_wan:nodes=N[,m=M][,seed=S],\n"
               "                         isp:nodes=N,diameter=D[,seed=S],\n"
               "                         file:PATH — see --list-topos)\n"
               "  --controllers N,M,...  override the controller-count axis\n"
               "  --axis NAME=V1,V2,...  add/override a generic config axis\n"
               "                         (kappa, theta, task_delay_ms,\n"
               "                         link_loss, victims, churn_rate,\n"
               "                         table_capacity); repeatable, crossed\n"
               "                         with the topology/controller grid\n"
               "  --trials N             seeded repetitions per grid cell\n"
               "  --seed S               campaign base seed\n"
               "  --threads N            worker threads (default: all cores)\n"
               "  --sim-threads N        simulation shards per trial (epoch-\n"
               "                         lockstep parallel kernel; outcomes are\n"
               "                         bit-identical for any N, and the trial\n"
               "                         pool shrinks so N x trials stays within\n"
               "                         the machine; see --list-topos for a\n"
               "                         suggested N per topology)\n"
               "  --shard K/N            run shard K of N (K = 1..N); the union\n"
               "                         of all N shard reports is the full\n"
               "                         campaign (seeds depend only on the grid)\n"
               "  --merge FILE...        fold --shard --raw reports back into one\n"
               "                         campaign aggregate (byte-identical to the\n"
               "                         unsharded report when all shards are given)\n"
               "  --raw                  include raw per-trial samples in the report\n"
               "  --paranoid             differential-check the incremental\n"
               "                         legitimacy monitor every sample (slow)\n"
               "  --paranoid-views       differential-check every controller's\n"
               "                         cached res/fusion views per tick (slow)\n"
               "  --paranoid-batches     differential-check every planned\n"
               "                         outbound batch against a from-scratch\n"
               "                         build (byte-equal encodings; slow)\n"
               "  --paranoid-sim         re-run every trial on the serial\n"
               "                         kernel and require a byte-identical\n"
               "                         outcome (with --sim-threads; slow)\n"
               "  --paper-timers         paper Section 6.3 timers instead of fast\n"
               "  --out FILE             write the JSON report here (default stdout)\n"
               "  --verbose              enable Info-level simulation logging\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string read_file(const std::string& path) {
  if (path == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open spec file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name, spec_path, out_path;
  std::string topologies_csv, controllers_csv;
  std::vector<std::pair<std::string, std::vector<double>>> axis_overrides;
  std::vector<std::string> merge_inputs;
  int trials = 0, threads = 0, sim_threads = 1;
  int shard_index = 0, shard_count = 1;
  std::uint64_t seed = 0;
  bool have_seed = false, paper_timers = false, print_spec = false;
  bool include_raw = false, paranoid = false, paranoid_views = false;
  bool paranoid_batches = false, paranoid_sim = false;
  bool merge_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--list") {
      for (const auto& n : scenario::builtin_names()) {
        const auto s = scenario::builtin(n);
        std::printf("%-28s %s\n", n.c_str(), s.description.c_str());
      }
      return 0;
    } else if (arg == "--list-topos") {
      // "shards" is the suggested --sim-threads for the fabric (work-per-
      // epoch vs diameter heuristic, net::suggest_sim_shards).
      std::printf("%-36s %-18s %7s %7s %9s %7s  %s\n", "spec", "kind", "nodes",
                  "links", "diameter", "shards", "summary");
      for (const auto& t : topo::list_topos()) {
        if (t.nodes > 0) {
          const int shards =
              net::suggest_sim_shards(t.nodes, t.links, t.diameter);
          std::printf("%-36s %-18s %7d %7zu %9d %7d  %s\n", t.spec.c_str(),
                      t.kind.c_str(), t.nodes, t.links, t.diameter, shards,
                      t.summary.c_str());
        } else {
          std::printf("%-36s %-18s %7s %7s %9s %7s  %s\n", t.spec.c_str(),
                      t.kind.c_str(), "-", "-", "-", "-", t.summary.c_str());
        }
      }
      return 0;
    } else if (arg == "--scenario") {
      scenario_name = value();
    } else if (arg == "--spec") {
      spec_path = value();
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--topologies") {
      topologies_csv = value();
    } else if (arg == "--controllers") {
      controllers_csv = value();
    } else if (arg == "--axis") {
      const std::string v = value();
      const auto eq = v.find('=');
      std::vector<double> values;
      try {
        if (eq == std::string::npos || eq == 0) throw std::invalid_argument(v);
        for (const auto& item : split_csv(v.substr(eq + 1))) {
          std::size_t used = 0;
          values.push_back(std::stod(item, &used));
          if (used != item.size()) throw std::invalid_argument(item);
        }
        if (values.empty()) throw std::invalid_argument(v);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "--axis expects NAME=V1,V2,... (e.g. kappa=1,2,3), "
                     "got '%s'\n",
                     v.c_str());
        return 2;
      }
      axis_overrides.emplace_back(v.substr(0, eq), std::move(values));
    } else if (arg == "--trials") {
      trials = std::stoi(value());
    } else if (arg == "--seed") {
      seed = std::stoull(value());
      have_seed = true;
    } else if (arg == "--threads") {
      threads = std::stoi(value());
    } else if (arg == "--sim-threads") {
      sim_threads = std::stoi(value());
      if (sim_threads < 1) {
        std::fprintf(stderr, "--sim-threads requires N >= 1\n");
        return 2;
      }
    } else if (arg == "--shard") {
      const std::string v = value();
      const auto slash = v.find('/');
      std::size_t used_k = 0, used_n = 0;
      try {
        if (slash == std::string::npos) throw std::invalid_argument(v);
        shard_index = std::stoi(v.substr(0, slash), &used_k) - 1;  // 1-based
        shard_count = std::stoi(v.substr(slash + 1), &used_n);
        if (used_k != slash || used_n != v.size() - slash - 1)
          throw std::invalid_argument(v);
      } catch (const std::exception&) {
        std::fprintf(stderr, "--shard expects K/N (e.g. 2/4), got '%s'\n",
                     v.c_str());
        return 2;
      }
      if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
        std::fprintf(stderr, "--shard K/N requires 1 <= K <= N, got '%s'\n",
                     v.c_str());
        return 2;
      }
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg == "--raw") {
      include_raw = true;
    } else if (arg == "--paranoid") {
      paranoid = true;
    } else if (arg == "--paranoid-views") {
      paranoid_views = true;
    } else if (arg == "--paranoid-batches") {
      paranoid_batches = true;
    } else if (arg == "--paranoid-sim") {
      paranoid_sim = true;
    } else if (arg == "--paper-timers") {
      paper_timers = true;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--verbose") {
      ren::set_log_level(LogLevel::Info);
    } else if (merge_mode && !arg.empty() && arg[0] != '-') {
      merge_inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (merge_mode) {
    if (!scenario_name.empty() || !spec_path.empty()) {
      std::fprintf(stderr, "--merge excludes --scenario / --spec\n");
      return 2;
    }
    // Campaign options do not constrain a merge; reject them instead of
    // silently producing a report the flags had no effect on.
    if (print_spec || !topologies_csv.empty() || !controllers_csv.empty() ||
        !axis_overrides.empty() ||
        trials > 0 || have_seed || threads != 0 || sim_threads != 1 ||
        shard_count != 1 ||
        include_raw || paranoid || paranoid_views || paranoid_batches ||
        paranoid_sim || paper_timers) {
      std::fprintf(stderr,
                   "--merge takes only shard files and --out; campaign "
                   "options have no effect on a merge\n");
      return 2;
    }
    if (merge_inputs.empty()) {
      std::fprintf(stderr, "--merge requires at least one shard report\n");
      return 2;
    }
    try {
      std::vector<scenario::Json> shards;
      shards.reserve(merge_inputs.size());
      for (const auto& path : merge_inputs) {
        shards.push_back(scenario::Json::parse(read_file(path)));
      }
      const auto merged = scenario::merge_campaigns(shards);
      const std::string report = merged.to_json().pretty();
      if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
      } else {
        std::ofstream out(out_path);
        if (!out) throw std::runtime_error("cannot write: " + out_path);
        out << report;
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
      }
      std::size_t have = 0, want = 0;
      for (const auto& cell : merged.cells) {
        have += static_cast<std::size_t>(cell.trials) + cell.errors.size();
        want += static_cast<std::size_t>(merged.trials_per_cell);
      }
      if (have < want) {
        std::fprintf(stderr,
                     "warning: merged %zu of %zu trials — some shards are "
                     "missing\n",
                     have, want);
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (scenario_name.empty() == spec_path.empty()) {
    std::fprintf(stderr, "exactly one of --scenario / --spec is required\n\n");
    usage(stderr);
    return 2;
  }

  try {
    scenario::Scenario s = !scenario_name.empty()
                               ? scenario::builtin(scenario_name)
                               : scenario::parse_spec(read_file(spec_path));
    if (!topologies_csv.empty()) s.topologies = split_csv(topologies_csv);
    if (!controllers_csv.empty()) {
      s.controllers.clear();
      for (const auto& c : split_csv(controllers_csv))
        s.controllers.push_back(std::stoi(c));
    }
    for (auto& [name, values] : axis_overrides) {
      s.axis(name, std::move(values));  // validates names/values loudly
    }
    if (trials > 0) s.trials = trials;
    if (have_seed) s.base_seed = seed;

    if (print_spec) {
      std::fputs(scenario::to_spec_json(s).pretty().c_str(), stdout);
      return 0;
    }

    scenario::RunnerOptions opt;
    opt.threads = threads;
    opt.paper_timers = paper_timers;
    opt.shard_index = shard_index;
    opt.shard_count = shard_count;
    opt.include_raw = include_raw;
    opt.paranoid_monitor = paranoid;
    opt.paranoid_views = paranoid_views;
    opt.paranoid_batches = paranoid_batches;
    opt.sim_threads = sim_threads;
    opt.paranoid_sim = paranoid_sim;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = scenario::run_campaign(s, opt);
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const std::string report = result.to_json().pretty();
    if (out_path.empty()) {
      std::fputs(report.c_str(), stdout);
    } else {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot write: " + out_path);
      out << report;
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
    std::size_t ran_trials = 0;
    std::size_t failed = 0;
    for (const auto& cell : result.cells) {
      ran_trials += static_cast<std::size_t>(cell.trials);
      for (const auto& e : cell.errors) {
        std::fprintf(stderr, "warning: %s/%d %s\n", cell.topology.c_str(),
                     cell.controllers, e.c_str());
        ++failed;
      }
    }
    ran_trials += failed;  // errored trials were still executed
    if (shard_count > 1) {
      std::fprintf(stderr, "shard %d/%d: ", shard_index + 1, shard_count);
    }
    std::fprintf(stderr, "%zu trials in %.1fs wall%s\n", ran_trials, elapsed,
                 failed > 0 ? " (some failed, see warnings)" : "");
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
